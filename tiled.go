package twopcp

import (
	"math"

	"twopcp/internal/cpals"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/tensor"
	"twopcp/internal/tfile"
)

// DecomposeTiledFile runs the full 2PCP pipeline on a tiled .tptl
// tensor file without ever materializing the tensor: Phase 1 reads
// grid blocks straight from the file (re-tiling on the fly when the
// partition pattern differs from the file tiling) and the final fit is
// accumulated tile by tile, so peak memory is bounded by the larger of
// one tile + one block and the Phase-2 buffer — not the tensor size.
//
// The factors, FitTrace and swap counts are bit-for-bit identical to
// Decompose over the same tensor with the same Options; Fit may differ
// in the last few ulps because the tile-streamed reduction sums in a
// different order.
func DecomposeTiledFile(path string, opts Options) (*Result, error) {
	defer applyKernelWorkers(opts)()
	r, err := tfile.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	p, err := patternFor(r.Dims(), opts)
	if err != nil {
		return nil, err
	}
	src, err := phase1.NewTiledSource(r, p)
	if err != nil {
		return nil, err
	}
	res, rs, complete, err := run(src, p, opts, "tiled")
	if err != nil {
		return nil, err
	}
	if complete {
		return res, nil
	}
	res.Fit, err = tiledFit(r, res.Model)
	if err != nil {
		return nil, err
	}
	return finishRun(rs, opts.Observer, res)
}

// SaveTiled writes an in-memory dense tensor as a .tptl tiled file,
// tiles-per-mode per mode (nil picks a tiling automatically). It is a
// convenience for tensors that fit in memory; tensors that do not
// should be written tile by tile with the tfile writer (see
// cmd/tensorgen's streaming generation).
func SaveTiled(path string, t *Dense, tiles []int) error {
	if tiles == nil {
		tiles = tfile.AutoTiles(t.Dims, 0)
	}
	w, err := tfile.Create(path, t.Dims, tiles)
	if err != nil {
		return err
	}
	p := w.Pattern()
	for _, vec := range p.Positions() {
		from, size := p.Block(vec)
		if err := w.WriteTile(vec, t.SubTensor(from, size)); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// LoadTiled materializes a .tptl tiled file as an in-memory dense tensor.
// It is the inverse of SaveTiled for tensors that fit in memory; tensors
// that do not should stay on disk and go through DecomposeTiledFile.
func LoadTiled(path string) (*Dense, error) {
	r, err := tfile.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := NewDense(r.Dims()...)
	tiling := r.Tiling()
	for _, vec := range tiling.Positions() {
		tile, err := r.ReadTile(vec)
		if err != nil {
			return nil, err
		}
		from, size := tiling.Block(vec)
		tensor.CopyRegion(out, from, tile, make([]int, len(size)), size)
	}
	return out, nil
}

// tiledFit computes 1 − ‖X−X̂‖/‖X‖ streaming over the file's tiles:
// ‖X‖² and ⟨X,X̂⟩ are additive over tiles when the model factors are
// row-sliced to each tile's extents, so only one tile is resident at a
// time.
func tiledFit(r *tfile.Reader, model *KTensor) (float64, error) {
	tiling := r.Tiling()
	var normX2, inner float64
	for _, vec := range tiling.Positions() {
		tile, err := r.ReadTile(vec)
		if err != nil {
			return 0, err
		}
		from, size := tiling.Block(vec)
		sub := make([]*mat.Matrix, len(model.Factors))
		for m, f := range model.Factors {
			sub[m] = f.SliceRows(from[m], from[m]+size[m])
		}
		subModel := cpals.NewKTensor(sub)
		copy(subModel.Lambda, model.Lambda)
		n := tile.Norm()
		normX2 += n * n
		inner += subModel.InnerDense(tile)
	}
	normX := math.Sqrt(normX2)
	if normX == 0 {
		return 1, nil
	}
	normModel := model.Norm()
	res2 := normX2 + normModel*normModel - 2*inner
	if res2 < 0 {
		res2 = 0
	}
	return 1 - math.Sqrt(res2)/normX, nil
}

package twopcp

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestPublicTensorConstructorsAndIO(t *testing.T) {
	rng := rand.New(rand.NewSource(30))

	d := RandomDense(rng, 4, 3, 2)
	if d.NModes() != 3 || d.Len() != 24 {
		t.Fatalf("RandomDense shape: %v", d.Dims)
	}
	if z := NewDense(2, 2); z.NNZ() != 0 {
		t.Fatal("NewDense not zero")
	}

	c := RandomCOO(rng, 0.3, 5, 5)
	if c.NModes() != 2 || c.NNZ() == 0 {
		t.Fatalf("RandomCOO: %v", c)
	}
	if e := NewCOO(3, 3); e.NNZ() != 0 {
		t.Fatal("NewCOO not empty")
	}
	sp := FromDense(d)
	if sp.NNZ() != d.NNZ() {
		t.Fatal("FromDense lost entries")
	}

	dir := t.TempDir()
	dp := filepath.Join(dir, "d.tpdn")
	if err := SaveDense(dp, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDense(dp)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.EqualApprox(d, 0) {
		t.Fatal("dense file round trip failed")
	}
	cp := filepath.Join(dir, "c.tpsp")
	if err := SaveCOO(cp, c); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCOO(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Dense().EqualApprox(c.Dense(), 0) {
		t.Fatal("sparse file round trip failed")
	}
}

func TestDecomposeSparseValidation(t *testing.T) {
	x := NewCOO(4, 4)
	if _, err := DecomposeSparse(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := DecomposeSparse(x, Options{Rank: 2, Partitions: []int{1, 2, 3}}); err == nil {
		t.Fatal("partition arity mismatch accepted")
	}
}

func TestCPALSValidation(t *testing.T) {
	x := NewDense(3, 3)
	if _, _, _, err := CPALS(x, 0, 1); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func TestCongruencePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	factors := make([]*Matrix, 2)
	for k := range factors {
		factors[k] = randomMatrix(rng, 4, 2)
	}
	a := NewKTensor(factors)
	if c := Congruence(a, a.Clone()); c < 0.999 {
		t.Fatalf("self congruence = %g", c)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"twopcp/internal/buffer"
	"twopcp/internal/schedule"
)

// ParamGrid reproduces the paper's Table III: the parameter settings used
// by the stand-alone evaluation (Figures 12 and 13).
type ParamGrid struct {
	Partitions      []int
	BufferFractions []float64
	VirtualIters    []int
	Schedules       []schedule.Kind
	Replacements    []buffer.Policy
}

// DefaultParamGrid returns the paper's Table III values.
func DefaultParamGrid() ParamGrid {
	return ParamGrid{
		Partitions:      []int{2, 4, 8},
		BufferFractions: []float64{1.0 / 3, 1.0 / 2, 2.0 / 3},
		VirtualIters:    []int{100, 200},
		Schedules:       schedule.Kinds,
		Replacements:    buffer.Policies,
	}
}

// Combinations returns the size of the full cross-product.
func (g ParamGrid) Combinations() int {
	return len(g.Partitions) * len(g.BufferFractions) * len(g.VirtualIters) *
		len(g.Schedules) * len(g.Replacements)
}

// String renders the grid in the paper's two-column layout.
func (g ParamGrid) String() string {
	var b strings.Builder
	b.WriteString("Table III: parameter settings (unless otherwise specified)\n")
	row := func(name, vals string) { fmt.Fprintf(&b, "%-28s %s\n", name, vals) }
	parts := make([]string, len(g.Partitions))
	for i, p := range g.Partitions {
		parts[i] = fmt.Sprintf("%d×%d×%d", p, p, p)
	}
	row("# partitions", strings.Join(parts, "; "))
	fracs := make([]string, len(g.BufferFractions))
	for i, f := range g.BufferFractions {
		fracs[i] = fmt.Sprintf("%.2g", f)
	}
	row("buffer size (× total req.)", strings.Join(fracs, "; "))
	iters := make([]string, len(g.VirtualIters))
	for i, n := range g.VirtualIters {
		iters[i] = fmt.Sprintf("%d", n)
	}
	row("# (virtual) iterations", strings.Join(iters, "; "))
	kinds := make([]string, len(g.Schedules))
	for i, k := range g.Schedules {
		kinds[i] = k.String()
	}
	row("schedules", strings.Join(kinds, "; "))
	pols := make([]string, len(g.Replacements))
	for i, p := range g.Replacements {
		pols[i] = p.String()
	}
	row("replacement", strings.Join(pols, "; "))
	return b.String()
}

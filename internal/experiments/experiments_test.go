package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"twopcp/internal/buffer"
	"twopcp/internal/schedule"
)

// Tests run the experiments at reduced scale — enough to verify the
// qualitative shapes the paper reports without multi-minute runs.

func TestTable1SmallScale(t *testing.T) {
	res, err := RunTable1(Table1Config{
		Sides: []int{16, 24},
		// Sized between the two workloads' per-reducer volumes:
		// nnz·(key + 8·rank)/reducers ≈ 17KB at side 16, ≈ 57KB at side 24.
		HaTen2MemoryBytes: 36 << 10,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, large := res.Rows[0], res.Rows[1]
	// nnz grows with the cube.
	if large.NNZ <= small.NNZ {
		t.Fatalf("nnz did not grow: %d vs %d", small.NNZ, large.NNZ)
	}
	// The smaller workload fits under the HaTen2 memory cap, the larger
	// fails — the paper's FAILS row.
	if small.HaTen2Failed {
		t.Fatal("small workload should not fail")
	}
	if !large.HaTen2Failed {
		t.Fatal("large workload should exceed the reducer cap")
	}
	// 2PCP converged fit beats HaTen2's 1-iteration fit (paper: 0.077 vs
	// 0.0011).
	if small.TwoPCPFit <= small.HaTen2Fit {
		t.Fatalf("2PCP fit %g should beat 1-iter HaTen2 fit %g", small.TwoPCPFit, small.HaTen2Fit)
	}
	out := res.String()
	if !strings.Contains(out, "FAILS") {
		t.Fatalf("table should render FAILS:\n%s", out)
	}
}

func TestFigure11Extraction(t *testing.T) {
	res := &Table1Result{Rows: []Table1Row{
		{NNZ: 100, TwoPCP: 2 * time.Second},
		{NNZ: 400, TwoPCP: 7 * time.Second},
	}}
	pts := Figure11(res)
	if len(pts) != 2 || pts[1].NNZ != 400 || pts[1].Seconds != 7 {
		t.Fatalf("points = %+v", pts)
	}
	if s := FormatFigure11(pts); !strings.Contains(s, "Figure 11") {
		t.Fatalf("format: %s", s)
	}
}

func TestTable2SmallScale(t *testing.T) {
	res, err := RunTable2(Table2Config{
		Side: 16, Rank: 4, SwapLatency: 500 * time.Microsecond,
		NaiveIters: 4, MaxVirtualIters: 12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper shape #1: block-based 2PCP beats naive out-of-core CP.
	for _, row := range res.Rows {
		if row.TotalFOR >= res.Naive {
			t.Fatalf("%s: 2PCP total %v should beat naive %v", row.Label, row.TotalFOR, res.Naive)
		}
	}
	// Paper shape #2: FOR needs no more swaps than LRU.
	for _, row := range res.Rows {
		if row.SwapsFOR > row.SwapsLRU {
			t.Fatalf("%s: FOR swaps %d > LRU %d", row.Label, row.SwapsFOR, row.SwapsLRU)
		}
	}
	// Per-block Phase-1 time shrinks with more partitions (smaller blocks).
	if res.Rows[1].Phase1PerBlock >= res.Rows[0].Phase1PerBlock {
		t.Fatalf("per-block time should shrink: %v vs %v",
			res.Rows[0].Phase1PerBlock, res.Rows[1].Phase1PerBlock)
	}
	if s := res.String(); !strings.Contains(s, "Naive CP") {
		t.Fatalf("render: %s", s)
	}
}

func TestFigure12Shapes(t *testing.T) {
	res, err := RunFigure12(Figure12Config{
		Partitions:      []int{2, 4},
		BufferFractions: []float64{1.0 / 3, 2.0 / 3},
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 parts × 2 fracs × 4 schedules × 3 policies.
	if len(res.Cells) != 2*2*4*3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	third := 1.0 / 3
	// Paper shape #1: MC with LRU is the worst strategy — it swaps on
	// every access (ΣK per virtual iteration) at 1/3 buffer.
	mcLRU := res.Lookup(4, third, schedule.ModeCentric, buffer.LRU)
	if math.Abs(mcLRU.Swaps-12) > 1e-9 { // ΣK = 3·4
		t.Fatalf("MC+LRU swaps = %g, want 12 (every access misses)", mcLRU.Swaps)
	}
	// Paper shape #2: the block-centric schedules need far less I/O than
	// MC under the same LRU budget.
	for _, kind := range []schedule.Kind{schedule.FiberOrder, schedule.ZOrder, schedule.HilbertOrder} {
		c := res.Lookup(4, third, kind, buffer.LRU)
		if c.Swaps >= mcLRU.Swaps/2 {
			t.Fatalf("%v+LRU swaps = %g, want ≪ MC's %g", kind, c.Swaps, mcLRU.Swaps)
		}
	}
	// Paper shape #3: FOR ≤ LRU for every schedule; strictly better
	// somewhere.
	better := false
	for _, parts := range []int{2, 4} {
		for _, frac := range []float64{third, 2.0 / 3} {
			for _, kind := range schedule.Kinds {
				lru := res.Lookup(parts, frac, kind, buffer.LRU)
				forw := res.Lookup(parts, frac, kind, buffer.Forward)
				if forw.Swaps > lru.Swaps+1e-9 {
					t.Fatalf("parts=%d frac=%.2f %v: FOR %g > LRU %g", parts, frac, kind, forw.Swaps, lru.Swaps)
				}
				if forw.Swaps < lru.Swaps-1e-9 {
					better = true
				}
			}
		}
	}
	if !better {
		t.Fatal("FOR never beat LRU anywhere")
	}
	// Paper shape #4: more buffer, fewer swaps (HO+FOR case).
	hoTight := res.Lookup(4, third, schedule.HilbertOrder, buffer.Forward)
	hoWide := res.Lookup(4, 2.0/3, schedule.HilbertOrder, buffer.Forward)
	if hoWide.Swaps > hoTight.Swaps {
		t.Fatalf("more buffer should not increase swaps: %g vs %g", hoWide.Swaps, hoTight.Swaps)
	}
	if s := res.String(); !strings.Contains(s, "Figure 12") {
		t.Fatalf("render: %s", s)
	}
}

func TestFigure13SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep is slow")
	}
	res, err := RunFigure13(Figure13Config{
		Datasets:        []string{"Epinions", "Face"},
		Partitions:      []int{2},
		MaxVirtualIters: 30,
		Rank:            4,
		Runs:            2,
		FaceScale:       20, // 24×32×5
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*1*3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Accuracies must be sane and the dense Face dataset must show nearly
	// identical accuracy across schedules (paper: "virtually identical").
	for _, c := range res.Cells {
		if c.AccMC < -1 || c.AccMC > 1 || c.AccS < -1 || c.AccS > 1 {
			t.Fatalf("implausible accuracy: %+v", c)
		}
		if c.Dataset == "Face" && math.Abs(c.RelDiffPct) > 10 {
			t.Fatalf("Face accuracy should be schedule-insensitive: %+v", c)
		}
	}
	if s := res.String(); !strings.Contains(s, "Figure 13") {
		t.Fatalf("render: %s", s)
	}
}

func TestParamGridMatchesPaper(t *testing.T) {
	g := DefaultParamGrid()
	if g.Combinations() != 3*3*2*4*3 {
		t.Fatalf("combinations = %d", g.Combinations())
	}
	s := g.String()
	for _, want := range []string{"2×2×2", "8×8×8", "MC", "HO", "LRU", "FOR", "100; 200"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table III missing %q:\n%s", want, s)
		}
	}
}

func TestPatternForClampsParts(t *testing.T) {
	p := patternFor([]int{100, 3}, 8)
	if p.K[0] != 8 || p.K[1] != 3 {
		t.Fatalf("K = %v", p.K)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil)")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestFigure12FourModeShapes(t *testing.T) {
	// The paper's formalism is N-mode generic; the I/O shapes must hold on
	// a 4-mode tensor too: MC+LRU misses every access, HO+FOR far fewer.
	res, err := RunFigure12(Figure12Config{
		Partitions:      []int{2, 4},
		BufferFractions: []float64{1.0 / 3},
		NModes:          4,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	third := 1.0 / 3
	mcLRU := res.Lookup(4, third, schedule.ModeCentric, buffer.LRU)
	if mcLRU.Swaps != 16 { // ΣK = 4·4 per virtual iteration, all misses
		t.Fatalf("4-mode MC+LRU swaps = %g, want 16", mcLRU.Swaps)
	}
	hoFOR := res.Lookup(4, third, schedule.HilbertOrder, buffer.Forward)
	if hoFOR.Swaps >= mcLRU.Swaps/3 {
		t.Fatalf("4-mode HO+FOR swaps = %g, want ≪ %g", hoFOR.Swaps, mcLRU.Swaps)
	}
}

func TestConvergenceTraces(t *testing.T) {
	res, err := RunConvergence(ConvergenceConfig{
		Side: 16, Parts: 2, Rank: 4, VirtualIters: 10, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 4 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	for kind, tr := range res.Traces {
		if len(tr) != 10 {
			t.Fatalf("%v trace length = %d", kind, len(tr))
		}
		// All schedules end in the same neighbourhood (same fixed point).
		if math.Abs(tr[9]-res.Traces[schedule.ModeCentric][9]) > 0.05 {
			t.Fatalf("%v final fit %g far from MC %g", kind, tr[9], res.Traces[schedule.ModeCentric][9])
		}
	}
	if s := res.String(); !strings.Contains(s, "Convergence") {
		t.Fatalf("render: %s", s)
	}
}

// TestConvergenceCheckpointPartialResume: resuming an interrupted
// convergence suite must work even for schedule kinds whose subdirectory
// was never created before the crash (resume-or-create per kind), and the
// traces must match an uncheckpointed run exactly.
func TestConvergenceCheckpointPartialResume(t *testing.T) {
	cfg := ConvergenceConfig{Side: 12, Parts: 2, Rank: 2, VirtualIters: 4, Seed: 10}
	plain, err := RunConvergence(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ck := cfg
	ck.IO = IO{Checkpoint: dir}
	if _, err := RunConvergence(ck); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash before the last kinds started: drop all but the
	// first kind's checkpoint subdirectory, then resume the suite.
	for _, kind := range schedule.Kinds[1:] {
		if err := os.RemoveAll(filepath.Join(dir, "convergence-"+kind.String())); err != nil {
			t.Fatal(err)
		}
	}
	re := cfg
	re.IO = IO{Checkpoint: dir, Resume: true}
	res, err := RunConvergence(re)
	if err != nil {
		t.Fatalf("partial resume: %v", err)
	}
	for kind, tr := range plain.Traces {
		got := res.Traces[kind]
		if len(got) != len(tr) {
			t.Fatalf("%v trace length %d vs %d", kind, len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("%v trace[%d] = %v, want %v", kind, i, got[i], tr[i])
			}
		}
	}
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// Table2Config drives the weak-configuration comparison (paper Table II):
// a high-density cube decomposed by (a) naive out-of-core CP-ALS over a
// chunk store and (b) 2PCP with 2×2×2 and 4×4×4 partitioning, Z-order
// scheduling, LRU vs FOR replacement. Per paper footnote 5, I/O is made
// ~3× as expensive as the in-memory work on a block by injecting a fixed
// per-access latency into the stores, so the wall-clock comparison is
// I/O-bound like the original TensorDB-backed system.
type Table2Config struct {
	// Side of the dense cube (paper: 1000; default 128, scaled).
	Side int
	// Density of the cube (paper: 0.49).
	Density float64
	// Rank of the decomposition (paper: 100; default 40, scaled).
	Rank int
	// Partitionings to evaluate (paper: 2×2×2 and 4×4×4).
	Parts []int
	// SwapLatency is the injected per-access store latency (default 0.5ms).
	SwapLatency time.Duration
	// NaiveIters bounds the naive out-of-core CP-ALS sweeps (default 10).
	NaiveIters int
	// MaxVirtualIters bounds Phase 2 (default 30, "ran until convergence").
	MaxVirtualIters int
	// BufferFraction for Phase 2 (default 1/2, from the Table III grid).
	BufferFraction float64
	Seed           int64
	// IO configures the Phase-2 async prefetch pipeline (zero = sync).
	// With the injected swap latency, prefetching shrinks the Phase-2
	// wall-clock columns while the swap counts stay put.
	IO IO
}

func (c *Table2Config) setDefaults() {
	if c.Side == 0 {
		c.Side = 128
	}
	if c.Density == 0 {
		c.Density = 0.49
	}
	if c.Rank == 0 {
		c.Rank = 40
	}
	if len(c.Parts) == 0 {
		c.Parts = []int{2, 4}
	}
	if c.SwapLatency == 0 {
		c.SwapLatency = 500 * time.Microsecond
	}
	if c.NaiveIters == 0 {
		c.NaiveIters = 10
	}
	if c.MaxVirtualIters == 0 {
		c.MaxVirtualIters = 30
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.5
	}
}

// Table2Row is one line of Table II.
type Table2Row struct {
	Label          string
	Phase1PerBlock time.Duration // block decomposition time (per block)
	Phase2LRU      time.Duration
	Phase2FOR      time.Duration
	TotalLRU       time.Duration
	TotalFOR       time.Duration
	SwapsLRU       int64
	SwapsFOR       int64
}

// Table2Result is the full table.
type Table2Result struct {
	Config Table2Config
	Naive  time.Duration // naive out-of-core CP-ALS wall time
	Rows   []Table2Row
}

// RunTable2 executes the comparison.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	cfg.setDefaults()
	rng := newRand(cfg.Seed)
	x := datasets.DenseUniform(rng, cfg.Density, cfg.Side, cfg.Side, cfg.Side)
	res := &Table2Result{Config: cfg}

	// Naive CP: out-of-core ALS that re-reads every chunk for every mode
	// of every sweep (default TensorDB behaviour, "no partitioning" in the
	// sense of no two-phase stitching).
	naiveStart := time.Now()
	if err := naiveOutOfCoreCP(x, cfg); err != nil {
		return nil, err
	}
	res.Naive = time.Since(naiveStart)

	for _, parts := range cfg.Parts {
		p := grid.UniformCube(3, cfg.Side, parts)
		row := Table2Row{Label: fmt.Sprintf("%d×%d×%d", parts, parts, parts)}

		// Phase 1 out of core: blocks staged on a chunk store, decomposed
		// one at a time (single worker, as in the paper's weak machine).
		chunks, err := blockstore.NewChunkStore(tempDir())
		if err != nil {
			return nil, err
		}
		if err := phase1.PartitionToChunks(x, p, chunks); err != nil {
			return nil, err
		}
		p1Start := time.Now()
		src := &phase1.ChunkSource{Store: chunks, P: p}
		// Per-block ALS runs its full budget (the paper's Phase-1 cost is
		// dominated by complete block decompositions at rank 100).
		p1, err := phase1.Run(src, phase1.Options{
			Rank: cfg.Rank, MaxIters: 12, Tol: 1e-9, Seed: cfg.Seed, Workers: 1,
		})
		if err != nil {
			return nil, err
		}
		row.Phase1PerBlock = time.Since(p1Start) / time.Duration(p.NumBlocks())

		// Phase 2 under LRU and FOR, both over latency-injected stores.
		for _, pol := range []buffer.Policy{buffer.LRU, buffer.Forward} {
			store := blockstore.WithLatency(blockstore.NewMemStore(), cfg.SwapLatency, cfg.SwapLatency)
			eng, err := refine.New(refine.Config{
				Phase1: p1, Store: store,
				Schedule: schedule.ZOrder, Policy: pol,
				BufferFraction:  cfg.BufferFraction,
				MaxVirtualIters: cfg.MaxVirtualIters, Tol: 1e-3,
				PrefetchDepth: cfg.IO.PrefetchDepth, IOWorkers: cfg.IO.IOWorkers,
				Obs: cfg.IO.Observer,
			})
			if err != nil {
				return nil, err
			}
			p2Start := time.Now()
			r, err := eng.Run()
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(p2Start)
			if pol == buffer.LRU {
				row.Phase2LRU = elapsed
				row.SwapsLRU = r.BufferStats.Fetches
			} else {
				row.Phase2FOR = elapsed
				row.SwapsFOR = r.BufferStats.Fetches
			}
		}
		// The paper's Table II totals add the per-block Phase-1 cost to the
		// Phase-2 time (79.1 + 9.6 = 88.7 etc.): with enough parallel
		// workers, Phase 1's elapsed time is one block's decomposition.
		row.TotalLRU = row.Phase1PerBlock + row.Phase2LRU
		row.TotalFOR = row.Phase1PerBlock + row.Phase2FOR
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// naiveOutOfCoreCP runs CP-ALS where every MTTKRP streams all chunks from a
// latency-injected chunk store — the "Naive CP" row: no two-phase split, so
// the full tensor crosses the I/O boundary N times per sweep.
func naiveOutOfCoreCP(x *tensor.Dense, cfg Table2Config) error {
	p := grid.UniformCube(3, cfg.Side, 2) // chunked storage layout
	chunks, err := blockstore.NewChunkStore(tempDir())
	if err != nil {
		return err
	}
	if err := phase1.PartitionToChunks(x, p, chunks); err != nil {
		return err
	}
	rng := newRand(cfg.Seed + 99)
	factors := make([]*mat.Matrix, 3)
	for m := range factors {
		factors[m] = mat.Random(cfg.Side, cfg.Rank, rng)
	}
	grams := make([]*mat.Matrix, 3)
	for m := range grams {
		grams[m] = mat.Gram(factors[m])
	}
	vec := make([]int, 3)
	for iter := 0; iter < cfg.NaiveIters; iter++ {
		for mode := 0; mode < 3; mode++ {
			m := mat.New(cfg.Side, cfg.Rank)
			for id := 0; id < p.NumBlocks(); id++ {
				p.Unlinear(id, vec)
				// Simulated chunk-read latency (same cost model as the
				// unit stores), then the partial MTTKRP for this chunk.
				time.Sleep(cfg.SwapLatency)
				blk, err := chunks.GetChunk(vec)
				if err != nil {
					return err
				}
				from, size := p.Block(vec)
				sub := make([]*mat.Matrix, 3)
				for k := 0; k < 3; k++ {
					sub[k] = factors[k].SliceRows(from[k], from[k]+size[k])
				}
				partial := tensor.MTTKRP(blk, sub, mode)
				for r := 0; r < partial.Rows; r++ {
					dst := m.Row(from[mode] + r)
					src := partial.Row(r)
					for c := range dst {
						dst[c] += src[c]
					}
				}
			}
			v := mat.New(cfg.Rank, cfg.Rank)
			v.Fill(1)
			for k := 0; k < 3; k++ {
				if k != mode {
					v.HadamardInPlace(grams[k])
				}
			}
			a := mat.RightSolveSPD(m, v)
			a.NormalizeColumns(1e-300)
			factors[mode] = a
			mat.GramInto(grams[mode], a)
		}
	}
	return nil
}

// String renders the table in the paper's layout (times in seconds; the
// paper reported minutes at 20× our scale).
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: execution times (seconds; side %d, density %.2f, rank %d)\n",
		r.Config.Side, r.Config.Density, r.Config.Rank)
	fmt.Fprintf(&b, "%-10s %16s %12s %12s %12s %12s\n",
		"# Part.", "Phase I/blk", "PhII LRU", "PhII FOR", "Tot LRU", "Tot FOR")
	fmt.Fprintf(&b, "%-10s %16s %12s %12s %12.2f %12.2f\n",
		"Naive CP", "-", "-", "-", r.Naive.Seconds(), r.Naive.Seconds())
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %16.3f %12.2f %12.2f %12.2f %12.2f\n",
			row.Label, row.Phase1PerBlock.Seconds(),
			row.Phase2LRU.Seconds(), row.Phase2FOR.Seconds(),
			row.TotalLRU.Seconds(), row.TotalFOR.Seconds())
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"twopcp"
	"twopcp/internal/datasets"
)

// AccelConfig drives the Phase-0 acceleration comparison: the same
// low-multilinear-rank tensor decomposed brute-force and with the
// Tucker compress-then-refine warm start, reporting Phase-1 wall clock
// and final fit for both arms. This is the experiment behind the
// BENCH_phase0_sketch.json benchgate baseline.
type AccelConfig struct {
	// Side of the dense cube (default 48).
	Side int
	// Parts per mode (default 2).
	Parts int
	// Rank is the CP rank (default 8); MLRank the generated multilinear
	// rank (default Rank).
	Rank   int
	MLRank int
	// Noise is the generator's relative noise level (default 0.01).
	Noise float64
	// Oversample is the range-finder oversampling (default 5).
	Oversample int
	// Diag and Collinearity configure the generator (see
	// datasets.LowMLRankSpec): a superdiagonal core gives an exact rank-R
	// CP ground truth, and collinear factor panels put cold ALS in its
	// swamp regime — the combination where compress-then-refine shines.
	Diag         bool
	Collinearity float64
	// Phase1MaxIters and Phase1Tol control per-block ALS convergence for
	// BOTH arms (defaults 500, 1e-6): running every block to its optimum
	// keeps the two phase-1 models comparable, while the accelerated
	// arm's warm-started blocks hit the tolerance after a couple of
	// sweeps instead of paying the full cold-start cost.
	Phase1MaxIters int
	Phase1Tol      float64
	// Phase2MaxIters and Phase2Tol (defaults 2000, 1e-10) run Phase 2 to
	// effective convergence in both arms, so the reported fits compare
	// converged models rather than init-dependent early stops.
	Phase2MaxIters int
	Phase2Tol      float64
	Seed           int64
}

func (c *AccelConfig) setDefaults() {
	if c.Side == 0 {
		c.Side = 48
	}
	if c.Parts == 0 {
		c.Parts = 2
	}
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.MLRank == 0 {
		c.MLRank = c.Rank
	}
	if c.Noise == 0 {
		c.Noise = 0.01
	}
	if c.Phase1MaxIters == 0 {
		c.Phase1MaxIters = 500
	}
	if c.Phase1Tol == 0 {
		c.Phase1Tol = 1e-6
	}
	if c.Phase2MaxIters == 0 {
		c.Phase2MaxIters = 2000
	}
	if c.Phase2Tol == 0 {
		c.Phase2Tol = 1e-10
	}
}

// AccelResult reports both arms of the comparison.
type AccelResult struct {
	Config AccelConfig
	// BrutePhase1 and AccelPhase1 are the Phase-1 wall clocks (the stage
	// the accelerator targets); Phase0 is the warm-start overhead.
	BrutePhase1, AccelPhase1, Phase0 time.Duration
	BruteFit, AccelFit               float64
	Accelerated                      bool
	Phase1Speedup                    float64
}

// RunAccel executes the comparison through the full public pipeline so
// both arms pay identical Phase-2 and fit-evaluation costs and differ
// only in Options.Accelerator.
func RunAccel(cfg AccelConfig) (*AccelResult, error) {
	cfg.setDefaults()
	rng := newRand(cfg.Seed)
	spec := datasets.LowMLRankSpec{R: cfg.MLRank, Noise: cfg.Noise, Diag: cfg.Diag, Collinearity: cfg.Collinearity}
	x := spec.Generate(rng, cfg.Side, cfg.Side, cfg.Side)
	base := twopcp.Options{
		Rank:           cfg.Rank,
		Partitions:     []int{cfg.Parts},
		Seed:           cfg.Seed,
		Phase1MaxIters: cfg.Phase1MaxIters,
		Phase1Tol:      cfg.Phase1Tol,
		MaxIters:       cfg.Phase2MaxIters,
		Tol:            cfg.Phase2Tol,
	}
	res := &AccelResult{Config: cfg}

	brute, err := twopcp.Decompose(x, base)
	if err != nil {
		return nil, err
	}
	res.BrutePhase1 = brute.RunStats.Phase1Time
	res.BruteFit = brute.Fit

	accelOpts := base
	accelOpts.Accelerator = twopcp.AccelTucker
	accelOpts.SketchOversample = cfg.Oversample
	accel, err := twopcp.Decompose(x, accelOpts)
	if err != nil {
		return nil, err
	}
	res.AccelPhase1 = accel.RunStats.Phase1Time
	res.Phase0 = accel.RunStats.Phase0Time
	res.AccelFit = accel.Fit
	res.Accelerated = accel.RunStats.Accelerated
	if total := accel.RunStats.Phase0Time + accel.RunStats.Phase1Time; total > 0 {
		res.Phase1Speedup = float64(brute.RunStats.Phase1Time) / float64(total)
	}
	return res, nil
}

// String renders the comparison.
func (r *AccelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Phase-0 acceleration (side %d, mlrank %d, rank %d, noise %g)\n",
		r.Config.Side, r.Config.MLRank, r.Config.Rank, r.Config.Noise)
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "", "phase1", "phase0", "fit")
	fmt.Fprintf(&b, "%-12s %12v %12s %10.6f\n", "brute", r.BrutePhase1.Round(time.Microsecond), "-", r.BruteFit)
	fmt.Fprintf(&b, "%-12s %12v %12v %10.6f\n", "tucker", r.AccelPhase1.Round(time.Microsecond),
		r.Phase0.Round(time.Microsecond), r.AccelFit)
	fmt.Fprintf(&b, "phase-1 speedup (incl. phase 0): %.2f×   fit delta: %+.2g   accelerated: %v\n",
		r.Phase1Speedup, r.AccelFit-r.BruteFit, r.Accelerated)
	return b.String()
}

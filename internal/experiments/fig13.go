package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// Figure13Config drives the accuracy experiment of Figure 13: the relative
// accuracy difference of the block-centric schedules (FO, ZO, HO) versus
// the conventional mode-centric schedule on the four datasets, across
// partition counts, with a bounded number of virtual iterations.
//
// Accuracy is 1 − ‖X−X̂‖/‖X‖ against the original tensor (paper §III-B);
// the replacement policy does not affect accuracy, only I/O, so runs use
// LRU throughout.
type Figure13Config struct {
	// Datasets to include; any of "Epinions", "Ciao", "Enron", "Face"
	// (default: all four).
	Datasets []string
	// Partitions per mode (paper: 2, 4, 8).
	Partitions []int
	// MaxVirtualIters is the iteration bound (paper: 100 for Fig 13(a),
	// 200 for Fig 13(b)).
	MaxVirtualIters int
	// Rank of the decomposition (paper: 100; default 8, scaled — see
	// DESIGN.md).
	Rank int
	// Runs is the number of repetitions whose median is reported
	// (paper: 10; default 3).
	Runs int
	// FaceScale shrinks the Face dataset (default 10 → 48×64×10).
	FaceScale int
	Seed      int64
	// IO configures the Phase-2 async prefetch pipeline (zero = sync).
	// Accuracy is independent of prefetching; this only speeds runs up.
	IO IO
}

func (c *Figure13Config) setDefaults() {
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"Epinions", "Ciao", "Enron", "Face"}
	}
	if len(c.Partitions) == 0 {
		c.Partitions = []int{2, 4, 8}
	}
	if c.MaxVirtualIters == 0 {
		c.MaxVirtualIters = 100
	}
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.FaceScale == 0 {
		c.FaceScale = 10
	}
}

// Figure13Cell is one bar: the median relative accuracy difference (in %)
// of one block-centric schedule vs mode-centric.
type Figure13Cell struct {
	Dataset  string
	Parts    int
	Schedule schedule.Kind // FO, ZO or HO
	// RelDiffPct = 100 · (accuracy(S) − accuracy(MC)) / |accuracy(MC)|,
	// median over Runs.
	RelDiffPct float64
	// AccMC and AccS carry the median absolute accuracies for reference.
	AccMC float64
	AccS  float64
}

// Figure13Result is the full sweep.
type Figure13Result struct {
	Config Figure13Config
	Cells  []Figure13Cell
}

// fitAgainst measures model accuracy against the original data.
type fitAgainst func(kt *cpals.KTensor) float64

// loadDataset materializes a dataset and its accuracy functional.
func loadDataset(name string, rng *rand.Rand, faceScale int) (dims []int, blocks func(p *grid.Pattern) (phase1.Source, error), fit fitAgainst, err error) {
	switch name {
	case "Epinions", "Ciao", "Enron":
		var x *tensor.COO
		switch name {
		case "Epinions":
			x = datasets.Epinions(rng)
		case "Ciao":
			x = datasets.Ciao(rng)
		default:
			x = datasets.Enron(rng)
		}
		return x.Dims, func(p *grid.Pattern) (phase1.Source, error) {
				return phase1.NewCOOSource(x, p)
			}, func(kt *cpals.KTensor) float64 {
				return kt.FitSparse(x)
			}, nil
	case "Face":
		x := datasets.Face(rng, faceScale)
		return x.Dims, func(p *grid.Pattern) (phase1.Source, error) {
				return phase1.NewDenseSource(x, p)
			}, func(kt *cpals.KTensor) float64 {
				return kt.Fit(x)
			}, nil
	default:
		return nil, nil, nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// patternFor splits every mode parts ways, clamped to the mode size.
func patternFor(dims []int, parts int) *grid.Pattern {
	k := make([]int, len(dims))
	for i, d := range dims {
		k[i] = parts
		if k[i] > d {
			k[i] = d
		}
	}
	return grid.MustNew(dims, k)
}

// RunFigure13 executes the sweep.
func RunFigure13(cfg Figure13Config) (*Figure13Result, error) {
	cfg.setDefaults()
	res := &Figure13Result{Config: cfg}
	blockKinds := []schedule.Kind{schedule.FiberOrder, schedule.ZOrder, schedule.HilbertOrder}

	type key struct {
		parts int
		kind  schedule.Kind
	}
	for _, name := range cfg.Datasets {
		diffs := map[key][]float64{}
		accMC := map[int][]float64{}
		accS := map[key][]float64{}
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*1009
			rng := newRand(seed + int64(len(name))*7919)
			dims, mkSource, fit, err := loadDataset(name, rng, cfg.FaceScale)
			if err != nil {
				return nil, err
			}
			for _, parts := range cfg.Partitions {
				p := patternFor(dims, parts)
				src, err := mkSource(p)
				if err != nil {
					return nil, err
				}
				p1, err := phase1.Run(src, phase1.Options{
					Rank: cfg.Rank, MaxIters: 30, Tol: 1e-4, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				accOf := func(kind schedule.Kind) (float64, error) {
					eng, err := refine.New(refine.Config{
						Phase1: p1, Store: blockstore.NewMemStore(),
						Schedule: kind, Policy: buffer.LRU,
						// Accuracy does not depend on the buffer; a full
						// buffer just avoids pointless store round trips.
						BufferFraction:  1,
						MaxVirtualIters: cfg.MaxVirtualIters,
						Tol:             1e-2, // paper §VIII-C stopping condition
						Seed:            seed,
						PrefetchDepth:   cfg.IO.PrefetchDepth,
						IOWorkers:       cfg.IO.IOWorkers,
						Obs:             cfg.IO.Observer,
					})
					if err != nil {
						return 0, err
					}
					r, err := eng.Run()
					if err != nil {
						return 0, err
					}
					return fit(cpals.NewKTensor(r.Factors)), nil
				}
				mc, err := accOf(schedule.ModeCentric)
				if err != nil {
					return nil, err
				}
				accMC[parts] = append(accMC[parts], mc)
				for _, kind := range blockKinds {
					s, err := accOf(kind)
					if err != nil {
						return nil, err
					}
					k := key{parts, kind}
					accS[k] = append(accS[k], s)
					denom := mc
					if denom < 0 {
						denom = -denom
					}
					if denom < 1e-12 {
						denom = 1e-12
					}
					diffs[k] = append(diffs[k], 100*(s-mc)/denom)
				}
			}
		}
		for _, parts := range cfg.Partitions {
			for _, kind := range blockKinds {
				k := key{parts, kind}
				res.Cells = append(res.Cells, Figure13Cell{
					Dataset: name, Parts: parts, Schedule: kind,
					RelDiffPct: median(diffs[k]),
					AccMC:      median(accMC[parts]),
					AccS:       median(accS[k]),
				})
			}
		}
	}
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Lookup returns the cell for a configuration (nil if absent).
func (r *Figure13Result) Lookup(dataset string, parts int, kind schedule.Kind) *Figure13Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Dataset == dataset && c.Parts == parts && c.Schedule == kind {
			return c
		}
	}
	return nil
}

// String renders the figure as a table: rows are dataset × partitions,
// columns are the block-centric schedules' relative accuracy difference.
func (r *Figure13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: median accuracy difference vs MC schedule (%%), max %d virtual iterations\n",
		r.Config.MaxVirtualIters)
	fmt.Fprintf(&b, "%-10s %-8s %10s %10s %10s %12s\n", "dataset", "parts", "FO", "ZO", "HO", "acc(MC)")
	for _, name := range r.Config.Datasets {
		for _, parts := range r.Config.Partitions {
			fo := r.Lookup(name, parts, schedule.FiberOrder)
			zo := r.Lookup(name, parts, schedule.ZOrder)
			ho := r.Lookup(name, parts, schedule.HilbertOrder)
			if fo == nil || zo == nil || ho == nil {
				continue
			}
			fmt.Fprintf(&b, "%-10s %-8s %+10.2f %+10.2f %+10.2f %12.4f\n",
				name, fmt.Sprintf("%dx%dx%d", parts, parts, parts),
				fo.RelDiffPct, zo.RelDiffPct, ho.RelDiffPct, fo.AccMC)
		}
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
)

var tempSeq atomic.Int64

// tempDir allocates a scratch directory for chunk stores; experiments are
// long-lived processes, so cleanup is left to the OS temp reaper (callers
// that care use their own stores).
func tempDir() string {
	dir, err := os.MkdirTemp("", fmt.Sprintf("twopcp-exp-%d-", tempSeq.Add(1)))
	if err != nil {
		// Fall back to a local directory; experiments are best-effort
		// about scratch placement.
		dir = fmt.Sprintf("twopcp-exp-%d", tempSeq.Add(1))
		_ = os.MkdirAll(dir, 0o755)
	}
	return dir
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

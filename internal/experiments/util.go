package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"

	"twopcp/internal/obs"
	"twopcp/internal/refine"
)

var tempSeq atomic.Int64

// tempDir allocates a scratch directory for chunk stores; experiments are
// long-lived processes, so cleanup is left to the OS temp reaper (callers
// that care use their own stores).
func tempDir() string {
	dir, err := os.MkdirTemp("", fmt.Sprintf("twopcp-exp-%d-", tempSeq.Add(1)))
	if err != nil {
		// Fall back to a local directory; experiments are best-effort
		// about scratch placement.
		dir = fmt.Sprintf("twopcp-exp-%d", tempSeq.Add(1))
		_ = os.MkdirAll(dir, 0o755)
	}
	return dir
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// IO carries the Phase-2 asynchronous-pipeline knobs shared by every
// experiment config. The zero value is the paper's synchronous setting.
// Swap counts, fit traces and factors are identical at every depth (the
// engine's update order does not depend on prefetching), so enabling the
// pipeline only changes the wall-clock columns of the tables; raw store
// byte counters may include a few wasted prefetch reads.
type IO struct {
	// PrefetchDepth is how many schedule steps ahead Phase 2 prefetches
	// data units (0 = synchronous).
	PrefetchDepth int
	// IOWorkers sizes the async I/O pool (0 = auto when PrefetchDepth > 0).
	IOWorkers int
	// Checkpoint, when non-empty, makes the experiment's long decomposition
	// runs durable: each run checkpoints into its own subdirectory of this
	// directory (named after the run), and Resume restarts interrupted runs
	// from their last checkpoint. Results are bit-identical either way.
	// Currently honored by the convergence experiment, whose per-schedule
	// trace runs are the longest single engine invocations in the suite.
	Checkpoint string
	// Resume continues runs previously checkpointed under Checkpoint.
	Resume bool
	// Observer receives telemetry from every engine run the experiment
	// performs (nil disables it). Telemetry never changes results; see
	// the obs package's determinism contract.
	Observer *obs.Observer
	// Stop, when non-nil, requests a graceful drain when closed: the
	// in-flight engine run finishes its current step, checkpoints (when
	// Checkpoint is set), and the experiment returns an error wrapping
	// ErrStopped. Currently honored by the convergence experiment.
	Stop <-chan struct{}
}

// ErrStopped marks a run drained early via IO.Stop; a Resume continues it
// bit-exactly. It aliases the engine's sentinel so errors.Is works on
// errors surfacing from either layer.
var ErrStopped = refine.ErrStopped

// Package experiments reproduces every table and figure of the paper's
// §VIII evaluation: Table I and Figure 11 (2PCP vs HaTen2 on dense
// tensors), Table II (naive CP vs 2PCP under LRU/FOR), Table III (the
// parameter grid), Figure 12 (per-virtual-iteration data swaps across
// schedules × policies × partitions × buffer sizes) and Figure 13
// (block-centric vs mode-centric accuracy on the four datasets).
//
// Absolute sizes are scaled down from the paper's billion-scale runs (see
// DESIGN.md); each Config documents the scaling and lets callers push the
// sizes back up. All runs are deterministic given their Seed.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/haten2"
	"twopcp/internal/mapreduce"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// Table1Config drives the strong-configuration comparison (paper Table I):
// dense cubes of growing side, density 0.2, rank 10, 2×2×2 partitioning,
// 2PCP vs HaTen2 (1 iteration, as in the paper).
type Table1Config struct {
	// Sides are the cube sides. The paper used 500/1000/1500; the default
	// scales by 1/10 to 50/100/150 (shape-preserving, see DESIGN.md).
	Sides []int
	// Density of nonzero cells (paper: 0.2).
	Density float64
	// Rank is the target decomposition rank (paper: 10).
	Rank int
	// Parts partitions each mode (paper: 2).
	Parts int
	// HaTen2MemoryBytes caps each simulated reducer; the largest side is
	// expected to exceed it, reproducing the paper's FAILS row. Default
	// sizes the cap between the second and third default workloads.
	HaTen2MemoryBytes int64
	// Reducers is the MapReduce parallelism (default 4).
	Reducers int
	Seed     int64
	// IO configures the Phase-2 async prefetch pipeline (zero = sync).
	IO IO
}

func (c *Table1Config) setDefaults() {
	if len(c.Sides) == 0 {
		c.Sides = []int{50, 100, 150}
	}
	if c.Density == 0 {
		c.Density = 0.2
	}
	if c.Rank == 0 {
		c.Rank = 10
	}
	if c.Parts == 0 {
		c.Parts = 2
	}
	if c.HaTen2MemoryBytes == 0 {
		c.HaTen2MemoryBytes = 8 << 20
	}
	if c.Reducers == 0 {
		c.Reducers = 4
	}
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Side         int
	NNZ          int
	TwoPCP       time.Duration
	TwoPCPFit    float64
	HaTen2       time.Duration
	HaTen2Fit    float64
	HaTen2Failed bool
}

// Table1Result is the full table.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// RunTable1 executes the comparison.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	cfg.setDefaults()
	res := &Table1Result{Config: cfg}
	for i, side := range cfg.Sides {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		x := datasets.DenseUniform(rng, cfg.Density, side, side, side)
		row := Table1Row{Side: side, NNZ: x.NNZ()}

		// 2PCP: Phase 1 (parallel per-block ALS) + Phase 2 to convergence.
		p := grid.UniformCube(3, side, cfg.Parts)
		start := time.Now()
		src, err := phase1.NewDenseSource(x, p)
		if err != nil {
			return nil, err
		}
		p1, err := phase1.Run(src, phase1.Options{
			Rank: cfg.Rank, MaxIters: 10, Tol: 1e-3, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		eng, err := refine.New(refine.Config{
			Phase1: p1, Store: blockstore.NewMemStore(),
			Schedule: schedule.ZOrder, Policy: buffer.Forward,
			BufferFraction: 0.5, MaxVirtualIters: 20, Tol: 1e-3,
			PrefetchDepth: cfg.IO.PrefetchDepth, IOWorkers: cfg.IO.IOWorkers,
			Obs: cfg.IO.Observer,
		})
		if err != nil {
			return nil, err
		}
		r2, err := eng.Run()
		if err != nil {
			return nil, err
		}
		row.TwoPCP = time.Since(start)
		row.TwoPCPFit = cpals.NewKTensor(r2.Factors).Fit(x)

		// HaTen2 (1 iteration, as measured in the paper) on the same data.
		sparse := tensor.FromDense(x)
		start = time.Now()
		kt, info, err := haten2.Decompose(sparse, haten2.Options{
			Rank: cfg.Rank, MaxIters: 1, Seed: cfg.Seed,
			MR: mapreduce.Config{NumReducers: cfg.Reducers, ReducerMemoryBytes: cfg.HaTen2MemoryBytes},
		})
		row.HaTen2 = time.Since(start)
		switch {
		case errors.Is(err, haten2.ErrResources):
			row.HaTen2Failed = true
		case err != nil:
			return nil, err
		default:
			row.HaTen2Fit = kt.FitSparse(sparse)
			_ = info
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: execution times on dense tensors (density %.2g, rank %d, %d×%d×%d partitioning)\n",
		r.Config.Density, r.Config.Rank, r.Config.Parts, r.Config.Parts, r.Config.Parts)
	fmt.Fprintf(&b, "%-22s %14s %12s %14s %12s\n", "Tensor size", "2PCP (sec)", "2PCP fit", "HaTen2 (sec)", "HaTen2 fit")
	for _, row := range r.Rows {
		size := fmt.Sprintf("%d×%d×%d (%s nnz)", row.Side, row.Side, row.Side, humanCount(row.NNZ))
		h2 := fmt.Sprintf("%.3f", row.HaTen2.Seconds())
		h2fit := fmt.Sprintf("%.4f", row.HaTen2Fit)
		if row.HaTen2Failed {
			h2, h2fit = "FAILS", "-"
		}
		fmt.Fprintf(&b, "%-22s %14.3f %12.4f %14s %12s\n",
			size, row.TwoPCP.Seconds(), row.TwoPCPFit, h2, h2fit)
	}
	return b.String()
}

// Figure11Point is one point of the scaling curve (execution time vs number
// of nonzero elements, paper Figure 11 — the 2PCP rows of Table I).
type Figure11Point struct {
	NNZ     int
	Seconds float64
}

// Figure11 extracts the scaling series from a Table I run.
func Figure11(t *Table1Result) []Figure11Point {
	pts := make([]Figure11Point, len(t.Rows))
	for i, row := range t.Rows {
		pts[i] = Figure11Point{NNZ: row.NNZ, Seconds: row.TwoPCP.Seconds()}
	}
	return pts
}

// FormatFigure11 renders the series as a two-column table.
func FormatFigure11(pts []Figure11Point) string {
	var b strings.Builder
	b.WriteString("Figure 11: 2PCP execution time vs # of non-zero elements\n")
	fmt.Fprintf(&b, "%-16s %12s\n", "# non-zeros", "time (sec)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-16s %12.3f\n", humanCount(p.NNZ), p.Seconds)
	}
	return b.String()
}

func humanCount(n int) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.3gB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.3gM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.3gK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

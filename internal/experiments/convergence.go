package experiments

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/datasets"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/runstate"
	"twopcp/internal/schedule"
)

// ConvergenceConfig drives a supplementary experiment (in the spirit of the
// paper's Figure 7): the surrogate-fit trajectory per virtual iteration for
// every schedule on the same Phase-1 output. It illustrates why virtual
// iterations make block-centric and mode-centric runs comparable — and why
// termination checks only start after the first full cycle.
type ConvergenceConfig struct {
	// Side of the dense cube (default 32).
	Side int
	// Parts per mode (default 4).
	Parts int
	// Rank (default 8).
	Rank int
	// VirtualIters to trace (default 40).
	VirtualIters int
	Seed         int64
	// Constraint and Lambda pick the row-update solver for both phases
	// ("", "ridge"+Lambda or "nonneg" — see cpals.NewSolver), so the
	// schedule comparison can be rerun under constrained updates. The
	// solver identity joins the per-schedule checkpoint fingerprints.
	Constraint string
	Lambda     float64
	// IO configures the Phase-2 async prefetch pipeline (zero = sync).
	// The traces are identical either way.
	IO IO
}

func (c *ConvergenceConfig) setDefaults() {
	if c.Side == 0 {
		c.Side = 32
	}
	if c.Parts == 0 {
		c.Parts = 4
	}
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.VirtualIters == 0 {
		c.VirtualIters = 40
	}
}

// ConvergenceResult holds one fit trace per schedule.
type ConvergenceResult struct {
	Config ConvergenceConfig
	Traces map[schedule.Kind][]float64
}

// RunConvergence executes the trace comparison.
func RunConvergence(cfg ConvergenceConfig) (*ConvergenceResult, error) {
	cfg.setDefaults()
	solver, err := cpals.NewSolver(cfg.Constraint, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	// Canonical fingerprint name (shared with the twopcp checkpoint
	// layer): "" for least squares whatever spelling the caller used, so
	// checkpoints match across "", "none" and "ls".
	fpConstraint := cpals.FingerprintName(solver)
	rng := newRand(cfg.Seed)
	x := datasets.DenseUniform(rng, 0.5, cfg.Side, cfg.Side, cfg.Side)
	p := grid.UniformCube(3, cfg.Side, cfg.Parts)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		return nil, err
	}
	p1, err := phase1.Run(src, phase1.Options{
		Rank: cfg.Rank, MaxIters: 10, Tol: 1e-3, Seed: cfg.Seed, Solver: solver,
	})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Config: cfg, Traces: map[schedule.Kind][]float64{}}
	for _, kind := range schedule.Kinds {
		ecfg := refine.Config{
			Phase1: p1, Store: blockstore.NewMemStore(),
			Schedule: kind, Policy: buffer.LRU,
			MaxVirtualIters: cfg.VirtualIters,
			Tol:             math.Inf(-1),
			PrefetchDepth:   cfg.IO.PrefetchDepth,
			IOWorkers:       cfg.IO.IOWorkers,
			Obs:             cfg.IO.Observer,
			Solver:          solver,
			Stop:            cfg.IO.Stop,
		}
		if cfg.IO.Checkpoint != "" {
			// One checkpoint subdirectory per schedule: the traces are
			// independent runs, each resumable on its own. Resume-or-create
			// per subdirectory — an interrupted suite may have started only
			// some of the kinds before the crash.
			sub := filepath.Join(cfg.IO.Checkpoint, "convergence-"+kind.String())
			rs, err := runstate.Open(
				sub,
				runstate.Meta{
					InputKind: "dense", Dims: p.Dims, Partitions: p.K,
					Rank: cfg.Rank, Schedule: kind.String(), Replacement: buffer.LRU.String(),
					// JSON cannot carry -Inf; the finite minimum is an
					// equivalent fingerprint for "convergence disabled".
					MaxIters: cfg.VirtualIters, Tol: -math.MaxFloat64, Seed: cfg.Seed,
					Constraint: fpConstraint, Lambda: cfg.Lambda,
				},
				p.NumBlocks(), cfg.IO.Resume && runstate.HasManifest(sub))
			if err != nil {
				return nil, err
			}
			ecfg.Checkpoint = rs
		}
		eng, err := refine.New(ecfg)
		if err != nil {
			return nil, err
		}
		r, err := eng.Run()
		if err != nil {
			return nil, err
		}
		res.Traces[kind] = r.FitTrace
	}
	return res, nil
}

// String renders the traces side by side, one row per virtual iteration.
func (r *ConvergenceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Convergence: surrogate fit per virtual iteration (side %d, %d×%d×%d, rank %d)\n",
		r.Config.Side, r.Config.Parts, r.Config.Parts, r.Config.Parts, r.Config.Rank)
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s\n", "iter", "MC", "FO", "ZO", "HO")
	n := 0
	for _, tr := range r.Traces {
		if len(tr) > n {
			n = len(tr)
		}
	}
	at := func(kind schedule.Kind, i int) string {
		tr := r.Traces[kind]
		if i >= len(tr) {
			return "-"
		}
		return fmt.Sprintf("%.4f", tr[i])
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6d %10s %10s %10s %10s\n", i+1,
			at(schedule.ModeCentric, i), at(schedule.FiberOrder, i),
			at(schedule.ZOrder, i), at(schedule.HilbertOrder, i))
	}
	return b.String()
}

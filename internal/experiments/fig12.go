package experiments

import (
	"fmt"
	"math"
	"strings"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/refine"
	"twopcp/internal/schedule"
)

// Figure12Config drives the I/O experiment of Figure 12: per-virtual-
// iteration data swaps for every schedule × replacement policy across
// partition counts and buffer sizes. As the paper notes (§VIII-C.1), the
// swap count is not a function of the data — only of the partition pattern
// and the buffer size relative to the total space requirement — so the
// runs use small synthetic sub-factors and the numbers transfer to any
// tensor with the same pattern.
type Figure12Config struct {
	// Partitions per mode (paper: 2, 4, 8 → 2×2×2, 4×4×4, 8×8×8).
	Partitions []int
	// BufferFractions of the total space requirement (paper: 1/3, 1/2, 2/3).
	BufferFractions []float64
	// Rank of the synthetic sub-factors (irrelevant to the counts as all
	// units scale together; default 4).
	Rank int
	// MeasuredCycles sets how many full block cycles are measured after a
	// one-cycle warm-up (default 2).
	MeasuredCycles int
	// NModes is the tensor order (default 3, the paper's setting; the
	// formalism — and this sweep — is N-mode generic).
	NModes int
	Seed   int64
	// IO configures the Phase-2 async prefetch pipeline (zero = sync).
	// The swap counts this figure reports are identical either way.
	IO IO
}

func (c *Figure12Config) setDefaults() {
	if len(c.Partitions) == 0 {
		c.Partitions = []int{2, 4, 8}
	}
	if len(c.BufferFractions) == 0 {
		c.BufferFractions = []float64{1.0 / 3, 1.0 / 2, 2.0 / 3}
	}
	if c.Rank == 0 {
		c.Rank = 4
	}
	if c.MeasuredCycles == 0 {
		c.MeasuredCycles = 2
	}
	if c.NModes == 0 {
		c.NModes = 3
	}
}

// Figure12Cell is one bar of Figure 12.
type Figure12Cell struct {
	Parts    int
	Fraction float64
	Schedule schedule.Kind
	Policy   buffer.Policy
	Swaps    float64 // data swaps per virtual iteration, steady state
}

// Figure12Result is the full sweep.
type Figure12Result struct {
	Config Figure12Config
	Cells  []Figure12Cell
}

// syntheticPhase1 builds a Phase-1 result with random sub-factors for an
// nModes-cube partitioned parts ways per mode — sufficient for swap
// counting, which is data-independent.
func syntheticPhase1(nModes, parts, rank int, seed int64) *phase1.Result {
	dim := 4 * parts // uniform blocks of 4 rows per mode
	p := grid.UniformCube(nModes, dim, parts)
	rng := newRand(seed)
	res := &phase1.Result{Pattern: p, Rank: rank}
	res.Sub = make([][]*mat.Matrix, p.NumBlocks())
	res.Fits = make([]float64, p.NumBlocks())
	for id := range res.Sub {
		res.Sub[id] = make([]*mat.Matrix, nModes)
		for m := 0; m < nModes; m++ {
			res.Sub[id][m] = mat.Random(4, rank, rng)
		}
	}
	return res
}

// RunFigure12 executes the sweep.
func RunFigure12(cfg Figure12Config) (*Figure12Result, error) {
	cfg.setDefaults()
	res := &Figure12Result{Config: cfg}
	for _, parts := range cfg.Partitions {
		p1 := syntheticPhase1(cfg.NModes, parts, cfg.Rank, cfg.Seed)
		for _, frac := range cfg.BufferFractions {
			for _, kind := range schedule.Kinds {
				sched := schedule.New(kind, p1.Pattern)
				// Warm up one full cycle, then measure MeasuredCycles.
				warmup := int(math.Ceil(sched.VirtualIterationsPerCycle()))
				measured := int(math.Ceil(sched.VirtualIterationsPerCycle())) * cfg.MeasuredCycles
				for _, pol := range buffer.Policies {
					eng, err := refine.New(refine.Config{
						Phase1: p1, Store: blockstore.NewMemStore(),
						Schedule: kind, Policy: pol,
						BufferFraction:     frac,
						MaxVirtualIters:    measured,
						WarmupVirtualIters: warmup,
						Tol:                math.Inf(-1),
						PrefetchDepth:      cfg.IO.PrefetchDepth,
						IOWorkers:          cfg.IO.IOWorkers,
						Obs:                cfg.IO.Observer,
					})
					if err != nil {
						return nil, err
					}
					r, err := eng.Run()
					if err != nil {
						return nil, err
					}
					res.Cells = append(res.Cells, Figure12Cell{
						Parts: parts, Fraction: frac,
						Schedule: kind, Policy: pol,
						Swaps: r.SwapsPerVirtualIter,
					})
				}
			}
		}
	}
	return res, nil
}

// Lookup returns the cell for a configuration (nil if absent).
func (r *Figure12Result) Lookup(parts int, frac float64, kind schedule.Kind, pol buffer.Policy) *Figure12Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Parts == parts && math.Abs(c.Fraction-frac) < 1e-9 && c.Schedule == kind && c.Policy == pol {
			return c
		}
	}
	return nil
}

// String renders the figure as one table per buffer fraction, with the
// paper's bar groups as rows (schedule) and series as columns (policy).
func (r *Figure12Result) String() string {
	var b strings.Builder
	for _, frac := range r.Config.BufferFractions {
		fmt.Fprintf(&b, "Figure 12: per-virtual-iteration data swaps (buffer = %.2g × total requirement)\n", frac)
		fmt.Fprintf(&b, "%-10s %-6s %10s %10s %10s\n", "partitions", "sched", "LRU", "MRU", "FOR")
		for _, parts := range r.Config.Partitions {
			for _, kind := range schedule.Kinds {
				lru := r.Lookup(parts, frac, kind, buffer.LRU)
				mru := r.Lookup(parts, frac, kind, buffer.MRU)
				forw := r.Lookup(parts, frac, kind, buffer.Forward)
				if lru == nil || mru == nil || forw == nil {
					continue
				}
				fmt.Fprintf(&b, "%-10s %-6s %10.2f %10.2f %10.2f\n",
					fmt.Sprintf("%dx%dx%d", parts, parts, parts), kind,
					lru.Swaps, mru.Swaps, forw.Swaps)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

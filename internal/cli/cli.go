// Package cli holds the process-level plumbing the twopcp front-ends
// (cmd/twopcp, cmd/experiments, cmd/twopcpd) share: the graceful-drain
// signal handler and its exit-code conventions, the telemetry flag wiring
// (trace, metrics registry, pprof/Prometheus endpoint, periodic progress),
// environment-variable flag defaults, and the factor CSV export whose
// byte-exact format the crash-recovery and service smoke tests compare.
// Keeping one copy here is what keeps the three binaries' contracts
// identical: same exit codes, same summary discipline, same CSV bits.
package cli

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"twopcp"
	"twopcp/internal/par"
)

// Exit codes beyond the conventional 1 (failure) / 2 (usage), shared by
// every front-end so scripts can tell resumable outcomes from hard
// failures.
const (
	// ExitDrained: the run stopped gracefully on SIGTERM/SIGINT after
	// writing a checkpoint; restart with -resume to continue bit-exactly.
	ExitDrained = 3
	// ExitQuarantine: Phase-1 blocks exhausted the retry budget on a
	// permanent fault; the rest of the run is checkpointed, so fixing the
	// fault and resuming recomputes only the quarantined blocks.
	ExitQuarantine = 4
)

// InstallDrain installs the shared signal contract: the first
// SIGTERM/SIGINT closes the returned channel (callers pass it as
// Options.Stop so the run finishes its in-flight step, checkpoints, and
// returns ErrInterrupted → ExitDrained); a second signal kills the
// process the usual way because the handler resets itself. name prefixes
// the stderr notice.
func InstallDrain(name string) <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "%s: received %v, draining (finishing in-flight step, writing checkpoint)\n", name, s)
		signal.Stop(sigc)
		close(stop)
	}()
	return stop
}

// ExitCode maps a run error to the front-ends' shared exit-code
// convention: ExitDrained for a graceful drain (twopcp.ErrInterrupted),
// ExitQuarantine for quarantined Phase-1 blocks, 1 for everything else,
// 0 for nil.
func ExitCode(err error) int {
	var qe *twopcp.QuarantineError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, twopcp.ErrInterrupted):
		return ExitDrained
	case errors.As(err, &qe):
		return ExitQuarantine
	}
	return 1
}

// EnvFloat reads a float64 flag default from the environment (0 when
// unset or unparseable — the flag's own validation is the error path).
func EnvFloat(name string) float64 {
	v, _ := strconv.ParseFloat(os.Getenv(name), 64)
	return v
}

// EnvInt reads an int64 flag default from the environment.
func EnvInt(name string) int64 {
	v, _ := strconv.ParseInt(os.Getenv(name), 10, 64)
	return v
}

// Telemetry wires the shared observability flags (-trace, -metrics,
// -pprof, -progress) into one twopcp.Observer. Fill the fields from the
// parsed flags and call Start; any subset may be set, and when all are
// empty Start returns a nil observer so the run pays essentially
// nothing.
type Telemetry struct {
	// TracePath appends the structured JSONL event trace to this file.
	TracePath string
	// MetricsPath writes a JSON metrics-registry snapshot here after the
	// run (on Close).
	MetricsPath string
	// PprofAddr serves net/http/pprof plus a Prometheus /metrics endpoint
	// on this address while the run executes.
	PprofAddr string
	// Progress prints a periodic progress line to stderr at this interval.
	Progress time.Duration
}

// Handle is the live telemetry state Start returns: the observer to pass
// as Options.Observer (nil when no telemetry flag was set) and the
// registry behind it (nil without metrics). Close stops the progress
// reporter, flushes and closes the trace, and writes the metrics
// snapshot; it returns the first error.
type Handle struct {
	// Observer is the configured telemetry sink for Options.Observer.
	Observer *twopcp.Observer
	// Registry is the metrics registry behind Observer, when metrics are
	// on — front-ends read live counters (progress, /metrics) off it.
	Registry *twopcp.Registry

	metricsPath  string
	rec          *twopcp.Recorder
	stopProgress func()
	undispatch   bool
}

// enabled reports whether any telemetry flag was set.
func (t Telemetry) enabled() bool {
	return t.TracePath != "" || t.MetricsPath != "" || t.PprofAddr != "" || t.Progress > 0
}

// Start opens the configured sinks: the trace recorder (append mode, so
// a resumed run extends the pre-crash stream), the metrics registry
// (bound to the par dispatch counter), the pprof+/metrics server, and
// the progress reporter. The returned Handle must be Closed after the
// run; Close is safe on every path Start returns successfully.
func (t Telemetry) Start() (*Handle, error) {
	h := &Handle{metricsPath: t.MetricsPath, stopProgress: func() {}}
	if !t.enabled() {
		return h, nil
	}
	ob := &twopcp.Observer{}
	if t.TracePath != "" {
		rec, err := twopcp.OpenTrace(t.TracePath)
		if err != nil {
			return nil, err
		}
		h.rec = rec
		ob.Trace = rec
	}
	if t.MetricsPath != "" || t.PprofAddr != "" || t.Progress > 0 {
		h.Registry = twopcp.NewRegistry()
		ob.Metrics = h.Registry
		par.SetDispatchCounter(h.Registry.Counter("par.dispatches"))
		h.undispatch = true
	}
	h.Observer = ob
	if t.PprofAddr != "" {
		Serve(t.PprofAddr, h.Registry)
	}
	if t.Progress > 0 {
		h.stopProgress = startProgress(h.Registry, t.Progress)
	}
	return h, nil
}

// Close tears the telemetry down in the right order: final progress
// line, trace flush+close, metrics snapshot, dispatch-counter unbind.
func (h *Handle) Close() error {
	h.stopProgress()
	var first error
	if h.rec != nil {
		if err := h.rec.Close(); err != nil {
			first = err
		}
		h.rec = nil
	}
	if h.metricsPath != "" && h.Registry != nil {
		if err := h.Registry.WriteSnapshot(h.metricsPath); first == nil && err != nil {
			first = err
		}
		h.metricsPath = ""
	}
	if h.undispatch {
		par.SetDispatchCounter(nil)
		h.undispatch = false
	}
	return first
}

// Serve starts the admin HTTP listener on addr in the background:
// net/http/pprof plus the registry's Prometheus exposition at /metrics
// (when reg is non-nil). Each call builds its own mux, so Serve is
// idempotent — a second call (daemon restart in tests, CLI and daemon in
// one process) starts another listener instead of panicking on a
// duplicate http.DefaultServeMux registration. Listen errors are logged,
// not fatal — a colliding admin port must not kill a long decomposition.
func Serve(addr string, reg *twopcp.Registry) {
	mux := adminMux(reg)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("admin server: %v", err)
		}
	}()
}

// adminMux builds the admin endpoint set on a fresh mux: the pprof
// handlers registered explicitly (never via http.DefaultServeMux) and
// /metrics when reg is non-nil.
func adminMux(reg *twopcp.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(reg.PrometheusText())
		})
	}
	return mux
}

// startProgress launches the periodic progress reporter: one stderr line
// per tick with the run's live position (Phase-1 blocks and sweeps, then
// Phase-2 fit and iterations) and I/O counters. Returns its stop func,
// which prints one final line so even runs shorter than the tick leave a
// progress record.
func startProgress(reg *twopcp.Registry, every time.Duration) func() {
	const mb = 1.0 / (1 << 20)
	blocks := reg.Counter("phase1.blocks_done")
	sweeps := reg.Counter("phase1.sweeps")
	iters := reg.Gauge("phase2.virtual_iters")
	fit := reg.Gauge("phase2.fit")
	fetches := reg.Counter("buffer.fetches")
	hits := reg.Counter("buffer.hits")
	bytesRead := reg.Counter("blockstore.bytes_read")
	bytesWritten := reg.Counter("blockstore.bytes_written")
	start := time.Now()
	report := func() {
		hitRate := 0.0
		if tot := hits.Load() + fetches.Load(); tot > 0 {
			hitRate = float64(hits.Load()) / float64(tot)
		}
		fmt.Fprintf(os.Stderr,
			"progress %8s  blocks=%d sweeps=%d  iters=%g fit=%.6f  read=%.1fMB written=%.1fMB hit=%.1f%%\n",
			time.Since(start).Round(time.Second),
			blocks.Load(), sweeps.Load(), iters.Load(), fit.Load(),
			float64(bytesRead.Load())*mb, float64(bytesWritten.Load())*mb,
			100*hitRate)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				report()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		report()
	}
}

// WriteFactorCSV exports one factor matrix as CSV, one row per line,
// values formatted with %g. Every front-end exports through this one
// function: the crash-recovery and daemon integration tests compare the
// files byte-for-byte, so the format is part of the bit-exactness story.
func WriteFactorCSV(path string, m *twopcp.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := writeFactorRows(w, m); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFactorRows emits the CSV body: one row per line, %g values,
// comma-separated, "\n" line ends.
func writeFactorRows(w *bufio.Writer, m *twopcp.Matrix) error {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%g", v); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

package cli

import (
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twopcp"
)

// TestServeIdempotent pins the DefaultServeMux regression: before Serve
// owned its mux, a second call panicked with a duplicate /metrics
// registration (daemon restart in tests, or CLI + daemon in one process).
func TestServeIdempotent(t *testing.T) {
	reg := twopcp.NewRegistry()
	// Both calls must return without panicking; the listeners themselves
	// are fire-and-forget (errors are logged, not fatal).
	Serve("127.0.0.1:0", reg)
	Serve("127.0.0.1:0", reg)
}

// TestAdminMuxEndpoints drives the admin surface through its mux: the
// Prometheus exposition and the explicitly-registered pprof handlers.
func TestAdminMuxEndpoints(t *testing.T) {
	reg := twopcp.NewRegistry()
	reg.Counter("test.counter").Add(3)
	srv := httptest.NewServer(adminMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "twopcp_test_counter_total 3") {
		t.Fatalf("/metrics: code %d, body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}

	// Without a registry there is no /metrics, but pprof still serves.
	bare := httptest.NewServer(adminMux(nil))
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/metrics without registry: code %d, want 404", resp.StatusCode)
	}
}

// TestWriteFactorCSVByteIdentity pins the export format bit-for-bit: one
// row per line, %g values, commas, "\n" line ends, no trailing artifacts.
// The crash-recovery and daemon integration tests compare these files
// byte-for-byte, so the buffered rewrite must not move a single byte.
func TestWriteFactorCSVByteIdentity(t *testing.T) {
	m := &twopcp.Matrix{Rows: 3, Cols: 3, Data: make([]float64, 9)}
	vals := [][]float64{
		{1.5, -2, 3e-10},
		{0.1, 123456789012345, -0.000125},
		{math.Pi, 0, math.Copysign(0, -1)},
	}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	path := filepath.Join(t.TempDir(), "factors.csv")
	if err := WriteFactorCSV(path, m); err != nil {
		t.Fatalf("WriteFactorCSV: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "1.5,-2,3e-10\n" +
		"0.1,1.23456789012345e+14,-0.000125\n" +
		"3.141592653589793,0,-0\n"
	if string(got) != want {
		t.Fatalf("CSV bytes changed:\n got %q\nwant %q", got, want)
	}
}

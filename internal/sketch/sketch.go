// Package sketch implements the Phase-0 accelerator of the pipeline:
// randomized Tucker compression of the input tensor (Halko-style range
// finding with a Khatri-Rao-structured Gaussian sketch), CP-ALS on the
// small core, and expansion of the core factors back to full size as a
// warm start for the standard Phase-1/Phase-2 passes (compress-then-CP,
// Zhou, Cichocki & Xie, arXiv 1412.1885).
//
// Everything streams over grid blocks through the same Source shape
// phase1 consumes, so dense, sparse and .tptl tiled inputs are all
// sketched without materializing the tensor: the sketch Y_n is an MTTKRP
// against Gaussian factors (linear in the tensor, so per-block
// contributions with row-sliced Gaussians accumulate exactly), and the
// Tucker core is a TTM chain against the row-sliced transposed bases
// (multilinear in the tensor, so it accumulates the same way).
//
// Determinism contract: the Gaussian sketch matrices and the core ALS
// initialization derive only from Options.Seed, blocks are visited
// serially in pattern order, and every kernel underneath (MTTKRP, TTM,
// QRThin, ALS) is bit-deterministic — so the warm start, and therefore
// the accelerated run, is bit-identical across Workers, KernelWorkers
// and PrefetchDepth, and recomputing Phase 0 on resume reproduces the
// interrupted run exactly without any new checkpoint state.
package sketch

import (
	"fmt"
	"math/rand"

	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/tensor"
)

// Seed mixers: distinct streams for the per-mode Gaussian sketches and
// the core ALS init, both disjoint from phase1's per-block stream
// (seed ^ blockID·0x9E3779B9) by construction of the constants.
const (
	omegaSeedMix = 0x6A09E667F3BCC909 // per-mode sketch: seed ^ (k+1)·mix
	coreSeedMix  = 0x3C6EF372FE94F82B // core ALS initialization, per restart
)

// pilotCoreIters caps each multistart pilot run on the core; only the
// winning basin is polished to the caller's full iteration budget.
const pilotCoreIters = 60

// Source yields the sub-tensor at a grid position; it is structurally
// identical to phase1.Source, so every existing source (dense, COO,
// chunk store, tiled file) satisfies it unchanged. Blocks must be
// *tensor.Dense or *tensor.COO.
type Source interface {
	Pattern() *grid.Pattern
	Block(vec []int) (any, error)
}

// Options configures the Phase-0 accelerator.
type Options struct {
	// Rank is the per-mode Tucker basis rank (Phase0Rank upstream); the
	// basis for mode n has min(I_n, Rank+Oversample) columns.
	Rank int
	// Oversample adds extra Gaussian sketch columns beyond Rank for
	// range-finder robustness (default 5).
	Oversample int
	// CPRank is the CP rank run on the core — the run's Options.Rank.
	CPRank int
	// MaxIters and Tol configure the core CP-ALS (cpals defaults apply).
	MaxIters int
	Tol      float64
	// Restarts is the number of independently seeded core ALS runs; the
	// best-fit core model wins (default 4). The core is tiny, so restarts
	// cost almost nothing, and they make the warm start robust against
	// the local optima cold-started ALS is prone to on structured
	// (orthogonal or collinear) inputs. Deterministic: restart seeds
	// derive from Seed, and ties keep the earliest attempt.
	Restarts int
	// Seed derives the sketch matrices and the core ALS init. The same
	// seed always produces the same warm start, bit for bit.
	Seed int64
	// Solver is the core ALS row solver (nil = least squares). When
	// Nonneg is set it is ignored: the core runs unconstrained and
	// nonnegativity is restored by the NN-preserving expansion.
	Solver cpals.Solver
	// Nonneg requests the NN-preserving expansion: the expanded factors
	// Q_n·Â_n are clamped at zero so the warm start is feasible for the
	// nonnegative Phase-1 solver (which then repairs the clamp damage).
	Nonneg bool
}

func (o *Options) normalize() (Options, error) {
	out := *o
	if out.Rank <= 0 {
		return out, fmt.Errorf("sketch: rank %d", out.Rank)
	}
	if out.CPRank <= 0 {
		return out, fmt.Errorf("sketch: CP rank %d", out.CPRank)
	}
	if out.Oversample < 0 {
		return out, fmt.Errorf("sketch: oversample %d", out.Oversample)
	}
	if out.Oversample == 0 {
		out.Oversample = 5
	}
	if out.Restarts < 0 {
		return out, fmt.Errorf("sketch: restarts %d", out.Restarts)
	}
	if out.Restarts == 0 {
		out.Restarts = 4
	}
	return out, nil
}

// Result carries the Phase-0 warm start.
type Result struct {
	// Init holds the expanded global factors A_n = Q_n·Â_n (I_n×CPRank,
	// λ folded in), nil when Fallback is set.
	Init []*mat.Matrix
	// Fallback reports that Phase 0 declined to run (the compression
	// would not pay for itself, or the tensor is all zero) and the
	// caller should proceed brute-force. Reason says why.
	Fallback bool
	Reason   string
	// CoreDims, CoreFit and CoreIters describe the compressed solve.
	CoreDims  []int
	CoreFit   float64
	CoreIters int
}

// TuckerWarmStart runs the Phase-0 accelerator over src: two streaming
// passes over the blocks (one to sketch the per-mode ranges, one to
// project the Tucker core), a core CP-ALS, and the expansion back to
// full-size warm-start factors.
func TuckerWarmStart(src Source, opts Options) (*Result, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	p := src.Pattern()
	dims := p.Dims
	n := len(dims)
	s := o.Rank + o.Oversample
	coreDims := make([]int, n)
	coreCells, cells := 1.0, 1.0
	for k, d := range dims {
		coreDims[k] = d
		if s < d {
			coreDims[k] = s
		}
		coreCells *= float64(coreDims[k])
		cells *= float64(d)
	}
	// Structural fallback, decided before any block is read: when the
	// core holds at least half the tensor's cells the compressed sweeps
	// cannot win back the two sketch passes, so skip Phase 0 entirely
	// (this is the near-zero-overhead path the benchgate overhead gate
	// measures).
	if 2*coreCells >= cells {
		return &Result{Fallback: true, Reason: fmt.Sprintf("core %v holds ≥ half of %v", coreDims, dims)}, nil
	}

	qs, empty, err := rangeBases(src, dims, s, coreDims, o.Seed)
	if err != nil {
		return nil, err
	}
	if empty {
		return &Result{Fallback: true, Reason: "tensor is all zero"}, nil
	}
	g, err := projectCore(src, qs, coreDims)
	if err != nil {
		return nil, err
	}
	if g.Norm() == 0 {
		// Stored-but-zero entries can defeat the NNZ early-out above.
		return &Result{Fallback: true, Reason: "tensor is all zero"}, nil
	}

	coreSolver := o.Solver
	if o.Nonneg {
		coreSolver = nil // unconstrained core; expansion restores feasibility
	}
	// Multistart on the core: short pilot runs identify the best ALS
	// basin (cold-started ALS on structured tensors is prone to local
	// optima), then only the winner is polished to the full iteration
	// budget. Sweeps on the core are cheap but not free — the pilots cost
	// o.Restarts·pilotCoreIters sweeps instead of o.Restarts·o.MaxIters.
	pilot := o.MaxIters
	if pilot <= 0 || pilot > pilotCoreIters {
		pilot = pilotCoreIters
	}
	kts := make([]*cpals.KTensor, o.Restarts)
	infos := make([]cpals.Info, o.Restarts)
	best := -1
	for attempt := 0; attempt < o.Restarts; attempt++ {
		seed := o.Seed ^ int64(attempt+1)*coreSeedMix
		akt, ainfo, err := cpals.Decompose(g, cpals.Options{
			Rank:     o.CPRank,
			MaxIters: pilot,
			Tol:      o.Tol,
			Rng:      rand.New(rand.NewSource(seed)),
			Solver:   coreSolver,
		})
		if err != nil {
			return nil, fmt.Errorf("sketch: core ALS: %w", err)
		}
		kts[attempt], infos[attempt] = akt, ainfo
		if best < 0 || ainfo.Fit > infos[best].Fit {
			best = attempt
		}
	}
	// Keep the EARLIEST attempt within a whisker of the best fit, not the
	// argmax: attempts in the same basin differ only in the last float
	// bits, and a strict argmax would let those bits (which vary with the
	// block representation, e.g. dense vs COO) flip which model wins.
	for attempt := 0; attempt < best; attempt++ {
		if infos[attempt].Fit >= infos[best].Fit-1e-6 {
			best = attempt
			break
		}
	}
	kt, info := kts[best], infos[best]
	if !info.Converged && (o.MaxIters <= 0 || o.MaxIters > pilot) {
		remaining := 0
		if o.MaxIters > 0 {
			remaining = o.MaxIters - pilot
		}
		pkt, pinfo, err := cpals.Decompose(g, cpals.Options{
			Rank:     o.CPRank,
			MaxIters: remaining,
			Tol:      o.Tol,
			Init:     phase1.FoldLambda(kt),
			Solver:   coreSolver,
		})
		if err != nil {
			return nil, fmt.Errorf("sketch: core ALS polish: %w", err)
		}
		kt = pkt
		info = pinfo
		info.Iters += pilot
	}

	folded := phase1.FoldLambda(kt)
	init := make([]*mat.Matrix, n)
	for k := range init {
		init[k] = mat.Mul(qs[k], folded[k])
		if o.Nonneg {
			for i, v := range init[k].Data {
				if v < 0 {
					init[k].Data[i] = 0
				}
			}
		}
	}
	return &Result{
		Init:      init,
		CoreDims:  coreDims,
		CoreFit:   info.Fit,
		CoreIters: info.Iters,
	}, nil
}

// rangeBases streams the blocks once and returns the per-mode
// orthonormal bases Q_n (I_n × coreDims[n]). The sketch for mode n is
// Y_n = MTTKRP(X, {Ω_k}, n) with Gaussian Ω_k — linear in X, so each
// block contributes MTTKRP(block, {row-sliced Ω_k}, n) into the rows
// [from_n, from_n+size_n) of Y_n, and blocks sharing a mode-n slab
// accumulate. empty reports an all-zero tensor.
func rangeBases(src Source, dims []int, s int, coreDims []int, seed int64) (qs []*mat.Matrix, empty bool, err error) {
	n := len(dims)
	omega := make([]*mat.Matrix, n)
	for k := range omega {
		rng := rand.New(rand.NewSource(seed ^ int64(k+1)*omegaSeedMix))
		omega[k] = mat.RandomNormal(dims[k], s, rng)
	}
	ys := make([]*mat.Matrix, n)
	for k := range ys {
		ys[k] = mat.New(dims[k], s)
	}
	empty = true
	slices := make([]*mat.Matrix, n)
	for _, vec := range src.Pattern().Positions() {
		from, size := src.Pattern().Block(vec)
		block, err := src.Block(vec)
		if err != nil {
			return nil, false, fmt.Errorf("sketch: block %v: %w", vec, err)
		}
		var dense *tensor.Dense
		var coo *tensor.COO
		switch b := block.(type) {
		case *tensor.Dense:
			if b.NNZ() == 0 {
				continue // empty block contributes nothing to any mode
			}
			dense = b
		case *tensor.COO:
			if b.NNZ() == 0 {
				continue
			}
			coo = b
		default:
			return nil, false, fmt.Errorf("sketch: unsupported block type %T", block)
		}
		empty = false
		for k := range slices {
			slices[k] = omega[k].SliceRows(from[k], from[k]+size[k])
		}
		for mode := 0; mode < n; mode++ {
			tmp := mat.New(size[mode], s)
			if dense != nil {
				tensor.MTTKRPInto(tmp, dense, slices, mode)
			} else {
				tensor.MTTKRPSparseInto(tmp, coo, slices, mode)
			}
			// A row-window view of Y_mode: rows are contiguous in the
			// row-major layout, so the block's contribution adds in place.
			dst := mat.FromSlice(size[mode], s, ys[mode].Data[from[mode]*s:(from[mode]+size[mode])*s])
			dst.AddInPlace(tmp)
		}
	}
	if empty {
		return nil, true, nil
	}
	qs = make([]*mat.Matrix, n)
	for k := range qs {
		y := ys[k]
		if coreDims[k] < s {
			// QRThin needs rows ≥ cols; keep the leading coreDims[k]
			// sketch columns (each is an independent Gaussian probe).
			y = sliceCols(y, coreDims[k])
		}
		qs[k] = mat.QRThin(y)
	}
	return qs, false, nil
}

// projectCore streams the blocks once more and returns the Tucker core
// G = X ×₁Q₁ᵀ ×₂Q₂ᵀ ... — multilinear in X, so each block contributes
// TTMChain(block, {row-sliced Q_kᵀ}) and the contributions sum.
func projectCore(src Source, qs []*mat.Matrix, coreDims []int) (*tensor.Dense, error) {
	n := len(qs)
	g := tensor.NewDense(coreDims...)
	ms := make([]*mat.Matrix, n)
	for _, vec := range src.Pattern().Positions() {
		from, size := src.Pattern().Block(vec)
		block, err := src.Block(vec)
		if err != nil {
			return nil, fmt.Errorf("sketch: block %v: %w", vec, err)
		}
		for k := range ms {
			ms[k] = qs[k].SliceRows(from[k], from[k]+size[k]).T()
		}
		switch b := block.(type) {
		case *tensor.Dense:
			if b.NNZ() > 0 {
				g.AddInPlace(tensor.TTMChain(b, ms))
			}
		case *tensor.COO:
			if b.NNZ() > 0 {
				g.AddInPlace(tensor.TTMChainSparse(b, ms))
			}
		default:
			return nil, fmt.Errorf("sketch: unsupported block type %T", block)
		}
	}
	return g, nil
}

// sliceCols returns the leading c columns of m as a copy.
func sliceCols(m *mat.Matrix, c int) *mat.Matrix {
	out := mat.New(m.Rows, c)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[:c])
	}
	return out
}

package sketch

import (
	"math/rand"
	"testing"

	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/tensor"
)

// lowMLRankTensor builds a dims tensor of exact multilinear rank r per
// mode: a random r×r×...×r core multiplied by per-mode orthonormal
// factors.
func lowMLRankTensor(t *testing.T, dims []int, r int, seed int64) *tensor.Dense {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coreDims := make([]int, len(dims))
	for k := range coreDims {
		coreDims[k] = r
	}
	core := tensor.NewDense(coreDims...)
	for i := range core.Data {
		core.Data[i] = rng.NormFloat64()
	}
	ms := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		ms[k] = mat.QRThin(mat.RandomNormal(d, r, rng))
	}
	return tensor.TTMChain(core, ms)
}

func denseSource(t *testing.T, x *tensor.Dense, k []int) *phase1.DenseSource {
	t.Helper()
	p, err := grid.New(x.Dims, k)
	if err != nil {
		t.Fatal(err)
	}
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// The warm start from a genuinely low-multilinear-rank tensor must
// already fit it well: CP on the compressed core sees (almost) all of
// the tensor's energy because the sketched bases capture its range.
func TestTuckerWarmStartRecoversLowMLRank(t *testing.T) {
	x := lowMLRankTensor(t, []int{24, 20, 22}, 3, 7)
	src := denseSource(t, x, []int{2, 2, 2})
	res, err := TuckerWarmStart(src, Options{Rank: 3, CPRank: 4, Seed: 11, MaxIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatalf("unexpected fallback: %s", res.Reason)
	}
	for k, f := range res.Init {
		if f.Rows != x.Dims[k] || f.Cols != 4 {
			t.Fatalf("init factor %d is %d×%d", k, f.Rows, f.Cols)
		}
	}
	kt := cpals.NewKTensor(res.Init)
	if fit := kt.Fit(x); fit < 0.7 {
		t.Fatalf("warm-start fit %g, want ≥ 0.7 on a low-mlrank input (core fit %g)", fit, res.CoreFit)
	}
	if res.CoreFit < 0.7 {
		t.Fatalf("core fit %g", res.CoreFit)
	}
}

// The sketch must agree between dense and COO sources over the same
// tensor — the block contributions are accumulated identically.
func TestTuckerWarmStartDenseSparseAgree(t *testing.T) {
	x := lowMLRankTensor(t, []int{18, 16, 14}, 2, 3)
	p := grid.MustNew(x.Dims, []int{2, 2, 2})
	ds, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := phase1.NewCOOSource(tensor.FromDense(x), p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 2, CPRank: 3, Seed: 5}
	a, err := TuckerWarmStart(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuckerWarmStart(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fallback || b.Fallback {
		t.Fatalf("fallback: %v / %v", a.Reason, b.Reason)
	}
	for k := range a.Init {
		if !a.Init[k].EqualApprox(b.Init[k], 1e-9) {
			t.Fatalf("mode-%d warm start differs between dense and COO sources", k)
		}
	}
}

// Same seed → bit-identical warm start; different seed → different one.
func TestTuckerWarmStartDeterministic(t *testing.T) {
	x := lowMLRankTensor(t, []int{16, 16, 16}, 2, 9)
	src := denseSource(t, x, []int{2, 1, 2})
	opts := Options{Rank: 2, CPRank: 3, Seed: 21}
	a, err := TuckerWarmStart(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuckerWarmStart(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Init {
		if !a.Init[k].Equal(b.Init[k]) {
			t.Fatalf("mode-%d warm start is not bit-deterministic", k)
		}
	}
	opts.Seed = 22
	c, err := TuckerWarmStart(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range a.Init {
		same = same && a.Init[k].Equal(c.Init[k])
	}
	if same {
		t.Fatal("different seeds produced identical warm starts")
	}
}

// Partitioning must not change the sketch: the per-block accumulation
// is exact, so 1-block and multi-block patterns give the same bits.
func TestTuckerWarmStartPatternInvariant(t *testing.T) {
	x := lowMLRankTensor(t, []int{12, 12, 12}, 2, 13)
	opts := Options{Rank: 2, CPRank: 2, Seed: 4}
	one, err := TuckerWarmStart(denseSource(t, x, []int{1, 1, 1}), opts)
	if err != nil {
		t.Fatal(err)
	}
	many, err := TuckerWarmStart(denseSource(t, x, []int{3, 2, 2}), opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range one.Init {
		// Accumulation order differs between patterns (per-row sums are
		// regrouped), so allow rounding differences but nothing more.
		if !one.Init[k].EqualApprox(many.Init[k], 1e-9) {
			t.Fatalf("mode-%d warm start depends on the partition pattern", k)
		}
	}
}

// NN-preserving expansion: nonneg warm starts have no negative entries.
func TestTuckerWarmStartNonneg(t *testing.T) {
	x := lowMLRankTensor(t, []int{16, 14, 12}, 2, 17)
	// Shift positive so a nonneg model is meaningful.
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = -v
		}
	}
	src := denseSource(t, x, []int{2, 2, 1})
	res, err := TuckerWarmStart(src, Options{Rank: 3, CPRank: 3, Seed: 2, Nonneg: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatalf("unexpected fallback: %s", res.Reason)
	}
	for k, f := range res.Init {
		for _, v := range f.Data {
			if v < 0 {
				t.Fatalf("mode %d: negative warm-start entry %g", k, v)
			}
		}
	}
}

// Structural fallback: when the core wouldn't be meaningfully smaller
// than the tensor, Phase 0 declines without reading a single block.
func TestTuckerWarmStartStructuralFallback(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(1)), 6, 6, 6)
	src := denseSource(t, x, []int{1, 1, 1})
	res, err := TuckerWarmStart(src, Options{Rank: 6, CPRank: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("expected structural fallback for rank ≥ dims")
	}
	if res.Init != nil {
		t.Fatal("fallback result carries factors")
	}
}

// Zero tensors fall back rather than feeding a zero core to ALS.
func TestTuckerWarmStartZeroFallback(t *testing.T) {
	x := tensor.NewDense(20, 20, 20)
	src := denseSource(t, x, []int{2, 2, 2})
	res, err := TuckerWarmStart(src, Options{Rank: 2, CPRank: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("expected fallback on the zero tensor")
	}
}

func TestTuckerWarmStartBadOptions(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(1)), 8, 8, 8)
	src := denseSource(t, x, []int{1, 1, 1})
	if _, err := TuckerWarmStart(src, Options{Rank: 0, CPRank: 2}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := TuckerWarmStart(src, Options{Rank: 2, CPRank: 0}); err == nil {
		t.Fatal("CP rank 0 accepted")
	}
	if _, err := TuckerWarmStart(src, Options{Rank: 2, CPRank: 2, Oversample: -1}); err == nil {
		t.Fatal("negative oversample accepted")
	}
}

package tensor

import (
	"fmt"

	"twopcp/internal/mat"
)

// KhatriRao returns the column-wise Khatri-Rao product A ⊙ B: an
// (A.Rows·B.Rows) × F matrix whose column f is the Kronecker product
// a_f ⊗ b_f. Row (i, j) of the result maps to index i·B.Rows + j, i.e. the
// second operand varies fastest — the Kolda & Bader convention.
func KhatriRao(a, b *mat.Matrix) *mat.Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: KhatriRao: %d vs %d columns", a.Cols, b.Cols))
	}
	f := a.Cols
	out := mat.New(a.Rows*b.Rows, f)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := out.Row(i*b.Rows + j)
			for c := 0; c < f; c++ {
				orow[c] = arow[c] * brow[c]
			}
		}
	}
	return out
}

// KhatriRaoSkip returns the chained Khatri-Rao product
// A(N-1) ⊙ ... ⊙ A(skip+1) ⊙ A(skip-1) ⊙ ... ⊙ A(0),
// the matrix that multiplies the mode-skip unfolding in CP-ALS. Mode 0
// varies fastest in the row index, matching Dense.Unfold's column order.
func KhatriRaoSkip(factors []*mat.Matrix, skip int) *mat.Matrix {
	var out *mat.Matrix
	for n := len(factors) - 1; n >= 0; n-- {
		if n == skip {
			continue
		}
		if out == nil {
			out = factors[n].Clone()
			continue
		}
		out = KhatriRao(out, factors[n])
	}
	if out == nil {
		panic("tensor: KhatriRaoSkip: no factors left after skip")
	}
	return out
}

func checkFactors(dims []int, factors []*mat.Matrix, skip int) {
	if len(factors) != len(dims) {
		panic(fmt.Sprintf("tensor: %d factors for %d modes", len(factors), len(dims)))
	}
	if skip < 0 || skip >= len(dims) {
		panic(fmt.Sprintf("tensor: mode %d out of range", skip))
	}
	f := -1
	for k, m := range factors {
		if k == skip {
			continue
		}
		if m.Rows != dims[k] {
			panic(fmt.Sprintf("tensor: factor %d has %d rows, mode size %d", k, m.Rows, dims[k]))
		}
		if f == -1 {
			f = m.Cols
		} else if m.Cols != f {
			panic(fmt.Sprintf("tensor: factor %d has %d cols, want %d", k, m.Cols, f))
		}
	}
}

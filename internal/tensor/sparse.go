package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// COO is a sparse N-mode tensor in coordinate format: nonzero p has
// coordinates Indices[m][p] along each mode m and value Vals[p].
// Duplicate coordinates are permitted until Canonicalize is called.
type COO struct {
	Dims    []int
	Indices [][]int // one slice per mode, all of equal length
	Vals    []float64
}

// NewCOO returns an empty sparse tensor with the given mode sizes.
func NewCOO(dims ...int) *COO {
	idx := make([][]int, len(dims))
	for m := range idx {
		idx[m] = []int{}
	}
	return &COO{Dims: append([]int(nil), dims...), Indices: idx, Vals: []float64{}}
}

// NModes returns the number of modes of the tensor.
func (t *COO) NModes() int { return len(t.Dims) }

// NNZ returns the number of stored entries (including explicit zeros and
// duplicates, if any).
func (t *COO) NNZ() int { return len(t.Vals) }

// Append adds one entry. The coordinate slice is copied.
func (t *COO) Append(idx []int, v float64) {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("tensor: COO.Append: %d coords for %d modes", len(idx), len(t.Dims)))
	}
	for m, i := range idx {
		if i < 0 || i >= t.Dims[m] {
			panic(fmt.Sprintf("tensor: COO.Append: index %v out of dims %v", idx, t.Dims))
		}
		t.Indices[m] = append(t.Indices[m], i)
	}
	t.Vals = append(t.Vals, v)
}

// Coord fills dst with the coordinates of nonzero p and returns it.
func (t *COO) Coord(p int, dst []int) []int {
	if dst == nil {
		dst = make([]int, len(t.Dims))
	}
	for m := range t.Dims {
		dst[m] = t.Indices[m][p]
	}
	return dst
}

// Norm returns the Frobenius norm over stored values. The tensor should be
// canonical (no duplicates) for this to equal the mathematical norm.
func (t *COO) Norm() float64 {
	var s float64
	for _, v := range t.Vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// At returns the value at idx by scanning the stored entries; O(nnz), for
// tests and small tensors only.
func (t *COO) At(idx ...int) float64 {
	var s float64
scan:
	for p := range t.Vals {
		for m, i := range idx {
			if t.Indices[m][p] != i {
				continue scan
			}
		}
		s += t.Vals[p]
	}
	return s
}

// Dense materializes the sparse tensor. Duplicates accumulate.
func (t *COO) Dense() *Dense {
	out := NewDense(t.Dims...)
	strides := out.Strides()
	for p, v := range t.Vals {
		off := 0
		for m := range t.Dims {
			off += t.Indices[m][p] * strides[m]
		}
		out.Data[off] += v
	}
	return out
}

// FromDense converts a dense tensor to COO, keeping only nonzero cells.
func FromDense(d *Dense) *COO {
	out := NewCOO(d.Dims...)
	idx := make([]int, len(d.Dims))
	for _, v := range d.Data {
		if v != 0 {
			out.Append(idx, v)
		}
		incIndex(idx, d.Dims)
	}
	return out
}

// Canonicalize sorts entries lexicographically (last mode outermost, mode 0
// fastest — matching the dense layout) and merges duplicates by summing.
// Entries that merge to exactly zero are kept, matching the convention that
// explicitly stored zeros count as nonzeros for accounting.
func (t *COO) Canonicalize() {
	n := t.NNZ()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		for m := len(t.Dims) - 1; m >= 0; m-- {
			ia, ib := t.Indices[m][pa], t.Indices[m][pb]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})
	newIdx := make([][]int, len(t.Dims))
	for m := range newIdx {
		newIdx[m] = make([]int, 0, n)
	}
	newVals := make([]float64, 0, n)
	for _, p := range perm {
		last := len(newVals) - 1
		if last >= 0 && sameCoord(t, p, newIdx, last) {
			newVals[last] += t.Vals[p]
			continue
		}
		for m := range t.Dims {
			newIdx[m] = append(newIdx[m], t.Indices[m][p])
		}
		newVals = append(newVals, t.Vals[p])
	}
	t.Indices = newIdx
	t.Vals = newVals
}

func sameCoord(t *COO, p int, idx [][]int, q int) bool {
	for m := range t.Dims {
		if t.Indices[m][p] != idx[m][q] {
			return false
		}
	}
	return true
}

// RandomCOO generates a sparse tensor with approximately density·ΠDims
// uniformly placed entries with uniform (0,1] values. Collisions are merged,
// so the exact nnz may be slightly below the target.
func RandomCOO(rng *rand.Rand, density float64, dims ...int) *COO {
	total := 1
	for _, d := range dims {
		total *= d
	}
	target := int(density * float64(total))
	out := NewCOO(dims...)
	idx := make([]int, len(dims))
	for k := 0; k < target; k++ {
		for m, d := range dims {
			idx[m] = rng.Intn(d)
		}
		out.Append(idx, rng.Float64()+1e-9)
	}
	out.Canonicalize()
	return out
}

// SubTensorCOO extracts the block [from, from+size) as a new COO tensor with
// block-local coordinates.
func (t *COO) SubTensorCOO(from, size []int) *COO {
	out := NewCOO(size...)
	local := make([]int, len(t.Dims))
scan:
	for p, v := range t.Vals {
		for m := range t.Dims {
			i := t.Indices[m][p] - from[m]
			if i < 0 || i >= size[m] {
				continue scan
			}
			local[m] = i
		}
		out.Append(local, v)
	}
	return out
}

// String describes the tensor by shape and nnz.
func (t *COO) String() string {
	return fmt.Sprintf("COO%v(nnz=%d)", t.Dims, t.NNZ())
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestCOOAppendAndAt(t *testing.T) {
	c := NewCOO(3, 4)
	c.Append([]int{1, 2}, 5)
	c.Append([]int{0, 0}, -1)
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if c.At(1, 2) != 5 || c.At(0, 0) != -1 || c.At(2, 3) != 0 {
		t.Fatal("At values wrong")
	}
}

func TestCOOAppendValidation(t *testing.T) {
	c := NewCOO(2, 2)
	for _, bad := range [][]int{{0}, {2, 0}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Append(%v) did not panic", bad)
				}
			}()
			c.Append(bad, 1)
		}()
	}
}

func TestCOODenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense(3, 4, 2)
	// ~half the cells nonzero
	d.Fill(func(idx []int) float64 {
		if rng.Float64() < 0.5 {
			return rng.Float64() + 0.1
		}
		return 0
	})
	c := FromDense(d)
	if c.NNZ() != d.NNZ() {
		t.Fatalf("nnz mismatch: %d vs %d", c.NNZ(), d.NNZ())
	}
	if !c.Dense().EqualApprox(d, 0) {
		t.Fatal("FromDense/Dense round trip failed")
	}
}

func TestCOODuplicatesAccumulate(t *testing.T) {
	c := NewCOO(2, 2)
	c.Append([]int{1, 1}, 2)
	c.Append([]int{1, 1}, 3)
	if c.At(1, 1) != 5 {
		t.Fatalf("duplicate At = %g", c.At(1, 1))
	}
	if c.Dense().At(1, 1) != 5 {
		t.Fatal("duplicates must accumulate in Dense()")
	}
	c.Canonicalize()
	if c.NNZ() != 1 || c.Vals[0] != 5 {
		t.Fatalf("after Canonicalize: nnz=%d vals=%v", c.NNZ(), c.Vals)
	}
}

func TestCanonicalizeSorts(t *testing.T) {
	c := NewCOO(3, 3)
	c.Append([]int{2, 2}, 1)
	c.Append([]int{0, 1}, 2)
	c.Append([]int{1, 0}, 3)
	c.Canonicalize()
	// Sorted with last mode outermost: (1,0), (0,1), (2,2)
	wantI := [][]int{{1, 0, 2}, {0, 1, 2}}
	for m := range wantI {
		for p := range wantI[m] {
			if c.Indices[m][p] != wantI[m][p] {
				t.Fatalf("mode %d order = %v, want %v", m, c.Indices[m], wantI[m])
			}
		}
	}
}

func TestCOONorm(t *testing.T) {
	c := NewCOO(2, 2)
	c.Append([]int{0, 0}, 3)
	c.Append([]int{1, 1}, 4)
	if math.Abs(c.Norm()-5) > 1e-12 {
		t.Fatalf("Norm = %g", c.Norm())
	}
	if math.Abs(c.Norm()-c.Dense().Norm()) > 1e-12 {
		t.Fatal("COO norm disagrees with dense norm")
	}
}

func TestRandomCOODensity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := RandomCOO(rng, 0.1, 20, 20, 20)
	target := int(0.1 * 8000)
	if c.NNZ() > target || c.NNZ() < target/2 {
		t.Fatalf("NNZ = %d, target %d", c.NNZ(), target)
	}
	// All values positive, all coords in range.
	dst := make([]int, 3)
	for p := range c.Vals {
		if c.Vals[p] <= 0 {
			t.Fatal("non-positive value")
		}
		c.Coord(p, dst)
		for m, i := range dst {
			if i < 0 || i >= c.Dims[m] {
				t.Fatalf("coord %v out of range", dst)
			}
		}
	}
}

func TestSubTensorCOO(t *testing.T) {
	c := NewCOO(4, 4)
	c.Append([]int{0, 0}, 1)
	c.Append([]int{2, 3}, 2)
	c.Append([]int{3, 2}, 3)
	b := c.SubTensorCOO([]int{2, 2}, []int{2, 2})
	if b.NNZ() != 2 {
		t.Fatalf("block NNZ = %d", b.NNZ())
	}
	if b.At(0, 1) != 2 || b.At(1, 0) != 3 {
		t.Fatal("block-local coordinates wrong")
	}
}

func TestSubTensorCOOMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := RandomCOO(rng, 0.3, 6, 8, 4)
	d := c.Dense()
	from, size := []int{2, 4, 1}, []int{4, 4, 3}
	got := c.SubTensorCOO(from, size).Dense()
	want := d.SubTensor(from, size)
	if !got.EqualApprox(want, 0) {
		t.Fatal("COO block extraction disagrees with dense")
	}
}

func TestCoordReusesDst(t *testing.T) {
	c := NewCOO(2, 2)
	c.Append([]int{1, 0}, 1)
	buf := make([]int, 2)
	got := c.Coord(0, buf)
	if &got[0] != &buf[0] {
		t.Fatal("Coord should reuse dst")
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Coord = %v", got)
	}
	if auto := c.Coord(0, nil); auto[0] != 1 {
		t.Fatal("Coord(nil) failed")
	}
}

func TestCOOString(t *testing.T) {
	c := NewCOO(2, 3)
	if s := c.String(); s != "COO[2 3](nnz=0)" {
		t.Fatalf("String = %q", s)
	}
}

package tensor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// Native fuzz targets for the binary tensor decoders. The contract under
// fuzzing: ReadDense/ReadCOO may reject arbitrary input with an error but
// must never panic, and must never allocate proportionally to a header
// field the input's actual size cannot back (the remainingBytes limit —
// without it a 30-byte input declaring 2^40 cells would OOM the process).
//
// The seed corpus reproduces the corrupt-file regression cases from
// io_test.go: truncated payloads, dim-product overflow, implausible mode
// counts and oversized nnz declarations.

// denseSeed serializes a small valid dense tensor.
func denseSeed(t testing.TB) []byte {
	t.Helper()
	x := RandomDense(rand.New(rand.NewSource(1)), 3, 2, 2)
	var buf bytes.Buffer
	if err := WriteDense(&buf, x); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func cooSeed(t testing.TB) []byte {
	t.Helper()
	x := RandomCOO(rand.New(rand.NewSource(2)), 0.5, 3, 3, 2)
	var buf bytes.Buffer
	if err := WriteCOO(&buf, x); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzHeader builds a header-only payload with the given magic, mode
// count and dims — the shape of every hostile-header regression case.
func fuzzHeader(magic string, nmodes uint32, dims ...uint64) []byte {
	out := []byte(magic)
	out = binary.LittleEndian.AppendUint32(out, nmodes)
	for _, d := range dims {
		out = binary.LittleEndian.AppendUint64(out, d)
	}
	return out
}

func FuzzReadDense(f *testing.F) {
	valid := denseSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                  // truncated payload
	f.Add(valid[:7])                                             // truncated header
	f.Add([]byte("TPSP"))                                        // wrong magic
	f.Add(fuzzHeader("TPDN", 3, 1<<41, 1<<41, 4))                // dim-product overflow
	f.Add(fuzzHeader("TPDN", 3, 1<<30, 1<<30, 1))                // huge but in-range product
	f.Add(fuzzHeader("TPDN", 1<<17, 8))                          // implausible mode count
	f.Add(fuzzHeader("TPDN", 2, 0, 5))                           // zero-sized mode
	f.Add(append(fuzzHeader("TPDN", 1, 2), 1, 2, 3, 4, 5, 6, 7)) // short payload
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := ReadDense(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent.
		if n, derr := checkedLen(x.Dims); derr != nil || int64(len(x.Data)) != n {
			t.Fatalf("accepted dense tensor inconsistent: dims %v, %d cells, %v", x.Dims, len(x.Data), derr)
		}
	})
}

func FuzzReadCOO(f *testing.F) {
	valid := cooSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])        // truncated record
	f.Add(valid[:9])                   // truncated dims
	f.Add([]byte("TPDN"))              // wrong magic
	f.Add(fuzzHeader("TPSP", 2, 4, 4)) // missing nnz field
	huge := fuzzHeader("TPSP", 2, 4, 4)
	huge = binary.LittleEndian.AppendUint64(huge, 1<<43) // nnz beyond maxTensorElems
	f.Add(huge)
	big := fuzzHeader("TPSP", 2, 4, 4)
	big = binary.LittleEndian.AppendUint64(big, 1<<20) // nnz the file cannot back
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := ReadCOO(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, derr := checkedLen(x.Dims); derr != nil {
			t.Fatalf("accepted sparse tensor with bad dims %v: %v", x.Dims, derr)
		}
		for m := range x.Dims {
			if len(x.Indices[m]) != len(x.Vals) {
				t.Fatalf("accepted sparse tensor with ragged indices")
			}
		}
	})
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseShape(t *testing.T) {
	d := NewDense(2, 3, 4)
	if d.NModes() != 3 || d.Len() != 24 {
		t.Fatalf("NModes=%d Len=%d", d.NModes(), d.Len())
	}
	for _, v := range d.Data {
		if v != 0 {
			t.Fatal("not zero-initialized")
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDense(2, -1)
}

func TestStridesFortranOrder(t *testing.T) {
	d := NewDense(2, 3, 4)
	s := d.Strides()
	if s[0] != 1 || s[1] != 2 || s[2] != 6 {
		t.Fatalf("Strides = %v", s)
	}
}

func TestOffsetAtSet(t *testing.T) {
	d := NewDense(2, 3, 4)
	d.Set(7.5, 1, 2, 3)
	if d.At(1, 2, 3) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	// Fortran order: offset = 1 + 2*2 + 3*6 = 23
	if d.Data[23] != 7.5 {
		t.Fatalf("offset layout wrong: %v", d.Data)
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	d := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.At(2, 0)
}

func TestFillVisitsAllIndexes(t *testing.T) {
	d := NewDense(3, 2, 2)
	seen := map[[3]int]bool{}
	d.Fill(func(idx []int) float64 {
		seen[[3]int{idx[0], idx[1], idx[2]}] = true
		return float64(idx[0] + 10*idx[1] + 100*idx[2])
	})
	if len(seen) != 12 {
		t.Fatalf("Fill visited %d indexes, want 12", len(seen))
	}
	if d.At(2, 1, 1) != 112 {
		t.Fatalf("At(2,1,1) = %g", d.At(2, 1, 1))
	}
}

func TestNormDotScale(t *testing.T) {
	d := NewDense(2, 2)
	d.Data = []float64{3, 4, 0, 0}
	if math.Abs(d.Norm()-5) > 1e-12 {
		t.Fatalf("Norm = %g", d.Norm())
	}
	e := d.Clone()
	if math.Abs(d.Dot(e)-25) > 1e-12 {
		t.Fatalf("Dot = %g", d.Dot(e))
	}
	d.Scale(2)
	if d.Data[0] != 6 {
		t.Fatal("Scale failed")
	}
	e.AddInPlace(d)
	if e.Data[0] != 9 {
		t.Fatal("AddInPlace failed")
	}
	e.SubInPlace(d)
	if e.Data[0] != 3 {
		t.Fatal("SubInPlace failed")
	}
}

func TestNNZ(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(1, 0, 0)
	d.Set(-2, 1, 1)
	if d.NNZ() != 2 {
		t.Fatalf("NNZ = %d", d.NNZ())
	}
}

func TestCloneIndependence(t *testing.T) {
	d := RandomDense(rand.New(rand.NewSource(1)), 2, 3)
	c := d.Clone()
	c.Data[0] = 42
	if d.Data[0] == 42 {
		t.Fatal("Clone aliases data")
	}
}

func TestSubTensorAndSet(t *testing.T) {
	d := NewDense(4, 4)
	d.Fill(func(idx []int) float64 { return float64(idx[0]*10 + idx[1]) })
	b := d.SubTensor([]int{1, 2}, []int{2, 2})
	if b.At(0, 0) != 12 || b.At(1, 1) != 23 {
		t.Fatalf("SubTensor values: %v", b.Data)
	}
	// Round-trip: writing the block back is a no-op.
	e := d.Clone()
	e.SetSubTensor(b, []int{1, 2})
	if !e.EqualApprox(d, 0) {
		t.Fatal("SetSubTensor round-trip failed")
	}
	// Writing elsewhere moves the data.
	e.SetSubTensor(b, []int{0, 0})
	if e.At(0, 0) != 12 {
		t.Fatalf("moved block: %g", e.At(0, 0))
	}
}

func TestSubTensorBoundsPanics(t *testing.T) {
	d := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.SubTensor([]int{1, 1}, []int{2, 1})
}

func TestSubTensorPartitionReassembly(t *testing.T) {
	// Partitioning a tensor into a 2×2×2 grid of blocks and reassembling
	// must reproduce the original exactly.
	rng := rand.New(rand.NewSource(2))
	d := RandomDense(rng, 4, 6, 2)
	rebuilt := NewDense(4, 6, 2)
	sizes := []int{2, 3, 1}
	for k0 := 0; k0 < 2; k0++ {
		for k1 := 0; k1 < 2; k1++ {
			for k2 := 0; k2 < 2; k2++ {
				from := []int{k0 * 2, k1 * 3, k2 * 1}
				blk := d.SubTensor(from, sizes)
				rebuilt.SetSubTensor(blk, from)
			}
		}
	}
	if !rebuilt.EqualApprox(d, 0) {
		t.Fatal("block partition reassembly failed")
	}
}

func TestUnfoldKnownValues(t *testing.T) {
	// X ∈ R^{2×2×2} with X(i,j,k) = i + 2j + 4k (its own offset).
	d := NewDense(2, 2, 2)
	d.Fill(func(idx []int) float64 { return float64(idx[0] + 2*idx[1] + 4*idx[2]) })
	m0 := d.Unfold(0)
	// Mode-0 unfolding: rows = i, cols over (j,k) with j fastest.
	want0 := [][]float64{{0, 2, 4, 6}, {1, 3, 5, 7}}
	for i := range want0 {
		for j := range want0[i] {
			if m0.At(i, j) != want0[i][j] {
				t.Fatalf("Unfold(0)[%d,%d] = %g, want %g", i, j, m0.At(i, j), want0[i][j])
			}
		}
	}
	m1 := d.Unfold(1)
	// rows = j, cols over (i,k) with i fastest.
	want1 := [][]float64{{0, 1, 4, 5}, {2, 3, 6, 7}}
	for i := range want1 {
		for j := range want1[i] {
			if m1.At(i, j) != want1[i][j] {
				t.Fatalf("Unfold(1)[%d,%d] = %g, want %g", i, j, m1.At(i, j), want1[i][j])
			}
		}
	}
}

func TestUnfoldFoldRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(a, b, c uint8, mode uint8) bool {
		dims := []int{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		n := int(mode) % 3
		d := RandomDense(rng, dims...)
		return Fold(d.Unfold(n), n, dims).EqualApprox(d, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnfoldNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := RandomDense(rng, 3, 4, 5)
	for n := 0; n < 3; n++ {
		if math.Abs(d.Unfold(n).Norm()-d.Norm()) > 1e-12 {
			t.Fatalf("mode %d unfolding changed the norm", n)
		}
	}
}

func TestUnfold4Mode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := RandomDense(rng, 2, 3, 2, 2)
	for n := 0; n < 4; n++ {
		m := d.Unfold(n)
		if m.Rows != d.Dims[n] || m.Cols != d.Len()/d.Dims[n] {
			t.Fatalf("mode %d unfold shape %d×%d", n, m.Rows, m.Cols)
		}
		if !Fold(m, n, d.Dims).EqualApprox(d, 0) {
			t.Fatalf("mode %d fold round-trip failed", n)
		}
	}
}

func TestRandomDenseDeterministic(t *testing.T) {
	a := RandomDense(rand.New(rand.NewSource(9)), 3, 3)
	b := RandomDense(rand.New(rand.NewSource(9)), 3, 3)
	if !a.EqualApprox(b, 0) {
		t.Fatal("same seed, different tensors")
	}
}

func TestDenseString(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(1, 0, 0)
	if s := d.String(); s != "Dense[2 2](nnz=1)" {
		t.Fatalf("String = %q", s)
	}
}

package tensor

import (
	"fmt"

	"twopcp/internal/mat"
)

// Identity returns the N-mode F×F×...×F identity tensor I of the paper's
// equation (1): diagonal entries 1, everything else 0.
func Identity(nModes, f int) *Dense {
	dims := make([]int, nModes)
	for i := range dims {
		dims[i] = f
	}
	t := NewDense(dims...)
	stride := 0
	for _, s := range t.Strides() {
		stride += s
	}
	for d := 0; d < f; d++ {
		t.Data[d*stride] = 1
	}
	return t
}

// TTM computes the mode-n tensor-times-matrix product Y = X ×_n M, where M
// is J×I_n: Y has the same dims as X except dims[n] = J, and
//
//	Y(i_1,..,j,..,i_N) = Σ_{i_n} M(j, i_n) · X(i_1,..,i_n,..,i_N).
//
// This is the ×_n operator of the paper's equations (1) and (2); chaining
// TTM over all modes of an identity core reproduces a Kruskal tensor, which
// the tests use to validate the grid model algebra.
func TTM(x *Dense, m *mat.Matrix, mode int) *Dense {
	if mode < 0 || mode >= len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTM mode %d of %d-mode tensor", mode, len(x.Dims)))
	}
	if m.Cols != x.Dims[mode] {
		panic(fmt.Sprintf("tensor: TTM: matrix %d×%d against mode size %d", m.Rows, m.Cols, x.Dims[mode]))
	}
	outDims := append([]int(nil), x.Dims...)
	outDims[mode] = m.Rows
	out := NewDense(outDims...)

	// Walk the input in Fortran order, scattering each element into the
	// output fiber it contributes to.
	outStrides := out.Strides()
	idx := make([]int, len(x.Dims))
	for _, v := range x.Data {
		if v != 0 {
			// Base output offset with idx[mode] = 0.
			base := 0
			for k, i := range idx {
				if k != mode {
					base += i * outStrides[k]
				}
			}
			in := idx[mode]
			for j := 0; j < m.Rows; j++ {
				out.Data[base+j*outStrides[mode]] += m.At(j, in) * v
			}
		}
		incIndex(idx, x.Dims)
	}
	return out
}

// TTMChain applies X ×_1 ms[0] ×_2 ms[1] ... over all modes. Entries of ms
// may be nil to skip a mode.
func TTMChain(x *Dense, ms []*mat.Matrix) *Dense {
	if len(ms) != len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTMChain: %d matrices for %d modes", len(ms), len(x.Dims)))
	}
	out := x
	for mode, m := range ms {
		if m == nil {
			continue
		}
		out = TTM(out, m, mode)
	}
	return out
}

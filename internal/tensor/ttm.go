package tensor

import (
	"fmt"

	"twopcp/internal/mat"
)

// Identity returns the N-mode F×F×...×F identity tensor I of the paper's
// equation (1): diagonal entries 1, everything else 0.
func Identity(nModes, f int) *Dense {
	dims := make([]int, nModes)
	for i := range dims {
		dims[i] = f
	}
	t := NewDense(dims...)
	stride := 0
	for _, s := range t.Strides() {
		stride += s
	}
	for d := 0; d < f; d++ {
		t.Data[d*stride] = 1
	}
	return t
}

// TTM computes the mode-n tensor-times-matrix product Y = X ×_n M, where M
// is J×I_n: Y has the same dims as X except dims[n] = J, and
//
//	Y(i_1,..,j,..,i_N) = Σ_{i_n} M(j, i_n) · X(i_1,..,i_n,..,i_N).
//
// This is the ×_n operator of the paper's equations (1) and (2); chaining
// TTM over all modes of an identity core reproduces a Kruskal tensor, which
// the tests use to validate the grid model algebra.
func TTM(x *Dense, m *mat.Matrix, mode int) *Dense {
	if mode < 0 || mode >= len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTM mode %d of %d-mode tensor", mode, len(x.Dims)))
	}
	if m.Cols != x.Dims[mode] {
		panic(fmt.Sprintf("tensor: TTM: matrix %d×%d against mode size %d", m.Rows, m.Cols, x.Dims[mode]))
	}
	outDims := append([]int(nil), x.Dims...)
	outDims[mode] = m.Rows
	out := NewDense(outDims...)
	if len(x.Data) == 0 || len(out.Data) == 0 {
		return out
	}

	// In the Fortran layout an element (l, i, r) — l indexing the modes
	// below `mode`, r the modes above — lives at l + i·L + r·L·D, so each
	// fixed r gives a contiguous D×L row-major slab and the product is a
	// batch of GEMMs against the optimized (and worker-deterministic)
	// mat kernels instead of an element-by-element scatter.
	L := 1
	for k := 0; k < mode; k++ {
		L *= x.Dims[k]
	}
	D, J := x.Dims[mode], m.Rows
	if L == 1 {
		// Mode 0: one big GEMM on the transposed system. X viewed as
		// (rest × D) row-major, Out = X·Mᵀ lands in the output layout.
		rest := len(x.Data) / D
		mat.MulInto(mat.FromSlice(rest, J, out.Data), mat.FromSlice(rest, D, x.Data), m.T())
		return out
	}
	R := len(x.Data) / (L * D)
	for r := 0; r < R; r++ {
		slab := mat.FromSlice(D, L, x.Data[r*L*D:(r+1)*L*D])
		dst := mat.FromSlice(J, L, out.Data[r*L*J:(r+1)*L*J])
		mat.MulInto(dst, m, slab)
	}
	return out
}

// TTMSparse computes Y = X ×_n M for a sparse COO tensor X, returning a
// dense result (the product of a sparse tensor with a dense matrix is dense
// along mode n, and downstream consumers — Tucker-core accumulation — want
// the dense chain anyway). The output has X's dims except dims[mode] = M.Rows.
// Nonzeros are visited in stored order, so canonicalized tensors give
// deterministic output.
func TTMSparse(x *COO, m *mat.Matrix, mode int) *Dense {
	if mode < 0 || mode >= len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTMSparse mode %d of %d-mode tensor", mode, len(x.Dims)))
	}
	if m.Cols != x.Dims[mode] {
		panic(fmt.Sprintf("tensor: TTMSparse: matrix %d×%d against mode size %d", m.Rows, m.Cols, x.Dims[mode]))
	}
	outDims := append([]int(nil), x.Dims...)
	outDims[mode] = m.Rows
	out := NewDense(outDims...)
	outStrides := out.Strides()
	for p, v := range x.Vals {
		if v == 0 {
			continue
		}
		base := 0
		for k := range x.Dims {
			if k != mode {
				base += x.Indices[k][p] * outStrides[k]
			}
		}
		in := x.Indices[mode][p]
		for j := 0; j < m.Rows; j++ {
			out.Data[base+j*outStrides[mode]] += m.At(j, in) * v
		}
	}
	return out
}

// TTMChain applies X ×_1 ms[0] ×_2 ms[1] ... over all modes. Entries of ms
// may be nil to skip a mode.
func TTMChain(x *Dense, ms []*mat.Matrix) *Dense {
	if len(ms) != len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTMChain: %d matrices for %d modes", len(ms), len(x.Dims)))
	}
	out := x
	for mode, m := range ms {
		if m == nil {
			continue
		}
		out = TTM(out, m, mode)
	}
	return out
}

// TTMChainSparse applies the TTMChain to a sparse COO tensor: the first
// non-nil mode goes through TTMSparse (sparse×dense → dense), the rest
// through the dense chain. With all entries nil the tensor is densified.
func TTMChainSparse(x *COO, ms []*mat.Matrix) *Dense {
	if len(ms) != len(x.Dims) {
		panic(fmt.Sprintf("tensor: TTMChainSparse: %d matrices for %d modes", len(ms), len(x.Dims)))
	}
	first := -1
	for mode, m := range ms {
		if m != nil {
			first = mode
			break
		}
	}
	if first < 0 {
		return x.Dense()
	}
	out := TTMSparse(x, ms[first], first)
	for mode := first + 1; mode < len(ms); mode++ {
		if ms[mode] != nil {
			out = TTM(out, ms[mode], mode)
		}
	}
	return out
}

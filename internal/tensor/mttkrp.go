package tensor

import (
	"fmt"
	"sync"

	"twopcp/internal/mat"
	"twopcp/internal/par"
)

// Dense MTTKRP, fiber-blocked.
//
// The tensor is Fortran-ordered, so a mode-0 fiber — the I_0 elements that
// differ only in their first index — is a contiguous slice of Data. The
// kernels below iterate whole fibers instead of scalars:
//
//   - the Hadamard product w of the outer-mode factor rows (everything but
//     mode 0 and mode n) is constant along a fiber and is hoisted out of
//     the inner loop;
//   - for n > 0 every fiber belongs to exactly one output row, and its
//     contribution is the panel product s = fiberᵀ·A(0) folded with w:
//     out[j] += s ⊛ w (mat.VecMatMulAdd);
//   - for n == 0 a whole fiber accumulates into the output panel as the
//     rank-one update out += fiber ⊗ w (mat.OuterAdd).
//
// A specialized path handles 3-mode tensors (the paper's benchmark shape)
// without any fiber-weight precomputation; the generic N-way loop handles
// everything else.
//
// Parallelism and determinism: work is distributed over contiguous mode-n
// output-row panels, each output row is owned by exactly one worker
// invocation, and every row is accumulated in the same fiber order as a
// serial sweep. The floating-point output is therefore bit-identical at
// every worker count, including 1.

// fiberScratch bundles the per-worker-invocation buffers of the fiber
// kernels so steady-state sweeps allocate nothing.
type fiberScratch struct {
	s, w []float64
	idx  []int
}

var fiberPool = sync.Pool{New: func() any { return &fiberScratch{} }}

func getFiberScratch(f, modes int) *fiberScratch {
	fs := fiberPool.Get().(*fiberScratch)
	if cap(fs.s) < f {
		fs.s = make([]float64, f)
		fs.w = make([]float64, f)
	}
	fs.s = fs.s[:f]
	fs.w = fs.w[:f]
	if cap(fs.idx) < modes {
		fs.idx = make([]int, modes)
	}
	fs.idx = fs.idx[:modes]
	return fs
}

// wPool holds the fiber-weight chunk of the generic mode-0 path.
var wPool = sync.Pool{New: func() any { s := make([]float64, 0, 1<<14); return &s }}

// MTTKRP computes the Matricized-Tensor Times Khatri-Rao Product for mode n:
//
//	M = X_(n) · (A(N-1) ⊙ ... ⊙ A(n+1) ⊙ A(n-1) ⊙ ... ⊙ A(0))
//
// without materializing the unfolding or the Khatri-Rao product. factors[k]
// must be Dims[k]×F for every k ≠ n; the result is Dims[n]×F.
func MTTKRP(t *Dense, factors []*mat.Matrix, n int) *mat.Matrix {
	checkFactors(t.Dims, factors, n)
	out := mat.New(t.Dims[n], factors[(n+1)%len(factors)].Cols)
	mttkrpInto(out, t, factors, n)
	return out
}

// MTTKRPInto is MTTKRP writing into dst (Dims[n]×F), which is zeroed first.
// Hot loops (CP-ALS sweeps) use it to reuse one accumulator per mode.
func MTTKRPInto(dst *mat.Matrix, t *Dense, factors []*mat.Matrix, n int) {
	checkFactors(t.Dims, factors, n)
	f := factors[(n+1)%len(factors)].Cols
	if dst.Rows != t.Dims[n] || dst.Cols != f {
		panic(fmt.Sprintf("tensor: MTTKRPInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, t.Dims[n], f))
	}
	mttkrpInto(dst, t, factors, n)
}

func mttkrpInto(dst *mat.Matrix, t *Dense, factors []*mat.Matrix, n int) {
	dst.Zero()
	f := dst.Cols
	if len(t.Data) == 0 || f == 0 {
		return
	}
	if len(t.Dims) == 3 {
		mttkrp3(dst, t, factors, n, f)
		return
	}
	mttkrpN(dst, t, factors, n, f)
}

// mttkrp3 is the 3-way fast path: the single outer-mode factor row is used
// directly as the fiber weight (n > 0), or the two outer rows are Hadamard
// multiplied once per fiber (n == 0).
func mttkrp3(dst *mat.Matrix, t *Dense, factors []*mat.Matrix, n, f int) {
	i0n, i1n, i2n := t.Dims[0], t.Dims[1], t.Dims[2]
	x := t.Data
	workers := par.WorkersFor(len(x) * 2 * f)
	switch n {
	case 0:
		a1, a2 := factors[1], factors[2]
		parRowPanels(workers, i0n, func(lo, hi int) {
			fs := getFiberScratch(f, 3)
			w := fs.w
			panel := dst.Data[lo*f : hi*f]
			for i2 := 0; i2 < i2n; i2++ {
				r2 := a2.Row(i2)
				base := i2 * i1n * i0n
				for i1 := 0; i1 < i1n; i1++ {
					mat.HadamardVec(w, a1.Row(i1), r2)
					fb := base + i1*i0n
					mat.OuterAdd(panel, w, x[fb+lo:fb+hi], f)
				}
			}
			fiberPool.Put(fs)
		})
	case 1:
		a0, a2 := factors[0], factors[2]
		par.DoWorkers(workers, i1n, func(j int) {
			fs := getFiberScratch(f, 3)
			s := fs.s
			orow := dst.Row(j)
			for i2 := 0; i2 < i2n; i2++ {
				fb := (i2*i1n + j) * i0n
				for c := range s {
					s[c] = 0
				}
				mat.VecMatMulAdd(s, a0.Data, x[fb:fb+i0n], f)
				w := a2.Row(i2)
				for c, sv := range s {
					orow[c] += sv * w[c]
				}
			}
			fiberPool.Put(fs)
		})
	case 2:
		a0, a1 := factors[0], factors[1]
		par.DoWorkers(workers, i2n, func(j int) {
			fs := getFiberScratch(f, 3)
			s := fs.s
			orow := dst.Row(j)
			base := j * i1n * i0n
			for i1 := 0; i1 < i1n; i1++ {
				fb := base + i1*i0n
				for c := range s {
					s[c] = 0
				}
				mat.VecMatMulAdd(s, a0.Data, x[fb:fb+i0n], f)
				w := a1.Row(i1)
				for c, sv := range s {
					orow[c] += sv * w[c]
				}
			}
			fiberPool.Put(fs)
		})
	}
}

// wChunkFibers is how many fiber weights the generic mode-0 path
// materializes per chunk (bounding scratch at wChunkFibers×F floats).
const wChunkFibers = 4096

// mttkrpN is the generic N-way fiber loop.
func mttkrpN(dst *mat.Matrix, t *Dense, factors []*mat.Matrix, n, f int) {
	dims := t.Dims
	nModes := len(dims)
	i0n := dims[0]
	x := t.Data
	if nModes == 1 {
		// Degenerate: the Khatri-Rao chain is empty, M[i,c] = x[i].
		for i0 := 0; i0 < i0n; i0++ {
			orow := dst.Row(i0)
			v := x[i0]
			for c := range orow {
				orow[c] += v
			}
		}
		return
	}
	nf := len(x) / i0n
	fdims := dims[1:]
	workers := par.WorkersFor(len(x) * 2 * f)

	if n == 0 {
		// Materialize fiber weights in chunks, then apply each chunk's
		// rank-one fiber updates over output-row panels. Every output row
		// sees the fibers in ascending order regardless of panel bounds.
		sp := wPool.Get().(*[]float64)
		if cap(*sp) < wChunkFibers*f {
			*sp = make([]float64, wChunkFibers*f)
		}
		wchunk := (*sp)[:wChunkFibers*f]
		for cf0 := 0; cf0 < nf; cf0 += wChunkFibers {
			cf1 := cf0 + wChunkFibers
			if cf1 > nf {
				cf1 = nf
			}
			buildFiberWeights(wchunk, factors, fdims, cf0, cf1, f, workers)
			parRowPanels(workers, i0n, func(lo, hi int) {
				panel := dst.Data[lo*f : hi*f]
				for fi := cf0; fi < cf1; fi++ {
					fb := fi * i0n
					mat.OuterAdd(panel, wchunk[(fi-cf0)*f:(fi-cf0+1)*f], x[fb+lo:fb+hi], f)
				}
			})
		}
		wPool.Put(sp)
		return
	}

	// n ≥ 1: every fiber belongs to exactly one output row j = idx[n].
	// Fiber-space geometry: fibers are indexed by (i_1, ..., i_{N-1}) in
	// Fortran order, so the fibers of row j are runs of sfn consecutive
	// fibers repeated outerN times.
	sfn := 1
	for k := 1; k < n; k++ {
		sfn *= dims[k]
	}
	outerN := nf / (sfn * dims[n])
	lowDims := dims[1:n]   // decoded along q
	highDims := dims[n+1:] // decoded along outer
	hasW := len(lowDims)+len(highDims) > 0
	par.DoWorkers(workers, dims[n], func(j int) {
		fs := getFiberScratch(f, nModes)
		s, w := fs.s, fs.w
		idxHigh := fs.idx[:len(highDims)]
		idxLow := fs.idx[len(highDims) : len(highDims)+len(lowDims)]
		for k := range idxHigh {
			idxHigh[k] = 0
		}
		for outer := 0; outer < outerN; outer++ {
			for k := range idxLow {
				idxLow[k] = 0
			}
			for q := 0; q < sfn; q++ {
				fi := (outer*dims[n]+j)*sfn + q
				fb := fi * i0n
				for c := range s {
					s[c] = 0
				}
				mat.VecMatMulAdd(s, factors[0].Data, x[fb:fb+i0n], f)
				orow := dst.Row(j)
				if hasW {
					fiberWeight(w, factors, idxLow, idxHigh, n)
					for c, sv := range s {
						orow[c] += sv * w[c]
					}
				} else {
					for c, sv := range s {
						orow[c] += sv
					}
				}
				incIndex(idxLow, lowDims)
			}
			incIndex(idxHigh, highDims)
		}
		fiberPool.Put(fs)
	})
}

// fiberWeight writes the Hadamard product of the outer-mode factor rows
// (modes 1..n-1 at idxLow, modes n+1.. at idxHigh) into w, multiplying in
// ascending mode order.
func fiberWeight(w []float64, factors []*mat.Matrix, idxLow, idxHigh []int, n int) {
	first := true
	for k, i := range idxLow {
		row := factors[k+1].Row(i)
		if first {
			copy(w, row)
			first = false
			continue
		}
		for c := range w {
			w[c] *= row[c]
		}
	}
	for k, i := range idxHigh {
		row := factors[n+1+k].Row(i)
		if first {
			copy(w, row)
			first = false
			continue
		}
		for c := range w {
			w[c] *= row[c]
		}
	}
}

// buildFiberWeights fills wchunk with the fiber weights of fibers
// [cf0, cf1): the Hadamard product of the factor rows of every mode except
// mode 0, multiplied in ascending mode order. Each weight depends only on
// its fiber index, so the build parallelizes freely.
func buildFiberWeights(wchunk []float64, factors []*mat.Matrix, fdims []int, cf0, cf1, f, workers int) {
	count := cf1 - cf0
	const grain = 512
	np := (count + grain - 1) / grain
	par.DoWorkers(workers, np, func(p int) {
		lo := cf0 + p*grain
		hi := lo + grain
		if hi > cf1 {
			hi = cf1
		}
		idx := make([]int, len(fdims))
		unlinear(idx, lo, fdims)
		for fi := lo; fi < hi; fi++ {
			w := wchunk[(fi-cf0)*f : (fi-cf0+1)*f]
			first := true
			for k, i := range idx {
				row := factors[k+1].Row(i)
				if first {
					copy(w, row)
					first = false
					continue
				}
				for c := range w {
					w[c] *= row[c]
				}
			}
			if first {
				for c := range w {
					w[c] = 1
				}
			}
			incIndex(idx, fdims)
		}
	})
}

// unlinear decodes a Fortran-order linear index into idx over dims.
func unlinear(idx []int, lin int, dims []int) {
	for k, d := range dims {
		idx[k] = lin % d
		lin /= d
	}
}

// parRowPanels splits [0, rows) into contiguous panels (at most one per
// worker pass, at least 64 rows each) and runs fn on each. Panel bounds
// never influence results: each output row is owned by exactly one panel.
// The floor bounds the duplicated per-fiber weight work of the mode-0
// callers, which recompute weights once per panel: with ≥64-row panels
// the duplication stays under 1/128 of the panel's multiply-add work.
func parRowPanels(workers, rows int, fn func(lo, hi int)) {
	panel := (rows + workers - 1) / workers
	if panel < 64 {
		panel = 64
	}
	np := (rows + panel - 1) / panel
	par.DoWorkers(workers, np, func(p int) {
		lo := p * panel
		hi := lo + panel
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	})
}

// MTTKRPSparse is MTTKRP over a COO tensor: cost O(nnz · N · F).
func MTTKRPSparse(t *COO, factors []*mat.Matrix, n int) *mat.Matrix {
	checkFactors(t.Dims, factors, n)
	out := mat.New(t.Dims[n], factors[(n+1)%len(factors)].Cols)
	mttkrpSparseInto(out, t, factors, n)
	return out
}

// MTTKRPSparseInto is MTTKRPSparse writing into dst (Dims[n]×F), which is
// zeroed first.
func MTTKRPSparseInto(dst *mat.Matrix, t *COO, factors []*mat.Matrix, n int) {
	checkFactors(t.Dims, factors, n)
	f := factors[(n+1)%len(factors)].Cols
	if dst.Rows != t.Dims[n] || dst.Cols != f {
		panic(fmt.Sprintf("tensor: MTTKRPSparseInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, t.Dims[n], f))
	}
	mttkrpSparseInto(dst, t, factors, n)
}

func mttkrpSparseInto(dst *mat.Matrix, t *COO, factors []*mat.Matrix, n int) {
	dst.Zero()
	f := dst.Cols
	fs := getFiberScratch(f, len(t.Dims))
	defer fiberPool.Put(fs)
	prod := fs.s
	for p, v := range t.Vals {
		for c := range prod {
			prod[c] = v
		}
		for k, fk := range factors {
			if k == n {
				continue
			}
			row := fk.Row(t.Indices[k][p])
			for c := range prod {
				prod[c] *= row[c]
			}
		}
		orow := dst.Row(t.Indices[n][p])
		for c := range prod {
			orow[c] += prod[c]
		}
	}
}

package tensor

import (
	"math/rand"
	"testing"

	"twopcp/internal/mat"
)

func TestIdentityTensor(t *testing.T) {
	id := Identity(3, 4)
	if id.NModes() != 3 || id.Dims[0] != 4 {
		t.Fatalf("dims = %v", id.Dims)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				want := 0.0
				if i == j && j == k {
					want = 1
				}
				if id.At(i, j, k) != want {
					t.Fatalf("I(%d,%d,%d) = %g", i, j, k, id.At(i, j, k))
				}
			}
		}
	}
	if id.NNZ() != 4 {
		t.Fatalf("identity NNZ = %d", id.NNZ())
	}
}

func TestTTMKnownValues(t *testing.T) {
	// X is 2×2 (a matrix as a 2-mode tensor); X ×_1 M = M·X.
	x := NewDense(2, 2)
	x.Set(1, 0, 0)
	x.Set(2, 1, 0)
	x.Set(3, 0, 1)
	x.Set(4, 1, 1)
	m := mat.FromRows([][]float64{{1, 10}, {100, 1000}, {2, 3}})
	y := TTM(x, m, 0)
	if y.Dims[0] != 3 || y.Dims[1] != 2 {
		t.Fatalf("dims = %v", y.Dims)
	}
	// Column 0 of X is (1,2): M·(1,2) = (21, 2100, 8).
	if y.At(0, 0) != 21 || y.At(1, 0) != 2100 || y.At(2, 0) != 8 {
		t.Fatalf("TTM col 0 = %g %g %g", y.At(0, 0), y.At(1, 0), y.At(2, 0))
	}
}

func TestTTMMatchesUnfolding(t *testing.T) {
	// Y = X ×_n M  ⇔  Y_(n) = M·X_(n), the defining identity.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		dims := []int{rng.Intn(4) + 1, rng.Intn(4) + 1, rng.Intn(4) + 1}
		x := RandomDense(rng, dims...)
		for mode := 0; mode < 3; mode++ {
			m := mat.Random(rng.Intn(4)+1, dims[mode], rng)
			y := TTM(x, m, mode)
			want := mat.Mul(m, x.Unfold(mode))
			if !y.Unfold(mode).EqualApprox(want, 1e-11) {
				t.Fatalf("trial %d mode %d: TTM != M·X_(n)", trial, mode)
			}
		}
	}
}

func TestTTMChainReproducesKruskal(t *testing.T) {
	// The paper's equation (1): [[A, B, C]] = I ×_1 A ×_2 B ×_3 C. Verify
	// that chaining TTM over the identity core matches the explicit
	// rank-one sum.
	rng := rand.New(rand.NewSource(2))
	f := 3
	a := mat.Random(4, f, rng)
	b := mat.Random(5, f, rng)
	c := mat.Random(2, f, rng)
	got := TTMChain(Identity(3, f), []*mat.Matrix{a, b, c})
	want := NewDense(4, 5, 2)
	want.Fill(func(idx []int) float64 {
		var s float64
		for r := 0; r < f; r++ {
			s += a.At(idx[0], r) * b.At(idx[1], r) * c.At(idx[2], r)
		}
		return s
	})
	if !got.EqualApprox(want, 1e-11) {
		t.Fatal("I ×1 A ×2 B ×3 C != [[A,B,C]]")
	}
}

func TestTTMChainSkipsNil(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandomDense(rng, 3, 3, 3)
	m := mat.Random(2, 3, rng)
	got := TTMChain(x, []*mat.Matrix{nil, m, nil})
	want := TTM(x, m, 1)
	if !got.EqualApprox(want, 0) {
		t.Fatal("TTMChain with nils != single TTM")
	}
}

func TestTTMPanics(t *testing.T) {
	x := NewDense(2, 2)
	for name, f := range map[string]func(){
		"mode":  func() { TTM(x, mat.New(2, 2), 2) },
		"shape": func() { TTM(x, mat.New(2, 3), 0) },
		"chain": func() { TTMChain(x, []*mat.Matrix{nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TTMSparse must agree with dense TTM on the densified tensor, mode by mode.
func TestTTMSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coo := RandomCOO(rng, 0.3, 4, 5, 3)
	coo.Canonicalize()
	dense := coo.Dense()
	for mode := 0; mode < 3; mode++ {
		m := mat.RandomNormal(2, dense.Dims[mode], rng)
		want := TTM(dense, m, mode)
		got := TTMSparse(coo, m, mode)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("mode %d: dims %v vs %v", mode, got.Dims, want.Dims)
		}
		for i := range want.Data {
			if d := got.Data[i] - want.Data[i]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("mode %d: entry %d: %g vs %g", mode, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestTTMChainSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	coo := RandomCOO(rng, 0.4, 5, 4, 3)
	coo.Canonicalize()
	dense := coo.Dense()
	ms := []*mat.Matrix{
		mat.RandomNormal(2, 5, rng),
		nil,
		mat.RandomNormal(2, 3, rng),
	}
	want := TTMChain(dense, ms)
	got := TTMChainSparse(coo, ms)
	for i := range want.Data {
		if d := got.Data[i] - want.Data[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("entry %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
	// All-nil chain densifies.
	allNil := TTMChainSparse(coo, []*mat.Matrix{nil, nil, nil})
	for i := range dense.Data {
		if allNil.Data[i] != dense.Data[i] {
			t.Fatal("all-nil TTMChainSparse should densify")
		}
	}
}

package tensor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDenseIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := RandomDense(rng, 3, 4, 5)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(d, 0) {
		t.Fatal("dense IO round trip failed")
	}
}

func TestCOOIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := RandomCOO(rng, 0.2, 5, 6, 7)
	var buf bytes.Buffer
	if err := WriteCOO(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().EqualApprox(c.Dense(), 0) {
		t.Fatal("COO IO round trip failed")
	}
	if got.NNZ() != c.NNZ() {
		t.Fatalf("nnz %d != %d", got.NNZ(), c.NNZ())
	}
}

func TestReadDenseBadMagic(t *testing.T) {
	if _, err := ReadDense(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadCOOBadMagic(t *testing.T) {
	if _, err := ReadCOO(strings.NewReader("XXXX")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadDenseTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := RandomDense(rng, 4, 4)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadDense(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestSaveLoadDenseFile(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := RandomDense(rng, 2, 3, 2)
	path := filepath.Join(t.TempDir(), "t.tpdn")
	if err := SaveDense(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDense(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(d, 0) {
		t.Fatal("file round trip failed")
	}
}

func TestSaveLoadCOOFile(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	c := RandomCOO(rng, 0.3, 4, 4)
	path := filepath.Join(t.TempDir(), "t.tpsp")
	if err := SaveCOO(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCOO(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().EqualApprox(c.Dense(), 0) {
		t.Fatal("file round trip failed")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadDense(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := LoadCOO(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
}

// corruptHeader builds a dense header (magic + nmodes + dims) with
// arbitrary dim values and no payload.
func corruptHeader(magic string, dims ...uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, uint32(len(dims)))
	binary.Write(&buf, binary.LittleEndian, dims)
	return buf.Bytes()
}

func TestReadDenseRejectsImplausibleHeaders(t *testing.T) {
	// Overflowing product: three modes of 2^21 = 2^63 cells. Must be
	// rejected before any allocation is attempted.
	b := corruptHeader("TPDN", 1<<21, 1<<21, 1<<21)
	if _, err := ReadDense(bytes.NewReader(b)); err == nil {
		t.Fatal("overflowing dims accepted")
	}
	// A single absurd mode.
	b = corruptHeader("TPDN", 1<<50)
	if _, err := ReadDense(bytes.NewReader(b)); err == nil {
		t.Fatal("2^50-cell mode accepted")
	}
}

func TestReadDenseRejectsHeaderLargerThanFile(t *testing.T) {
	// A small file whose header claims a 64M-cell tensor: the file-size
	// check must fire before the 512 MB allocation.
	path := filepath.Join(t.TempDir(), "lie.tpdn")
	if err := os.WriteFile(path, corruptHeader("TPDN", 400, 400, 400), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDense(path); err == nil {
		t.Fatal("header larger than file accepted")
	}
	if !strings.Contains(func() string {
		_, err := LoadDense(path)
		return err.Error()
	}(), "file has only") {
		t.Fatal("expected a file-size mismatch error")
	}
}

func TestReadCOORejectsImplausibleHeaders(t *testing.T) {
	// nnz beyond any sane bound.
	var buf bytes.Buffer
	buf.Write(corruptHeader("TPSP", 100, 100))
	binary.Write(&buf, binary.LittleEndian, uint64(1)<<50)
	if _, err := ReadCOO(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("2^50 nnz accepted")
	}
	// Overflowing dims product.
	b := corruptHeader("TPSP", 1<<21, 1<<21, 1<<21)
	if _, err := ReadCOO(bytes.NewReader(b)); err == nil {
		t.Fatal("overflowing dims accepted")
	}
}

func TestReadCOORejectsNNZLargerThanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lie.tpsp")
	var buf bytes.Buffer
	buf.Write(corruptHeader("TPSP", 50, 50))
	binary.Write(&buf, binary.LittleEndian, uint64(1_000_000)) // ~24 MB of records
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCOO(path); err == nil {
		t.Fatal("nnz larger than file accepted")
	}
}

func TestEmptyDenseIO(t *testing.T) {
	d := NewDense(0, 5)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dims[1] != 5 {
		t.Fatalf("empty round trip: %v", got.Dims)
	}
}

package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestDenseIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := RandomDense(rng, 3, 4, 5)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(d, 0) {
		t.Fatal("dense IO round trip failed")
	}
}

func TestCOOIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := RandomCOO(rng, 0.2, 5, 6, 7)
	var buf bytes.Buffer
	if err := WriteCOO(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().EqualApprox(c.Dense(), 0) {
		t.Fatal("COO IO round trip failed")
	}
	if got.NNZ() != c.NNZ() {
		t.Fatalf("nnz %d != %d", got.NNZ(), c.NNZ())
	}
}

func TestReadDenseBadMagic(t *testing.T) {
	if _, err := ReadDense(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadCOOBadMagic(t *testing.T) {
	if _, err := ReadCOO(strings.NewReader("XXXX")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadDenseTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := RandomDense(rng, 4, 4)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadDense(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestSaveLoadDenseFile(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := RandomDense(rng, 2, 3, 2)
	path := filepath.Join(t.TempDir(), "t.tpdn")
	if err := SaveDense(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDense(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(d, 0) {
		t.Fatal("file round trip failed")
	}
}

func TestSaveLoadCOOFile(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	c := RandomCOO(rng, 0.3, 4, 4)
	path := filepath.Join(t.TempDir(), "t.tpsp")
	if err := SaveCOO(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCOO(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Dense().EqualApprox(c.Dense(), 0) {
		t.Fatal("file round trip failed")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadDense(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := LoadCOO(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmptyDenseIO(t *testing.T) {
	d := NewDense(0, 5)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dims[1] != 5 {
		t.Fatalf("empty round trip: %v", got.Dims)
	}
}

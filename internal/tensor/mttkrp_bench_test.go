package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/par"
)

// BenchmarkMTTKRP measures the dense MTTKRP kernel on the paper's benchmark
// block shape (256³, rank 16), per mode and per worker count. The recorded
// baselines live in BENCH_kernels.json at the repo root.
func BenchmarkMTTKRP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandomDense(rng, 256, 256, 256)
	const f = 16
	factors := []*mat.Matrix{
		mat.Random(256, f, rng), mat.Random(256, f, rng), mat.Random(256, f, rng),
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "maxprocs"
		}
		for n := 0; n < 3; n++ {
			b.Run(fmt.Sprintf("%s/mode%d", name, n), func(b *testing.B) {
				defer par.SetWorkers(par.SetWorkers(workers))
				out := mat.New(256, f)
				b.SetBytes(int64(len(x.Data) * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MTTKRPInto(out, x, factors, n)
				}
			})
		}
	}
}

// BenchmarkMTTKRP4Mode exercises the generic N-way fiber loop (the 3-way
// shape above takes the specialized fast path).
func BenchmarkMTTKRP4Mode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandomDense(rng, 64, 64, 64, 64)
	const f = 16
	factors := make([]*mat.Matrix, 4)
	for k := range factors {
		factors[k] = mat.Random(64, f, rng)
	}
	defer par.SetWorkers(par.SetWorkers(1))
	out := mat.New(64, f)
	b.SetBytes(int64(len(x.Data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MTTKRPInto(out, x, factors, 1)
	}
}

package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopcp/internal/mat"
)

func TestKhatriRaoKnown(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	b := mat.FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	kr := KhatriRao(a, b)
	if kr.Rows != 6 || kr.Cols != 2 {
		t.Fatalf("shape %d×%d", kr.Rows, kr.Cols)
	}
	// Row (i=1, j=2) = a[1,:] * b[2,:] = (3*9, 4*10); b varies fastest.
	row := kr.Row(1*3 + 2)
	if row[0] != 27 || row[1] != 40 {
		t.Fatalf("row = %v", row)
	}
}

func TestKhatriRaoColMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KhatriRao(mat.New(2, 2), mat.New(2, 3))
}

func TestKhatriRaoGramIdentity(t *testing.T) {
	// (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ⊛ BᵀB — the classic identity that CP-ALS
	// exploits to avoid forming the Khatri-Rao product.
	rng := rand.New(rand.NewSource(20))
	f := func(ra, rb, c8 uint8) bool {
		ar, br, c := int(ra%6)+1, int(rb%6)+1, int(c8%5)+1
		a, b := mat.Random(ar, c, rng), mat.Random(br, c, rng)
		left := mat.Gram(KhatriRao(a, b))
		right := mat.Hadamard(mat.Gram(a), mat.Gram(b))
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKhatriRaoSkipOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	factors := []*mat.Matrix{
		mat.Random(2, 3, rng),
		mat.Random(4, 3, rng),
		mat.Random(5, 3, rng),
	}
	// skip mode 1: chain = A2 ⊙ A0 (mode 0 fastest)
	got := KhatriRaoSkip(factors, 1)
	want := KhatriRao(factors[2], factors[0])
	if !got.EqualApprox(want, 0) {
		t.Fatal("KhatriRaoSkip order wrong")
	}
	// skip mode 2 of a 3-mode: chain = A1 ⊙ A0
	got = KhatriRaoSkip(factors, 2)
	want = KhatriRao(factors[1], factors[0])
	if !got.EqualApprox(want, 0) {
		t.Fatal("KhatriRaoSkip(2) order wrong")
	}
}

func TestMTTKRPMatchesUnfoldTimesKR(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		dims := []int{rng.Intn(4) + 1, rng.Intn(4) + 1, rng.Intn(4) + 1}
		f := rng.Intn(3) + 1
		x := RandomDense(rng, dims...)
		factors := make([]*mat.Matrix, 3)
		for k := range factors {
			factors[k] = mat.Random(dims[k], f, rng)
		}
		for n := 0; n < 3; n++ {
			fast := MTTKRP(x, factors, n)
			slow := mat.Mul(x.Unfold(n), KhatriRaoSkip(factors, n))
			if !fast.EqualApprox(slow, 1e-10) {
				t.Fatalf("trial %d mode %d: MTTKRP != X_(n)·KR", trial, n)
			}
		}
	}
}

func TestMTTKRP4Mode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dims := []int{2, 3, 2, 2}
	x := RandomDense(rng, dims...)
	factors := make([]*mat.Matrix, 4)
	for k := range factors {
		factors[k] = mat.Random(dims[k], 2, rng)
	}
	for n := 0; n < 4; n++ {
		fast := MTTKRP(x, factors, n)
		slow := mat.Mul(x.Unfold(n), KhatriRaoSkip(factors, n))
		if !fast.EqualApprox(slow, 1e-10) {
			t.Fatalf("mode %d: 4-mode MTTKRP mismatch", n)
		}
	}
}

func TestMTTKRPSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		dims := []int{rng.Intn(5) + 2, rng.Intn(5) + 2, rng.Intn(5) + 2}
		c := RandomCOO(rng, 0.3, dims...)
		d := c.Dense()
		factors := make([]*mat.Matrix, 3)
		for k := range factors {
			factors[k] = mat.Random(dims[k], 3, rng)
		}
		for n := 0; n < 3; n++ {
			sp := MTTKRPSparse(c, factors, n)
			de := MTTKRP(d, factors, n)
			if !sp.EqualApprox(de, 1e-10) {
				t.Fatalf("trial %d mode %d: sparse MTTKRP mismatch", trial, n)
			}
		}
	}
}

func TestMTTKRPChecksShapes(t *testing.T) {
	x := NewDense(2, 2, 2)
	good := []*mat.Matrix{mat.New(2, 3), mat.New(2, 3), mat.New(2, 3)}
	for _, tc := range []struct {
		name    string
		factors []*mat.Matrix
		mode    int
	}{
		{"wrong count", good[:2], 0},
		{"bad mode", good, 3},
		{"bad rows", []*mat.Matrix{mat.New(9, 3), mat.New(2, 3), mat.New(2, 3)}, 1},
		{"bad cols", []*mat.Matrix{mat.New(2, 3), mat.New(2, 4), mat.New(2, 3)}, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			MTTKRP(x, tc.factors, tc.mode)
		}()
	}
}

func BenchmarkMTTKRPDense32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandomDense(rng, 32, 32, 32)
	factors := []*mat.Matrix{
		mat.Random(32, 10, rng), mat.Random(32, 10, rng), mat.Random(32, 10, rng),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MTTKRP(x, factors, 0)
	}
}

package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary file format (little-endian):
//
//	dense:  magic "TPDN", uint32 nmodes, nmodes × uint64 dims, then Π dims
//	        float64 values in Fortran order.
//	sparse: magic "TPSP", uint32 nmodes, nmodes × uint64 dims, uint64 nnz,
//	        then nnz records of (nmodes × uint64 coords, float64 value).
const (
	denseMagic  = "TPDN"
	sparseMagic = "TPSP"
)

// WriteDense serializes t to w in the twopcp dense binary format.
func WriteDense(w io.Writer, t *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(denseMagic); err != nil {
		return fmt.Errorf("tensor: write dense header: %w", err)
	}
	if err := writeDims(bw, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Data); err != nil {
		return fmt.Errorf("tensor: write dense data: %w", err)
	}
	return bw.Flush()
}

// ReadDense deserializes a dense tensor from r. The header is
// validated against sane limits — and, when r is a file, against the
// file's actual size — before the payload allocation, so a corrupt or
// hostile header cannot trigger a multi-GB (or overflowed) allocation.
func ReadDense(r io.Reader) (*Dense, error) {
	limit := remainingBytes(r)
	br := bufio.NewReader(r)
	if err := expectMagic(br, denseMagic); err != nil {
		return nil, err
	}
	dims, err := readDims(br)
	if err != nil {
		return nil, err
	}
	n, err := checkedLen(dims)
	if err != nil {
		return nil, err
	}
	if need := headerBytes(len(dims)) + 8*n; limit >= 0 && need > limit {
		return nil, fmt.Errorf("tensor: header declares %v (%d bytes) but the file has only %d",
			dims, need, limit)
	}
	t := NewDense(dims...)
	if err := binary.Read(br, binary.LittleEndian, t.Data); err != nil {
		return nil, fmt.Errorf("tensor: read dense data: %w", err)
	}
	return t, nil
}

// WriteCOO serializes t to w in the twopcp sparse binary format.
func WriteCOO(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sparseMagic); err != nil {
		return fmt.Errorf("tensor: write sparse header: %w", err)
	}
	if err := writeDims(bw, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return fmt.Errorf("tensor: write nnz: %w", err)
	}
	coords := make([]uint64, len(t.Dims))
	for p, v := range t.Vals {
		for m := range t.Dims {
			coords[m] = uint64(t.Indices[m][p])
		}
		if err := binary.Write(bw, binary.LittleEndian, coords); err != nil {
			return fmt.Errorf("tensor: write coords: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("tensor: write value: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCOO deserializes a sparse tensor from r. Like ReadDense, the
// declared nnz is validated against sane limits and the file size
// before any proportional allocation.
func ReadCOO(r io.Reader) (*COO, error) {
	limit := remainingBytes(r)
	br := bufio.NewReader(r)
	if err := expectMagic(br, sparseMagic); err != nil {
		return nil, err
	}
	dims, err := readDims(br)
	if err != nil {
		return nil, err
	}
	if _, err := checkedLen(dims); err != nil {
		return nil, err
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("tensor: read nnz: %w", err)
	}
	if nnz > maxTensorElems {
		return nil, fmt.Errorf("tensor: implausible nnz %d", nnz)
	}
	recBytes := int64(8*len(dims) + 8)
	if need := headerBytes(len(dims)) + 8 + int64(nnz)*recBytes; limit >= 0 && need > limit {
		return nil, fmt.Errorf("tensor: header declares %d nonzeros (%d bytes) but the file has only %d",
			nnz, need, limit)
	}
	t := NewCOO(dims...)
	coords := make([]uint64, len(dims))
	idx := make([]int, len(dims))
	for p := uint64(0); p < nnz; p++ {
		if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
			return nil, fmt.Errorf("tensor: read coords: %w", err)
		}
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("tensor: read value: %w", err)
		}
		// Validate every coordinate against the declared dims before
		// Append (which panics on out-of-range indices — correct for
		// programmer error, but a corrupt or hostile file must surface as
		// an error). The uint64 comparison also catches coordinates that
		// would overflow int.
		for m := range idx {
			if coords[m] >= uint64(dims[m]) {
				return nil, fmt.Errorf("tensor: nonzero %d: coordinate %d on mode %d outside dim %d",
					p, coords[m], m, dims[m])
			}
			idx[m] = int(coords[m])
		}
		t.Append(idx, v)
	}
	return t, nil
}

// SaveDense writes t to the named file, creating or truncating it.
func SaveDense(path string, t *Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	if err := WriteDense(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadDense reads a dense tensor from the named file.
func LoadDense(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	return ReadDense(f)
}

// SaveCOO writes t to the named file, creating or truncating it.
func SaveCOO(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	if err := WriteCOO(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadCOO reads a sparse tensor from the named file.
func LoadCOO(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	return ReadCOO(f)
}

func writeDims(w io.Writer, dims []int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(dims))); err != nil {
		return fmt.Errorf("tensor: write nmodes: %w", err)
	}
	u := make([]uint64, len(dims))
	for i, d := range dims {
		u[i] = uint64(d)
	}
	if err := binary.Write(w, binary.LittleEndian, u); err != nil {
		return fmt.Errorf("tensor: write dims: %w", err)
	}
	return nil
}

// maxTensorElems bounds the cell (or nonzero) count a header may
// declare: 2^42 cells = 32 TiB of float64 payload. Anything larger is
// rejected as corrupt before allocation.
const maxTensorElems = 1 << 42

func readDims(r io.Reader) ([]int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("tensor: read nmodes: %w", err)
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("tensor: implausible mode count %d", n)
	}
	u := make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, u); err != nil {
		return nil, fmt.Errorf("tensor: read dims: %w", err)
	}
	dims := make([]int, n)
	for i, d := range u {
		if d > maxTensorElems {
			return nil, fmt.Errorf("tensor: mode %d has implausible size %d", i, d)
		}
		dims[i] = int(d)
	}
	return dims, nil
}

// checkedLen returns Π dims, rejecting negative sizes and products
// beyond maxTensorElems (including overflowed ones) before any
// allocation proportional to the product.
func checkedLen(dims []int) (int64, error) {
	total := int64(1)
	for i, d := range dims {
		if d < 0 {
			return 0, fmt.Errorf("tensor: mode %d has negative size %d", i, d)
		}
		if d == 0 {
			total = 0
			continue
		}
		if total > maxTensorElems/int64(d) {
			return 0, fmt.Errorf("tensor: dims %v exceed %d total cells", dims, int64(maxTensorElems))
		}
		total *= int64(d)
	}
	return total, nil
}

// headerBytes is the on-disk size of magic + nmodes + dims.
func headerBytes(nmodes int) int64 { return 4 + 4 + 8*int64(nmodes) }

// remainingBytes reports how many bytes r still has when it can tell —
// a file (anything with Stat) or an in-memory reader (anything with
// Len, e.g. bytes.Reader and strings.Reader) — and -1 otherwise. It
// lets the readers reject headers that promise more payload than exists
// before allocating for them; the Len branch is what keeps a fuzzer (or
// any caller decoding an in-memory buffer) from being OOM-killed by a
// 4-byte dims field declaring a terabyte-scale tensor the buffer cannot
// possibly contain.
func remainingBytes(r io.Reader) int64 {
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	type sizer interface {
		Stat() (os.FileInfo, error)
	}
	s, ok := r.(sizer)
	if !ok {
		return -1
	}
	fi, err := s.Stat()
	if err != nil || !fi.Mode().IsRegular() {
		return -1
	}
	size := fi.Size()
	// Account for anything already consumed when r is seekable.
	if sk, ok := r.(io.Seeker); ok {
		if pos, err := sk.Seek(0, io.SeekCurrent); err == nil {
			return size - pos
		}
	}
	return size
}

func expectMagic(r io.Reader, want string) error {
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("tensor: read magic: %w", err)
	}
	if string(buf) != want {
		return fmt.Errorf("tensor: bad magic %q, want %q", buf, want)
	}
	return nil
}

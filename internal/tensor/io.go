package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary file format (little-endian):
//
//	dense:  magic "TPDN", uint32 nmodes, nmodes × uint64 dims, then Π dims
//	        float64 values in Fortran order.
//	sparse: magic "TPSP", uint32 nmodes, nmodes × uint64 dims, uint64 nnz,
//	        then nnz records of (nmodes × uint64 coords, float64 value).
const (
	denseMagic  = "TPDN"
	sparseMagic = "TPSP"
)

// WriteDense serializes t to w in the twopcp dense binary format.
func WriteDense(w io.Writer, t *Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(denseMagic); err != nil {
		return fmt.Errorf("tensor: write dense header: %w", err)
	}
	if err := writeDims(bw, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Data); err != nil {
		return fmt.Errorf("tensor: write dense data: %w", err)
	}
	return bw.Flush()
}

// ReadDense deserializes a dense tensor from r.
func ReadDense(r io.Reader) (*Dense, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, denseMagic); err != nil {
		return nil, err
	}
	dims, err := readDims(br)
	if err != nil {
		return nil, err
	}
	t := NewDense(dims...)
	if err := binary.Read(br, binary.LittleEndian, t.Data); err != nil {
		return nil, fmt.Errorf("tensor: read dense data: %w", err)
	}
	return t, nil
}

// WriteCOO serializes t to w in the twopcp sparse binary format.
func WriteCOO(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sparseMagic); err != nil {
		return fmt.Errorf("tensor: write sparse header: %w", err)
	}
	if err := writeDims(bw, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return fmt.Errorf("tensor: write nnz: %w", err)
	}
	coords := make([]uint64, len(t.Dims))
	for p, v := range t.Vals {
		for m := range t.Dims {
			coords[m] = uint64(t.Indices[m][p])
		}
		if err := binary.Write(bw, binary.LittleEndian, coords); err != nil {
			return fmt.Errorf("tensor: write coords: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("tensor: write value: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCOO deserializes a sparse tensor from r.
func ReadCOO(r io.Reader) (*COO, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, sparseMagic); err != nil {
		return nil, err
	}
	dims, err := readDims(br)
	if err != nil {
		return nil, err
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("tensor: read nnz: %w", err)
	}
	t := NewCOO(dims...)
	coords := make([]uint64, len(dims))
	idx := make([]int, len(dims))
	for p := uint64(0); p < nnz; p++ {
		if err := binary.Read(br, binary.LittleEndian, coords); err != nil {
			return nil, fmt.Errorf("tensor: read coords: %w", err)
		}
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("tensor: read value: %w", err)
		}
		for m := range idx {
			idx[m] = int(coords[m])
		}
		t.Append(idx, v)
	}
	return t, nil
}

// SaveDense writes t to the named file, creating or truncating it.
func SaveDense(path string, t *Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	if err := WriteDense(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadDense reads a dense tensor from the named file.
func LoadDense(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	return ReadDense(f)
}

// SaveCOO writes t to the named file, creating or truncating it.
func SaveCOO(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	if err := WriteCOO(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadCOO reads a sparse tensor from the named file.
func LoadCOO(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tensor: %w", err)
	}
	defer f.Close()
	return ReadCOO(f)
}

func writeDims(w io.Writer, dims []int) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(dims))); err != nil {
		return fmt.Errorf("tensor: write nmodes: %w", err)
	}
	u := make([]uint64, len(dims))
	for i, d := range dims {
		u[i] = uint64(d)
	}
	if err := binary.Write(w, binary.LittleEndian, u); err != nil {
		return fmt.Errorf("tensor: write dims: %w", err)
	}
	return nil
}

func readDims(r io.Reader) ([]int, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("tensor: read nmodes: %w", err)
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("tensor: implausible mode count %d", n)
	}
	u := make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, u); err != nil {
		return nil, fmt.Errorf("tensor: read dims: %w", err)
	}
	dims := make([]int, n)
	for i, d := range u {
		dims[i] = int(d)
	}
	return dims, nil
}

func expectMagic(r io.Reader, want string) error {
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("tensor: read magic: %w", err)
	}
	if string(buf) != want {
		return fmt.Errorf("tensor: bad magic %q, want %q", buf, want)
	}
	return nil
}

package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/par"
)

// mttkrpRef is the straightforward scalar reference: walk every cell with
// an odometer, form the factor-row product, accumulate into the output row.
func mttkrpRef(t *Dense, factors []*mat.Matrix, n int) *mat.Matrix {
	f := factors[(n+1)%len(factors)].Cols
	out := mat.New(t.Dims[n], f)
	idx := make([]int, len(t.Dims))
	prod := make([]float64, f)
	for _, v := range t.Data {
		for c := range prod {
			prod[c] = v
		}
		for k, fk := range factors {
			if k == n {
				continue
			}
			row := fk.Row(idx[k])
			for c := range prod {
				prod[c] *= row[c]
			}
		}
		orow := out.Row(idx[n])
		for c := range prod {
			orow[c] += prod[c]
		}
		incIndex(idx, t.Dims)
	}
	return out
}

// workerCounts is the grid the bit-exactness tests sweep. GOMAXPROCS is
// usually in the list already; the explicit values exercise fewer-than and
// more-than-CPU configurations either way.
var workerCounts = []int{1, 2, 7, runtime.GOMAXPROCS(0)}

func TestMTTKRPParallelBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{
		{37, 29, 23},
		{64, 1, 5},
		{1, 6, 7},
		{19, 3, 4, 5},
		{8, 7},
		{13},
		{6, 5, 4, 3, 2},
	}
	for _, dims := range shapes {
		x := RandomDense(rng, dims...)
		const f = 5
		factors := make([]*mat.Matrix, len(dims))
		for k := range factors {
			factors[k] = mat.Random(dims[k], f, rng)
		}
		for n := range dims {
			serial := func() *mat.Matrix {
				defer par.SetWorkers(par.SetWorkers(1))
				return MTTKRP(x, factors, n)
			}()
			for _, w := range workerCounts {
				got := func() *mat.Matrix {
					defer par.SetWorkers(par.SetWorkers(w))
					return MTTKRP(x, factors, n)
				}()
				if !got.Equal(serial) {
					t.Fatalf("dims %v mode %d: workers=%d differs from serial", dims, n, w)
				}
			}
			ref := mttkrpRef(x, factors, n)
			if !serial.EqualApprox(ref, 1e-10) {
				t.Fatalf("dims %v mode %d: fiber kernel diverges from scalar reference", dims, n)
			}
		}
	}
}

// TestMTTKRPParallelBitExactLarge forces the parallel dispatch path (the
// small shapes above stay under the serial work threshold).
func TestMTTKRPParallelBitExactLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][]int{{48, 40, 44}, {20, 12, 10, 14}} {
		x := RandomDense(rng, dims...)
		const f = 16
		factors := make([]*mat.Matrix, len(dims))
		for k := range factors {
			factors[k] = mat.Random(dims[k], f, rng)
		}
		for n := range dims {
			serial := func() *mat.Matrix {
				defer par.SetWorkers(par.SetWorkers(1))
				return MTTKRP(x, factors, n)
			}()
			for _, w := range workerCounts {
				got := func() *mat.Matrix {
					defer par.SetWorkers(par.SetWorkers(w))
					return MTTKRP(x, factors, n)
				}()
				if !got.Equal(serial) {
					t.Fatalf("dims %v mode %d: workers=%d differs from serial", dims, n, w)
				}
			}
		}
	}
}

func TestMTTKRPIntoMatchesMTTKRP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := []int{9, 8, 7}
	x := RandomDense(rng, dims...)
	factors := make([]*mat.Matrix, 3)
	for k := range factors {
		factors[k] = mat.Random(dims[k], 4, rng)
	}
	for n := range dims {
		want := MTTKRP(x, factors, n)
		dst := mat.New(dims[n], 4)
		dst.Fill(42) // must be fully overwritten
		MTTKRPInto(dst, x, factors, n)
		if !dst.Equal(want) {
			t.Fatalf("mode %d: MTTKRPInto differs from MTTKRP", n)
		}
	}
	// Reuse must be stable: a second call yields the same bits.
	dst := mat.New(dims[1], 4)
	MTTKRPInto(dst, x, factors, 1)
	again := dst.Clone()
	MTTKRPInto(dst, x, factors, 1)
	if !dst.Equal(again) {
		t.Fatal("MTTKRPInto is not idempotent over a reused dst")
	}
}

func TestMTTKRPIntoShapeCheck(t *testing.T) {
	x := NewDense(3, 4, 5)
	factors := []*mat.Matrix{mat.New(3, 2), mat.New(4, 2), mat.New(5, 2)}
	for _, dst := range []*mat.Matrix{mat.New(4, 2), mat.New(3, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for dst %d×%d", dst.Rows, dst.Cols)
				}
			}()
			MTTKRPInto(dst, x, factors, 0)
		}()
	}
}

func TestMTTKRPSparseIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := RandomCOO(rng, 0.4, 6, 5, 4)
	factors := []*mat.Matrix{mat.Random(6, 3, rng), mat.Random(5, 3, rng), mat.Random(4, 3, rng)}
	for n := 0; n < 3; n++ {
		want := MTTKRPSparse(c, factors, n)
		dst := mat.New(c.Dims[n], 3)
		dst.Fill(-1)
		MTTKRPSparseInto(dst, c, factors, n)
		if !dst.Equal(want) {
			t.Fatalf("mode %d: MTTKRPSparseInto differs", n)
		}
	}
}

// TestMTTKRPZeroAndEdgeShapes covers empty tensors and degenerate modes.
func TestMTTKRPZeroAndEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][]int{{0, 3, 2}, {3, 0, 2}, {2, 2, 2, 0}} {
		x := NewDense(dims...)
		factors := make([]*mat.Matrix, len(dims))
		for k := range factors {
			factors[k] = mat.Random(dims[k], 3, rng)
		}
		for n := range dims {
			got := MTTKRP(x, factors, n)
			if got.Rows != dims[n] || got.Cols != 3 {
				t.Fatalf("dims %v mode %d: shape %d×%d", dims, n, got.Rows, got.Cols)
			}
			if got.MaxAbs() != 0 {
				t.Fatalf("dims %v mode %d: nonzero output of empty tensor", dims, n)
			}
		}
	}
	// 1-mode tensor: M[i,c] = x[i].
	x := RandomDense(rng, 4)
	got := MTTKRP(x, []*mat.Matrix{mat.New(4, 2)}, 0)
	for i := 0; i < 4; i++ {
		for c := 0; c < 2; c++ {
			if got.At(i, c) != x.Data[i] {
				t.Fatalf("1-mode MTTKRP[%d,%d] = %g, want %g", i, c, got.At(i, c), x.Data[i])
			}
		}
	}
}

func TestMTTKRPGenericMatchesReferenceManyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		nm := rng.Intn(4) + 2
		dims := make([]int, nm)
		for k := range dims {
			dims[k] = rng.Intn(6) + 1
		}
		f := rng.Intn(7) + 1
		x := RandomDense(rng, dims...)
		factors := make([]*mat.Matrix, nm)
		for k := range factors {
			factors[k] = mat.Random(dims[k], f, rng)
		}
		for n := range dims {
			got := MTTKRP(x, factors, n)
			ref := mttkrpRef(x, factors, n)
			if !got.EqualApprox(ref, 1e-10) {
				t.Fatalf("trial %d dims %v mode %d f %d: mismatch", trial, dims, n, f)
			}
		}
	}
}

// TestMTTKRPGenericMode0MultiChunk crosses the wChunkFibers boundary
// (4352 fibers > 4096) so the chunked fiber-weight path runs more than one
// chunk, and checks bit-equality across worker counts on that path too.
func TestMTTKRPGenericMode0MultiChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dims := []int{4, 17, 16, 16}
	x := RandomDense(rng, dims...)
	const f = 3
	factors := make([]*mat.Matrix, len(dims))
	for k := range factors {
		factors[k] = mat.Random(dims[k], f, rng)
	}
	serial := func() *mat.Matrix {
		defer par.SetWorkers(par.SetWorkers(1))
		return MTTKRP(x, factors, 0)
	}()
	if !serial.EqualApprox(mttkrpRef(x, factors, 0), 1e-10) {
		t.Fatal("multi-chunk mode-0 MTTKRP diverges from reference")
	}
	for _, w := range workerCounts {
		got := func() *mat.Matrix {
			defer par.SetWorkers(par.SetWorkers(w))
			return MTTKRP(x, factors, 0)
		}()
		if !got.Equal(serial) {
			t.Fatalf("workers=%d: multi-chunk mode-0 differs from serial", w)
		}
	}
}

func TestParRowPanelsCoversRows(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1)) // serial execution, per-w geometry
	for _, rows := range []int{1, 15, 16, 17, 100, 1024} {
		for _, w := range workerCounts {
			seen := make([]bool, rows)
			parRowPanels(w, rows, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if seen[i] {
						t.Fatalf("rows=%d workers=%d: row %d visited twice", rows, w, i)
					}
					seen[i] = true
				}
			})
			for i, s := range seen {
				if !s {
					t.Fatalf("rows=%d workers=%d: row %d not visited", rows, w, i)
				}
			}
		}
	}
}

func ExampleMTTKRP() {
	x := NewDense(2, 2, 2)
	x.Fill(func(idx []int) float64 { return float64(idx[0] + 2*idx[1] + 4*idx[2]) })
	ones := mat.FromRows([][]float64{{1}, {1}})
	m := MTTKRP(x, []*mat.Matrix{ones, ones, ones}, 0)
	fmt.Println(m.At(0, 0), m.At(1, 0))
	// Output: 12 16
}

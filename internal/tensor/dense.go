// Package tensor provides the N-mode tensor substrate for twopcp: dense
// tensors (Fortran-ordered, mode-1 fastest), sparse COO tensors, mode-n
// unfolding, Khatri-Rao products and MTTKRP — the kernels that CP-ALS and
// the grid decomposition are built from.
//
// Layout convention. Dense data follows the tensor-literature vectorization
// (Kolda & Bader): element (i_1, ..., i_N) lives at offset
// i_1 + I_1·i_2 + I_1·I_2·i_3 + ..., i.e. the first mode varies fastest.
// Mode-n unfolding and Khatri-Rao ordering in this package are consistent
// with that convention, so
//
//	MTTKRP(X, A, n) == Unfold(X, n) · KhatriRaoSkip(A, n)
//
// holds exactly (and is verified by the test suite).
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"twopcp/internal/mat"
)

// Dense is a dense N-mode tensor.
type Dense struct {
	Dims []int     // mode sizes I_1..I_N
	Data []float64 // Fortran-ordered values, len = Π Dims
}

// NewDense returns a zero dense tensor with the given mode sizes.
// It panics on negative sizes.
func NewDense(dims ...int) *Dense {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: NewDense%v: negative dimension", dims))
		}
		n *= d
	}
	return &Dense{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// NModes returns the number of modes (the order) of the tensor.
func (t *Dense) NModes() int { return len(t.Dims) }

// Len returns the total number of cells, Π Dims.
func (t *Dense) Len() int { return len(t.Data) }

// Strides returns the Fortran-order strides: stride[0] = 1,
// stride[k] = Π_{m<k} I_m.
func (t *Dense) Strides() []int {
	s := make([]int, len(t.Dims))
	acc := 1
	for k, d := range t.Dims {
		s[k] = acc
		acc *= d
	}
	return s
}

// Offset returns the linear offset of the multi-index idx.
func (t *Dense) Offset(idx []int) int {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("tensor: Offset: %d indexes for %d modes", len(idx), len(t.Dims)))
	}
	off, stride := 0, 1
	for k, i := range idx {
		if i < 0 || i >= t.Dims[k] {
			panic(fmt.Sprintf("tensor: index %v out of range of dims %v", idx, t.Dims))
		}
		off += i * stride
		stride *= t.Dims[k]
	}
	return off
}

// At returns the value at the multi-index idx.
func (t *Dense) At(idx ...int) float64 { return t.Data[t.Offset(idx)] }

// Set stores v at the multi-index idx.
func (t *Dense) Set(v float64, idx ...int) { t.Data[t.Offset(idx)] = v }

// Clone returns a deep copy of t.
func (t *Dense) Clone() *Dense {
	out := NewDense(t.Dims...)
	copy(out.Data, t.Data)
	return out
}

// Norm returns the Frobenius norm ‖t‖.
func (t *Dense) Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product ⟨t, u⟩. Shapes must match.
func (t *Dense) Dot(u *Dense) float64 {
	if !sameDims(t.Dims, u.Dims) {
		panic(fmt.Sprintf("tensor: Dot of %v and %v", t.Dims, u.Dims))
	}
	var s float64
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// AddInPlace adds u to t element-wise. Shapes must match.
func (t *Dense) AddInPlace(u *Dense) {
	if !sameDims(t.Dims, u.Dims) {
		panic(fmt.Sprintf("tensor: AddInPlace of %v and %v", t.Dims, u.Dims))
	}
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts u from t element-wise. Shapes must match.
func (t *Dense) SubInPlace(u *Dense) {
	if !sameDims(t.Dims, u.Dims) {
		panic(fmt.Sprintf("tensor: SubInPlace of %v and %v", t.Dims, u.Dims))
	}
	for i, v := range u.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every cell by s.
func (t *Dense) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// NNZ returns the number of cells with |value| > 0.
func (t *Dense) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// EqualApprox reports whether t and u share dims and differ by at most tol
// per cell.
func (t *Dense) EqualApprox(u *Dense, tol float64) bool {
	if !sameDims(t.Dims, u.Dims) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-u.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Fill applies f to every multi-index, storing the result. The index slice
// passed to f is reused between calls and must not be retained.
func (t *Dense) Fill(f func(idx []int) float64) {
	idx := make([]int, len(t.Dims))
	for off := range t.Data {
		t.Data[off] = f(idx)
		incIndex(idx, t.Dims)
	}
}

// incIndex advances a Fortran-order multi-index (mode 0 fastest).
func incIndex(idx, dims []int) {
	for k := 0; k < len(dims); k++ {
		idx[k]++
		if idx[k] < dims[k] {
			return
		}
		idx[k] = 0
	}
}

// RandomDense returns a tensor with uniform [0,1) entries.
func RandomDense(rng *rand.Rand, dims ...int) *Dense {
	t := NewDense(dims...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

// SubTensor copies the block starting at from (inclusive) with the given
// size along each mode into a new dense tensor.
func (t *Dense) SubTensor(from, size []int) *Dense {
	if len(from) != len(t.Dims) || len(size) != len(t.Dims) {
		panic("tensor: SubTensor: index arity mismatch")
	}
	out := NewDense(size...)
	CopyRegion(out, make([]int, len(size)), t, from, size)
	return out
}

// CopyRegion copies the size-shaped region of src starting at srcFrom
// into dst starting at dstFrom, without intermediate allocation. It is
// the re-tiling primitive: assembling a grid block from file tiles (or
// vice versa) is a sequence of region copies.
func CopyRegion(dst *Dense, dstFrom []int, src *Dense, srcFrom, size []int) {
	if len(dstFrom) != len(dst.Dims) || len(srcFrom) != len(src.Dims) ||
		len(size) != len(dst.Dims) || len(dst.Dims) != len(src.Dims) {
		panic("tensor: CopyRegion: index arity mismatch")
	}
	for k := range size {
		if size[k] < 0 || srcFrom[k] < 0 || srcFrom[k]+size[k] > src.Dims[k] ||
			dstFrom[k] < 0 || dstFrom[k]+size[k] > dst.Dims[k] {
			panic(fmt.Sprintf("tensor: CopyRegion dstFrom=%v srcFrom=%v size=%v of %v ← %v",
				dstFrom, srcFrom, size, dst.Dims, src.Dims))
		}
	}
	if len(size) == 0 {
		copy(dst.Data, src.Data) // 0-mode scalar tensors
		return
	}
	srcStrides := src.Strides()
	dstStrides := dst.Strides()
	// Copy contiguous mode-0 runs of length size[0].
	run := size[0]
	if run == 0 {
		return
	}
	outer := 1
	for _, s := range size[1:] {
		outer *= s
	}
	idx := make([]int, len(size)-1) // indices over modes 1..N-1
	for c := 0; c < outer; c++ {
		so := srcFrom[0] * srcStrides[0]
		do := dstFrom[0] * dstStrides[0]
		for k, i := range idx {
			so += (srcFrom[k+1] + i) * srcStrides[k+1]
			do += (dstFrom[k+1] + i) * dstStrides[k+1]
		}
		copy(dst.Data[do:do+run], src.Data[so:so+run])
		incIndex(idx, size[1:])
	}
}

// SetSubTensor copies block into t starting at from.
func (t *Dense) SetSubTensor(block *Dense, from []int) {
	CopyRegion(t, from, block, make([]int, len(block.Dims)), block.Dims)
}

// Unfold returns the mode-n unfolding X_(n): an I_n × (Π_{k≠n} I_k) matrix
// where column index j = Σ_{k≠n} i_k · J_k with J_k = Π_{m<k, m≠n} I_m
// (lower modes vary fastest), matching the Kolda & Bader convention.
func (t *Dense) Unfold(n int) *mat.Matrix {
	if n < 0 || n >= len(t.Dims) {
		panic(fmt.Sprintf("tensor: Unfold(%d) of %d-mode tensor", n, len(t.Dims)))
	}
	rows := t.Dims[n]
	cols := 1
	for k, d := range t.Dims {
		if k != n {
			cols *= d
		}
	}
	out := mat.New(rows, cols)
	idx := make([]int, len(t.Dims))
	// Column strides J_k for k != n.
	colStride := make([]int, len(t.Dims))
	acc := 1
	for k, d := range t.Dims {
		if k == n {
			continue
		}
		colStride[k] = acc
		acc *= d
	}
	for off, v := range t.Data {
		col := 0
		for k, i := range idx {
			if k != n {
				col += i * colStride[k]
			}
		}
		out.Set(idx[n], col, v)
		_ = off
		incIndex(idx, t.Dims)
	}
	return out
}

// Fold is the inverse of Unfold: it rebuilds a dense tensor with the given
// dims from its mode-n unfolding.
func Fold(m *mat.Matrix, n int, dims []int) *Dense {
	t := NewDense(dims...)
	colStride := make([]int, len(dims))
	acc := 1
	for k, d := range dims {
		if k == n {
			continue
		}
		colStride[k] = acc
		acc *= d
	}
	if m.Rows != dims[n] || m.Cols != acc {
		panic(fmt.Sprintf("tensor: Fold: matrix %d×%d does not match dims %v mode %d", m.Rows, m.Cols, dims, n))
	}
	idx := make([]int, len(dims))
	for off := range t.Data {
		col := 0
		for k, i := range idx {
			if k != n {
				col += i * colStride[k]
			}
		}
		t.Data[off] = m.At(idx[n], col)
		incIndex(idx, dims)
	}
	return t
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// String describes the tensor by shape and nnz.
func (t *Dense) String() string {
	return fmt.Sprintf("Dense%v(nnz=%d)", t.Dims, t.NNZ())
}

// Package grid implements the block-partitioning substrate of 2PCP: the
// pattern K that cuts an N-mode tensor into a grid of sub-tensors, index
// arithmetic between block vectors and linear block ids, and slab
// enumeration (all blocks sharing one mode partition), which drives both
// phases of the decomposition.
package grid

import (
	"fmt"
)

// Pattern describes how an N-mode tensor of the given Dims is partitioned:
// mode i is split into K[i] near-equal ranges. When K[i] does not divide
// Dims[i], the first Dims[i] mod K[i] partitions are one element longer,
// mirroring the usual chunked-array convention.
type Pattern struct {
	Dims []int // tensor mode sizes I_1..I_N
	K    []int // partitions per mode K_1..K_N
}

// New validates and builds a Pattern. Every K[i] must be in [1, Dims[i]].
func New(dims, k []int) (*Pattern, error) {
	if len(dims) != len(k) {
		return nil, fmt.Errorf("grid: %d dims but %d partition counts", len(dims), len(k))
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("grid: empty pattern")
	}
	for i := range dims {
		if dims[i] <= 0 {
			return nil, fmt.Errorf("grid: mode %d has size %d", i, dims[i])
		}
		if k[i] <= 0 || k[i] > dims[i] {
			return nil, fmt.Errorf("grid: mode %d: %d partitions of size-%d mode", i, k[i], dims[i])
		}
	}
	return &Pattern{
		Dims: append([]int(nil), dims...),
		K:    append([]int(nil), k...),
	}, nil
}

// MustNew is New, panicking on error; for tests and literals.
func MustNew(dims, k []int) *Pattern {
	p, err := New(dims, k)
	if err != nil {
		panic(err)
	}
	return p
}

// NModes returns the number of tensor modes.
func (p *Pattern) NModes() int { return len(p.Dims) }

// NumBlocks returns |K| = Π K_i, the total number of blocks.
func (p *Pattern) NumBlocks() int {
	n := 1
	for _, k := range p.K {
		n *= k
	}
	return n
}

// SumK returns Σ K_i, the paper's virtual-iteration length (Definition 3)
// and the number of distinct mode-partition data units.
func (p *Pattern) SumK() int {
	s := 0
	for _, k := range p.K {
		s += k
	}
	return s
}

// ModeRange returns the half-open row range [from, from+size) that
// partition ki covers along mode i.
func (p *Pattern) ModeRange(i, ki int) (from, size int) {
	if i < 0 || i >= len(p.Dims) || ki < 0 || ki >= p.K[i] {
		panic(fmt.Sprintf("grid: ModeRange(%d, %d) of pattern %v/%v", i, ki, p.Dims, p.K))
	}
	base := p.Dims[i] / p.K[i]
	rem := p.Dims[i] % p.K[i]
	if ki < rem {
		return ki * (base + 1), base + 1
	}
	return rem*(base+1) + (ki-rem)*base, base
}

// Block returns the origin and size of the block at position vec.
func (p *Pattern) Block(vec []int) (from, size []int) {
	if len(vec) != len(p.Dims) {
		panic(fmt.Sprintf("grid: Block(%v) of %d-mode pattern", vec, len(p.Dims)))
	}
	from = make([]int, len(vec))
	size = make([]int, len(vec))
	for i, ki := range vec {
		from[i], size[i] = p.ModeRange(i, ki)
	}
	return from, size
}

// Linear converts a block position vector to a linear block id in
// Fortran order (mode 0 fastest), consistent with tensor.Dense layout.
func (p *Pattern) Linear(vec []int) int {
	if len(vec) != len(p.K) {
		panic(fmt.Sprintf("grid: Linear(%v) of %d-mode pattern", vec, len(p.K)))
	}
	id, stride := 0, 1
	for i, ki := range vec {
		if ki < 0 || ki >= p.K[i] {
			panic(fmt.Sprintf("grid: Linear(%v) out of range %v", vec, p.K))
		}
		id += ki * stride
		stride *= p.K[i]
	}
	return id
}

// Unlinear converts a linear block id back to a position vector, filling
// dst if non-nil.
func (p *Pattern) Unlinear(id int, dst []int) []int {
	if id < 0 || id >= p.NumBlocks() {
		panic(fmt.Sprintf("grid: Unlinear(%d) of %d blocks", id, p.NumBlocks()))
	}
	if dst == nil {
		dst = make([]int, len(p.K))
	}
	for i, k := range p.K {
		dst[i] = id % k
		id /= k
	}
	return dst
}

// Positions returns every block position vector in linear (Fortran) order.
func (p *Pattern) Positions() [][]int {
	out := make([][]int, p.NumBlocks())
	for id := range out {
		out[id] = p.Unlinear(id, nil)
	}
	return out
}

// SlabSize returns the number of blocks in the mode-i slab
// [*,..,*,ki,*,..,*], i.e. Π_{j≠i} K_j (the same for every ki).
func (p *Pattern) SlabSize(i int) int {
	n := 1
	for j, k := range p.K {
		if j != i {
			n *= k
		}
	}
	return n
}

// Slab returns the linear ids of all blocks whose mode-i coordinate is ki.
func (p *Pattern) Slab(i, ki int) []int {
	if i < 0 || i >= len(p.K) || ki < 0 || ki >= p.K[i] {
		panic(fmt.Sprintf("grid: Slab(%d, %d) of pattern %v", i, ki, p.K))
	}
	out := make([]int, 0, p.SlabSize(i))
	vec := make([]int, len(p.K))
	vec[i] = ki
	for {
		out = append(out, p.Linear(vec))
		// Advance all coordinates except i.
		j := 0
		for ; j < len(p.K); j++ {
			if j == i {
				continue
			}
			vec[j]++
			if vec[j] < p.K[j] {
				break
			}
			vec[j] = 0
		}
		if j == len(p.K) {
			return out
		}
	}
}

// Cover returns the half-open partition index range [lo, hi) of mode i
// whose ranges intersect the row interval [from, from+size). It is the
// re-tiling primitive: a block of one pattern maps to the tiles
// Cover selects in another pattern over the same dims.
func (p *Pattern) Cover(i, from, size int) (lo, hi int) {
	if i < 0 || i >= len(p.Dims) || from < 0 || size <= 0 || from+size > p.Dims[i] {
		panic(fmt.Sprintf("grid: Cover(%d, %d, %d) of pattern %v", i, from, size, p.Dims))
	}
	lo, hi = -1, -1
	for ki := 0; ki < p.K[i]; ki++ {
		f, s := p.ModeRange(i, ki)
		if f+s <= from {
			continue
		}
		if f >= from+size {
			break
		}
		if lo < 0 {
			lo = ki
		}
		hi = ki + 1
	}
	return lo, hi
}

// Equal reports whether two patterns are identical.
func (p *Pattern) Equal(q *Pattern) bool {
	if len(p.Dims) != len(q.Dims) {
		return false
	}
	for i := range p.Dims {
		if p.Dims[i] != q.Dims[i] || p.K[i] != q.K[i] {
			return false
		}
	}
	return true
}

// String formats the pattern as "dims/K".
func (p *Pattern) String() string {
	return fmt.Sprintf("grid%v/%v", p.Dims, p.K)
}

// UniformCube is a convenience constructor for the paper's experiments: an
// N-mode cube of side dim partitioned k ways per mode.
func UniformCube(nModes, dim, k int) *Pattern {
	dims := make([]int, nModes)
	ks := make([]int, nModes)
	for i := range dims {
		dims[i] = dim
		ks[i] = k
	}
	return MustNew(dims, ks)
}

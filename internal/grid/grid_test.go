package grid

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		dims, k []int
	}{
		{[]int{4, 4}, []int{2}},     // arity mismatch
		{nil, nil},                  // empty
		{[]int{0, 4}, []int{1, 2}},  // zero dim
		{[]int{4, 4}, []int{0, 2}},  // zero partitions
		{[]int{4, 4}, []int{5, 2}},  // more partitions than rows
		{[]int{4, 4}, []int{-1, 2}}, // negative
	}
	for i, c := range cases {
		if _, err := New(c.dims, c.k); err == nil {
			t.Fatalf("case %d: New(%v, %v) should fail", i, c.dims, c.k)
		}
	}
	if _, err := New([]int{4, 6, 8}, []int{2, 3, 4}); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
}

func TestNewCopiesInputs(t *testing.T) {
	dims := []int{4, 4}
	k := []int{2, 2}
	p := MustNew(dims, k)
	dims[0] = 99
	k[0] = 99
	if p.Dims[0] != 4 || p.K[0] != 2 {
		t.Fatal("Pattern aliases caller slices")
	}
}

func TestCounts(t *testing.T) {
	p := MustNew([]int{8, 8, 8}, []int{2, 4, 8})
	if p.NumBlocks() != 64 {
		t.Fatalf("NumBlocks = %d", p.NumBlocks())
	}
	if p.SumK() != 14 {
		t.Fatalf("SumK = %d", p.SumK())
	}
	if p.NModes() != 3 {
		t.Fatalf("NModes = %d", p.NModes())
	}
}

func TestModeRangeEvenSplit(t *testing.T) {
	p := MustNew([]int{8}, []int{4})
	for ki := 0; ki < 4; ki++ {
		from, size := p.ModeRange(0, ki)
		if from != ki*2 || size != 2 {
			t.Fatalf("ModeRange(0,%d) = (%d,%d)", ki, from, size)
		}
	}
}

func TestModeRangeRemainder(t *testing.T) {
	// 10 rows into 4 partitions: 3,3,2,2.
	p := MustNew([]int{10}, []int{4})
	wantFrom := []int{0, 3, 6, 8}
	wantSize := []int{3, 3, 2, 2}
	total := 0
	for ki := 0; ki < 4; ki++ {
		from, size := p.ModeRange(0, ki)
		if from != wantFrom[ki] || size != wantSize[ki] {
			t.Fatalf("ModeRange(0,%d) = (%d,%d), want (%d,%d)", ki, from, size, wantFrom[ki], wantSize[ki])
		}
		total += size
	}
	if total != 10 {
		t.Fatalf("partition sizes sum to %d", total)
	}
}

func TestModeRangeCoversExactly(t *testing.T) {
	f := func(dim8, k8 uint8) bool {
		dim := int(dim8%30) + 1
		k := int(k8)%dim + 1
		p := MustNew([]int{dim}, []int{k})
		next := 0
		for ki := 0; ki < k; ki++ {
			from, size := p.ModeRange(0, ki)
			if from != next || size <= 0 {
				return false
			}
			next = from + size
		}
		return next == dim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlock(t *testing.T) {
	p := MustNew([]int{4, 6}, []int{2, 3})
	from, size := p.Block([]int{1, 2})
	if from[0] != 2 || from[1] != 4 || size[0] != 2 || size[1] != 2 {
		t.Fatalf("Block = %v %v", from, size)
	}
}

func TestLinearUnlinearRoundTrip(t *testing.T) {
	p := MustNew([]int{8, 9, 10}, []int{2, 3, 5})
	seen := map[int]bool{}
	vec := make([]int, 3)
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 5; c++ {
				vec[0], vec[1], vec[2] = a, b, c
				id := p.Linear(vec)
				if id < 0 || id >= 30 || seen[id] {
					t.Fatalf("Linear(%v) = %d (dup or out of range)", vec, id)
				}
				seen[id] = true
				back := p.Unlinear(id, nil)
				if back[0] != a || back[1] != b || back[2] != c {
					t.Fatalf("Unlinear(%d) = %v, want %v", id, back, vec)
				}
			}
		}
	}
}

func TestLinearFortranOrder(t *testing.T) {
	p := MustNew([]int{4, 4}, []int{2, 2})
	// Mode 0 fastest: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3
	if p.Linear([]int{1, 0}) != 1 || p.Linear([]int{0, 1}) != 2 {
		t.Fatal("Linear is not Fortran-ordered")
	}
}

func TestPositions(t *testing.T) {
	p := MustNew([]int{4, 4}, []int{2, 2})
	pos := p.Positions()
	if len(pos) != 4 {
		t.Fatalf("len(Positions) = %d", len(pos))
	}
	for id, vec := range pos {
		if p.Linear(vec) != id {
			t.Fatalf("Positions[%d] = %v", id, vec)
		}
	}
}

func TestSlab(t *testing.T) {
	p := MustNew([]int{4, 4, 4}, []int{2, 2, 2})
	slab := p.Slab(1, 1) // all blocks with k_1 = 1
	if len(slab) != 4 || p.SlabSize(1) != 4 {
		t.Fatalf("slab size %d", len(slab))
	}
	vec := make([]int, 3)
	for _, id := range slab {
		p.Unlinear(id, vec)
		if vec[1] != 1 {
			t.Fatalf("block %v in slab(1,1)", vec)
		}
	}
}

func TestSlabsPartitionAllBlocks(t *testing.T) {
	p := MustNew([]int{6, 8, 4}, []int{3, 2, 2})
	for i := 0; i < 3; i++ {
		seen := map[int]bool{}
		for ki := 0; ki < p.K[i]; ki++ {
			for _, id := range p.Slab(i, ki) {
				if seen[id] {
					t.Fatalf("block %d in two slabs of mode %d", id, i)
				}
				seen[id] = true
			}
		}
		if len(seen) != p.NumBlocks() {
			t.Fatalf("mode %d slabs cover %d of %d blocks", i, len(seen), p.NumBlocks())
		}
	}
}

func TestEqual(t *testing.T) {
	a := MustNew([]int{4, 4}, []int{2, 2})
	b := MustNew([]int{4, 4}, []int{2, 2})
	c := MustNew([]int{4, 4}, []int{2, 1})
	d := MustNew([]int{4}, []int{2})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal wrong")
	}
}

func TestUniformCube(t *testing.T) {
	p := UniformCube(3, 100, 4)
	if p.NumBlocks() != 64 || p.Dims[2] != 100 || p.K[0] != 4 {
		t.Fatalf("UniformCube = %v", p)
	}
	if s := p.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestPanics(t *testing.T) {
	p := MustNew([]int{4, 4}, []int{2, 2})
	for name, f := range map[string]func(){
		"ModeRange": func() { p.ModeRange(0, 2) },
		"Linear":    func() { p.Linear([]int{2, 0}) },
		"Unlinear":  func() { p.Unlinear(4, nil) },
		"Slab":      func() { p.Slab(2, 0) },
		"Block":     func() { p.Block([]int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

package tfile

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
)

// Reader gives random access to the tiles of a .tptl file. All header
// and index validation happens in Open/NewReader, before any
// payload-sized allocation. ReadTile is safe for concurrent use: every
// call reads through the shared io.ReaderAt with its own section
// reader, so Phase-1 workers can pull tiles in parallel.
type Reader struct {
	ra      io.ReaderAt
	file    *os.File // non-nil when opened via Open (owns Close)
	size    int64
	pattern *grid.Pattern
	flags   uint32
	index   []indexEntry
}

// Open opens the named .tptl file for tile access.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tfile: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tfile: %w", err)
	}
	r, err := NewReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.file = f
	return r, nil
}

// NewReader parses the header and index of a .tptl stream of the given
// total size. The caller keeps ownership of ra unless the Reader came
// from Open.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	var fixed [16]byte
	if _, err := ra.ReadAt(fixed[:], 0); err != nil {
		return nil, fmt.Errorf("tfile: read header: %w", err)
	}
	if string(fixed[:4]) != Magic {
		return nil, fmt.Errorf("tfile: bad magic %q, want %q", fixed[:4], Magic)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:]); v != Version {
		return nil, fmt.Errorf("tfile: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(fixed[8:])
	if flags&^uint32(flagsKnown) != 0 {
		return nil, fmt.Errorf("tfile: unknown flags %#x", flags&^uint32(flagsKnown))
	}
	n := binary.LittleEndian.Uint32(fixed[12:])
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("tfile: implausible mode count %d", n)
	}
	rest := make([]byte, 12*int(n))
	if _, err := ra.ReadAt(rest, 16); err != nil {
		return nil, fmt.Errorf("tfile: read dims: %w", err)
	}
	dims := make([]int, n)
	for i := range dims {
		d := binary.LittleEndian.Uint64(rest[8*i:])
		if d == 0 || d > MaxElems {
			return nil, fmt.Errorf("tfile: mode %d has implausible size %d", i, d)
		}
		dims[i] = int(d)
	}
	if _, err := checkDims(dims); err != nil {
		return nil, err
	}
	tiles := make([]int, n)
	for i := range tiles {
		tiles[i] = int(binary.LittleEndian.Uint32(rest[8*int(n)+4*i:]))
	}
	p, err := grid.New(dims, tiles)
	if err != nil {
		return nil, fmt.Errorf("tfile: bad tiling: %w", err)
	}
	nt := p.NumBlocks()
	idxOff := headerSize(int(n))
	idxLen := int64(nt) * indexEntrySize
	if idxOff+idxLen > size {
		return nil, fmt.Errorf("tfile: file size %d too small for %d-tile index", size, nt)
	}
	raw := make([]byte, idxLen)
	if _, err := ra.ReadAt(raw, idxOff); err != nil {
		return nil, fmt.Errorf("tfile: read index: %w", err)
	}
	r := &Reader{ra: ra, size: size, pattern: p, flags: flags, index: make([]indexEntry, nt)}
	gz := flags&FlagGzip != 0
	vec := make([]int, n)
	for i := range r.index {
		off := i * indexEntrySize
		e := indexEntry{
			Offset: binary.LittleEndian.Uint64(raw[off:]),
			Size:   binary.LittleEndian.Uint64(raw[off+8:]),
			CRC:    binary.LittleEndian.Uint32(raw[off+16:]),
		}
		_, tsz := p.Block(p.Unlinear(i, vec))
		elems := 1
		for _, s := range tsz {
			elems *= s
		}
		if e.Offset < uint64(idxOff+idxLen) || e.Offset > uint64(size) ||
			e.Size > uint64(size) || int64(e.Offset) > size-int64(e.Size) {
			return nil, fmt.Errorf("tfile: tile %d payload [%d,+%d) outside file of %d bytes",
				i, e.Offset, e.Size, size)
		}
		if !sanePayload(int64(e.Size), elems, gz) {
			return nil, fmt.Errorf("tfile: tile %d stored size %d implausible for %d cells",
				i, e.Size, elems)
		}
		r.index[i] = e
	}
	return r, nil
}

// Dims returns the tensor mode sizes.
func (r *Reader) Dims() []int { return append([]int(nil), r.pattern.Dims...) }

// Tiling returns the file's tile grid.
func (r *Reader) Tiling() *grid.Pattern { return r.pattern }

// NumTiles returns the tile count.
func (r *Reader) NumTiles() int { return len(r.index) }

// Compressed reports whether tile payloads are gzip-compressed.
func (r *Reader) Compressed() bool { return r.flags&FlagGzip != 0 }

// ReadTile reads the tile at grid position vec into a fresh dense
// tensor of the tile's extents, verifying its CRC when present.
func (r *Reader) ReadTile(vec []int) (*tensor.Dense, error) {
	id := r.pattern.Linear(vec)
	e := r.index[id]
	_, size := r.pattern.Block(vec)
	out := tensor.NewDense(size...)

	var src io.Reader = io.NewSectionReader(r.ra, int64(e.Offset), int64(e.Size))
	var crc *crcReader
	if r.flags&FlagCRC != 0 {
		crc = &crcReader{r: src, h: crc32.NewIEEE()}
		src = crc
	}
	if r.flags&FlagGzip != 0 {
		zr, err := gzip.NewReader(src)
		if err != nil {
			return nil, fmt.Errorf("tfile: tile %v: gzip: %w", vec, err)
		}
		if err := readFloats(zr, out.Data); err != nil {
			return nil, fmt.Errorf("tfile: tile %v: %w", vec, err)
		}
		// Drain to EOF so the gzip trailer (its own CRC32/ISIZE) is read
		// and verified even when the file carries no per-tile CRC — and
		// reject streams that inflate past the tile's declared cells.
		if n, err := io.Copy(io.Discard, zr); err != nil {
			return nil, fmt.Errorf("tfile: tile %v: gzip: %w", vec, err)
		} else if n > 0 {
			return nil, fmt.Errorf("tfile: tile %v: %d bytes beyond the declared %d cells",
				vec, n, len(out.Data))
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("tfile: tile %v: gzip: %w", vec, err)
		}
	} else if err := readFloats(src, out.Data); err != nil {
		return nil, fmt.Errorf("tfile: tile %v: %w", vec, err)
	}
	if crc != nil {
		// Drain any trailing stored bytes (gzip framing the decoder did
		// not consume) so the CRC covers the whole payload.
		if _, err := io.Copy(io.Discard, crc); err != nil {
			return nil, fmt.Errorf("tfile: tile %v: %w", vec, err)
		}
		if got := crc.h.Sum32(); got != e.CRC {
			return nil, fmt.Errorf("tfile: tile %v CRC mismatch: stored %#x, computed %#x",
				vec, e.CRC, got)
		}
	}
	return out, nil
}

// ReadTileID is ReadTile addressed by Fortran-linear tile id.
func (r *Reader) ReadTileID(id int) (*tensor.Dense, error) {
	return r.ReadTile(r.pattern.Unlinear(id, nil))
}

// Close releases the underlying file when the Reader owns it.
func (r *Reader) Close() error {
	if r.file != nil {
		return r.file.Close()
	}
	return nil
}

// readFloats fills dst from little-endian float64s, through a bounded
// chunk buffer.
func readFloats(r io.Reader, dst []float64) error {
	buf := make([]byte, 64<<10)
	per := len(buf) / 8
	for len(dst) > 0 {
		n := len(dst)
		if n > per {
			n = per
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return fmt.Errorf("read cells: %w", err)
		}
		for i := range dst[:n] {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		dst = dst[n:]
	}
	return nil
}

type crcReader struct {
	r io.Reader
	h interface {
		io.Writer
		Sum32() uint32
	}
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

package tfile

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
)

// WriterOption configures NewWriter / Create.
type WriterOption func(*Writer)

// WithGzip stores tile payloads gzip-compressed.
func WithGzip() WriterOption { return func(w *Writer) { w.flags |= FlagGzip } }

// WithoutCRC drops the per-tile CRC32 checksums (on by default).
func WithoutCRC() WriterOption { return func(w *Writer) { w.flags &^= FlagCRC } }

type indexEntry struct {
	Offset uint64
	Size   uint64
	CRC    uint32
	_      uint32 // reserved
}

// Writer streams a .tptl file. Tiles may arrive in any order, each
// exactly once; the index is back-patched on Close. Beyond the tile the
// caller passes to WriteTile, the writer holds only a small fixed
// encoding buffer, so tensors larger than memory can be written.
//
// A Writer is not safe for concurrent use.
type Writer struct {
	f       io.WriteSeeker
	file    *os.File // non-nil when opened via Create (owns Sync/Close)
	pattern *grid.Pattern
	flags   uint32
	index   []indexEntry
	done    []bool
	left    int
	off     int64 // next payload append offset
	buf     []byte
	err     error // sticky
}

// Create opens (creating or truncating) path and returns a Writer over
// it. dims are the tensor mode sizes and tiles the tiles-per-mode
// vector; both follow grid.New's validation rules.
func Create(path string, dims, tiles []int, opts ...WriterOption) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tfile: %w", err)
	}
	w, err := NewWriter(f, dims, tiles, opts...)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w.file = f
	return w, nil
}

// NewWriter starts a .tptl stream on f, writing the header and a
// zeroed index immediately. The caller keeps ownership of f unless the
// Writer came from Create.
func NewWriter(f io.WriteSeeker, dims, tiles []int, opts ...WriterOption) (*Writer, error) {
	if _, err := checkDims(dims); err != nil {
		return nil, err
	}
	p, err := grid.New(dims, tiles)
	if err != nil {
		return nil, fmt.Errorf("tfile: %w", err)
	}
	w := &Writer{
		f:       f,
		pattern: p,
		flags:   FlagCRC,
		index:   make([]indexEntry, p.NumBlocks()),
		done:    make([]bool, p.NumBlocks()),
		left:    p.NumBlocks(),
		buf:     make([]byte, 64<<10),
	}
	for _, o := range opts {
		o(w)
	}
	if err := w.writeHeader(); err != nil {
		return nil, err
	}
	w.off = headerSize(len(dims)) + int64(len(w.index))*indexEntrySize
	return w, nil
}

// Pattern returns the file tiling as a grid pattern.
func (w *Writer) Pattern() *grid.Pattern { return w.pattern }

func (w *Writer) writeHeader() error {
	n := len(w.pattern.Dims)
	hdr := make([]byte, headerSize(n))
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[8:], w.flags)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(n))
	for i, d := range w.pattern.Dims {
		binary.LittleEndian.PutUint64(hdr[16+8*i:], uint64(d))
	}
	for i, t := range w.pattern.K {
		binary.LittleEndian.PutUint32(hdr[16+8*n+4*i:], uint32(t))
	}
	if _, err := w.f.Write(hdr); err != nil {
		return fmt.Errorf("tfile: write header: %w", err)
	}
	// Reserve the index region (zeroed; back-patched on Close).
	zero := make([]byte, int64(len(w.index))*indexEntrySize)
	if _, err := w.f.Write(zero); err != nil {
		return fmt.Errorf("tfile: reserve index: %w", err)
	}
	return nil
}

// WriteTile appends the tile at grid position vec. t's dims must equal
// the tile extents the pattern assigns to vec, and each tile must be
// written exactly once.
func (w *Writer) WriteTile(vec []int, t *tensor.Dense) error {
	if w.err != nil {
		return w.err
	}
	id := w.pattern.Linear(vec)
	if w.done[id] {
		return fmt.Errorf("tfile: tile %v written twice", vec)
	}
	_, size := w.pattern.Block(vec)
	if len(t.Dims) != len(size) {
		return fmt.Errorf("tfile: tile %v has %d modes, want %d", vec, len(t.Dims), len(size))
	}
	for i := range size {
		if t.Dims[i] != size[i] {
			return fmt.Errorf("tfile: tile %v has dims %v, want %v", vec, t.Dims, size)
		}
	}
	stored, crc, err := w.encodePayload(t.Data)
	if err != nil {
		w.err = err
		return err
	}
	w.index[id] = indexEntry{Offset: uint64(w.off), Size: uint64(stored), CRC: crc}
	w.done[id] = true
	w.left--
	w.off += stored
	return nil
}

// encodePayload writes t's cells at the current append position and
// returns the stored byte count and CRC of the stored bytes.
func (w *Writer) encodePayload(data []float64) (int64, uint32, error) {
	cw := &countWriter{w: w.f}
	var sink io.Writer = cw
	var crc hash.Hash32
	if w.flags&FlagCRC != 0 {
		crc = crc32.NewIEEE()
		sink = io.MultiWriter(cw, crc)
	}
	var payload io.Writer = sink
	var zw *gzip.Writer
	if w.flags&FlagGzip != 0 {
		zw = gzip.NewWriter(sink)
		payload = zw
	}
	if err := writeFloats(payload, data, w.buf); err != nil {
		return 0, 0, fmt.Errorf("tfile: write tile: %w", err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return 0, 0, fmt.Errorf("tfile: gzip tile: %w", err)
		}
	}
	var sum uint32
	if crc != nil {
		sum = crc.Sum32()
	}
	return cw.n, sum, nil
}

// Close verifies every tile arrived, back-patches the index, syncs and
// (for Create-owned files) closes the underlying file.
func (w *Writer) Close() error {
	if w.err != nil {
		if w.file != nil {
			w.file.Close()
		}
		return w.err
	}
	if w.left > 0 {
		w.err = fmt.Errorf("tfile: Close with %d of %d tiles missing", w.left, len(w.index))
		if w.file != nil {
			w.file.Close()
		}
		return w.err
	}
	if _, err := w.f.Seek(headerSize(len(w.pattern.Dims)), io.SeekStart); err != nil {
		w.err = fmt.Errorf("tfile: seek index: %w", err)
		if w.file != nil {
			w.file.Close()
		}
		return w.err
	}
	idx := make([]byte, int64(len(w.index))*indexEntrySize)
	for i, e := range w.index {
		off := i * indexEntrySize
		binary.LittleEndian.PutUint64(idx[off:], e.Offset)
		binary.LittleEndian.PutUint64(idx[off+8:], e.Size)
		binary.LittleEndian.PutUint32(idx[off+16:], e.CRC)
	}
	if _, err := w.f.Write(idx); err != nil {
		w.err = fmt.Errorf("tfile: write index: %w", err)
		if w.file != nil {
			w.file.Close()
		}
		return w.err
	}
	w.err = fmt.Errorf("tfile: writer closed")
	if w.file != nil {
		if err := w.file.Sync(); err != nil {
			w.file.Close()
			return fmt.Errorf("tfile: sync: %w", err)
		}
		if err := w.file.Close(); err != nil {
			return fmt.Errorf("tfile: close: %w", err)
		}
	}
	return nil
}

// writeFloats streams data as little-endian float64 through buf-sized
// chunks, keeping memory bounded regardless of tile size.
func writeFloats(w io.Writer, data []float64, buf []byte) error {
	per := len(buf) / 8
	for len(data) > 0 {
		n := len(data)
		if n > per {
			n = per
		}
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

package tfile

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp/internal/tensor"
)

// FuzzTFileReader drives the .tptl header/index parser and the tile
// decoder with arbitrary bytes. Contract: NewReader/ReadTile may reject
// input with an error but must never panic, and every allocation they
// make before full validation is bounded by the input's actual size (the
// header and index checks in NewReader, sanePayload for tile payloads).
//
// The seed corpus holds valid files in all flag combinations plus the
// corrupt-header mutations from the reader regression tests
// (TestReaderRejectsCorruptHeaders / TestReaderDetectsPayloadCorruption).
func FuzzTFileReader(f *testing.F) {
	build := func(gz, crc bool) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.tptl")
		var opts []WriterOption
		if gz {
			opts = append(opts, WithGzip())
		}
		if !crc {
			opts = append(opts, WithoutCRC())
		}
		w, err := Create(path, []int{5, 4, 3}, []int{2, 2, 1}, opts...)
		if err != nil {
			f.Fatal(err)
		}
		x := tensor.RandomDense(rand.New(rand.NewSource(3)), 5, 4, 3)
		p := w.Pattern()
		for _, vec := range p.Positions() {
			from, size := p.Block(vec)
			if err := w.WriteTile(vec, x.SubTensor(from, size)); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	for _, v := range []struct{ gz, crc bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		valid := build(v.gz, v.crc)
		f.Add(valid)
		f.Add(valid[:len(valid)/2]) // truncated mid-index/payload
		// Flip the version, flags and a mid-file payload byte.
		for _, off := range []int{5, 8, len(valid) - 9} {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	// Header-only inputs: implausible mode count, zero dims, absurd tiling.
	hdr := []byte(Magic)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, 3)
	for i := 0; i < 3; i++ {
		hdr = binary.LittleEndian.AppendUint64(hdr, 1<<40)
	}
	for i := 0; i < 3; i++ {
		hdr = binary.LittleEndian.AppendUint32(hdr, 1)
	}
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "in.tptl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			return
		}
		defer r.Close()
		// A file that parses must serve (or cleanly reject) every tile.
		for id := 0; id < r.NumTiles(); id++ {
			if tile, err := r.ReadTileID(id); err == nil && tile == nil {
				t.Fatalf("tile %d: nil tile without error", id)
			}
		}
	})
}

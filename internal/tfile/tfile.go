// Package tfile implements .tptl, the tiled on-disk tensor format that
// makes Phase 1 out-of-core: a dense tensor is stored as grid-aligned
// tiles so any block can be read without materializing the whole tensor,
// and tensors larger than memory can be written tile by tile.
//
// # File format (.tptl, little-endian)
//
//	offset            field
//	0                 magic "TPTL" (4 bytes)
//	4                 uint32 version (currently 1)
//	8                 uint32 flags (bit 0: tiles gzip-compressed,
//	                                bit 1: per-tile CRC32 present)
//	12                uint32 nmodes N
//	16                N × uint64 dims I_1..I_N
//	16+8N             N × uint32 tiles-per-mode T_1..T_N
//	16+12N            index: Π T_i entries of
//	                    uint64 payload offset (from file start)
//	                    uint64 stored payload size in bytes
//	                    uint32 CRC32 (IEEE) of the stored payload
//	                          (0 when the CRC flag is clear)
//	                    uint32 reserved (0)
//	...               tile payloads, in whatever order they were written
//
// Mode i is split into T_i near-equal ranges following the grid.Pattern
// convention (the first dims[i] mod T_i tiles are one element longer), so
// the file tiling IS a grid.Pattern and all index arithmetic is shared.
// Index entries are ordered by Fortran-linear tile id (mode 0 fastest),
// matching grid.Pattern.Linear. A tile payload is the tile's cells as
// float64 in Fortran order within the tile, optionally gzip-compressed;
// the CRC covers the stored (on-disk) bytes so corruption is detected
// before decompression.
//
// The Writer accepts tiles in any order and back-patches the index on
// Close, holding only O(64 KiB) of buffer beyond the caller's current
// tile — tensors far larger than memory can be produced by synthesizing
// one tile at a time. The Reader is safe for concurrent use (it reads
// through an io.ReaderAt), which lets Phase-1 workers pull blocks in
// parallel.
package tfile

import (
	"fmt"
	"math"
)

// Magic is the 4-byte signature that opens every .tptl file.
const Magic = "TPTL"

// Version is the current format version.
const Version = 1

// Format flags (header "flags" field).
const (
	// FlagGzip marks tile payloads as gzip-compressed.
	FlagGzip = 1 << 0
	// FlagCRC marks the index as carrying per-tile CRC32 checksums.
	FlagCRC = 1 << 1

	flagsKnown = FlagGzip | FlagCRC
)

// MaxElems bounds the total cell count a .tptl header may declare
// (2^42 cells = 32 TiB of float64 payload). Headers above it are
// rejected before any allocation, like the .tpdn hardening in
// internal/tensor.
const MaxElems = 1 << 42

// indexEntrySize is the on-disk size of one index record.
const indexEntrySize = 8 + 8 + 4 + 4

// headerSize returns the byte length of the fixed header plus dims and
// tiling arrays (everything before the index) for an n-mode tensor.
func headerSize(n int) int64 { return 16 + 12*int64(n) }

// checkDims validates mode sizes against sane limits and returns the
// total element count. It is shared by the Writer and the Reader.
func checkDims(dims []int) (int64, error) {
	if len(dims) == 0 || len(dims) > 1<<16 {
		return 0, fmt.Errorf("tfile: implausible mode count %d", len(dims))
	}
	total := int64(1)
	for i, d := range dims {
		if d <= 0 || int64(d) > MaxElems {
			return 0, fmt.Errorf("tfile: mode %d has implausible size %d", i, d)
		}
		if total > MaxElems/int64(d) {
			return 0, fmt.Errorf("tfile: dims %v exceed %d total cells", dims, int64(MaxElems))
		}
		total *= int64(d)
	}
	return total, nil
}

// AutoTiles picks a tiling for dims where every tile holds at most
// maxTileElems cells (default 1<<22 ≈ 32 MiB of float64 when
// maxTileElems <= 0): modes are split as evenly as possible, largest
// mode first, until the bound holds. The result is always a valid
// tiles-per-mode vector for grid.New.
func AutoTiles(dims []int, maxTileElems int) []int {
	if maxTileElems <= 0 {
		maxTileElems = 1 << 22
	}
	tiles := make([]int, len(dims))
	for i := range tiles {
		tiles[i] = 1
	}
	for {
		// Current worst-case tile cell count (ceil division per mode).
		elems := int64(1)
		for i, d := range dims {
			elems *= int64((d + tiles[i] - 1) / tiles[i])
		}
		if elems <= int64(maxTileElems) {
			return tiles
		}
		// Split the mode with the largest per-tile extent further.
		best, bestExtent := -1, 1
		for i, d := range dims {
			extent := (d + tiles[i] - 1) / tiles[i]
			if extent > bestExtent && tiles[i] < d {
				best, bestExtent = i, extent
			}
		}
		if best < 0 {
			return tiles // every mode fully split; nothing more to do
		}
		tiles[best]++
	}
}

// float64Bytes is how many payload bytes n cells occupy uncompressed.
func float64Bytes(n int) int64 { return int64(n) * 8 }

// sanePayload reports whether a stored payload size is plausible for a
// tile of rawElems cells: uncompressed payloads must match exactly;
// compressed ones must not exceed the raw size by more than the gzip
// framing overhead allows.
func sanePayload(stored int64, rawElems int, gzipped bool) bool {
	raw := float64Bytes(rawElems)
	if !gzipped {
		return stored == raw
	}
	// gzip can expand incompressible data slightly; 5 bytes per 32 KiB
	// block plus 18 bytes of framing is the worst case.
	maxSize := raw + raw/(32<<10)*5 + 64
	return stored > 0 && stored <= maxSize && stored <= math.MaxInt64-64
}

package tfile

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
)

// writeTensor tiles x per the pattern and writes every tile, in the
// given order of linear tile ids.
func writeTensor(t *testing.T, path string, x *tensor.Dense, tiles []int, order []int, opts ...WriterOption) {
	t.Helper()
	w, err := Create(path, x.Dims, tiles, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Pattern()
	if order == nil {
		order = make([]int, p.NumBlocks())
		for i := range order {
			order[i] = i
		}
	}
	for _, id := range order {
		vec := p.Unlinear(id, nil)
		from, size := p.Block(vec)
		if err := w.WriteTile(vec, x.SubTensor(from, size)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// readBack reassembles the full tensor from a .tptl file.
func readBack(t *testing.T, path string) *tensor.Dense {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := tensor.NewDense(r.Dims()...)
	p := r.Tiling()
	for _, vec := range p.Positions() {
		tile, err := r.ReadTile(vec)
		if err != nil {
			t.Fatal(err)
		}
		from, _ := p.Block(vec)
		out.SetSubTensor(tile, from)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 9, 7, 5)
	for _, tc := range []struct {
		name  string
		tiles []int
		opts  []WriterOption
	}{
		{"single-tile", []int{1, 1, 1}, nil},
		{"even", []int{3, 1, 5}, nil},
		{"ragged", []int{2, 3, 2}, nil},
		{"gzip", []int{2, 2, 2}, []WriterOption{WithGzip()}},
		{"no-crc", []int{2, 2, 2}, []WriterOption{WithoutCRC()}},
		{"gzip-no-crc", []int{2, 2, 2}, []WriterOption{WithGzip(), WithoutCRC()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "x.tptl")
			writeTensor(t, path, x, tc.tiles, nil, tc.opts...)
			got := readBack(t, path)
			if !got.EqualApprox(x, 0) {
				t.Fatal("round trip changed cell values")
			}
		})
	}
}

func TestWriterAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	order := rng.Perm(p.NumBlocks())
	path := filepath.Join(t.TempDir(), "x.tptl")
	writeTensor(t, path, x, []int{2, 2, 2}, order)
	if got := readBack(t, path); !got.EqualApprox(x, 0) {
		t.Fatal("out-of-order write corrupted the tensor")
	}
}

func TestWriterRejectsDuplicateWrongAndMissingTiles(t *testing.T) {
	dir := t.TempDir()
	x := tensor.RandomDense(rand.New(rand.NewSource(3)), 4, 4)

	w, err := Create(filepath.Join(dir, "dup.tptl"), []int{4, 4}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tile := x.SubTensor([]int{0, 0}, []int{2, 2})
	if err := w.WriteTile([]int{0, 0}, tile); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTile([]int{0, 0}, tile); err == nil {
		t.Fatal("duplicate tile accepted")
	}
	if err := w.WriteTile([]int{1, 0}, x.SubTensor([]int{0, 0}, []int{1, 2})); err == nil {
		t.Fatal("wrong-shaped tile accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with missing tiles succeeded")
	}
}

func TestReaderRejectsCorruptHeaders(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tptl")
	x := tensor.RandomDense(rand.New(rand.NewSource(4)), 6, 6)
	writeTensor(t, path, x, []int{2, 2}, nil)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), good...))
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("%s: corrupt header accepted", name)
		}
	}
	corrupt("magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("flags", func(b []byte) []byte { b[8] = 0x80; return b })
	corrupt("modes", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:], 0); return b })
	corrupt("huge-dim", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1<<60)
		return b
	})
	corrupt("bad-tiling", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16+16:], 7) // 7 tiles of a size-6 mode
		return b
	})
	corrupt("index-offset", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[headerSize(2):], 1<<50)
		return b
	})
	corrupt("index-size", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[headerSize(2)+8:], uint64(len(b)))
		return b
	})
	corrupt("truncated", func(b []byte) []byte { return b[:headerSize(2)+4] })
}

func TestReaderDetectsPayloadCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tptl")
	x := tensor.RandomDense(rand.New(rand.NewSource(5)), 6, 6)
	writeTensor(t, path, x, []int{2, 2}, nil)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff // flip a byte inside the last tile's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadTile([]int{1, 1}); err == nil {
		t.Fatal("flipped payload byte not caught by CRC")
	}
	// Other tiles stay readable.
	if _, err := r.ReadTile([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderDetectsGzipCorruptionWithoutCRC(t *testing.T) {
	// With per-tile CRCs disabled, gzip's own trailer checksum is the
	// only integrity layer: the reader must drain to the trailer and
	// let it fire.
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tptl")
	x := tensor.RandomDense(rand.New(rand.NewSource(7)), 8, 8)
	writeTensor(t, path, x, []int{1, 1}, nil, WithGzip(), WithoutCRC())
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the (single) tile's deflate stream.
	b[len(b)-20] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadTile([]int{0, 0}); err == nil {
		t.Fatal("corrupt gzip payload decoded silently")
	}
}

func TestReaderConcurrentTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandomDense(rng, 12, 12, 12)
	path := filepath.Join(t.TempDir(), "x.tptl")
	writeTensor(t, path, x, []int{3, 3, 3}, nil)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := r.Tiling()
	errs := make(chan error, p.NumBlocks())
	for _, vec := range p.Positions() {
		vec := vec
		go func() {
			tile, err := r.ReadTile(vec)
			if err == nil {
				from, size := p.Block(vec)
				want := x.SubTensor(from, size)
				if !tile.EqualApprox(want, 0) {
					err = os.ErrInvalid
				}
			}
			errs <- err
		}()
	}
	for range p.Positions() {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutoTiles(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		max  int
	}{
		{[]int{10, 10, 10}, 1000},
		{[]int{100, 3, 7}, 50},
		{[]int{1, 1, 1}, 1},
		{[]int{64, 64, 64}, 0}, // default bound: single tile
	} {
		tiles := AutoTiles(tc.dims, tc.max)
		p, err := grid.New(tc.dims, tiles)
		if err != nil {
			t.Fatalf("AutoTiles(%v, %d) = %v: %v", tc.dims, tc.max, tiles, err)
		}
		maxE := tc.max
		if maxE <= 0 {
			maxE = 1 << 22
		}
		for _, vec := range p.Positions() {
			_, size := p.Block(vec)
			elems := 1
			for _, s := range size {
				elems *= s
			}
			if elems > maxE && !fullySplit(tc.dims, tiles) {
				t.Fatalf("AutoTiles(%v, %d) = %v: tile %v has %d cells", tc.dims, tc.max, tiles, vec, elems)
			}
		}
	}
}

func fullySplit(dims, tiles []int) bool {
	for i := range dims {
		if tiles[i] != dims[i] {
			return false
		}
	}
	return true
}

func TestCheckDimsOverflow(t *testing.T) {
	if _, err := checkDims([]int{1 << 21, 1 << 21, 1 << 21}); err == nil {
		t.Fatal("2^63 cells accepted")
	}
	if _, err := checkDims([]int{0, 4}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if n, err := checkDims([]int{3, 4, 5}); err != nil || n != 60 {
		t.Fatalf("checkDims = %d, %v", n, err)
	}
}

package mat

import (
	"math/rand"
	"testing"
)

// branchy is the seed kernel shape: skip zero multipliers before the inner
// axpy. On dense factors the branch never fires but still costs a
// compare+jump per element.
func gramBranchy(dst, a *Matrix) {
	n := a.Cols
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, vj := range row {
			if vj == 0 {
				continue
			}
			drow := dst.Row(j)
			for k := j; k < n; k++ {
				drow[k] += vj * row[k]
			}
		}
	}
}

func gramBranchless(dst, a *Matrix) {
	n := a.Cols
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, vj := range row {
			Axpy(dst.Data[j*n+j:(j+1)*n], row[j:], vj)
		}
	}
}

func BenchmarkGramBranchAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := Random(1<<14, 16, rng)
	out := New(16, 16)
	b.Run("branchy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gramBranchy(out, a)
		}
	})
	b.Run("branchless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gramBranchless(out, a)
		}
	})
}

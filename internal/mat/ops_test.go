package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is an independent reference implementation used to cross-check
// the optimized kernels.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Random(7, 7, rng)
	if !Mul(m, Identity(7)).EqualApprox(m, 1e-14) {
		t.Fatal("m·I != m")
	}
	if !Mul(Identity(7), m).EqualApprox(m, 1e-14) {
		t.Fatal("I·m != m")
	}
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(r8, k8, c8 uint8) bool {
		r, k, c := int(r8%9)+1, int(k8%9)+1, int(c8%9)+1
		a, b := Random(r, k, rng), Random(k, c, rng)
		return Mul(a, b).EqualApprox(naiveMul(a, b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with bad dims did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulAddInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := Random(4, 5, rng), Random(5, 6, rng)
	dst := Random(4, 6, rng)
	orig := dst.Clone()
	MulAddInto(dst, a, b)
	want := Mul(a, b)
	want.AddInPlace(orig)
	if !dst.EqualApprox(want, 1e-12) {
		t.Fatal("MulAddInto mismatch")
	}
}

func TestGramMatchesTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%15)+1, int(c8%10)+1
		a := Random(r, c, rng)
		return Gram(a).EqualApprox(TMul(a, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Gram(Random(9, 5, rng))
	if !g.EqualApprox(g.T(), 1e-13) {
		t.Fatal("Gram not symmetric")
	}
}

func TestTMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := Random(6, 4, rng), Random(6, 3, rng)
	if !TMul(a, b).EqualApprox(naiveMul(a.T(), b), 1e-12) {
		t.Fatal("TMul mismatch")
	}
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{2, 2}, {0.5, -1}})
	got := Hadamard(a, b)
	want := FromRows([][]float64{{2, 4}, {1.5, -4}})
	if !got.Equal(want) {
		t.Fatalf("Hadamard = %v", got)
	}
	// a unchanged
	if a.At(0, 0) != 1 {
		t.Fatal("Hadamard mutated its argument")
	}
}

func TestHadamardAll(t *testing.T) {
	a := FromRows([][]float64{{2, 3}})
	b := FromRows([][]float64{{5, 7}})
	got := HadamardAll(1, 2, a, b)
	want := FromRows([][]float64{{10, 21}})
	if !got.Equal(want) {
		t.Fatalf("HadamardAll = %v", got)
	}
	ones := HadamardAll(2, 2)
	for _, v := range ones.Data {
		if v != 1 {
			t.Fatal("empty HadamardAll should be all-ones")
		}
	}
}

func TestDivElem(t *testing.T) {
	a := FromRows([][]float64{{6, 1, 5}})
	b := FromRows([][]float64{{2, 0, 1e-15}})
	got := DivElem(a, b, 1e-12)
	if got.At(0, 0) != 3 {
		t.Fatalf("DivElem[0] = %g", got.At(0, 0))
	}
	// zero / tiny denominators clamp to 0 instead of Inf
	if got.At(0, 1) != 0 || got.At(0, 2) != 0 {
		t.Fatalf("DivElem guard failed: %v", got)
	}
}

func TestDivElemUndoesHadamard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Random(4, 4, rng)
	b := Random(4, 4, rng)
	// entries are in (0,1) so all denominators are safe
	prod := Hadamard(a, b)
	back := DivElem(prod, b, 1e-300)
	if !back.EqualApprox(a, 1e-12) {
		t.Fatal("DivElem(Hadamard(a,b), b) != a")
	}
}

func TestDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Dot(a, b); got != 5+12+21+32 {
		t.Fatalf("Dot = %g", got)
	}
}

func TestDotNormConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := Random(5, 5, rng)
	if math.Abs(Dot(m, m)-m.Norm()*m.Norm()) > 1e-10 {
		t.Fatal("Dot(m,m) != Norm(m)²")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(m, []float64{10, 100})
	if got[0] != 210 || got[1] != 430 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestQuadForm(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	x := []float64{1, 1}
	// xᵀ m x = 1+2+3+4
	if got := QuadForm(m, x, x); got != 10 {
		t.Fatalf("QuadForm = %g", got)
	}
	// cross-check against MulVec
	rng := rand.New(rand.NewSource(11))
	a := Random(4, 4, rng)
	v := []float64{0.1, 0.2, 0.3, 0.4}
	mv := MulVec(a, v)
	var want float64
	for i, vi := range v {
		want += vi * mv[i]
	}
	if math.Abs(QuadForm(a, v, v)-want) > 1e-12 {
		t.Fatal("QuadForm inconsistent with MulVec")
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a, b, c := Random(3, 4, rng), Random(4, 5, rng), Random(5, 2, rng)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if !left.EqualApprox(right, 1e-11) {
		t.Fatal("(ab)c != a(bc)")
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := Random(64, 64, rng), Random(64, 64, rng)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkGram256x32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Random(256, 32, rng)
	dst := New(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramInto(dst, x)
	}
}

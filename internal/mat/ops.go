package mat

import (
	"fmt"
	"math"
)

// Mul returns a*b. It panics if the inner dimensions differ.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b, reusing dst's storage.
// dst must be a.Rows×b.Cols and must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul: %d×%d * %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	// ikj loop order: streams through b and dst rows sequentially.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulAddInto computes dst += a*b without zeroing dst first.
func MulAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulAddInto: %d×%d * %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Gram returns aᵀa, the F×F Gram matrix of a's columns.
// This is the hot kernel of CP-ALS normal equations.
func Gram(a *Matrix) *Matrix {
	out := New(a.Cols, a.Cols)
	GramInto(out, a)
	return out
}

// GramInto computes dst = aᵀa, exploiting symmetry.
// dst must be a.Cols×a.Cols.
func GramInto(dst, a *Matrix) {
	n := a.Cols
	if dst.Rows != n || dst.Cols != n {
		panic(fmt.Sprintf("mat: GramInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, n, n))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, vj := range row {
			if vj == 0 {
				continue
			}
			drow := dst.Row(j)
			for k := j; k < n; k++ {
				drow[k] += vj * row[k]
			}
		}
	}
	// Mirror the upper triangle.
	for j := 1; j < n; j++ {
		for k := 0; k < j; k++ {
			dst.Data[j*n+k] = dst.Data[k*n+j]
		}
	}
}

// TMul returns aᵀb. a and b must have the same row count.
func TMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	TMulInto(out, a, b)
	return out
}

// TMulInto computes dst = aᵀb, reusing dst's storage.
// dst must be a.Cols×b.Cols.
func TMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul: %d×%d ᵀ* %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: TMulInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for j, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(j)
			for k, bv := range brow {
				drow[k] += av * bv
			}
		}
	}
}

// Hadamard returns the element-wise product a ⊛ b. Shapes must match.
func Hadamard(a, b *Matrix) *Matrix {
	out := a.Clone()
	out.HadamardInPlace(b)
	return out
}

// HadamardInPlace computes m = m ⊛ n element-wise. Shapes must match.
func (m *Matrix) HadamardInPlace(n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("mat: Hadamard: %d×%d ⊛ %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i, v := range n.Data {
		m.Data[i] *= v
	}
}

// HadamardAll returns the element-wise product of all given matrices, or the
// identity-of-Hadamard (all-ones) matrix of the given shape when the list is
// empty. Used for P_l = ⊛_h U(h)ᵀ_l A(h)_(l_h) style products.
func HadamardAll(r, c int, ms ...*Matrix) *Matrix {
	out := New(r, c)
	out.Fill(1)
	for _, m := range ms {
		out.HadamardInPlace(m)
	}
	return out
}

// DivElem returns a ⊘ b, the element-wise quotient. Entries where |b| < eps
// yield 0 rather than Inf/NaN; the paper's update rules only divide factors
// out of Hadamard products, so a zero denominator implies a zero numerator.
func DivElem(a, b *Matrix, eps float64) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: DivElem: %d×%d ⊘ %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		d := b.Data[i]
		if math.Abs(d) < eps {
			out.Data[i] = 0
			continue
		}
		out.Data[i] = v / d
	}
	return out
}

// Dot returns the Frobenius inner product ⟨a, b⟩ = Σ a_ij b_ij.
func Dot(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Dot: %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// MulVec returns m*x for a vector x of length m.Cols.
func MulVec(m *Matrix, x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec: %d×%d * vec(%d)", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// QuadForm returns xᵀ m y for vectors x (len m.Rows) and y (len m.Cols).
// CP fit computation uses this with x = y = λ on the Hadamard of Grams.
func QuadForm(m *Matrix, x, y []float64) float64 {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: QuadForm: %d×%d with vec(%d), vec(%d)", m.Rows, m.Cols, len(x), len(y)))
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var ri float64
		for j, v := range row {
			ri += v * y[j]
		}
		s += x[i] * ri
	}
	return s
}

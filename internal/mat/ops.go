package mat

import (
	"fmt"
	"math"
	"sync"

	"twopcp/internal/par"
)

// Panel geometry of the parallel kernels. The reduction kernels (GramInto,
// TMulInto) split the row dimension into fixed-size panels, accumulate one
// partial per panel, and add the partials into dst in ascending panel order.
// The panel size is a constant — never derived from the worker count — so
// the floating-point result is identical at every worker count: a serial
// run walks the very same panels in the very same order. MulInto needs no
// partials (each dst row is owned by exactly one panel), so its output is
// worker-invariant as well.
const reducePanelRows = 256

// panelScratch pools the per-panel partial accumulators of the reduction
// kernels so steady-state ALS sweeps allocate nothing.
var panelScratch = sync.Pool{New: func() any { s := make([]float64, 0, 4096); return &s }}

func getScratch(n int) *[]float64 {
	sp := panelScratch.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	*sp = (*sp)[:n]
	for i := range *sp {
		(*sp)[i] = 0
	}
	return sp
}

func putScratch(sp *[]float64) { panelScratch.Put(sp) }

// Mul returns a*b. It panics if the inner dimensions differ.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b, reusing dst's storage.
// dst must be a.Rows×b.Cols and must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul: %d×%d * %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	mulAdd(dst, a, b)
}

// MulAddInto computes dst += a*b without zeroing dst first.
func MulAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulAddInto: %d×%d * %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAddInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mulAdd(dst, a, b)
}

// mulAdd accumulates a*b into dst, parallel over row panels. Each dst row
// is produced by exactly one panel invocation with a fixed ikj loop order,
// so the result does not depend on the worker count.
func mulAdd(dst, a, b *Matrix) {
	rows := a.Rows
	if rows == 0 || b.Cols == 0 {
		return
	}
	np := (rows + reducePanelRows - 1) / reducePanelRows
	par.DoWorkers(par.WorkersFor(rows*a.Cols*b.Cols*2), np, func(p int) {
		lo := p * reducePanelRows
		hi := lo + reducePanelRows
		if hi > rows {
			hi = rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k, av := range arow {
				Axpy(drow, b.Row(k), av)
			}
		}
	})
}

// Gram returns aᵀa, the F×F Gram matrix of a's columns.
// This is the hot kernel of CP-ALS normal equations.
func Gram(a *Matrix) *Matrix {
	out := New(a.Cols, a.Cols)
	GramInto(out, a)
	return out
}

// GramInto computes dst = aᵀa, exploiting symmetry.
// dst must be a.Cols×a.Cols. Row panels are reduced in ascending panel
// order, so the result is identical at every worker count.
func GramInto(dst, a *Matrix) {
	n := a.Cols
	if dst.Rows != n || dst.Cols != n {
		panic(fmt.Sprintf("mat: GramInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, n, n))
	}
	dst.Zero()
	rows := a.Rows
	if rows > 0 && n > 0 {
		np := (rows + reducePanelRows - 1) / reducePanelRows
		if np == 1 {
			gramUpper(dst.Data, a, 0, rows, n)
		} else {
			sp := getScratch(np * n * n)
			partials := *sp
			par.DoWorkers(par.WorkersFor(rows*n*n), np, func(p int) {
				lo := p * reducePanelRows
				hi := lo + reducePanelRows
				if hi > rows {
					hi = rows
				}
				gramUpper(partials[p*n*n:(p+1)*n*n], a, lo, hi, n)
			})
			for p := 0; p < np; p++ {
				Axpy(dst.Data, partials[p*n*n:(p+1)*n*n], 1)
			}
			putScratch(sp)
		}
	}
	// Mirror the upper triangle.
	for j := 1; j < n; j++ {
		for k := 0; k < j; k++ {
			dst.Data[j*n+k] = dst.Data[k*n+j]
		}
	}
}

// gramUpper accumulates the upper triangle of aᵀa over rows [lo, hi) into
// buf (an n×n row-major buffer).
func gramUpper(buf []float64, a *Matrix, lo, hi, n int) {
	for i := lo; i < hi; i++ {
		row := a.Row(i)
		for j, vj := range row {
			Axpy(buf[j*n+j:(j+1)*n], row[j:], vj)
		}
	}
}

// TMul returns aᵀb. a and b must have the same row count.
func TMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	TMulInto(out, a, b)
	return out
}

// TMulInto computes dst = aᵀb, reusing dst's storage.
// dst must be a.Cols×b.Cols. Row panels are reduced in ascending panel
// order, so the result is identical at every worker count.
func TMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul: %d×%d ᵀ* %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: TMulInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	rows := a.Rows
	ac, bc := a.Cols, b.Cols
	if rows == 0 || ac == 0 || bc == 0 {
		return
	}
	np := (rows + reducePanelRows - 1) / reducePanelRows
	if np == 1 {
		tmulAcc(dst.Data, a, b, 0, rows)
		return
	}
	sp := getScratch(np * ac * bc)
	partials := *sp
	par.DoWorkers(par.WorkersFor(rows*ac*bc), np, func(p int) {
		lo := p * reducePanelRows
		hi := lo + reducePanelRows
		if hi > rows {
			hi = rows
		}
		tmulAcc(partials[p*ac*bc:(p+1)*ac*bc], a, b, lo, hi)
	})
	for p := 0; p < np; p++ {
		Axpy(dst.Data, partials[p*ac*bc:(p+1)*ac*bc], 1)
	}
	putScratch(sp)
}

// tmulAcc accumulates aᵀb over rows [lo, hi) into buf (a.Cols×b.Cols).
func tmulAcc(buf []float64, a, b *Matrix, lo, hi int) {
	bc := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for j, av := range arow {
			Axpy(buf[j*bc:(j+1)*bc], brow, av)
		}
	}
}

// Hadamard returns the element-wise product a ⊛ b. Shapes must match.
func Hadamard(a, b *Matrix) *Matrix {
	out := a.Clone()
	out.HadamardInPlace(b)
	return out
}

// HadamardInPlace computes m = m ⊛ n element-wise. Shapes must match.
func (m *Matrix) HadamardInPlace(n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("mat: Hadamard: %d×%d ⊛ %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i, v := range n.Data {
		m.Data[i] *= v
	}
}

// HadamardAll returns the element-wise product of all given matrices, or the
// identity-of-Hadamard (all-ones) matrix of the given shape when the list is
// empty. Used for P_l = ⊛_h U(h)ᵀ_l A(h)_(l_h) style products.
func HadamardAll(r, c int, ms ...*Matrix) *Matrix {
	out := New(r, c)
	out.Fill(1)
	for _, m := range ms {
		out.HadamardInPlace(m)
	}
	return out
}

// DivElem returns a ⊘ b, the element-wise quotient. Entries where |b| < eps
// yield 0 rather than Inf/NaN; the paper's update rules only divide factors
// out of Hadamard products, so a zero denominator implies a zero numerator.
func DivElem(a, b *Matrix, eps float64) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: DivElem: %d×%d ⊘ %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		d := b.Data[i]
		if math.Abs(d) < eps {
			out.Data[i] = 0
			continue
		}
		out.Data[i] = v / d
	}
	return out
}

// Dot returns the Frobenius inner product ⟨a, b⟩ = Σ a_ij b_ij.
func Dot(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Dot: %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// MulVec returns m*x for a vector x of length m.Cols.
func MulVec(m *Matrix, x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec: %d×%d * vec(%d)", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// QuadForm returns xᵀ m y for vectors x (len m.Rows) and y (len m.Cols).
// CP fit computation uses this with x = y = λ on the Hadamard of Grams.
func QuadForm(m *Matrix, x, y []float64) float64 {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: QuadForm: %d×%d with vec(%d), vec(%d)", m.Rows, m.Cols, len(x), len(y)))
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var ri float64
		for j, v := range row {
			ri += v * y[j]
		}
		s += x[i] * ri
	}
	return s
}

package mat

import (
	"math"
	"math/rand"
	"testing"
)

// orthonormalityErr returns max |QᵀQ - I| over all entries.
func orthonormalityErr(q *Matrix) float64 {
	g := Gram(q)
	var worst float64
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestQRThinOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{5, 5}, {20, 4}, {100, 12}, {3, 1}, {7, 7}} {
		a := RandomNormal(dims[0], dims[1], rng)
		q := QRThin(a)
		if q.Rows != dims[0] || q.Cols != dims[1] {
			t.Fatalf("Q is %d×%d, want %d×%d", q.Rows, q.Cols, dims[0], dims[1])
		}
		if err := orthonormalityErr(q); err > 1e-12 {
			t.Fatalf("%dx%d: QᵀQ deviates from I by %g", dims[0], dims[1], err)
		}
		// Q must span the columns of a: projecting a onto Q recovers a.
		proj := Mul(q, TMul(q, a)) // Q·(Qᵀ·a)
		for i, v := range a.Data {
			if math.Abs(v-proj.Data[i]) > 1e-10 {
				t.Fatalf("%dx%d: projection drops column content at %d: %g vs %g",
					dims[0], dims[1], i, v, proj.Data[i])
			}
		}
	}
}

// Rank-deficient input: Q columns stay orthonormal and the span of a is
// still inside the span of Q.
func TestQRThinRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomNormal(30, 3, rng)
	// Duplicate a column and append a zero column: numerical rank 3 of 5.
	wide := New(30, 5)
	for i := 0; i < 30; i++ {
		copy(wide.Row(i)[:3], a.Row(i))
		wide.Set(i, 3, a.At(i, 0)) // duplicate
		// column 4 stays zero
	}
	q := QRThin(wide)
	if err := orthonormalityErr(q); err > 1e-12 {
		t.Fatalf("rank-deficient QᵀQ deviates from I by %g", err)
	}
	proj := Mul(q, TMul(q, wide))
	for i, v := range wide.Data {
		if math.Abs(v-proj.Data[i]) > 1e-10 {
			t.Fatalf("projection drops content at %d", i)
		}
	}
}

func TestQRThinDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomNormal(40, 6, rng)
	q1, q2 := QRThin(a), QRThin(a)
	if !q1.Equal(q2) {
		t.Fatal("QRThin is not bit-deterministic")
	}
}

func TestQRThinPanicsOnWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wide input")
		}
	}()
	QRThin(New(2, 5))
}

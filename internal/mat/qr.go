package mat

import (
	"fmt"
	"math"
)

// QRThin computes the thin QR factorization of an m×n matrix a with m ≥ n
// via Householder reflections and returns Q (m×n, orthonormal columns).
// a is not modified.
//
// The columns of Q are an orthonormal basis whose leading span contains the
// column space of a; when a is rank-deficient the trailing columns are
// still orthonormal (the reflector for a numerically zero column is the
// identity, deterministically), so Q is always a valid basis to project
// against. Everything is serial and in fixed order — the same input bytes
// produce the same output bytes, which the sketch range-finder's
// determinism contract relies on.
func QRThin(a *Matrix) *Matrix {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("mat: QRThin of wide %d×%d (want rows >= cols)", m, n))
	}
	// r starts as a copy of a and is triangularized in place; vs stores the
	// Householder vectors (normalized so v[k] = 1 implicitly).
	r := a.Clone()
	vs := New(m, n) // column j holds reflector j (rows j..m-1)
	betas := make([]float64, n)
	for j := 0; j < n; j++ {
		// Build the reflector annihilating r[j+1:, j].
		var norm2 float64
		for i := j; i < m; i++ {
			v := r.At(i, j)
			norm2 += v * v
		}
		norm := math.Sqrt(norm2)
		if norm == 0 {
			betas[j] = 0 // zero column: identity reflector
			continue
		}
		alpha := r.At(j, j)
		// Choose the sign that avoids cancellation.
		if alpha > 0 {
			norm = -norm
		}
		v0 := alpha - norm
		// v = x - norm·e1; beta = 2/(vᵀv).
		vnorm2 := norm2 - alpha*alpha + v0*v0
		if vnorm2 == 0 {
			betas[j] = 0
			continue
		}
		betas[j] = 2 / vnorm2
		vs.Set(j, j, v0)
		for i := j + 1; i < m; i++ {
			vs.Set(i, j, r.At(i, j))
		}
		// Apply H = I - beta·v·vᵀ to the remaining columns of r.
		for c := j; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += vs.At(i, j) * r.At(i, c)
			}
			dot *= betas[j]
			for i := j; i < m; i++ {
				r.Set(i, c, r.At(i, c)-dot*vs.At(i, j))
			}
		}
	}
	// Q = H_0·H_1·...·H_{n-1}·[I_n; 0], accumulated by applying the
	// reflectors in reverse to the first n columns of the identity.
	q := New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for j := n - 1; j >= 0; j-- {
		if betas[j] == 0 {
			continue
		}
		for c := 0; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += vs.At(i, j) * q.At(i, c)
			}
			dot *= betas[j]
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-dot*vs.At(i, j))
			}
		}
	}
	return q
}

package mat

import "math/rand"

// Random returns an r×c matrix with entries drawn uniformly from [0, 1)
// using the supplied generator. CP-ALS conventionally initializes factor
// matrices with non-negative uniform noise; a nil rng panics so that all
// randomness in the system stays explicitly seeded.
func Random(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// RandomNormal returns an r×c matrix with standard normal entries.
func RandomNormal(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

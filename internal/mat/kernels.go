package mat

// This file holds the innermost compute primitives shared by the matrix and
// tensor kernels. They are written so the compiler keeps the accumulator
// blocks in registers: the column dimension is processed in blocks of four
// (plus a fully unrolled 16-wide fast path for OuterAdd, the common CP rank
// in the benchmarks), which is where the dense MTTKRP/GEMM speedup comes
// from — the blocked loops run several times faster than a naive
// element-at-a-time sweep.
//
// All primitives are strictly sequential left-to-right accumulations per
// output element, so parallel callers that assign each output region to one
// invocation get bit-identical results at any worker count.

// Axpy computes dst[i] += a*x[i] over len(x) elements.
// dst must have at least len(x) elements.
func Axpy(dst, x []float64, a float64) {
	n := len(x)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := x[i : i+4 : i+4]
		d[0] += a * s[0]
		d[1] += a * s[1]
		d[2] += a * s[2]
		d[3] += a * s[3]
	}
	for ; i < n; i++ {
		dst[i] += a * x[i]
	}
}

// VecMatMulAdd computes dst += xᵀ·M for a row-major panel M with len(x)
// rows of f columns: dst[c] += Σ_i x[i]·rows[i*f+c]. The accumulation over
// i runs front to back independently per column, in four-column register
// blocks. This is the fiber kernel of mode-n MTTKRP (n > 0): x is a
// contiguous mode-0 fiber and M the mode-0 factor panel.
func VecMatMulAdd(dst []float64, rows []float64, x []float64, f int) {
	if len(x) == 0 || f == 0 {
		return
	}
	_ = rows[len(x)*f-1]
	c0 := 0
	for ; c0+4 <= f; c0 += 4 {
		var s0, s1, s2, s3 float64
		p := c0
		for _, v := range x {
			r := rows[p : p+4 : p+4]
			s0 += v * r[0]
			s1 += v * r[1]
			s2 += v * r[2]
			s3 += v * r[3]
			p += f
		}
		d := dst[c0 : c0+4 : c0+4]
		d[0] += s0
		d[1] += s1
		d[2] += s2
		d[3] += s3
	}
	for ; c0 < f; c0++ {
		var acc float64
		p := c0
		for _, v := range x {
			acc += v * rows[p]
			p += f
		}
		dst[c0] += acc
	}
}

// OuterAdd computes M += x ⊗ w for a row-major panel M with len(x) rows of
// f columns: rows[i*f+c] += x[i]·w[c]. This is the mode-0 MTTKRP fiber
// kernel: whole fibers accumulate into the output panel as rank-one
// updates.
func OuterAdd(rows []float64, w []float64, x []float64, f int) {
	if f == 16 {
		outerAdd16(rows, w, x)
		return
	}
	w = w[:f:f]
	p := 0
	for _, v := range x {
		r := rows[p : p+f : p+f]
		c0 := 0
		for ; c0+4 <= f; c0 += 4 {
			d := r[c0 : c0+4 : c0+4]
			s := w[c0 : c0+4 : c0+4]
			d[0] += v * s[0]
			d[1] += v * s[1]
			d[2] += v * s[2]
			d[3] += v * s[3]
		}
		for ; c0 < f; c0++ {
			r[c0] += v * w[c0]
		}
		p += f
	}
}

// outerAdd16 is OuterAdd fully unrolled for f = 16.
func outerAdd16(rows []float64, w []float64, x []float64) {
	w = w[:16:16]
	p := 0
	for _, v := range x {
		r := rows[p : p+16 : p+16]
		r[0] += v * w[0]
		r[1] += v * w[1]
		r[2] += v * w[2]
		r[3] += v * w[3]
		r[4] += v * w[4]
		r[5] += v * w[5]
		r[6] += v * w[6]
		r[7] += v * w[7]
		r[8] += v * w[8]
		r[9] += v * w[9]
		r[10] += v * w[10]
		r[11] += v * w[11]
		r[12] += v * w[12]
		r[13] += v * w[13]
		r[14] += v * w[14]
		r[15] += v * w[15]
		p += 16
	}
}

// HadamardVec computes dst[i] = a[i]*b[i] over len(dst) elements.
func HadamardVec(dst, a, b []float64) {
	n := len(dst)
	a = a[:n]
	b = b[:n]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

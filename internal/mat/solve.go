package mat

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ.
// m must be square and symmetric positive definite; otherwise ErrSingular
// is returned. Only the lower triangle of m is read.
func Cholesky(m *Matrix) (*Matrix, error) {
	l := New(m.Rows, m.Rows)
	if err := choleskyInto(l, m); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors m into the caller-provided l (n×n, fully
// overwritten), sparing the allocation in workspace-driven solves.
func choleskyInto(l, m *Matrix) error {
	n := m.Rows
	if m.Cols != n {
		panic(fmt.Sprintf("mat: Cholesky of %d×%d", m.Rows, m.Cols))
	}
	l.Zero()
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("mat: Cholesky pivot %d is %g: %w", j, d, ErrSingular)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return nil
}

// CholeskySolve solves m·X = B given the Cholesky factor l of m (m = L·Lᵀ).
// B is n×k; the returned X is n×k.
func CholeskySolve(l, b *Matrix) *Matrix {
	x := b.Clone()
	choleskySolveInPlace(l, x)
	return x
}

// choleskySolveInPlace overwrites x (n×k) with the solution of L·Lᵀ·X = x.
func choleskySolveInPlace(l, x *Matrix) {
	n := l.Rows
	if x.Rows != n {
		panic(fmt.Sprintf("mat: CholeskySolve: L is %d×%d, B is %d×%d", l.Rows, l.Cols, x.Rows, x.Cols))
	}
	// Forward substitution: L·Y = B.
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			if lik == 0 {
				continue
			}
			xk := x.Row(k)
			for j := range xi {
				xi[j] -= lik * xk[j]
			}
		}
		inv := 1 / l.At(i, i)
		for j := range xi {
			xi[j] *= inv
		}
	}
	// Back substitution: Lᵀ·X = Y.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			if lki == 0 {
				continue
			}
			xk := x.Row(k)
			for j := range xi {
				xi[j] -= lki * xk[j]
			}
		}
		inv := 1 / l.At(i, i)
		for j := range xi {
			xi[j] *= inv
		}
	}
}

// SymEig computes the eigendecomposition of a symmetric matrix m using the
// cyclic Jacobi rotation method: m = V·diag(vals)·Vᵀ with orthonormal V.
// It is intended for the small F×F systems of CP-ALS; cost is O(n³) per
// sweep with a handful of sweeps.
func SymEig(m *Matrix) (vals []float64, vecs *Matrix) {
	n := m.Rows
	if m.Cols != n {
		panic(fmt.Sprintf("mat: SymEig of %d×%d", m.Rows, m.Cols))
	}
	a := m.Clone()
	v := Identity(n)
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of a.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	return vals, v
}

// PseudoInverseSym returns the Moore-Penrose pseudo-inverse of a symmetric
// matrix via its Jacobi eigendecomposition, zeroing eigenvalues whose
// magnitude is below tol·max|λ|. tol <= 0 selects a default of n·ε.
func PseudoInverseSym(m *Matrix, tol float64) *Matrix {
	n := m.Rows
	vals, v := SymEig(m)
	maxAbs := 0.0
	for _, x := range vals {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if tol <= 0 {
		tol = float64(n) * 2.220446049250313e-16
	}
	cut := tol * maxAbs
	// pinv = V diag(1/λ or 0) Vᵀ
	scaled := New(n, n) // scaled = V · diag(inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(vals[j]) > cut {
				scaled.Set(i, j, v.At(i, j)/vals[j])
			}
		}
	}
	out := New(n, n)
	// out = scaled · Vᵀ
	for i := 0; i < n; i++ {
		srow := scaled.Row(i)
		orow := out.Row(i)
		for k, sv := range srow {
			if sv == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				orow[j] += sv * v.At(j, k)
			}
		}
	}
	return out
}

// Inverse returns the inverse of a general square matrix using Gauss-Jordan
// elimination with partial pivoting. ErrSingular is returned when a pivot
// underflows working precision.
func Inverse(m *Matrix) (*Matrix, error) {
	n := m.Rows
	if m.Cols != n {
		panic(fmt.Sprintf("mat: Inverse of %d×%d", m.Rows, m.Cols))
	}
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("mat: Inverse pivot %d: %w", col, ErrSingular)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		scaleRow(a, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(a, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, i int, s float64) {
	ri := m.Row(i)
	for k := range ri {
		ri[k] *= s
	}
}

// axpyRow adds f times row j to row i.
func axpyRow(m *Matrix, i, j int, f float64) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k] += f * rj[k]
	}
}

// SPDScratch holds the reusable buffers of RightSolveSPDInto. The zero
// value is ready to use; buffers grow on demand and are reused across
// solves of any shape — the Bᵀ staging keeps one backing array and only
// reshapes its header, so cycling through modes of different row counts
// (non-cubic blocks) allocates nothing once warm.
type SPDScratch struct {
	l     *Matrix   // Cholesky factor, s.Rows×s.Rows
	bt    Matrix    // Bᵀ staging header, s.Rows×b.Rows
	btBuf []float64 // Bᵀ backing storage, grown on demand
}

func (sc *SPDScratch) ensure(n, rows int) (l, bt *Matrix) {
	if sc.l == nil || sc.l.Rows != n {
		sc.l = New(n, n)
	}
	if need := n * rows; cap(sc.btBuf) < need {
		sc.btBuf = make([]float64, need)
	}
	sc.bt = Matrix{Rows: n, Cols: rows, Data: sc.btBuf[:n*rows]}
	return sc.l, &sc.bt
}

// RightSolveSPD returns B·S⁻¹ for a symmetric (ideally positive definite)
// S, as required by the factor update A ← T·S⁻¹. The fast path is a
// Cholesky solve of S·Xᵀ = Bᵀ; if S is not positive definite to working
// precision the symmetric pseudo-inverse is used instead, which matches the
// behaviour of the reference CP-ALS implementations on rank-deficient
// Gram products.
func RightSolveSPD(b, s *Matrix) *Matrix {
	out := New(b.Rows, b.Cols)
	RightSolveSPDInto(out, b, s, &SPDScratch{})
	return out
}

// RightSolveSPDInto computes dst = B·S⁻¹ without allocating on the
// Cholesky fast path: the factorization and the transposed right-hand side
// live in sc. dst must be b.Rows×b.Cols and must not alias b or s; the
// result is bit-identical to RightSolveSPD. The rare non-SPD fallback
// still allocates (it eigendecomposes S).
func RightSolveSPDInto(dst, b, s *Matrix, sc *SPDScratch) {
	if b.Cols != s.Rows {
		panic(fmt.Sprintf("mat: RightSolveSPD: B %d×%d, S %d×%d", b.Rows, b.Cols, s.Rows, s.Cols))
	}
	if dst.Rows != b.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: RightSolveSPDInto: dst %d×%d, want %d×%d", dst.Rows, dst.Cols, b.Rows, b.Cols))
	}
	l, bt := sc.ensure(s.Rows, b.Rows)
	if err := choleskyInto(l, s); err == nil {
		// X = B·S⁻¹  ⇔  S·Xᵀ = Bᵀ (S symmetric).
		transposeInto(bt, b)
		choleskySolveInPlace(l, bt)
		transposeInto(dst, bt)
		return
	}
	MulInto(dst, b, PseudoInverseSym(s, 0))
}

// transposeInto writes mᵀ into dst (m.Cols×m.Rows).
func transposeInto(dst, m *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("mat: transposeInto: dst %d×%d for %d×%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*m.Rows+i] = v
		}
	}
}

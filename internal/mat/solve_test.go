package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive-definite n×n matrix
// as AᵀA + I.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	a := Random(n+2, n, rng)
	s := Gram(a)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)+1)
	}
	return s
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(n8 uint8) bool {
		n := int(n8%8) + 1
		s := randomSPD(n, rng)
		l, err := Cholesky(s)
		if err != nil {
			return false
		}
		return Mul(l, l.T()).EqualApprox(s, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(s); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randomSPD(6, rng)
	x := Random(6, 3, rng)
	b := Mul(s, x)
	l, err := Cholesky(s)
	if err != nil {
		t.Fatal(err)
	}
	got := CholeskySolve(l, b)
	if !got.EqualApprox(x, 1e-8) {
		t.Fatal("CholeskySolve did not recover x")
	}
}

func TestSymEigOrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(7) + 1
		a := RandomNormal(n, n, rng)
		s := Gram(a) // symmetric PSD
		vals, v := SymEig(s)
		// V orthonormal: VᵀV = I
		if !Gram(v).EqualApprox(Identity(n), 1e-9) {
			t.Fatalf("trial %d: V not orthonormal", trial)
		}
		// V diag(vals) Vᵀ = s
		vd := v.Clone()
		vd.ScaleColumns(vals)
		if !Mul(vd, v.T()).EqualApprox(s, 1e-8) {
			t.Fatalf("trial %d: eigendecomposition does not reconstruct", trial)
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	s := FromRows([][]float64{{4, 0}, {0, 9}})
	vals, _ := SymEig(s)
	got := map[float64]bool{}
	for _, v := range vals {
		got[math.Round(v)] = true
	}
	if !got[4] || !got[9] {
		t.Fatalf("vals = %v", vals)
	}
}

func TestPseudoInverseSymSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randomSPD(5, rng)
	p := PseudoInverseSym(s, 0)
	if !Mul(s, p).EqualApprox(Identity(5), 1e-8) {
		t.Fatal("pinv of SPD is not the inverse")
	}
}

func TestPseudoInverseSymSingular(t *testing.T) {
	// rank-1 symmetric matrix s = v vᵀ with v = (1,2)
	s := FromRows([][]float64{{1, 2}, {2, 4}})
	p := PseudoInverseSym(s, 0)
	// Moore-Penrose conditions: s p s = s and p s p = p
	if !Mul(Mul(s, p), s).EqualApprox(s, 1e-9) {
		t.Fatal("s·p·s != s")
	}
	if !Mul(Mul(p, s), p).EqualApprox(p, 1e-9) {
		t.Fatal("p·s·p != p")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(6) + 1
		m := RandomNormal(n, n, rng)
		// Make it well-conditioned: add n·I
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Mul(m, inv).EqualApprox(Identity(n), 1e-9) {
			t.Fatalf("trial %d: m·m⁻¹ != I", trial)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(s); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(m, inv).EqualApprox(Identity(2), 1e-12) {
		t.Fatal("pivoted inverse wrong")
	}
}

func TestRightSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := randomSPD(4, rng)
	x := Random(6, 4, rng)
	b := Mul(x, s)
	got := RightSolveSPD(b, s)
	if !got.EqualApprox(x, 1e-8) {
		t.Fatal("RightSolveSPD did not recover x")
	}
}

func TestRightSolveSPDFallsBackOnSingular(t *testing.T) {
	// Singular S exercises the pseudo-inverse path; the result must still
	// satisfy the normal-equation optimality B = X·S on the range of S.
	s := FromRows([][]float64{{1, 1}, {1, 1}})
	b := FromRows([][]float64{{2, 2}})
	x := RightSolveSPD(b, s)
	back := Mul(x, s)
	if !back.EqualApprox(b, 1e-9) {
		t.Fatalf("X·S = %v, want %v", back, b)
	}
}

func TestRightSolveSPDMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	f := func(n8, r8 uint8) bool {
		n, r := int(n8%6)+1, int(r8%6)+1
		s := randomSPD(n, rng)
		b := Random(r, n, rng)
		inv, err := Inverse(s)
		if err != nil {
			return false
		}
		return RightSolveSPD(b, s).EqualApprox(Mul(b, inv), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(3, 3, rand.New(rand.NewSource(42)))
	b := Random(3, 3, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("Random with equal seeds differs")
	}
	for _, v := range a.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("Random value %g outside [0,1)", v)
		}
	}
}

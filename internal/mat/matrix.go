// Package mat provides the dense matrix algebra substrate used throughout
// twopcp: a row-major float64 matrix type, the BLAS-like kernels CP-ALS
// needs (GEMM, Gram matrices, Hadamard products), and small symmetric
// positive-definite solvers (Cholesky with a Gauss-Jordan pseudo-inverse
// fallback).
//
// Everything is hand-rolled on the standard library; the package has no
// dependencies beyond math and math/rand. Matrices in this package are
// small-to-medium (factor matrices are (I/K)×F with F typically 10–100), so
// the kernels favour clarity and cache-friendly loop orders over blocking.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Data is stored in a single slice
// with element (i, j) at Data[i*Cols+j]; the slice is exposed so callers
// that need raw access (serialization, tensor kernels) can avoid copies.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// ErrDimension is returned (wrapped) by operations whose operands have
// incompatible shapes.
var ErrDimension = errors.New("mat: dimension mismatch")

// ErrSingular is returned by solvers when the system matrix is singular to
// working precision and no pseudo-inverse fallback was requested.
var ErrSingular = errors.New("mat: singular matrix")

// New returns a zero-initialized r×c matrix.
// It panics if r or c is negative.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d): negative dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data as an r×c matrix without copying.
// It panics unless len(data) == r*c.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice(%d, %d): need %d values, got %d", r, c, r*c, len(data)))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix from row slices, copying the data.
// All rows must have equal length; an empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows: row %d has length %d, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a subslice (no copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom: %d×%d into %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and n have the same shape and identical elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddInPlace adds n to m element-wise in place. Shapes must match.
func (m *Matrix) AddInPlace(n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("mat: AddInPlace: %d×%d + %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i, v := range n.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts n from m element-wise in place. Shapes must match.
func (m *Matrix) SubInPlace(n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("mat: SubInPlace: %d×%d - %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	for i, v := range n.Data {
		m.Data[i] -= v
	}
}

// ColumnNorms returns the Euclidean norm of each column of m.
func (m *Matrix) ColumnNorms() []float64 {
	norms := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
	}
	return norms
}

// NormalizeColumns scales every column of m to unit Euclidean norm and
// returns the original norms. Columns with norm below eps are left
// untouched and report norm 1 so that callers folding the norms into λ
// weights stay consistent.
func (m *Matrix) NormalizeColumns(eps float64) []float64 {
	norms := make([]float64, m.Cols)
	m.NormalizeColumnsTo(norms, make([]float64, m.Cols), eps)
	return norms
}

// NormalizeColumnsTo is NormalizeColumns writing the norms into the
// caller-provided norms slice, using inv as scratch (both len Cols). Hot
// loops use it to keep ALS sweeps allocation-free.
func (m *Matrix) NormalizeColumnsTo(norms, inv []float64, eps float64) {
	if len(norms) != m.Cols || len(inv) != m.Cols {
		panic(fmt.Sprintf("mat: NormalizeColumnsTo: %d norms, %d inv for %d columns", len(norms), len(inv), m.Cols))
	}
	for j := range norms {
		norms[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j, n2 := range norms {
		n := math.Sqrt(n2)
		norms[j] = n
		if n < eps {
			norms[j] = 1
			inv[j] = 1
		} else {
			inv[j] = 1 / n
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= inv[j]
		}
	}
}

// ScaleColumns multiplies column j of m by s[j] in place.
// It panics unless len(s) == m.Cols.
func (m *Matrix) ScaleColumns(s []float64) {
	if len(s) != m.Cols {
		panic(fmt.Sprintf("mat: ScaleColumns: %d scales for %d columns", len(s), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
}

// String renders m for debugging: small matrices fully, large ones by shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%d×%d)", m.Rows, m.Cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// VStack stacks the given matrices vertically (they must share a column
// count) and returns the result. Used to assemble full factors A(i) from
// their per-partition pieces A(i)_(ki).
func VStack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("mat: VStack: column mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// SliceRows returns the sub-matrix of rows [from, to) as a copy.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("mat: SliceRows(%d, %d) of %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

package mat

import (
	"math/rand"
	"runtime"
	"testing"

	"twopcp/internal/par"
)

var workerCounts = []int{1, 2, 7, runtime.GOMAXPROCS(0)}

// naiveGram is the textbook reference used to bound the panel kernels'
// numerical drift.
func naiveGram(a *Matrix) *Matrix {
	out := New(a.Cols, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for k := 0; k < a.Cols; k++ {
			var s float64
			for i := 0; i < a.Rows; i++ {
				s += a.At(i, j) * a.At(i, k)
			}
			out.Set(j, k, s)
		}
	}
	return out
}

func withWorkers(w int, fn func()) {
	defer par.SetWorkers(par.SetWorkers(w))
	fn()
}

// Shapes straddle the reduction panel size (256 rows) so both the direct
// and the partial-accumulator paths run.
var testShapes = []struct{ rows, cols int }{
	{1, 1}, {3, 5}, {255, 7}, {256, 16}, {257, 16}, {1000, 13}, {2048, 4},
}

func TestGramIntoBitExactAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range testShapes {
		a := Random(sh.rows, sh.cols, rng)
		var serial *Matrix
		withWorkers(1, func() { serial = Gram(a) })
		for _, w := range workerCounts {
			var got *Matrix
			withWorkers(w, func() { got = Gram(a) })
			if !got.Equal(serial) {
				t.Fatalf("%d×%d: Gram workers=%d differs from serial", sh.rows, sh.cols, w)
			}
		}
		if !serial.EqualApprox(naiveGram(a), 1e-9) {
			t.Fatalf("%d×%d: panel Gram diverges from naive reference", sh.rows, sh.cols)
		}
	}
}

func TestTMulIntoBitExactAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, sh := range testShapes {
		a := Random(sh.rows, sh.cols, rng)
		b := Random(sh.rows, sh.cols+1, rng)
		var serial *Matrix
		withWorkers(1, func() { serial = TMul(a, b) })
		for _, w := range workerCounts {
			var got *Matrix
			withWorkers(w, func() { got = TMul(a, b) })
			if !got.Equal(serial) {
				t.Fatalf("%d×%d: TMul workers=%d differs from serial", sh.rows, sh.cols, w)
			}
		}
		if !serial.EqualApprox(Mul(a.T(), b), 1e-9) {
			t.Fatalf("%d×%d: TMul diverges from aᵀ·b", sh.rows, sh.cols)
		}
	}
}

func TestMulIntoBitExactAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, sh := range testShapes {
		a := Random(sh.rows, sh.cols, rng)
		b := Random(sh.cols, 9, rng)
		var serial *Matrix
		withWorkers(1, func() { serial = Mul(a, b) })
		for _, w := range workerCounts {
			var got *Matrix
			withWorkers(w, func() { got = Mul(a, b) })
			if !got.Equal(serial) {
				t.Fatalf("%d×%d: Mul workers=%d differs from serial", sh.rows, sh.cols, w)
			}
		}
	}
	// MulAddInto accumulates on top of existing content.
	a := Random(300, 6, rng)
	b := Random(6, 8, rng)
	base := Random(300, 8, rng)
	var serial *Matrix
	withWorkers(1, func() {
		serial = base.Clone()
		MulAddInto(serial, a, b)
	})
	for _, w := range workerCounts {
		got := base.Clone()
		withWorkers(w, func() { MulAddInto(got, a, b) })
		if !got.Equal(serial) {
			t.Fatalf("MulAddInto workers=%d differs from serial", w)
		}
	}
}

func TestAxpyKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{0, 1, 3, 4, 5, 16, 33} {
		x := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			dst[i] = rng.NormFloat64()
			want[i] = dst[i] + 2.5*x[i]
		}
		Axpy(dst, x, 2.5)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d] = %g, want %g", n, i, dst[i], want[i])
			}
		}
	}
}

func TestVecMatMulAddAndOuterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, f := range []int{1, 2, 3, 4, 5, 7, 8, 16, 19} {
		rows := 11
		m := make([]float64, rows*f)
		x := make([]float64, rows)
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// VecMatMulAdd vs per-column reference.
		dst := make([]float64, f)
		VecMatMulAdd(dst, m, x, f)
		for c := 0; c < f; c++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += x[i] * m[i*f+c]
			}
			if diff := dst[c] - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("f=%d: VecMatMulAdd[%d] = %g, want %g", f, c, dst[c], want)
			}
		}
		// OuterAdd vs scalar reference.
		w := make([]float64, f)
		for c := range w {
			w[c] = rng.NormFloat64()
		}
		got := append([]float64(nil), m...)
		OuterAdd(got, w, x, f)
		for i := 0; i < rows; i++ {
			for c := 0; c < f; c++ {
				want := m[i*f+c] + x[i]*w[c]
				if got[i*f+c] != want {
					t.Fatalf("f=%d: OuterAdd[%d,%d] = %g, want %g", f, i, c, got[i*f+c], want)
				}
			}
		}
	}
}

// BenchmarkGram measures the Gram kernel on a tall factor-matrix panel; the
// recorded baselines live in BENCH_kernels.json at the repo root.
func BenchmarkGram(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := Random(1<<15, 32, rng)
	out := New(32, 32)
	for _, w := range []int{1, 0} {
		name := "serial"
		if w == 0 {
			name = "maxprocs"
		}
		b.Run(name, func(b *testing.B) {
			defer par.SetWorkers(par.SetWorkers(w))
			b.SetBytes(int64(a.Rows * a.Cols * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GramInto(out, a)
			}
		})
	}
}

// BenchmarkTMul covers the Phase-2 component refresh kernel.
func BenchmarkTMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := Random(1<<14, 16, rng)
	c := Random(1<<14, 16, rng)
	out := New(16, 16)
	defer par.SetWorkers(par.SetWorkers(1))
	b.SetBytes(int64(2 * a.Rows * a.Cols * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMulInto(out, a, c)
	}
}

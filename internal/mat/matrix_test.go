package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("unexpected layout: %v", m)
	}
	// No copy: mutating the slice mutates the matrix.
	d[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("FromSlice should not copy")
	}
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 3, []float64{1})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %d×%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	if got := FromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("FromRows(nil) = %v", got)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(3)[%d,%d] = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtRow(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("Set/At mismatch")
	}
	r := m.Row(1)
	r[1] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("Row should alias the matrix")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should copy data")
	}
}

func TestCopyFrom(t *testing.T) {
	src := FromRows([][]float64{{1, 2}})
	dst := New(1, 2)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched CopyFrom did not panic")
		}
	}()
	dst.CopyFrom(New(2, 2))
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %d×%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%12)+1, int(c8%12)+1
		m := Random(r, c, rng)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if got := m.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %g, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
	if got := New(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %g", got)
	}
}

func TestScaleAddSub(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	n := FromRows([][]float64{{10, 20}})
	m.AddInPlace(n)
	if m.At(0, 1) != 22 {
		t.Fatalf("AddInPlace: %v", m)
	}
	m.SubInPlace(n)
	if m.At(0, 1) != 2 {
		t.Fatalf("SubInPlace: %v", m)
	}
	m.Scale(3)
	if m.At(0, 0) != 3 {
		t.Fatalf("Scale: %v", m)
	}
}

func TestColumnNormsAndNormalize(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 0}})
	norms := m.ColumnNorms()
	if math.Abs(norms[0]-5) > 1e-12 || norms[1] != 0 {
		t.Fatalf("ColumnNorms = %v", norms)
	}
	got := m.NormalizeColumns(1e-12)
	if math.Abs(got[0]-5) > 1e-12 {
		t.Fatalf("NormalizeColumns norms = %v", got)
	}
	// Zero column reports norm 1 and stays zero.
	if got[1] != 1 || m.At(0, 1) != 0 {
		t.Fatalf("zero-column handling: norms=%v m=%v", got, m)
	}
	if math.Abs(m.At(0, 0)-0.6) > 1e-12 || math.Abs(m.At(1, 0)-0.8) > 1e-12 {
		t.Fatalf("normalized column wrong: %v", m)
	}
}

func TestScaleColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.ScaleColumns([]float64{2, 10})
	want := FromRows([][]float64{{2, 20}, {6, 40}})
	if !m.Equal(want) {
		t.Fatalf("ScaleColumns: %v", m)
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0005, 2}})
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("EqualApprox(1e-3) should hold")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("EqualApprox(1e-6) should fail")
	}
	if a.EqualApprox(New(2, 1), 1) {
		t.Fatal("shape mismatch should fail")
	}
}

func TestVStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	s := VStack(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !s.Equal(want) {
		t.Fatalf("VStack = %v", s)
	}
	if got := VStack(); got.Rows != 0 {
		t.Fatalf("VStack() = %v", got)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	want := FromRows([][]float64{{2}, {3}})
	if !s.Equal(want) {
		t.Fatalf("SliceRows = %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 2 {
		t.Fatal("SliceRows must copy")
	}
}

func TestVStackSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Random(10, 3, rng)
	parts := []*Matrix{m.SliceRows(0, 4), m.SliceRows(4, 7), m.SliceRows(7, 10)}
	if !VStack(parts...).Equal(m) {
		t.Fatal("VStack(SliceRows...) != original")
	}
}

func TestStringForms(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(20, 20)
	if s := big.String(); s != "Matrix(20×20)" {
		t.Fatalf("big String = %q", s)
	}
}

package blockstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"twopcp/internal/obs"
)

// noSleep replaces backoff sleeping in tests.
func noSleep(time.Duration) {}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrap: %w", ErrTransient), true},
		{fmt.Errorf("wrap: %w", ErrTimeout), true},
		{fmt.Errorf("wrap: %w: %w", ErrTransient, errors.New("io")), true},
		{fmt.Errorf("wrap: %w", ErrInjected), false},
		{fmt.Errorf("wrap: %w", ErrNotFound), false},
		{fmt.Errorf("wrap: %w", ErrCorrupt), false},
		{fmt.Errorf("wrap: %w", ErrBreakerOpen), false},
		{errors.New("unknown"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestResilientHealsTransientFaults: a sticky read outage shorter than the
// retry budget heals invisibly — the caller sees success and the inner
// store's I/O counters count only the successful operations.
func TestResilientHealsTransientFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 5, Seed: 7}, nil)
	rs.SetSleep(noSleep)

	u := testUnit(rng)
	if err := rs.Put(u); err != nil {
		t.Fatal(err)
	}
	// Reads 1..3 fail transiently; retries 1..3 of the first Get absorb
	// them (read 4 succeeds).
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 3})
	got, err := rs.Get(u.Mode, u.Part)
	if err != nil {
		t.Fatalf("Get through outage: %v", err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("Get returned different unit")
	}
	st := rs.Stats()
	if st.Retries != 3 {
		t.Fatalf("Stats.Retries = %d, want 3", st.Retries)
	}
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("successful-op counters polluted by retries: Reads=%d Writes=%d, want 1/1", st.Reads, st.Writes)
	}
	if st.BreakerTrips != 0 {
		t.Fatalf("BreakerTrips = %d, want 0", st.BreakerTrips)
	}
}

// TestResilientBudgetExhausted: an outage longer than the budget surfaces
// the transient error with full context after MaxRetries+1 attempts.
func TestResilientBudgetExhausted(t *testing.T) {
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 2, Seed: 7}, nil)
	rs.SetSleep(noSleep)
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 1 << 40})

	_, err := rs.Get(3, 4)
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	reads, _ := faulty.Fails()
	if reads != 3 { // initial attempt + 2 retries
		t.Fatalf("attempts = %d, want 3", reads)
	}
	if got := rs.Stats().Retries; got != 2 {
		t.Fatalf("Stats.Retries = %d, want 2", got)
	}
}

// TestResilientPermanentNotRetried: permanent faults surface immediately.
func TestResilientPermanentNotRetried(t *testing.T) {
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 5, Seed: 7}, nil)
	rs.SetSleep(noSleep)
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 10, Permanent: true})

	_, err := rs.Get(0, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	reads, _ := faulty.Fails()
	if reads != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries of a permanent fault)", reads)
	}
	// ErrNotFound is permanent too — a missing unit must not burn budget.
	faulty.SetPlan(FaultPlan{})
	if _, err := rs.Get(9, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing unit: err = %v, want ErrNotFound", err)
	}
}

// TestBreakerTripsAndResets: BreakerThreshold consecutive final failures
// trip the breaker; subsequent ops fail fast with ErrBreakerOpen without
// touching the store; Reset closes it again.
func TestBreakerTripsAndResets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 1, BreakerThreshold: 3, Seed: 7}, nil)
	rs.SetSleep(noSleep)
	u := testUnit(rng)
	if err := rs.Put(u); err != nil {
		t.Fatal(err)
	}
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 1 << 40, Permanent: true})

	for i := 0; i < 3; i++ {
		if _, err := rs.Get(u.Mode, u.Part); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
		}
	}
	readsBefore, _ := faulty.Fails()
	if _, err := rs.Get(u.Mode, u.Part); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after trip: err = %v, want ErrBreakerOpen", err)
	}
	if err := rs.Put(u); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("put after trip: err = %v, want ErrBreakerOpen", err)
	}
	if readsAfter, _ := faulty.Fails(); readsAfter != readsBefore {
		t.Fatal("breaker-open op still reached the inner store")
	}
	if got := rs.Stats().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}

	faulty.SetPlan(FaultPlan{})
	rs.Reset()
	if _, err := rs.Get(u.Mode, u.Part); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestBreakerSuccessClosesStreak: interleaved successes keep the streak
// from reaching the threshold.
func TestBreakerSuccessClosesStreak(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 1, BreakerThreshold: 2, Seed: 7}, nil)
	rs.SetSleep(noSleep)
	u := testUnit(rng)
	if err := rs.Put(u); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rs.Get(9, 9); !errors.Is(err, ErrNotFound) {
			t.Fatalf("miss %d: %v", i, err)
		}
		if _, err := rs.Get(u.Mode, u.Part); err != nil {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	if got := rs.Stats().BreakerTrips; got != 0 {
		t.Fatalf("BreakerTrips = %d, want 0", got)
	}
}

// TestRetryEventsAndCounters: store.retry events and the store.retries
// counter reconcile exactly with Stats.Retries, and ResetStats leaves the
// monotonic recovery counters alone.
func TestRetryEventsAndCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	events := map[string]int{}
	reg := obs.NewRegistry()
	ob := &obs.Observer{
		Metrics: reg,
		OnEvent: func(e obs.Event) {
			mu.Lock()
			events[e.Name]++
			mu.Unlock()
		},
	}
	mem := NewMemStore()
	faulty := NewFaultyStore(mem)
	rs := Resilient(faulty, RetryPolicy{MaxRetries: 2, BreakerThreshold: 2, Seed: 7}, ob)
	rs.SetSleep(noSleep)
	u := testUnit(rng)
	if err := rs.Put(u); err != nil {
		t.Fatal(err)
	}
	// Two transient reads healed by retries, then a permanent outage that
	// trips the breaker after two exhausted budgets.
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 2})
	if _, err := rs.Get(u.Mode, u.Part); err != nil {
		t.Fatal(err)
	}
	faulty.SetPlan(FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 1 << 40})
	for i := 0; i < 2; i++ {
		if _, err := rs.Get(u.Mode, u.Part); err == nil {
			t.Fatal("expected failure")
		}
	}
	st := rs.Stats()
	if st.Retries != 6 { // 2 healed + 2×2 exhausted
		t.Fatalf("Stats.Retries = %d, want 6", st.Retries)
	}
	if st.BreakerTrips != 1 {
		t.Fatalf("Stats.BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	mu.Lock()
	defer mu.Unlock()
	if events["store.retry"] != int(st.Retries) {
		t.Fatalf("store.retry events = %d, want %d (reconcile with Stats.Retries)", events["store.retry"], st.Retries)
	}
	if events["store.breaker"] != 1 {
		t.Fatalf("store.breaker events = %d, want 1", events["store.breaker"])
	}
	if got := reg.Counter("store.retries").Load(); got != st.Retries {
		t.Fatalf("store.retries counter = %d, want %d", got, st.Retries)
	}
	if got := reg.Counter("store.breaker_trips").Load(); got != 1 {
		t.Fatalf("store.breaker_trips counter = %d, want 1", got)
	}

	rs.ResetStats()
	if after := rs.Stats(); after.Retries != st.Retries || after.BreakerTrips != st.BreakerTrips {
		t.Fatalf("ResetStats zeroed monotonic recovery counters: %+v", after)
	}
}

// TestBackoffDeterministicAndBounded: same seed, same backoff sequence;
// every wait lies in [base·2^(k-1)/2, min(cap, base·2^(k-1))].
func TestBackoffDeterministicAndBounded(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 10, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 42}
	seq := func() []time.Duration {
		r := NewRetryer(pol, nil)
		var ds []time.Duration
		for a := 1; a <= 10; a++ {
			ds = append(ds, r.backoff(a))
		}
		return ds
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff not deterministic at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
		exp := pol.BaseBackoff << uint(i)
		if exp > pol.MaxBackoff {
			exp = pol.MaxBackoff
		}
		if a[i] < exp/2 || a[i] > exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", i+1, a[i], exp/2, exp)
		}
	}
}

// TestFaultPlanDeterministic: the same seed injects faults at the same op
// indices.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() []int64 {
		mem := NewMemStore()
		faulty := NewFaultyStore(mem)
		faulty.SetPlan(FaultPlan{Seed: 5, ReadRate: 0.3})
		var failedAt []int64
		for i := int64(1); i <= 100; i++ {
			before, _ := faulty.Fails()
			faulty.Get(9, 9) // misses are fine; we only watch injection
			if after, _ := faulty.Fails(); after > before {
				failedAt = append(failedAt, i)
			}
		}
		return failedAt
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("0.3 read rate injected nothing in 100 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d at op %d vs %d", i, a[i], b[i])
		}
	}
}

// TestLatencyDeadline: LatencyStore implements DeadlineStore — an op whose
// configured latency exceeds the budget sleeps only the budget and fails
// with a retryable timeout; under budget it delegates normally.
func TestLatencyDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := NewMemStore()
	u := testUnit(rng)
	if err := mem.Put(u); err != nil {
		t.Fatal(err)
	}
	slow := WithLatency(mem, 50*time.Millisecond, 50*time.Millisecond)

	start := time.Now()
	_, err := slow.GetDeadline(u.Mode, u.Part, 5*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("over-budget read: err = %v, want ErrTimeout", err)
	}
	if !IsTransient(err) {
		t.Fatal("timeout must classify as transient (retryable)")
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("over-budget read slept %v — must sleep at most the remaining budget", elapsed)
	}
	if err := slow.PutDeadline(u, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("over-budget write: err = %v, want ErrTimeout", err)
	}
	if got, err := slow.GetDeadline(u.Mode, u.Part, time.Second); err != nil || !unitsEqual(got, u) {
		t.Fatalf("under-budget read failed: %v", err)
	}
}

// TestResilientDeadlineComposition: ResilientStore + OpTimeout over a
// LatencyStore: a slow store fails fast with timeouts (counted as
// retries), and the error that surfaces is the timeout, not a hang.
func TestResilientDeadlineComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mem := NewMemStore()
	u := testUnit(rng)
	if err := mem.Put(u); err != nil {
		t.Fatal(err)
	}
	slow := WithLatency(mem, 30*time.Millisecond, 0)
	rs := Resilient(slow, RetryPolicy{MaxRetries: 2, OpTimeout: 2 * time.Millisecond, Seed: 7}, nil)
	rs.SetSleep(noSleep)

	_, err := rs.Get(u.Mode, u.Part)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := rs.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	// Writes are unaffected (write latency 0): they pass the deadline.
	if err := rs.Put(u); err != nil {
		t.Fatalf("fast write failed: %v", err)
	}
}

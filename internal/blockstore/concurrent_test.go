package blockstore

import (
	"errors"

	"math/rand"
	"sync"
	"testing"
	"time"

	"twopcp/internal/mat"
)

// mkUnit builds a small unit whose payload encodes val so readers can
// check they observed a complete, untorn version.
func mkUnit(mode, part int, val float64) *Unit {
	a := mat.New(4, 3)
	u := mat.New(4, 3)
	for i := range a.Data {
		a.Data[i] = val
		u.Data[i] = val
	}
	return &Unit{Mode: mode, Part: part, A: a, U: map[int]*mat.Matrix{7: u}}
}

// checkWhole fails if the unit mixes payload values (a torn read).
func checkWhole(t *testing.T, u *Unit) {
	t.Helper()
	want := u.A.Data[0]
	for _, v := range u.A.Data {
		if v != want {
			t.Errorf("torn read: A mixes %g and %g", want, v)
			return
		}
	}
	for _, m := range u.U {
		for _, v := range m.Data {
			if v != want {
				t.Errorf("torn read: U mixes %g and %g", want, v)
				return
			}
		}
	}
}

// hammerStore drives the concurrent-use contract: parallel writers rewrite
// the same units with distinct payload versions while parallel readers
// assert every Get returns some complete version and a private copy.
func hammerStore(t *testing.T, store Store) {
	t.Helper()
	const units = 4
	for i := 0; i < units; i++ {
		if err := store.Put(mkUnit(0, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for version := 2; ; version++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := store.Put(mkUnit(0, rng.Intn(units), float64(version))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 200; i++ {
				u, err := store.Get(0, rng.Intn(units))
				if err != nil {
					t.Error(err)
					return
				}
				checkWhole(t, u)
				// The copy is private: scribbling on it must not leak.
				u.A.Data[0] = -1e9
			}
		}(r)
	}
	// Readers finish, then writers are told to stop.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	st := store.Stats()
	if st.Reads < 4*200 {
		t.Fatalf("reads = %d, want ≥ %d", st.Reads, 4*200)
	}
	if st.Writes < units {
		t.Fatalf("writes = %d, want ≥ %d", st.Writes, units)
	}
}

func TestMemStoreConcurrentContract(t *testing.T) {
	hammerStore(t, NewMemStore())
}

func TestFileStoreConcurrentContract(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hammerStore(t, s)
}

func TestFileStoreCompressedConcurrentContract(t *testing.T) {
	s, err := NewFileStore(t.TempDir(), WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	hammerStore(t, s)
}

func TestLatencyStoreConcurrentContract(t *testing.T) {
	hammerStore(t, WithLatency(NewMemStore(), time.Microsecond, time.Microsecond))
}

func TestFaultyStoreConcurrentCountsExactlyOneFault(t *testing.T) {
	inner := NewMemStore()
	if err := inner.Put(mkUnit(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	faulty := NewFaultyStore(inner)
	faulty.FailRead = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := faulty.Get(0, 0); errors.Is(err, ErrInjected) {
					mu.Lock()
					injected++
					mu.Unlock()
				} else if err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if injected != 1 {
		t.Fatalf("injected faults observed = %d, want exactly 1", injected)
	}
	if faulty.ReadFails != 1 {
		t.Fatalf("ReadFails = %d, want 1", faulty.ReadFails)
	}
}

// TestConcurrentStatsSnapshotsAreConsistent checks Stats never tears: the
// byte counters move together with the op counters.
func TestConcurrentStatsSnapshotsAreConsistent(t *testing.T) {
	store := NewMemStore()
	u := mkUnit(0, 0, 1)
	per := u.Bytes()
	if err := store.Put(u); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := store.Get(0, 0); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		st := store.Stats()
		if st.BytesRead != st.Reads*per {
			t.Fatalf("torn stats: %d reads but %d bytes (unit is %d bytes)", st.Reads, st.BytesRead, per)
		}
	}
	wg.Wait()
	if st := store.Stats(); st.Reads != 400 || st.BytesRead != 400*per {
		t.Fatalf("final stats %+v, want 400 reads of %d bytes", st, per)
	}
}

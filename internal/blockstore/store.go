// Package blockstore implements the out-of-core storage substrate of 2PCP,
// standing in for the chunk-based array store (SciDB/TensorDB) of the
// paper's weak-configuration experiments. It persists the Phase-2
// mode-partition data units ⟨i,ki⟩ = {A(i)_(ki); U(i)_[*,..,ki,..,*]} and
// Phase-1 tensor chunks, and counts every read and write so experiments can
// report exact I/O — the paper's primary evaluation metric.
//
// Two backends are provided: MemStore, an in-memory store with disk
// semantics (deep copies on Put/Get) for fast, precisely-counted
// simulation, and FileStore, which writes real files through
// encoding/binary for true out-of-core runs.
package blockstore

import (
	"errors"
	"fmt"
	"sync"

	"twopcp/internal/mat"
)

// Unit is the payload of one mode-partition data unit (paper Definition 4).
type Unit struct {
	Mode int // mode i
	Part int // partition ki along mode i
	// A is the sub-factor A(i)_(ki), (I_i/K_i)×F.
	A *mat.Matrix
	// U maps the linear block id of every block l in the mode-i slab
	// [*,..,ki,..,*] to its Phase-1 sub-factor U(i)_l.
	U map[int]*mat.Matrix
}

// Bytes returns the payload size in bytes (8 bytes per float64).
func (u *Unit) Bytes() int64 {
	n := int64(len(u.A.Data))
	for _, m := range u.U {
		n += int64(len(m.Data))
	}
	return n * 8
}

// clone deep-copies the unit so store and caller never alias.
func (u *Unit) clone() *Unit {
	c := &Unit{Mode: u.Mode, Part: u.Part, A: u.A.Clone(), U: make(map[int]*mat.Matrix, len(u.U))}
	for id, m := range u.U {
		c.U[id] = m.Clone()
	}
	return c
}

// Stats counts store traffic. Reads/Writes count operations; the byte
// counters accumulate payload volume.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
}

// ErrNotFound is returned by Get for units that were never Put.
var ErrNotFound = errors.New("blockstore: unit not found")

// Store persists data units and counts the I/O they generate. Stores are
// safe for concurrent use.
type Store interface {
	// Put durably records the unit, overwriting any previous version.
	Put(u *Unit) error
	// Get fetches the unit for (mode, part); the result is owned by the
	// caller (mutations do not write through).
	Get(mode, part int) (*Unit, error)
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

type unitKey struct{ mode, part int }

// MemStore is an in-memory Store with disk semantics: units are deep-copied
// on both Put and Get, so callers observe exactly the behaviour of a
// file-backed store while experiments measure pure I/O counts.
type MemStore struct {
	mu    sync.Mutex
	units map[unitKey]*Unit
	stats Stats
}

// NewMemStore returns an empty in-memory unit store.
func NewMemStore() *MemStore {
	return &MemStore{units: make(map[unitKey]*Unit)}
}

// Put implements Store.
func (s *MemStore) Put(u *Unit) error {
	c := u.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.units[unitKey{u.Mode, u.Part}] = c
	s.stats.Writes++
	s.stats.BytesWritten += c.Bytes()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(mode, part int) (*Unit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.units[unitKey{mode, part}]
	if !ok {
		return nil, fmt.Errorf("%w: ⟨%d,%d⟩", ErrNotFound, mode, part)
	}
	s.stats.Reads++
	s.stats.BytesRead += u.Bytes()
	return u.clone(), nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *MemStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.units = nil
	return nil
}

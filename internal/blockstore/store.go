// Package blockstore implements the out-of-core storage substrate of 2PCP,
// standing in for the chunk-based array store (SciDB/TensorDB) of the
// paper's weak-configuration experiments. It persists the Phase-2
// mode-partition data units ⟨i,ki⟩ = {A(i)_(ki); U(i)_[*,..,ki,..,*]} and
// Phase-1 tensor chunks, and counts every read and write so experiments can
// report exact I/O — the paper's primary evaluation metric.
//
// Two backends are provided: MemStore, an in-memory store with disk
// semantics (deep copies on Put/Get) for fast, precisely-counted
// simulation, and FileStore, which writes real files through
// encoding/binary for true out-of-core runs.
package blockstore

import (
	"errors"
	"fmt"
	"sync"

	"twopcp/internal/mat"
)

// Unit is the payload of one mode-partition data unit (paper Definition 4).
type Unit struct {
	Mode int // mode i
	Part int // partition ki along mode i
	// A is the sub-factor A(i)_(ki), (I_i/K_i)×F.
	A *mat.Matrix
	// U maps the linear block id of every block l in the mode-i slab
	// [*,..,ki,..,*] to its Phase-1 sub-factor U(i)_l.
	U map[int]*mat.Matrix
}

// Bytes returns the payload size in bytes (8 bytes per float64).
func (u *Unit) Bytes() int64 {
	n := int64(len(u.A.Data))
	for _, m := range u.U {
		n += int64(len(m.Data))
	}
	return n * 8
}

// clone deep-copies the unit so store and caller never alias.
func (u *Unit) clone() *Unit {
	c := &Unit{Mode: u.Mode, Part: u.Part, A: u.A.Clone(), U: make(map[int]*mat.Matrix, len(u.U))}
	for id, m := range u.U {
		c.U[id] = m.Clone()
	}
	return c
}

// Stats counts store traffic. Reads/Writes count operations; the byte
// counters accumulate payload volume. Reads, Writes and the byte counters
// count successful operations only, so a retried transient fault leaves
// them identical to a fault-free run — the foundation of the
// "deterministic under retry" contract. Retries and BreakerTrips are
// recovery-path counters maintained by ResilientStore; they are monotonic
// (ResetStats does not zero them) so a Result's retry total reconciles
// with the store.retry events in the trace even though the I/O counters
// are reset between run phases.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Retries      int64
	BreakerTrips int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.Retries += other.Retries
	s.BreakerTrips += other.BreakerTrips
}

// ErrNotFound is returned by Get for units that were never Put.
var ErrNotFound = errors.New("blockstore: unit not found")

// ErrCorrupt is returned by FileStore.Get for unit files that exist but
// cannot be decoded — zero-length or truncated files, bad magic, damaged
// gzip streams or absurd declared shapes. It is distinct from ErrNotFound
// so callers can tell "never written" from "written but damaged": the
// first is often a caller bug, the second is data loss that must not be
// papered over.
var ErrCorrupt = errors.New("blockstore: corrupt unit")

// Store persists data units and counts the I/O they generate.
//
// # Concurrency contract
//
// Every Store implementation in this package (MemStore, FileStore, and
// the LatencyStore/FaultyStore wrappers) is safe for concurrent use by
// multiple goroutines; the asynchronous Phase-2 pipeline issues parallel
// Gets (prefetch workers) and Puts (background write-back) against a
// single store. The guarantees callers may rely on:
//
//   - Put is atomic: a concurrent Get of the same unit observes either the
//     previous complete version or the new complete version, never a torn
//     write (MemStore swaps a deep copy under its mutex; FileStore writes
//     a temp file and renames it into place).
//   - Get returns a private copy: mutating the result never affects the
//     store or other readers, so two goroutines may fetch the same unit
//     and diverge safely.
//   - Concurrent Puts of the same unit serialize in some order; the store
//     ends up holding one complete version. Callers that need a *specific*
//     order (e.g. the buffer manager's write-backs) must sequence their
//     own Puts — the buffer manager does so by never having more than one
//     write-back of a unit in flight.
//   - Stats/ResetStats are linearizable counter snapshots. Counts of
//     operations that are in flight during a snapshot may or may not be
//     included; totals are exact once the caller has quiesced its I/O.
//   - Close must only be called after all outstanding operations have
//     drained; it is not a cancellation mechanism.
type Store interface {
	// Put durably records the unit, overwriting any previous version.
	Put(u *Unit) error
	// Get fetches the unit for (mode, part); the result is owned by the
	// caller (mutations do not write through).
	Get(mode, part int) (*Unit, error)
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// ForEachConcurrent runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the first error observed. With workers <= 1 the
// calls run inline, in order, stopping at the first error — callers that
// need deterministic store traffic (the synchronous Phase-2 paths) pass 1.
// With workers > 1 all n calls are attempted (no early cancellation) and
// the function returns once every call has finished, so the store is
// quiesced on return even on error.
func ForEachConcurrent(n, workers int, fn func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errc := make(chan error, n)
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			errc <- fn(i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

type unitKey struct{ mode, part int }

// MemStore is an in-memory Store with disk semantics: units are deep-copied
// on both Put and Get, so callers observe exactly the behaviour of a
// file-backed store while experiments measure pure I/O counts. The deep
// copies are made outside the lock on Put and the map swap is atomic, so
// concurrent readers never see a partially-copied unit.
type MemStore struct {
	mu    sync.Mutex
	units map[unitKey]*Unit
	stats Stats
}

// NewMemStore returns an empty in-memory unit store.
func NewMemStore() *MemStore {
	return &MemStore{units: make(map[unitKey]*Unit)}
}

// Put implements Store.
func (s *MemStore) Put(u *Unit) error {
	c := u.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.units[unitKey{u.Mode, u.Part}] = c
	s.stats.Writes++
	s.stats.BytesWritten += c.Bytes()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(mode, part int) (*Unit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.units[unitKey{mode, part}]
	if !ok {
		return nil, fmt.Errorf("%w: ⟨%d,%d⟩", ErrNotFound, mode, part)
	}
	s.stats.Reads++
	s.stats.BytesRead += u.Bytes()
	return u.clone(), nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *MemStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.units = nil
	return nil
}

package blockstore

import "errors"

// Transient-vs-permanent error classification. Every error a Store
// returns falls in one of two classes:
//
//   - Transient: the operation may succeed if repeated — an injected
//     probabilistic fault, a genuine I/O hiccup from the filesystem, or an
//     op deadline that expired while the store was slow. Transient errors
//     wrap ErrTransient (or ErrTimeout) and are the only errors
//     ResilientStore retries.
//   - Permanent: repeating cannot help. ErrNotFound (the unit was never
//     written — usually a caller bug), ErrCorrupt (on-disk damage; retrying
//     rereads the same damaged bytes), ErrInjected (a FaultyStore fault
//     declared permanent) and any unclassified error are permanent and
//     surface immediately.
//
// Wrappers preserve the class: every error path annotates with op,
// mode/part and cause via %w, so errors.Is sees through the context.
var (
	// ErrTransient marks a fault that may heal on retry.
	ErrTransient = errors.New("blockstore: transient fault")
	// ErrTimeout marks an operation that exceeded its per-op deadline.
	// Timeouts are transient: the store was slow, not wrong.
	ErrTimeout = errors.New("blockstore: op deadline exceeded")
	// ErrBreakerOpen is returned by ResilientStore once its circuit
	// breaker has tripped: the store keeps failing permanently, so every
	// subsequent operation fails fast instead of burning its retry budget
	// against a dead backend.
	ErrBreakerOpen = errors.New("blockstore: circuit breaker open")
)

// IsTransient reports whether err is worth retrying: it wraps
// ErrTransient or ErrTimeout. Everything else — ErrNotFound, ErrCorrupt,
// ErrInjected, ErrBreakerOpen, unclassified errors — is permanent.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}

package blockstore

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"twopcp/internal/tensor"
)

// FileStore is a Store that keeps one file per unit under a directory,
// giving genuinely out-of-core Phase-2 runs. File names are
// "unit-<mode>-<part>.tpun" (".tpun.gz" when compression is enabled —
// §VIII-C of the paper notes that on-disk compression trades CPU for I/O
// volume; the stats expose both logical and on-disk bytes so the trade can
// be measured).
type FileStore struct {
	dir      string
	compress bool
	mu       sync.Mutex
	stats    Stats
	diskW    int64 // on-disk bytes written (= logical unless compressing)
	needSync bool  // a Put renamed since the last directory sync
}

// FileStoreOption configures NewFileStore.
type FileStoreOption func(*FileStore)

// WithCompression stores units gzip-compressed.
func WithCompression() FileStoreOption {
	return func(s *FileStore) { s.compress = true }
}

// NewFileStore creates (if needed) dir and returns a store rooted there.
func NewFileStore(dir string, opts ...FileStoreOption) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	s := &FileStore{dir: dir}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

func (s *FileStore) unitPath(mode, part int) string {
	name := fmt.Sprintf("unit-%d-%d.tpun", mode, part)
	if s.compress {
		name += ".gz"
	}
	return filepath.Join(s.dir, name)
}

// Put implements Store. The unit is written to a fresh temp file,
// fsynced, and renamed into place, so concurrent Puts of the same unit
// serialize into one complete version, concurrent Gets never observe a
// torn write, and a crash right after a successful Put cannot surface
// an empty or torn unit behind the rename (the data is on disk before
// the name ever points at it). Directory-entry durability is deferred
// to Close — one dirsync covers every rename — keeping the hot
// write-back path at a single file fsync per Put.
func (s *FileStore) Put(u *Unit) error {
	path := s.unitPath(u.Mode, u.Part)
	// Genuine filesystem errors on the write path are classified
	// transient (wrapping ErrTransient alongside the cause, so errors.Is
	// sees both): a retried Put starts over from a fresh temp file, so
	// repeating is safe and often heals NFS-style hiccups.
	transient := func(stage string, err error) error {
		return fmt.Errorf("blockstore: put ⟨%d,%d⟩ (%s): %w: %w", u.Mode, u.Part, stage, ErrTransient, err)
	}
	f, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return transient("create", err)
	}
	tmp := f.Name()
	var encodeErr error
	if s.compress {
		zw := gzip.NewWriter(f)
		encodeErr = EncodeUnit(zw, u)
		if err := zw.Close(); encodeErr == nil && err != nil {
			encodeErr = fmt.Errorf("gzip: %w", err)
		}
	} else {
		encodeErr = EncodeUnit(f, u)
	}
	if encodeErr == nil {
		if err := f.Sync(); err != nil {
			encodeErr = fmt.Errorf("sync: %w", err)
		}
	}
	if encodeErr != nil {
		f.Close()
		os.Remove(tmp)
		return transient("encode", encodeErr)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return transient("close", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return transient("rename", err)
	}
	var disk int64
	if fi, err := os.Stat(path); err == nil {
		disk = fi.Size()
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += u.Bytes()
	s.diskW += disk
	s.needSync = true
	s.mu.Unlock()
	return nil
}

// Get implements Store. A unit file that exists but cannot be decoded —
// zero-length, truncated mid-matrix, wrong magic, a damaged gzip stream or
// a header declaring an absurd shape — yields ErrCorrupt rather than a raw
// decode error (or, worse, an attempted allocation sized by garbage): Puts
// are atomic, so a file in that state means on-disk damage, not an
// in-progress write.
func (s *FileStore) Get(mode, part int) (*Unit, error) {
	f, err := os.Open(s.unitPath(mode, part))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: ⟨%d,%d⟩", ErrNotFound, mode, part)
		}
		// Not a missing file, not damage — an open that failed for
		// environmental reasons (fd pressure, a flaky mount) may succeed
		// on retry.
		return nil, fmt.Errorf("blockstore: get ⟨%d,%d⟩ (open): %w: %w", mode, part, ErrTransient, err)
	}
	defer f.Close()
	corrupt := func(err error) error {
		return fmt.Errorf("%w: ⟨%d,%d⟩ (%s): %v", ErrCorrupt, mode, part, s.unitPath(mode, part), err)
	}
	// Bound decode allocations by what the file could actually contain, so
	// a garbage header cannot size a multi-gigabyte allocation. 1032:1 is
	// deflate's maximum expansion ratio.
	var limit int64
	if fi, err := f.Stat(); err == nil {
		limit = fi.Size()
		if s.compress {
			limit *= 1032
		}
	}
	var u *Unit
	if s.compress {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, corrupt(err)
		}
		u, err = DecodeUnitWithin(zr, limit)
		if err != nil {
			return nil, corrupt(err)
		}
		if err := zr.Close(); err != nil {
			return nil, corrupt(err)
		}
	} else {
		u, err = DecodeUnitWithin(f, limit)
		if err != nil {
			return nil, corrupt(err)
		}
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += u.Bytes()
	s.mu.Unlock()
	return u, nil
}

// DiskBytesWritten reports the cumulative on-disk bytes of all Puts (lower
// than Stats().BytesWritten when compression is on).
func (s *FileStore) DiskBytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskW
}

// Stats implements Store.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// syncDir flushes the directory entries so completed renames survive a
// crash.
func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("blockstore: dirsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("blockstore: dirsync: %w", err)
	}
	return nil
}

// Close implements Store. The files are left on disk; callers that want
// cleanup should remove the directory. Close performs the deferred
// directory sync covering every rename since the last Close and reports
// its failure — the one durability error Put does not surface itself.
func (s *FileStore) Close() error {
	s.mu.Lock()
	dirty := s.needSync
	s.needSync = false
	s.mu.Unlock()
	if !dirty {
		return nil
	}
	return s.syncDir()
}

// ChunkStore persists dense tensor chunks (Phase-1 input blocks), one file
// per block position, standing in for TensorDB's chunked array storage.
type ChunkStore struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// NewChunkStore creates (if needed) dir and returns a chunk store.
func NewChunkStore(dir string) (*ChunkStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	return &ChunkStore{dir: dir}, nil
}

func (s *ChunkStore) chunkPath(vec []int) string {
	name := "chunk"
	for _, v := range vec {
		name += fmt.Sprintf("-%d", v)
	}
	return filepath.Join(s.dir, name+".tpdn")
}

// PutChunk writes the dense block stored at grid position vec. Write
// failures are transient (SaveDense writes a fresh file; repeating is
// safe).
func (s *ChunkStore) PutChunk(vec []int, t *tensor.Dense) error {
	if err := tensor.SaveDense(s.chunkPath(vec), t); err != nil {
		return fmt.Errorf("blockstore: put chunk %v: %w: %w", vec, ErrTransient, err)
	}
	s.mu.Lock()
	s.stats.Writes++
	s.stats.BytesWritten += int64(len(t.Data)) * 8
	s.mu.Unlock()
	return nil
}

// GetChunk reads the dense block stored at grid position vec. A missing
// chunk is permanent (it was never written — a caller bug); other read
// failures are transient.
func (s *ChunkStore) GetChunk(vec []int) (*tensor.Dense, error) {
	t, err := tensor.LoadDense(s.chunkPath(vec))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("blockstore: chunk %v: %w", vec, err)
		}
		return nil, fmt.Errorf("blockstore: get chunk %v: %w: %w", vec, ErrTransient, err)
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += int64(len(t.Data)) * 8
	s.mu.Unlock()
	return t, nil
}

// Stats returns a snapshot of the chunk I/O counters.
func (s *ChunkStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

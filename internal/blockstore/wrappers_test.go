package blockstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"twopcp/internal/mat"
)

func TestWriteReadMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := mat.Random(5, 3, rng)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("matrix codec round trip failed")
	}
}

func TestReadMatrixErrors(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Negative shape.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0})
	if _, err := ReadMatrix(&buf); err == nil {
		t.Fatal("negative shape accepted")
	}
}

func TestFaultyStorePassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := testUnit(rng)
	s := NewFaultyStore(NewMemStore())
	if err := s.Put(u); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(u.Mode, u.Part)
	if err != nil {
		t.Fatal(err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("passthrough altered the unit")
	}
	if st := s.Stats(); st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Reads != 0 {
		t.Fatal("ResetStats did not pass through")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyStoreInjectsAtIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	u := testUnit(rng)
	s := NewFaultyStore(NewMemStore())
	s.FailWrite = 2
	s.FailRead = 3
	if err := s.Put(u); err != nil {
		t.Fatal(err) // write 1 passes
	}
	if err := s.Put(u); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: err = %v", err) // write 2 fails
	}
	if err := s.Put(u); err != nil {
		t.Fatal(err) // write 3 passes again
	}
	for i := 1; i <= 4; i++ {
		_, err := s.Get(u.Mode, u.Part)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: err = %v, want injected", i, err)
			}
		} else if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if s.ReadFails != 1 || s.WriteFails != 1 {
		t.Fatalf("fail counters = %d/%d", s.ReadFails, s.WriteFails)
	}
}

func TestLatencyStoreDelaysAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	u := testUnit(rng)
	s := WithLatency(NewMemStore(), 3*time.Millisecond, 2*time.Millisecond)
	start := time.Now()
	if err := s.Put(u); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(u.Mode, u.Part); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Fatalf("latency not injected: %v", elapsed)
	}
	if got := s.Waited(); got != 5*time.Millisecond {
		t.Fatalf("Waited = %v, want 5ms", got)
	}
	if st := s.Stats(); st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats passthrough = %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Writes != 0 {
		t.Fatal("ResetStats did not pass through")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyStoreZeroLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	u := testUnit(rng)
	s := WithLatency(NewMemStore(), 0, 0)
	if err := s.Put(u); err != nil {
		t.Fatal(err)
	}
	if s.Waited() != 0 {
		t.Fatal("zero latency should not accumulate wait")
	}
}

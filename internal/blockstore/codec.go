package blockstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"twopcp/internal/mat"
)

// Binary layout of a serialized unit (little-endian):
//
//	magic "TPUN"
//	int32 mode, int32 part
//	matrix A            (int32 rows, int32 cols, rows·cols float64)
//	int32 number of U entries
//	per entry: int32 block id, matrix
//
// Entries are written in ascending block-id order so the encoding is
// deterministic (useful for content comparison in tests).
const unitMagic = "TPUN"

// WriteMatrix serializes one matrix (int32 rows, int32 cols, float64 data,
// little-endian); shared with Phase-1's MapReduce sub-factor shuffle.
func WriteMatrix(w io.Writer, m *mat.Matrix) error { return writeMatrix(w, m) }

// ReadMatrix deserializes a matrix written by WriteMatrix.
func ReadMatrix(r io.Reader) (*mat.Matrix, error) { return readMatrix(r) }

func writeMatrix(w io.Writer, m *mat.Matrix) error {
	hdr := [2]int32{int32(m.Rows), int32(m.Cols)}
	if err := binary.Write(w, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("blockstore: write matrix header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, m.Data); err != nil {
		return fmt.Errorf("blockstore: write matrix data: %w", err)
	}
	return nil
}

// maxDecodeBytes is the fallback matrix-payload budget when the caller
// cannot bound the decode by an actual file size (2^34 bytes = 16 GiB of
// float64). FileStore.Get always can, and passes the file's size instead,
// so a damaged header can never trigger an allocation the file could not
// possibly back.
const maxDecodeBytes = int64(1) << 34

func readMatrix(r io.Reader) (*mat.Matrix, error) {
	budget := maxDecodeBytes
	return readMatrixBudget(r, &budget)
}

// readMatrixBudget decodes one matrix, charging its declared payload
// against *budget before allocating: a header that declares more float64
// data than the budget has left is corrupt by construction (the budget is
// the file size when known), and failing here turns what would be a fatal
// multi-gigabyte allocation attempt into an ordinary decode error.
func readMatrixBudget(r io.Reader, budget *int64) (*mat.Matrix, error) {
	var hdr [2]int32
	if err := binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("blockstore: read matrix header: %w", err)
	}
	if hdr[0] < 0 || hdr[1] < 0 {
		return nil, fmt.Errorf("blockstore: negative matrix shape %d×%d", hdr[0], hdr[1])
	}
	// Compare in elements to stay overflow-safe: rows·cols of two int32s
	// fits int64, but the byte count may not.
	elems := int64(hdr[0]) * int64(hdr[1])
	if elems > *budget/8 {
		return nil, fmt.Errorf("blockstore: matrix shape %d×%d declares %d elements, more than the %d-byte decode budget holds (corrupt header?)",
			hdr[0], hdr[1], elems, *budget)
	}
	*budget -= elems * 8
	m := mat.New(int(hdr[0]), int(hdr[1]))
	if err := binary.Read(r, binary.LittleEndian, m.Data); err != nil {
		return nil, fmt.Errorf("blockstore: read matrix data: %w", err)
	}
	return m, nil
}

// EncodeUnit serializes u to w.
func EncodeUnit(w io.Writer, u *Unit) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(unitMagic); err != nil {
		return fmt.Errorf("blockstore: write magic: %w", err)
	}
	hdr := [2]int32{int32(u.Mode), int32(u.Part)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("blockstore: write unit header: %w", err)
	}
	if err := writeMatrix(bw, u.A); err != nil {
		return err
	}
	ids := make([]int, 0, len(u.U))
	for id := range u.U {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(bw, binary.LittleEndian, int32(len(ids))); err != nil {
		return fmt.Errorf("blockstore: write U count: %w", err)
	}
	for _, id := range ids {
		if err := binary.Write(bw, binary.LittleEndian, int32(id)); err != nil {
			return fmt.Errorf("blockstore: write block id: %w", err)
		}
		if err := writeMatrix(bw, u.U[id]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeUnit deserializes a unit from r with the fallback decode budget.
func DecodeUnit(r io.Reader) (*Unit, error) {
	return DecodeUnitWithin(r, maxDecodeBytes)
}

// DecodeUnitWithin deserializes a unit whose total matrix payload cannot
// exceed maxBytes. FileStore.Get passes the unit file's actual size
// (scaled by the maximum deflate expansion for compressed stores), so
// corrupt headers fail cleanly instead of sizing allocations from garbage.
func DecodeUnitWithin(r io.Reader, maxBytes int64) (*Unit, error) {
	if maxBytes <= 0 || maxBytes > maxDecodeBytes {
		maxBytes = maxDecodeBytes
	}
	budget := maxBytes
	br := bufio.NewReader(r)
	magic := make([]byte, len(unitMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("blockstore: read magic: %w", err)
	}
	if string(magic) != unitMagic {
		return nil, fmt.Errorf("blockstore: bad magic %q", magic)
	}
	var hdr [2]int32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("blockstore: read unit header: %w", err)
	}
	a, err := readMatrixBudget(br, &budget)
	if err != nil {
		return nil, err
	}
	var n int32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("blockstore: read U count: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("blockstore: negative U count %d", n)
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("blockstore: U count %d is implausibly large (corrupt header?)", n)
	}
	u := &Unit{Mode: int(hdr[0]), Part: int(hdr[1]), A: a, U: make(map[int]*mat.Matrix, n)}
	for i := int32(0); i < n; i++ {
		var id int32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("blockstore: read block id: %w", err)
		}
		m, err := readMatrixBudget(br, &budget)
		if err != nil {
			return nil, err
		}
		u.U[int(id)] = m
	}
	return u, nil
}

package blockstore

import (
	"fmt"
	"sync"
	"time"
)

// LatencyStore wraps a Store and adds a fixed latency to every read and
// write, modeling the disk/network cost of moving a data unit. The paper's
// footnote 5 observes that swapping a block costs ~3× the in-memory work on
// it; experiments calibrate the delay accordingly so wall-clock comparisons
// (Table II) are I/O-bound like the original system.
type LatencyStore struct {
	inner Store
	read  time.Duration
	write time.Duration

	mu      sync.Mutex
	waited  time.Duration
	sleeper func(time.Duration) // test seam; defaults to time.Sleep
}

// WithLatency wraps inner so every Get costs read and every Put costs write.
func WithLatency(inner Store, read, write time.Duration) *LatencyStore {
	return &LatencyStore{inner: inner, read: read, write: write, sleeper: time.Sleep}
}

func (s *LatencyStore) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.waited += d
	sleep := s.sleeper
	s.mu.Unlock()
	sleep(d)
}

// Put implements Store.
func (s *LatencyStore) Put(u *Unit) error {
	s.delay(s.write)
	return s.inner.Put(u)
}

// Get implements Store.
func (s *LatencyStore) Get(mode, part int) (*Unit, error) {
	s.delay(s.read)
	return s.inner.Get(mode, part)
}

// Stats implements Store.
func (s *LatencyStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *LatencyStore) ResetStats() { s.inner.ResetStats() }

// Close implements Store.
func (s *LatencyStore) Close() error { return s.inner.Close() }

// Waited returns the cumulative injected latency (for reporting the I/O
// share of a run's wall time).
func (s *LatencyStore) Waited() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waited
}

// GetDeadline implements DeadlineStore: when the injected read latency
// exceeds the budget, the store sleeps only the remaining budget and
// fails with ErrTimeout (transient — the data is fine, the store was
// slow); otherwise it sleeps the full latency and delegates, passing the
// remaining budget down when the inner store also honors deadlines.
func (s *LatencyStore) GetDeadline(mode, part int, budget time.Duration) (*Unit, error) {
	if s.read >= budget {
		s.delay(budget)
		return nil, fmt.Errorf("%w: get ⟨%d,%d⟩ (%v latency over %v budget)",
			ErrTimeout, mode, part, s.read, budget)
	}
	s.delay(s.read)
	if ds, ok := s.inner.(DeadlineStore); ok {
		return ds.GetDeadline(mode, part, budget-s.read)
	}
	return s.inner.Get(mode, part)
}

// PutDeadline implements DeadlineStore; see GetDeadline.
func (s *LatencyStore) PutDeadline(u *Unit, budget time.Duration) error {
	if s.write >= budget {
		s.delay(budget)
		return fmt.Errorf("%w: put ⟨%d,%d⟩ (%v latency over %v budget)",
			ErrTimeout, u.Mode, u.Part, s.write, budget)
	}
	s.delay(s.write)
	if ds, ok := s.inner.(DeadlineStore); ok {
		return ds.PutDeadline(u, budget-s.write)
	}
	return s.inner.Put(u)
}

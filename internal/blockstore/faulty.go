package blockstore

import (
	"errors"
	"sync"
)

// ErrInjected marks a fault produced by a FaultyStore.
var ErrInjected = errors.New("blockstore: injected fault")

// FaultyStore wraps a Store and fails the n-th read and/or write with
// ErrInjected — a failure-injection harness for exercising the error paths
// of Phase 2 and the buffer manager (a real disk can fail mid-run; the
// engine must surface that instead of corrupting factors).
type FaultyStore struct {
	inner Store

	mu         sync.Mutex
	reads      int64
	writes     int64
	FailRead   int64 // 1-based index of the read to fail; 0 = never
	FailWrite  int64 // 1-based index of the write to fail; 0 = never
	ReadFails  int64 // count of injected read failures
	WriteFails int64 // count of injected write failures
}

// NewFaultyStore wraps inner; configure FailRead/FailWrite before use.
func NewFaultyStore(inner Store) *FaultyStore {
	return &FaultyStore{inner: inner}
}

// Put implements Store.
func (s *FaultyStore) Put(u *Unit) error {
	s.mu.Lock()
	s.writes++
	fail := s.FailWrite > 0 && s.writes == s.FailWrite
	if fail {
		s.WriteFails++
	}
	s.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return s.inner.Put(u)
}

// Get implements Store.
func (s *FaultyStore) Get(mode, part int) (*Unit, error) {
	s.mu.Lock()
	s.reads++
	fail := s.FailRead > 0 && s.reads == s.FailRead
	if fail {
		s.ReadFails++
	}
	s.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	return s.inner.Get(mode, part)
}

// Stats implements Store.
func (s *FaultyStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *FaultyStore) ResetStats() { s.inner.ResetStats() }

// Close implements Store.
func (s *FaultyStore) Close() error { return s.inner.Close() }

package blockstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected marks a permanent fault produced by a FaultyStore.
var ErrInjected = errors.New("blockstore: injected fault")

// FaultPlan programs a FaultyStore beyond the legacy "fail the n-th op
// once" fields: seeded probabilistic faults and outage windows, so chaos
// runs are reproducible from a single seed.
//
// Three fault shapes compose:
//
//   - Probabilistic: each read (write) fails independently with
//     ReadRate (WriteRate) probability, decided by a rand.Rand seeded
//     with Seed — the model of a flaky network or storage backend.
//   - Sticky outage: every read with 1-based op index in
//     [ReadOutageFrom, ReadOutageFrom+ReadOutageLen) fails (likewise for
//     writes) — the model of a backend that goes down and comes back
//     (transient-then-heal), or, with a huge Len, one that never heals.
//   - Permanent: when set, injected faults wrap ErrInjected (permanent,
//     never retried) instead of ErrTransient — the model of poison data.
type FaultPlan struct {
	// Seed drives the probabilistic fault decisions.
	Seed int64
	// ReadRate and WriteRate are per-op fault probabilities in [0,1).
	ReadRate  float64
	WriteRate float64
	// Outage windows over 1-based op indices; Len 0 disables.
	ReadOutageFrom  int64
	ReadOutageLen   int64
	WriteOutageFrom int64
	WriteOutageLen  int64
	// Permanent makes injected faults wrap ErrInjected instead of
	// ErrTransient.
	Permanent bool
}

// enabled reports whether the plan injects anything.
func (p FaultPlan) enabled() bool {
	return p.ReadRate > 0 || p.WriteRate > 0 || p.ReadOutageLen > 0 || p.WriteOutageLen > 0
}

// FaultyStore wraps a Store and injects failures — a failure-injection
// harness for exercising the recovery paths of Phase 2 and the buffer
// manager (a real disk can fail mid-run; the engine must recover or
// surface that instead of corrupting factors).
//
// Two generations of programming coexist: the legacy FailRead/FailWrite
// fields fail the n-th operation once with a permanent ErrInjected
// (preserved for the deterministic error-path tests), and SetPlan
// installs a seeded FaultPlan of probabilistic and outage faults, by
// default transient (wrapping ErrTransient) so ResilientStore retries
// heal them.
type FaultyStore struct {
	inner Store

	mu         sync.Mutex
	rng        *rand.Rand
	plan       FaultPlan
	reads      int64
	writes     int64
	FailRead   int64 // 1-based index of the read to fail; 0 = never
	FailWrite  int64 // 1-based index of the write to fail; 0 = never
	ReadFails  int64 // count of injected read failures
	WriteFails int64 // count of injected write failures
}

// NewFaultyStore wraps inner; configure FailRead/FailWrite or SetPlan
// before use.
func NewFaultyStore(inner Store) *FaultyStore {
	return &FaultyStore{inner: inner}
}

// SetPlan installs (or, with a zero plan, clears) a fault program. Not
// safe to call concurrently with operations.
func (s *FaultyStore) SetPlan(p FaultPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
	if p.enabled() {
		s.rng = rand.New(rand.NewSource(p.Seed))
	} else {
		s.rng = nil
	}
}

// inject decides under the mutex whether op index n of kind "get"/"put"
// fails, and returns the injected error (nil = pass through).
func (s *FaultyStore) inject(kind string, n int64, legacy bool, rate float64, outFrom, outLen int64, mode, part int) error {
	fail := legacy
	if !fail && outLen > 0 && n >= outFrom && n < outFrom+outLen {
		fail = true
	}
	if !fail && rate > 0 && s.rng != nil && s.rng.Float64() < rate {
		fail = true
	}
	if !fail {
		return nil
	}
	if kind == "get" {
		s.ReadFails++
	} else {
		s.WriteFails++
	}
	if legacy || s.plan.Permanent {
		return fmt.Errorf("%w: %s ⟨%d,%d⟩ (op %d)", ErrInjected, kind, mode, part, n)
	}
	return fmt.Errorf("%w: injected %s fault ⟨%d,%d⟩ (op %d)", ErrTransient, kind, mode, part, n)
}

// Put implements Store.
func (s *FaultyStore) Put(u *Unit) error {
	s.mu.Lock()
	s.writes++
	err := s.inject("put", s.writes, s.FailWrite > 0 && s.writes == s.FailWrite,
		s.plan.WriteRate, s.plan.WriteOutageFrom, s.plan.WriteOutageLen, u.Mode, u.Part)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.inner.Put(u)
}

// Get implements Store.
func (s *FaultyStore) Get(mode, part int) (*Unit, error) {
	s.mu.Lock()
	s.reads++
	err := s.inject("get", s.reads, s.FailRead > 0 && s.reads == s.FailRead,
		s.plan.ReadRate, s.plan.ReadOutageFrom, s.plan.ReadOutageLen, mode, part)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.inner.Get(mode, part)
}

// Fails returns the injected read and write failure counts.
func (s *FaultyStore) Fails() (reads, writes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ReadFails, s.WriteFails
}

// Stats implements Store.
func (s *FaultyStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *FaultyStore) ResetStats() { s.inner.ResetStats() }

// Close implements Store.
func (s *FaultyStore) Close() error { return s.inner.Close() }

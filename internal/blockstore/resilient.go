package blockstore

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"twopcp/internal/obs"
)

// RetryPolicy configures the resilience layer: how many times a transient
// fault is retried, how backoff grows between attempts, the per-op
// deadline, and when the circuit breaker gives up on the store entirely.
// The zero value disables retries and deadlines (Enabled() == false);
// MaxRetries > 0 or OpTimeout > 0 turns the layer on with sane defaults
// for the unset knobs.
//
// The policy is an execution knob like Workers or PrefetchDepth: it can
// change what a run survives, never what it computes. Retried operations
// leave Stats' Reads/Writes/Bytes counters and the deterministic trace
// events untouched (only successful operations count), so factors,
// FitTrace and swap counts are bit-identical to a fault-free run — and
// the policy is excluded from the runstate fingerprint, so a resumed run
// may use a different policy than the run that wrote the checkpoint.
type RetryPolicy struct {
	// MaxRetries is the per-operation retry budget for transient faults;
	// 0 disables retrying (the first error surfaces).
	MaxRetries int
	// BaseBackoff is the first retry's backoff; it doubles per attempt up
	// to MaxBackoff. Defaults: 1ms base, 100ms cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpTimeout is the per-operation deadline, enforced cooperatively:
	// stores implementing DeadlineStore (e.g. LatencyStore) bound their
	// own work by it; stores without deadline support run to completion.
	// 0 disables deadlines.
	OpTimeout time.Duration
	// BreakerThreshold is the number of consecutive operations that must
	// fail permanently (a permanent fault, or a transient fault that
	// exhausted its retry budget) before the breaker trips to fail-fast.
	// Defaults to 8 when 0.
	BreakerThreshold int
	// Seed drives the deterministic backoff jitter.
	Seed int64
}

// Enabled reports whether the policy does anything at all.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 || p.OpTimeout > 0 }

// withDefaults fills the unset knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 8
	}
	return p
}

// Retryer executes operations under a RetryPolicy: transient failures
// (IsTransient) are retried up to the budget with capped exponential
// backoff and deterministic seeded jitter; permanent failures surface
// immediately. It is the retry core shared by ResilientStore and Phase
// 1's per-block source reads, so both layers emit the same store.retry
// events and count retries the same way.
type Retryer struct {
	pol     RetryPolicy
	ob      *obs.Observer
	retries *obs.Counter

	mu       sync.Mutex
	rng      *rand.Rand
	sleep    func(time.Duration) // test seam; defaults to time.Sleep
	nRetries int64
}

// NewRetryer returns a retryer for pol. A nil observer is valid (metrics
// and events are skipped).
func NewRetryer(pol RetryPolicy, ob *obs.Observer) *Retryer {
	pol = pol.withDefaults()
	return &Retryer{
		pol:     pol,
		ob:      ob,
		retries: ob.Counter("store.retries"),
		rng:     rand.New(rand.NewSource(pol.Seed)),
		sleep:   time.Sleep,
	}
}

// Policy returns the (defaults-filled) policy the retryer runs under.
func (r *Retryer) Policy() RetryPolicy { return r.pol }

// Retries returns the cumulative number of retry attempts performed.
func (r *Retryer) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nRetries
}

// Do runs op, retrying transient errors up to the budget. opName and
// mode/part annotate the emitted store.retry events (Phase 1 passes the
// block id as part with mode -1). The returned error is op's last error:
// permanent immediately, or transient with the budget exhausted.
func (r *Retryer) Do(opName string, mode, part int, op func() error) error {
	err := op()
	for attempt := 1; err != nil && IsTransient(err) && attempt <= r.pol.MaxRetries; attempt++ {
		d := r.backoff(attempt)
		r.note(opName, mode, part, attempt, d, err)
		r.sleep(d)
		err = op()
	}
	return err
}

// backoff returns the wait before retry `attempt` (1-based): exponential
// from BaseBackoff, capped at MaxBackoff, with seeded jitter in
// [d/2, d] so concurrent retries decorrelate reproducibly.
func (r *Retryer) backoff(attempt int) time.Duration {
	d := r.pol.MaxBackoff
	if attempt-1 < 20 { // beyond 2^20× base the cap always wins
		if e := r.pol.BaseBackoff << uint(attempt-1); e < d {
			d = e
		}
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// note counts and traces one retry attempt.
func (r *Retryer) note(opName string, mode, part, attempt int, backoff time.Duration, err error) {
	r.mu.Lock()
	r.nRetries++
	r.mu.Unlock()
	if r.retries != nil {
		r.retries.Inc()
	}
	if r.ob.Tracing() {
		r.ob.Emit("store.retry",
			obs.Str("op", opName), obs.Int("mode", mode), obs.Int("part", part),
			obs.Int("attempt", attempt), obs.I64("backoff_ns", int64(backoff)),
			obs.Str("error", err.Error()))
	}
}

// DeadlineStore is the optional interface through which ResilientStore
// enforces per-op deadlines cooperatively: the store bounds its own work
// by the budget (sleeping at most the remainder, returning an error
// wrapping ErrTimeout when it expires) instead of being raced by a
// watchdog goroutine — no goroutine leaks, no abandoned I/O mutating
// state after the caller moved on. Stores that do not implement it run
// their operations to completion; the deadline is then simply not
// enforced at that layer.
type DeadlineStore interface {
	GetDeadline(mode, part int, budget time.Duration) (*Unit, error)
	PutDeadline(u *Unit, budget time.Duration) error
}

// ResilientStore wraps a Store with the recovery mechanisms a remote or
// failure-prone backend needs: per-op deadlines (cooperative, via
// DeadlineStore), capped exponential backoff with deterministic seeded
// jitter, a per-op retry budget for transient faults, and a circuit
// breaker that trips to fail-fast once BreakerThreshold consecutive
// operations have failed permanently. Retries and breaker trips are
// counted in Stats (monotonically — ResetStats does not zero them, so
// run totals reconcile with the trace) and emitted as store.retry /
// store.breaker events.
type ResilientStore struct {
	inner Store
	pol   RetryPolicy
	retry *Retryer
	ob    *obs.Observer
	trips *obs.Counter

	mu          sync.Mutex
	consecutive int
	open        bool
	nTrips      int64
}

// Resilient wraps inner under pol. A nil observer is valid.
func Resilient(inner Store, pol RetryPolicy, ob *obs.Observer) *ResilientStore {
	return &ResilientStore{
		inner: inner,
		pol:   pol.withDefaults(),
		retry: NewRetryer(pol, ob),
		ob:    ob,
		trips: ob.Counter("store.breaker_trips"),
	}
}

// SetSleep replaces the backoff sleeper (test seam).
func (s *ResilientStore) SetSleep(f func(time.Duration)) {
	s.retry.mu.Lock()
	s.retry.sleep = f
	s.retry.mu.Unlock()
}

// checkBreaker fails fast while the breaker is open.
func (s *ResilientStore) checkBreaker(opName string, mode, part int) error {
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	if open {
		return fmt.Errorf("%w: %s ⟨%d,%d⟩", ErrBreakerOpen, opName, mode, part)
	}
	return nil
}

// record updates the breaker after an operation's final outcome: success
// closes the failure streak; a final failure (permanent, or transient
// with the budget spent) lengthens it and trips the breaker at the
// threshold. The breaker stays open until Reset — fail-fast is the point:
// once the store is known dead, burning every caller's full retry budget
// against it only delays the surfacing error.
func (s *ResilientStore) record(opName string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.consecutive = 0
		return
	}
	s.consecutive++
	if s.consecutive >= s.pol.BreakerThreshold && !s.open {
		s.open = true
		s.nTrips++
		if s.trips != nil {
			s.trips.Inc()
		}
		if s.ob.Tracing() {
			s.ob.Emit("store.breaker",
				obs.Str("state", "open"), obs.Str("op", opName),
				obs.Int("consecutive", s.consecutive))
		}
	}
}

// Reset closes the breaker and zeroes the failure streak, for callers
// that have independently established the store is healthy again.
func (s *ResilientStore) Reset() {
	s.mu.Lock()
	s.open = false
	s.consecutive = 0
	s.mu.Unlock()
}

// get runs one read attempt, threading the deadline when the inner store
// cooperates.
func (s *ResilientStore) get(mode, part int) (*Unit, error) {
	if d := s.pol.OpTimeout; d > 0 {
		if ds, ok := s.inner.(DeadlineStore); ok {
			return ds.GetDeadline(mode, part, d)
		}
	}
	return s.inner.Get(mode, part)
}

// put runs one write attempt, threading the deadline when the inner store
// cooperates.
func (s *ResilientStore) put(u *Unit) error {
	if d := s.pol.OpTimeout; d > 0 {
		if ds, ok := s.inner.(DeadlineStore); ok {
			return ds.PutDeadline(u, d)
		}
	}
	return s.inner.Put(u)
}

// Get implements Store.
func (s *ResilientStore) Get(mode, part int) (*Unit, error) {
	if err := s.checkBreaker("get", mode, part); err != nil {
		return nil, err
	}
	var u *Unit
	err := s.retry.Do("get", mode, part, func() error {
		var e error
		u, e = s.get(mode, part)
		return e
	})
	s.record("get", err)
	if err != nil {
		return nil, fmt.Errorf("blockstore: get ⟨%d,%d⟩: %w", mode, part, err)
	}
	return u, nil
}

// Put implements Store.
func (s *ResilientStore) Put(u *Unit) error {
	if err := s.checkBreaker("put", u.Mode, u.Part); err != nil {
		return err
	}
	err := s.retry.Do("put", u.Mode, u.Part, func() error {
		return s.put(u)
	})
	s.record("put", err)
	if err != nil {
		return fmt.Errorf("blockstore: put ⟨%d,%d⟩: %w", u.Mode, u.Part, err)
	}
	return nil
}

// Stats implements Store: the inner store's counters plus this layer's
// monotonic recovery counters.
func (s *ResilientStore) Stats() Stats {
	st := s.inner.Stats()
	st.Retries += s.retry.Retries()
	s.mu.Lock()
	st.BreakerTrips += s.nTrips
	s.mu.Unlock()
	return st
}

// ResetStats implements Store. Only the inner store's I/O counters reset;
// Retries/BreakerTrips stay monotonic (see Stats).
func (s *ResilientStore) ResetStats() { s.inner.ResetStats() }

// Close implements Store.
func (s *ResilientStore) Close() error { return s.inner.Close() }

package blockstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp/internal/mat"
)

func corruptTestUnit() *Unit {
	rng := rand.New(rand.NewSource(1))
	return &Unit{
		Mode: 1, Part: 2,
		A: mat.Random(6, 3, rng),
		U: map[int]*mat.Matrix{0: mat.Random(6, 3, rng), 4: mat.Random(6, 3, rng)},
	}
}

// TestFileStoreGetCorruptUnit pins the typed-error contract: every way a
// unit file can be damaged on disk — zero-length, truncated at several
// depths, wrong magic, garbage header sizes, a broken gzip stream —
// surfaces as ErrCorrupt from Get, never as a panic, an allocation blowup
// or an untyped decode error. ErrNotFound stays reserved for units that
// were never written.
func TestFileStoreGetCorruptUnit(t *testing.T) {
	newStore := func(t *testing.T, opts ...FileStoreOption) (*FileStore, string) {
		t.Helper()
		dir := t.TempDir()
		s, err := NewFileStore(dir, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(corruptTestUnit()); err != nil {
			t.Fatal(err)
		}
		return s, filepath.Join(dir, "unit-1-2.tpun")
	}

	t.Run("zero-length", func(t *testing.T) {
		s, path := newStore(t)
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("zero-length unit: %v", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		s, path := newStore(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, keep := range []int{1, 3, 4, 9, 12, len(data) / 2, len(data) - 1} {
			if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d bytes: %v", keep, err)
			}
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		s, path := newStore(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		copy(data, "XXXX")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: %v", err)
		}
	})

	t.Run("absurd-shape", func(t *testing.T) {
		// Headers declaring matrices the file could not possibly back must
		// fail cleanly instead of attempting the allocation — both the
		// astronomically large (~2^60 elements) and the "plausible" kind
		// (40000×50000 ≈ 16 GB) that a loose element cap would wave through.
		s, path := newStore(t)
		for _, shape := range [][2]int32{{1 << 30, 1 << 30}, {40000, 50000}} {
			var buf bytes.Buffer
			buf.WriteString("TPUN")
			binary.Write(&buf, binary.LittleEndian, [2]int32{1, 2}) // mode, part
			binary.Write(&buf, binary.LittleEndian, shape)
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("absurd shape %v: %v", shape, err)
			}
		}
	})

	t.Run("gzip-damage", func(t *testing.T) {
		dir := t.TempDir()
		s, err := NewFileStore(dir, WithCompression())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(corruptTestUnit()); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "unit-1-2.tpun.gz")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Zero-length compressed file.
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("zero-length gzip unit: %v", err)
		}
		// Truncated compressed stream.
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(1, 2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated gzip unit: %v", err)
		}
	})

	t.Run("missing-stays-not-found", func(t *testing.T) {
		s, _ := newStore(t)
		_, err := s.Get(0, 0)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing unit: %v", err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("missing unit misreported as corrupt: %v", err)
		}
	})
}

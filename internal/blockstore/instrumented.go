package blockstore

import "twopcp/internal/obs"

// InstrumentedStore wraps a Store with telemetry: every operation feeds
// the observer's metrics registry (monotonic raw counters and byte-size
// histograms, unaffected by ResetStats on the inner store) and emits
// blockstore.get/put trace events with byte counts.
//
// Trace determinism: raw Get counts vary with prefetch depth (the
// asynchronous pipeline issues extra reads), so buffer-mediated reads
// must go through the Quiet view — it updates metrics but suppresses the
// get events, and the buffer's own deterministic buffer.fetch events
// carry the read information instead. Puts are traced on both views:
// every Put is the consequence of a deterministic decision (unit
// seeding, buffer eviction, final flush), so their multiset is invariant
// across concurrency settings.
type InstrumentedStore struct {
	inner     Store
	obs       *obs.Observer
	quietGets bool

	reads, writes, bytesRead, bytesWritten *obs.Counter
	getBytes, putBytes                     *obs.Histogram
}

// Instrument wraps inner with the observer. A nil or fully disabled
// observer is valid; the wrapper then delegates with one nil check per
// counter.
func Instrument(inner Store, ob *obs.Observer) *InstrumentedStore {
	return &InstrumentedStore{
		inner:        inner,
		obs:          ob,
		reads:        ob.Counter("blockstore.reads"),
		writes:       ob.Counter("blockstore.writes"),
		bytesRead:    ob.Counter("blockstore.bytes_read"),
		bytesWritten: ob.Counter("blockstore.bytes_written"),
		getBytes:     ob.Histogram("blockstore.get_bytes"),
		putBytes:     ob.Histogram("blockstore.put_bytes"),
	}
}

// Quiet returns a view of the same store (same inner store, same metric
// handles) whose Gets update metrics but emit no trace events. The
// buffer manager reads through this view.
func (s *InstrumentedStore) Quiet() *InstrumentedStore {
	q := *s
	q.quietGets = true
	return &q
}

// Put implements Store.
func (s *InstrumentedStore) Put(u *Unit) error {
	if err := s.inner.Put(u); err != nil {
		return err
	}
	n := u.Bytes()
	if s.writes != nil {
		s.writes.Inc()
		s.bytesWritten.Add(n)
		s.putBytes.Observe(float64(n))
	}
	if s.obs.Tracing() {
		s.obs.Emit("blockstore.put",
			obs.Int("mode", u.Mode), obs.Int("part", u.Part), obs.I64("bytes", n))
	}
	return nil
}

// Get implements Store.
func (s *InstrumentedStore) Get(mode, part int) (*Unit, error) {
	u, err := s.inner.Get(mode, part)
	if err != nil {
		return nil, err
	}
	n := u.Bytes()
	if s.reads != nil {
		s.reads.Inc()
		s.bytesRead.Add(n)
		s.getBytes.Observe(float64(n))
	}
	if !s.quietGets && s.obs.Tracing() {
		s.obs.Emit("blockstore.get",
			obs.Int("mode", mode), obs.Int("part", part), obs.I64("bytes", n))
	}
	return u, nil
}

// Stats implements Store.
func (s *InstrumentedStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store. It resets only the inner store's
// resettable counters (the Result-accounting mechanism); the registry's
// raw counters stay monotonic.
func (s *InstrumentedStore) ResetStats() { s.inner.ResetStats() }

// Close implements Store.
func (s *InstrumentedStore) Close() error { return s.inner.Close() }

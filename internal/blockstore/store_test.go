package blockstore

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func testUnit(rng *rand.Rand) *Unit {
	return &Unit{
		Mode: 1,
		Part: 2,
		A:    mat.Random(4, 3, rng),
		U: map[int]*mat.Matrix{
			0: mat.Random(4, 3, rng),
			5: mat.Random(4, 3, rng),
			9: mat.Random(4, 3, rng),
		},
	}
}

func unitsEqual(a, b *Unit) bool {
	if a.Mode != b.Mode || a.Part != b.Part || !a.A.Equal(b.A) || len(a.U) != len(b.U) {
		return false
	}
	for id, m := range a.U {
		if bm, ok := b.U[id]; !ok || !m.Equal(bm) {
			return false
		}
	}
	return true
}

func TestUnitBytes(t *testing.T) {
	u := testUnit(rand.New(rand.NewSource(1)))
	want := int64(4*3*4) * 8 // A plus three U matrices, 12 floats each
	if got := u.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4}
	a.Add(Stats{Reads: 10, Writes: 20, BytesRead: 30, BytesWritten: 40})
	if a.Reads != 11 || a.Writes != 22 || a.BytesRead != 33 || a.BytesWritten != 44 {
		t.Fatalf("Add = %+v", a)
	}
}

// storeContract exercises the Store interface invariants on any backend.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	u := testUnit(rng)

	if _, err := s.Get(1, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: err = %v, want ErrNotFound", err)
	}
	if err := s.Put(u); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("Get returned different unit")
	}
	// Mutating the fetched unit must not write through.
	got.A.Set(0, 0, 12345)
	again, err := s.Get(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.A.At(0, 0) == 12345 {
		t.Fatal("store aliases fetched unit")
	}
	// Overwrite.
	u2 := testUnit(rng)
	u2.A.Set(0, 0, -7)
	if err := s.Put(u2); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.At(0, 0) != -7 {
		t.Fatal("Put did not overwrite")
	}
	// Stats: 1+1+1 gets (one failed — not counted), 2 puts.
	st := s.Stats()
	if st.Reads != 3 || st.Writes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != 3*u.Bytes() || st.BytesWritten != 2*u.Bytes() {
		t.Fatalf("byte stats = %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Reads != 0 || st.BytesWritten != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestFileStoreContract(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

func TestEncodeDecodeUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := testUnit(rng)
	var buf bytes.Buffer
	if err := EncodeUnit(&buf, u); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUnit(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("codec round trip failed")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := testUnit(rng)
	var b1, b2 bytes.Buffer
	if err := EncodeUnit(&b1, u); err != nil {
		t.Fatal(err)
	}
	if err := EncodeUnit(&b2, u); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeUnitBadMagic(t *testing.T) {
	if _, err := DecodeUnit(strings.NewReader("NOPE")); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecodeUnitTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	if err := EncodeUnit(&buf, testUnit(rng)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := DecodeUnit(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("expected error for truncated unit")
	}
}

func TestFileStorePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	u := testUnit(rng)
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(u); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("unit not persisted")
	}
}

func TestFileStorePutLeavesNoTempFiles(t *testing.T) {
	// Put must land exactly one fully-written unit file per key: no
	// temp-file debris (a crash between create and rename is the only
	// state that may leave one, and a fresh Put replaces it atomically).
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	u := testUnit(rng)
	for i := 0; i < 3; i++ {
		if err := s.Put(u); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store dir has %v, want exactly one unit file", names)
	}
	// Close reports deferred durability errors; a healthy run has none,
	// and reporting is one-shot.
	if err := s.Close(); err != nil {
		t.Fatalf("Close after clean Puts: %v", err)
	}
}

func TestFileStoreCloseReportsDeferredError(t *testing.T) {
	// Close owns the deferred directory sync; if the directory vanished
	// after a successful Put, that durability failure must surface.
	dir := filepath.Join(t.TempDir(), "store")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if err := s.Put(testUnit(rng)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the dirsync failure")
	}
	// Reporting is one-shot: nothing new to sync after the first Close.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close repeated the deferred error: %v", err)
	}
}

func TestChunkStore(t *testing.T) {
	s, err := NewChunkStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	blk := tensor.RandomDense(rng, 3, 4, 2)
	if err := s.PutChunk([]int{0, 1, 1}, blk); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetChunk([]int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(blk, 0) {
		t.Fatal("chunk round trip failed")
	}
	if _, err := s.GetChunk([]int{9, 9, 9}); err == nil {
		t.Fatal("missing chunk should error")
	}
	st := s.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("chunk stats = %+v", st)
	}
	if st.BytesWritten != 24*8 || st.BytesRead != 24*8 {
		t.Fatalf("chunk byte stats = %+v", st)
	}
}

func TestMemStoreConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	rng := rand.New(rand.NewSource(8))
	u := testUnit(rng)
	if err := s.Put(u); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := s.Get(1, 2); err != nil {
					done <- err
					return
				}
				if err := s.Put(u); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Reads != 400 || st.Writes != 401 {
		t.Fatalf("concurrent stats = %+v", st)
	}
}

func TestFileStoreCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u := testUnit(rng)
	plain, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gz, err := NewFileStore(t.TempDir(), WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Put(u); err != nil {
		t.Fatal(err)
	}
	if err := gz.Put(u); err != nil {
		t.Fatal(err)
	}
	// Round trip through the compressed store.
	got, err := gz.Get(u.Mode, u.Part)
	if err != nil {
		t.Fatal(err)
	}
	if !unitsEqual(got, u) {
		t.Fatal("compressed round trip failed")
	}
	// Logical byte accounting identical; on-disk differs.
	if plain.Stats().BytesWritten != gz.Stats().BytesWritten {
		t.Fatal("logical byte accounting should not depend on compression")
	}
	if gz.DiskBytesWritten() <= 0 || plain.DiskBytesWritten() <= 0 {
		t.Fatal("disk byte accounting missing")
	}
	// A highly compressible unit (all-zero factors) must shrink on disk.
	zero := testUnit(rng)
	zero.A.Zero()
	for _, m := range zero.U {
		m.Zero()
	}
	gz2, err := NewFileStore(t.TempDir(), WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	plain2, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := gz2.Put(zero); err != nil {
		t.Fatal(err)
	}
	if err := plain2.Put(zero); err != nil {
		t.Fatal(err)
	}
	if gz2.DiskBytesWritten() >= plain2.DiskBytesWritten() {
		t.Fatalf("compression did not shrink zero unit: %d vs %d",
			gz2.DiskBytesWritten(), plain2.DiskBytesWritten())
	}
}

func TestFileStoreCompressedContract(t *testing.T) {
	s, err := NewFileStore(t.TempDir(), WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

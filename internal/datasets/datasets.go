// Package datasets generates the evaluation workloads of the paper's §VIII:
// shape- and density-faithful synthetic stand-ins for the four real data
// sets (Epinions, Ciao, Enron, Face — the originals are not redistributable
// here, see DESIGN.md) and the billion-scale dense tensors of the strong-
// configuration experiments, scaled by a configurable factor.
//
// The generators reproduce the structural properties the paper's results
// depend on: the sparse datasets have skewed (power-law-like) coordinate
// marginals so block densities vary strongly across the grid — the source
// of the accuracy variability in Figure 13 — while Face is a dense, smooth,
// approximately low-rank image stack whose block-centric and mode-centric
// accuracies coincide.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// Spec describes a generated dataset.
type Spec struct {
	Name    string
	Schema  string
	Dims    []int
	Density float64
}

// String renders the spec like the paper's dataset table.
func (s Spec) String() string {
	return fmt.Sprintf("%s %v %s density=%.2g", s.Name, s.Dims, s.Schema, s.Density)
}

// Paper-published dataset shapes.
var (
	EpinionsSpec = Spec{Name: "Epinions", Schema: "⟨user,item,category⟩", Dims: []int{170, 1000, 18}, Density: 2.4e-4}
	CiaoSpec     = Spec{Name: "Ciao", Schema: "⟨user,item,category⟩", Dims: []int{167, 967, 18}, Density: 2.2e-4}
	EnronSpec    = Spec{Name: "Enron", Schema: "⟨time,from,to⟩", Dims: []int{5632, 184, 184}, Density: 1.8e-4}
	FaceSpec     = Spec{Name: "Face", Schema: "⟨x,y,image⟩", Dims: []int{480, 640, 100}, Density: 1.0}
)

// zipfIndex draws a skewed coordinate in [0, n): small indexes are hot,
// with skew s > 0 (s≈1 gives strong head concentration).
func zipfIndex(rng *rand.Rand, n int, s float64) int {
	u := rng.Float64()
	idx := int(float64(n) * math.Pow(u, 1+s))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// ratingTensor generates a ⟨user, item, category⟩ tensor: items belong to a
// fixed category (as in Epinions/Ciao, where the category is a function of
// the item), users and items follow skewed popularity, and values are
// ratings in {1..5}.
func ratingTensor(rng *rand.Rand, spec Spec) *tensor.COO {
	users, items, cats := spec.Dims[0], spec.Dims[1], spec.Dims[2]
	out := tensor.NewCOO(users, items, cats)
	itemCat := make([]int, items)
	for i := range itemCat {
		itemCat[i] = rng.Intn(cats)
	}
	total := float64(users) * float64(items) * float64(cats)
	target := int(spec.Density * total)
	idx := make([]int, 3)
	for k := 0; k < target; k++ {
		idx[0] = zipfIndex(rng, users, 0.8)
		idx[1] = zipfIndex(rng, items, 1.0)
		idx[2] = itemCat[idx[1]]
		out.Append(idx, float64(rng.Intn(5)+1))
	}
	out.Canonicalize()
	return out
}

// Epinions generates the Epinions stand-in at published shape and density.
func Epinions(rng *rand.Rand) *tensor.COO { return ratingTensor(rng, EpinionsSpec) }

// Ciao generates the Ciao stand-in at published shape and density.
func Ciao(rng *rand.Rand) *tensor.COO { return ratingTensor(rng, CiaoSpec) }

// Enron generates the ⟨time, from, to⟩ email stand-in: bursty time windows
// and heavy-hitter senders/receivers, values are message counts.
func Enron(rng *rand.Rand) *tensor.COO {
	spec := EnronSpec
	times, from, to := spec.Dims[0], spec.Dims[1], spec.Dims[2]
	out := tensor.NewCOO(times, from, to)
	total := float64(times) * float64(from) * float64(to)
	target := int(spec.Density * total)
	// A handful of bursts (organizational events) concentrate traffic.
	nBursts := 12
	burstCenter := make([]int, nBursts)
	for b := range burstCenter {
		burstCenter[b] = rng.Intn(times)
	}
	idx := make([]int, 3)
	for k := 0; k < target; k++ {
		if rng.Float64() < 0.5 {
			c := burstCenter[rng.Intn(nBursts)]
			t := c + int(rng.NormFloat64()*float64(times)/100)
			if t < 0 {
				t = 0
			}
			if t >= times {
				t = times - 1
			}
			idx[0] = t
		} else {
			idx[0] = rng.Intn(times)
		}
		idx[1] = zipfIndex(rng, from, 1.2)
		idx[2] = zipfIndex(rng, to, 1.0)
		out.Append(idx, float64(rng.Intn(4)+1))
	}
	out.Canonicalize()
	return out
}

// Face generates the dense ⟨x, y, image⟩ face-database stand-in at
// 1/scale of the published resolution (scale ≥ 1; scale 10 gives
// 48×64×10). Images are sums of smooth spatial basis functions with
// per-image weights plus mild noise — dense, approximately low-rank data
// like illumination-varied face images.
func Face(rng *rand.Rand, scale int) *tensor.Dense {
	if scale < 1 {
		scale = 1
	}
	h := FaceSpec.Dims[0] / scale
	w := FaceSpec.Dims[1] / scale
	n := FaceSpec.Dims[2] / scale
	if h < 2 {
		h = 2
	}
	if w < 2 {
		w = 2
	}
	if n < 2 {
		n = 2
	}
	const rank = 6
	// Smooth spatial bases: products of low-frequency sinusoids.
	bx := make([][]float64, rank)
	by := make([][]float64, rank)
	weights := make([][]float64, rank)
	for r := 0; r < rank; r++ {
		fx := float64(r%3 + 1)
		fy := float64(r/3 + 1)
		phase := rng.Float64() * math.Pi
		bx[r] = make([]float64, h)
		for i := 0; i < h; i++ {
			bx[r][i] = 0.5 + 0.5*math.Sin(fx*math.Pi*float64(i)/float64(h)+phase)
		}
		by[r] = make([]float64, w)
		for j := 0; j < w; j++ {
			by[r][j] = 0.5 + 0.5*math.Cos(fy*math.Pi*float64(j)/float64(w)+phase)
		}
		weights[r] = make([]float64, n)
		for k := 0; k < n; k++ {
			weights[r][k] = 0.2 + rng.Float64()
		}
	}
	out := tensor.NewDense(h, w, n)
	out.Fill(func(idx []int) float64 {
		var v float64
		for r := 0; r < rank; r++ {
			v += bx[r][idx[0]] * by[r][idx[1]] * weights[r][idx[2]]
		}
		return v/float64(rank) + 0.02*rng.Float64()
	})
	return out
}

// DenseUniform generates the billion-scale-style dense tensors of Table I:
// a cube of side dim where each cell is nonzero with probability density,
// with uniform (0,1] values. The paper used sides 500–1500 at density 0.2;
// callers scale the side down per DESIGN.md.
func DenseUniform(rng *rand.Rand, density float64, dims ...int) *tensor.Dense {
	out := tensor.NewDense(dims...)
	for i := range out.Data {
		if rng.Float64() < density {
			out.Data[i] = rng.Float64() + 1e-9
		}
	}
	return out
}

// EnsembleSimulation generates a dense ⟨configuration, parameter, time⟩
// tensor like the scientific ensemble-simulation workloads that motivate
// 2PCP (paper footnote 2): per-configuration smooth response curves.
func EnsembleSimulation(rng *rand.Rand, configs, params, steps int) *tensor.Dense {
	out := tensor.NewDense(configs, params, steps)
	base := make([]float64, params)
	for p := range base {
		base[p] = rng.Float64()*2 + 0.5
	}
	gain := make([]float64, configs)
	for c := range gain {
		gain[c] = 0.5 + rng.Float64()
	}
	out.Fill(func(idx []int) float64 {
		c, p, t := idx[0], idx[1], idx[2]
		phase := float64(c) / float64(configs)
		return gain[c]*base[p]*math.Exp(-float64(t)/float64(steps)) +
			0.1*math.Sin(2*math.Pi*(float64(t)/float64(steps)+phase)) +
			0.01*rng.Float64()
	})
	return out
}

// DenseLowMLRank generates a dense tensor of multilinear rank r per mode
// plus optional relative Gaussian noise: a random r×r×...×r Tucker core
// multiplied by per-mode orthonormal factors. These are the honest
// low-multilinear-rank inputs the Phase-0 compress-then-refine
// accelerator targets — the compressed core captures (1−noise)-ish of
// the energy, so CP on the core matches CP on the tensor.
func DenseLowMLRank(rng *rand.Rand, r int, noise float64, dims ...int) *tensor.Dense {
	return LowMLRankSpec{R: r, Noise: noise}.Generate(rng, dims...)
}

// LowMLRankSpec configures the lowmlrank synthetic generator beyond the
// DenseLowMLRank defaults. The zero value of the optional knobs
// reproduces DenseLowMLRank exactly.
type LowMLRankSpec struct {
	// R is the multilinear rank per mode (capped at the mode size).
	R int
	// Noise is the relative Gaussian noise level (0 disables).
	Noise float64
	// Diag selects a superdiagonal core (weights 1+|N(0,1)|) instead of a
	// dense random one, making the CP rank exactly R — the input then has
	// a clean rank-R CP ground truth instead of just low multilinear rank.
	Diag bool
	// Collinearity c in [0,1) draws unit-norm factor columns with pairwise
	// inner product c instead of orthonormal panels. Collinear factors are
	// the classic ALS "swamp" inputs: the CP optimum is still (generically)
	// unique, but cold-started ALS needs many sweeps to crawl there, which
	// is exactly the regime where compress-then-refine pays off.
	Collinearity float64
}

// Generate materializes the spec as a dense tensor.
func (s LowMLRankSpec) Generate(rng *rand.Rand, dims ...int) *tensor.Dense {
	core, ms := s.Components(rng, dims...)
	out := tensor.TTMChain(core, ms)
	if s.Noise > 0 {
		scale := s.Noise * out.Norm() / math.Sqrt(float64(len(out.Data)))
		for i := range out.Data {
			out.Data[i] += scale * rng.NormFloat64()
		}
	}
	return out
}

// Components draws the Tucker core and per-mode factor panels of the
// spec without materializing the tensor, so callers (tensorgen's tiled
// writer) can stream arbitrarily large instances one tile at a time:
// a tile is just TTMChain(core, factors restricted to the tile's rows).
func (s LowMLRankSpec) Components(rng *rand.Rand, dims ...int) (*tensor.Dense, []*mat.Matrix) {
	coreDims := make([]int, len(dims))
	for k, d := range dims {
		coreDims[k] = s.R
		if d < s.R {
			coreDims[k] = d
		}
	}
	core := tensor.NewDense(coreDims...)
	if s.Diag {
		side := coreDims[0]
		for _, d := range coreDims {
			if d < side {
				side = d
			}
		}
		idx := make([]int, len(coreDims))
		for i := 0; i < side; i++ {
			for k := range idx {
				idx[k] = i
			}
			core.Set(1+math.Abs(rng.NormFloat64()), idx...)
		}
	} else {
		for i := range core.Data {
			core.Data[i] = rng.NormFloat64()
		}
	}
	ms := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		ms[k] = factorPanel(rng, d, coreDims[k], s.Collinearity)
	}
	return core, ms
}

// ModelNorm returns the exact Frobenius norm of TTMChain(core, ms)
// without materializing it: ‖X‖² = ⟨core ×₁ G₁ ×₂ G₂ ⋯, core⟩ with
// Gₖ = FₖᵀFₖ, which stays core-sized. Streaming generation needs this
// up front to scale relative noise before the first tile is written.
func ModelNorm(core *tensor.Dense, ms []*mat.Matrix) float64 {
	gs := make([]*mat.Matrix, len(ms))
	for k, f := range ms {
		gs[k] = mat.Gram(f)
	}
	y := tensor.TTMChain(core, gs)
	var norm2 float64
	for i, v := range y.Data {
		norm2 += v * core.Data[i]
	}
	if norm2 < 0 {
		norm2 = 0
	}
	return math.Sqrt(norm2)
}

// factorPanel draws a d×r factor panel: orthonormal for c = 0, else
// unit-norm columns a_q = √c·u + √(1−c)·v_q over an orthonormal set
// {u, v_1..v_r}, so every pair of columns has inner product exactly c.
func factorPanel(rng *rand.Rand, d, r int, c float64) *mat.Matrix {
	if c <= 0 || r >= d {
		return mat.QRThin(mat.RandomNormal(d, r, rng))
	}
	basis := mat.QRThin(mat.RandomNormal(d, r+1, rng))
	out := mat.New(d, r)
	su, sv := math.Sqrt(c), math.Sqrt(1-c)
	for q := 0; q < r; q++ {
		for i := 0; i < d; i++ {
			out.Set(i, q, su*basis.At(i, 0)+sv*basis.At(i, q+1))
		}
	}
	return out
}

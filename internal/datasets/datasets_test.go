package datasets

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func TestSpecsMatchPaperTable(t *testing.T) {
	if EpinionsSpec.Dims[0] != 170 || EpinionsSpec.Dims[1] != 1000 || EpinionsSpec.Dims[2] != 18 {
		t.Fatalf("Epinions dims = %v", EpinionsSpec.Dims)
	}
	if CiaoSpec.Dims[0] != 167 || CiaoSpec.Dims[1] != 967 {
		t.Fatalf("Ciao dims = %v", CiaoSpec.Dims)
	}
	if EnronSpec.Dims[0] != 5632 || EnronSpec.Dims[1] != 184 {
		t.Fatalf("Enron dims = %v", EnronSpec.Dims)
	}
	if FaceSpec.Density != 1.0 {
		t.Fatalf("Face density = %g", FaceSpec.Density)
	}
	if EpinionsSpec.String() == "" {
		t.Fatal("Spec.String empty")
	}
}

func checkSparse(t *testing.T, x *tensor.COO, spec Spec) {
	t.Helper()
	for m := range spec.Dims {
		if x.Dims[m] != spec.Dims[m] {
			t.Fatalf("%s dims = %v, want %v", spec.Name, x.Dims, spec.Dims)
		}
	}
	total := 1.0
	for _, d := range spec.Dims {
		total *= float64(d)
	}
	got := float64(x.NNZ()) / total
	if got > spec.Density*1.2 || got < spec.Density*0.3 {
		t.Fatalf("%s density = %g, spec %g", spec.Name, got, spec.Density)
	}
	for _, v := range x.Vals {
		if v <= 0 {
			t.Fatalf("%s has non-positive value", spec.Name)
		}
	}
}

func TestEpinionsShape(t *testing.T) {
	checkSparse(t, Epinions(rand.New(rand.NewSource(1))), EpinionsSpec)
}

func TestCiaoShape(t *testing.T) {
	checkSparse(t, Ciao(rand.New(rand.NewSource(2))), CiaoSpec)
}

func TestEnronShape(t *testing.T) {
	checkSparse(t, Enron(rand.New(rand.NewSource(3))), EnronSpec)
}

func TestRatingCategoriesAreItemDetermined(t *testing.T) {
	x := Epinions(rand.New(rand.NewSource(4)))
	itemCat := map[int]int{}
	for p := 0; p < x.NNZ(); p++ {
		item, cat := x.Indices[1][p], x.Indices[2][p]
		if prev, ok := itemCat[item]; ok && prev != cat {
			t.Fatalf("item %d appears in categories %d and %d", item, prev, cat)
		}
		itemCat[item] = cat
	}
}

func TestSparseBlockDensityVariability(t *testing.T) {
	// The paper (Fig 13 discussion) attributes accuracy variability to
	// strongly varying block densities on sparse data. Verify the skewed
	// generators produce that: over a 2×2×2 grid, the densest block must
	// hold several times more nonzeros than the sparsest.
	x := Enron(rand.New(rand.NewSource(5)))
	p := grid.MustNew(x.Dims, []int{2, 2, 2})
	counts := make([]int, p.NumBlocks())
	for _, vec := range p.Positions() {
		from, size := p.Block(vec)
		counts[p.Linear(vec)] = x.SubTensorCOO(from, size).NNZ()
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 3*(minC+1) {
		t.Fatalf("block nnz too uniform: min=%d max=%d", minC, maxC)
	}
}

func TestFaceDenseAndLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Face(rng, 10) // 48×64×10
	if x.Dims[0] != 48 || x.Dims[1] != 64 || x.Dims[2] != 10 {
		t.Fatalf("Face dims = %v", x.Dims)
	}
	if float64(x.NNZ()) < 0.999*float64(x.Len()) {
		t.Fatal("Face should be fully dense")
	}
	// Approximately low-rank: rank-8 ALS fit must be high.
	_, info, err := cpals.Decompose(x, cpals.Options{Rank: 8, MaxIters: 40, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit < 0.95 {
		t.Fatalf("Face rank-8 fit = %g, expected near-low-rank data", info.Fit)
	}
}

func TestFaceScaleClamping(t *testing.T) {
	x := Face(rand.New(rand.NewSource(7)), 1000)
	for _, d := range x.Dims {
		if d < 2 {
			t.Fatalf("Face over-scaled: dims %v", x.Dims)
		}
	}
	if Face(rand.New(rand.NewSource(7)), 0).Dims[0] != 480 {
		t.Fatal("scale<1 should clamp to full size")
	}
}

func TestDenseUniformDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := DenseUniform(rng, 0.2, 30, 30, 30)
	got := float64(x.NNZ()) / float64(x.Len())
	if math.Abs(got-0.2) > 0.03 {
		t.Fatalf("density = %g, want ≈0.2", got)
	}
}

func TestEnsembleSimulationSmooth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := EnsembleSimulation(rng, 12, 8, 20)
	if x.Dims[0] != 12 || x.Dims[1] != 8 || x.Dims[2] != 20 {
		t.Fatalf("dims = %v", x.Dims)
	}
	// Time decay: early timesteps should carry more energy than late ones.
	early := x.SubTensor([]int{0, 0, 0}, []int{12, 8, 5}).Norm()
	late := x.SubTensor([]int{0, 0, 15}, []int{12, 8, 5}).Norm()
	if early <= late {
		t.Fatalf("no decay: early %g vs late %g", early, late)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Epinions(rand.New(rand.NewSource(42)))
	b := Epinions(rand.New(rand.NewSource(42)))
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different datasets")
	}
	for p := range a.Vals {
		if a.Vals[p] != b.Vals[p] || a.Indices[0][p] != b.Indices[0][p] {
			t.Fatal("same seed produced different entries")
		}
	}
}

func TestLowMLRankSpecDiagHasExactCPRank(t *testing.T) {
	// A noiseless superdiagonal core × factor chain is a rank-R Kruskal
	// tensor: the components themselves, with the core weights folded
	// into one factor, must reconstruct it with fit 1. (Cold ALS is NOT
	// used here — odeco tensors trap it in local optima.)
	rng := rand.New(rand.NewSource(11))
	spec := LowMLRankSpec{R: 3, Diag: true}
	core, ms := spec.Components(rng, 14, 12, 10)
	x := tensor.TTMChain(core, ms)
	factors := make([]*mat.Matrix, len(ms))
	for k, f := range ms {
		factors[k] = f.Clone()
	}
	for r := 0; r < 3; r++ {
		w := core.Data[r+r*3+r*3*3] // superdiagonal (r,r,r) in Fortran layout
		if w < 1 {
			t.Fatalf("superdiagonal weight %d = %g, want ≥ 1", r, w)
		}
		for i := 0; i < factors[0].Rows; i++ {
			factors[0].Set(i, r, factors[0].At(i, r)*w)
		}
	}
	if fit := cpals.NewKTensor(factors).Fit(x); fit < 1-1e-12 {
		t.Fatalf("rank-3 Kruskal reconstruction fit = %g, want 1", fit)
	}
}

func TestLowMLRankSpecCollinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const c = 0.9
	_, ms := LowMLRankSpec{R: 4, Collinearity: c}.Components(rng, 20, 20, 20)
	for mode, f := range ms {
		for p := 0; p < f.Cols; p++ {
			for q := 0; q < f.Cols; q++ {
				var dot float64
				for i := 0; i < f.Rows; i++ {
					dot += f.At(i, p) * f.At(i, q)
				}
				want := c
				if p == q {
					want = 1
				}
				if math.Abs(dot-want) > 1e-10 {
					t.Fatalf("mode %d: ⟨a_%d,a_%d⟩ = %g, want %g", mode, p, q, dot, want)
				}
			}
		}
	}
}

func TestModelNormMatchesMaterialized(t *testing.T) {
	for _, c := range []float64{0, 0.7} {
		rng := rand.New(rand.NewSource(13))
		spec := LowMLRankSpec{R: 4, Collinearity: c}
		core, ms := spec.Components(rng, 15, 11, 9)
		got := ModelNorm(core, ms)
		want := tensor.TTMChain(core, ms).Norm()
		if math.Abs(got-want) > 1e-10*want {
			t.Fatalf("collinearity %g: ModelNorm = %.15g, materialized = %.15g", c, got, want)
		}
	}
}

func TestLowMLRankRelativeNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	spec := LowMLRankSpec{R: 4, Noise: 1e-3}
	clean := LowMLRankSpec{R: 4}.Generate(rand.New(rand.NewSource(14)), 20, 20, 20)
	noisy := spec.Generate(rng, 20, 20, 20)
	diff := 0.0
	for i := range clean.Data {
		d := noisy.Data[i] - clean.Data[i]
		diff += d * d
	}
	rel := math.Sqrt(diff) / clean.Norm()
	if rel < 1e-4 || rel > 1e-2 {
		t.Fatalf("relative noise = %g, want ≈1e-3", rel)
	}
}

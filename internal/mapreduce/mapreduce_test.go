package mapreduce

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// wordCount is the canonical MapReduce correctness fixture.
func wordCount(t *testing.T, docs []string, cfg Config) (map[string]int, Counters) {
	t.Helper()
	inputs := make([]any, len(docs))
	for i, d := range docs {
		inputs[i] = d
	}
	mapper := func(in any, emit func(string, []byte)) error {
		for _, w := range strings.Fields(in.(string)) {
			emit(w, []byte{1})
		}
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		total := 0
		for _, v := range values {
			total += int(v[0])
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(total))
		emit(key, buf)
		return nil
	}
	out, counters, err := Run(inputs, mapper, reducer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := map[string]int{}
	for _, p := range out {
		res[p.Key] = int(binary.LittleEndian.Uint64(p.Value))
	}
	return res, counters
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a", "c c c"}
	got, counters := wordCount(t, docs, Config{NumReducers: 3})
	want := map[string]int{"a": 3, "b": 2, "c": 4}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	if counters.MapInputRecords != 4 || counters.MapOutputRecords != 9 {
		t.Fatalf("counters = %+v", counters)
	}
	if counters.ReduceGroups != 3 || counters.OutputRecords != 3 {
		t.Fatalf("counters = %+v", counters)
	}
	// 9 emits of 1-byte keys + 1-byte values.
	if counters.ShuffleBytes != 18 {
		t.Fatalf("ShuffleBytes = %d", counters.ShuffleBytes)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	docs := []string{"x y z", "x x", "q r s t u v w", "y z z z"}
	r1, _ := wordCount(t, docs, Config{NumReducers: 1, MapParallelism: 1})
	r2, _ := wordCount(t, docs, Config{NumReducers: 7, MapParallelism: 5})
	if len(r1) != len(r2) {
		t.Fatalf("outputs differ: %v vs %v", r1, r2)
	}
	for k, v := range r1 {
		if r2[k] != v {
			t.Fatalf("key %q: %d vs %d", k, v, r2[k])
		}
	}
}

func TestOutputSortedByKey(t *testing.T) {
	inputs := []any{"banana apple cherry"}
	mapper := func(in any, emit func(string, []byte)) error {
		for _, w := range strings.Fields(in.(string)) {
			emit(w, nil)
		}
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		emit(key, nil)
		return nil
	}
	out, _, err := Run(inputs, mapper, reducer, Config{NumReducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("output not sorted: %q before %q", out[i-1].Key, out[i].Key)
		}
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	mapper := func(in any, emit func(string, []byte)) error { return boom }
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error { return nil }
	if _, _, err := Run([]any{1}, mapper, reducer, Config{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	mapper := func(in any, emit func(string, []byte)) error {
		emit("k", nil)
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error { return boom }
	if _, _, err := Run([]any{1}, mapper, reducer, Config{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestReducerMemoryCap(t *testing.T) {
	// One hot key receiving 1000 8-byte values: grouped bytes ≈ 9000.
	mapper := func(in any, emit func(string, []byte)) error {
		for i := 0; i < 1000; i++ {
			emit("k", make([]byte, 8))
		}
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error { return nil }
	_, counters, err := Run([]any{1}, mapper, reducer, Config{NumReducers: 2, ReducerMemoryBytes: 4096})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
	if counters.MaxReducerBytes < 4096 {
		t.Fatalf("MaxReducerBytes = %d", counters.MaxReducerBytes)
	}
	// Same job with a big enough cap succeeds.
	if _, _, err := Run([]any{1}, mapper, reducer, Config{NumReducers: 2, ReducerMemoryBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValueBuffersAreCopied(t *testing.T) {
	// A mapper that reuses its emit buffer must not corrupt the shuffle.
	buf := []byte{0}
	mapper := func(in any, emit func(string, []byte)) error {
		for i := 0; i < 3; i++ {
			buf[0] = byte(i + 1)
			emit("k", buf)
		}
		return nil
	}
	var got []byte
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		for _, v := range values {
			got = append(got, v[0])
		}
		return nil
	}
	if _, _, err := Run([]any{1}, mapper, reducer, Config{NumReducers: 1, MapParallelism: 1}); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range got {
		sum += int(b)
	}
	if sum != 6 {
		t.Fatalf("values = %v (buffer aliasing)", got)
	}
}

func TestPipelineChainsJobs(t *testing.T) {
	// Stage 1: word count. Stage 2: bucket counts by parity of count.
	docs := []any{"a b a", "b c", "a", "c c c"} // a:3 b:2 c:4
	p := &Pipeline{Config: Config{NumReducers: 2}}
	stage1, err := p.Run(docs,
		func(in any, emit func(string, []byte)) error {
			for _, w := range strings.Fields(in.(string)) {
				emit(w, []byte{1})
			}
			return nil
		},
		func(key string, values [][]byte, emit func(string, []byte)) error {
			emit(key, []byte{byte(len(values))})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	stage2, err := p.Run(PairsToInputs(stage1),
		func(in any, emit func(string, []byte)) error {
			pair := in.(Pair)
			parity := "even"
			if pair.Value[0]%2 == 1 {
				parity = "odd"
			}
			emit(parity, []byte{1})
			return nil
		},
		func(key string, values [][]byte, emit func(string, []byte)) error {
			emit(key, []byte{byte(len(values))})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	res := map[string]int{}
	for _, pr := range stage2 {
		res[pr.Key] = int(pr.Value[0])
	}
	if res["odd"] != 1 || res["even"] != 2 {
		t.Fatalf("parity buckets = %v", res)
	}
	if p.Jobs != 2 || p.Counters.ShuffleBytes == 0 {
		t.Fatalf("pipeline accounting: jobs=%d counters=%+v", p.Jobs, p.Counters)
	}
}

func TestEmptyInput(t *testing.T) {
	out, counters, err := Run(nil,
		func(in any, emit func(string, []byte)) error { return nil },
		func(key string, values [][]byte, emit func(string, []byte)) error { return nil },
		Config{})
	if err != nil || len(out) != 0 || counters.MapInputRecords != 0 {
		t.Fatalf("empty run: %v %v %+v", out, err, counters)
	}
}

func TestPartitionStable(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if partition(k, 7) != partition(k, 7) {
			t.Fatal("partition not deterministic")
		}
		if p := partition(k, 7); p < 0 || p >= 7 {
			t.Fatalf("partition out of range: %d", p)
		}
	}
}

// Package mapreduce is an in-process MapReduce engine standing in for the
// Hadoop cluster of the paper's strong-configuration experiments. It runs
// the classic map → shuffle → reduce pipeline with goroutine workers,
// counts shuffle traffic byte-exactly (the "communication cost" the paper
// argues dominates iterative MapReduce algorithms such as HaTen2), and can
// enforce a per-reducer memory cap so that algorithms whose grouped
// intermediate data outgrow memory fail the same way the paper observed
// ("HaTen2 ... soon fails to run with the available resources").
//
// Values cross the shuffle boundary as byte slices, exactly as they would
// over a real network, so the counters reflect true data volume.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Pair is a key-value record.
type Pair struct {
	Key   string
	Value []byte
}

// Mapper transforms one input record into zero or more key-value pairs via
// emit. Mappers run concurrently and must not share mutable state.
type Mapper func(input any, emit func(key string, value []byte)) error

// Reducer folds all values of one key into zero or more output pairs.
type Reducer func(key string, values [][]byte, emit func(key string, value []byte)) error

// Config tunes a job.
type Config struct {
	// NumReducers is the reduce-side parallelism (default 4). Keys are
	// assigned to reducers by FNV hash, as in Hadoop's default partitioner.
	NumReducers int
	// MapParallelism bounds concurrent mappers (default NumReducers).
	MapParallelism int
	// ReducerMemoryBytes caps the grouped input volume any one reducer may
	// hold (keys + values). Zero means unlimited. Exceeding the cap aborts
	// the job with ErrMemoryExceeded — the simulated OOM kill.
	ReducerMemoryBytes int64
}

// Counters reports job volume.
type Counters struct {
	MapInputRecords  int64
	MapOutputRecords int64
	ShuffleBytes     int64 // Σ (len(key) + len(value)) crossing the shuffle
	ReduceGroups     int64 // distinct keys
	OutputRecords    int64
	MaxReducerBytes  int64 // largest grouped input seen on one reducer
}

// ErrMemoryExceeded marks a simulated reducer out-of-memory failure.
var ErrMemoryExceeded = errors.New("mapreduce: reducer memory exceeded")

// Run executes a single MapReduce job over the input records and returns
// the reduce output sorted by key (for determinism), plus the counters.
func Run(inputs []any, mapper Mapper, reducer Reducer, cfg Config) ([]Pair, Counters, error) {
	if cfg.NumReducers <= 0 {
		cfg.NumReducers = 4
	}
	if cfg.MapParallelism <= 0 {
		cfg.MapParallelism = cfg.NumReducers
	}
	var counters Counters
	counters.MapInputRecords = int64(len(inputs))

	// Map phase: each worker accumulates its own partitioned output.
	type mapShard [][]Pair // per-reducer buckets
	shards := make([]mapShard, cfg.MapParallelism)
	for w := range shards {
		shards[w] = make([][]Pair, cfg.NumReducers)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		outRecs  int64
		shufByts int64
	)
	chunk := (len(inputs) + cfg.MapParallelism - 1) / cfg.MapParallelism
	for w := 0; w < cfg.MapParallelism; w++ {
		lo := w * chunk
		if lo >= len(inputs) {
			break
		}
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var localRecs, localBytes int64
			emit := func(key string, value []byte) {
				r := partition(key, cfg.NumReducers)
				// Copy the value: emitters may reuse buffers, and real
				// shuffles serialize anyway.
				v := append([]byte(nil), value...)
				shards[w][r] = append(shards[w][r], Pair{Key: key, Value: v})
				localRecs++
				localBytes += int64(len(key) + len(v))
			}
			for i := lo; i < hi; i++ {
				if err := mapper(inputs[i], emit); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mapreduce: map record %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			outRecs += localRecs
			shufByts += localBytes
			mu.Unlock()
		}(w, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, counters, firstErr
	}
	counters.MapOutputRecords = outRecs
	counters.ShuffleBytes = shufByts

	// Shuffle: merge the per-worker buckets and group by key per reducer.
	groups := make([]map[string][][]byte, cfg.NumReducers)
	groupBytes := make([]int64, cfg.NumReducers)
	for r := 0; r < cfg.NumReducers; r++ {
		groups[r] = make(map[string][][]byte)
	}
	for w := range shards {
		for r, bucket := range shards[w] {
			for _, p := range bucket {
				groups[r][p.Key] = append(groups[r][p.Key], p.Value)
				groupBytes[r] += int64(len(p.Key) + len(p.Value))
			}
		}
	}
	for r, gb := range groupBytes {
		if gb > counters.MaxReducerBytes {
			counters.MaxReducerBytes = gb
		}
		if cfg.ReducerMemoryBytes > 0 && gb > cfg.ReducerMemoryBytes {
			return nil, counters, fmt.Errorf("%w: reducer %d holds %d bytes (cap %d)",
				ErrMemoryExceeded, r, gb, cfg.ReducerMemoryBytes)
		}
		counters.ReduceGroups += int64(len(groups[r]))
	}

	// Reduce phase: one goroutine per reducer.
	outputs := make([][]Pair, cfg.NumReducers)
	var rwg sync.WaitGroup
	for r := 0; r < cfg.NumReducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			// Deterministic key order within the reducer.
			keys := make([]string, 0, len(groups[r]))
			for k := range groups[r] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			emit := func(key string, value []byte) {
				outputs[r] = append(outputs[r], Pair{Key: key, Value: append([]byte(nil), value...)})
			}
			for _, k := range keys {
				if err := reducer(k, groups[r][k], emit); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mapreduce: reduce key %q: %w", k, err)
					}
					mu.Unlock()
					return
				}
			}
		}(r)
	}
	rwg.Wait()
	if firstErr != nil {
		return nil, counters, firstErr
	}
	var out []Pair
	for _, o := range outputs {
		out = append(out, o...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	counters.OutputRecords = int64(len(out))
	return out, counters, nil
}

func partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Pipeline runs a sequence of jobs where each job consumes the previous
// job's output pairs as inputs (each Pair becomes one input record),
// accumulating counters. It aborts on the first failing stage.
type Pipeline struct {
	Config   Config
	Counters Counters
	Jobs     int
}

// Run executes one stage of the pipeline.
func (p *Pipeline) Run(inputs []any, mapper Mapper, reducer Reducer) ([]Pair, error) {
	out, c, err := Run(inputs, mapper, reducer, p.Config)
	p.accumulate(c)
	p.Jobs++
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Pipeline) accumulate(c Counters) {
	p.Counters.MapInputRecords += c.MapInputRecords
	p.Counters.MapOutputRecords += c.MapOutputRecords
	p.Counters.ShuffleBytes += c.ShuffleBytes
	p.Counters.ReduceGroups += c.ReduceGroups
	p.Counters.OutputRecords += c.OutputRecords
	if c.MaxReducerBytes > p.Counters.MaxReducerBytes {
		p.Counters.MaxReducerBytes = c.MaxReducerBytes
	}
}

// PairsToInputs converts job output to the input form of the next stage.
func PairsToInputs(pairs []Pair) []any {
	in := make([]any, len(pairs))
	for i, p := range pairs {
		in[i] = p
	}
	return in
}

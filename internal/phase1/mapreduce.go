package phase1

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mapreduce"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// RunMapReduce executes Phase 1 with the paper's §IV map/reduce operators
// on the in-process MapReduce engine:
//
//	map:    ⟨b, i, j, k, X(i,j,k)⟩ on b — each nonzero is routed to the
//	        reducer owning its block id b.
//	reduce: ⟨b, {coords, values}⟩ — recompose the sub-tensor X_b, decompose
//	        it with PARAFAC, emit each sub-factor U(n)_b.
//
// The returned counters expose the shuffle volume this phase generates.
// Results are identical (bit-for-bit) to Run with the same Options because
// per-block generators are seeded by block id.
func RunMapReduce(x *tensor.COO, p *grid.Pattern, opts Options, cfg mapreduce.Config) (*Result, mapreduce.Counters, error) {
	if opts.Rank <= 0 {
		return nil, mapreduce.Counters{}, fmt.Errorf("phase1: rank %d", opts.Rank)
	}
	nModes := p.NModes()

	// Inputs: one record per nonzero, carrying global coordinates + value.
	type record struct {
		coords []int
		value  float64
	}
	inputs := make([]any, x.NNZ())
	for n := range inputs {
		r := record{coords: x.Coord(n, nil), value: x.Vals[n]}
		inputs[n] = r
	}

	// Precompute mode partition boundaries for coordinate → block mapping.
	findPart := func(mode, coord int) (part, local int) {
		for ki := 0; ki < p.K[mode]; ki++ {
			from, size := p.ModeRange(mode, ki)
			if coord >= from && coord < from+size {
				return ki, coord - from
			}
		}
		panic(fmt.Sprintf("phase1: coordinate %d outside mode %d", coord, mode))
	}

	mapper := func(in any, emit func(string, []byte)) error {
		r := in.(record)
		vec := make([]int, nModes)
		local := make([]int, nModes)
		for m, c := range r.coords {
			vec[m], local[m] = findPart(m, c)
		}
		b := p.Linear(vec)
		var buf bytes.Buffer
		for _, l := range local {
			if err := binary.Write(&buf, binary.LittleEndian, int32(l)); err != nil {
				return err
			}
		}
		if err := binary.Write(&buf, binary.LittleEndian, r.value); err != nil {
			return err
		}
		emit(strconv.Itoa(b), buf.Bytes())
		return nil
	}

	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		blockID, err := strconv.Atoi(key)
		if err != nil {
			return fmt.Errorf("phase1: bad block key %q: %w", key, err)
		}
		vec := p.Unlinear(blockID, nil)
		_, size := p.Block(vec)
		blk := tensor.NewCOO(size...)
		local := make([]int, nModes)
		for _, v := range values {
			r := bytes.NewReader(v)
			for m := range local {
				var l int32
				if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
					return err
				}
				local[m] = int(l)
			}
			var val float64
			if err := binary.Read(r, binary.LittleEndian, &val); err != nil {
				return err
			}
			blk.Append(local, val)
		}
		factors, _, err := DecomposeBlock(blk, blockID, p, opts)
		if err != nil {
			return err
		}
		// Emit each sub-factor U(n)_b as an independent record, keyed
		// "U/<block>/<mode>" as in the paper's reducer output.
		for m, f := range factors {
			var buf bytes.Buffer
			if err := blockstore.WriteMatrix(&buf, f); err != nil {
				return err
			}
			emit(fmt.Sprintf("U/%d/%d", blockID, m), buf.Bytes())
		}
		return nil
	}

	out, counters, err := mapreduce.Run(inputs, mapper, reducer, cfg)
	if err != nil {
		return nil, counters, err
	}

	res := &Result{
		Pattern: p,
		Rank:    opts.Rank,
		Sub:     make([][]*mat.Matrix, p.NumBlocks()),
		Fits:    make([]float64, p.NumBlocks()),
	}
	for _, pair := range out {
		parts := strings.Split(pair.Key, "/")
		if len(parts) != 3 || parts[0] != "U" {
			return nil, counters, fmt.Errorf("phase1: unexpected reduce key %q", pair.Key)
		}
		blockID, err1 := strconv.Atoi(parts[1])
		mode, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, counters, fmt.Errorf("phase1: unparseable reduce key %q", pair.Key)
		}
		m, err := blockstore.ReadMatrix(bytes.NewReader(pair.Value))
		if err != nil {
			return nil, counters, err
		}
		if res.Sub[blockID] == nil {
			res.Sub[blockID] = make([]*mat.Matrix, nModes)
		}
		res.Sub[blockID][mode] = m
	}
	// Empty blocks never reached a reducer: fill zero factors (footnote 3).
	for id := range res.Sub {
		if res.Sub[id] == nil {
			vec := p.Unlinear(id, nil)
			_, size := p.Block(vec)
			factors := make([]*mat.Matrix, nModes)
			for m, rows := range size {
				factors[m] = mat.New(rows, opts.Rank)
			}
			res.Sub[id] = factors
			res.Fits[id] = 1
		}
	}
	return res, counters, nil
}

package phase1

import (
	"math/rand"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
	"twopcp/internal/tfile"
)

// BenchmarkPhase1Tiled compares Phase 1 over the in-memory DenseSource
// with the out-of-core TiledSource reading the same tensor from a
// .tptl file (tiling finer than the run partition, so re-tiling is on
// the hot path). Reported metrics: MB/s of tensor decomposed per
// wall-second and peakHeap-MB, the maximum sampled Go heap during the
// run — the number that stays flat for tiled inputs as the tensor
// grows. Baseline numbers live in BENCH_phase1_tiled.json.
func BenchmarkPhase1Tiled(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	dims := []int{48, 48, 48}
	x := tensor.RandomDense(rng, dims...)
	p := grid.MustNew(dims, []int{2, 2, 2})
	opts := Options{Rank: 4, MaxIters: 10, Seed: 3}
	bytesPerOp := float64(len(x.Data) * 8)

	path := filepath.Join(b.TempDir(), "x.tptl")
	w, err := tfile.Create(path, dims, []int{4, 4, 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, vec := range w.Pattern().Positions() {
		from, size := w.Pattern().Block(vec)
		if err := w.WriteTile(vec, x.SubTensor(from, size)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, src Source) {
		b.Helper()
		peak := startHeapSampler()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := Run(src, opts); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		peakMB := float64(peak.stop()) / (1 << 20)
		b.ReportMetric(bytesPerOp*float64(b.N)/elapsed.Seconds()/1e6, "MB/s")
		b.ReportMetric(peakMB, "peakHeap-MB")
	}

	b.Run("InMemory", func(b *testing.B) {
		src, err := NewDenseSource(x, p)
		if err != nil {
			b.Fatal(err)
		}
		run(b, src)
	})
	b.Run("Tiled", func(b *testing.B) {
		r, err := tfile.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		src, err := NewTiledSource(r, p)
		if err != nil {
			b.Fatal(err)
		}
		run(b, src)
	})
}

// heapSampler polls runtime heap usage in the background so a
// benchmark can report its peak working set.
type heapSampler struct {
	peak int64
	done chan struct{}
	quit chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{done: make(chan struct{}), quit: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := atomic.LoadInt64(&s.peak)
			if int64(ms.HeapAlloc) <= old ||
				atomic.CompareAndSwapInt64(&s.peak, old, int64(ms.HeapAlloc)) {
				return
			}
		}
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(200 * time.Microsecond)
		defer t.Stop()
		for {
			select {
			case <-s.quit:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return s
}

func (s *heapSampler) stop() int64 {
	close(s.quit)
	<-s.done
	return atomic.LoadInt64(&s.peak)
}

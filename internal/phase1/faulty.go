package phase1

import (
	"fmt"
	"math/rand"
	"sync"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
)

// FaultySource wraps a Source with seeded fault injection for chaos
// testing the Phase-1 recovery paths: each Block read fails with
// probability Rate (transient — wrapping blockstore.ErrTransient, so
// Options.Retry heals it), and blocks listed in Poison fail permanently
// on every read (wrapping blockstore.ErrInjected, so they exhaust any
// budget and land in quarantine).
type FaultySource struct {
	inner  Source
	rate   float64
	poison map[int]bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultySource wraps inner; rate is the per-read transient fault
// probability, seed makes the injection reproducible, and poison lists
// permanently failing linear block ids.
func NewFaultySource(inner Source, rate float64, seed int64, poison []int) *FaultySource {
	s := &FaultySource{inner: inner, rate: rate, poison: make(map[int]bool, len(poison))}
	for _, id := range poison {
		s.poison[id] = true
	}
	if rate > 0 {
		s.rng = rand.New(rand.NewSource(seed))
	}
	return s
}

// Pattern implements Source.
func (s *FaultySource) Pattern() *grid.Pattern { return s.inner.Pattern() }

// Block implements Source.
func (s *FaultySource) Block(vec []int) (any, error) {
	id := s.inner.Pattern().Linear(vec)
	if s.poison[id] {
		return nil, fmt.Errorf("%w: poison block %d", blockstore.ErrInjected, id)
	}
	if s.rng != nil {
		s.mu.Lock()
		fail := s.rng.Float64() < s.rate
		s.mu.Unlock()
		if fail {
			return nil, fmt.Errorf("%w: injected block read fault (block %d)", blockstore.ErrTransient, id)
		}
	}
	return s.inner.Block(vec)
}

package phase1

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// memCheckpointer is an in-memory Checkpointer for quarantine-resume
// tests.
type memCheckpointer struct {
	mu     sync.Mutex
	blocks map[int][]*mat.Matrix
	fits   map[int]float64
}

func (c *memCheckpointer) LoadBlock(id int) ([]*mat.Matrix, float64, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.blocks[id]
	return f, c.fits[id], ok, nil
}

func (c *memCheckpointer) SaveBlock(id int, factors []*mat.Matrix, fit float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blocks == nil {
		c.blocks = map[int][]*mat.Matrix{}
		c.fits = map[int]float64{}
	}
	c.blocks[id] = factors
	c.fits[id] = fit
	return nil
}

// fastRetry is a retry policy with sub-millisecond backoff for tests.
func fastRetry(maxRetries int) blockstore.RetryPolicy {
	return blockstore.RetryPolicy{
		MaxRetries:  maxRetries,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		Seed:        7,
	}
}

// TestRetryHealsTransientBlockFaults: seeded transient block-read faults
// under a sufficient retry budget produce bit-identical sub-factors to a
// fault-free run, with retries reported in the Result.
func TestRetryHealsTransientBlockFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	opts := Options{Rank: 3, MaxIters: 10, Seed: 7}

	src, _ := NewDenseSource(x, p)
	clean, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	src2, _ := NewDenseSource(x, p)
	faultyOpts := opts
	faultyOpts.Retry = fastRetry(30)
	faulty, err := Run(NewFaultySource(src2, 0.4, 99, nil), faultyOpts)
	if err != nil {
		t.Fatalf("run with healable faults: %v", err)
	}
	if faulty.Retries == 0 {
		t.Fatal("0 retries at 0.4 fault rate — injection not exercised")
	}
	if len(faulty.Quarantined) != 0 {
		t.Fatalf("quarantined %v under a sufficient budget", faulty.Quarantined)
	}
	for id := range clean.Sub {
		for m := range clean.Sub[id] {
			if !clean.Sub[id][m].Equal(faulty.Sub[id][m]) {
				t.Fatalf("block %d mode %d differs between clean and healed runs", id, m)
			}
		}
	}
}

// TestPoisonBlocksQuarantined: permanently failing blocks land in the
// sorted quarantine list as a typed *QuarantineError; sibling blocks'
// work is kept, not lost.
func TestPoisonBlocksQuarantined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	src, _ := NewDenseSource(x, p)
	poison := []int{5, 1}

	res, err := Run(NewFaultySource(src, 0, 0, poison), Options{
		Rank: 3, MaxIters: 10, Seed: 7, Retry: fastRetry(2),
	})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	if !errors.Is(err, blockstore.ErrInjected) {
		t.Fatal("QuarantineError must unwrap to the underlying block errors")
	}
	want := []int{1, 5}
	if !reflect.DeepEqual(qe.Blocks, want) {
		t.Fatalf("quarantined blocks = %v, want %v (sorted)", qe.Blocks, want)
	}
	if !reflect.DeepEqual(res.Quarantined, want) {
		t.Fatalf("Result.Quarantined = %v, want %v", res.Quarantined, want)
	}
	// Sibling work survived: every non-poisoned block has its factors.
	quarantined := map[int]bool{1: true, 5: true}
	for id := range res.Sub {
		if quarantined[id] {
			continue
		}
		if res.Sub[id] == nil {
			t.Fatalf("healthy block %d lost its sub-factors", id)
		}
	}
	// Permanent faults are not retried: budget 2 but 0 retries burned.
	if res.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 for permanent faults", res.Retries)
	}
}

// TestQuarantineResumable: after quarantine, a re-run over a healed source
// with the same checkpointer recomputes only the quarantined blocks and
// finishes bit-identical to an all-clean run.
func TestQuarantineResumable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	opts := Options{Rank: 3, MaxIters: 10, Seed: 7}

	srcClean, _ := NewDenseSource(x, p)
	clean, err := Run(srcClean, opts)
	if err != nil {
		t.Fatal(err)
	}

	ck := &memCheckpointer{}
	src1, _ := NewDenseSource(x, p)
	o1 := opts
	o1.Checkpoint = ck
	o1.Retry = fastRetry(1)
	_, err = Run(NewFaultySource(src1, 0, 0, []int{3}), o1)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("first run: err = %v, want *QuarantineError", err)
	}

	// The fault is fixed; resume recomputes only block 3.
	src2, _ := NewDenseSource(x, p)
	o2 := opts
	o2.Checkpoint = ck
	res, err := Run(src2, o2)
	if err != nil {
		t.Fatalf("resume after quarantine: %v", err)
	}
	recomputed := 0
	for id, s := range res.Sweeps {
		if s > 0 {
			recomputed++
			if id != 3 {
				t.Fatalf("block %d recomputed; only quarantined block 3 should be", id)
			}
		}
	}
	if recomputed != 1 {
		t.Fatalf("recomputed %d blocks, want 1", recomputed)
	}
	for id := range clean.Sub {
		for m := range clean.Sub[id] {
			if !clean.Sub[id][m].Equal(res.Sub[id][m]) {
				t.Fatalf("block %d mode %d differs after quarantine resume", id, m)
			}
		}
	}
}

// TestStopDrainsGracefully: closing Stop before Run starts yields
// ErrStopped with no blocks computed; the result still carries the
// (empty) progress so a checkpointed run can resume.
func TestStopDrainsGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	src, _ := NewDenseSource(x, p)

	stop := make(chan struct{})
	close(stop)
	res, err := Run(src, Options{Rank: 3, MaxIters: 10, Seed: 7, Stop: stop})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res == nil {
		t.Fatal("drained run must still return its partial Result")
	}
	for id, s := range res.Sub {
		if s != nil {
			t.Fatalf("block %d computed after pre-closed Stop", id)
		}
	}
}

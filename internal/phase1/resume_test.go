package phase1

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"twopcp/internal/grid"
	"twopcp/internal/runstate"
	"twopcp/internal/tensor"
)

// countingSource wraps a Source, counting Block calls and failing once a
// budget is exhausted — the Phase-1 analogue of a mid-run crash.
type countingSource struct {
	inner Source

	mu       sync.Mutex
	calls    int
	failFrom int // 1-based call index from which Block fails; 0 = never
}

var errSourceDown = errors.New("phase1 test: source down")

func (s *countingSource) Pattern() *grid.Pattern { return s.inner.Pattern() }

func (s *countingSource) Block(vec []int) (any, error) {
	s.mu.Lock()
	s.calls++
	n := s.calls
	s.mu.Unlock()
	if s.failFrom > 0 && n >= s.failFrom {
		return nil, errSourceDown
	}
	return s.inner.Block(vec)
}

func (s *countingSource) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestPhase1ResumeSkipsCompletedBlocks interrupts Phase 1 partway, resumes
// it with a checkpoint, and verifies (a) the result is bit-identical to an
// uninterrupted run and (b) blocks completed before the crash are not read
// from the source again.
func TestPhase1ResumeSkipsCompletedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := tensor.RandomDense(rng, 12, 10, 8)
	p := grid.MustNew([]int{12, 10, 8}, []int{3, 2, 2})
	src, err := NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 3, MaxIters: 4, Tol: 1e-3, Seed: 21, Workers: 1}

	ref, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	meta := runstate.Meta{InputKind: "test", Dims: p.Dims, Partitions: p.K, Rank: 3, Seed: 21}
	dir := t.TempDir()
	rs, err := runstate.Open(dir, meta, p.NumBlocks(), false)
	if err != nil {
		t.Fatal(err)
	}
	failing := &countingSource{inner: src, failFrom: 6}
	interrupted := opts
	interrupted.Checkpoint = rs
	if _, err := Run(failing, interrupted); !errors.Is(err, errSourceDown) {
		t.Fatalf("interrupted run: got error %v, want source failure", err)
	}
	completed := rs.Phase1Completed()
	if completed == 0 || completed >= p.NumBlocks() {
		t.Fatalf("interruption checkpointed %d of %d blocks; test needs a strict subset", completed, p.NumBlocks())
	}

	rs2, err := runstate.Open(dir, meta, p.NumBlocks(), true)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingSource{inner: src}
	resumed := opts
	resumed.Checkpoint = rs2
	res, err := Run(counting, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := counting.Calls(), p.NumBlocks()-completed; got != want {
		t.Errorf("resume read %d blocks from the source, want %d (skipping %d)", got, want, completed)
	}
	for id := range ref.Sub {
		if res.Fits[id] != ref.Fits[id] {
			t.Fatalf("block %d fit %v, want %v", id, res.Fits[id], ref.Fits[id])
		}
		for m := range ref.Sub[id] {
			g, w := res.Sub[id][m], ref.Sub[id][m]
			for i := range w.Data {
				if g.Data[i] != w.Data[i] {
					t.Fatalf("block %d mode %d differs at %d", id, m, i)
				}
			}
		}
	}

	// A second resume after completion reads nothing at all.
	rs3, err := runstate.Open(dir, meta, p.NumBlocks(), true)
	if err != nil {
		t.Fatal(err)
	}
	idle := &countingSource{inner: src}
	resumed.Checkpoint = rs3
	if _, err := Run(idle, resumed); err != nil {
		t.Fatal(err)
	}
	if idle.Calls() != 0 {
		t.Errorf("fully-checkpointed resume still read %d blocks", idle.Calls())
	}
}

// TestPhase1ResumeParallelWorkers runs the checkpointed resume under a
// worker pool to exercise concurrent SaveBlock calls.
func TestPhase1ResumeParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.RandomDense(rng, 12, 12, 12)
	p := grid.UniformCube(3, 12, 3)
	src, err := NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 3, MaxIters: 3, Tol: 1e-3, Seed: 22, Workers: 4}
	ref, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}

	meta := runstate.Meta{InputKind: "test", Dims: p.Dims, Partitions: p.K, Rank: 3, Seed: 22}
	dir := t.TempDir()
	rs, err := runstate.Open(dir, meta, p.NumBlocks(), false)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := opts
	ckpt.Checkpoint = rs
	res, err := Run(src, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Phase1Completed() != p.NumBlocks() {
		t.Fatalf("manifest records %d blocks, want %d", rs.Phase1Completed(), p.NumBlocks())
	}
	for id := range ref.Sub {
		for m := range ref.Sub[id] {
			g, w := res.Sub[id][m], ref.Sub[id][m]
			for i := range w.Data {
				if g.Data[i] != w.Data[i] {
					t.Fatalf("block %d mode %d differs", id, m)
				}
			}
		}
	}
}

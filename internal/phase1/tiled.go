package phase1

import (
	"fmt"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
	"twopcp/internal/tfile"
)

// TiledSource serves grid blocks straight from a .tptl tiled tensor
// file — the out-of-core Phase-1 input path. When the run's partition
// pattern matches the file tiling, every Block is a single tile read;
// otherwise the block is assembled from the file tiles it intersects
// (coarsening or splitting the tiling on the fly), holding at most one
// file tile plus the output block in memory at a time. Blocks carry
// exactly the same cell values as DenseSource over the same tensor, so
// the decomposition downstream is bit-for-bit identical.
//
// TiledSource is safe for concurrent Block calls (the underlying
// Reader reads via io.ReaderAt), which phase1.Run relies on.
type TiledSource struct {
	R *tfile.Reader
	P *grid.Pattern
}

// NewTiledSource validates that the pattern matches the file's tensor
// shape.
func NewTiledSource(r *tfile.Reader, p *grid.Pattern) (*TiledSource, error) {
	dims := r.Dims()
	if len(dims) != len(p.Dims) {
		return nil, fmt.Errorf("phase1: tiled file has %d modes, pattern %d", len(dims), len(p.Dims))
	}
	for i := range dims {
		if dims[i] != p.Dims[i] {
			return nil, fmt.Errorf("phase1: mode %d: tiled file size %d != pattern size %d", i, dims[i], p.Dims[i])
		}
	}
	return &TiledSource{R: r, P: p}, nil
}

// Pattern implements Source.
func (s *TiledSource) Pattern() *grid.Pattern { return s.P }

// Block implements Source.
func (s *TiledSource) Block(vec []int) (any, error) {
	from, size := s.P.Block(vec)
	tiling := s.R.Tiling()
	if s.P.Equal(tiling) {
		return s.R.ReadTile(vec)
	}
	out := tensor.NewDense(size...)
	n := len(from)
	// Per-mode ranges of file tiles the block intersects.
	lo := make([]int, n)
	hi := make([]int, n)
	for i := range from {
		lo[i], hi[i] = tiling.Cover(i, from[i], size[i])
	}
	tvec := append([]int(nil), lo...)
	srcFrom := make([]int, n)
	dstFrom := make([]int, n)
	span := make([]int, n)
	for {
		tile, err := s.R.ReadTile(tvec)
		if err != nil {
			return nil, err
		}
		// Intersection of the block with this tile, in tile-local
		// (srcFrom) and block-local (dstFrom) coordinates.
		for i, ti := range tvec {
			tFrom, tSize := tiling.ModeRange(i, ti)
			a := max(from[i], tFrom)
			b := min(from[i]+size[i], tFrom+tSize)
			srcFrom[i] = a - tFrom
			dstFrom[i] = a - from[i]
			span[i] = b - a
		}
		tensor.CopyRegion(out, dstFrom, tile, srcFrom, span)
		// Advance tvec through the [lo, hi) box, mode 0 fastest.
		i := 0
		for ; i < n; i++ {
			tvec[i]++
			if tvec[i] < hi[i] {
				break
			}
			tvec[i] = lo[i]
		}
		if i == n {
			return out, nil
		}
	}
}

// Package phase1 implements the first phase of 2PCP (paper §IV): the input
// tensor is partitioned into a grid of sub-tensors and every sub-tensor is
// decomposed independently with CP-ALS — "potentially in parallel", which
// here means a goroutine worker pool by default and, alternatively, the
// paper's exact map/reduce operators on the in-process MapReduce engine
// (see RunMapReduce).
//
// The per-block results are the sub-factors U(i)_k of equation (1),
// X_k ≈ I ×₁ U(1)_k ... ×_N U(N)_k: the block's Kruskal weights λ are
// folded into the factors (λ^(1/N) per mode) because the grid model has an
// identity core. Empty blocks yield zero matrices (paper footnote 3).
package phase1

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"twopcp/internal/blockstore"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/obs"
	"twopcp/internal/tensor"
)

// ErrStopped is returned by Run when Options.Stop was closed before every
// block completed: the workers finished (and checkpointed) their in-flight
// blocks, the producer handed out no further ones. A later run with the
// same Checkpoint resumes exactly where the drain stopped.
var ErrStopped = errors.New("phase1: stopped before completion")

// QuarantineError reports the blocks Run could not decompose after
// exhausting their retry budget. The sibling blocks' work is NOT lost:
// with a Checkpointer configured every completed block is durably
// recorded, so a later run recomputes only the quarantined blocks (the
// quarantined ones are never checkpointed). Unwrap exposes the per-block
// causes, so errors.Is/As classification (e.g. blockstore.ErrInjected)
// sees through the aggregation.
type QuarantineError struct {
	// Blocks lists the quarantined linear block ids, ascending.
	Blocks []int
	// Errs holds the final error of each block, parallel to Blocks.
	Errs []error
}

// Error implements error.
func (e *QuarantineError) Error() string {
	if len(e.Blocks) == 1 {
		return fmt.Sprintf("phase1: block %d quarantined: %v", e.Blocks[0], e.Errs[0])
	}
	return fmt.Sprintf("phase1: %d blocks quarantined (first: block %d: %v)",
		len(e.Blocks), e.Blocks[0], e.Errs[0])
}

// Unwrap exposes the per-block causes to errors.Is/As.
func (e *QuarantineError) Unwrap() []error { return e.Errs }

// Source yields the sub-tensor at a grid position. Implementations may be
// in-memory views or out-of-core chunk readers. Block may return either a
// *tensor.Dense or a *tensor.COO; the appropriate ALS kernel is selected
// per block.
type Source interface {
	Pattern() *grid.Pattern
	Block(vec []int) (any, error)
}

// DenseSource serves blocks of an in-memory dense tensor.
type DenseSource struct {
	X *tensor.Dense
	P *grid.Pattern
}

// NewDenseSource validates that the pattern matches the tensor shape.
func NewDenseSource(x *tensor.Dense, p *grid.Pattern) (*DenseSource, error) {
	if len(x.Dims) != len(p.Dims) {
		return nil, fmt.Errorf("phase1: tensor has %d modes, pattern %d", len(x.Dims), len(p.Dims))
	}
	for i := range x.Dims {
		if x.Dims[i] != p.Dims[i] {
			return nil, fmt.Errorf("phase1: mode %d: tensor size %d != pattern size %d", i, x.Dims[i], p.Dims[i])
		}
	}
	return &DenseSource{X: x, P: p}, nil
}

// Pattern implements Source.
func (s *DenseSource) Pattern() *grid.Pattern { return s.P }

// Block implements Source.
func (s *DenseSource) Block(vec []int) (any, error) {
	from, size := s.P.Block(vec)
	return s.X.SubTensor(from, size), nil
}

// COOSource serves blocks of an in-memory sparse tensor.
type COOSource struct {
	X *tensor.COO
	P *grid.Pattern
}

// NewCOOSource validates that the pattern matches the tensor shape.
func NewCOOSource(x *tensor.COO, p *grid.Pattern) (*COOSource, error) {
	if len(x.Dims) != len(p.Dims) {
		return nil, fmt.Errorf("phase1: tensor has %d modes, pattern %d", len(x.Dims), len(p.Dims))
	}
	for i := range x.Dims {
		if x.Dims[i] != p.Dims[i] {
			return nil, fmt.Errorf("phase1: mode %d: tensor size %d != pattern size %d", i, x.Dims[i], p.Dims[i])
		}
	}
	return &COOSource{X: x, P: p}, nil
}

// Pattern implements Source.
func (s *COOSource) Pattern() *grid.Pattern { return s.P }

// Block implements Source.
func (s *COOSource) Block(vec []int) (any, error) {
	from, size := s.P.Block(vec)
	return s.X.SubTensorCOO(from, size), nil
}

// ChunkSource reads blocks from a blockstore.ChunkStore — the out-of-core
// Phase 1 of the paper's weak configuration (TensorDB-backed).
type ChunkSource struct {
	Store *blockstore.ChunkStore
	P     *grid.Pattern
}

// Pattern implements Source.
func (s *ChunkSource) Pattern() *grid.Pattern { return s.P }

// Block implements Source.
func (s *ChunkSource) Block(vec []int) (any, error) {
	return s.Store.GetChunk(vec)
}

// PartitionToChunks materializes every block of x into the chunk store,
// preparing an out-of-core Phase-1 run.
func PartitionToChunks(x *tensor.Dense, p *grid.Pattern, store *blockstore.ChunkStore) error {
	for _, vec := range p.Positions() {
		from, size := p.Block(vec)
		if err := store.PutChunk(vec, x.SubTensor(from, size)); err != nil {
			return err
		}
	}
	return nil
}

// Checkpointer persists completed block decompositions so an interrupted
// Phase 1 can restart without redoing them. runstate.Run is the production
// implementation. Because every block is seeded from Seed ^ blockID, a
// reloaded block is bit-identical to a recomputed one, so mixing
// checkpointed and fresh blocks cannot change the Result.
type Checkpointer interface {
	// LoadBlock returns the previously recorded sub-factors and fit of
	// block id, or ok=false when none (or an unusable one) exists.
	LoadBlock(id int) (factors []*mat.Matrix, fit float64, ok bool, err error)
	// SaveBlock durably records a completed block. It must be safe for
	// concurrent use (the worker pool checkpoints in parallel).
	SaveBlock(id int, factors []*mat.Matrix, fit float64) error
}

// Options configures Phase 1.
type Options struct {
	// Rank is the target decomposition rank F.
	Rank int
	// MaxIters and Tol are passed to the per-block ALS (defaults 50, 1e-4).
	MaxIters int
	Tol      float64
	// Seed derives per-block generators (seed ^ blockID), keeping parallel
	// runs bit-reproducible regardless of scheduling.
	Seed int64
	// Workers bounds parallel block decompositions (default GOMAXPROCS).
	Workers int
	// Checkpoint, when non-nil, records every completed block and skips
	// blocks it already holds — completed blocks are not even read from
	// the Source again.
	Checkpoint Checkpointer
	// Solver picks the per-block ALS row update (nil = least squares,
	// bit-for-bit the historical path). Every block uses the same solver;
	// the per-block seeding and the worker-count invariance are untouched
	// because the solver runs inside the (deterministic, serial) ALS
	// sweep of each block.
	Solver cpals.Solver
	// Init optionally supplies global warm-start factors (Dims[k]×Rank):
	// each block's ALS starts from the row slices covering its extents
	// instead of the seeded random init — the Phase-0 accelerator's
	// handoff. The grid model restricted to a block's rows is exactly the
	// block's share of the global model, so a good global warm start
	// converges per-block in a few sweeps. Worker-count invariance is
	// unchanged: the slices are value copies and the per-block ALS stays
	// deterministic.
	Init []*mat.Matrix
	// Obs receives telemetry: a phase1.block trace event per completed
	// block (emitted by the worker that finished it, so the event
	// multiset is worker-count invariant) and blocks/sweeps counters.
	// Nil disables it at ~zero cost.
	Obs *obs.Observer
	// Retry is the transient-fault policy for block reads and checkpoint
	// writes: each failing Source.Block or SaveBlock is retried up to the
	// budget with backoff before the block is quarantined. The zero value
	// disables retrying (first failure quarantines). Retries never change
	// numerics: a block decomposed after three read retries is seeded and
	// swept identically to one that read cleanly.
	Retry blockstore.RetryPolicy
	// Stop, when non-nil and closed, drains the run gracefully: workers
	// finish (and checkpoint) the blocks they hold, no new blocks start,
	// and Run returns ErrStopped.
	Stop <-chan struct{}
}

// Result carries the Phase-1 sub-factors.
type Result struct {
	Pattern *grid.Pattern
	Rank    int
	// Sub[blockID][mode] is U(mode)_block with λ folded in; blockID is the
	// pattern's linear block id.
	Sub [][]*mat.Matrix
	// Fits records the per-block ALS fit (1 for empty blocks).
	Fits []float64
	// Sweeps records the per-block ALS sweep count: 0 for blocks restored
	// from a checkpoint (nothing was recomputed) and for empty blocks.
	Sweeps []int
	// Quarantined lists the blocks that failed past their retry budget
	// (ascending block id); empty on a clean run. When non-empty, Run
	// also returns a *QuarantineError and the listed blocks' Sub entries
	// must not be used.
	Quarantined []int
	// Retries counts the transient-fault retries performed under
	// Options.Retry.
	Retries int64
}

// TotalSweeps sums the per-block ALS sweep counts.
func (r *Result) TotalSweeps() int {
	total := 0
	for _, s := range r.Sweeps {
		total += s
	}
	return total
}

// SubFactor returns U(mode) of the block at linear id.
func (r *Result) SubFactor(blockID, mode int) *mat.Matrix { return r.Sub[blockID][mode] }

// Run decomposes every block of src with a worker pool.
func Run(src Source, opts Options) (*Result, error) {
	p := src.Pattern()
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("phase1: rank %d", opts.Rank)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nb := p.NumBlocks()
	res := &Result{
		Pattern: p,
		Rank:    opts.Rank,
		Sub:     make([][]*mat.Matrix, nb),
		Fits:    make([]float64, nb),
		Sweeps:  make([]int, nb),
	}
	cBlocks := opts.Obs.Counter("phase1.blocks_done")
	cSweeps := opts.Obs.Counter("phase1.sweeps")
	blockDone := func(id int, fit float64, sweeps int, cached bool) {
		if cBlocks != nil {
			cBlocks.Inc()
			cSweeps.Add(int64(sweeps))
		}
		if opts.Obs.Tracing() {
			opts.Obs.Emit("phase1.block",
				obs.Int("block", id), obs.F64("fit", fit),
				obs.Int("sweeps", sweeps), obs.Bool("cached", cached))
		}
	}
	type job struct {
		id  int
		vec []int
	}
	jobs := make(chan job)
	// retryer heals transient faults on the block-read and
	// checkpoint-write paths; trace events address Phase-1 blocks with
	// mode -1 and the block id in part.
	retryer := blockstore.NewRetryer(opts.Retry, opts.Obs)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		qBlocks []int
		qErrs   []error
	)
	// quarantine records a block whose retry budget is spent and lets the
	// worker move on: one poison block must not discard its siblings'
	// work (they are individually checkpointed, so a later run recomputes
	// only the quarantined ones).
	quarantine := func(id int, vec []int, err error) {
		mu.Lock()
		qBlocks = append(qBlocks, id)
		qErrs = append(qErrs, fmt.Errorf("phase1: block %v: %w", vec, err))
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one ALS workspace, reused across its blocks
			// so per-sweep scratch is allocated once, not per block.
			ws := cpals.NewWorkspace()
			for j := range jobs {
				if opts.Checkpoint != nil {
					factors, fit, ok, err := opts.Checkpoint.LoadBlock(j.id)
					if err != nil {
						quarantine(j.id, j.vec, err)
						continue
					}
					if ok && blockShapeOK(factors, j.vec, p, opts.Rank) {
						res.Sub[j.id] = factors
						res.Fits[j.id] = fit
						blockDone(j.id, fit, 0, true)
						continue
					}
				}
				var block any
				err := retryer.Do("block", -1, j.id, func() error {
					var e error
					block, e = src.Block(j.vec)
					return e
				})
				if err == nil {
					var factors []*mat.Matrix
					var fit float64
					var sweeps int
					factors, fit, sweeps, err = decomposeBlock(block, j.id, p, opts, ws)
					if err == nil {
						res.Sub[j.id] = factors
						res.Fits[j.id] = fit
						res.Sweeps[j.id] = sweeps
						if opts.Checkpoint != nil {
							err = retryer.Do("save", -1, j.id, func() error {
								return opts.Checkpoint.SaveBlock(j.id, factors, fit)
							})
						}
						if err == nil {
							blockDone(j.id, fit, sweeps, false)
						}
					}
				}
				if err != nil {
					quarantine(j.id, j.vec, err)
				}
			}
		}()
	}
	stopped := false
send:
	for id, vec := range p.Positions() {
		select {
		case jobs <- job{id: id, vec: vec}:
		case <-opts.Stop:
			// Graceful drain: stop handing out blocks; workers finish
			// (and checkpoint) what they hold.
			stopped = true
			break send
		}
	}
	close(jobs)
	wg.Wait()
	res.Retries = retryer.Retries()
	if len(qBlocks) > 0 {
		// Workers finish in nondeterministic order; report ascending.
		order := make([]int, len(qBlocks))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return qBlocks[order[a]] < qBlocks[order[b]] })
		qe := &QuarantineError{Blocks: make([]int, len(order)), Errs: make([]error, len(order))}
		for i, o := range order {
			qe.Blocks[i] = qBlocks[o]
			qe.Errs[i] = qErrs[o]
		}
		res.Quarantined = qe.Blocks
		return res, qe
	}
	if stopped {
		return res, ErrStopped
	}
	return res, nil
}

// blockShapeOK reports whether checkpointed factors have the shape this
// run's pattern and rank demand; anything else is silently recomputed (a
// manifest-level fingerprint mismatch is rejected upstream, so this only
// guards against damaged block files).
func blockShapeOK(factors []*mat.Matrix, vec []int, p *grid.Pattern, rank int) bool {
	_, size := p.Block(vec)
	if len(factors) != len(size) {
		return false
	}
	for m, f := range factors {
		if f == nil || f.Rows != size[m] || f.Cols != rank {
			return false
		}
	}
	return true
}

// DecomposeBlock runs CP-ALS on one block (dense or COO) and returns its
// λ-folded sub-factors plus the achieved fit. Empty blocks return zero
// matrices and fit 1. The blockID seeds the per-block generator.
func DecomposeBlock(block any, blockID int, p *grid.Pattern, opts Options) ([]*mat.Matrix, float64, error) {
	factors, fit, _, err := decomposeBlock(block, blockID, p, opts, nil)
	return factors, fit, err
}

// decomposeBlock is DecomposeBlock with an optional reusable ALS workspace
// (Run's workers each hold one) and the ALS sweep count as an extra
// return. Results are identical with or without the workspace.
func decomposeBlock(block any, blockID int, p *grid.Pattern, opts Options, ws *cpals.Workspace) ([]*mat.Matrix, float64, int, error) {
	vec := p.Unlinear(blockID, nil)
	from, size := p.Block(vec)
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(blockID)*0x9E3779B9))
	alsOpts := cpals.Options{Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol, Rng: rng, Workspace: ws, Solver: opts.Solver}
	if opts.Init != nil {
		init := make([]*mat.Matrix, len(size))
		usable := true
		for m := range init {
			init[m] = opts.Init[m].SliceRows(from[m], from[m]+size[m])
			// An all-zero mode slice would collapse the whole block model
			// (every MTTKRP against it is zero); such blocks keep the
			// seeded random init instead — deterministic either way.
			usable = usable && init[m].Norm() > 0
		}
		if usable {
			alsOpts.Init = init
		}
	}

	var (
		kt   *cpals.KTensor
		info cpals.Info
		err  error
		nnz  int
	)
	switch b := block.(type) {
	case *tensor.Dense:
		nnz = b.NNZ()
		if nnz > 0 {
			kt, info, err = cpals.Decompose(b, alsOpts)
		}
	case *tensor.COO:
		nnz = b.NNZ()
		if nnz > 0 {
			kt, info, err = cpals.DecomposeSparse(b, alsOpts)
		}
	default:
		return nil, 0, 0, fmt.Errorf("phase1: unsupported block type %T", block)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	if nnz == 0 {
		// Paper footnote 3: empty sub-tensors get zero factors.
		factors := make([]*mat.Matrix, len(size))
		for m, rows := range size {
			factors[m] = mat.New(rows, opts.Rank)
		}
		return factors, 1, 0, nil
	}
	return FoldLambda(kt), info.Fit, info.Iters, nil
}

// FoldLambda converts a Kruskal tensor to the identity-core form of
// equation (1) by scaling each factor column by λ^(1/N). The KTensor is
// consumed (its factors are returned, scaled).
func FoldLambda(kt *cpals.KTensor) []*mat.Matrix {
	n := len(kt.Factors)
	scale := make([]float64, kt.Rank())
	for f, l := range kt.Lambda {
		if l < 0 {
			// Defensive: our ALS produces non-negative λ, but fold the
			// sign into the first mode if one ever appears.
			scale[f] = pow(-l, 1/float64(n))
		} else {
			scale[f] = pow(l, 1/float64(n))
		}
	}
	for m, a := range kt.Factors {
		s := scale
		if m == 0 {
			s = append([]float64(nil), scale...)
			for f, l := range kt.Lambda {
				if l < 0 {
					s[f] = -s[f]
				}
			}
		}
		a.ScaleColumns(s)
	}
	return kt.Factors
}

func pow(x, p float64) float64 { return math.Pow(x, p) }

package phase1

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mapreduce"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// lowRankDense builds an exactly rank-r dense tensor.
func lowRankDense(rng *rand.Rand, r int, dims ...int) *tensor.Dense {
	factors := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		factors[k] = mat.Random(d, r, rng)
	}
	return cpals.NewKTensor(factors).Full()
}

func TestNewDenseSourceValidation(t *testing.T) {
	x := tensor.NewDense(4, 4)
	if _, err := NewDenseSource(x, grid.MustNew([]int{4, 4, 4}, []int{2, 2, 2})); err == nil {
		t.Fatal("mode-count mismatch accepted")
	}
	if _, err := NewDenseSource(x, grid.MustNew([]int{4, 5}, []int{2, 1})); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewDenseSource(x, grid.MustNew([]int{4, 4}, []int{2, 2})); err != nil {
		t.Fatal(err)
	}
}

func TestRunProducesWellShapedSubFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 6, 4)
	p := grid.MustNew([]int{8, 6, 4}, []int{2, 3, 2})
	src, err := NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(src, Options{Rank: 3, MaxIters: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sub) != p.NumBlocks() {
		t.Fatalf("blocks = %d", len(res.Sub))
	}
	for id, vec := range p.Positions() {
		_, size := p.Block(vec)
		for m := range size {
			f := res.SubFactor(id, m)
			if f.Rows != size[m] || f.Cols != 3 {
				t.Fatalf("block %v mode %d factor %d×%d, want %d×3", vec, m, f.Rows, f.Cols, size[m])
			}
		}
		if res.Fits[id] <= 0 || res.Fits[id] > 1+1e-9 {
			t.Fatalf("block %v fit = %g", vec, res.Fits[id])
		}
	}
}

func TestRunReconstructsLowRankBlocks(t *testing.T) {
	// Every block of an exactly rank-2 tensor is itself at most rank 2, so
	// Phase-1 sub-factors must reconstruct each block nearly exactly.
	rng := rand.New(rand.NewSource(2))
	x := lowRankDense(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	src, _ := NewDenseSource(x, p)
	res, err := Run(src, Options{Rank: 2, MaxIters: 400, Tol: 1e-12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id, vec := range p.Positions() {
		from, size := p.Block(vec)
		blk := x.SubTensor(from, size)
		kt := cpals.NewKTensor(res.Sub[id]) // identity core: λ = 1
		if fit := kt.Fit(blk); fit < 0.98 {
			t.Fatalf("block %v reconstruction fit = %g", vec, fit)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandomDense(rng, 6, 6, 6)
	p := grid.UniformCube(3, 6, 2)
	src, _ := NewDenseSource(x, p)
	r1, err := Run(src, Options{Rank: 2, MaxIters: 15, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(src, Options{Rank: 2, MaxIters: 15, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for id := range r1.Sub {
		for m := range r1.Sub[id] {
			if !r1.Sub[id][m].Equal(r8.Sub[id][m]) {
				t.Fatalf("block %d mode %d differs across worker counts", id, m)
			}
		}
	}
}

func TestRunSparseEmptyBlocks(t *testing.T) {
	x := tensor.NewCOO(8, 8, 8)
	x.Append([]int{0, 1, 2}, 1)
	x.Append([]int{1, 0, 3}, 2)
	x.Append([]int{2, 3, 1}, 3)
	p := grid.UniformCube(3, 8, 2)
	src, err := NewCOOSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(src, Options{Rank: 2, MaxIters: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All nonzeros are in block (0,0,0); the other 7 blocks are empty.
	zeroBlocks := 0
	for id := range res.Sub {
		allZero := true
		for _, f := range res.Sub[id] {
			if f.MaxAbs() != 0 {
				allZero = false
			}
		}
		if allZero {
			zeroBlocks++
			if res.Fits[id] != 1 {
				t.Fatalf("empty block %d fit = %g", id, res.Fits[id])
			}
		}
	}
	if zeroBlocks != 7 {
		t.Fatalf("zero blocks = %d, want 7", zeroBlocks)
	}
}

func TestFoldLambdaPreservesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	factors := []*mat.Matrix{mat.Random(4, 2, rng), mat.Random(3, 2, rng), mat.Random(5, 2, rng)}
	kt := cpals.NewKTensor(factors)
	kt.Lambda[0], kt.Lambda[1] = 3.5, 0.25
	want := kt.Full()
	folded := FoldLambda(kt.Clone())
	got := cpals.NewKTensor(folded).Full() // identity weights
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("FoldLambda changed the model")
	}
}

func TestChunkSourceOutOfCore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandomDense(rng, 6, 6, 6)
	p := grid.UniformCube(3, 6, 2)
	store, err := blockstore.NewChunkStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := PartitionToChunks(x, p, store); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Writes != 8 {
		t.Fatalf("chunk writes = %d", st.Writes)
	}
	src := &ChunkSource{Store: store, P: p}
	resDisk, err := Run(src, Options{Rank: 2, MaxIters: 15, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Identical to the in-memory run.
	memSrc, _ := NewDenseSource(x, p)
	resMem, err := Run(memSrc, Options{Rank: 2, MaxIters: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for id := range resMem.Sub {
		for m := range resMem.Sub[id] {
			if !resMem.Sub[id][m].Equal(resDisk.Sub[id][m]) {
				t.Fatalf("block %d mode %d differs between memory and disk sources", id, m)
			}
		}
	}
	if st := store.Stats(); st.Reads != 8 {
		t.Fatalf("chunk reads = %d", st.Reads)
	}
}

func TestRunMapReduceMatchesWorkerPool(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandomCOO(rng, 0.4, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	opts := Options{Rank: 2, MaxIters: 15, Seed: 13}

	src, _ := NewCOOSource(x, p)
	pool, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	mr, counters, err := RunMapReduce(x, p, opts, mapreduce.Config{NumReducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id := range pool.Sub {
		for m := range pool.Sub[id] {
			if !pool.Sub[id][m].EqualApprox(mr.Sub[id][m], 1e-12) {
				t.Fatalf("block %d mode %d: MapReduce result differs from worker pool", id, m)
			}
		}
	}
	if counters.ShuffleBytes == 0 || counters.ReduceGroups == 0 {
		t.Fatalf("counters = %+v", counters)
	}
	// Shuffle volume: one record per nonzero, 3×int32 + float64 payload
	// plus the block-id key string.
	if counters.MapOutputRecords != int64(x.NNZ()) {
		t.Fatalf("map outputs = %d, want %d", counters.MapOutputRecords, x.NNZ())
	}
}

func TestRunMapReduceMemoryFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomCOO(rng, 0.5, 8, 8, 8)
	p := grid.UniformCube(3, 8, 1) // single block: all records on one reducer
	_, _, err := RunMapReduce(x, p, Options{Rank: 2, MaxIters: 5, Seed: 1},
		mapreduce.Config{NumReducers: 2, ReducerMemoryBytes: 64})
	if err == nil {
		t.Fatal("expected simulated OOM")
	}
}

func TestRunRankValidation(t *testing.T) {
	x := tensor.NewDense(4, 4)
	p := grid.MustNew([]int{4, 4}, []int{2, 2})
	src, _ := NewDenseSource(x, p)
	if _, err := Run(src, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func TestDecomposeBlockFitSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := grid.MustNew([]int{4, 4, 4}, []int{1, 1, 1})
	x := lowRankDense(rng, 1, 4, 4, 4)
	factors, fit, err := DecomposeBlock(x, 0, p, Options{Rank: 1, MaxIters: 200, Tol: 1e-10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit < 0.999 {
		t.Fatalf("fit = %g", fit)
	}
	kt := cpals.NewKTensor(factors)
	if math.Abs(kt.Fit(x)-fit) > 1e-6 {
		t.Fatal("folded factors do not reproduce the reported fit")
	}
}

// TestRunConstrainedSolver: threading a solver through Options reaches
// every block — nonneg sub-factors stay element-wise nonnegative after the
// λ^(1/N) folding — and stays bit-deterministic across worker counts.
func TestRunConstrainedSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.RandomDense(rng, 10, 9, 8)
	p := grid.MustNew([]int{10, 9, 8}, []int{2, 2, 2})
	src, err := NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 2, MaxIters: 4, Tol: 1e-8, Seed: 3, Solver: cpals.Nonnegative{}}
	ref, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id, sub := range ref.Sub {
		for m, f := range sub {
			for i, v := range f.Data {
				if v < 0 {
					t.Fatalf("block %d mode %d entry %d is %g", id, m, i, v)
				}
			}
		}
	}
	opts.Workers = 3
	again, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := range ref.Sub {
		for m := range ref.Sub[id] {
			if !again.Sub[id][m].Equal(ref.Sub[id][m]) {
				t.Fatalf("block %d mode %d differs across worker counts", id, m)
			}
		}
	}
}

package phase1

import (
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
	"twopcp/internal/tfile"
)

// writeTiled stores x as a .tptl file tiled per tiles and returns an
// open reader.
func writeTiled(t *testing.T, x *tensor.Dense, tiles []int, opts ...tfile.WriterOption) *tfile.Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.tptl")
	w, err := tfile.Create(path, x.Dims, tiles, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, vec := range w.Pattern().Positions() {
		from, size := w.Pattern().Block(vec)
		if err := w.WriteTile(vec, x.SubTensor(from, size)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := tfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestTiledSourceBlocksMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := tensor.RandomDense(rng, 11, 9, 7)
	for _, tc := range []struct {
		name         string
		tiles, parts []int
		opts         []tfile.WriterOption
	}{
		{"same-tiling", []int{2, 3, 2}, []int{2, 3, 2}, nil},
		{"coarsen", []int{4, 3, 4}, []int{2, 1, 2}, nil},
		{"split", []int{2, 1, 2}, []int{4, 3, 4}, nil},
		{"mismatched", []int{3, 2, 3}, []int{2, 3, 2}, nil},
		{"gzip", []int{3, 2, 2}, []int{2, 2, 3}, []tfile.WriterOption{tfile.WithGzip()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := writeTiled(t, x, tc.tiles, tc.opts...)
			p := grid.MustNew(x.Dims, tc.parts)
			src, err := NewTiledSource(r, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, vec := range p.Positions() {
				got, err := src.Block(vec)
				if err != nil {
					t.Fatal(err)
				}
				from, size := p.Block(vec)
				want := x.SubTensor(from, size)
				if !got.(*tensor.Dense).EqualApprox(want, 0) {
					t.Fatalf("block %v differs from in-memory SubTensor", vec)
				}
			}
		})
	}
}

func TestTiledSourceValidation(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(21)), 6, 6)
	r := writeTiled(t, x, []int{2, 2})
	if _, err := NewTiledSource(r, grid.MustNew([]int{6, 6, 6}, []int{2, 2, 2})); err == nil {
		t.Fatal("mode-count mismatch accepted")
	}
	if _, err := NewTiledSource(r, grid.MustNew([]int{6, 5}, []int{2, 1})); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestTiledSourcePhase1Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.RandomDense(rng, 10, 8, 6)
	p := grid.MustNew(x.Dims, []int{2, 2, 2})
	opts := Options{Rank: 3, MaxIters: 15, Seed: 9, Workers: 4}

	memSrc, err := NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(memSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// File tiling deliberately different from the run partition.
	r := writeTiled(t, x, []int{5, 2, 3})
	tiledSrc, err := NewTiledSource(r, p)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Run(tiledSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := range mem.Sub {
		if mem.Fits[id] != tiled.Fits[id] {
			t.Fatalf("block %d fit differs: %g vs %g", id, mem.Fits[id], tiled.Fits[id])
		}
		for m := range mem.Sub[id] {
			if !mem.Sub[id][m].Equal(tiled.Sub[id][m]) {
				t.Fatalf("block %d mode %d sub-factor differs between tiled and dense sources", id, m)
			}
		}
	}
}

func TestGridCover(t *testing.T) {
	p := grid.MustNew([]int{10}, []int{3}) // ranges [0,4) [4,7) [7,10)
	for _, tc := range []struct {
		from, size, lo, hi int
	}{
		{0, 10, 0, 3},
		{0, 4, 0, 1},
		{4, 3, 1, 2},
		{3, 2, 0, 2},
		{6, 2, 1, 3},
		{9, 1, 2, 3},
	} {
		lo, hi := p.Cover(0, tc.from, tc.size)
		if lo != tc.lo || hi != tc.hi {
			t.Fatalf("Cover(0, %d, %d) = [%d,%d), want [%d,%d)",
				tc.from, tc.size, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestCopyRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := tensor.RandomDense(rng, 5, 4, 3)
	dst := tensor.NewDense(6, 6, 6)
	tensor.CopyRegion(dst, []int{1, 2, 3}, src, []int{2, 1, 0}, []int{3, 2, 2})
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if dst.At(1+i, 2+j, 3+k) != src.At(2+i, 1+j, 0+k) {
					t.Fatalf("cell (%d,%d,%d) not copied", i, j, k)
				}
			}
		}
	}
	if nnz := dst.NNZ(); nnz != 3*2*2 {
		t.Fatalf("CopyRegion wrote outside the region: nnz = %d", nnz)
	}
}

package phase1

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"twopcp/internal/grid"
	"twopcp/internal/tensor"
)

// failSource errors on every block read.
type failSource struct{ p *grid.Pattern }

func (s *failSource) Pattern() *grid.Pattern       { return s.p }
func (s *failSource) Block(vec []int) (any, error) { return nil, errFail }

var errFail = errors.New("boom")

// TestRunAllWorkersFailNoDeadlock pins the producer/worker shutdown: when
// every worker exits on error, the job sends must not block forever. With
// Workers: 1 a single failure used to leave the producer stuck on the
// unbuffered channel.
func TestRunAllWorkersFailNoDeadlock(t *testing.T) {
	p, err := grid.New([]int{8, 8, 8}, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		done := make(chan error, 1)
		go func() {
			_, err := Run(&failSource{p: p}, Options{Rank: 2, Workers: workers, Seed: 1})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, errFail) {
				t.Fatalf("workers=%d: err = %v, want wrapped errFail", workers, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: Run deadlocked on an always-failing source", workers)
		}
	}
}

// partialFailSource fails only one specific block, so some workers keep
// draining while one exits.
type partialFailSource struct {
	DenseSource
	failID int
}

func (s *partialFailSource) Block(vec []int) (any, error) {
	id := s.P.Linear(vec)
	if id == s.failID {
		return nil, errFail
	}
	return s.DenseSource.Block(vec)
}

func TestRunSingleBlockFailureReported(t *testing.T) {
	p, err := grid.New([]int{6, 6, 6}, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandomDense(rand.New(rand.NewSource(5)), 6, 6, 6)
	src := &partialFailSource{DenseSource: DenseSource{X: x, P: p}, failID: 13}
	done := make(chan error, 1)
	go func() {
		_, err := Run(src, Options{Rank: 2, Workers: 3, Seed: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errFail) {
			t.Fatalf("err = %v, want wrapped errFail", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after a single block failure")
	}
}

// Package par provides the shared worker-pool primitive behind twopcp's
// parallel compute kernels (dense MTTKRP, Gram and GEMM row panels).
//
// The pool is a fixed set of long-lived goroutines (one per logical CPU)
// started lazily on first use; kernels submit work with Do, which splits an
// index space across the pool and the calling goroutine. Parallelism is
// capped by SetWorkers — the process-wide KernelWorkers knob exposed through
// twopcp.Options — and Do degrades to a plain loop when the cap is 1, the
// index space is trivial, or every pool worker is busy (nested parallelism).
//
// Determinism contract: the kernels built on Do are written so that their
// floating-point results do not depend on the worker count or on how panels
// are scheduled — each output region is owned by exactly one invocation and
// reductions happen in fixed index order (see the package docs of mat and
// tensor). Do itself guarantees only that fn is called exactly once for
// every index and that all calls have returned when Do returns.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"twopcp/internal/obs"
)

// maxWorkers caps kernel parallelism; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// Workers returns the current kernel-parallelism cap (at least 1).
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the kernel-parallelism cap and returns the previous
// setting. n <= 0 restores the default (GOMAXPROCS). The cap is process
// global: concurrent callers that need different settings should coordinate
// (or use the scoped PushWorkers/PopWorkers pair). If scoped overrides are
// active, SetWorkers updates the base they will restore — the newest
// override's cap keeps applying until it pops — so the setting is never
// silently discarded.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	overrideMu.Lock()
	defer overrideMu.Unlock()
	if len(overrides) > 0 {
		prev := overrideBase
		overrideBase = int64(n)
		return int(prev)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MinParallelWork is the approximate flop count below which the compute
// kernels skip parallel dispatch (see WorkersFor). Panel structure — and
// therefore floating-point results — is unaffected; only scheduling
// changes.
const MinParallelWork = 1 << 16

// WorkersFor returns the worker cap for an operation of the given
// approximate flop count: 1 (stay on the caller) below MinParallelWork,
// Workers() otherwise.
func WorkersFor(work int) int {
	if work < MinParallelWork {
		return 1
	}
	return Workers()
}

// Scoped overrides: PushWorkers/PopWorkers bracket a call that wants its
// own cap without leaking it. Active overrides form a stack; the newest
// one's cap applies (the cap is still one process-global value, so while
// calls with different caps overlap, the most recently pushed governs all
// of them). Popping any override — in any completion order — re-applies
// the newest remaining cap, and the last pop restores the pre-override
// base, so a finished call can never leave its cap behind.
var (
	overrideMu   sync.Mutex
	overrideSeq  int
	overrideBase int64
	overrides    []workersOverride
)

type workersOverride struct {
	id  int
	cap int64
}

// PushWorkers installs a scoped kernel-parallelism cap and returns a
// token; pair with PopWorkers(token).
func PushWorkers(n int) int {
	overrideMu.Lock()
	defer overrideMu.Unlock()
	if len(overrides) == 0 {
		overrideBase = maxWorkers.Load()
	}
	if n < 0 {
		n = 0
	}
	overrideSeq++
	overrides = append(overrides, workersOverride{id: overrideSeq, cap: int64(n)})
	maxWorkers.Store(int64(n))
	return overrideSeq
}

// PopWorkers exits the override identified by token, re-applying the
// newest remaining override's cap (or the pre-override base when none
// remain). Unknown tokens are no-ops.
func PopWorkers(token int) {
	overrideMu.Lock()
	defer overrideMu.Unlock()
	for i, o := range overrides {
		if o.id == token {
			overrides = append(overrides[:i], overrides[i+1:]...)
			break
		}
	}
	if len(overrides) == 0 {
		maxWorkers.Store(overrideBase)
	} else {
		maxWorkers.Store(overrides[len(overrides)-1].cap)
	}
}

var (
	poolOnce sync.Once
	tasks    chan func()
)

// dispatchCounter optionally counts parallel kernel dispatches (DoWorkers
// calls that actually fan out). It is process global like the worker cap:
// the CLIs install it once at startup when a metrics registry is active;
// library users with concurrent runs in one process should leave it unset
// and rely on per-run observers instead. The disabled path costs one
// atomic pointer load per parallel dispatch — serial fallbacks don't even
// pay that.
var dispatchCounter atomic.Pointer[obs.Counter]

// SetDispatchCounter installs (or, with nil, removes) the process-global
// dispatch counter, returning nothing; metric: par.dispatches.
func SetDispatchCounter(c *obs.Counter) { dispatchCounter.Store(c) }

func startPool() {
	n := runtime.GOMAXPROCS(0)
	tasks = make(chan func(), n)
	for i := 0; i < n; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// Do calls fn(i) exactly once for every i in [0, n), spreading the calls
// over up to Workers() goroutines, and returns when all calls have
// completed. Indices are handed out dynamically, so per-index cost may be
// uneven; fn must be safe to call concurrently. With an effective worker
// count of 1 the calls run fn(0), fn(1), ... in order on the caller.
func Do(n int, fn func(i int)) {
	DoWorkers(Workers(), n, fn)
}

// DoWorkers is Do with an explicit worker cap (further limited by the
// process-wide setting). Kernels use it to stay serial when the work is too
// small to amortize dispatch; because kernel results are worker-count
// invariant, the cap never changes the output.
func DoWorkers(workers, n int, fn func(i int)) {
	if w := Workers(); workers > w {
		workers = w
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if c := dispatchCounter.Load(); c != nil {
		c.Inc()
	}
	poolOnce.Do(startPool)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	helpers := make([]*atomic.Bool, 0, workers-1)
	for h := 0; h < workers-1; h++ {
		claimed := &atomic.Bool{}
		wg.Add(1)
		t := func() {
			if claimed.CompareAndSwap(false, true) {
				run()
				wg.Done()
			}
			// Lost the claim: the caller already finished the index space,
			// reclaimed this helper and called Done on its behalf.
		}
		select {
		case tasks <- t:
			helpers = append(helpers, claimed)
		default:
			// Every pool worker is busy (e.g. kernels nested under other
			// kernels). The caller still drives the loop to completion, so
			// skipping the helper costs parallelism, never progress.
			wg.Done()
		}
	}
	run()
	// Steal back helpers still sitting unstarted in the queue so wg.Wait
	// doesn't stall behind unrelated long-running tasks: whoever wins the
	// claim owns the Done.
	for _, claimed := range helpers {
		if claimed.CompareAndSwap(false, true) {
			wg.Done()
		}
	}
	wg.Wait()
}

package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		for _, w := range []int{1, 2, 7, runtime.GOMAXPROCS(0) + 3} {
			counts := make([]int32, n)
			DoWorkers(w, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d ran %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestDoSerialOrder(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	var got []int
	Do(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial Do out of order: %v", got)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	orig := SetWorkers(3)
	defer SetWorkers(orig)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", prev)
	}
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

// TestNestedDoDoesNotDeadlock exercises kernels calling kernels: inner Do
// calls issued from pool workers must complete even when the pool is
// saturated.
func TestNestedDoDoesNotDeadlock(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	var total atomic.Int64
	DoWorkers(8, 8, func(i int) {
		DoWorkers(8, 100, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 800 {
		t.Fatalf("nested Do ran %d inner calls, want 800", total.Load())
	}
}

// TestPushPopWorkersNoLeak pins the scoped-override contract: whatever
// order overlapping overrides finish in, a finished override's cap never
// governs the survivors, and the last pop restores the pre-override base.
func TestPushPopWorkersNoLeak(t *testing.T) {
	orig := SetWorkers(5)
	defer SetWorkers(orig)
	a := PushWorkers(8) // records base 5
	b := PushWorkers(2)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2 (newest override)", Workers())
	}
	// The short-lived override finishes first: the survivor's cap must be
	// re-applied, not the finisher's and not the base.
	PopWorkers(b)
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after inner pop, want surviving cap 8", Workers())
	}
	PopWorkers(a)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after all pops, want base 5", Workers())
	}
	PopWorkers(a) // stale token is a no-op
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after stale pop, want 5", Workers())
	}
	// Out-of-order completion the other way: the elder pops first.
	a = PushWorkers(8)
	b = PushWorkers(2)
	PopWorkers(a)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d after elder pop, want 2", Workers())
	}
	PopWorkers(b)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d, want base 5", Workers())
	}
}

func TestConcurrentDo(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			DoWorkers(4, 500, func(i int) { sum.Add(int64(i)) })
			if sum.Load() != 500*499/2 {
				t.Errorf("sum = %d", sum.Load())
			}
		}()
	}
	wg.Wait()
}

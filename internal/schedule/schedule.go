// Package schedule implements 2PCP's update schedules (paper §V–VI): the
// conventional mode-centric order of Algorithm 1 and the block-centric
// tensor-filling cycles of Algorithm 2 under fiber-, Z- and Hilbert-order
// block traversals, together with the data-unit access strings that the
// buffer manager consumes and the virtual-iteration arithmetic used for
// termination checks (Definition 3).
package schedule

import (
	"fmt"
	"sync"

	"twopcp/internal/grid"
	"twopcp/internal/sfc"
)

// Kind selects one of the paper's update schedules.
type Kind int

const (
	// ModeCentric is Algorithm 1: for each mode i, for each partition ki,
	// update A(i)_(ki) once. One data unit per step.
	ModeCentric Kind = iota
	// FiberOrder is Algorithm 2 with nested-loop block traversal (§VI-B).
	FiberOrder
	// ZOrder is Algorithm 2 with Morton-order block traversal (§VI-C.1).
	ZOrder
	// HilbertOrder is Algorithm 2 with Hilbert-order traversal (§VI-C.2).
	HilbertOrder
)

// Kinds lists all schedule kinds in the paper's presentation order.
var Kinds = []Kind{ModeCentric, FiberOrder, ZOrder, HilbertOrder}

// String returns the paper's abbreviation for the schedule kind.
func (k Kind) String() string {
	switch k {
	case ModeCentric:
		return "MC"
	case FiberOrder:
		return "FO"
	case ZOrder:
		return "ZO"
	case HilbertOrder:
		return "HO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps the paper's abbreviations (case-sensitive) to kinds.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "MC", "mode-centric":
		return ModeCentric, nil
	case "FO", "fiber":
		return FiberOrder, nil
	case "ZO", "zorder", "z-order":
		return ZOrder, nil
	case "HO", "hilbert":
		return HilbertOrder, nil
	}
	return 0, fmt.Errorf("schedule: unknown kind %q", s)
}

// IsBlockCentric reports whether the kind schedules updates per block
// position (Algorithm 2) rather than per mode partition (Algorithm 1).
func (k Kind) IsBlockCentric() bool { return k != ModeCentric }

// Access identifies one mode-partition data unit
// ⟨i, ki⟩ = {A(i)_(ki); U(i)_[*,..,ki,..,*]} (paper Definition 4).
type Access struct {
	Mode int
	Part int
}

// Step is one scheduling step of a cycle. A mode-centric step performs a
// single sub-factor update and touches one unit; a block-centric step
// processes one block position, performing N sub-factor updates and
// touching the N units of that position, which are pinned together.
type Step struct {
	Block    []int    // block position vector; nil for mode-centric steps
	Accesses []Access // units touched by this step
}

// Updates returns the number of sub-factor updates the step performs,
// which is the unit of virtual-iteration accounting.
func (s *Step) Updates() int { return len(s.Accesses) }

// Schedule is one tensor-filling cycle C (Definition 2); Phase 2 repeats
// it until the stopping condition fires.
type Schedule struct {
	Kind    Kind
	Pattern *grid.Pattern
	Steps   []Step

	// flat caches the flattened access string for Upcoming; built once on
	// first use (the schedule is immutable after New).
	flatOnce sync.Once
	flat     []Access
}

// New builds the cycle for the given kind over the given pattern.
func New(kind Kind, p *grid.Pattern) *Schedule {
	s := &Schedule{Kind: kind, Pattern: p}
	switch kind {
	case ModeCentric:
		for i := 0; i < p.NModes(); i++ {
			for ki := 0; ki < p.K[i]; ki++ {
				s.Steps = append(s.Steps, Step{Accesses: []Access{{Mode: i, Part: ki}}})
			}
		}
	case FiberOrder, ZOrder, HilbertOrder:
		var order [][]int
		switch kind {
		case FiberOrder:
			order = sfc.FiberOrder(p.K)
		case ZOrder:
			order = sfc.ZOrder(p.K)
		default:
			order = sfc.HilbertOrder(p.K)
		}
		for _, block := range order {
			acc := make([]Access, len(block))
			for i, ki := range block {
				acc[i] = Access{Mode: i, Part: ki}
			}
			s.Steps = append(s.Steps, Step{Block: block, Accesses: acc})
		}
	default:
		panic(fmt.Sprintf("schedule: unknown kind %d", int(kind)))
	}
	return s
}

// UpdatesPerCycle returns the number of sub-factor updates in one cycle:
// Σ K_i for mode-centric, N·ΠK_i for block-centric.
func (s *Schedule) UpdatesPerCycle() int {
	total := 0
	for i := range s.Steps {
		total += s.Steps[i].Updates()
	}
	return total
}

// VirtualIterationLength returns Σ_i K_i, the number of sub-factor updates
// per virtual iteration (Definition 3).
func (s *Schedule) VirtualIterationLength() int { return s.Pattern.SumK() }

// VirtualIterationsPerCycle returns how many virtual iterations one cycle
// spans (may be fractional for odd patterns; callers that need exact
// boundaries should count updates instead).
func (s *Schedule) VirtualIterationsPerCycle() float64 {
	return float64(s.UpdatesPerCycle()) / float64(s.VirtualIterationLength())
}

// AccessString flattens the cycle into the per-unit access sequence (in
// step order, accesses within a step in mode order). The forward-looking
// buffer policy precomputes next-use distances over this string.
func (s *Schedule) AccessString() []Access {
	out := make([]Access, 0, s.UpdatesPerCycle())
	for i := range s.Steps {
		out = append(out, s.Steps[i].Accesses...)
	}
	return out
}

// Upcoming returns the next n accesses of the cyclic access string
// starting at position cursor (the access at cursor itself is the first
// element), wrapping around the cycle. n is clamped to one full cycle —
// looking further ahead than the cycle length only revisits the same
// units. cursor may be any non-negative value; it is reduced modulo the
// cycle length, matching the buffer manager's cursor arithmetic.
//
// This is the lookahead API of the asynchronous Phase-2 pipeline: the
// refinement engine asks for the accesses of the next schedule steps and
// hands them to the buffer manager as prefetch hints while the current
// step's updates run. It is safe for concurrent use.
func (s *Schedule) Upcoming(cursor, n int) []Access {
	s.flatOnce.Do(func() { s.flat = s.AccessString() })
	total := len(s.flat)
	if total == 0 || n <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	if cursor < 0 {
		panic(fmt.Sprintf("schedule: Upcoming cursor %d must be non-negative", cursor))
	}
	cursor %= total
	out := make([]Access, n)
	for i := 0; i < n; i++ {
		out[i] = s.flat[(cursor+i)%total]
	}
	return out
}

// NumUnits returns the number of distinct mode-partition units, Σ K_i.
func NumUnits(p *grid.Pattern) int { return p.SumK() }

// UnitID maps a (mode, part) pair to a dense id in [0, NumUnits):
// units are numbered mode-major.
func UnitID(p *grid.Pattern, mode, part int) int {
	if mode < 0 || mode >= p.NModes() || part < 0 || part >= p.K[mode] {
		panic(fmt.Sprintf("schedule: UnitID(%d, %d) of pattern %v", mode, part, p.K))
	}
	id := part
	for i := 0; i < mode; i++ {
		id += p.K[i]
	}
	return id
}

// UnitFromID inverts UnitID.
func UnitFromID(p *grid.Pattern, id int) (mode, part int) {
	if id < 0 || id >= p.SumK() {
		panic(fmt.Sprintf("schedule: UnitFromID(%d) of pattern %v", id, p.K))
	}
	for i, k := range p.K {
		if id < k {
			return i, id
		}
		id -= k
	}
	panic("unreachable")
}

// UnitBytes returns the size in bytes of unit ⟨mode, part⟩ under the
// paper's accounting (§VI, 8-byte doubles):
//
//	(I_i/K_i·F + Π_{j≠i}K_j · I_i/K_i·F) · 8
//
// using the actual partition row count for uneven splits.
func UnitBytes(p *grid.Pattern, mode, part, rank int) int64 {
	_, rows := p.ModeRange(mode, part)
	blocks := int64(p.SlabSize(mode))
	per := int64(rows) * int64(rank) * 8
	return per + blocks*per
}

// TotalBytes returns the total space requirement Σ units (§IV-A), the
// denominator of the paper's "buffer size as a fraction of the total
// space requirement".
func TotalBytes(p *grid.Pattern, rank int) int64 {
	var total int64
	for i := 0; i < p.NModes(); i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			total += UnitBytes(p, i, ki, rank)
		}
	}
	return total
}

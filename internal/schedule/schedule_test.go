package schedule

import (
	"testing"

	"twopcp/internal/grid"
)

func cube(k int) *grid.Pattern { return grid.UniformCube(3, 8*k, k) }

func TestKindString(t *testing.T) {
	want := map[Kind]string{ModeCentric: "MC", FiberOrder: "FO", ZOrder: "ZO", HilbertOrder: "HO"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"MC", "FO", "ZO", "HO", "hilbert", "zorder", "fiber", "mode-centric"} {
		if _, err := ParseKind(s); err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind should reject unknown strings")
	}
	if k, _ := ParseKind("HO"); k != HilbertOrder {
		t.Fatal("HO should parse to HilbertOrder")
	}
}

func TestIsBlockCentric(t *testing.T) {
	if ModeCentric.IsBlockCentric() {
		t.Fatal("MC is not block-centric")
	}
	for _, k := range []Kind{FiberOrder, ZOrder, HilbertOrder} {
		if !k.IsBlockCentric() {
			t.Fatalf("%v should be block-centric", k)
		}
	}
}

func TestModeCentricCycle(t *testing.T) {
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 4, 2})
	s := New(ModeCentric, p)
	if len(s.Steps) != 8 { // ΣK = 2+4+2
		t.Fatalf("MC steps = %d, want 8", len(s.Steps))
	}
	// Each step: one access, mode-major order.
	if s.Steps[0].Accesses[0] != (Access{0, 0}) || s.Steps[2].Accesses[0] != (Access{1, 0}) {
		t.Fatalf("MC order wrong: %+v", s.Steps)
	}
	for i := range s.Steps {
		if s.Steps[i].Block != nil || s.Steps[i].Updates() != 1 {
			t.Fatal("MC steps must be single-update, blockless")
		}
	}
	if s.UpdatesPerCycle() != 8 {
		t.Fatalf("MC UpdatesPerCycle = %d", s.UpdatesPerCycle())
	}
}

func TestBlockCentricCycles(t *testing.T) {
	p := cube(4) // 4×4×4 blocks
	for _, kind := range []Kind{FiberOrder, ZOrder, HilbertOrder} {
		s := New(kind, p)
		if len(s.Steps) != 64 {
			t.Fatalf("%v: %d steps, want 64", kind, len(s.Steps))
		}
		seen := map[int]bool{}
		for i := range s.Steps {
			st := &s.Steps[i]
			if st.Block == nil || st.Updates() != 3 {
				t.Fatalf("%v: malformed step %+v", kind, st)
			}
			// Accesses must match the block coordinates.
			for m, a := range st.Accesses {
				if a.Mode != m || a.Part != st.Block[m] {
					t.Fatalf("%v: step accesses %+v do not match block %v", kind, st.Accesses, st.Block)
				}
			}
			id := p.Linear(st.Block)
			if seen[id] {
				t.Fatalf("%v: block %v scheduled twice (not tensor-filling)", kind, st.Block)
			}
			seen[id] = true
		}
		if len(seen) != p.NumBlocks() {
			t.Fatalf("%v: cycle covers %d of %d blocks", kind, len(seen), p.NumBlocks())
		}
		if s.UpdatesPerCycle() != 3*64 {
			t.Fatalf("%v: UpdatesPerCycle = %d", kind, s.UpdatesPerCycle())
		}
	}
}

func TestVirtualIterationArithmetic(t *testing.T) {
	p := cube(8) // 8×8×8
	mc := New(ModeCentric, p)
	if mc.VirtualIterationLength() != 24 {
		t.Fatalf("virtual iteration length = %d, want 24", mc.VirtualIterationLength())
	}
	if got := mc.VirtualIterationsPerCycle(); got != 1 {
		t.Fatalf("MC cycle = %g virtual iterations, want 1", got)
	}
	ho := New(HilbertOrder, p)
	// 3·512 updates / 24 per virtual iteration = 64.
	if got := ho.VirtualIterationsPerCycle(); got != 64 {
		t.Fatalf("HO cycle = %g virtual iterations, want 64", got)
	}
}

func TestAccessString(t *testing.T) {
	p := grid.MustNew([]int{4, 4}, []int{2, 2})
	s := New(FiberOrder, p)
	acc := s.AccessString()
	if len(acc) != s.UpdatesPerCycle() {
		t.Fatalf("access string length %d != %d", len(acc), s.UpdatesPerCycle())
	}
	// First block (0,0): accesses (0,0), (1,0).
	if acc[0] != (Access{0, 0}) || acc[1] != (Access{1, 0}) {
		t.Fatalf("access string head = %+v", acc[:2])
	}
}

func TestUnitIDRoundTrip(t *testing.T) {
	p := grid.MustNew([]int{8, 9, 10}, []int{2, 3, 5})
	if NumUnits(p) != 10 {
		t.Fatalf("NumUnits = %d", NumUnits(p))
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			id := UnitID(p, i, ki)
			if id < 0 || id >= 10 || seen[id] {
				t.Fatalf("UnitID(%d,%d) = %d", i, ki, id)
			}
			seen[id] = true
			m, pt := UnitFromID(p, id)
			if m != i || pt != ki {
				t.Fatalf("UnitFromID(%d) = (%d,%d), want (%d,%d)", id, m, pt, i, ki)
			}
		}
	}
}

func TestUnitBytesPaperFormula(t *testing.T) {
	// Paper §VIII-C.1 example: 100K×100K×100K tensor, 8×8×8, F=100.
	// One unit = (10^5/8 ·100 + 64·10^5/8·100)·8 bytes.
	p := grid.UniformCube(3, 100000, 8)
	got := UnitBytes(p, 0, 0, 100)
	want := int64(100000/8*100+64*(100000/8)*100) * 8
	if got != want {
		t.Fatalf("UnitBytes = %d, want %d", got, want)
	}
}

func TestTotalBytesMatchesMemFormula(t *testing.T) {
	// memtotal = Σ_i K_i ((I_i/K_i F) + Π_{j≠i}K_j · I_i/K_i · F) · 8
	p := grid.UniformCube(3, 64, 4)
	rank := 10
	perUnit := int64(64/4*rank+16*(64/4)*rank) * 8
	want := 12 * perUnit // ΣK = 12 units
	if got := TotalBytes(p, rank); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestUnitBytesUnevenSplit(t *testing.T) {
	// 10 rows in 4 partitions: first partitions have 3 rows, later 2.
	p := grid.MustNew([]int{10, 4}, []int{4, 2})
	big := UnitBytes(p, 0, 0, 5)
	small := UnitBytes(p, 0, 3, 5)
	if big <= small {
		t.Fatalf("uneven partition sizes not reflected: %d vs %d", big, small)
	}
}

func TestUnitIDPanics(t *testing.T) {
	p := grid.MustNew([]int{4, 4}, []int{2, 2})
	for name, f := range map[string]func(){
		"mode":  func() { UnitID(p, 2, 0) },
		"part":  func() { UnitID(p, 0, 2) },
		"getid": func() { UnitFromID(p, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Kind(42), grid.MustNew([]int{4}, []int{2}))
}

func TestUpcomingMatchesAccessString(t *testing.T) {
	p := grid.MustNew([]int{8, 8, 8}, []int{2, 2, 2})
	for _, kind := range Kinds {
		s := New(kind, p)
		acc := s.AccessString()
		n := len(acc)
		for _, cursor := range []int{0, 1, n - 1, n, 3*n + 2} {
			got := s.Upcoming(cursor, 5)
			for i, a := range got {
				want := acc[(cursor+i)%n]
				if a != want {
					t.Fatalf("%v Upcoming(%d, 5)[%d] = %v, want %v", kind, cursor, i, a, want)
				}
			}
		}
	}
}

func TestUpcomingClampsToOneCycle(t *testing.T) {
	p := grid.MustNew([]int{4, 4}, []int{2, 2})
	s := New(ModeCentric, p)
	n := s.UpdatesPerCycle()
	if got := s.Upcoming(0, 10*n); len(got) != n {
		t.Fatalf("Upcoming over-long lookahead returned %d accesses, want %d", len(got), n)
	}
	if got := s.Upcoming(0, 0); got != nil {
		t.Fatalf("Upcoming(_, 0) = %v, want nil", got)
	}
}

func TestUpcomingNegativeCursorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(ModeCentric, grid.MustNew([]int{4}, []int{2})).Upcoming(-1, 1)
}

// Package sfc implements the space-filling-curve substrate behind 2PCP's
// re-use-promoting update schedules (paper §VI): Morton (Z-order) and
// Hilbert-order traversals of an N-dimensional block grid, plus the simple
// nested-loop fiber order.
//
// Conventions. All curves operate on n-dimensional coordinates with b bits
// per dimension. In the packed index, coordinate 0 contributes the most
// significant bit of each n-bit group, matching the paper's example
// CZ(010, 011) = 001101 (block position [2,3] ↦ Z-value 13).
//
// The Hilbert mapping uses Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP 2004), which works for arbitrary dimension — the
// paper notes that practical Hilbert implementations for very high mode
// counts are hard; Skilling's construction is exact for any n while needing
// only O(n) state.
//
// Grids whose side is not a power of two (or whose sides differ) are
// traversed by walking the curve over the enclosing power-of-two hypercube
// and skipping positions that fall outside the grid; the relative order of
// in-grid positions is preserved, which retains the curves' clustering
// property.
package sfc

import "fmt"

// Interleave packs n coordinates of b bits each into a single index,
// MSB-first, with x[0] supplying the most significant bit of each group.
func Interleave(x []uint64, b int) uint64 {
	n := len(x)
	if n*b > 64 {
		panic(fmt.Sprintf("sfc: Interleave: %d×%d bits exceed 64", n, b))
	}
	var h uint64
	for j := b - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			h = h<<1 | (x[i]>>uint(j))&1
		}
	}
	return h
}

// Deinterleave is the inverse of Interleave, unpacking h into dst
// (which must have the desired dimension count).
func Deinterleave(h uint64, b int, dst []uint64) {
	n := len(dst)
	if n*b > 64 {
		panic(fmt.Sprintf("sfc: Deinterleave: %d×%d bits exceed 64", n, b))
	}
	for i := range dst {
		dst[i] = 0
	}
	total := n * b
	for p := 0; p < total; p++ {
		bit := h >> uint(total-1-p) & 1
		i := p % n
		j := b - 1 - p/n
		dst[i] |= bit << uint(j)
	}
}

// MortonIndex returns the Z-order value of the coordinate vector, with b
// bits per dimension.
func MortonIndex(coords []int, b int) uint64 {
	x := make([]uint64, len(coords))
	for i, c := range coords {
		checkCoord(c, b)
		x[i] = uint64(c)
	}
	return Interleave(x, b)
}

// MortonCoords inverts MortonIndex, filling and returning dst
// (allocated when nil) with n coordinates.
func MortonCoords(h uint64, n, b int, dst []int) []int {
	if dst == nil {
		dst = make([]int, n)
	}
	x := make([]uint64, n)
	Deinterleave(h, b, x)
	for i, v := range x {
		dst[i] = int(v)
	}
	return dst
}

// HilbertIndex returns the Hilbert-curve position of the coordinate vector,
// with b bits per dimension, using Skilling's transform.
func HilbertIndex(coords []int, b int) uint64 {
	n := len(coords)
	x := make([]uint64, n)
	for i, c := range coords {
		checkCoord(c, b)
		x[i] = uint64(c)
	}
	axesToTranspose(x, b)
	return Interleave(x, b)
}

// HilbertCoords inverts HilbertIndex, filling and returning dst
// (allocated when nil) with n coordinates.
func HilbertCoords(h uint64, n, b int, dst []int) []int {
	if dst == nil {
		dst = make([]int, n)
	}
	x := make([]uint64, n)
	Deinterleave(h, b, x)
	transposeToAxes(x, b)
	for i, v := range x {
		dst[i] = int(v)
	}
	return dst
}

// axesToTranspose converts coordinates in place to Skilling's "transposed"
// Hilbert form (the per-axis bit-slices of the Hilbert index).
func axesToTranspose(x []uint64, b int) {
	n := len(x)
	m := uint64(1) << uint(b-1)
	// Inverse undo of the excess-work loop.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts Skilling's transposed form back to coordinates.
func transposeToAxes(x []uint64, b int) {
	n := len(x)
	top := uint64(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != top; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

func checkCoord(c, b int) {
	if c < 0 || c >= 1<<uint(b) {
		panic(fmt.Sprintf("sfc: coordinate %d does not fit in %d bits", c, b))
	}
}

// bitsFor returns the smallest b with 2^b >= max(k), minimum 1.
func bitsFor(k []int) int {
	b := 1
	for _, v := range k {
		for 1<<uint(b) < v {
			b++
		}
	}
	return b
}

// FiberOrder returns all positions of the grid k (k[i] positions along
// dimension i) in fiber order: nested loops with the LAST dimension varying
// fastest, matching the paper's §VI-B description where consecutive
// positions differ in their N-th coordinate.
func FiberOrder(k []int) [][]int {
	total := 1
	for _, v := range k {
		checkGridDim(v)
		total *= v
	}
	out := make([][]int, 0, total)
	cur := make([]int, len(k))
	for {
		out = append(out, append([]int(nil), cur...))
		// Increment with the last dimension fastest.
		i := len(k) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < k[i] {
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// ZOrder returns all positions of the grid k in Z-order (Morton) sequence.
// Non-power-of-two or unequal grids are handled by traversing the bounding
// power-of-two hypercube and skipping out-of-grid positions.
func ZOrder(k []int) [][]int {
	return curveOrder(k, MortonCoords)
}

// HilbertOrder returns all positions of the grid k in Hilbert-curve
// sequence, with the same bounding-hypercube handling as ZOrder.
func HilbertOrder(k []int) [][]int {
	return curveOrder(k, HilbertCoords)
}

func curveOrder(k []int, decode func(h uint64, n, b int, dst []int) []int) [][]int {
	n := len(k)
	total := 1
	for _, v := range k {
		checkGridDim(v)
		total *= v
	}
	b := bitsFor(k)
	if n*b > 62 {
		panic(fmt.Sprintf("sfc: grid %v needs %d×%d curve bits; too large", k, n, b))
	}
	out := make([][]int, 0, total)
	coords := make([]int, n)
	limit := uint64(1) << uint(n*b)
scan:
	for h := uint64(0); h < limit; h++ {
		decode(h, n, b, coords)
		for i, c := range coords {
			if c >= k[i] {
				continue scan
			}
		}
		out = append(out, append([]int(nil), coords...))
		if len(out) == total {
			break
		}
	}
	return out
}

func checkGridDim(v int) {
	if v <= 0 {
		panic(fmt.Sprintf("sfc: grid dimension %d", v))
	}
}

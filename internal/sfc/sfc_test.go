package sfc

import (
	"testing"
	"testing/quick"
)

func TestInterleaveDeinterleaveRoundTrip(t *testing.T) {
	f := func(a, b16, c16 uint16, b8 uint8) bool {
		b := int(b8%4) + 1 // 1..4 bits
		mask := uint64(1)<<uint(b) - 1
		x := []uint64{uint64(a) & mask, uint64(b16) & mask, uint64(c16) & mask}
		h := Interleave(x, b)
		back := make([]uint64, 3)
		Deinterleave(h, b, back)
		for i := range x {
			if x[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonPaperExample(t *testing.T) {
	// Paper Figure 9(b): CZ(010, 011) = 001101₂ = 13.
	if got := MortonIndex([]int{2, 3}, 3); got != 13 {
		t.Fatalf("MortonIndex([2,3], 3) = %d, want 13", got)
	}
	coords := MortonCoords(13, 2, 3, nil)
	if coords[0] != 2 || coords[1] != 3 {
		t.Fatalf("MortonCoords(13) = %v", coords)
	}
}

func TestMortonBijection2D(t *testing.T) {
	seen := map[uint64]bool{}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			h := MortonIndex([]int{x, y}, 3)
			if h >= 64 || seen[h] {
				t.Fatalf("Morton(%d,%d) = %d (dup or out of range)", x, y, h)
			}
			seen[h] = true
			back := MortonCoords(h, 2, 3, nil)
			if back[0] != x || back[1] != y {
				t.Fatalf("Morton round trip (%d,%d) -> %d -> %v", x, y, h, back)
			}
		}
	}
}

func TestMortonSelfSimilar(t *testing.T) {
	// Z-order is self-similar: the index of a point in a 2^(b+1) grid,
	// restricted to the low quadrant, equals its index in the 2^b grid.
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			small := MortonIndex([]int{x, y}, 2)
			big := MortonIndex([]int{x, y}, 3)
			if small != big {
				t.Fatalf("Morton not self-similar at (%d,%d): %d vs %d", x, y, small, big)
			}
		}
	}
}

func TestHilbertBijection(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{1, 3}, {2, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {5, 1}} {
		size := 1
		for i := 0; i < tc.n; i++ {
			size <<= uint(tc.b)
		}
		seen := make([]bool, size)
		coords := make([]int, tc.n)
		for h := 0; h < size; h++ {
			HilbertCoords(uint64(h), tc.n, tc.b, coords)
			// Round trip.
			if got := HilbertIndex(coords, tc.b); got != uint64(h) {
				t.Fatalf("n=%d b=%d: HilbertIndex(HilbertCoords(%d)) = %d", tc.n, tc.b, h, got)
			}
			idx := 0
			for _, c := range coords {
				if c < 0 || c >= 1<<uint(tc.b) {
					t.Fatalf("n=%d b=%d h=%d: coord %v out of range", tc.n, tc.b, h, coords)
				}
				idx = idx<<uint(tc.b) | c
			}
			if seen[idx] {
				t.Fatalf("n=%d b=%d: coords %v visited twice", tc.n, tc.b, coords)
			}
			seen[idx] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining Hilbert property: consecutive curve positions are
	// adjacent grid cells (exactly one coordinate changes, by ±1).
	for _, tc := range []struct{ n, b int }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}} {
		size := uint64(1) << uint(tc.n*tc.b)
		prev := HilbertCoords(0, tc.n, tc.b, nil)
		for h := uint64(1); h < size; h++ {
			cur := HilbertCoords(h, tc.n, tc.b, nil)
			diff, dist := 0, 0
			for i := range cur {
				if cur[i] != prev[i] {
					diff++
					d := cur[i] - prev[i]
					if d < 0 {
						d = -d
					}
					dist += d
				}
			}
			if diff != 1 || dist != 1 {
				t.Fatalf("n=%d b=%d: jump at h=%d: %v -> %v", tc.n, tc.b, h, prev, cur)
			}
			prev = cur
		}
	}
}

func TestHilbert2x2(t *testing.T) {
	// The order-1 2D Hilbert curve visits the four cells in a "U".
	want := [][]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for h, w := range want {
		got := HilbertCoords(uint64(h), 2, 1, nil)
		if got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("h=%d: %v, want %v", h, got, w)
		}
	}
}

func TestFiberOrderLastModeFastest(t *testing.T) {
	got := FiberOrder([]int{2, 3})
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("FiberOrder[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOrdersCoverGridExactlyOnce(t *testing.T) {
	grids := [][]int{{4, 4}, {2, 2, 2}, {8, 8, 8}, {3, 5}, {4, 2, 3}, {1, 7}}
	for _, k := range grids {
		for name, order := range map[string][][]int{
			"fiber":   FiberOrder(k),
			"zorder":  ZOrder(k),
			"hilbert": HilbertOrder(k),
		} {
			total := 1
			for _, v := range k {
				total *= v
			}
			if len(order) != total {
				t.Fatalf("%s over %v: %d positions, want %d", name, k, len(order), total)
			}
			seen := map[string]bool{}
			for _, pos := range order {
				key := ""
				for i, c := range pos {
					if c < 0 || c >= k[i] {
						t.Fatalf("%s over %v: out-of-grid position %v", name, k, pos)
					}
					key += string(rune('A' + c))
				}
				if seen[key] {
					t.Fatalf("%s over %v: position %v repeated", name, k, pos)
				}
				seen[key] = true
			}
		}
	}
}

func TestZOrderMatchesPaperFigure(t *testing.T) {
	// Figure 9(b): Z traversal of an 8×8 grid starts (0,0), (0,1), (1,0),
	// (1,1) with the SECOND coordinate being the least significant axis.
	order := ZOrder([]int{8, 8})
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 2}}
	for i, w := range want {
		if order[i][0] != w[0] || order[i][1] != w[1] {
			t.Fatalf("ZOrder[%d] = %v, want %v", i, order[i], w)
		}
	}
}

func TestHilbertOrderSmallerJumpsThanZ(t *testing.T) {
	// The paper's motivation for Hilbert over Z: fewer/shorter jumps.
	// Compare total L1 travel over an 8×8 grid.
	travel := func(order [][]int) int {
		total := 0
		for i := 1; i < len(order); i++ {
			for d := range order[i] {
				diff := order[i][d] - order[i-1][d]
				if diff < 0 {
					diff = -diff
				}
				total += diff
			}
		}
		return total
	}
	z := travel(ZOrder([]int{8, 8}))
	h := travel(HilbertOrder([]int{8, 8}))
	if h >= z {
		t.Fatalf("Hilbert travel %d should beat Z travel %d", h, z)
	}
	// Hilbert over a power-of-two grid is a perfect walk: travel = cells-1.
	if h != 63 {
		t.Fatalf("Hilbert travel = %d, want 63", h)
	}
}

func TestCoordinateRangePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"morton-neg":  func() { MortonIndex([]int{-1, 0}, 3) },
		"morton-big":  func() { MortonIndex([]int{8, 0}, 3) },
		"hilbert-big": func() { HilbertIndex([]int{4}, 2) },
		"fiber-zero":  func() { FiberOrder([]int{0, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

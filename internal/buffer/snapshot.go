package buffer

import (
	"fmt"

	"twopcp/internal/schedule"
)

// SnapshotEntry records one resident unit for a checkpoint. The JSON tags
// are the on-disk checkpoint schema (runstate embeds these verbatim).
type SnapshotEntry struct {
	// ID is the unit's dense id (schedule.UnitID ordering).
	ID int `json:"id"`
	// Dirty marks units whose eviction must write back.
	Dirty bool `json:"dirty,omitempty"`
}

// Snapshot captures the manager's replacement-relevant state for a
// checkpoint: the resident units in ascending last-use order (with their
// dirty flags), the Forward policy's schedule cursor and the cumulative
// statistics. A manager restored from this snapshot makes bit-identical
// hit/miss/eviction decisions from that point on — last-use comparisons are
// ordinal, so preserving the recency *order* preserves every LRU/MRU
// choice, and the cursor preserves every Forward-policy distance.
//
// Snapshot must be taken at a quiesce point: no unit may be pinned (the
// engine calls it after a step's Releases). In-flight prefetches are
// deliberately excluded — a prefetch never changes hit/miss classification,
// so dropping it costs at most a re-read after resume.
func (m *Manager) Snapshot() ([]SnapshotEntry, int, Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	order := make([]int, 0, len(m.resident))
	for id, e := range m.resident {
		if e.pins > 0 {
			return nil, 0, Stats{}, fmt.Errorf("buffer: Snapshot with unit %d pinned", id)
		}
		order = append(order, id)
	}
	// Ascending last-use order (clock values are unique).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && m.resident[order[j]].lastUsed < m.resident[order[j-1]].lastUsed; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	entries := make([]SnapshotEntry, len(order))
	for i, id := range order {
		entries[i] = SnapshotEntry{ID: id, Dirty: m.resident[id].dirty}
	}
	return entries, m.cursor, m.stats, nil
}

// Restore repopulates a freshly built manager from a Snapshot: each listed
// unit is fetched from the store and installed with a synthetic last-use
// clock that reproduces the snapshot's recency order, the cursor and the
// statistics are installed verbatim, and none of the restoration reads
// count as fetches (the snapshot's Stats already account for the run so
// far — callers that also track store traffic should reset the store's
// counters after Restore returns).
func (m *Manager) Restore(entries []SnapshotEntry, cursor int, stats Stats) error {
	m.mu.Lock()
	if len(m.resident) != 0 || m.clock != 0 {
		m.mu.Unlock()
		return fmt.Errorf("buffer: Restore on a used manager")
	}
	if len(m.cycle) > 0 && (cursor < 0 || cursor >= len(m.cycle)) {
		m.mu.Unlock()
		return fmt.Errorf("buffer: Restore cursor %d outside cycle of %d", cursor, len(m.cycle))
	}
	m.mu.Unlock()
	numUnits := schedule.NumUnits(m.pattern)
	for i, se := range entries {
		if se.ID < 0 || se.ID >= numUnits {
			return fmt.Errorf("buffer: Restore unit id %d outside [0,%d)", se.ID, numUnits)
		}
		mode, part := schedule.UnitFromID(m.pattern, se.ID)
		u, err := m.store.Get(mode, part)
		if err != nil {
			return fmt.Errorf("buffer: Restore unit ⟨%d,%d⟩: %w", mode, part, err)
		}
		m.mu.Lock()
		m.resident[se.ID] = &entry{unit: u, bytes: u.Bytes(), lastUsed: int64(i + 1), dirty: se.Dirty}
		m.used += u.Bytes()
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.clock = int64(len(entries))
	if len(m.cycle) > 0 {
		m.cursor = cursor
	}
	m.stats = stats
	m.mu.Unlock()
	return nil
}

package buffer

import (
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/schedule"
)

// fixture builds a pattern, a store pre-populated with one unit per
// mode-partition, and a unit byte size (uniform across units).
func fixture(t *testing.T, dims, k []int, rank int) (*grid.Pattern, *blockstore.MemStore, int64) {
	t.Helper()
	p := grid.MustNew(dims, k)
	store := blockstore.NewMemStore()
	rng := rand.New(rand.NewSource(1))
	var unitBytes int64
	for i := 0; i < p.NModes(); i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			_, rows := p.ModeRange(i, ki)
			u := &blockstore.Unit{Mode: i, Part: ki, A: mat.Random(rows, rank, rng), U: map[int]*mat.Matrix{}}
			for _, id := range p.Slab(i, ki) {
				u.U[id] = mat.Random(rows, rank, rng)
			}
			if err := store.Put(u); err != nil {
				t.Fatal(err)
			}
			unitBytes = u.Bytes()
		}
	}
	store.ResetStats()
	return p, store, unitBytes
}

func TestPolicyStringParse(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("belady"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestNewManagerValidation(t *testing.T) {
	p, store, _ := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	cases := []Config{
		{Store: nil, Pattern: p, CapacityBytes: 1},
		{Store: store, Pattern: nil, CapacityBytes: 1},
		{Store: store, Pattern: p, CapacityBytes: 0},
		{Store: store, Pattern: p, CapacityBytes: 1, Policy: Forward}, // no schedule
	}
	for i, cfg := range cases {
		if _, err := NewManager(cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestAcquireHitAndMiss(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 10 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mode != 0 || u.Part != 0 {
		t.Fatalf("acquired wrong unit %d/%d", u.Mode, u.Part)
	}
	m.Release(0, 0, false)
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, false)
	st := m.Stats()
	if st.Fetches != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !m.Contains(0, 0) || m.Contains(1, 1) {
		t.Fatal("residency wrong")
	}
}

func TestEvictionRespectsCapacity(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 2 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	order := []schedule.Access{
		{Mode: 0, Part: 0}, {Mode: 0, Part: 1}, {Mode: 1, Part: 0},
	}
	for _, a := range order {
		if _, err := m.Acquire(a.Mode, a.Part); err != nil {
			t.Fatal(err)
		}
		m.Release(a.Mode, a.Part, false)
	}
	if m.UsedBytes() > m.Capacity() {
		t.Fatalf("used %d > capacity %d", m.UsedBytes(), m.Capacity())
	}
	// LRU: (0,0) is the oldest, must be gone.
	if m.Contains(0, 0) {
		t.Fatal("LRU should have evicted the oldest unit")
	}
	if !m.Contains(0, 1) || !m.Contains(1, 0) {
		t.Fatal("newer units should be resident")
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestPinnedUnitsAreNotEvicted(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	// Still pinned; acquiring another unit overflows rather than evicting.
	if _, err := m.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(0, 0) {
		t.Fatal("pinned unit was evicted")
	}
	if st := m.Stats(); st.Overflows == 0 {
		t.Fatal("overflow not counted")
	}
	m.Release(0, 0, false)
	m.Release(0, 1, false)
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.A.Set(0, 0, 777)
	m.Release(0, 0, true)
	// Force eviction of (0,0).
	if _, err := m.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	got, err := store.Get(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.At(0, 0) != 777 {
		t.Fatal("dirty eviction did not write back")
	}
	if st := m.Stats(); st.WriteBacks != 1 {
		t.Fatalf("write-backs = %d", st.WriteBacks)
	}
}

func TestCleanEvictionSkipsWriteBack(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, false)
	if _, err := m.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	if st := m.Stats(); st.WriteBacks != 0 {
		t.Fatalf("clean eviction wrote back: %+v", st)
	}
}

func TestFlushAll(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 10 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Acquire(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	u.A.Set(0, 0, -5)
	m.Release(1, 1, true)
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.At(0, 0) != -5 {
		t.Fatal("FlushAll did not persist")
	}
	// Second flush is a no-op (entry now clean).
	m.ResetStats()
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.WriteBacks != 0 {
		t.Fatal("FlushAll rewrote clean units")
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, _ := NewManager(Config{Store: store, Pattern: p, CapacityBytes: ub, Policy: LRU})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Release(0, 0, false)
}

// cyclicScan drives the manager through full cycles of the access string
// and returns fetches observed after a warm-up cycle.
func cyclicScan(t *testing.T, m *Manager, accesses []schedule.Access, cycles int) int64 {
	t.Helper()
	// Warm-up cycle.
	for _, a := range accesses {
		if _, err := m.Acquire(a.Mode, a.Part); err != nil {
			t.Fatal(err)
		}
		m.Release(a.Mode, a.Part, false)
	}
	m.ResetStats()
	for c := 0; c < cycles; c++ {
		for _, a := range accesses {
			if _, err := m.Acquire(a.Mode, a.Part); err != nil {
				t.Fatal(err)
			}
			m.Release(a.Mode, a.Part, false)
		}
	}
	return m.Stats().Fetches
}

func TestLRUCyclicPathology(t *testing.T) {
	// A cyclic scan of ΣK=12 units with room for 8: LRU misses on every
	// access (the classic sequential-flooding pathology the paper exploits
	// to motivate MRU/FOR).
	p, store, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	sched := schedule.New(schedule.ModeCentric, p)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 8 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	fetches := cyclicScan(t, m, sched.AccessString(), 4)
	if fetches != 4*12 {
		t.Fatalf("LRU cyclic fetches = %d, want 48 (all misses)", fetches)
	}
}

func TestMRUBeatsLRUOnCyclicScan(t *testing.T) {
	p, _, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	sched := schedule.New(schedule.ModeCentric, p)
	run := func(pol Policy) int64 {
		_, store, _ := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
		m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 8 * ub, Policy: pol, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return cyclicScan(t, m, sched.AccessString(), 4)
	}
	lru, mru := run(LRU), run(MRU)
	if mru >= lru {
		t.Fatalf("MRU (%d) should beat LRU (%d) on a cyclic scan", mru, lru)
	}
	// MRU steady state on a cyclic scan of M units with capacity C keeps a
	// stable prefix resident: misses per cycle = M - C.
	if mru != 4*(12-8) {
		t.Fatalf("MRU fetches = %d, want %d", mru, 4*(12-8))
	}
}

func TestForwardIsOptimalOnCyclicScan(t *testing.T) {
	// On a pure cyclic scan Belady = MRU (keep a prefix resident), so FOR
	// must match MRU and beat LRU.
	p, _, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	sched := schedule.New(schedule.ModeCentric, p)
	run := func(pol Policy) int64 {
		_, store, _ := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
		m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 8 * ub, Policy: pol, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return cyclicScan(t, m, sched.AccessString(), 4)
	}
	forward, mru := run(Forward), run(MRU)
	if forward > mru {
		t.Fatalf("FOR (%d) should not lose to MRU (%d)", forward, mru)
	}
}

func TestForwardBeatsLRUOnBlockSchedule(t *testing.T) {
	// The paper's headline: on block-centric schedules with a tight
	// buffer, FOR needs fewer swaps than LRU.
	p, _, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	sched := schedule.New(schedule.ZOrder, p)
	run := func(pol Policy) int64 {
		_, store, _ := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
		m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 4 * ub, Policy: pol, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return cyclicScan(t, m, sched.AccessString(), 3)
	}
	if f, l := run(Forward), run(LRU); f >= l {
		t.Fatalf("FOR (%d) should beat LRU (%d) on Z-order", f, l)
	}
}

func TestForwardCursorConformance(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	sched := schedule.New(schedule.FiberOrder, p)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 4 * ub, Policy: Forward, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	// First scheduled access is block (0,0) → unit (0,0); acquiring
	// anything else must fail loudly.
	if _, err := m.Acquire(1, 1); err == nil {
		t.Fatal("off-schedule access should error under Forward")
	}
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, false)
}

func TestStatsReset(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, _ := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 4 * ub, Policy: LRU})
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, false)
	m.ResetStats()
	if st := m.Stats(); st.Fetches != 0 || st.Hits != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	// Residency survives the reset.
	if !m.Contains(0, 0) {
		t.Fatal("ResetStats dropped residency")
	}
}

// Package buffer implements 2PCP's buffer manager for Phase-2 data units
// (paper §VII): a bounded cache over a blockstore.Store with pinning,
// dirty-tracking write-back, and three replacement policies — LRU, MRU and
// the paper's forward-looking (FOR) policy, which exploits the regularity
// of the update schedule to evict the unit whose next use lies furthest in
// the future (Belady's rule made practical by the known cyclic access
// string).
//
// A "data swap" in the paper's evaluation is one unit fetched from the
// store into the buffer; Stats.Fetches counts exactly that.
package buffer

import (
	"fmt"
	"sort"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/schedule"
)

// Policy selects the replacement strategy.
type Policy int

const (
	// LRU evicts the least-recently-used unpinned unit.
	LRU Policy = iota
	// MRU evicts the most-recently-used unpinned unit; the paper argues
	// this fits the cyclic "temporal a-locality" of fiber traversals.
	MRU
	// Forward is the paper's forward-looking, schedule-aware policy:
	// evict the unpinned unit whose next scheduled use is furthest away.
	Forward
)

// Policies lists all replacement policies in the paper's order.
var Policies = []Policy{LRU, MRU, Forward}

// String returns the paper's abbreviation.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case MRU:
		return "MRU"
	case Forward:
		return "FOR"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the paper's abbreviations to policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LRU", "lru":
		return LRU, nil
	case "MRU", "mru":
		return MRU, nil
	case "FOR", "for", "forward":
		return Forward, nil
	}
	return 0, fmt.Errorf("buffer: unknown policy %q", s)
}

// Stats counts buffer activity. Fetches is the paper's "data swaps".
type Stats struct {
	Fetches    int64 // store reads caused by misses
	Hits       int64 // acquisitions served from the buffer
	Evictions  int64 // units dropped to make space
	WriteBacks int64 // dirty units written to the store on eviction/flush
	Overflows  int64 // times pinned data exceeded nominal capacity
}

type entry struct {
	unit     *blockstore.Unit
	bytes    int64
	lastUsed int64
	pins     int
	dirty    bool
}

// Manager is the buffer manager. It is not safe for concurrent use; the
// Phase-2 refinement is strictly sequential (it runs "on a single worker
// machine", §I), matching the paper's setting.
type Manager struct {
	store    blockstore.Store
	pattern  *grid.Pattern
	capacity int64
	policy   Policy

	resident map[int]*entry // unit id → entry
	used     int64
	clock    int64
	stats    Stats

	// Forward-policy state: the cyclic unit-access string (as unit ids),
	// per-unit sorted occurrence positions, and the current cursor.
	cycle  []int
	occ    map[int][]int
	cursor int
}

// Config assembles a Manager.
type Config struct {
	// Store is the backing unit store (required).
	Store blockstore.Store
	// Pattern is the grid pattern; unit ids are derived from it (required).
	Pattern *grid.Pattern
	// CapacityBytes bounds resident unit payload. The paper sizes it as a
	// fraction of schedule.TotalBytes.
	CapacityBytes int64
	// Policy selects the replacement strategy.
	Policy Policy
	// Schedule must be supplied for the Forward policy (its access string
	// defines next-use distances); ignored otherwise.
	Schedule *schedule.Schedule
}

// NewManager validates cfg and builds the manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Pattern == nil {
		return nil, fmt.Errorf("buffer: Store and Pattern are required")
	}
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("buffer: capacity %d must be positive", cfg.CapacityBytes)
	}
	m := &Manager{
		store:    cfg.Store,
		pattern:  cfg.Pattern,
		capacity: cfg.CapacityBytes,
		policy:   cfg.Policy,
		resident: make(map[int]*entry),
	}
	if cfg.Policy == Forward {
		if cfg.Schedule == nil {
			return nil, fmt.Errorf("buffer: Forward policy requires a Schedule")
		}
		accesses := cfg.Schedule.AccessString()
		m.cycle = make([]int, len(accesses))
		m.occ = make(map[int][]int)
		for i, a := range accesses {
			id := schedule.UnitID(cfg.Pattern, a.Mode, a.Part)
			m.cycle[i] = id
			m.occ[id] = append(m.occ[id], i)
		}
	}
	return m, nil
}

// Acquire pins the unit ⟨mode, part⟩ in the buffer, fetching it from the
// store on a miss (possibly evicting). Every call advances the schedule
// cursor, so callers must acquire units in exactly the schedule's access
// order when using the Forward policy.
func (m *Manager) Acquire(mode, part int) (*blockstore.Unit, error) {
	id := schedule.UnitID(m.pattern, mode, part)
	m.clock++
	pos := m.cursor
	if len(m.cycle) > 0 {
		if m.cycle[pos] != id {
			return nil, fmt.Errorf("buffer: access ⟨%d,%d⟩ deviates from schedule position %d", mode, part, pos)
		}
		m.cursor = (m.cursor + 1) % len(m.cycle)
	}
	if e, ok := m.resident[id]; ok {
		e.lastUsed = m.clock
		e.pins++
		m.stats.Hits++
		return e.unit, nil
	}
	u, err := m.store.Get(mode, part)
	if err != nil {
		return nil, err
	}
	m.stats.Fetches++
	e := &entry{unit: u, bytes: u.Bytes(), lastUsed: m.clock, pins: 1}
	m.resident[id] = e
	m.used += e.bytes
	if err := m.shrink(pos); err != nil {
		return nil, err
	}
	return u, nil
}

// Release unpins a previously acquired unit; dirty marks it modified so
// eviction (or FlushAll) writes it back.
func (m *Manager) Release(mode, part int, dirty bool) {
	id := schedule.UnitID(m.pattern, mode, part)
	e, ok := m.resident[id]
	if !ok || e.pins <= 0 {
		panic(fmt.Sprintf("buffer: Release of unpinned unit ⟨%d,%d⟩", mode, part))
	}
	e.pins--
	if dirty {
		e.dirty = true
	}
}

// shrink evicts unpinned units until usage fits capacity. If everything
// resident is pinned the buffer temporarily overflows (counted, not fatal),
// mirroring a real buffer manager that must keep its working set.
func (m *Manager) shrink(pos int) error {
	for m.used > m.capacity {
		victim := m.pickVictim(pos)
		if victim == -1 {
			m.stats.Overflows++
			return nil
		}
		if err := m.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim returns the unit id to evict, or -1 when nothing is evictable.
func (m *Manager) pickVictim(pos int) int {
	best := -1
	var bestKey int64
	for id, e := range m.resident {
		if e.pins > 0 {
			continue
		}
		var key int64
		switch m.policy {
		case LRU:
			key = -e.lastUsed // oldest wins
		case MRU:
			key = e.lastUsed // newest wins
		case Forward:
			key = int64(m.nextUseDistance(id, pos)) // furthest wins
		}
		if best == -1 || key > bestKey || (key == bestKey && id < best) {
			best, bestKey = id, key
		}
	}
	return best
}

// nextUseDistance returns how many accesses ahead of pos unit id is next
// used, wrapping around the cycle. Units never used again in the cycle
// (impossible for tensor-filling schedules) get the maximal distance.
func (m *Manager) nextUseDistance(id, pos int) int {
	occ := m.occ[id]
	n := len(m.cycle)
	if len(occ) == 0 {
		return n + 1
	}
	// First occurrence strictly after pos.
	j := sort.SearchInts(occ, pos+1)
	if j < len(occ) {
		return occ[j] - pos
	}
	return occ[0] + n - pos
}

func (m *Manager) evict(id int) error {
	e := m.resident[id]
	if e.dirty {
		if err := m.store.Put(e.unit); err != nil {
			return err
		}
		m.stats.WriteBacks++
	}
	delete(m.resident, id)
	m.used -= e.bytes
	m.stats.Evictions++
	return nil
}

// FlushAll writes every dirty resident unit back to the store (keeping it
// resident and clean). Phase 2 calls this at termination.
func (m *Manager) FlushAll() error {
	// Deterministic order for reproducible store traffic.
	ids := make([]int, 0, len(m.resident))
	for id := range m.resident {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := m.resident[id]
		if !e.dirty {
			continue
		}
		if err := m.store.Put(e.unit); err != nil {
			return err
		}
		m.stats.WriteBacks++
		e.dirty = false
	}
	return nil
}

// Contains reports whether the unit is resident (for tests/diagnostics).
func (m *Manager) Contains(mode, part int) bool {
	_, ok := m.resident[schedule.UnitID(m.pattern, mode, part)]
	return ok
}

// UsedBytes returns the resident payload volume.
func (m *Manager) UsedBytes() int64 { return m.used }

// Capacity returns the configured capacity in bytes.
func (m *Manager) Capacity() int64 { return m.capacity }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (the cursor and residency are kept, so a
// warmed-up buffer can be measured in steady state).
func (m *Manager) ResetStats() { m.stats = Stats{} }

// Package buffer implements 2PCP's buffer manager for Phase-2 data units
// (paper §VII): a bounded cache over a blockstore.Store with pinning,
// dirty-tracking write-back, and three replacement policies — LRU, MRU and
// the paper's forward-looking (FOR) policy, which exploits the regularity
// of the update schedule to evict the unit whose next use lies furthest in
// the future (Belady's rule made practical by the known cyclic access
// string).
//
// A "data swap" in the paper's evaluation is one unit fetched from the
// store into the buffer; Stats.Fetches counts exactly that.
//
// # Concurrency
//
// The Manager is safe for concurrent use: Acquire, Prefetch, Release and
// the read-only accessors may be called from multiple goroutines. When
// Config.Workers > 0 the manager additionally runs an asynchronous I/O
// pipeline: Prefetch reserves capacity and fetches units on a bounded pool
// of I/O worker goroutines, and dirty evictions are written back in the
// background instead of inline. Replacement decisions — hit/miss
// classification, eviction victims, the schedule cursor and every Stats
// counter — are made synchronously inside Acquire under the manager's
// mutex, so a schedule-ordered sequence of Acquire/Release calls produces
// bit-for-bit identical statistics whether prefetching is on or off;
// prefetching only moves the bytes earlier. FlushAll, Drain and Close
// quiesce the pipeline and must not race with new Acquire/Prefetch calls.
package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/obs"
	"twopcp/internal/schedule"
)

// ErrAsyncWriteBack marks errors surfaced from the background write-back
// pipeline. When Acquire or FlushAll returns an error wrapping it, the
// failed Put happened on an earlier, already-completed step — the
// manager's resident state is still consistent with the last step
// boundary, which is what lets the Phase-2 engine take an emergency
// checkpoint before surfacing the error. The original store error is
// wrapped alongside, so errors.Is classification (ErrInjected,
// blockstore.IsTransient) still works through it.
var ErrAsyncWriteBack = errors.New("buffer: background write-back failed")

// Policy selects the replacement strategy.
type Policy int

const (
	// LRU evicts the least-recently-used unpinned unit.
	LRU Policy = iota
	// MRU evicts the most-recently-used unpinned unit; the paper argues
	// this fits the cyclic "temporal a-locality" of fiber traversals.
	MRU
	// Forward is the paper's forward-looking, schedule-aware policy:
	// evict the unpinned unit whose next scheduled use is furthest away.
	Forward
)

// Policies lists all replacement policies in the paper's order.
var Policies = []Policy{LRU, MRU, Forward}

// String returns the paper's abbreviation.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case MRU:
		return "MRU"
	case Forward:
		return "FOR"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the paper's abbreviations to policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LRU", "lru":
		return LRU, nil
	case "MRU", "mru":
		return MRU, nil
	case "FOR", "for", "forward":
		return Forward, nil
	}
	return 0, fmt.Errorf("buffer: unknown policy %q", s)
}

// Stats counts buffer activity. Fetches is the paper's "data swaps".
type Stats struct {
	Fetches    int64 // acquisitions not served from the buffer
	Hits       int64 // acquisitions served from the buffer
	Evictions  int64 // units dropped to make space
	WriteBacks int64 // dirty units written to the store on eviction/flush
	Overflows  int64 // times pinned data exceeded nominal capacity
	Prefetches int64 // background fetches issued by Prefetch
	// DegradedFetches counts prefetches whose background fetch failed and
	// whose demanding Acquire fell back to a fresh synchronous fetch
	// instead of surfacing the prefetch's error. Like Prefetches and
	// Overflows it is exempt from the prefetch-transparency contract:
	// always 0 in synchronous mode, and nonzero only under faults.
	DegradedFetches int64
}

type entry struct {
	unit     *blockstore.Unit
	bytes    int64
	lastUsed int64
	pins     int
	dirty    bool
}

// inflight is one background (or joined synchronous) fetch. The unit and
// err fields are written exactly once, before done is closed.
type inflight struct {
	done  chan struct{}
	unit  *blockstore.Unit
	err   error
	bytes int64 // capacity reservation held until the fetch completes
	// prefetched marks fetches issued by Prefetch: their failures degrade
	// to a synchronous retry in Acquire instead of poisoning the demand
	// path (a dropped hint must never be worse than no hint).
	prefetched bool
}

// Manager is the buffer manager. See the package comment for the
// concurrency contract.
type Manager struct {
	store     blockstore.Store
	pattern   *grid.Pattern
	capacity  int64
	policy    Policy
	workers   int
	wbRetries int
	rank      int

	mu       sync.Mutex
	resident map[int]*entry // unit id → entry
	used     int64
	reserved int64 // bytes of in-flight prefetch reservations
	clock    int64
	stats    Stats
	wbErr    error // first asynchronous write-back failure
	closed   bool

	// infl holds fetches in progress (prefetched or joined): a unit is in
	// at most one of resident/infl. Completed prefetches stay here until
	// an Acquire consumes them.
	infl map[int]*inflight
	// wbPending maps a unit id to the completion channel of its in-flight
	// background write-back. At most one write-back per unit can be
	// pending: re-residency requires a fetch, and fetches wait for the
	// pending write-back first.
	wbPending map[int]chan struct{}

	fetchQ   chan func()
	wbQ      chan func()
	workerWG sync.WaitGroup // pool goroutines
	ioWG     sync.WaitGroup // outstanding async jobs

	// Telemetry. The counters mirror the Stats fields into the observer's
	// registry (monotonic — unlike stats they survive ResetStats); trace
	// events are emitted at the synchronous decision points under mu, so
	// the package's prefetch-transparency contract makes them
	// deterministic. Prefetches and Overflows are metrics-only: their
	// counts legitimately vary with concurrency settings.
	tele        *obs.Observer
	cFetches    *obs.Counter
	cHits       *obs.Counter
	cEvictions  *obs.Counter
	cWriteBacks *obs.Counter
	cOverflows  *obs.Counter
	cPrefetches *obs.Counter
	cDegraded   *obs.Counter
	gUsed       *obs.Gauge

	// Forward-policy state: the cyclic unit-access string (as unit ids),
	// per-unit sorted occurrence positions, and the current cursor.
	cycle  []int
	occ    map[int][]int
	cursor int
}

// Config assembles a Manager.
type Config struct {
	// Store is the backing unit store (required).
	Store blockstore.Store
	// Pattern is the grid pattern; unit ids are derived from it (required).
	Pattern *grid.Pattern
	// CapacityBytes bounds resident unit payload. The paper sizes it as a
	// fraction of schedule.TotalBytes.
	CapacityBytes int64
	// Policy selects the replacement strategy.
	Policy Policy
	// Schedule must be supplied for the Forward policy (its access string
	// defines next-use distances); ignored otherwise.
	Schedule *schedule.Schedule
	// Workers sizes the asynchronous I/O pool. 0 (the default) keeps the
	// manager fully synchronous: Prefetch is a no-op and dirty evictions
	// write back inline, exactly the paper's sequential setting. When
	// positive, Workers goroutines serve prefetches and max(1, Workers/2)
	// more perform background write-backs.
	Workers int
	// Rank is the decomposition rank, used to estimate unit sizes for
	// prefetch capacity reservations. Required when Workers > 0.
	Rank int
	// WriteBackRetries is the number of extra attempts a background
	// write-back job makes on a transient Put failure (doubling backoff,
	// 1ms..50ms) before poisoning the pipeline. The retries run inside
	// the job, so the per-unit write-back ordering chain is untouched.
	// 0 disables (the first failure surfaces, as before).
	WriteBackRetries int
	// Obs receives telemetry (buffer.fetch/evict/writeback trace events
	// and mirrored counters). Nil disables it at ~zero cost.
	Obs *obs.Observer
}

// NewManager validates cfg and builds the manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Pattern == nil {
		return nil, fmt.Errorf("buffer: Store and Pattern are required")
	}
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("buffer: capacity %d must be positive", cfg.CapacityBytes)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("buffer: Workers %d must be non-negative", cfg.Workers)
	}
	if cfg.Workers > 0 && cfg.Rank <= 0 {
		return nil, fmt.Errorf("buffer: Rank is required when Workers > 0 (sizes prefetch reservations)")
	}
	m := &Manager{
		store:     cfg.Store,
		pattern:   cfg.Pattern,
		capacity:  cfg.CapacityBytes,
		policy:    cfg.Policy,
		workers:   cfg.Workers,
		wbRetries: cfg.WriteBackRetries,
		rank:      cfg.Rank,
		resident:  make(map[int]*entry),
		infl:      make(map[int]*inflight),
		wbPending: make(map[int]chan struct{}),

		tele:        cfg.Obs,
		cFetches:    cfg.Obs.Counter("buffer.fetches"),
		cHits:       cfg.Obs.Counter("buffer.hits"),
		cEvictions:  cfg.Obs.Counter("buffer.evictions"),
		cWriteBacks: cfg.Obs.Counter("buffer.write_backs"),
		cOverflows:  cfg.Obs.Counter("buffer.overflows"),
		cPrefetches: cfg.Obs.Counter("buffer.prefetches"),
		cDegraded:   cfg.Obs.Counter("buffer.degraded_fetches"),
		gUsed:       cfg.Obs.Gauge("buffer.used_bytes"),
	}
	if cfg.Policy == Forward {
		if cfg.Schedule == nil {
			return nil, fmt.Errorf("buffer: Forward policy requires a Schedule")
		}
		accesses := cfg.Schedule.AccessString()
		m.cycle = make([]int, len(accesses))
		m.occ = make(map[int][]int)
		for i, a := range accesses {
			id := schedule.UnitID(cfg.Pattern, a.Mode, a.Part)
			m.cycle[i] = id
			m.occ[id] = append(m.occ[id], i)
		}
	}
	if m.workers > 0 {
		m.fetchQ = make(chan func(), 4*m.workers)
		m.wbQ = make(chan func(), 4*m.workers)
		for i := 0; i < m.workers; i++ {
			m.workerWG.Add(1)
			go m.serve(m.fetchQ)
		}
		for i := 0; i < max(1, m.workers/2); i++ {
			m.workerWG.Add(1)
			go m.serve(m.wbQ)
		}
	}
	return m, nil
}

func (m *Manager) serve(q chan func()) {
	defer m.workerWG.Done()
	for job := range q {
		job()
	}
}

// Prefetch asks the manager to stage unit ⟨mode, part⟩ for an upcoming
// Acquire. It is a hint: it never blocks on store I/O, never evicts, and
// has no effect on replacement decisions or statistics other than
// Stats.Prefetches — the later Acquire still classifies the access as a
// miss and counts the swap, it just finds the bytes already (or nearly)
// there. The fetch runs on the I/O worker pool after reserving capacity;
// the reservation is held until the Acquire consumes the staged unit, so
// resident + staged data never exceeds two buffers' worth. The hint is
// dropped when the unit is resident, already in flight, the reservation
// budget is exhausted, the worker pool's queue is full, or the manager is
// synchronous (Workers: 0) or closed.
func (m *Manager) Prefetch(mode, part int) {
	if m.workers == 0 {
		return
	}
	id := schedule.UnitID(m.pattern, mode, part)
	est := schedule.UnitBytes(m.pattern, mode, part, m.rank)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.resident[id] != nil || m.infl[id] != nil || m.reserved+est > m.capacity {
		return
	}
	inf := &inflight{done: make(chan struct{}), bytes: est, prefetched: true}
	wb := m.wbPending[id]
	job := func() {
		defer m.ioWG.Done()
		if wb != nil {
			<-wb
		}
		u, err := m.store.Get(mode, part)
		m.mu.Lock()
		inf.unit, inf.err = u, err
		if err != nil {
			// Nothing was staged; free the reservation now. Successful
			// fetches keep it until Acquire installs the unit.
			m.reserved -= inf.bytes
			inf.bytes = 0
		}
		m.mu.Unlock()
		close(inf.done)
	}
	m.ioWG.Add(1)
	select {
	case m.fetchQ <- job:
		m.infl[id] = inf
		m.reserved += est
		m.stats.Prefetches++
		if m.cPrefetches != nil {
			m.cPrefetches.Inc()
		}
	default:
		// Pool saturated: drop the hint rather than stall the caller's
		// compute thread behind store I/O.
		m.ioWG.Done()
	}
}

// Acquire pins the unit ⟨mode, part⟩ in the buffer, fetching it from the
// store on a miss (possibly evicting). Every call advances the schedule
// cursor, so callers must acquire units in exactly the schedule's access
// order when using the Forward policy. A miss whose unit is in flight from
// a Prefetch waits for that fetch instead of reading the store again; it
// still counts as a fetch ("data swap") because the buffer did not hold
// the unit when it was demanded.
func (m *Manager) Acquire(mode, part int) (*blockstore.Unit, error) {
	id := schedule.UnitID(m.pattern, mode, part)
	m.mu.Lock()
	if err := m.wbErr; err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrAsyncWriteBack, err)
	}
	m.clock++
	myClock := m.clock
	pos := m.cursor
	if len(m.cycle) > 0 {
		if m.cycle[pos] != id {
			m.mu.Unlock()
			return nil, fmt.Errorf("buffer: access ⟨%d,%d⟩ deviates from schedule position %d", mode, part, pos)
		}
		m.cursor = (m.cursor + 1) % len(m.cycle)
	}
	for {
		if e, ok := m.resident[id]; ok {
			if e.lastUsed < myClock {
				e.lastUsed = myClock
			}
			e.pins++
			m.stats.Hits++
			if m.cHits != nil {
				m.cHits.Inc()
			}
			m.mu.Unlock()
			return e.unit, nil
		}
		inf, joined := m.infl[id]
		if !joined {
			inf = &inflight{done: make(chan struct{})}
			m.infl[id] = inf
			wb := m.wbPending[id]
			m.mu.Unlock()
			if wb != nil {
				<-wb
			}
			u, err := m.store.Get(mode, part)
			inf.unit, inf.err = u, err
			close(inf.done)
		} else {
			m.mu.Unlock()
			<-inf.done
		}
		m.mu.Lock()
		if m.infl[id] == inf {
			// First goroutine past the fetch installs (or discards) it.
			delete(m.infl, id)
			m.reserved -= inf.bytes
			if inf.err == nil {
				u := inf.unit
				m.resident[id] = &entry{unit: u, bytes: u.Bytes(), lastUsed: myClock}
				m.used += u.Bytes()
			}
		}
		if inf.err != nil {
			if inf.prefetched {
				// A failed prefetch must never be worse than no prefetch:
				// its reservation is already freed and the inflight entry
				// removed above, so degrade to a fresh synchronous fetch
				// by going around the loop (the store's own retry layer,
				// if any, applies to that attempt). Only a demand fetch's
				// error surfaces.
				m.stats.DegradedFetches++
				if m.cDegraded != nil {
					m.cDegraded.Inc()
				}
				continue
			}
			m.mu.Unlock()
			return nil, inf.err
		}
		e, ok := m.resident[id]
		if !ok {
			// Installed by us or a peer, then evicted by a concurrent
			// acquirer's shrink before we could pin it (only possible
			// off-schedule, under concurrent load). Go around again.
			continue
		}
		if e.lastUsed < myClock {
			e.lastUsed = myClock
		}
		e.pins++
		m.stats.Fetches++
		if m.cFetches != nil {
			m.cFetches.Inc()
			m.gUsed.Set(float64(m.used))
		}
		if m.tele.Tracing() {
			m.tele.Emit("buffer.fetch",
				obs.Int("mode", mode), obs.Int("part", part), obs.I64("bytes", e.bytes))
		}
		wbs, err := m.shrink(pos)
		m.mu.Unlock()
		for _, job := range wbs {
			m.wbQ <- job
		}
		if err != nil {
			return nil, err
		}
		return e.unit, nil
	}
}

// Release unpins a previously acquired unit; dirty marks it modified so
// eviction (or FlushAll) writes it back.
func (m *Manager) Release(mode, part int, dirty bool) {
	id := schedule.UnitID(m.pattern, mode, part)
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.resident[id]
	if !ok || e.pins <= 0 {
		panic(fmt.Sprintf("buffer: Release of unpinned unit ⟨%d,%d⟩", mode, part))
	}
	e.pins--
	if dirty {
		e.dirty = true
	}
}

// shrink evicts unpinned units until usage fits capacity, returning the
// background write-back jobs to enqueue once the lock is dropped. If
// everything resident is pinned the buffer temporarily overflows (counted,
// not fatal), mirroring a real buffer manager that must keep its working
// set. Called with mu held.
func (m *Manager) shrink(pos int) ([]func(), error) {
	var jobs []func()
	for m.used > m.capacity {
		victim := m.pickVictim(pos)
		if victim == -1 {
			m.stats.Overflows++
			if m.cOverflows != nil {
				m.cOverflows.Inc()
			}
			return jobs, nil
		}
		job, err := m.evict(victim)
		if err != nil {
			return jobs, err
		}
		if job != nil {
			jobs = append(jobs, job)
		}
	}
	return jobs, nil
}

// pickVictim returns the unit id to evict, or -1 when nothing is evictable.
// Called with mu held.
func (m *Manager) pickVictim(pos int) int {
	best := -1
	var bestKey int64
	for id, e := range m.resident {
		if e.pins > 0 {
			continue
		}
		var key int64
		switch m.policy {
		case LRU:
			key = -e.lastUsed // oldest wins
		case MRU:
			key = e.lastUsed // newest wins
		case Forward:
			key = int64(m.nextUseDistance(id, pos)) // furthest wins
		}
		if best == -1 || key > bestKey || (key == bestKey && id < best) {
			best, bestKey = id, key
		}
	}
	return best
}

// nextUseDistance returns how many accesses ahead of pos unit id is next
// used, wrapping around the cycle. Units never used again in the cycle
// (impossible for tensor-filling schedules) get the maximal distance.
func (m *Manager) nextUseDistance(id, pos int) int {
	occ := m.occ[id]
	n := len(m.cycle)
	if len(occ) == 0 {
		return n + 1
	}
	// First occurrence strictly after pos.
	j := sort.SearchInts(occ, pos+1)
	if j < len(occ) {
		return occ[j] - pos
	}
	return occ[0] + n - pos
}

// evict drops the unit. A dirty unit is written back: inline in
// synchronous mode, otherwise as a background job (returned for the
// caller to enqueue outside the lock). The WriteBacks counter increments
// at eviction time in both modes, so statistics do not depend on I/O
// timing. Called with mu held.
func (m *Manager) evict(id int) (func(), error) {
	e := m.resident[id]
	var job func()
	if e.dirty {
		m.stats.WriteBacks++
		if m.cWriteBacks != nil {
			m.cWriteBacks.Inc()
		}
		if m.tele.Tracing() {
			m.tele.Emit("buffer.writeback",
				obs.Int("mode", e.unit.Mode), obs.Int("part", e.unit.Part), obs.I64("bytes", e.bytes))
		}
		if m.workers == 0 {
			if err := m.store.Put(e.unit); err != nil {
				return nil, err
			}
		} else {
			// prev is always nil: a unit can only be evicted while
			// resident, and becoming resident again waits for its pending
			// write-back. The chain keeps writes ordered even so.
			prev := m.wbPending[id]
			done := make(chan struct{})
			m.wbPending[id] = done
			u := e.unit
			m.ioWG.Add(1)
			job = func() {
				defer m.ioWG.Done()
				if prev != nil {
					<-prev
				}
				err := m.putWithRetry(u)
				m.mu.Lock()
				if err != nil && m.wbErr == nil {
					m.wbErr = err
				}
				if m.wbPending[id] == done {
					delete(m.wbPending, id)
				}
				m.mu.Unlock()
				close(done)
			}
		}
	}
	delete(m.resident, id)
	m.used -= e.bytes
	m.stats.Evictions++
	if m.cEvictions != nil {
		m.cEvictions.Inc()
		m.gUsed.Set(float64(m.used))
	}
	if m.tele.Tracing() {
		m.tele.Emit("buffer.evict",
			obs.Int("mode", e.unit.Mode), obs.Int("part", e.unit.Part))
	}
	return job, nil
}

// putWithRetry writes a unit back, repeating transient failures with
// doubling backoff (1ms, capped at 50ms) up to Config.WriteBackRetries
// extra attempts. Retrying inside the write-back job keeps the wbPending
// ordering chain intact: the unit's completion channel closes only after
// the final attempt, so a re-fetch or successor write-back still waits
// for the true outcome.
func (m *Manager) putWithRetry(u *blockstore.Unit) error {
	err := m.store.Put(u)
	backoff := time.Millisecond
	for i := 0; err != nil && blockstore.IsTransient(err) && i < m.wbRetries; i++ {
		time.Sleep(backoff)
		backoff *= 2
		if backoff > 50*time.Millisecond {
			backoff = 50 * time.Millisecond
		}
		err = m.store.Put(u)
	}
	return err
}

// Drain blocks until every background fetch and write-back has settled.
// It must not race with new Acquire or Prefetch calls.
func (m *Manager) Drain() {
	m.ioWG.Wait()
}

// FlushAll writes every dirty resident unit back to the store (keeping it
// resident and clean) after draining the background pipeline. Phase 2
// calls this at termination. A synchronous manager writes sequentially in
// unit-id order (deterministic store traffic); with Workers > 0 the
// flushes issue in the same order but run concurrently on the I/O pool —
// same writes, shorter tail. Like Drain, it must not race with new
// Acquire or Prefetch calls.
func (m *Manager) FlushAll() error {
	m.Drain()
	m.mu.Lock()
	if m.wbErr != nil {
		err := m.wbErr
		m.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrAsyncWriteBack, err)
	}
	// Deterministic order for reproducible store traffic.
	ids := make([]int, 0, len(m.resident))
	for id := range m.resident {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var dirty []*entry
	for _, id := range ids {
		e := m.resident[id]
		if !e.dirty {
			continue
		}
		m.stats.WriteBacks++
		if m.cWriteBacks != nil {
			m.cWriteBacks.Inc()
		}
		if m.tele.Tracing() {
			m.tele.Emit("buffer.writeback",
				obs.Int("mode", e.unit.Mode), obs.Int("part", e.unit.Part), obs.I64("bytes", e.bytes))
		}
		e.dirty = false
		dirty = append(dirty, e)
	}
	workers := m.workers
	m.mu.Unlock()
	return blockstore.ForEachConcurrent(len(dirty), workers, func(i int) error {
		return m.store.Put(dirty[i].unit)
	})
}

// Close drains the pipeline, stops the worker pool and discards
// unconsumed prefetches. It returns the first background write-back error,
// if any. Close is idempotent; the manager must not be used afterwards
// (except further Close calls). Like Drain, it must not race with new
// Acquire or Prefetch calls.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		err := m.wbErr
		m.mu.Unlock()
		return err
	}
	m.closed = true
	m.mu.Unlock()
	m.ioWG.Wait()
	if m.workers > 0 {
		close(m.fetchQ)
		close(m.wbQ)
	}
	m.workerWG.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.infl = make(map[int]*inflight)
	m.reserved = 0
	return m.wbErr
}

// Contains reports whether the unit is resident (for tests/diagnostics).
func (m *Manager) Contains(mode, part int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.resident[schedule.UnitID(m.pattern, mode, part)]
	return ok
}

// InFlight reports whether a prefetch (or joined fetch) of the unit is
// outstanding or staged but not yet consumed (for tests/diagnostics).
func (m *Manager) InFlight(mode, part int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.infl[schedule.UnitID(m.pattern, mode, part)]
	return ok
}

// UsedBytes returns the resident payload volume.
func (m *Manager) UsedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// ReservedBytes returns the capacity currently reserved by in-flight
// prefetches.
func (m *Manager) ReservedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserved
}

// Capacity returns the configured capacity in bytes.
func (m *Manager) Capacity() int64 { return m.capacity }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (the cursor and residency are kept, so a
// warmed-up buffer can be measured in steady state).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

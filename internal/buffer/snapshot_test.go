package buffer

import (
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/schedule"
)

// snapshotStore seeds a store with one unit per ⟨mode, part⟩ of p.
func snapshotStore(t *testing.T, p *grid.Pattern, rank int) blockstore.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	store := blockstore.NewMemStore()
	for mode := 0; mode < p.NModes(); mode++ {
		for part := 0; part < p.K[mode]; part++ {
			_, rows := p.ModeRange(mode, part)
			u := &blockstore.Unit{Mode: mode, Part: part, A: mat.Random(rows, rank, rng), U: map[int]*mat.Matrix{}}
			for _, id := range p.Slab(mode, part) {
				u.U[id] = mat.Random(rows, rank, rng)
			}
			if err := store.Put(u); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

// TestSnapshotRestoreReplaysDecisions drives two managers over the same
// store — one continuously, one rebuilt mid-sequence from a Snapshot — and
// checks that the rebuilt manager's residency and statistics track the
// original exactly through the rest of the access sequence.
func TestSnapshotRestoreReplaysDecisions(t *testing.T) {
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			p := grid.UniformCube(3, 12, 3)
			sched := schedule.New(schedule.HilbertOrder, p)
			accesses := sched.AccessString()
			rank := 4
			capacity := schedule.TotalBytes(p, rank) / 2

			store := snapshotStore(t, p, rank)
			cfg := Config{Store: store, Pattern: p, CapacityBytes: capacity, Policy: pol, Schedule: sched}
			cont, err := NewManager(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cut := len(accesses) / 3
			touch := func(m *Manager, a schedule.Access) {
				t.Helper()
				if _, err := m.Acquire(a.Mode, a.Part); err != nil {
					t.Fatal(err)
				}
				m.Release(a.Mode, a.Part, true)
			}
			for _, a := range accesses[:cut] {
				touch(cont, a)
			}
			entries, cursor, stats, err := cont.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			rebuilt, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: capacity, Policy: pol, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			if err := rebuilt.Restore(entries, cursor, stats); err != nil {
				t.Fatal(err)
			}
			if got := rebuilt.Stats(); got != stats {
				t.Fatalf("restored stats %+v, want %+v", got, stats)
			}

			// Both managers now walk the remainder of the cycle (twice, to
			// wrap) and must agree on every counter after every access.
			rest := append(append([]schedule.Access{}, accesses[cut:]...), accesses...)
			for i, a := range rest {
				touch(cont, a)
				touch(rebuilt, a)
				cs, rs := cont.Stats(), rebuilt.Stats()
				if cs != rs {
					t.Fatalf("%s: stats diverge at access %d (%+v): continuous %+v, rebuilt %+v", pol, i, a, cs, rs)
				}
			}
			for mode := 0; mode < p.NModes(); mode++ {
				for part := 0; part < p.K[mode]; part++ {
					if cont.Contains(mode, part) != rebuilt.Contains(mode, part) {
						t.Fatalf("%s: residency of ⟨%d,%d⟩ diverges", pol, mode, part)
					}
				}
			}
		})
	}
}

func TestSnapshotRefusesPinned(t *testing.T) {
	p := grid.UniformCube(3, 6, 2)
	store := snapshotStore(t, p, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 << 30, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot with a pinned unit succeeded")
	}
	m.Release(0, 0, false)
	if _, _, _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRefusesUsedManager(t *testing.T) {
	p := grid.UniformCube(3, 6, 2)
	store := snapshotStore(t, p, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 << 30, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, false)
	if err := m.Restore(nil, 0, Stats{}); err == nil {
		t.Fatal("Restore on a used manager succeeded")
	}

	fresh, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 1 << 30, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore([]SnapshotEntry{{ID: 999}}, 0, Stats{}); err == nil {
		t.Fatal("Restore with out-of-range unit id succeeded")
	}
}

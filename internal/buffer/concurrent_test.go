package buffer

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/schedule"
)

// fileFixture mirrors fixture over a FileStore for genuinely out-of-core
// concurrency tests.
func fileFixture(t *testing.T, dims, k []int, rank int) (*grid.Pattern, *blockstore.FileStore, int64) {
	t.Helper()
	p := grid.MustNew(dims, k)
	store, err := blockstore.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var unitBytes int64
	for i := 0; i < p.NModes(); i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			_, rows := p.ModeRange(i, ki)
			u := &blockstore.Unit{Mode: i, Part: ki, A: mat.Random(rows, rank, rng), U: map[int]*mat.Matrix{}}
			for _, id := range p.Slab(i, ki) {
				u.U[id] = mat.Random(rows, rank, rng)
			}
			if err := store.Put(u); err != nil {
				t.Fatal(err)
			}
			unitBytes = u.Bytes()
		}
	}
	store.ResetStats()
	return p, store, unitBytes
}

// hammerManager drives parallel Acquire/Prefetch/Release (the satellite
// race test): goroutines race over all units with a tight capacity and
// dirty releases, then the buffer is flushed and every unit must still be
// complete in the store. Run with -race.
func hammerManager(t *testing.T, p *grid.Pattern, store blockstore.Store, capacity int64, rank int) {
	t.Helper()
	m, err := NewManager(Config{
		Store: store, Pattern: p, CapacityBytes: capacity,
		Policy: LRU, Workers: 3, Rank: rank,
	})
	if err != nil {
		t.Fatal(err)
	}
	units := schedule.NumUnits(p)
	var wg sync.WaitGroup
	var acquires int64
	var amu sync.Mutex
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			local := int64(0)
			for i := 0; i < 150; i++ {
				id := rng.Intn(units)
				mode, part := schedule.UnitFromID(p, id)
				if rng.Intn(3) == 0 {
					m.Prefetch(mode, part)
					continue
				}
				u, err := m.Acquire(mode, part)
				if err != nil {
					t.Error(err)
					return
				}
				if u.Mode != mode || u.Part != part {
					t.Errorf("acquired ⟨%d,%d⟩, got ⟨%d,%d⟩", mode, part, u.Mode, u.Part)
				}
				dirty := rng.Intn(2) == 0
				if dirty {
					u.A.Set(0, 0, float64(w*1000+i))
				}
				local++
				m.Release(mode, part, dirty)
			}
			amu.Lock()
			acquires += local
			amu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Fetches+st.Hits != acquires {
		t.Fatalf("fetches %d + hits %d != acquires %d", st.Fetches, st.Hits, acquires)
	}
	// Every unit survived the storm complete.
	for i := 0; i < p.NModes(); i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			u, err := store.Get(i, ki)
			if err != nil {
				t.Fatalf("unit ⟨%d,%d⟩ unreadable after concurrent run: %v", i, ki, err)
			}
			if u.A == nil || len(u.U) != p.SlabSize(i) {
				t.Fatalf("unit ⟨%d,%d⟩ malformed after concurrent run", i, ki)
			}
		}
	}
}

func TestConcurrentAcquirePrefetchReleaseMemStore(t *testing.T) {
	p, store, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	hammerManager(t, p, store, 5*ub, 2)
}

func TestConcurrentAcquirePrefetchReleaseFileStore(t *testing.T) {
	p, store, ub := fileFixture(t, []int{12, 12, 12}, []int{3, 3, 3}, 2)
	hammerManager(t, p, store, 4*ub, 2)
}

func TestPrefetchStagesUnitWithoutTouchingStats(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{
		Store: store, Pattern: p, CapacityBytes: 10 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Prefetch(0, 0)
	m.Drain()
	if !m.InFlight(0, 0) || m.Contains(0, 0) {
		t.Fatal("prefetched unit should be staged in flight, not resident")
	}
	if st := m.Stats(); st.Fetches != 0 || st.Hits != 0 || st.Prefetches != 1 {
		t.Fatalf("prefetch leaked into logical stats: %+v", st)
	}
	// The Acquire consumes the staged bytes but still classifies the
	// access as a miss: the swap count is prefetch-invariant.
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mode != 0 || u.Part != 0 {
		t.Fatalf("wrong unit %d/%d", u.Mode, u.Part)
	}
	m.Release(0, 0, false)
	if st := m.Stats(); st.Fetches != 1 || st.Hits != 0 {
		t.Fatalf("consume should count as one fetch: %+v", st)
	}
	if got := store.Stats().Reads; got != 1 {
		t.Fatalf("store reads = %d, want 1 (prefetch and acquire share one read)", got)
	}
	if m.InFlight(0, 0) || !m.Contains(0, 0) {
		t.Fatal("consume should move the unit from in-flight to resident")
	}
}

func TestPrefetchHintsDoNotChangeLogicalStats(t *testing.T) {
	// The same schedule-ordered workload, with and without prefetch hints,
	// must produce identical replacement behaviour: prefetching is pure
	// data movement.
	logical := func(s Stats) [5]int64 {
		return [5]int64{s.Fetches, s.Hits, s.Evictions, s.WriteBacks, s.Overflows}
	}
	p, _, ub := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
	sched := schedule.New(schedule.HilbertOrder, p)
	accesses := sched.AccessString()
	run := func(workers, depth int) [5]int64 {
		_, store, _ := fixture(t, []int{16, 16, 16}, []int{4, 4, 4}, 2)
		m, err := NewManager(Config{
			Store: store, Pattern: p, CapacityBytes: 6 * ub,
			Policy: Forward, Schedule: sched, Workers: workers, Rank: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			for i, a := range accesses {
				for d := 1; d <= depth; d++ {
					na := accesses[(i+d)%len(accesses)]
					m.Prefetch(na.Mode, na.Part)
				}
				if _, err := m.Acquire(a.Mode, a.Part); err != nil {
					t.Fatal(err)
				}
				m.Release(a.Mode, a.Part, true)
			}
		}
		if err := m.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		return logical(m.Stats())
	}
	sync0 := run(0, 0)
	async0 := run(3, 0)
	async4 := run(3, 4)
	if sync0 != async0 {
		t.Fatalf("async write-back changed logical stats: sync %v, async %v", sync0, async0)
	}
	if sync0 != async4 {
		t.Fatalf("prefetch hints changed logical stats: sync %v, prefetch %v", sync0, async4)
	}
}

func TestBackgroundWriteBackBarrier(t *testing.T) {
	// A re-fetch racing a slow background write-back must see the
	// written-back data, not the stale store copy.
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	slow := blockstore.WithLatency(mem, 0, 5*time.Millisecond)
	m, err := NewManager(Config{
		Store: slow, Pattern: p, CapacityBytes: 1 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.A.Set(0, 0, 424242)
	m.Release(0, 0, true)
	// Evict ⟨0,0⟩ (capacity is one unit); its write-back runs behind a
	// 5ms latency while we immediately demand the unit again.
	if _, err := m.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	got, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.At(0, 0) != 424242 {
		t.Fatalf("re-fetch observed stale data: A[0,0] = %g, want 424242", got.A.At(0, 0))
	}
	m.Release(0, 0, false)
}

func TestAsyncWriteBackErrorSurfaces(t *testing.T) {
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	faulty.FailWrite = 1
	m, err := NewManager(Config{
		Store: faulty, Pattern: p, CapacityBytes: 1 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.A.Set(0, 0, 1)
	m.Release(0, 0, true)
	if _, err := m.Acquire(0, 1); err != nil { // evicts ⟨0,0⟩, write-back fails in background
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	m.Drain()
	if err := m.FlushAll(); !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("FlushAll err = %v, want injected write fault", err)
	}
	if err := m.Close(); !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("Close err = %v, want injected write fault", err)
	}
}

func TestWorkersRequireRank(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	if _, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: ub, Policy: LRU, Workers: 2}); err == nil {
		t.Fatal("Workers > 0 without Rank should fail")
	}
	if _, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: ub, Policy: LRU, Workers: -1}); err == nil {
		t.Fatal("negative Workers should fail")
	}
}

func TestCloseIsIdempotentAndStopsPrefetch(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{
		Store: store, Pattern: p, CapacityBytes: 4 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Prefetch(0, 0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m.Prefetch(0, 1) // no-op after Close, must not panic or leak
	if st := store.Stats(); st.Reads > 1 {
		t.Fatalf("post-Close prefetch reached the store: %+v", st)
	}
}

func TestSynchronousManagerIgnoresPrefetch(t *testing.T) {
	p, store, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	m, err := NewManager(Config{Store: store, Pattern: p, CapacityBytes: 4 * ub, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	m.Prefetch(0, 0)
	m.Drain()
	if m.InFlight(0, 0) || store.Stats().Reads != 0 {
		t.Fatal("Workers: 0 manager must ignore prefetch hints")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

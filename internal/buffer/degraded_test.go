package buffer

import (
	"errors"
	"testing"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/obs"
)

// TestDegradedPrefetchFallsBackToSyncFetch: a prefetch whose background
// fetch fails must never be worse than no prefetch — Acquire degrades to
// a fresh synchronous fetch and succeeds, counting DegradedFetches.
func TestDegradedPrefetchFallsBackToSyncFetch(t *testing.T) {
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	faulty.FailRead = 1 // the prefetch's background read
	reg := obs.NewRegistry()
	m, err := NewManager(Config{
		Store: faulty, Pattern: p, CapacityBytes: 10 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
		Obs: &obs.Observer{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.Prefetch(0, 0)
	m.Drain()
	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatalf("Acquire after failed prefetch: %v", err)
	}
	if u.Mode != 0 || u.Part != 0 {
		t.Fatalf("acquired wrong unit ⟨%d,%d⟩", u.Mode, u.Part)
	}
	m.Release(0, 0, false)
	st := m.Stats()
	if st.DegradedFetches != 1 {
		t.Fatalf("DegradedFetches = %d, want 1", st.DegradedFetches)
	}
	if got := reg.Counter("buffer.degraded_fetches").Load(); got != 1 {
		t.Fatalf("buffer.degraded_fetches counter = %d, want 1", got)
	}
	if st.Fetches != 1 {
		t.Fatalf("Fetches = %d, want 1 (the successful demand fetch)", st.Fetches)
	}
}

// TestDegradedFetchSurfacesDemandError: when the degraded synchronous
// re-fetch also fails, that error surfaces from Acquire (no livelock).
func TestDegradedFetchSurfacesDemandError(t *testing.T) {
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	faulty.SetPlan(blockstore.FaultPlan{ReadOutageFrom: 1, ReadOutageLen: 1 << 40})
	m, err := NewManager(Config{
		Store: faulty, Pattern: p, CapacityBytes: 10 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.Prefetch(0, 0)
	m.Drain()
	if _, err := m.Acquire(0, 0); !blockstore.IsTransient(err) {
		t.Fatalf("Acquire = %v, want the demand fetch's transient error", err)
	}
	if st := m.Stats(); st.DegradedFetches != 1 {
		t.Fatalf("DegradedFetches = %d, want 1", st.DegradedFetches)
	}
}

// TestWriteBackRetryHeals: a transient write outage shorter than
// WriteBackRetries heals inside the background write-back job — no
// ErrAsyncWriteBack, and the written unit is intact in the store.
func TestWriteBackRetryHeals(t *testing.T) {
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	m, err := NewManager(Config{
		Store: faulty, Pattern: p, CapacityBytes: 1 * ub, // capacity 1: every new unit evicts
		Policy: LRU, Workers: 2, Rank: 2,
		WriteBackRetries: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	u, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.A.Set(0, 0, 42)
	m.Release(0, 0, true)

	// Writes 1..2 fail transiently; the write-back's retries absorb them.
	faulty.SetPlan(blockstore.FaultPlan{WriteOutageFrom: 1, WriteOutageLen: 2})
	if _, err := m.Acquire(0, 1); err != nil { // evicts dirty ⟨0,0⟩
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	m.Drain()
	if err := m.FlushAll(); err != nil {
		t.Fatalf("FlushAll after healed write-back: %v", err)
	}
	got, err := mem.Get(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.A.At(0, 0) != 42 {
		t.Fatalf("written-back unit lost the dirty update: A[0,0] = %g", got.A.At(0, 0))
	}
	if _, writes := faulty.Fails(); writes != 2 {
		t.Fatalf("injected write failures = %d, want 2", writes)
	}
}

// TestWriteBackBudgetExhaustedSurfaces: a write outage longer than the
// retry budget surfaces as ErrAsyncWriteBack from the next Acquire (the
// emergency-checkpoint trigger in the engine) and from FlushAll.
func TestWriteBackBudgetExhaustedSurfaces(t *testing.T) {
	p, mem, ub := fixture(t, []int{4, 4}, []int{2, 2}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	m, err := NewManager(Config{
		Store: faulty, Pattern: p, CapacityBytes: 1 * ub,
		Policy: LRU, Workers: 2, Rank: 2,
		WriteBackRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 0, true)
	faulty.SetPlan(blockstore.FaultPlan{WriteOutageFrom: 1, WriteOutageLen: 1 << 40})
	if _, err := m.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	m.Release(0, 1, false)
	m.Drain()

	// Acquire reports the failed write-back before advancing any state.
	_, err = m.Acquire(1, 0)
	if !errors.Is(err, ErrAsyncWriteBack) {
		t.Fatalf("Acquire after exhausted write-back = %v, want ErrAsyncWriteBack", err)
	}
	if err := m.FlushAll(); !errors.Is(err, ErrAsyncWriteBack) {
		t.Fatalf("FlushAll = %v, want ErrAsyncWriteBack", err)
	}
}

// TestConcurrentResilientSandwich is the satellite -race test: the full
// wrapper sandwich Resilient→Latency→Faulty→MemStore under a concurrent
// Acquire/Prefetch/Release storm with seeded transient faults and op
// deadlines. The retry layer heals every injected fault, so the hammer's
// integrity assertions (every unit complete after the storm) must hold.
func TestConcurrentResilientSandwich(t *testing.T) {
	p, mem, ub := fixture(t, []int{12, 12, 12}, []int{3, 3, 3}, 2)
	faulty := blockstore.NewFaultyStore(mem)
	faulty.SetPlan(blockstore.FaultPlan{Seed: 99, ReadRate: 0.05, WriteRate: 0.05})
	slow := blockstore.WithLatency(faulty, 20*time.Microsecond, 20*time.Microsecond)
	rs := blockstore.Resilient(slow, blockstore.RetryPolicy{
		MaxRetries:  20,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		OpTimeout:   time.Second,
		Seed:        7,
	}, nil)
	hammerManager(t, p, rs, 4*ub, 2)
	if got := rs.Stats().BreakerTrips; got != 0 {
		t.Fatalf("breaker tripped %d times under healable faults", got)
	}
}

// TestConcurrentResilientSandwichFileStore mirrors the sandwich race test
// over a FileStore base.
func TestConcurrentResilientSandwichFileStore(t *testing.T) {
	p, store, ub := fileFixture(t, []int{8, 8, 8}, []int{2, 2, 2}, 2)
	defer store.Close()
	faulty := blockstore.NewFaultyStore(store)
	faulty.SetPlan(blockstore.FaultPlan{Seed: 3, ReadRate: 0.03, WriteRate: 0.03})
	slow := blockstore.WithLatency(faulty, 10*time.Microsecond, 10*time.Microsecond)
	rs := blockstore.Resilient(slow, blockstore.RetryPolicy{
		MaxRetries:  20,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		Seed:        11,
	}, nil)
	hammerManager(t, p, rs, 3*ub, 2)
}

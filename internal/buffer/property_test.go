package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twopcp/internal/blockstore"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/schedule"
)

// buildFixture populates a store for an arbitrary pattern.
func buildFixture(t *testing.T, p *grid.Pattern, rank int) (*blockstore.MemStore, int64) {
	t.Helper()
	store := blockstore.NewMemStore()
	rng := rand.New(rand.NewSource(99))
	var unitBytes int64
	for i := 0; i < p.NModes(); i++ {
		for ki := 0; ki < p.K[i]; ki++ {
			_, rows := p.ModeRange(i, ki)
			u := &blockstore.Unit{Mode: i, Part: ki, A: mat.Random(rows, rank, rng), U: map[int]*mat.Matrix{}}
			for _, id := range p.Slab(i, ki) {
				u.U[id] = mat.Random(rows, rank, rng)
			}
			if err := store.Put(u); err != nil {
				t.Fatal(err)
			}
			if b := u.Bytes(); b > unitBytes {
				unitBytes = b
			}
		}
	}
	store.ResetStats()
	return store, unitBytes
}

// runPolicy drives a manager through `cycles` full cycles of the schedule
// and returns total fetches (cold start included — identical across
// policies for the comparison to be fair).
func runPolicy(t *testing.T, p *grid.Pattern, sched *schedule.Schedule, capacity int64, pol Policy, cycles int) int64 {
	t.Helper()
	store, _ := buildFixture(t, p, 2)
	m, err := NewManager(Config{
		Store: store, Pattern: p, CapacityBytes: capacity,
		Policy: pol, Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	accesses := sched.AccessString()
	for c := 0; c < cycles; c++ {
		for _, a := range accesses {
			if _, err := m.Acquire(a.Mode, a.Part); err != nil {
				t.Fatal(err)
			}
			m.Release(a.Mode, a.Part, false)
		}
	}
	return m.Stats().Fetches
}

// TestForwardBeladyOptimalProperty: the forward-looking policy implements
// Belady's offline-optimal rule for the known cyclic access string, so for
// any UNIFORM pattern (equal partition counts per mode — the paper's
// setting, under which all data units have the same size), any schedule and
// any buffer size, it must fetch no more than LRU or MRU.
// testing/quick randomizes the configuration.
//
// The uniformity restriction is substantive: with unequal partition counts
// the units have different sizes and eviction becomes a weighted-caching
// problem, for which Belady's rule is not optimal — quick.Check finds
// counterexamples (e.g. K = (3,1,1)) if the restriction is lifted.
func TestForwardBeladyOptimalProperty(t *testing.T) {
	f := func(k1, fracSel, kindSel uint8) bool {
		kk := int(k1%3) + 1
		k := []int{kk, kk, kk}
		dims := []int{kk * 4, kk * 4, kk * 4}
		p := grid.MustNew(dims, k)
		kind := schedule.Kinds[int(kindSel)%len(schedule.Kinds)]
		sched := schedule.New(kind, p)
		total := schedule.TotalBytes(p, 2)
		fracs := []float64{1.0 / 3, 1.0 / 2, 2.0 / 3}
		capacity := int64(fracs[int(fracSel)%3] * float64(total))
		if capacity <= 0 {
			capacity = 1
		}
		forward := runPolicy(t, p, sched, capacity, Forward, 3)
		lru := runPolicy(t, p, sched, capacity, LRU, 3)
		mru := runPolicy(t, p, sched, capacity, MRU, 3)
		return forward <= lru && forward <= mru
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSwapCountsScaleFreeProperty: per-iteration swaps depend on the
// pattern and buffer fraction, not on absolute tensor size (paper
// §VIII-C.1) — doubling every mode size must not change fetch counts.
func TestSwapCountsScaleFreeProperty(t *testing.T) {
	f := func(kindSel, fracSel uint8) bool {
		kind := schedule.Kinds[int(kindSel)%len(schedule.Kinds)]
		fracs := []float64{1.0 / 3, 1.0 / 2, 2.0 / 3}
		frac := fracs[int(fracSel)%3]
		count := func(scale int) int64 {
			p := grid.UniformCube(3, 8*scale, 4)
			sched := schedule.New(kind, p)
			capacity := int64(frac * float64(schedule.TotalBytes(p, 2)))
			return runPolicy(t, p, sched, capacity, Forward, 2)
		}
		return count(1) == count(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyNeverFetchesResident: acquiring a resident unit is never a
// fetch, whatever the policy — a basic soundness property.
func TestPolicyNeverFetchesResident(t *testing.T) {
	p := grid.UniformCube(3, 8, 2)
	sched := schedule.New(schedule.FiberOrder, p)
	for _, pol := range Policies {
		store, ub := buildFixture(t, p, 2)
		m, err := NewManager(Config{
			Store: store, Pattern: p, CapacityBytes: 100 * ub,
			Policy: pol, Schedule: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		accesses := sched.AccessString()
		for c := 0; c < 3; c++ {
			for _, a := range accesses {
				if _, err := m.Acquire(a.Mode, a.Part); err != nil {
					t.Fatal(err)
				}
				m.Release(a.Mode, a.Part, false)
			}
		}
		// Capacity is huge: only the ΣK cold misses are allowed.
		if got := m.Stats().Fetches; got != int64(p.SumK()) {
			t.Fatalf("%v: fetches = %d, want %d cold misses", pol, got, p.SumK())
		}
	}
}

//go:build !(unix && (amd64 || arm64 || riscv64 || ppc64le || loong64 || 386 || arm || mipsle || mips64le))

// Portable open path: read the whole file and decode factor values onto
// the heap. Used on windows and on big-endian platforms where the on-disk
// little-endian layout cannot be reinterpreted in place.

package factorsnap

import "os"

// openBytes reads the whole file; mapped is false so decode copies.
func openBytes(path string) (raw []byte, cleanup func() error, mapped bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	return b, nil, false, nil
}

// floatView is unreachable on the fallback path (decode copies instead);
// it exists so factorsnap.go compiles on every platform.
func floatView(b []byte) []float64 { return decodeFloats(b) }

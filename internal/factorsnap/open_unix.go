//go:build unix && (amd64 || arm64 || riscv64 || ppc64le || loong64 || 386 || arm || mipsle || mips64le)

// Memory-mapped open path for little-endian unix platforms: the snapshot's
// data section is native float64 layout, so factor matrices become views
// over the read-only mapping with zero copies.

package factorsnap

import (
	"os"
	"syscall"
	"unsafe"
)

// openBytes maps path read-only. The returned cleanup func unmaps; mapped
// is true so decode builds zero-copy views.
func openBytes(path string) (raw []byte, cleanup func() error, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, func() error { return nil }, true, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return syscall.Munmap(b) }, true, nil
}

// floatView reinterprets an 8-byte-aligned little-endian block as
// []float64 without copying. The data section starts on an 8-byte
// boundary of a page-aligned mapping and every factor block is a multiple
// of 8 bytes, so the alignment precondition always holds.
func floatView(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Package factorsnap defines the factor-snapshot file: a compact,
// versioned, immutable serialization of a completed decomposition's
// Kruskal model (λ weights plus one factor matrix per mode), designed to
// be served rather than recomputed.
//
// # Layout
//
// A snapshot is a single file:
//
//	offset 0   magic "TPFS" (4 bytes)
//	offset 4   version        uint32 LE
//	offset 8   header length  uint32 LE (JSON bytes)
//	offset 12  header CRC32   uint32 LE (IEEE, over the JSON bytes)
//	offset 16  header JSON    (dims, rank, λ, option fingerprint, data CRC)
//	...        zero padding to the next multiple of 8
//	...        factor blocks, one per mode, back to back: Dims[n]·Rank
//	           float64 values, little-endian, in mat.Matrix row-major
//	           order (element (i, f) at i·Rank+f)
//
// Every factor block is a multiple of 8 bytes and the data section starts
// on an 8-byte boundary, so on little-endian platforms the mapped file
// reinterprets directly as []float64 — Open returns mat.Matrix views over
// the mapping (zero copies, pages shared between processes through the
// page cache). On other platforms Open falls back to an explicit decode.
//
// # Durability and integrity
//
// Write installs the file with the runstate discipline (temp file, fsync,
// rename, directory fsync), so readers observe either the previous
// complete snapshot or the new complete snapshot, never a torn file. The
// header carries its own CRC32 and a CRC32 of the full data section;
// Open verifies both (reading every page once) and fails with ErrCorrupt
// on any mismatch, exactly like the .tptl and checkpoint readers.
package factorsnap

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"

	"twopcp/internal/mat"
	"twopcp/internal/runstate"
)

// Magic tags every snapshot file.
const Magic = "TPFS"

// Version is the snapshot schema version this package writes and reads.
const Version = 1

// ErrCorrupt marks a snapshot whose framing or CRCs are invalid.
var ErrCorrupt = errors.New("factorsnap: corrupt snapshot")

// preambleLen is the fixed-size region before the header JSON: magic,
// version, header length, header CRC.
const preambleLen = 16

// header is the JSON section carrying everything except the factor data.
type header struct {
	// Dims are the mode sizes (factor n is Dims[n]×Rank).
	Dims []int `json:"dims"`
	// Rank is the number of rank-one components F.
	Rank int `json:"rank"`
	// Lambda is the component weight vector λ (length Rank). JSON
	// float64 encoding round-trips exactly, so the weights are bit-exact.
	Lambda []float64 `json:"lambda"`
	// Meta is the producing run's option fingerprint (the same record the
	// checkpoint manifest carries), when the producer had one.
	Meta *runstate.Meta `json:"meta,omitempty"`
	// DataCRC32 is the IEEE CRC32 of the full data section (every factor
	// block, padding excluded).
	DataCRC32 uint32 `json:"data_crc32"`
}

// Snapshot is an opened snapshot: the model plus the mapping behind it.
// The factor matrices may be views over a read-only file mapping — treat
// them as immutable and do not use them after Close.
type Snapshot struct {
	// Dims are the mode sizes.
	Dims []int
	// Rank is the number of rank-one components.
	Rank int
	// Lambda is the component weight vector (length Rank).
	Lambda []float64
	// Meta is the producing run's option fingerprint, if recorded.
	Meta *runstate.Meta
	// Factors holds one Dims[n]×Rank matrix per mode. When Mapped is
	// true their Data slices alias the file mapping (read-only).
	Factors []*mat.Matrix
	// Mapped reports whether Factors view an mmap'd file (true) or
	// heap-decoded copies (false, the portable fallback).
	Mapped bool

	unmap func() error
}

// Close releases the file mapping (a no-op for heap-decoded snapshots).
// The factor matrices must not be used afterwards.
func (s *Snapshot) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	return u()
}

// Write serializes the model to path with the runstate atomic-install
// discipline (temp file, fsync, rename, dirsync). len(lambda) must equal
// the factors' shared column count and every factor must have at least
// as many columns as rows... every factor must have exactly rank columns.
func Write(path string, lambda []float64, factors []*mat.Matrix, meta *runstate.Meta) error {
	if len(factors) == 0 {
		return errors.New("factorsnap: no factor matrices")
	}
	rank := factors[0].Cols
	if len(lambda) != rank {
		return fmt.Errorf("factorsnap: %d lambda weights for rank %d", len(lambda), rank)
	}
	dims := make([]int, len(factors))
	vals := 0
	for n, f := range factors {
		if f.Cols != rank {
			return fmt.Errorf("factorsnap: factor %d has %d cols, want %d", n, f.Cols, rank)
		}
		dims[n] = f.Rows
		vals += f.Rows * f.Cols
	}

	data := make([]byte, 0, vals*8)
	for _, f := range factors {
		for _, v := range f.Data {
			data = binary.LittleEndian.AppendUint64(data, math.Float64bits(v))
		}
	}

	hdr, err := json.Marshal(header{
		Dims:      dims,
		Rank:      rank,
		Lambda:    lambda,
		Meta:      meta,
		DataCRC32: crc32.ChecksumIEEE(data),
	})
	if err != nil {
		return fmt.Errorf("factorsnap: marshal header: %w", err)
	}
	dataOff := align8(preambleLen + len(hdr))

	out := make([]byte, 0, dataOff+len(data))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(hdr)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(hdr))
	out = append(out, hdr...)
	for len(out) < dataOff {
		out = append(out, 0)
	}
	out = append(out, data...)

	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	return runstate.WriteFileAtomic(filepath.Clean(dir), name, out)
}

// Open loads the snapshot at path. On little-endian unix platforms the
// file is memory-mapped and the returned factors are zero-copy views; the
// portable fallback reads and decodes the file instead. Both paths verify
// the header and data CRCs before returning. A missing file surfaces the
// underlying fs.ErrNotExist for errors.Is checks.
func Open(path string) (*Snapshot, error) {
	raw, unmap, mapped, err := openBytes(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(raw, mapped)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if mapped {
		s.unmap = unmap
	} else if unmap != nil {
		unmap()
	}
	return s, nil
}

// decode validates raw snapshot bytes and builds the Snapshot. When
// mapped is true the factor matrices view raw directly (zero-copy,
// little-endian platforms only); otherwise they are decoded copies.
func decode(raw []byte, mapped bool) (*Snapshot, error) {
	if len(raw) < preambleLen {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than the %d-byte preamble", ErrCorrupt, len(raw), preambleLen)
	}
	if string(raw[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %s)", ErrCorrupt, raw[:4], Magic)
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != Version {
		return nil, fmt.Errorf("factorsnap: snapshot version %d, this build reads %d", v, Version)
	}
	hdrLen := int(binary.LittleEndian.Uint32(raw[8:]))
	hdrCRC := binary.LittleEndian.Uint32(raw[12:])
	if hdrLen < 0 || preambleLen+hdrLen > len(raw) {
		return nil, fmt.Errorf("%w: header length %d exceeds the file", ErrCorrupt, hdrLen)
	}
	hdrBytes := raw[preambleLen : preambleLen+hdrLen]
	if crc32.ChecksumIEEE(hdrBytes) != hdrCRC {
		return nil, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	var hdr header
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if hdr.Rank <= 0 || len(hdr.Dims) == 0 || len(hdr.Lambda) != hdr.Rank {
		return nil, fmt.Errorf("%w: header records rank %d, %d dims, %d weights", ErrCorrupt, hdr.Rank, len(hdr.Dims), len(hdr.Lambda))
	}
	dataOff := align8(preambleLen + hdrLen)
	want := 0
	for n, d := range hdr.Dims {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dim %d for mode %d", ErrCorrupt, d, n)
		}
		want += d * hdr.Rank * 8
	}
	if len(raw) != dataOff+want {
		return nil, fmt.Errorf("%w: %d data bytes, header implies %d", ErrCorrupt, len(raw)-dataOff, want)
	}
	data := raw[dataOff:]
	if crc32.ChecksumIEEE(data) != hdr.DataCRC32 {
		return nil, fmt.Errorf("%w: data CRC mismatch", ErrCorrupt)
	}

	s := &Snapshot{
		Dims:    hdr.Dims,
		Rank:    hdr.Rank,
		Lambda:  hdr.Lambda,
		Meta:    hdr.Meta,
		Factors: make([]*mat.Matrix, len(hdr.Dims)),
		Mapped:  mapped,
	}
	off := 0
	for n, d := range hdr.Dims {
		nb := d * hdr.Rank * 8
		block := data[off : off+nb]
		var vals []float64
		if mapped {
			vals = floatView(block)
		} else {
			vals = decodeFloats(block)
		}
		s.Factors[n] = mat.FromSlice(d, hdr.Rank, vals)
		off += nb
	}
	return s, nil
}

// decodeFloats copies a little-endian float64 block onto the heap.
func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

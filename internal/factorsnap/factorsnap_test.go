package factorsnap

import (
	"errors"
	"io/fs"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/runstate"
)

// randFactors builds deterministic pseudo-random factors, including
// values that stress float64 round-tripping (negatives, subnormals,
// extreme exponents).
func randFactors(seed int64, rank int, dims ...int) []*mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*mat.Matrix, len(dims))
	for n, d := range dims {
		m := mat.New(d, rank)
		for i := range m.Data {
			m.Data[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
		}
		out[n] = m
	}
	if len(out[0].Data) >= 4 {
		out[0].Data[0] = 0
		out[0].Data[1] = math.SmallestNonzeroFloat64
		out[0].Data[2] = -math.MaxFloat64
		out[0].Data[3] = math.Copysign(0, -1)
	}
	return out
}

func TestRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "factors.snap")
	factors := randFactors(7, 5, 12, 9, 4)
	lambda := []float64{1.5, -2.25, 3e-7, 4e11, 1}
	meta := &runstate.Meta{InputKind: "tiled", Dims: []int{12, 9, 4}, Rank: 5, Seed: 42, Schedule: "sfc"}

	if err := Write(path, lambda, factors, meta); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	if s.Rank != 5 {
		t.Fatalf("rank = %d, want 5", s.Rank)
	}
	if len(s.Dims) != 3 || s.Dims[0] != 12 || s.Dims[1] != 9 || s.Dims[2] != 4 {
		t.Fatalf("dims = %v", s.Dims)
	}
	for f, v := range lambda {
		if b := math.Float64bits(s.Lambda[f]); b != math.Float64bits(v) {
			t.Fatalf("lambda[%d] = %x, want %x", f, b, math.Float64bits(v))
		}
	}
	for n, want := range factors {
		got := s.Factors[n]
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("factor %d shape %dx%d, want %dx%d", n, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
				t.Fatalf("factor %d value %d: %x, want %x", n, i, math.Float64bits(got.Data[i]), math.Float64bits(v))
			}
		}
	}
	if s.Meta == nil || s.Meta.Seed != 42 || s.Meta.InputKind != "tiled" || s.Meta.Rank != 5 {
		t.Fatalf("meta did not round-trip: %+v", s.Meta)
	}
}

func TestOpenMissingIsNotExist(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "factors.snap")
	if err := Write(path, []float64{1, 1}, randFactors(3, 2, 6, 5), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(name string, off int) {
		t.Run(name, func(t *testing.T) {
			bad := append([]byte(nil), clean...)
			bad[off] ^= 0x40
			p := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open after flipping byte %d: err = %v, want ErrCorrupt", off, err)
			}
		})
	}
	flip("magic", 0)
	flip("header", preambleLen+2)
	flip("data", len(clean)-5)

	t.Run("truncated", func(t *testing.T) {
		p := filepath.Join(dir, "short.snap")
		if err := os.WriteFile(p, clean[:len(clean)-9], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open truncated: err = %v, want ErrCorrupt", err)
		}
	})
}

func TestRewriteReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "factors.snap")
	if err := Write(path, []float64{1}, randFactors(1, 1, 3, 3), nil); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	second := randFactors(2, 2, 4, 5)
	if err := Write(path, []float64{2, 3}, second, nil); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.Rank != 2 || s.Dims[0] != 4 || s.Dims[1] != 5 {
		t.Fatalf("second write not visible: rank %d dims %v", s.Rank, s.Dims)
	}
	// The atomic-install discipline must not leave temp droppings behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "factors.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only factors.snap", names)
	}
}

func TestWriteValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := Write(path, nil, nil, nil); err == nil {
		t.Fatal("Write with no factors succeeded")
	}
	f := randFactors(1, 3, 4)
	if err := Write(path, []float64{1, 2}, f, nil); err == nil {
		t.Fatal("Write with mismatched lambda length succeeded")
	}
	g := randFactors(1, 2, 4)
	if err := Write(path, []float64{1, 2, 3}, []*mat.Matrix{f[0], g[0]}, nil); err == nil {
		t.Fatal("Write with mismatched factor widths succeeded")
	}
}

package haten2

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/cpals"
	"twopcp/internal/mapreduce"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func TestDecomposeMatchesInMemoryALS(t *testing.T) {
	// With identical seeds the MapReduce ALS must match cpals numerically:
	// it is the same algorithm with the MTTKRP computed remotely.
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomCOO(rng, 0.3, 6, 5, 4)
	kt, info, err := Decompose(x, Options{Rank: 2, MaxIters: 8, Seed: 7, MR: mapreduce.Config{NumReducers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ref, refInfo, err := cpals.DecomposeSparse(x, cpals.Options{
		Rank: 2, MaxIters: 8, Tol: 1e-300, Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(info.Fit-refInfo.Fit) > 1e-9 {
		t.Fatalf("fit %g != cpals fit %g", info.Fit, refInfo.Fit)
	}
	for m := range kt.Factors {
		if !kt.Factors[m].EqualApprox(ref.Factors[m], 1e-9) {
			t.Fatalf("mode %d factors differ from in-memory ALS", m)
		}
	}
}

func TestShuffleVolumeScalesWithNNZAndRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandomCOO(rng, 0.3, 8, 8, 8)
	_, small, err := Decompose(x, Options{Rank: 2, MaxIters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := Decompose(x, Options{Rank: 8, MaxIters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle bytes ≈ nnz·(key + 8F)·N jobs: quadrupling F should roughly
	// triple-to-quadruple traffic.
	if large.Counters.ShuffleBytes < 3*small.Counters.ShuffleBytes {
		t.Fatalf("shuffle did not scale with rank: %d vs %d",
			small.Counters.ShuffleBytes, large.Counters.ShuffleBytes)
	}
	if small.Jobs != 3 || large.Jobs != 3 {
		t.Fatalf("jobs = %d/%d, want 3 per iteration", small.Jobs, large.Jobs)
	}
}

func TestMemoryCapFailure(t *testing.T) {
	// Dense-as-sparse input with a tiny reducer budget reproduces the
	// paper's "HaTen2 FAILS" row.
	rng := rand.New(rand.NewSource(3))
	dense := tensor.RandomDense(rng, 12, 12, 12)
	x := tensor.FromDense(dense)
	_, info, err := Decompose(x, Options{
		Rank: 4, MaxIters: 1, Seed: 1,
		MR: mapreduce.Config{NumReducers: 4, ReducerMemoryBytes: 2048},
	})
	if !errors.Is(err, ErrResources) {
		t.Fatalf("err = %v, want ErrResources", err)
	}
	if !errors.Is(err, mapreduce.ErrMemoryExceeded) {
		t.Fatalf("err = %v, want wrapped ErrMemoryExceeded", err)
	}
	if info.Counters.MaxReducerBytes == 0 {
		t.Fatal("failure info should carry traffic counters")
	}
}

func TestLowRankRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	factors := []*mat.Matrix{
		mat.Random(6, 2, rng), mat.Random(5, 2, rng), mat.Random(4, 2, rng),
	}
	full := cpals.NewKTensor(factors).Full()
	x := tensor.FromDense(full)
	_, info, err := Decompose(x, Options{Rank: 2, MaxIters: 60, Tol: 1e-9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit < 0.99 {
		t.Fatalf("fit = %g", info.Fit)
	}
}

func TestSingleIterationLowFit(t *testing.T) {
	// The paper's Table I fit note: at 1 iteration from random init the
	// fit is far from converged — reproduce that contrast.
	rng := rand.New(rand.NewSource(5))
	dense := tensor.RandomDense(rng, 10, 10, 10)
	x := tensor.FromDense(dense)
	_, one, err := Decompose(x, Options{Rank: 4, MaxIters: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, many, err := Decompose(x, Options{Rank: 4, MaxIters: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if one.Fit >= many.Fit {
		t.Fatalf("1-iter fit %g should be below converged fit %g", one.Fit, many.Fit)
	}
}

func TestRankValidation(t *testing.T) {
	x := tensor.NewCOO(2, 2)
	if _, _, err := Decompose(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

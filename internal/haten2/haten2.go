// Package haten2 implements the comparison baseline of the paper's Table I:
// a HaTen2-style sparse CP-ALS that runs every factor update as MapReduce
// jobs over the nonzero entries, exactly like the MapReduce PARAFAC suite
// of Jeon et al. (ICDE'15) that the paper benchmarks against.
//
// The defining performance characteristics the paper attributes to HaTen2
// are reproduced structurally rather than numerically:
//
//   - every ALS mode update shuffles O(nnz·F) bytes of intermediate data
//     across the (simulated) network — counted byte-exactly by the
//     mapreduce engine;
//   - the grouped reduce-side intermediates grow with the tensor, so dense
//     tensors blow past the per-reducer memory budget and the job FAILS
//     (mapreduce.ErrMemoryExceeded), as observed in the paper's
//     1500×1500×1500 run.
//
// HaTen2 targets sparse tensors; feeding it the paper's dense workloads via
// tensor.FromDense reproduces the mismatch the paper highlights.
package haten2

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"twopcp/internal/cpals"
	"twopcp/internal/mapreduce"
	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// Options configures a run.
type Options struct {
	// Rank is the CP rank F.
	Rank int
	// MaxIters bounds ALS sweeps; the paper measured HaTen2 at 1 iteration
	// "due to the large execution time".
	MaxIters int
	// Tol stops when the fit improves less than Tol (default: run all
	// MaxIters, matching the fixed-iteration measurement).
	Tol float64
	// Seed drives factor initialization.
	Seed int64
	// MR configures the MapReduce substrate (reducers, memory cap).
	MR mapreduce.Config
}

// Info reports a run.
type Info struct {
	Iters    int
	Fit      float64
	Jobs     int
	Counters mapreduce.Counters
}

// ErrResources wraps the simulated cluster-resource failure.
var ErrResources = errors.New("haten2: insufficient cluster resources")

type record struct {
	coords []int
	value  float64
}

// Decompose runs HaTen2-style CP-ALS on a sparse tensor. Each mode update
// is one MapReduce job computing the MTTKRP; the driver solves the F×F
// normal equations. Returns the Kruskal result and run info; on a simulated
// out-of-memory the error wraps both ErrResources and
// mapreduce.ErrMemoryExceeded, with Info carrying the traffic so far.
func Decompose(x *tensor.COO, opts Options) (*cpals.KTensor, Info, error) {
	info := Info{}
	if opts.Rank <= 0 {
		return nil, info, fmt.Errorf("haten2: rank %d", opts.Rank)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 1
	}
	n := x.NModes()
	f := opts.Rank
	rng := rand.New(rand.NewSource(opts.Seed))
	factors := make([]*mat.Matrix, n)
	for m := range factors {
		factors[m] = mat.Random(x.Dims[m], f, rng)
	}
	lambda := make([]float64, f)
	for i := range lambda {
		lambda[i] = 1
	}
	grams := make([]*mat.Matrix, n)
	for m := range grams {
		grams[m] = mat.Gram(factors[m])
	}

	// Materialize the nonzero records once (the "HDFS input").
	inputs := make([]any, x.NNZ())
	for p := range inputs {
		inputs[p] = record{coords: x.Coord(p, nil), value: x.Vals[p]}
	}

	pipeline := &mapreduce.Pipeline{Config: opts.MR}
	normX := x.Norm()
	prevFit := 0.0
	for iter := 1; iter <= opts.MaxIters; iter++ {
		var lastM *mat.Matrix
		for mode := 0; mode < n; mode++ {
			m, err := mttkrpJob(pipeline, inputs, factors, mode, f)
			if err != nil {
				info.Jobs = pipeline.Jobs
				info.Counters = pipeline.Counters
				if errors.Is(err, mapreduce.ErrMemoryExceeded) {
					return nil, info, fmt.Errorf("%w: %w", ErrResources, err)
				}
				return nil, info, err
			}
			v := mat.New(f, f)
			v.Fill(1)
			for k := 0; k < n; k++ {
				if k != mode {
					v.HadamardInPlace(grams[k])
				}
			}
			a := mat.RightSolveSPD(m, v)
			norms := a.NormalizeColumns(1e-300)
			copy(lambda, norms)
			factors[mode] = a
			mat.GramInto(grams[mode], a)
			lastM = m
		}
		kt := &cpals.KTensor{Lambda: lambda, Factors: factors}
		inner := 0.0
		for ff, l := range lambda {
			var c float64
			for i := 0; i < lastM.Rows; i++ {
				c += lastM.At(i, ff) * factors[n-1].At(i, ff)
			}
			inner += l * c
		}
		modelNorm := kt.Norm()
		res2 := normX*normX + modelNorm*modelNorm - 2*inner
		if res2 < 0 {
			res2 = 0
		}
		fit := 1.0
		if normX > 0 {
			fit = 1 - sqrt(res2)/normX
		}
		info.Iters = iter
		info.Fit = fit
		if opts.Tol > 0 && iter > 1 && abs(fit-prevFit) < opts.Tol {
			break
		}
		prevFit = fit
	}
	info.Jobs = pipeline.Jobs
	info.Counters = pipeline.Counters
	out := &cpals.KTensor{Lambda: append([]float64(nil), lambda...), Factors: factors}
	return out, info, nil
}

// mttkrpJob computes the mode-n MTTKRP as one MapReduce job: each mapper
// multiplies a nonzero by the Hadamard of the other modes' factor rows and
// emits the F-vector keyed by target row; reducers sum the vectors. This
// shuffles nnz·F doubles — HaTen2's per-update communication volume.
func mttkrpJob(p *mapreduce.Pipeline, inputs []any, factors []*mat.Matrix, mode, f int) (*mat.Matrix, error) {
	mapper := func(in any, emit func(string, []byte)) error {
		r := in.(record)
		row := make([]float64, f)
		for c := range row {
			row[c] = r.value
		}
		for k, fk := range factors {
			if k == mode {
				continue
			}
			fr := fk.Row(r.coords[k])
			for c := range row {
				row[c] *= fr[c]
			}
		}
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, row); err != nil {
			return err
		}
		emit(strconv.Itoa(r.coords[mode]), buf.Bytes())
		return nil
	}
	reducer := func(key string, values [][]byte, emit func(string, []byte)) error {
		sum := make([]float64, f)
		vec := make([]float64, f)
		for _, v := range values {
			if err := binary.Read(bytes.NewReader(v), binary.LittleEndian, vec); err != nil {
				return err
			}
			for c := range sum {
				sum[c] += vec[c]
			}
		}
		var buf bytes.Buffer
		if err := binary.Write(&buf, binary.LittleEndian, sum); err != nil {
			return err
		}
		emit(key, buf.Bytes())
		return nil
	}
	out, err := p.Run(inputs, mapper, reducer)
	if err != nil {
		return nil, err
	}
	m := mat.New(factors[mode].Rows, f)
	row := make([]float64, f)
	for _, pair := range out {
		idx, err := strconv.Atoi(pair.Key)
		if err != nil {
			return nil, fmt.Errorf("haten2: bad row key %q: %w", pair.Key, err)
		}
		if err := binary.Read(bytes.NewReader(pair.Value), binary.LittleEndian, row); err != nil {
			return nil, err
		}
		copy(m.Row(idx), row)
	}
	return m, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventJSON pins the wire encoding: field order follows construction
// order, floats round-trip bit-exactly, dur is omitted for point events.
func TestEventJSON(t *testing.T) {
	e := Event{
		Name: "buffer.fetch",
		TS:   1700000000123456789,
		Fields: []Field{
			Int("mode", 1), Int("part", 0), I64("bytes", 4096),
		},
	}
	want := `{"ev":"buffer.fetch","ts":1700000000123456789,"mode":1,"part":0,"bytes":4096}`
	if got := e.JSON(); got != want {
		t.Errorf("JSON:\ngot  %s\nwant %s", got, want)
	}
	if got, want := e.Canon(), `{"ev":"buffer.fetch","mode":1,"part":0,"bytes":4096}`; got != want {
		t.Errorf("Canon:\ngot  %s\nwant %s", got, want)
	}

	span := Event{Name: "phase2.iter", TS: 10, Dur: 250, Fields: []Field{Int("iter", 3), F64("fit", 0.5)}}
	if got, want := span.JSON(), `{"ev":"phase2.iter","ts":10,"dur":250,"iter":3,"fit":0.5}`; got != want {
		t.Errorf("span JSON:\ngot  %s\nwant %s", got, want)
	}
	if got := span.Canon(); strings.Contains(got, "dur") || strings.Contains(got, "ts") {
		t.Errorf("Canon leaked clock fields: %s", got)
	}
}

// TestFieldEncodings checks every field constructor through a JSON decode:
// what goes in must come back out with the same value and JSON type, and
// floats must round-trip to the exact same bits.
func TestFieldEncodings(t *testing.T) {
	ugly := math.Nextafter(1.0/3.0, 1) // not exactly representable in short decimal
	e := Event{Name: "x", TS: 1, Fields: []Field{
		Int("i", -7),
		I64("i64", 1<<40),
		F64("f", ugly),
		Str("s", `quote " backslash \ unicode ✓`),
		Bool("yes", true),
		Bool("no", false),
	}}
	var m map[string]any
	dec := json.NewDecoder(strings.NewReader(e.JSON()))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		t.Fatalf("encoder produced invalid JSON: %v\n%s", err, e.JSON())
	}
	if v, _ := m["i"].(json.Number).Int64(); v != -7 {
		t.Errorf("i = %v", m["i"])
	}
	if v, _ := m["i64"].(json.Number).Int64(); v != 1<<40 {
		t.Errorf("i64 = %v", m["i64"])
	}
	f, _ := m["f"].(json.Number).Float64()
	if math.Float64bits(f) != math.Float64bits(ugly) {
		t.Errorf("float did not round-trip: got %x want %x", math.Float64bits(f), math.Float64bits(ugly))
	}
	if m["s"] != `quote " backslash \ unicode ✓` {
		t.Errorf("s = %q", m["s"])
	}
	if m["yes"] != true || m["no"] != false {
		t.Errorf("bools = %v, %v", m["yes"], m["no"])
	}
}

// TestNilObserver exercises every method on a nil observer — the disabled
// state must be safe and report not-tracing.
func TestNilObserver(t *testing.T) {
	var o *Observer
	if o.Tracing() {
		t.Error("nil observer reports Tracing() = true")
	}
	o.Emit("run.start", Str("kind", "dense")) // must not panic
	o.EmitSpan("phase2.iter", time.Now())
	if o.Counter("x") != nil || o.Gauge("x") != nil || o.Histogram("x") != nil {
		t.Error("nil observer returned non-nil metric handles")
	}

	// Zero-value observer: same deal, plus metric lookups with no registry.
	z := &Observer{}
	if z.Tracing() {
		t.Error("zero observer reports Tracing() = true")
	}
	z.Emit("run.start")
	if z.Counter("x") != nil {
		t.Error("registry-less observer returned a counter")
	}
}

// TestObserverOnEvent checks the callback sink sees every event with its
// fields intact, and that Tracing() turns on for callback-only observers.
func TestObserverOnEvent(t *testing.T) {
	var got []Event
	o := &Observer{OnEvent: func(e Event) { got = append(got, e) }}
	if !o.Tracing() {
		t.Fatal("OnEvent-only observer reports Tracing() = false")
	}
	o.Emit("phase1.block", Int("block", 2), F64("fit", 0.25), Int("sweeps", 6), Bool("cached", false))
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
	if got[0].TS == 0 {
		t.Error("Emit left TS zero")
	}
	want := `{"ev":"phase1.block","block":2,"fit":0.25,"sweeps":6,"cached":false}`
	if got[0].Canon() != want {
		t.Errorf("Canon:\ngot  %s\nwant %s", got[0].Canon(), want)
	}
}

// TestRecorderWritesValidLines runs a few events through the recorder and
// validates each resulting line against the schema.
func TestRecorderWritesValidLines(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	o := &Observer{Trace: rec}
	o.Emit("run.start", Str("kind", "tiled"), Str("dims", "12x10x8"), Int("rank", 3), Bool("resumed", false))
	o.Emit("buffer.fetch", Int("mode", 0), Int("part", 1), I64("bytes", 640))
	o.Emit("run.done", F64("fit", 0.875), Int("virtual_iters", 6), Bool("converged", true))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		if err := ValidateLine(line); err != nil {
			t.Errorf("line %d: %v\n%s", i+1, err, line)
		}
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestRecorderStickyError checks the first write error is kept, later
// records are dropped without panicking, and Close surfaces it.
func TestRecorderStickyError(t *testing.T) {
	rec := NewRecorder(&errWriter{n: 0})
	for i := 0; i < 100; i++ {
		rec.Record(Event{Name: "phase2.step", TS: int64(i)})
	}
	// Force the buffered writer to hit the sink.
	if err := rec.Flush(); err == nil {
		t.Fatal("Flush returned nil after sink failure")
	}
	rec.Record(Event{Name: "phase2.step", TS: 1}) // must be a no-op
	if err := rec.Close(); err == nil || err.Error() != "disk full" {
		t.Fatalf("Close = %v, want disk full", err)
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines (run
// under -race in CI) and checks no line is torn or interleaved: every line
// must parse, validate, and the per-writer event counts must add up.
func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	o := &Observer{Trace: rec}
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				o.Emit("phase2.step", Int("step", i), Int("mode", w), Int("part", 0))
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	counts := make([]int, writers)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		n++
		if err := ValidateLine(sc.Bytes()); err != nil {
			t.Fatalf("line %d torn or invalid: %v\n%s", n, err, sc.Text())
		}
		var m struct {
			Mode int `json:"mode"`
		}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		counts[m.Mode]++
	}
	if n != writers*perWriter {
		t.Fatalf("got %d lines, want %d", n, writers*perWriter)
	}
	for w, c := range counts {
		if c != perWriter {
			t.Errorf("writer %d: %d lines, want %d", w, c, perWriter)
		}
	}
}

// TestValidateLine covers the schema checker's accept and reject paths.
func TestValidateLine(t *testing.T) {
	good := []string{
		`{"ev":"run.start","ts":1,"kind":"dense","dims":"4x4x4","rank":2,"resumed":false}`,
		`{"ev":"checkpoint.resume","ts":5,"stage":"phase2"}`,
		`{"ev":"phase0.sketch","ts":2,"accelerator":"tucker","active":true,"core_dims":"5x5x5","core_fit":0.9,"core_iters":4}`,
		`{"ev":"phase0.sketch","ts":2,"accelerator":"tucker","active":false,"reason":"core too large"}`,
		`{"ev":"phase2.iter","ts":3,"dur":99,"iter":1,"fit":0.5}`,
	}
	for _, line := range good {
		if err := ValidateLine([]byte(line)); err != nil {
			t.Errorf("rejected valid line: %v\n%s", err, line)
		}
	}
	bad := []struct{ line, why string }{
		{`not json`, "not JSON"},
		{`{"ts":1}`, "missing ev"},
		{`{"ev":"made.up","ts":1}`, "unknown event"},
		{`{"ev":"run.done","fit":0.5,"virtual_iters":1,"converged":true}`, "missing ts"},
		{`{"ev":"run.done","ts":"now","fit":0.5,"virtual_iters":1,"converged":true}`, "non-numeric ts"},
		{`{"ev":"phase2.iter","ts":1,"dur":"long","iter":1,"fit":0.5}`, "non-numeric dur"},
		{`{"ev":"run.done","ts":1,"fit":0.5,"converged":true}`, "missing required field"},
		{`{"ev":"run.done","ts":1,"fit":"high","virtual_iters":1,"converged":true}`, "wrong field type"},
		{`{"ev":"run.done","ts":1,"fit":0.5,"virtual_iters":1,"converged":true,"extra":1}`, "undeclared field"},
	}
	for _, tc := range bad {
		if err := ValidateLine([]byte(tc.line)); err == nil {
			t.Errorf("accepted invalid line (%s):\n%s", tc.why, tc.line)
		}
	}
}

// TestSchemaMatchesEmitHelpers validates that a representative event of
// every schema entry can actually be constructed and validated — guards
// against the catalog drifting from the encoder.
func TestSchemaCoverage(t *testing.T) {
	for name, specs := range Schema {
		fields := make([]Field, 0, len(specs))
		for _, s := range specs {
			switch s.Type {
			case TypeNum:
				fields = append(fields, Int(s.Name, 1))
			case TypeStr:
				fields = append(fields, Str(s.Name, "x"))
			case TypeBool:
				fields = append(fields, Bool(s.Name, true))
			}
		}
		e := Event{Name: name, TS: 1, Fields: fields}
		if err := ValidateLine([]byte(e.JSON())); err != nil {
			t.Errorf("%s: self-constructed event rejected: %v", name, err)
		}
	}
}

// TestCounterGauge covers the basic metric types and get-or-create
// identity: the same name must return the same handle.
func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("a.b") != c {
		t.Error("Counter returned a different handle for the same name")
	}

	g := r.Gauge("fit")
	g.Set(0.75)
	if got := g.Load(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	if r.Gauge("fit") != g {
		t.Error("Gauge returned a different handle for the same name")
	}
}

// TestHistogram checks bucket assignment at and around the powers-of-4
// boundaries, the +Inf overflow path, and the exact sum.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bytes")
	vals := []float64{1, 2, 4, 5, 1 << 30, 1e12} // 1e12 overflows the last bucket
	for _, v := range vals {
		h.Observe(v)
	}
	var snap registrySnapshot
	data, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	hs := snap.Histograms["bytes"]
	if hs.Count != int64(len(vals)) {
		t.Errorf("count = %d, want %d", hs.Count, len(vals))
	}
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v
	}
	if hs.Sum != wantSum {
		t.Errorf("sum = %v, want %v", hs.Sum, wantSum)
	}
	// le=1 gets {1}; le=4 gets {2,4}; le=16 gets {5}; 2^30 = 4^15 is the
	// last bucket; 1e12 lands only in the implicit +Inf (count).
	wantCounts := map[float64]int64{1: 1, 4: 2, 16: 1, math.Pow(4, 15): 1}
	var inBuckets int64
	for i, le := range hs.LE {
		if want := wantCounts[le]; hs.Counts[i] != want {
			t.Errorf("bucket le=%g: count %d, want %d", le, hs.Counts[i], want)
		}
		inBuckets += hs.Counts[i]
	}
	if inBuckets != hs.Count-1 {
		t.Errorf("bucketed %d of %d observations, want exactly one overflow", inBuckets, hs.Count)
	}
}

// TestHistogramConcurrent checks the CAS sum accumulation under
// contention (exact because every observation is 1.0).
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := h.count.Load(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	if got := math.Float64frombits(h.sum.Load()); got != workers*per {
		t.Errorf("sum = %v, want %v", got, workers*per)
	}
}

// TestCounterRestore covers the checkpoint round-trip: CounterValues out,
// RestoreCounters back into a fresh registry.
func TestCounterRestore(t *testing.T) {
	r := NewRegistry()
	r.Counter("buffer.fetches").Add(17)
	r.Counter("blockstore.reads").Add(5)
	vals := r.CounterValues()

	fresh := NewRegistry()
	fresh.Counter("buffer.fetches").Add(999) // pre-existing value is overwritten
	fresh.RestoreCounters(vals)
	if got := fresh.Counter("buffer.fetches").Load(); got != 17 {
		t.Errorf("restored buffer.fetches = %d, want 17", got)
	}
	if got := fresh.Counter("blockstore.reads").Load(); got != 5 {
		t.Errorf("restored blockstore.reads = %d, want 5", got)
	}
}

// TestSnapshotJSONDeterministic: two snapshots of the same state must be
// byte-identical (map keys are sorted by encoding/json).
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(n).Inc()
		r.Gauge("g." + n).Set(1)
	}
	a, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("snapshots of identical state differ")
	}
}

// TestPrometheusText pins the exposition format: type lines, _total
// suffix on counters, cumulative buckets, sorted family order.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("buffer.fetches").Add(3)
	r.Counter("a.first").Inc()
	r.Gauge("run.buffer_hit_rate").Set(0.5)
	h := r.Histogram("blockstore.get_bytes")
	h.Observe(2)
	h.Observe(100)

	text := string(r.PrometheusText())
	wantLines := []string{
		"# TYPE twopcp_a_first_total counter",
		"twopcp_a_first_total 1",
		"# TYPE twopcp_buffer_fetches_total counter",
		"twopcp_buffer_fetches_total 3",
		"# TYPE twopcp_run_buffer_hit_rate gauge",
		"twopcp_run_buffer_hit_rate 0.5",
		"# TYPE twopcp_blockstore_get_bytes histogram",
		`twopcp_blockstore_get_bytes_bucket{le="4"} 1`,
		`twopcp_blockstore_get_bytes_bucket{le="256"} 2`,
		`twopcp_blockstore_get_bytes_bucket{le="+Inf"} 2`,
		"twopcp_blockstore_get_bytes_sum 102",
		"twopcp_blockstore_get_bytes_count 2",
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing line %q in exposition:\n%s", want, text)
		}
	}
	// Counters come out in sorted order.
	if ai, bi := strings.Index(text, "twopcp_a_first_total"), strings.Index(text, "twopcp_buffer_fetches_total"); ai > bi {
		t.Error("counter families not sorted")
	}
	// Bucket counts must be cumulative: each le line >= the previous.
	prev := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "twopcp_blockstore_get_bytes_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
}

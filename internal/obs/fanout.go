package obs

import "sync"

// FanOut broadcasts a run's event stream to dynamically attached
// subscribers. It is the bridge between the single synchronous
// Observer.OnEvent callback a run exposes and the many listeners a
// service front-end needs (one SSE stream per watching client): install
// fo.Publish as the OnEvent sink (or call Publish from an existing one)
// and each Subscribe call receives every subsequent event on its own
// channel.
//
// The contract mirrors OnEvent's: Publish must never block the emitting
// worker. Each subscriber therefore gets a buffered channel, and when a
// subscriber falls behind (its buffer is full) events for that subscriber
// are dropped and counted rather than queued without bound — a slow
// client throttles nobody, it just observes less. Dropped counts are
// reported per subscriber so a front-end can tell a client its stream
// gapped. Telemetry observes the run and never influences it; FanOut
// preserves that by construction.
type FanOut struct {
	mu   sync.Mutex
	next int
	subs map[int]*subscriber
}

// subscriber is one attached listener: its event channel and the number
// of events dropped because the channel was full.
type subscriber struct {
	ch      chan Event
	dropped int64
}

// NewFanOut returns an empty fan-out with no subscribers.
func NewFanOut() *FanOut {
	return &FanOut{subs: make(map[int]*subscriber)}
}

// Publish delivers e to every current subscriber without blocking:
// subscribers whose buffer is full miss the event (their drop count
// increments). Safe for concurrent use with Subscribe and itself — it
// is designed to be installed as an Observer.OnEvent callback.
func (f *FanOut) Publish(e Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
}

// Subscribe attaches a listener and returns its event channel plus a
// cancel function. The channel buffers buf events (minimum 1); events
// published while the buffer is full are dropped for this subscriber
// only. cancel detaches the listener, closes the channel after the
// detach (so a range over the channel terminates), and returns how many
// events the subscriber missed. cancel is idempotent.
func (f *FanOut) Subscribe(buf int) (<-chan Event, func() (dropped int64)) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan Event, buf)}
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = s
	f.mu.Unlock()
	var once sync.Once
	var dropped int64
	cancel := func() int64 {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			dropped = s.dropped
			f.mu.Unlock()
			// Safe to close only after the detach: Publish holds the
			// mutex while sending, so no send can race the close.
			close(s.ch)
		})
		return dropped
	}
	return s.ch, cancel
}

// Subscribers reports how many listeners are currently attached.
func (f *FanOut) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// FieldType is the JSON type a schema field must carry.
type FieldType int

// The three JSON payload types events use.
const (
	TypeNum FieldType = iota
	TypeStr
	TypeBool
)

func (t FieldType) String() string {
	switch t {
	case TypeNum:
		return "number"
	case TypeStr:
		return "string"
	case TypeBool:
		return "bool"
	}
	return fmt.Sprintf("FieldType(%d)", int(t))
}

// FieldSpec declares one payload field of an event type.
type FieldSpec struct {
	Name     string
	Type     FieldType
	Optional bool
}

// Schema is the trace event catalog: every event type the pipeline emits
// and its payload fields. ValidateLine (and cmd/tracecheck on top of it)
// enforces it; the determinism tests and the CI obs job consume it.
// Unknown event names and undeclared payload fields are schema errors —
// the catalog is closed so a trace reader can rely on it.
var Schema = map[string][]FieldSpec{
	// Run lifecycle. Deliberately config-light: worker counts and
	// prefetch depth are excluded (gauges carry them) so the trace stays
	// identical across concurrency settings.
	"run.start": {
		{Name: "kind", Type: TypeStr},
		{Name: "dims", Type: TypeStr},
		{Name: "rank", Type: TypeNum},
		{Name: "resumed", Type: TypeBool},
	},
	"run.done": {
		{Name: "fit", Type: TypeNum},
		{Name: "virtual_iters", Type: TypeNum},
		{Name: "converged", Type: TypeBool},
	},
	// Phase 0: one event per run when an accelerator is configured.
	"phase0.sketch": {
		{Name: "accelerator", Type: TypeStr},
		{Name: "active", Type: TypeBool},
		{Name: "reason", Type: TypeStr, Optional: true},
		{Name: "core_dims", Type: TypeStr, Optional: true},
		{Name: "core_fit", Type: TypeNum, Optional: true},
		{Name: "core_iters", Type: TypeNum, Optional: true},
	},
	// Phase 1: one event per grid block, emitted by the worker that
	// finished it. cached marks blocks restored from a checkpoint
	// (sweeps is 0 for those — nothing was recomputed).
	"phase1.block": {
		{Name: "block", Type: TypeNum},
		{Name: "fit", Type: TypeNum},
		{Name: "sweeps", Type: TypeNum},
		{Name: "cached", Type: TypeBool},
	},
	// Phase 2: one event per schedule step and one per virtual
	// iteration boundary.
	"phase2.step": {
		{Name: "step", Type: TypeNum},
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
	},
	"phase2.iter": {
		{Name: "iter", Type: TypeNum},
		{Name: "fit", Type: TypeNum},
	},
	// Buffer replacement decisions, emitted under the manager mutex at
	// the decision point (deterministic per the buffer package's
	// prefetch-transparency contract).
	"buffer.fetch": {
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
		{Name: "bytes", Type: TypeNum},
	},
	"buffer.evict": {
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
	},
	"buffer.writeback": {
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
		{Name: "bytes", Type: TypeNum},
	},
	// Raw store traffic. Gets are traced only on the direct paths
	// (factor assembly); buffer-mediated reads surface as buffer.fetch
	// instead, because raw read counts vary with prefetch depth.
	"blockstore.get": {
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
		{Name: "bytes", Type: TypeNum},
	},
	"blockstore.put": {
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
		{Name: "bytes", Type: TypeNum},
	},
	// Durability: one event per checkpoint file installed and one when a
	// run resumes from a manifest. checkpoint.write byte counts are real
	// file sizes and exempt from the cross-configuration determinism
	// guarantee (phase2.ckpt embeds I/O counters).
	"checkpoint.write": {
		{Name: "file", Type: TypeStr},
		{Name: "bytes", Type: TypeNum},
	},
	"checkpoint.resume": {
		{Name: "stage", Type: TypeStr},
	},
	// Resilience: one store.retry event per retry attempt (emitted by the
	// Retryer before it backs off) and one store.breaker event when the
	// circuit breaker changes state. Both record *recovery* from
	// nondeterministic outside events — fault timing, probabilistic
	// injection, I/O races — so their multiset is exempt from the
	// cross-configuration determinism guarantee; the contract they do
	// carry is reconciliation: the number of store.retry events in a
	// single-process trace equals the run's Stats.Retries total
	// (cmd/tracecheck -run-stats enforces it). mode/part are -1 when the
	// retried operation is a Phase-1 block read (op "block"), which is
	// addressed by block id in part.
	"store.retry": {
		{Name: "op", Type: TypeStr},
		{Name: "mode", Type: TypeNum},
		{Name: "part", Type: TypeNum},
		{Name: "attempt", Type: TypeNum},
		{Name: "backoff_ns", Type: TypeNum},
		{Name: "error", Type: TypeStr},
	},
	"store.breaker": {
		{Name: "state", Type: TypeStr},
		{Name: "op", Type: TypeStr},
		{Name: "consecutive", Type: TypeNum},
	},
}

// ValidateLine checks one JSONL trace line against the Schema: it must be
// a JSON object with a known "ev" name, a numeric "ts" (and optional
// numeric "dur"), every required field present, every present field of
// the declared type, and no undeclared fields.
func ValidateLine(line []byte) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	name, ok := m["ev"].(string)
	if !ok {
		return fmt.Errorf("missing or non-string \"ev\"")
	}
	specs, ok := Schema[name]
	if !ok {
		return fmt.Errorf("unknown event %q", name)
	}
	if _, ok := m["ts"].(json.Number); !ok {
		return fmt.Errorf("%s: missing or non-numeric \"ts\"", name)
	}
	if d, present := m["dur"]; present {
		if _, ok := d.(json.Number); !ok {
			return fmt.Errorf("%s: non-numeric \"dur\"", name)
		}
	}
	declared := map[string]FieldSpec{}
	for _, s := range specs {
		declared[s.Name] = s
	}
	for _, s := range specs {
		v, present := m[s.Name]
		if !present {
			if s.Optional {
				continue
			}
			return fmt.Errorf("%s: missing field %q", name, s.Name)
		}
		if err := checkType(v, s.Type); err != nil {
			return fmt.Errorf("%s: field %q: %w", name, s.Name, err)
		}
	}
	for k := range m {
		if k == "ev" || k == "ts" || k == "dur" {
			continue
		}
		if _, ok := declared[k]; !ok {
			return fmt.Errorf("%s: undeclared field %q", name, k)
		}
	}
	return nil
}

func checkType(v any, want FieldType) error {
	switch want {
	case TypeNum:
		if _, ok := v.(json.Number); !ok {
			return fmt.Errorf("want %s, got %T", want, v)
		}
	case TypeStr:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want %s, got %T", want, v)
		}
	case TypeBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want %s, got %T", want, v)
		}
	}
	return nil
}

package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// set overwrites the value; only RestoreCounters uses it (checkpoint
// resume), which is why it is not part of the public surface.
func (c *Counter) set(n int64) { c.v.Store(n) }

// Gauge is an atomic float64 holding a last-written value (a level, not
// an accumulation: current fit, buffer residents, sweep number).
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket layout every histogram shares: powers
// of 4 from 1 to 4^15 (≈1.07e9), wide enough for byte counts and
// nanosecond latencies alike. A fixed layout keeps snapshots from
// different runs and subsystems directly comparable and the Prometheus
// exposition stable.
var histBuckets = func() [16]float64 {
	var b [16]float64
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a fixed-bucket distribution (see histBuckets) with an
// exact count and sum. Observations above the last bucket land in the
// implicit +Inf bucket (tracked by count).
type Histogram struct {
	counts [len(histBuckets)]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, le := range histBuckets {
		if v <= le {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	// LE are the bucket upper bounds; Counts are per-bucket (not
	// cumulative) observation counts, same indexing.
	LE     []float64 `json:"le"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Registry is a process-local metrics registry. Metric handles are
// get-or-create by name and never removed, so subsystems bind them once
// at setup; reads on the handles are lock-free atomics. Snapshots are
// taken live — concurrent increments may or may not be included, totals
// are exact once the run has quiesced.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValues returns a snapshot of every counter by name — the form
// persisted into Phase-2 checkpoints so counters resume exactly.
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// RestoreCounters overwrites the named counters with checkpointed values
// (creating any that do not exist yet). Counters not named in vals keep
// their current values.
func (r *Registry) RestoreCounters(vals map[string]int64) {
	for name, v := range vals {
		r.Counter(name).set(v)
	}
}

// registrySnapshot is the JSON snapshot layout; encoding/json sorts map
// keys, so the output is deterministic for given values.
type registrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// SnapshotJSON returns the full registry state as indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := registrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			LE:     histBuckets[:],
			Counts: make([]int64, len(histBuckets)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range histBuckets {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return json.MarshalIndent(snap, "", "  ")
}

// WriteSnapshot writes the JSON snapshot to path (the -metrics FILE
// CLI hook).
func (r *Registry) WriteSnapshot(path string) error {
	data, err := r.SnapshotJSON()
	if err != nil {
		return fmt.Errorf("obs: snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}

// promName converts a registry metric name to a Prometheus metric name:
// twopcp_ prefix, dots and dashes to underscores.
func promName(name string) string {
	return "twopcp_" + strings.Map(func(r rune) rune {
		if r == '.' || r == '-' {
			return '_'
		}
		return r
	}, name)
}

// PrometheusText renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges verbatim,
// histograms with cumulative _bucket{le=...} series plus _sum and
// _count. Metric families are emitted in sorted name order.
func (r *Registry) PrometheusText() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[name].Load())
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn,
			strconv.FormatFloat(r.gauges[name].Load(), 'g', -1, 64))
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, le := range histBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", pn,
				strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.count.Load())
		fmt.Fprintf(&b, "%s_sum %s\n", pn,
			strconv.FormatFloat(math.Float64frombits(h.sum.Load()), 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.count.Load())
	}
	return []byte(b.String())
}

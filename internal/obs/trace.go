package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// Recorder serializes events to a writer as JSONL, one object per line:
//
//	{"ev":"buffer.fetch","ts":1700000000123456789,"mode":1,"part":0,"bytes":4096}
//
// It is safe for concurrent use by the worker pools of both phases: each
// Record marshals into a reusable scratch buffer and appends under one
// mutex, so lines never interleave. Writes are buffered; Close (or Flush)
// drains them. Write errors are sticky — the first one is kept, later
// records are dropped, and Close returns it — so telemetry failures never
// interrupt a run mid-flight but are not silently lost either.
type Recorder struct {
	mu      sync.Mutex
	w       *bufio.Writer
	closer  io.Closer
	scratch []byte
	err     error
}

// NewRecorder returns a recorder writing JSONL to w. The caller owns w;
// Close flushes but does not close it.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
}

// OpenTrace opens (or creates) path in append mode and returns a recorder
// writing to it. Append semantics are load-bearing for resume: a resumed
// run pointed at the same -trace file extends the existing event stream
// instead of truncating the pre-crash history.
func OpenTrace(path string) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open trace: %w", err)
	}
	r := NewRecorder(f)
	r.closer = f
	return r, nil
}

// Record appends one event line.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.scratch = appendEventJSON(r.scratch[:0], e, true)
	r.scratch = append(r.scratch, '\n')
	// Flush on whole-line boundaries: bufio would otherwise split a line
	// across two underlying writes when it fills mid-line, and a run
	// killed between them (the crash-recovery scenario) would leave a
	// torn final line in the trace. Flushing first keeps every write to
	// the file a sequence of complete lines.
	if r.w.Available() < len(r.scratch) {
		if err := r.w.Flush(); err != nil {
			r.err = err
			return
		}
	}
	if _, err := r.w.Write(r.scratch); err != nil {
		r.err = err
	}
}

// Flush drains buffered lines to the underlying writer.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = r.w.Flush()
	}
	return r.err
}

// Close flushes and, for file-backed recorders, closes the file. It
// returns the first error the recorder encountered.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.w.Flush(); r.err == nil {
		r.err = err
	}
	if r.closer != nil {
		if err := r.closer.Close(); r.err == nil {
			r.err = err
		}
		r.closer = nil
	}
	return r.err
}

// appendEventJSON appends the one-line JSON encoding of e. withClock
// controls whether the wall-clock ts/dur fields are included; Canon
// omits them to build the deterministic form.
func appendEventJSON(b []byte, e Event, withClock bool) []byte {
	b = append(b, `{"ev":`...)
	b = strconv.AppendQuote(b, e.Name)
	if withClock {
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, e.TS, 10)
		if e.Dur != 0 {
			b = append(b, `,"dur":`...)
			b = strconv.AppendInt(b, e.Dur, 10)
		}
	}
	for _, f := range e.Fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindInt:
			b = strconv.AppendInt(b, f.i, 10)
		case kindF64:
			// 'g' with -1 precision round-trips the exact float64, so a
			// trace diff is a bit-level diff of the run.
			b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
		case kindStr:
			b = strconv.AppendQuote(b, f.s)
		case kindBool:
			if f.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	return append(b, '}')
}

// Canon returns the deterministic form of the event: its JSON encoding
// minus the wall-clock ts/dur fields. Two runs of the same configuration
// produce identical multisets of Canon strings regardless of worker
// counts or prefetch depth (see the package determinism contract).
func (e Event) Canon() string {
	return string(appendEventJSON(nil, e, false))
}

// JSON returns the full one-line JSON encoding of the event.
func (e Event) JSON() string {
	return string(appendEventJSON(nil, e, true))
}

package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFanOutDropAccounting pins the drop-accounting contract a slow SSE
// subscriber relies on: with a full buffer, Publish drops instead of
// blocking, and delivered + dropped equals published.
func TestFanOutDropAccounting(t *testing.T) {
	fan := NewFanOut()
	ch, cancel := fan.Subscribe(1)
	for i := 0; i < 5; i++ {
		fan.Publish(Event{Name: "e", TS: int64(i)})
	}
	// Buffer of 1, no reader: exactly one delivered, four dropped.
	if got := len(ch); got != 1 {
		t.Fatalf("buffered events = %d, want 1", got)
	}
	if dropped := cancel(); dropped != 4 {
		t.Fatalf("cancel() = %d dropped, want 4", dropped)
	}
	// The dropped count must be stable after cancel — the SSE handler
	// reads it once the stream ends, possibly more than once.
	if dropped := cancel(); dropped != 4 {
		t.Fatalf("second cancel() = %d dropped, want 4 (idempotent)", dropped)
	}
	// The channel closes so a ranging consumer terminates.
	for range ch {
	}
	// Publishing after cancel must neither panic nor change the count.
	fan.Publish(Event{Name: "late"})
	if dropped := cancel(); dropped != 4 {
		t.Fatalf("cancel() after late publish = %d dropped, want 4", dropped)
	}
	if n := fan.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() = %d after cancel, want 0", n)
	}
}

// TestFanOutConcurrentDropAccounting hammers Publish, Subscribe and
// cancel concurrently (meaningful under -race): for every subscriber
// attached for the whole publishing window, received + dropped must
// equal the total published — no event is lost without being counted.
func TestFanOutConcurrentDropAccounting(t *testing.T) {
	const (
		publishers = 4
		perPub     = 2000
		readers    = 6
		churners   = 4
	)
	fan := NewFanOut()

	// Steady subscribers: attach before publishing starts, read slowly,
	// cancel after publishing ends.
	type tally struct {
		received int64
		dropped  int64
	}
	tallies := make([]tally, readers)
	var readerWG sync.WaitGroup
	cancels := make([]func() int64, readers)
	done := make(chan struct{})
	for i := 0; i < readers; i++ {
		ch, cancel := fan.Subscribe(i + 1) // assorted buffer depths
		cancels[i] = cancel
		readerWG.Add(1)
		go func(i int, ch <-chan Event) {
			defer readerWG.Done()
			for range ch {
				atomic.AddInt64(&tallies[i].received, 1)
			}
		}(i, ch)
	}

	// Churners subscribe and cancel mid-stream; their counts are not
	// asserted (their windows are partial) but they must not corrupt
	// anyone else's accounting or trip the race detector.
	var churnWG sync.WaitGroup
	for i := 0; i < churners; i++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ch, cancel := fan.Subscribe(2)
				select {
				case <-ch: // consume at most one event (or the close)
				case <-done: // publishing over; don't wait for an event
				}
				cancel()
			}
		}()
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				fan.Publish(Event{Name: "e", TS: int64(p*perPub + i)})
			}
		}(p)
	}
	pubWG.Wait()
	close(done)
	churnWG.Wait()

	const total = publishers * perPub
	for i, cancel := range cancels {
		tallies[i].dropped = cancel()
	}
	readerWG.Wait() // channels closed by cancel; drain the last reads
	for i := range tallies {
		got := atomic.LoadInt64(&tallies[i].received) + tallies[i].dropped
		if got != total {
			t.Errorf("subscriber %d: received %d + dropped %d = %d, want %d",
				i, tallies[i].received, tallies[i].dropped, got, total)
		}
	}
}

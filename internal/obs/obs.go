// Package obs is the run-telemetry layer of the pipeline: a structured
// trace of typed events (JSONL through a worker-safe recorder), a metrics
// registry (counters, gauges, fixed-bucket histograms snapshotting to JSON
// and Prometheus text format), and the Observer handle both phases thread
// through their hot paths. It has no dependencies outside the standard
// library.
//
// # Cost contract
//
// A nil *Observer is the disabled state and must cost ~nothing: every
// method is nil-receiver safe, Tracing() is a two-word check callers guard
// event construction behind (so no field slices are allocated when no one
// is listening), and subsystems bind *Counter handles once at setup so hot
// paths pay a single nil check plus an atomic add.
//
// # Determinism contract
//
// Telemetry observes the run, it never influences it: no code path reads
// an observer to make a decision, so results are bit-identical with
// tracing on or off. Events are emitted only at points whose occurrence is
// itself deterministic (buffer replacement decisions under the manager
// mutex, per-block Phase-1 completions, schedule steps), so the multiset
// of events minus the wall-clock ts/dur fields is identical across
// Workers, KernelWorkers, IOWorkers and PrefetchDepth. Operations whose
// *count* legitimately varies with concurrency (prefetch-issued store
// reads, batched manifest rewrites) are metrics-only. checkpoint.write
// events carry real file sizes, which embed I/O counters for phase2.ckpt
// and therefore may differ across prefetch depths; they are exempt from
// the cross-configuration guarantee. store.retry and store.breaker
// events record recovery from faults whose timing is inherently
// nondeterministic, so they too are exempt — their invariant is instead
// that retries never change what the run computes (see the blockstore
// package) and that their count reconciles with Stats.Retries.
package obs

import "time"

// Event is one trace record: a name from the Schema, a wall-clock
// timestamp, an optional duration (spans), and typed payload fields.
type Event struct {
	// Name identifies the event type (e.g. "buffer.fetch"); see Schema.
	Name string
	// TS is the wall-clock emission time in Unix nanoseconds.
	TS int64
	// Dur is the span duration in nanoseconds; 0 for point events.
	Dur int64
	// Fields is the typed payload, serialized in order.
	Fields []Field
}

// Field kinds.
const (
	kindInt = iota
	kindF64
	kindStr
	kindBool
)

// Field is one typed key/value payload entry of an Event.
type Field struct {
	Key  string
	kind uint8
	i    int64
	f    float64
	s    string
}

// Int returns an integer field.
func Int(key string, v int) Field { return Field{Key: key, kind: kindInt, i: int64(v)} }

// I64 returns an int64 field.
func I64(key string, v int64) Field { return Field{Key: key, kind: kindInt, i: v} }

// F64 returns a float64 field (serialized with full round-trip precision).
func F64(key string, v float64) Field { return Field{Key: key, kind: kindF64, f: v} }

// Str returns a string field.
func Str(key, v string) Field { return Field{Key: key, kind: kindStr, s: v} }

// Bool returns a boolean field.
func Bool(key string, v bool) Field {
	f := Field{Key: key, kind: kindBool}
	if v {
		f.i = 1
	}
	return f
}

// Observer is the telemetry handle threaded through a run. Any subset of
// the three sinks may be set; configure it before the run starts and do
// not mutate it while the run is in flight. The zero value and the nil
// pointer are both valid, fully disabled observers.
type Observer struct {
	// Trace receives every event as a JSONL line.
	Trace *Recorder
	// Metrics is the registry subsystems bind counters/gauges against.
	Metrics *Registry
	// OnEvent, when non-nil, receives every event synchronously. It may be
	// called from multiple goroutines at once and must be internally
	// synchronized; it must not block, or it stalls the worker that
	// emitted the event.
	OnEvent func(Event)
}

// Tracing reports whether events have any listener. Callers must guard
// Emit behind it so field construction costs nothing when disabled.
func (o *Observer) Tracing() bool {
	return o != nil && (o.Trace != nil || o.OnEvent != nil)
}

// Emit records a point event with the current wall-clock timestamp.
func (o *Observer) Emit(name string, fields ...Field) {
	o.emit(Event{Name: name, TS: time.Now().UnixNano(), Fields: fields})
}

// EmitSpan records a completed span: ts is the span start, dur its length.
func (o *Observer) EmitSpan(name string, start time.Time, fields ...Field) {
	o.emit(Event{
		Name:   name,
		TS:     start.UnixNano(),
		Dur:    int64(time.Since(start)),
		Fields: fields,
	})
}

func (o *Observer) emit(e Event) {
	if o == nil {
		return
	}
	if o.Trace != nil {
		o.Trace.Record(e)
	}
	if o.OnEvent != nil {
		o.OnEvent(e)
	}
}

// Counter returns the named counter, or nil when no registry is attached;
// subsystems bind the handle once and nil-check it on the hot path.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil when no registry is attached.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or nil when no registry is
// attached.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

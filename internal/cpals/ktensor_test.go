package cpals

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func randomKTensor(rng *rand.Rand, rank int, dims ...int) *KTensor {
	factors := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		factors[k] = mat.Random(d, rank, rng)
	}
	return NewKTensor(factors)
}

func TestNewKTensorDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := randomKTensor(rng, 3, 4, 5, 6)
	if k.Rank() != 3 || k.NModes() != 3 {
		t.Fatalf("Rank=%d NModes=%d", k.Rank(), k.NModes())
	}
	for _, l := range k.Lambda {
		if l != 1 {
			t.Fatal("lambda should default to 1")
		}
	}
	d := k.Dims()
	if d[0] != 4 || d[1] != 5 || d[2] != 6 {
		t.Fatalf("Dims = %v", d)
	}
}

func TestNewKTensorMismatchedRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewKTensor([]*mat.Matrix{mat.New(2, 2), mat.New(2, 3)})
}

func TestKTensorAtMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := randomKTensor(rng, 2, 3, 4, 2)
	full := k.Full()
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 2; l++ {
				if math.Abs(k.At(i, j, l)-full.At(i, j, l)) > 1e-12 {
					t.Fatalf("At(%d,%d,%d) disagrees with Full", i, j, l)
				}
			}
		}
	}
}

func TestKTensorRankOneKnown(t *testing.T) {
	// X = 2 · a ∘ b with a = (1, 2), b = (3, 4, 5).
	a := mat.FromRows([][]float64{{1}, {2}})
	b := mat.FromRows([][]float64{{3}, {4}, {5}})
	k := NewKTensor([]*mat.Matrix{a, b})
	k.Lambda[0] = 2
	if got := k.At(1, 2); got != 2*2*5 {
		t.Fatalf("At = %g, want 20", got)
	}
}

func TestKTensorNormMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		k := randomKTensor(rng, rng.Intn(3)+1, rng.Intn(4)+1, rng.Intn(4)+1, rng.Intn(4)+1)
		for f := range k.Lambda {
			k.Lambda[f] = rng.Float64()*2 - 0.5
		}
		if math.Abs(k.Norm()-k.Full().Norm()) > 1e-9 {
			t.Fatalf("trial %d: Norm %g != full norm %g", trial, k.Norm(), k.Full().Norm())
		}
	}
}

func TestKTensorNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := randomKTensor(rng, 3, 5, 6)
	k.Factors[0].Scale(7) // give the columns non-unit norms
	before := k.Full()
	k.Normalize()
	// Model unchanged.
	if !k.Full().EqualApprox(before, 1e-10) {
		t.Fatal("Normalize changed the model")
	}
	// Columns now unit norm.
	for _, f := range k.Factors {
		for _, n := range f.ColumnNorms() {
			if math.Abs(n-1) > 1e-10 {
				t.Fatalf("column norm %g after Normalize", n)
			}
		}
	}
}

func TestInnerDenseMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := randomKTensor(rng, 2, 3, 4, 2)
	x := tensor.RandomDense(rng, 3, 4, 2)
	want := x.Dot(k.Full())
	if math.Abs(k.InnerDense(x)-want) > 1e-10 {
		t.Fatalf("InnerDense = %g, want %g", k.InnerDense(x), want)
	}
}

func TestInnerSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := randomKTensor(rng, 2, 4, 5, 3)
	c := tensor.RandomCOO(rng, 0.3, 4, 5, 3)
	want := k.InnerDense(c.Dense())
	if math.Abs(k.InnerSparse(c)-want) > 1e-10 {
		t.Fatal("InnerSparse disagrees with dense")
	}
}

func TestFitExactModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := randomKTensor(rng, 2, 4, 3, 3)
	x := k.Full()
	if fit := k.Fit(x); math.Abs(fit-1) > 1e-8 {
		t.Fatalf("fit of own full tensor = %g, want 1", fit)
	}
}

func TestFitMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k := randomKTensor(rng, 2, 4, 3, 3)
	x := tensor.RandomDense(rng, 4, 3, 3)
	resid := x.Clone()
	resid.SubInPlace(k.Full())
	want := 1 - resid.Norm()/x.Norm()
	if math.Abs(k.Fit(x)-want) > 1e-9 {
		t.Fatalf("Fit = %g, want %g", k.Fit(x), want)
	}
}

func TestFitZeroTensor(t *testing.T) {
	k := NewKTensor([]*mat.Matrix{mat.New(2, 1), mat.New(2, 1)})
	x := tensor.NewDense(2, 2)
	if k.Fit(x) != 1 {
		t.Fatal("fit of zero tensor should be 1")
	}
}

func TestFitSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := randomKTensor(rng, 3, 5, 5, 4)
	c := tensor.RandomCOO(rng, 0.2, 5, 5, 4)
	if math.Abs(k.FitSparse(c)-k.Fit(c.Dense())) > 1e-9 {
		t.Fatal("FitSparse disagrees with Fit")
	}
}

func TestKTensorClone(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k := randomKTensor(rng, 2, 3, 3)
	c := k.Clone()
	c.Lambda[0] = 99
	c.Factors[0].Set(0, 0, 99)
	if k.Lambda[0] == 99 || k.Factors[0].At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

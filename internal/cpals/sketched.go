package cpals

import (
	"fmt"
	"math/rand"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// Sketched wraps an inner row solver with CP-ARLS-LEV-style leverage-score
// sampling of the Khatri-Rao least-squares system (Larsen & Kolda): inside
// dense ALS sweeps the mode update is solved from a sampled system
//
//	Ṽ = Z_sᵀW²Z_s,  M̃ = X_sᵀW²Z_s
//
// where Z_s holds c rows of the Khatri-Rao matrix drawn from the product
// of the per-mode leverage-score distributions (computed from the cached
// Gram matrices — no extra factor passes) and W carries the importance
// weights w_j² = 1/(c·p_j), so E[Ṽ] = V and E[M̃] = M. The inner solver
// then runs on (M̃, Ṽ) exactly as it would on the exact system, which is
// why ridge and nonneg compose with sampling for free.
//
// The last mode of every sweep is always solved exactly: its MTTKRP is
// what the sweep-end fit is computed from, so the FitTrace stays an exact
// trace (of a stochastically-updated iterate). Outside dense ALS sweeps —
// sparse inputs, Phase 2's partition updates — Solve delegates to the
// inner solver verbatim, so a Sketched solver is safe anywhere a Solver
// is accepted and only accelerates where the fiber sampling applies.
//
// Determinism: rows are drawn serially from a generator seeded by
// Seed ^ mix(iter, mode), so runs are bit-identical for a given Seed at
// every worker count; resampling happens every mode update (fresh
// randomness per sweep, as CP-ARLS-LEV prescribes).
type Sketched struct {
	// Inner is the solver run on the sampled system (nil = least squares).
	Inner Solver
	// Samples is the number of Khatri-Rao rows drawn per mode update
	// (default 128·rank, capped by the exact row count; modes whose
	// exact system is no bigger than that run exactly).
	Samples int
	// Seed drives the row sampling.
	Seed int64
}

const sketchedSeedMix = 0x1E3779B97F4A7C15

// Name implements Solver: "sketched+ls", "sketched+ridge", ...
func (s Sketched) Name() string {
	inner := "ls"
	if s.Inner != nil {
		inner = s.Inner.Name()
	}
	return "sketched+" + inner
}

// WarmStart implements Solver by delegation.
func (s Sketched) WarmStart() bool {
	if s.Inner == nil {
		return LeastSquares{}.WarmStart()
	}
	return s.Inner.WarmStart()
}

// Solve implements Solver: outside the sampled dense-ALS path it is the
// inner solver, bit for bit.
func (s Sketched) Solve(a, m, v *mat.Matrix, sc *SolverScratch) {
	if s.Inner == nil {
		LeastSquares{}.Solve(a, m, v, sc)
		return
	}
	s.Inner.Solve(a, m, v, sc)
}

func (s Sketched) validate() error {
	if s.Samples < 0 {
		return fmt.Errorf("%w: sketched samples %d", ErrBadOptions, s.Samples)
	}
	if _, ok := s.Inner.(Sketched); ok {
		return fmt.Errorf("%w: sketched solver cannot nest", ErrBadOptions)
	}
	return ValidateSolver(s.Inner)
}

// samples returns the per-update row budget for rank f.
func (s Sketched) samples(f int) int {
	if s.Samples > 0 {
		return s.Samples
	}
	return 128 * f
}

// sampledApplicable reports whether the mode-`mode` update of a dense
// tensor with the given dims should be sampled: only when the exact
// Khatri-Rao system has more rows than the sample budget (otherwise the
// exact update is cheaper than sampling it).
func (s Sketched) sampledApplicable(dims []int, mode, f int) bool {
	rows := 1.0
	for k, d := range dims {
		if k != mode {
			rows *= float64(d)
		}
	}
	return rows > float64(s.samples(f))
}

// sampleSystem fills m (dims[mode]×F) and v (F×F) with the sampled
// normal-equation system for the mode update. factors/grams are the
// current normalized factors and their cached Grams; iter individualizes
// the sampling stream per sweep.
func (s Sketched) sampleSystem(m, v *mat.Matrix, x *tensor.Dense, factors, grams []*mat.Matrix, mode, iter int) {
	n := len(factors)
	f := m.Cols
	c := s.samples(f)
	rng := rand.New(rand.NewSource(s.Seed ^ (int64(iter)*int64(n)+int64(mode)+1)*sketchedSeedMix))

	// Per-mode leverage-score distributions from the cached Grams:
	// ℓ_k[i] = A_k[i,:]·G_k⁺·A_k[i,:]ᵀ, normalized to a cumulative table.
	cums := make([][]float64, n)
	for k := 0; k < n; k++ {
		if k == mode {
			continue
		}
		inv := mat.PseudoInverseSym(grams[k], 0)
		a := factors[k]
		cum := make([]float64, a.Rows)
		total := 0.0
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			l := mat.QuadForm(inv, row, row)
			if l < 0 {
				l = 0 // numerical noise on a PSD form
			}
			total += l
			cum[i] = total
		}
		if total == 0 {
			// Degenerate factor (all-zero): sample uniformly.
			for i := range cum {
				cum[i] = float64(i+1) / float64(a.Rows)
			}
			total = 1
		}
		for i := range cum {
			cum[i] /= total
		}
		cums[k] = cum
	}

	m.Zero()
	v.Zero()
	strides := x.Strides()
	strideN := strides[mode]
	z := make([]float64, f)
	for j := 0; j < c; j++ {
		// Draw one Khatri-Rao row: an index per mode k ≠ mode, each from
		// its leverage distribution; the row is the Hadamard product of
		// the chosen factor rows and the tuple probability is the product
		// of the per-mode probabilities.
		for i := range z {
			z[i] = 1
		}
		base := 0
		p := 1.0
		for k := 0; k < n; k++ {
			if k == mode {
				continue
			}
			cum := cums[k]
			idx := searchCum(cum, rng.Float64())
			pk := cum[idx]
			if idx > 0 {
				pk -= cum[idx-1]
			}
			p *= pk
			base += idx * strides[k]
			mat.HadamardVec(z, z, factors[k].Row(idx))
		}
		if p <= 0 {
			continue // unreachable by construction; guard the division
		}
		w2 := 1 / (float64(c) * p)
		// Ṽ += w²·zzᵀ (symmetric outer product).
		for r := 0; r < f; r++ {
			vr := v.Row(r)
			zr := w2 * z[r]
			for cc := 0; cc < f; cc++ {
				vr[cc] += zr * z[cc]
			}
		}
		// M̃ += w²·x_fiber⊗z: the mode-`mode` fiber at the sampled tuple.
		for i := 0; i < x.Dims[mode]; i++ {
			if val := x.Data[base+i*strideN]; val != 0 {
				mat.Axpy(m.Row(i), z, w2*val)
			}
		}
	}
}

// searchCum returns the smallest index whose cumulative value exceeds u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package cpals

import (
	"fmt"
	"math"
	"sort"
)

// Arrange normalizes the KTensor and sorts its components by descending
// weight λ, permuting all factor matrices consistently — the canonical
// presentation of a CP model (Tensor Toolbox `arrange`). Returns k.
func (k *KTensor) Arrange() *KTensor {
	k.Normalize()
	f := k.Rank()
	perm := make([]int, f)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return math.Abs(k.Lambda[perm[a]]) > math.Abs(k.Lambda[perm[b]])
	})
	k.Permute(perm)
	return k
}

// Permute reorders the components so that new component i is old component
// perm[i]. perm must be a permutation of [0, Rank).
func (k *KTensor) Permute(perm []int) {
	f := k.Rank()
	if len(perm) != f {
		panic(fmt.Sprintf("cpals: Permute: %d indexes for rank %d", len(perm), f))
	}
	seen := make([]bool, f)
	for _, p := range perm {
		if p < 0 || p >= f || seen[p] {
			panic(fmt.Sprintf("cpals: Permute: %v is not a permutation", perm))
		}
		seen[p] = true
	}
	newLambda := make([]float64, f)
	for i, p := range perm {
		newLambda[i] = k.Lambda[p]
	}
	k.Lambda = newLambda
	for _, a := range k.Factors {
		old := a.Clone()
		for i, p := range perm {
			for r := 0; r < a.Rows; r++ {
				a.Set(r, i, old.At(r, p))
			}
		}
	}
}

// Congruence scores how well the components of a match those of b: for the
// greedy best pairing of components it averages the product over modes of
// the absolute column cosines (1 = identical up to per-mode scaling and
// component permutation; ≈0 = unrelated). Both tensors must share rank and
// dims. This is the standard "factor match score" used to verify that a CP
// algorithm recovered a known ground truth.
func Congruence(a, b *KTensor) float64 {
	if a.Rank() != b.Rank() || a.NModes() != b.NModes() {
		panic(fmt.Sprintf("cpals: Congruence of rank %d/%d, modes %d/%d",
			a.Rank(), b.Rank(), a.NModes(), b.NModes()))
	}
	f := a.Rank()
	an := a.Clone().Normalize()
	bn := b.Clone().Normalize()
	// cos[m][i][j] = |cosine between column i of a's mode-m factor and
	// column j of b's|.
	score := make([][]float64, f)
	for i := range score {
		score[i] = make([]float64, f)
		for j := range score[i] {
			score[i][j] = 1
		}
	}
	for m := 0; m < a.NModes(); m++ {
		fa, fb := an.Factors[m], bn.Factors[m]
		for i := 0; i < f; i++ {
			for j := 0; j < f; j++ {
				var dot float64
				for r := 0; r < fa.Rows; r++ {
					dot += fa.At(r, i) * fb.At(r, j)
				}
				score[i][j] *= math.Abs(dot)
			}
		}
	}
	// Greedy matching on the score matrix.
	usedA := make([]bool, f)
	usedB := make([]bool, f)
	total := 0.0
	for step := 0; step < f; step++ {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < f; i++ {
			if usedA[i] {
				continue
			}
			for j := 0; j < f; j++ {
				if usedB[j] {
					continue
				}
				if score[i][j] > best {
					bi, bj, best = i, j, score[i][j]
				}
			}
		}
		usedA[bi], usedB[bj] = true, true
		total += best
	}
	return total / float64(f)
}

package cpals

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/tensor"
)

func TestArrangeSortsByWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	k := randomKTensor(rng, 3, 5, 4, 3)
	k.Lambda[0], k.Lambda[1], k.Lambda[2] = 0.5, 7, 2
	before := k.Full()
	k.Arrange()
	// Weights descending.
	for i := 1; i < k.Rank(); i++ {
		if math.Abs(k.Lambda[i]) > math.Abs(k.Lambda[i-1])+1e-12 {
			t.Fatalf("λ not sorted: %v", k.Lambda)
		}
	}
	// Model unchanged.
	if !k.Full().EqualApprox(before, 1e-10) {
		t.Fatal("Arrange changed the model")
	}
	// Factors unit-norm after Arrange.
	for _, f := range k.Factors {
		for _, n := range f.ColumnNorms() {
			if math.Abs(n-1) > 1e-10 {
				t.Fatalf("column norm %g", n)
			}
		}
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	k := randomKTensor(rng, 3, 4, 4, 4)
	k.Lambda[0], k.Lambda[1], k.Lambda[2] = 1, 2, 3
	before := k.Full()
	k.Permute([]int{2, 0, 1})
	if k.Lambda[0] != 3 || k.Lambda[1] != 1 || k.Lambda[2] != 2 {
		t.Fatalf("λ after permute = %v", k.Lambda)
	}
	if !k.Full().EqualApprox(before, 1e-10) {
		t.Fatal("Permute changed the model")
	}
}

func TestPermuteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	k := randomKTensor(rng, 2, 3, 3)
	for _, bad := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Permute(%v) did not panic", bad)
				}
			}()
			k.Permute(bad)
		}()
	}
}

func TestCongruenceIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	k := randomKTensor(rng, 3, 6, 5, 4)
	if got := Congruence(k, k.Clone()); math.Abs(got-1) > 1e-10 {
		t.Fatalf("self congruence = %g", got)
	}
}

func TestCongruenceInvariantToPermutationAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	k := randomKTensor(rng, 3, 6, 5, 4)
	other := k.Clone()
	other.Permute([]int{2, 0, 1})
	other.Factors[0].Scale(3) // per-mode rescaling is absorbed by Normalize
	if got := Congruence(k, other); math.Abs(got-1) > 1e-10 {
		t.Fatalf("congruence after permute+scale = %g", got)
	}
}

func TestCongruenceUnrelatedLow(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := randomKTensor(rng, 3, 30, 30, 30)
	b := randomKTensor(rng, 3, 30, 30, 30)
	// Random positive factors have substantial mean overlap, but far from 1.
	if got := Congruence(a, b); got > 0.97 {
		t.Fatalf("unrelated congruence = %g", got)
	}
}

func TestCongruenceVerifiesALSRecovery(t *testing.T) {
	// End-to-end: ALS on an exactly low-rank tensor must recover the true
	// factors up to permutation/scaling — congruence ≈ 1.
	rng := rand.New(rand.NewSource(66))
	truth := randomKTensor(rng, 2, 8, 7, 6)
	x := truth.Full()
	got, _, err := Decompose(x, Options{Rank: 2, MaxIters: 500, Tol: 1e-12, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if c := Congruence(got, truth); c < 0.99 {
		t.Fatalf("recovery congruence = %g", c)
	}
}

func TestCongruenceShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := randomKTensor(rng, 2, 3, 3)
	b := randomKTensor(rng, 3, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Congruence(a, b)
}

func TestArrangeOnDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	x := tensor.RandomDense(rng, 6, 6, 6)
	kt, _, err := Decompose(x, Options{Rank: 3, MaxIters: 20, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	fitBefore := kt.Fit(x)
	kt.Arrange()
	if math.Abs(kt.Fit(x)-fitBefore) > 1e-9 {
		t.Fatal("Arrange changed the fit")
	}
}

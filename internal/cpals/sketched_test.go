package cpals

import (
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// lowRankDense builds an exactly rank-r dense tensor from random factors.
func lowRankDense(dims []int, r int, seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		fs[k] = mat.Random(d, r, rng)
	}
	return NewKTensor(fs).Full()
}

// With a healthy sample budget the sketched solver must land near the
// exact ALS fit on a low-rank input.
func TestSketchedApproximatesExact(t *testing.T) {
	x := lowRankDense([]int{30, 28, 26}, 3, 5)
	exact, _, err := Decompose(x, Options{Rank: 3, MaxIters: 40, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	kt, info, err := Decompose(x, Options{
		Rank: 3, MaxIters: 40, Rng: rand.New(rand.NewSource(9)),
		Solver: Sketched{Samples: 500, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	exactFit := exact.Fit(x)
	if d := abs(kt.Fit(x) - exactFit); d > 0.05 {
		t.Fatalf("sketched fit %g vs exact %g (Δ=%g)", kt.Fit(x), exactFit, d)
	}
	if info.Fit < 0 || info.Fit > 1 {
		t.Fatalf("fit %g outside [0,1]", info.Fit)
	}
}

// Same options, same seeds → bit-identical factors; the sampling is part
// of the deterministic contract.
func TestSketchedDeterministic(t *testing.T) {
	x := lowRankDense([]int{24, 20, 18}, 2, 7)
	opts := func() Options {
		return Options{Rank: 2, MaxIters: 10, Rng: rand.New(rand.NewSource(1)),
			Solver: Sketched{Samples: 200, Seed: 11}}
	}
	a, _, err := Decompose(x, opts())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Decompose(x, opts())
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Factors {
		if !a.Factors[k].Equal(b.Factors[k]) {
			t.Fatalf("mode-%d factors not bit-identical", k)
		}
	}
}

// Sparse inputs have no fiber sampling: a Sketched wrapper must reproduce
// its inner solver bit for bit.
func TestSketchedSparseFallsBackToInner(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandomCOO(rng, 0.2, 15, 12, 10)
	x.Canonicalize()
	plain, _, err := DecomposeSparse(x, Options{Rank: 2, MaxIters: 8, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, _, err := DecomposeSparse(x, Options{Rank: 2, MaxIters: 8, Rng: rand.New(rand.NewSource(2)),
		Solver: Sketched{Samples: 50, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.Factors {
		if !plain.Factors[k].Equal(wrapped.Factors[k]) {
			t.Fatalf("mode-%d: sketched-over-sparse differs from the inner solver", k)
		}
	}
}

// The sampled system composes with the constrained inner solvers.
func TestSketchedComposesWithConstraints(t *testing.T) {
	x := lowRankDense([]int{22, 20, 18}, 2, 3)
	for _, inner := range []Solver{Ridge{Lambda: 0.1}, Nonnegative{}} {
		kt, info, err := Decompose(x, Options{
			Rank: 2, MaxIters: 15, Rng: rand.New(rand.NewSource(6)),
			Solver: Sketched{Inner: inner, Samples: 400, Seed: 8},
		})
		if err != nil {
			t.Fatalf("%s: %v", inner.Name(), err)
		}
		if info.Fit < 0 || info.Fit > 1 {
			t.Fatalf("%s: fit %g outside [0,1]", inner.Name(), info.Fit)
		}
		if _, ok := inner.(Nonnegative); ok {
			for k, f := range kt.Factors {
				for _, v := range f.Data {
					if v < 0 {
						t.Fatalf("nonneg mode %d went negative: %g", k, v)
					}
				}
			}
		}
	}
}

// Small modes whose exact system is under the sample budget run exactly:
// a Sketched run over a tiny tensor equals the plain run bit for bit.
func TestSketchedSkipsSmallModes(t *testing.T) {
	x := lowRankDense([]int{6, 5, 4}, 2, 2)
	plain, _, err := Decompose(x, Options{Rank: 2, MaxIters: 6, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, _, err := Decompose(x, Options{Rank: 2, MaxIters: 6, Rng: rand.New(rand.NewSource(3)),
		Solver: Sketched{Samples: 1000, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain.Factors {
		if !plain.Factors[k].Equal(wrapped.Factors[k]) {
			t.Fatalf("mode-%d: small-mode sketched run diverged from exact", k)
		}
	}
}

func TestSketchedValidation(t *testing.T) {
	if err := ValidateSolver(Sketched{Samples: -1}); err == nil {
		t.Fatal("negative sample budget accepted")
	}
	if err := ValidateSolver(Sketched{Inner: Sketched{}}); err == nil {
		t.Fatal("nested sketched solver accepted")
	}
	if err := ValidateSolver(Sketched{Inner: Ridge{Lambda: -1}}); err == nil {
		t.Fatal("invalid inner solver accepted")
	}
	if err := ValidateSolver(Sketched{Inner: Ridge{Lambda: 0.5}, Samples: 100}); err != nil {
		t.Fatal(err)
	}
	if got := (Sketched{}).Name(); got != "sketched+ls" {
		t.Fatalf("Name() = %q", got)
	}
	if got := (Sketched{Inner: Nonnegative{}}).Name(); got != "sketched+nonneg" {
		t.Fatalf("Name() = %q", got)
	}
	if got := FingerprintName(Sketched{Inner: Ridge{Lambda: 1}}); got != "sketched+ridge" {
		t.Fatalf("FingerprintName = %q", got)
	}
}

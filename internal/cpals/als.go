package cpals

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// Options configures a CP-ALS run.
type Options struct {
	// Rank is the target decomposition rank F; it must be positive.
	Rank int
	// MaxIters bounds the number of ALS sweeps (default 50).
	MaxIters int
	// Tol stops the iteration once the fit improves by less than Tol
	// between consecutive sweeps (default 1e-4). The paper's §VIII-C uses
	// 1e-2 per (virtual) iteration.
	Tol float64
	// Rng supplies factor initialization randomness; required unless Init
	// is given. Passing the generator explicitly keeps every run
	// reproducible.
	Rng *rand.Rand
	// Init optionally supplies initial factor matrices (Dims[k]×Rank);
	// they are cloned, not mutated.
	Init []*mat.Matrix
	// Workspace optionally supplies reusable scratch so repeated
	// decompositions (e.g. Phase 1's per-block ALS) stop allocating per
	// sweep. The same workspace may be reused across calls of any shape
	// but must not be shared by concurrent calls; results are identical
	// with or without it.
	Workspace *Workspace
	// Solver picks the row-block update applied each mode sweep; nil
	// selects LeastSquares, the historical unconstrained behavior (the
	// default path is bit-for-bit unchanged). See the Solver contract for
	// what Ridge and Nonnegative guarantee.
	Solver Solver
}

// Info reports how an ALS run went.
type Info struct {
	Iters     int       // sweeps executed
	Fit       float64   // final fit 1 − ‖X−X̂‖/‖X‖
	FitTrace  []float64 // fit after each sweep
	Converged bool      // true if the tolerance was met before MaxIters
}

// ErrBadOptions is returned for invalid option combinations.
var ErrBadOptions = errors.New("cpals: invalid options")

func (o *Options) normalize(dims []int) (Options, error) {
	out := *o
	if out.Rank <= 0 {
		return out, fmt.Errorf("%w: rank %d", ErrBadOptions, out.Rank)
	}
	if out.MaxIters <= 0 {
		out.MaxIters = 50
	}
	if out.Tol <= 0 {
		out.Tol = 1e-4
	}
	if out.Init != nil {
		if len(out.Init) != len(dims) {
			return out, fmt.Errorf("%w: %d init factors for %d modes", ErrBadOptions, len(out.Init), len(dims))
		}
		for k, m := range out.Init {
			if m.Rows != dims[k] || m.Cols != out.Rank {
				return out, fmt.Errorf("%w: init factor %d is %d×%d, want %d×%d",
					ErrBadOptions, k, m.Rows, m.Cols, dims[k], out.Rank)
			}
		}
	} else if out.Rng == nil {
		return out, fmt.Errorf("%w: need Rng or Init", ErrBadOptions)
	}
	if err := ValidateSolver(out.Solver); err != nil {
		return out, err
	}
	if out.Solver == nil {
		out.Solver = LeastSquares{}
	}
	return out, nil
}

// Decompose runs CP-ALS on a dense tensor.
func Decompose(x *tensor.Dense, opts Options) (*KTensor, Info, error) {
	return alsCore(x.Dims, x.Norm(), func(dst *mat.Matrix, factors []*mat.Matrix, n int) {
		tensor.MTTKRPInto(dst, x, factors, n)
	}, x, opts)
}

// DecomposeSparse runs CP-ALS on a sparse tensor. A Sketched solver's
// sampled path needs random fiber access and does not apply here: it
// degrades to its inner solver (see Sketched).
func DecomposeSparse(x *tensor.COO, opts Options) (*KTensor, Info, error) {
	return alsCore(x.Dims, x.Norm(), func(dst *mat.Matrix, factors []*mat.Matrix, n int) {
		tensor.MTTKRPSparseInto(dst, x, factors, n)
	}, nil, opts)
}

// alsCore is the shared ALS loop, parameterized only by the MTTKRP kernel
// so dense and sparse inputs share one implementation. All sweep scratch —
// the MTTKRP accumulators, V, the Gram cache and the solve/normalize
// buffers — comes from the workspace, and the factor matrices are updated
// in place, so steady-state sweeps perform no allocation.
//
// x carries the dense tensor when there is one: a Sketched solver's
// leverage-sampled mode updates need random fiber access, which only a
// dense tensor provides (sparse runs pass nil and stay exact).
func alsCore(dims []int, normX float64, mttkrp func(*mat.Matrix, []*mat.Matrix, int), x *tensor.Dense, opts Options) (*KTensor, Info, error) {
	o, err := opts.normalize(dims)
	if err != nil {
		return nil, Info{}, err
	}
	n := len(dims)
	f := o.Rank
	ws := o.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.reset(n, f)

	factors := make([]*mat.Matrix, n)
	if o.Init != nil {
		for k := range factors {
			factors[k] = o.Init[k].Clone()
		}
	} else {
		for k := range factors {
			factors[k] = mat.Random(dims[k], f, o.Rng)
		}
	}
	lambda := ws.lambda
	for i := range lambda {
		lambda[i] = 1
	}
	// Cache the Gram matrices A(k)ᵀA(k); refresh after each factor update.
	grams := ws.grams[:n]
	for k := range grams {
		mat.GramInto(grams[k], factors[k])
	}
	v := ws.v

	// A Sketched solver takes over dense mode updates with a sampled
	// system; the last mode of every sweep stays exact because the
	// sweep-end fit is read off its MTTKRP.
	sketch, sketching := o.Solver.(Sketched)

	info := Info{}
	prevFit := 0.0
	for iter := 1; iter <= o.MaxIters; iter++ {
		var lastM *mat.Matrix
		for mode := 0; mode < n; mode++ {
			m := ws.mttkrpBuf(dims[mode])
			if sketching && x != nil && mode != n-1 && sketch.sampledApplicable(dims, mode, f) {
				sketch.sampleSystem(m, v, x, factors, grams, mode, iter)
			} else {
				mttkrp(m, factors, mode)
				// V = ⊛_{k≠mode} A(k)ᵀA(k)
				v.Fill(1)
				for k := 0; k < n; k++ {
					if k != mode {
						v.HadamardInPlace(grams[k])
					}
				}
			}
			a := factors[mode]
			if o.Solver.WarmStart() {
				// Unfold λ into the warm start: the factor columns are
				// unit-norm with the model's scale held in λ, but the
				// solver's iterate lives at the true scale of the update
				// target, so the warm start is A·diag(λ).
				a.ScaleColumns(lambda)
			}
			o.Solver.Solve(a, m, v, &ws.solver)
			a.NormalizeColumnsTo(ws.norms, ws.inv, 1e-300)
			copy(lambda, ws.norms)
			// Refresh the Gram cache from the *normalized* factor: the
			// sweep-end fit below reads this cache, so it must reflect the
			// exact factors/λ the returned KTensor will carry (the
			// TestFitMatchesDirectNorm regression pins this against the
			// direct-norm fit).
			mat.GramInto(grams[mode], a)
			lastM = m
		}
		// Fit via the last mode's MTTKRP: ⟨X,X̂⟩ = Σ_f λ_f Σ_i M[i,f]A[i,f],
		// with ‖X̂‖ from the cached Grams (the Kruskal identity, see
		// KTensor.Norm) instead of re-Gramming every factor.
		inner := innerFromMTTKRP(lastM, factors[n-1], lambda)
		v.Fill(1)
		for k := 0; k < n; k++ {
			v.HadamardInPlace(grams[k])
		}
		norm2 := mat.QuadForm(v, lambda, lambda)
		if norm2 < 0 {
			norm2 = 0
		}
		fit := fitFromParts(normX, math.Sqrt(norm2), inner)
		info.FitTrace = append(info.FitTrace, fit)
		info.Iters = iter
		info.Fit = fit
		if iter > 1 && abs(fit-prevFit) < o.Tol {
			info.Converged = true
			break
		}
		prevFit = fit
	}
	out := &KTensor{Lambda: append([]float64(nil), lambda...), Factors: factors}
	return out, info, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package cpals

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// TestLeastSquaresSolverBitExact pins the tentpole's compatibility
// contract at the seam itself: routing the update through the Solver
// interface produces bit-for-bit the bytes of the historical direct
// RightSolveSPD call, and an explicit LeastSquares{} in Options is
// bit-identical to leaving Solver nil.
func TestLeastSquaresSolverBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, f := 2+rng.Intn(10), 1+rng.Intn(5)
		m := mat.Random(rows, f, rng)
		base := mat.Random(rows+f, f, rng)
		v := mat.Gram(base)
		want := mat.RightSolveSPD(m, v)
		got := mat.New(rows, f)
		LeastSquares{}.Solve(got, m, v, &SolverScratch{})
		if !got.Equal(want) {
			t.Fatalf("trial %d: Solver path differs from direct RightSolveSPD", trial)
		}
	}

	x := tensor.RandomDense(rand.New(rand.NewSource(7)), 9, 8, 7)
	opts := Options{Rank: 3, MaxIters: 5, Tol: 1e-12, Rng: rand.New(rand.NewSource(1))}
	ktNil, infoNil, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Rng = rand.New(rand.NewSource(1))
	opts.Solver = LeastSquares{}
	ktLS, infoLS, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if infoNil.Fit != infoLS.Fit || infoNil.Iters != infoLS.Iters {
		t.Fatalf("explicit LeastSquares diverges: fit %v vs %v", infoLS.Fit, infoNil.Fit)
	}
	for m := range ktNil.Factors {
		if !ktNil.Factors[m].Equal(ktLS.Factors[m]) {
			t.Fatalf("explicit LeastSquares: factor %d differs", m)
		}
	}
}

// TestRidgeSolverMatchesAugmentedSystem checks Ridge against its
// definition: A·(V+λI) = M, verified by multiplying back.
func TestRidgeSolverMatchesAugmentedSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{1e-6, 1e-2, 1, 50} {
		rows, f := 7, 4
		m := mat.Random(rows, f, rng)
		// Rank-deficient V (Gram of a matrix with fewer rows than columns)
		// would sink plain least squares into the pseudo-inverse; ridge must
		// still solve it exactly.
		v := mat.Gram(mat.Random(f-2, f, rng))
		a := mat.New(rows, f)
		Ridge{Lambda: lambda}.Solve(a, m, v, &SolverScratch{})
		damped := v.Clone()
		for i := 0; i < f; i++ {
			damped.Set(i, i, damped.At(i, i)+lambda)
		}
		back := mat.Mul(a, damped)
		if !back.EqualApprox(m, 1e-9*(1+m.MaxAbs())) {
			t.Fatalf("lambda=%g: A(V+λI) != M", lambda)
		}
	}
}

// TestNonnegativeSolverProperties: the HALS update is nonnegative from any
// warm start, deterministic, and never increases the quadratic objective
// ‖X_(n) − A·KR‖² it minimizes (evaluated via its Gram form
// tr(AVAᵀ) − 2tr(AMᵀ) + const).
func TestNonnegativeSolverProperties(t *testing.T) {
	obj := func(a, m, v *mat.Matrix) float64 {
		av := mat.Mul(a, v)
		var s float64
		for i := range a.Data {
			s += a.Data[i]*av.Data[i] - 2*a.Data[i]*m.Data[i]
		}
		return s
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows, f := 2+rng.Intn(9), 1+rng.Intn(5)
		m := mat.Random(rows, f, rng)
		v := mat.Gram(mat.Random(rows+f, f, rng))
		warm := mat.Random(rows, f, rng)
		for i := range warm.Data {
			warm.Data[i] -= 0.5 // mixed-sign warm start: the projection must clean it
		}
		a := warm.Clone()
		Nonnegative{}.Solve(a, m, v, &SolverScratch{})
		for i, x := range a.Data {
			if x < 0 {
				t.Fatalf("trial %d: negative output %g at %d", trial, x, i)
			}
		}
		// Monotone vs the projected warm start (HALS's actual iterate).
		proj := warm.Clone()
		for i, x := range proj.Data {
			if x < 0 {
				proj.Data[i] = 0
			}
		}
		before, after := obj(proj, m, v), obj(a, m, v)
		if after > before+1e-12*(1+math.Abs(before)) {
			t.Fatalf("trial %d: objective rose %g -> %g", trial, before, after)
		}
		b := warm.Clone()
		Nonnegative{}.Solve(b, m, v, &SolverScratch{})
		if !a.Equal(b) {
			t.Fatalf("trial %d: HALS is not deterministic", trial)
		}
		// More inner passes keep improving (or hold) the objective.
		c := warm.Clone()
		Nonnegative{InnerIters: 5}.Solve(c, m, v, &SolverScratch{})
		if obj(c, m, v) > after+1e-12*(1+math.Abs(after)) {
			t.Fatalf("trial %d: extra HALS passes worsened the objective", trial)
		}
	}
}

// TestNonnegativeSolverDeadComponent: a zero Gram diagonal (dead
// component) pins the column to zero instead of dividing by zero.
func TestNonnegativeSolverDeadComponent(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	v := mat.FromRows([][]float64{{1, 0}, {0, 0}})
	a := mat.FromRows([][]float64{{5, 5}, {5, 5}})
	Nonnegative{}.Solve(a, m, v, &SolverScratch{})
	for i := 0; i < 2; i++ {
		if got := a.At(i, 1); got != 0 {
			t.Fatalf("dead column entry %d is %g, want 0", i, got)
		}
		if got := a.At(i, 0); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("live column entry %d is %g", i, got)
		}
	}
}

// TestNewSolverParsing covers the shared constraint-name mapping.
func TestNewSolverParsing(t *testing.T) {
	for _, name := range []string{"", "none", "ls"} {
		s, err := NewSolver(name, 0)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if _, ok := s.(LeastSquares); !ok {
			t.Fatalf("%q: got %T", name, s)
		}
	}
	s, err := NewSolver("ridge", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := s.(Ridge); !ok || r.Lambda != 0.5 {
		t.Fatalf("ridge: got %#v", s)
	}
	if s, err = NewSolver("nonneg", 0); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(Nonnegative); !ok {
		t.Fatalf("nonneg: got %T", s)
	}
	for _, bad := range []struct {
		name   string
		lambda float64
	}{
		{"ridge", 0}, {"ridge", -1}, {"ridge", math.Inf(1)}, {"ridge", math.NaN()},
		{"nonneg", 0.1}, {"", 0.1}, {"frobnicate", 0},
	} {
		if _, err := NewSolver(bad.name, bad.lambda); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("NewSolver(%q, %g): got %v, want ErrBadOptions", bad.name, bad.lambda, err)
		}
	}
	// The same validation fires through Options.
	x := tensor.RandomDense(rand.New(rand.NewSource(1)), 4, 4, 4)
	_, _, err = Decompose(x, Options{Rank: 2, Rng: rand.New(rand.NewSource(1)), Solver: Ridge{}})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Ridge{Lambda:0} through Options: got %v", err)
	}
}

// TestFitMatchesDirectNorm is the fit-reporting regression: the fit each
// sweep reports from the post-normalization Gram cache must agree with the
// fit recomputed from scratch against the returned model (direct tensor
// norm, fresh MTTKRP) to 1e-9 — for every solver. A stale (pre-normalize)
// cache or an off-by-one-sweep trace entry would push the disagreement to
// ~1e-2 on these sizes.
func TestFitMatchesDirectNorm(t *testing.T) {
	solvers := map[string]Solver{
		"ls":     nil,
		"ridge":  Ridge{Lambda: 1e-3},
		"nonneg": Nonnegative{},
	}
	for name, solver := range solvers {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				x := tensor.RandomDense(rng, 9, 8, 7)
				kt, info, err := Decompose(x, Options{
					Rank: 3, MaxIters: 6, Tol: 1e-12, Rng: rng, Solver: solver,
				})
				if err != nil {
					t.Fatal(err)
				}
				direct := kt.Fit(x)
				if math.Abs(direct-info.Fit) > 1e-9 {
					t.Fatalf("seed %d: reported fit %.17g, direct fit %.17g", seed, info.Fit, direct)
				}
				if len(info.FitTrace) == 0 || info.FitTrace[len(info.FitTrace)-1] != info.Fit {
					t.Fatalf("seed %d: Fit %v is not the last trace entry %v", seed, info.Fit, info.FitTrace)
				}
			}
		})
	}
}

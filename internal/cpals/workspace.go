package cpals

import (
	"twopcp/internal/mat"
)

// Workspace holds the reusable scratch of a CP-ALS run: the per-mode MTTKRP
// accumulators, the Hadamard-of-Grams system matrix V, the Gram cache, the
// normal-equation solve buffers and the column-normalization scratch.
//
// A Phase-1 run decomposes thousands of blocks; without a workspace every
// block's every sweep allocates fresh matrices for all of these. Passing a
// Workspace through Options.Workspace makes steady-state sweeps
// allocation-free (factor matrices themselves are still allocated — they
// are the output).
//
// A Workspace may be reused across Decompose calls of any shapes and ranks
// (buffers grow and are re-sliced on demand) but must not be shared by
// concurrent calls. Reusing one never changes results: every buffer is
// fully overwritten before use.
type Workspace struct {
	mttkrp map[int]*mat.Matrix // MTTKRP accumulators keyed by row count
	rank   int                 // column count the cached buffers were built for
	v      *mat.Matrix         // Hadamard of Grams (rank×rank)
	grams  []*mat.Matrix       // per-mode Gram cache (rank×rank each)
	lambda []float64
	norms  []float64
	inv    []float64
	solver SolverScratch
}

// NewWorkspace returns an empty workspace; buffers are created on first
// use.
func NewWorkspace() *Workspace { return &Workspace{} }

// reset prepares the workspace for a run with the given mode count and
// rank, invalidating cached buffers whose shape depends on the rank.
func (w *Workspace) reset(modes, rank int) {
	if w.rank != rank {
		w.rank = rank
		w.mttkrp = nil
		w.v = nil
		w.grams = nil
	}
	if w.mttkrp == nil {
		w.mttkrp = make(map[int]*mat.Matrix)
	}
	if w.v == nil {
		w.v = mat.New(rank, rank)
	}
	for len(w.grams) < modes {
		w.grams = append(w.grams, mat.New(rank, rank))
	}
	if cap(w.lambda) < rank {
		w.lambda = make([]float64, rank)
		w.norms = make([]float64, rank)
		w.inv = make([]float64, rank)
	}
	w.lambda = w.lambda[:rank]
	w.norms = w.norms[:rank]
	w.inv = w.inv[:rank]
}

// mttkrpBuf returns the rows×rank MTTKRP accumulator for a mode with the
// given row count.
func (w *Workspace) mttkrpBuf(rows int) *mat.Matrix {
	m := w.mttkrp[rows]
	if m == nil {
		m = mat.New(rows, w.rank)
		w.mttkrp[rows] = m
	}
	return m
}

package cpals

import (
	"fmt"
	"math"

	"twopcp/internal/mat"
)

// Solver is the pluggable row-block update at the heart of every ALS
// sweep (and of Phase 2's partition updates, which share the same normal
// equations). Given the MTTKRP result M (rows×F) and the Hadamard-of-Grams
// system matrix V (F×F, symmetric positive semi-definite), a Solver
// overwrites A (rows×F) with its update for
//
//	min_A ‖X_(n) − A·KR‖²  (+ the solver's own regularizer/constraint),
//
// whose unconstrained normal equations are A·V = M.
//
// Contract (relied on by phase1, refine and the runstate fingerprint):
//
//   - Solve must be deterministic: the same (a, m, v) bytes produce the
//     same output bytes on every call, at every par worker count. All
//     solvers here are serial over F×F/rows×F data — the expensive kernels
//     (MTTKRP, Gram) run before the solve — so this holds by construction.
//   - Solve must not retain or alias its arguments past the call, and may
//     use sc for scratch (never shared between concurrent calls).
//   - When WarmStart reports true, Solve reads a's initial contents as the
//     starting iterate (and must still produce a valid update when that
//     content is arbitrary); otherwise a is write-only.
//   - The output must be safe to column-normalize: cpals folds column
//     norms into λ after every update, and constrained solvers must keep
//     their invariant (e.g. nonnegativity) under positive column scaling.
type Solver interface {
	// Name is the solver's stable identity, recorded (via the twopcp
	// layer) in checkpoint option fingerprints: "ls", "ridge", "nonneg".
	Name() string
	// WarmStart reports whether Solve reads a's initial contents.
	WarmStart() bool
	// Solve overwrites a with the update for a·V = M under the solver's
	// constraint. a must be rows×F and must not alias m or v.
	Solve(a, m, v *mat.Matrix, sc *SolverScratch)
}

// SolverScratch holds the reusable buffers of the solvers. The zero value
// is ready to use; buffers grow on demand and are reused across solves of
// any shape. cpals.Workspace embeds one so ALS sweeps stay allocation-free.
type SolverScratch struct {
	// SPD backs the Cholesky solves of LeastSquares and Ridge.
	SPD mat.SPDScratch
	// damp is Ridge's damped system matrix V + λI (F×F).
	damp *mat.Matrix
}

func (sc *SolverScratch) dampBuf(n int) *mat.Matrix {
	if sc.damp == nil || sc.damp.Rows != n {
		sc.damp = mat.New(n, n)
	}
	return sc.damp
}

// LeastSquares is the default unconstrained solver: A = M·V⁻¹ via a
// Cholesky solve with a symmetric pseudo-inverse fallback on singular V.
// It is bit-for-bit the historical cpals behavior.
type LeastSquares struct{}

// Name implements Solver.
func (LeastSquares) Name() string { return "ls" }

// WarmStart implements Solver: the unconstrained solve is closed-form.
func (LeastSquares) WarmStart() bool { return false }

// Solve implements Solver.
func (LeastSquares) Solve(a, m, v *mat.Matrix, sc *SolverScratch) {
	mat.RightSolveSPDInto(a, m, v, &sc.SPD)
}

// Ridge is Tikhonov-damped least squares: A = M·(V + λI)⁻¹, the minimizer
// of ‖X_(n) − A·KR‖² + λ‖A‖². The damping lifts every eigenvalue of the
// Gram system by λ, so the solve stays on the Cholesky fast path (and its
// conditioning stays bounded by (λ_max(V)+λ)/λ) even when collinear factor
// columns make V numerically singular.
type Ridge struct {
	// Lambda is the damping weight λ; it must be positive and finite.
	Lambda float64
}

// Name implements Solver.
func (Ridge) Name() string { return "ridge" }

// WarmStart implements Solver: the damped solve is closed-form.
func (Ridge) WarmStart() bool { return false }

// Solve implements Solver.
func (s Ridge) Solve(a, m, v *mat.Matrix, sc *SolverScratch) {
	d := sc.dampBuf(v.Rows)
	d.CopyFrom(v)
	for i := 0; i < d.Rows; i++ {
		d.Data[i*d.Cols+i] += s.Lambda
	}
	mat.RightSolveSPDInto(a, m, d, &sc.SPD)
}

func (s Ridge) validate() error {
	if !(s.Lambda > 0) || math.IsInf(s.Lambda, 1) {
		return fmt.Errorf("%w: ridge lambda %g (want finite > 0)", ErrBadOptions, s.Lambda)
	}
	return nil
}

// Nonnegative solves the row-block update under A ≥ 0 element-wise with
// HALS (hierarchical alternating least squares, Cichocki & Phan): each
// component column is updated in turn by its exact nonnegative
// one-dimensional minimizer over the cached Gram system,
//
//	A[:,f] ← max(0, A[:,f] + (M − A·V)[:,f] / V[f,f]),
//
// warm-started from the current factor. One pass is the textbook
// HALS-per-ALS-sweep step; InnerIters raises the per-update pass count.
// The update touches only rows×F² flops against the F×F Gram — the same
// kernel structure as the unconstrained solve (Ballard et al., "Parallel
// Nonnegative CP Decomposition of Dense Tensors"), so MTTKRP still
// dominates and the constrained sweep stays within a small factor of the
// unconstrained one.
type Nonnegative struct {
	// InnerIters is the number of HALS passes per update (default 1).
	InnerIters int
}

// Name implements Solver.
func (Nonnegative) Name() string { return "nonneg" }

// WarmStart implements Solver: HALS iterates from the current factor.
func (Nonnegative) WarmStart() bool { return true }

// Solve implements Solver. The warm start is first projected onto the
// nonnegative cone, so the output is element-wise nonnegative whatever the
// initial content of a; every operation is serial and in fixed order, so
// the update is deterministic.
func (s Nonnegative) Solve(a, m, v *mat.Matrix, sc *SolverScratch) {
	inner := s.InnerIters
	if inner <= 0 {
		inner = 1
	}
	for i, x := range a.Data {
		if !(x > 0) {
			a.Data[i] = 0
		}
	}
	f := v.Rows
	for it := 0; it < inner; it++ {
		for c := 0; c < f; c++ {
			// V is symmetric, so column c is row c (contiguous).
			vcol := v.Row(c)
			vcc := vcol[c]
			if !(vcc > 0) {
				// A dead component (zero column somewhere in the KR
				// product) makes the objective flat in this column; pin it
				// to zero deterministically, matching the λ-folding rule
				// that reports dead columns with weight 1 and zero factors.
				for i := 0; i < a.Rows; i++ {
					a.Row(i)[c] = 0
				}
				continue
			}
			for i := 0; i < a.Rows; i++ {
				row := a.Row(i)
				g := m.At(i, c)
				for k, vk := range vcol {
					g -= row[k] * vk
				}
				x := row[c] + g/vcc
				if !(x > 0) {
					x = 0
				}
				row[c] = x
			}
		}
	}
}

// ValidateSolver checks a solver's parameters; nil is valid and selects
// LeastSquares. cpals options normalization and the refine engine both
// call it, so an invalid Ridge weight is rejected at configuration time in
// either phase rather than surfacing as a numerically broken solve.
func ValidateSolver(s Solver) error {
	switch sv := s.(type) {
	case nil, LeastSquares, Nonnegative:
		return nil
	case Ridge:
		return sv.validate()
	case Sketched:
		return sv.validate()
	default:
		return nil // user-supplied solvers manage their own invariants
	}
}

// FingerprintName returns the canonical constraint name recorded in
// checkpoint manifests for s: "" for the least-squares default (so
// manifests written before solvers existed keep matching), otherwise the
// solver's Name. Every layer that writes a runstate.Meta fingerprint must
// go through this one mapping — two independent spellings of the same
// solver would make checkpoints written by one layer unresumable by
// another.
func FingerprintName(s Solver) string {
	if s == nil {
		return ""
	}
	if _, ok := s.(LeastSquares); ok {
		return ""
	}
	return s.Name()
}

// NewSolver maps a constraint name to its solver: "" , "none" or "ls" →
// LeastSquares, "ridge" → Ridge{lambda}, "nonneg" → Nonnegative. It is the
// single parsing point shared by the CLIs, the experiment configs and the
// twopcp options layer, so fingerprint names cannot drift between them.
func NewSolver(name string, lambda float64) (Solver, error) {
	switch name {
	case "", "none", "ls":
		if lambda != 0 {
			return nil, fmt.Errorf("%w: lambda %g is only meaningful with the ridge constraint", ErrBadOptions, lambda)
		}
		return LeastSquares{}, nil
	case "ridge":
		s := Ridge{Lambda: lambda}
		if err := s.validate(); err != nil {
			return nil, err
		}
		return s, nil
	case "nonneg":
		if lambda != 0 {
			return nil, fmt.Errorf("%w: lambda %g is only meaningful with the ridge constraint", ErrBadOptions, lambda)
		}
		return Nonnegative{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown constraint %q (want none, ridge or nonneg)", ErrBadOptions, name)
	}
}

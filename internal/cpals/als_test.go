package cpals

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

func TestDecomposeRecoversLowRank(t *testing.T) {
	// An exactly rank-2 tensor must be recovered to fit ≈ 1.
	rng := rand.New(rand.NewSource(100))
	truth := randomKTensor(rng, 2, 6, 5, 4)
	x := truth.Full()
	kt, info, err := Decompose(x, Options{Rank: 2, MaxIters: 200, Tol: 1e-9, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Plain ALS can crawl through a "swamp" on random inits, so accept a
	// near-perfect fit rather than machine precision.
	if info.Fit < 0.995 {
		t.Fatalf("fit = %g after %d iters, want ≈1", info.Fit, info.Iters)
	}
	if got := kt.Fit(x); math.Abs(got-info.Fit) > 1e-6 {
		t.Fatalf("reported fit %g != recomputed %g", info.Fit, got)
	}
}

func TestDecomposeFitMonotoneNonDecreasing(t *testing.T) {
	// ALS is a block-coordinate descent: the fit trace must be
	// (numerically) non-decreasing.
	rng := rand.New(rand.NewSource(101))
	x := tensor.RandomDense(rng, 6, 7, 5)
	_, info, err := Decompose(x, Options{Rank: 3, MaxIters: 30, Tol: 1e-12, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(info.FitTrace); i++ {
		if info.FitTrace[i] < info.FitTrace[i-1]-1e-9 {
			t.Fatalf("fit decreased at sweep %d: %v", i, info.FitTrace)
		}
	}
}

func TestDecomposeConvergesAndStops(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	truth := randomKTensor(rng, 1, 5, 5, 5)
	x := truth.Full()
	_, info, err := Decompose(x, Options{Rank: 1, MaxIters: 500, Tol: 1e-8, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged {
		t.Fatal("rank-1 recovery did not converge")
	}
	if info.Iters >= 500 {
		t.Fatal("convergence should stop before MaxIters")
	}
}

func TestDecomposeDeterministicWithSeed(t *testing.T) {
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	x := tensor.RandomDense(rand.New(rand.NewSource(1)), 4, 4, 4)
	k1, i1, err := Decompose(x, Options{Rank: 2, MaxIters: 10, Rng: rng1})
	if err != nil {
		t.Fatal(err)
	}
	k2, i2, err := Decompose(x, Options{Rank: 2, MaxIters: 10, Rng: rng2})
	if err != nil {
		t.Fatal(err)
	}
	if i1.Fit != i2.Fit {
		t.Fatalf("fits differ: %g vs %g", i1.Fit, i2.Fit)
	}
	for m := range k1.Factors {
		if !k1.Factors[m].Equal(k2.Factors[m]) {
			t.Fatal("factors differ across identically seeded runs")
		}
	}
}

func TestDecomposeWithInit(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	truth := randomKTensor(rng, 2, 5, 4, 3)
	x := truth.Full()
	// Initialize near the truth (small perturbation) so ALS converges to
	// the global optimum; the test verifies Init plumbing, not swamps.
	init := make([]*mat.Matrix, 3)
	for k := range init {
		init[k] = truth.Factors[k].Clone()
		noise := mat.Random(init[k].Rows, init[k].Cols, rng)
		noise.Scale(0.01)
		init[k].AddInPlace(noise)
	}
	orig := init[0].Clone()
	kt, info, err := Decompose(x, Options{Rank: 2, MaxIters: 100, Tol: 1e-10, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit < 0.999 {
		t.Fatalf("fit with explicit init = %g", info.Fit)
	}
	if !init[0].Equal(orig) {
		t.Fatal("Decompose mutated the Init matrices")
	}
	if kt.Rank() != 2 {
		t.Fatalf("rank = %d", kt.Rank())
	}
}

func TestDecomposeSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	c := tensor.RandomCOO(rng, 0.3, 6, 5, 4)
	d := c.Dense()
	init := make([]*mat.Matrix, 3)
	for k, dim := range []int{6, 5, 4} {
		init[k] = mat.Random(dim, 2, rng)
	}
	_, infoS, err := DecomposeSparse(c, Options{Rank: 2, MaxIters: 20, Tol: 1e-12, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	_, infoD, err := Decompose(d, Options{Rank: 2, MaxIters: 20, Tol: 1e-12, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(infoS.Fit-infoD.Fit) > 1e-9 {
		t.Fatalf("sparse fit %g != dense fit %g", infoS.Fit, infoD.Fit)
	}
}

func TestDecomposeOptionValidation(t *testing.T) {
	x := tensor.NewDense(2, 2)
	cases := []Options{
		{Rank: 0, Rng: rand.New(rand.NewSource(1))},
		{Rank: -1, Rng: rand.New(rand.NewSource(1))},
		{Rank: 2}, // no Rng and no Init
		{Rank: 2, Init: []*mat.Matrix{mat.New(2, 2)}},                // wrong count
		{Rank: 2, Init: []*mat.Matrix{mat.New(2, 3), mat.New(2, 2)}}, // wrong shape
	}
	for i, o := range cases {
		if _, _, err := Decompose(x, o); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("case %d: err = %v, want ErrBadOptions", i, err)
		}
	}
}

func TestDecompose4Mode(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	truth := randomKTensor(rng, 2, 4, 3, 3, 2)
	x := truth.Full()
	_, info, err := Decompose(x, Options{Rank: 2, MaxIters: 300, Tol: 1e-10, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit < 0.999 {
		t.Fatalf("4-mode fit = %g", info.Fit)
	}
}

func TestDecomposeZeroTensor(t *testing.T) {
	x := tensor.NewDense(3, 3, 3)
	kt, info, err := Decompose(x, Options{Rank: 2, MaxIters: 5, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit != 1 {
		t.Fatalf("fit of zero tensor = %g", info.Fit)
	}
	if kt == nil {
		t.Fatal("nil ktensor")
	}
}

func TestDecomposeRankHigherThanNeeded(t *testing.T) {
	// Over-parameterized rank must still reach fit ≈ 1 (the extra
	// components can be zero-weighted); mostly a numerical-robustness test
	// for the singular normal equations it produces.
	rng := rand.New(rand.NewSource(106))
	truth := randomKTensor(rng, 1, 5, 5, 5)
	x := truth.Full()
	_, info, err := Decompose(x, Options{Rank: 3, MaxIters: 100, Tol: 1e-9, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fit < 0.999 {
		t.Fatalf("over-ranked fit = %g", info.Fit)
	}
}

func TestFitTraceLenMatchesIters(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	x := tensor.RandomDense(rng, 4, 4, 4)
	_, info, err := Decompose(x, Options{Rank: 2, MaxIters: 7, Tol: 1e-15, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.FitTrace) != info.Iters {
		t.Fatalf("trace len %d != iters %d", len(info.FitTrace), info.Iters)
	}
}

func BenchmarkDecomposeDense16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompose(x, Options{Rank: 5, MaxIters: 10, Rng: rand.New(rand.NewSource(2))}); err != nil {
			b.Fatal(err)
		}
	}
}

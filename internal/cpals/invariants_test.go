package cpals

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// Property-based invariant suite: every solver is run over 200+ randomized
// (shape, rank, seed) cases and each run is checked against the solver
// contract rather than against recorded values. The case streams are
// derived deterministically from the case index, so a failure report like
// "case 137" reproduces exactly.

// invariantCase is one randomized decomposition configuration.
type invariantCase struct {
	dims  []int
	rank  int
	seed  int64
	iters int
}

// invariantCases derives n randomized small-tensor cases from a base seed:
// 2–4 modes, mode sizes 2–7, rank 1–4, 2–6 sweeps. Small sizes keep the
// naive O(cells·rank) oracle below a microsecond per case.
func invariantCases(base int64, n int) []invariantCase {
	rng := rand.New(rand.NewSource(base))
	out := make([]invariantCase, n)
	for i := range out {
		modes := 2 + rng.Intn(3)
		dims := make([]int, modes)
		for m := range dims {
			dims[m] = 2 + rng.Intn(6)
		}
		out[i] = invariantCase{
			dims:  dims,
			rank:  1 + rng.Intn(4),
			seed:  rng.Int63(),
			iters: 2 + rng.Intn(5),
		}
	}
	return out
}

// naiveErr2 is the reference oracle: the squared reconstruction error
// ‖X−X̂‖² and ‖X‖², evaluated cell by cell with KTensor.At —
// O(cells·rank), no Gram identities, no caches.
func naiveErr2(x *tensor.Dense, kt *KTensor) (err2, norm2 float64) {
	idx := make([]int, len(x.Dims))
	for flat := range x.Data {
		rem := flat
		for m, d := range x.Dims {
			idx[m] = rem % d
			rem /= d
		}
		v := x.Data[flat]
		d := v - kt.At(idx...)
		err2 += d * d
		norm2 += v * v
	}
	return err2, norm2
}

// checkInvariants applies the shared solver-contract assertions to one run.
func checkInvariants(t *testing.T, kt *KTensor, info Info, x *tensor.Dense, traceTol float64) {
	t.Helper()
	if len(info.FitTrace) != info.Iters {
		t.Fatalf("trace has %d entries for %d sweeps", len(info.FitTrace), info.Iters)
	}
	for i, f := range info.FitTrace {
		if math.IsNaN(f) || f < -1e-9 || f > 1+1e-9 {
			t.Fatalf("trace[%d] = %v outside [0,1]", i, f)
		}
		// Saturated traces are exempt: once the model is exact to float
		// rounding the Gram-identity fit jitters within √ε of 1 (clamped
		// res² one sweep, cancellation noise the next), so ordering two
		// such entries is meaningless.
		saturated := i > 0 && f > 1-1e-6 && info.FitTrace[i-1] > 1-1e-6
		if i > 0 && !saturated && f < info.FitTrace[i-1]-traceTol {
			t.Fatalf("trace decreases at %d: %v -> %v", i, info.FitTrace[i-1], f)
		}
	}
	for f, l := range kt.Lambda {
		if !(l >= 0) {
			t.Fatalf("lambda[%d] = %v", f, l)
		}
	}
	// Oracle agreement, stated on the squared reconstruction error: the
	// reported fit implies ‖X−X̂‖² = ((1−fit)·‖X‖)², which must match the
	// cell-by-cell oracle within 1e-9 relative to ‖X‖². (The fit itself
	// cannot carry a 1e-9 bound near fit=1 — the Gram-identity formula
	// cancels catastrophically there, a √ε≈1e-8 floor shared with the
	// reference Tensor Toolbox implementation; TestFitMatchesDirectNorm
	// pins the 1e-9 fit-level agreement away from that regime.)
	err2, norm2 := naiveErr2(x, kt)
	res := (1 - info.Fit) * math.Sqrt(norm2)
	if math.Abs(res*res-err2) > 1e-9*(1+norm2) {
		t.Fatalf("reported fit %.17g implies err2 %.17g, naive oracle err2 %.17g (norm2 %g)",
			info.Fit, res*res, err2, norm2)
	}
}

// TestInvariantsLeastSquares: 200 randomized cases of the default solver.
// Plain ALS minimizes the residual exactly per mode, so the fit trace is
// monotone to float rounding.
func TestInvariantsLeastSquares(t *testing.T) {
	for i, tc := range invariantCases(100, 200) {
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...)
		kt, info, err := Decompose(x, Options{Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng})
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, tc, err)
		}
		checkInvariants(t, kt, info, x, 1e-7)
	}
}

// TestInvariantsRidge: 200 randomized cases with a randomized damping
// weight. Ridge optimizes the *regularized* objective, so the plain fit
// trace is only monotone up to the λ-sized trade-off; λ is kept ≤ 0.05 and
// the tolerance scaled accordingly.
func TestInvariantsRidge(t *testing.T) {
	lrng := rand.New(rand.NewSource(101))
	for i, tc := range invariantCases(200, 200) {
		lambda := 1e-6 + 0.05*lrng.Float64()
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...)
		kt, info, err := Decompose(x, Options{
			Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng, Solver: Ridge{Lambda: lambda},
		})
		if err != nil {
			t.Fatalf("case %d (%+v, lambda=%g): %v", i, tc, lambda, err)
		}
		checkInvariants(t, kt, info, x, lambda+1e-7)
	}
}

// TestInvariantsNonnegative: 200 randomized cases; on top of the shared
// invariants every factor entry must be ≥ 0 after every run.
func TestInvariantsNonnegative(t *testing.T) {
	for i, tc := range invariantCases(300, 200) {
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...) // uniform [0,1): nonnegative data
		kt, info, err := Decompose(x, Options{
			Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng, Solver: Nonnegative{},
		})
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, tc, err)
		}
		checkInvariants(t, kt, info, x, 1e-7)
		for m, a := range kt.Factors {
			for j, v := range a.Data {
				if v < 0 {
					t.Fatalf("case %d: factor %d entry %d is %g", i, m, j, v)
				}
			}
		}
	}
}

// TestInvariantRidgeConditioning: the damped system V+λI that Ridge solves
// has every eigenvalue lifted by λ, so its condition number is bounded by
// (λ_max(V)+λ)/λ and it is always Cholesky-factorizable — even when V is
// exactly singular (Gram of rank-deficient factors). 200 randomized Gram
// products, including deliberately rank-deficient ones.
func TestInvariantRidgeConditioning(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for i := 0; i < 200; i++ {
		f := 2 + rng.Intn(5)
		modes := 2 + rng.Intn(3)
		lambda := math.Pow(10, -6+6*rng.Float64())
		v := mat.New(f, f)
		v.Fill(1)
		for m := 0; m < modes; m++ {
			rows := 1 + rng.Intn(f+3) // rows < f ⇒ singular Gram
			v.HadamardInPlace(mat.Gram(mat.Random(rows, f, rng)))
		}
		damped := v.Clone()
		for j := 0; j < f; j++ {
			damped.Set(j, j, damped.At(j, j)+lambda)
		}
		vals, _ := mat.SymEig(damped)
		minEig, maxEig := math.Inf(1), math.Inf(-1)
		for _, e := range vals {
			minEig = math.Min(minEig, e)
			maxEig = math.Max(maxEig, e)
		}
		if minEig < lambda*(1-1e-8)-1e-12 {
			t.Fatalf("case %d: min eigenvalue %g below lambda %g", i, minEig, lambda)
		}
		baseVals, _ := mat.SymEig(v)
		baseMax := 0.0
		for _, e := range baseVals {
			baseMax = math.Max(baseMax, e)
		}
		bound := (baseMax + lambda) / lambda
		if cond := maxEig / minEig; cond > bound*(1+1e-6) {
			t.Fatalf("case %d: cond %g exceeds bound %g (lambda=%g)", i, cond, bound, lambda)
		}
		if _, err := mat.Cholesky(damped); err != nil {
			t.Fatalf("case %d: damped system not Cholesky-factorizable: %v", i, err)
		}
	}
}

// TestInvariantsSparseMirrorsDense spot-checks that the solver invariants
// carry over to the sparse kernel path: for a sample of cases per solver,
// DecomposeSparse over FromDense(x) satisfies the same contract.
func TestInvariantsSparseMirrorsDense(t *testing.T) {
	solvers := []struct {
		name   string
		solver Solver
		tol    float64
	}{
		{"ls", nil, 1e-7},
		{"ridge", Ridge{Lambda: 0.01}, 0.01},
		{"nonneg", Nonnegative{}, 1e-7},
	}
	for _, sv := range solvers {
		for i, tc := range invariantCases(500, 25) {
			rng := rand.New(rand.NewSource(tc.seed))
			x := tensor.RandomDense(rng, tc.dims...)
			kt, info, err := DecomposeSparse(tensor.FromDense(x), Options{
				Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng, Solver: sv.solver,
			})
			if err != nil {
				t.Fatalf("%s case %d: %v", sv.name, i, err)
			}
			checkInvariants(t, kt, info, x, sv.tol)
			if _, ok := sv.solver.(Nonnegative); ok {
				for m, a := range kt.Factors {
					if min := matMin(a); min < 0 {
						t.Fatalf("%s case %d: factor %d min %g", sv.name, i, m, min)
					}
				}
			}
		}
	}
}

func matMin(m *mat.Matrix) float64 {
	min := math.Inf(1)
	for _, v := range m.Data {
		min = math.Min(min, v)
	}
	return min
}

// sanity: the case generator itself is deterministic (a changed stream
// would silently re-roll every property above).
func TestInvariantCasesDeterministic(t *testing.T) {
	a := fmt.Sprint(invariantCases(100, 5))
	b := fmt.Sprint(invariantCases(100, 5))
	if a != b {
		t.Fatalf("case stream not deterministic:\n%s\n%s", a, b)
	}
}

// TestInvariantsSketched: randomized cases through the leverage-sampled
// solver with a deliberately tiny row budget, so the sampled path (not
// the exact small-system shortcut) is exercised. Sampled mode updates
// are stochastic, so the trace is NOT monotone — the contract here is
// bounds, nonnegative lambdas and exact fit/oracle agreement (the
// sweep-end fit comes from the always-exact last-mode MTTKRP).
func TestInvariantsSketched(t *testing.T) {
	for i, tc := range invariantCases(600, 100) {
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...)
		kt, info, err := Decompose(x, Options{
			Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng,
			Solver: Sketched{Samples: 8, Seed: tc.seed},
		})
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, tc, err)
		}
		checkInvariants(t, kt, info, x, 1.1) // traceTol > 1: monotonicity vacuous by design
	}
}

// TestInvariantsSketchedNonnegComposes: the sampled system feeds the
// inner solver unchanged, so nonneg factors survive sampling.
func TestInvariantsSketchedNonnegComposes(t *testing.T) {
	for i, tc := range invariantCases(700, 50) {
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...)
		kt, info, err := Decompose(x, Options{
			Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng,
			Solver: Sketched{Inner: Nonnegative{}, Samples: 8, Seed: tc.seed},
		})
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, tc, err)
		}
		checkInvariants(t, kt, info, x, 1.1)
		for m, a := range kt.Factors {
			if min := matMin(a); min < 0 {
				t.Fatalf("case %d: factor %d min %g", i, m, min)
			}
		}
	}
}

// TestInvariantsSketchedDeterministic: the sampled solver is a function
// of (data, options, seed) — two identical runs agree bit for bit, and
// nesting or negative budgets are rejected.
func TestInvariantsSketchedDeterministic(t *testing.T) {
	tc := invariantCases(800, 1)[0]
	run := func() *KTensor {
		rng := rand.New(rand.NewSource(tc.seed))
		x := tensor.RandomDense(rng, tc.dims...)
		kt, _, err := Decompose(x, Options{
			Rank: tc.rank, MaxIters: tc.iters, Tol: 1e-15, Rng: rng,
			Solver: Sketched{Samples: 8, Seed: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return kt
	}
	a, b := run(), run()
	for m := range a.Factors {
		for i := range a.Factors[m].Data {
			if a.Factors[m].Data[i] != b.Factors[m].Data[i] {
				t.Fatalf("factor %d differs at %d between identical runs", m, i)
			}
		}
	}
	x := tensor.RandomDense(rand.New(rand.NewSource(1)), 4, 4, 4)
	if _, _, err := Decompose(x, Options{
		Rank: 2, MaxIters: 2, Rng: rand.New(rand.NewSource(1)),
		Solver: Sketched{Inner: Sketched{}},
	}); err == nil {
		t.Fatal("nested sketched solver accepted")
	}
	if _, _, err := Decompose(x, Options{
		Rank: 2, MaxIters: 2, Rng: rand.New(rand.NewSource(1)),
		Solver: Sketched{Samples: -1},
	}); err == nil {
		t.Fatal("negative sample budget accepted")
	}
}

package cpals

import (
	"math/rand"
	"testing"

	"twopcp/internal/mat"
	"twopcp/internal/par"
	"twopcp/internal/tensor"
)

// TestWorkspaceReuseIsBitNeutral pins the workspace contract: reusing one
// workspace across decompositions of different shapes and ranks yields
// exactly the results of fresh runs.
func TestWorkspaceReuseIsBitNeutral(t *testing.T) {
	ws := NewWorkspace()
	cases := []struct {
		dims []int
		rank int
	}{
		{[]int{12, 10, 8}, 4},
		{[]int{6, 6, 6}, 3},
		{[]int{12, 10, 8}, 4}, // repeat: buffers warm
		{[]int{5, 4, 3, 2}, 2},
	}
	for i, tc := range cases {
		x := tensor.RandomDense(rand.New(rand.NewSource(int64(100+i))), tc.dims...)
		mk := func(w *Workspace) (*KTensor, Info) {
			kt, info, err := Decompose(x, Options{
				Rank: tc.rank, MaxIters: 8, Tol: 1e-12,
				Rng: rand.New(rand.NewSource(int64(i))), Workspace: w,
			})
			if err != nil {
				t.Fatal(err)
			}
			return kt, info
		}
		fresh, freshInfo := mk(nil)
		reused, reusedInfo := mk(ws)
		for k := range fresh.Factors {
			if !fresh.Factors[k].Equal(reused.Factors[k]) {
				t.Fatalf("case %d: factor %d differs with workspace reuse", i, k)
			}
		}
		for j, f := range freshInfo.FitTrace {
			if reusedInfo.FitTrace[j] != f {
				t.Fatalf("case %d: FitTrace[%d] %v != %v", i, j, reusedInfo.FitTrace[j], f)
			}
		}
	}
}

func TestWorkspaceSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := tensor.RandomCOO(rng, 0.3, 8, 7, 6)
	ws := NewWorkspace()
	kt1, _, err := DecomposeSparse(x, Options{Rank: 3, MaxIters: 5, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	kt2, _, err := DecomposeSparse(x, Options{Rank: 3, MaxIters: 5, Rng: rand.New(rand.NewSource(1)), Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	for k := range kt1.Factors {
		if !kt1.Factors[k].Equal(kt2.Factors[k]) {
			t.Fatalf("sparse factor %d differs with workspace", k)
		}
	}
}

// TestDecomposeKernelWorkersBitExact sweeps the kernel worker grid over a
// full dense CP-ALS run.
func TestDecomposeKernelWorkersBitExact(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(42)), 24, 20, 18)
	run := func(w int) (*KTensor, Info) {
		defer par.SetWorkers(par.SetWorkers(w))
		kt, info, err := Decompose(x, Options{
			Rank: 16, MaxIters: 4, Rng: rand.New(rand.NewSource(2)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return kt, info
	}
	serialKT, serialInfo := run(1)
	for _, w := range []int{2, 7} {
		kt, info := run(w)
		for k := range kt.Factors {
			if !kt.Factors[k].Equal(serialKT.Factors[k]) {
				t.Fatalf("workers=%d: factor %d differs from serial", w, k)
			}
		}
		for j, f := range serialInfo.FitTrace {
			if info.FitTrace[j] != f {
				t.Fatalf("workers=%d: FitTrace[%d] differs", w, j)
			}
		}
	}
}

// BenchmarkALSSweep measures full CP-ALS sweeps on a 64³ rank-16 block —
// the Phase-1 inner loop — with and without workspace reuse, plus the
// nonnegative HALS solver on the workspace path (benchgate holds its
// overhead over the unconstrained workspace sweep to ≤ 2×). The recorded
// baselines live in BENCH_kernels.json at the repo root.
func BenchmarkALSSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandomDense(rng, 64, 64, 64)
	init := []*mat.Matrix{
		mat.Random(64, 16, rng), mat.Random(64, 16, rng), mat.Random(64, 16, rng),
	}
	defer par.SetWorkers(par.SetWorkers(1))
	variants := []struct {
		name   string
		withWS bool
		solver Solver
	}{
		{"fresh", false, nil},
		{"workspace", true, nil},
		{"nonneg", true, Nonnegative{}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var ws *Workspace
			if v.withWS {
				ws = NewWorkspace()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := Decompose(x, Options{
					Rank: 16, MaxIters: 2, Tol: 1e-16, Init: init, Workspace: ws, Solver: v.solver,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Package cpals implements in-memory CP (CANDECOMP/PARAFAC) decomposition
// via Alternating Least Squares for dense and sparse tensors, together with
// the Kruskal-tensor (KTensor) representation of the result.
//
// This is the Phase-1 per-block solver of 2PCP and also serves as the
// "Naive CP" baseline of the paper's Table II. The implementation follows
// the reference cp_als of the MATLAB Tensor Toolbox: factor columns are
// normalized after every mode update with the norms folded into the weight
// vector λ, and the fit 1 − ‖X−X̂‖/‖X‖ is evaluated once per sweep without
// materializing X̂.
package cpals

import (
	"fmt"
	"math"

	"twopcp/internal/mat"
	"twopcp/internal/tensor"
)

// KTensor is a Kruskal tensor: a weighted sum of F rank-one tensors.
// X̂(i_1..i_N) = Σ_f λ_f · Π_k Factors[k][i_k, f].
type KTensor struct {
	Lambda  []float64     // F weights
	Factors []*mat.Matrix // Factors[k] is Dims[k]×F with unit-norm columns
}

// NewKTensor builds a KTensor from factors with all weights 1.
func NewKTensor(factors []*mat.Matrix) *KTensor {
	if len(factors) == 0 {
		panic("cpals: NewKTensor with no factors")
	}
	f := factors[0].Cols
	lambda := make([]float64, f)
	for i := range lambda {
		lambda[i] = 1
	}
	for k, m := range factors {
		if m.Cols != f {
			panic(fmt.Sprintf("cpals: factor %d has %d cols, want %d", k, m.Cols, f))
		}
	}
	return &KTensor{Lambda: lambda, Factors: factors}
}

// Rank returns the number of rank-one components F.
func (k *KTensor) Rank() int { return len(k.Lambda) }

// NModes returns the number of modes.
func (k *KTensor) NModes() int { return len(k.Factors) }

// Dims returns the mode sizes implied by the factor row counts.
func (k *KTensor) Dims() []int {
	d := make([]int, len(k.Factors))
	for i, f := range k.Factors {
		d[i] = f.Rows
	}
	return d
}

// Clone returns a deep copy.
func (k *KTensor) Clone() *KTensor {
	lambda := append([]float64(nil), k.Lambda...)
	factors := make([]*mat.Matrix, len(k.Factors))
	for i, f := range k.Factors {
		factors[i] = f.Clone()
	}
	return &KTensor{Lambda: lambda, Factors: factors}
}

// At evaluates the model at one multi-index.
func (k *KTensor) At(idx ...int) float64 {
	if len(idx) != len(k.Factors) {
		panic(fmt.Sprintf("cpals: At: %d indexes for %d modes", len(idx), len(k.Factors)))
	}
	var s float64
	for f, l := range k.Lambda {
		p := l
		for m, i := range idx {
			p *= k.Factors[m].At(i, f)
		}
		s += p
	}
	return s
}

// Full materializes the model as a dense tensor.
func (k *KTensor) Full() *tensor.Dense {
	dims := k.Dims()
	out := tensor.NewDense(dims...)
	idx := make([]int, len(dims))
	out.Fill(func(i []int) float64 {
		copy(idx, i)
		return k.At(idx...)
	})
	return out
}

// Norm returns ‖X̂‖ using the Kruskal identity
// ‖X̂‖² = λᵀ (⊛_k A(k)ᵀA(k)) λ, clamped at 0 against round-off.
func (k *KTensor) Norm() float64 {
	f := k.Rank()
	had := mat.New(f, f)
	had.Fill(1)
	for _, a := range k.Factors {
		had.HadamardInPlace(mat.Gram(a))
	}
	v := mat.QuadForm(had, k.Lambda, k.Lambda)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Normalize rescales every factor to unit column norms, folding the norms
// into λ, and returns k for chaining.
func (k *KTensor) Normalize() *KTensor {
	for _, a := range k.Factors {
		norms := a.NormalizeColumns(1e-300)
		for f := range k.Lambda {
			k.Lambda[f] *= norms[f]
		}
	}
	return k
}

// InnerDense returns ⟨X, X̂⟩ for a dense X with the same dims.
func (k *KTensor) InnerDense(x *tensor.Dense) float64 {
	m := tensor.MTTKRP(x, k.Factors, 0)
	return innerFromMTTKRP(m, k.Factors[0], k.Lambda)
}

// InnerSparse returns ⟨X, X̂⟩ for a sparse X with the same dims.
func (k *KTensor) InnerSparse(x *tensor.COO) float64 {
	m := tensor.MTTKRPSparse(x, k.Factors, 0)
	return innerFromMTTKRP(m, k.Factors[0], k.Lambda)
}

// innerFromMTTKRP folds a mode-n MTTKRP result with the corresponding
// factor and λ: ⟨X, X̂⟩ = Σ_f λ_f Σ_i M[i,f]·A[i,f].
func innerFromMTTKRP(m, a *mat.Matrix, lambda []float64) float64 {
	var s float64
	for f, l := range lambda {
		var c float64
		for i := 0; i < m.Rows; i++ {
			c += m.At(i, f) * a.At(i, f)
		}
		s += l * c
	}
	return s
}

// Fit returns 1 − ‖X − X̂‖/‖X‖ for dense X (1 when ‖X‖ = 0).
func (k *KTensor) Fit(x *tensor.Dense) float64 {
	return fitFromParts(x.Norm(), k.Norm(), k.InnerDense(x))
}

// FitSparse returns 1 − ‖X − X̂‖/‖X‖ for sparse X.
func (k *KTensor) FitSparse(x *tensor.COO) float64 {
	return fitFromParts(x.Norm(), k.Norm(), k.InnerSparse(x))
}

// fitFromParts assembles the fit from ‖X‖, ‖X̂‖ and ⟨X,X̂⟩ using
// ‖X−X̂‖² = ‖X‖² + ‖X̂‖² − 2⟨X,X̂⟩ (clamped at 0 against round-off).
func fitFromParts(normX, normModel, inner float64) float64 {
	if normX == 0 {
		return 1
	}
	res2 := normX*normX + normModel*normModel - 2*inner
	if res2 < 0 {
		res2 = 0
	}
	return 1 - math.Sqrt(res2)/normX
}

package jobs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"twopcp"
	"twopcp/internal/cli"
)

// writeFactorForTest renders a factor with the shared CSV writer so test
// comparisons use the exact bytes the service exports.
func writeFactorForTest(path string, m *twopcp.Matrix) error {
	return cli.WriteFactorCSV(path, m)
}

// writeTensor writes a small low-rank tiled tensor for job tests.
func writeTensor(t *testing.T, path string, seed int64, dims ...int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*twopcp.Matrix, len(dims))
	for k, d := range dims {
		m := &twopcp.Matrix{Rows: d, Cols: 2, Data: make([]float64, d*2)}
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		factors[k] = m
	}
	if err := twopcp.SaveTiled(path, twopcp.NewKTensor(factors).Full(), []int{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
}

// newTestManager opens a store+manager pair rooted in the test tempdir.
func newTestManager(t *testing.T, root string, workers int) (*Store, *Manager) {
	t.Helper()
	store, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(store, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return store, m
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, m *Manager, id string, want ...State) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range want {
			if job.State == s {
				return job
			}
		}
		if job.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want one of %v", id, job.State, job.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want one of %v", id, job.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStoreRoundtrip(t *testing.T) {
	root := filepath.Join(t.TempDir(), "data")
	store, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(100, 0).UTC()
	j1, err := store.Create(Spec{Input: "/tmp/x.tptl", Rank: 3}, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != "j000001" || j1.State != StateQueued {
		t.Fatalf("first job = %q state %q", j1.ID, j1.State)
	}
	j2, err := store.Create(Spec{Rank: 2}, strings.NewReader("TPTLtensorbytes"), now)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Spec.Input != store.InputPath(j2.ID) {
		t.Fatalf("upload input = %q, want %q", j2.Spec.Input, store.InputPath(j2.ID))
	}
	data, err := os.ReadFile(store.InputPath(j2.ID))
	if err != nil || string(data) != "TPTLtensorbytes" {
		t.Fatalf("uploaded bytes = %q, %v", data, err)
	}

	j1.State = StateDone
	j1.Result = &Summary{Fit: 0.5, FitTrace: []float64{0.1, 0.5}}
	if err := store.Put(j1); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Result == nil || got.Result.Fit != 0.5 {
		t.Fatalf("roundtripped job = %+v", got)
	}

	// Reopening continues ID allocation past persisted jobs.
	store2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := store2.Create(Spec{Input: "/tmp/x.tptl", Rank: 1}, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "j000003" {
		t.Fatalf("post-reopen ID = %q, want j000003", j3.ID)
	}
	all, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].ID != "j000001" || all[2].ID != "j000003" {
		t.Fatalf("Load = %d jobs (%v...)", len(all), all[0].ID)
	}
}

func TestManagerRunsJobToDone(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 1, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 2)
	defer m.Drain()

	job, err := m.Submit(Spec{Input: tensor, Rank: 2, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, job.ID, StateDone)
	if done.Result == nil || done.Result.Fit < 0.9 {
		t.Fatalf("result = %+v", done.Result)
	}
	if done.Modes != 3 || len(done.Dims) != 3 {
		t.Fatalf("dims = %v modes = %d", done.Dims, done.Modes)
	}
	// The daemon's factors must be byte-identical to a local run with the
	// same configuration — the service adds no numerics of its own. Build
	// the local options through the same normalized spec the job ran.
	spec := done.Spec
	opts, err := spec.options("", "", false)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := twopcp.DecomposeFile(tensor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit != done.Result.Fit {
		t.Fatalf("service fit %v != local fit %v", done.Result.Fit, res.Fit)
	}
	for mode := 0; mode < 3; mode++ {
		got, err := os.ReadFile(m.Store().FactorPath(job.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		want := factorCSV(t, res.Model.Factors[mode])
		if !bytes.Equal(got, want) {
			t.Fatalf("mode-%d factors differ between service job and local run", mode)
		}
	}
}

// factorCSV renders a factor with the shared CSV writer for comparison.
func factorCSV(t *testing.T, m *twopcp.Matrix) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.csv")
	if err := writeFactorForTest(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestManagerValidatesSubmissions(t *testing.T) {
	dir := t.TempDir()
	_, m := newTestManager(t, filepath.Join(dir, "data"), 1)
	defer m.Drain()

	if _, err := m.Submit(Spec{Rank: 2}, nil); err == nil {
		t.Fatal("missing input accepted")
	}
	if _, err := m.Submit(Spec{Input: filepath.Join(dir, "nope"), Rank: 2}, nil); err == nil {
		t.Fatal("unreadable input accepted")
	}
	if _, err := m.Submit(Spec{Input: dir, Rank: 0}, nil); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := m.Submit(Spec{Input: dir, Rank: 2, Schedule: "XX"}, nil); err == nil {
		t.Fatal("bad schedule accepted")
	}
}

// longSpec is a workload big enough to cancel or drain mid-run, with
// per-step checkpoints so interruption points are plentiful.
func longSpec(tensor string) Spec {
	return Spec{Input: tensor, Rank: 3, Parts: 3, BufferFraction: 0.5,
		MaxIters: 500, Tol: -1, Seed: 11, CheckpointEverySteps: 1}
}

// waitCheckpoint polls until the job has a durable run checkpoint.
func waitCheckpoint(t *testing.T, store *Store, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !store.HasCheckpoint(id) {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint for %s within 60s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestManagerCancelResume(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 11, 30, 30, 30)

	// Uninterrupted reference through a separate manager/store.
	refStore, refM := newTestManager(t, filepath.Join(dir, "ref"), 1)
	refJob, err := refM.Submit(longSpec(tensor), nil)
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitState(t, refM, refJob.ID, StateDone)
	refM.Drain()

	store, m := newTestManager(t, filepath.Join(dir, "data"), 1)
	defer m.Drain()
	job, err := m.Submit(longSpec(tensor), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, StateRunning)
	waitCheckpoint(t, store, job.ID)
	if err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	canceled := waitState(t, m, job.ID, StateCanceled)
	if canceled.Error == "" {
		t.Fatal("canceled job has no error note")
	}
	if !store.HasCheckpoint(job.ID) {
		t.Fatal("canceled job lost its checkpoint")
	}
	// Cancel of a terminal job must be rejected.
	if err := m.Cancel(job.ID); err == nil {
		t.Fatal("second cancel accepted")
	}

	if _, err := m.Resume(job.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, job.ID, StateDone)

	// The canceled-and-resumed job must match the uninterrupted reference
	// bit for bit: same fit, same trace, same factor bytes.
	if done.Result.Fit != refDone.Result.Fit {
		t.Fatalf("resumed fit %v != reference fit %v", done.Result.Fit, refDone.Result.Fit)
	}
	if len(done.Result.FitTrace) != len(refDone.Result.FitTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(done.Result.FitTrace), len(refDone.Result.FitTrace))
	}
	for i := range done.Result.FitTrace {
		if done.Result.FitTrace[i] != refDone.Result.FitTrace[i] {
			t.Fatalf("fit trace diverges at %d", i)
		}
	}
	for mode := 0; mode < 3; mode++ {
		a, err := os.ReadFile(store.FactorPath(job.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(refStore.FactorPath(refJob.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("mode-%d factors differ between resumed and reference job", mode)
		}
	}
}

func TestManagerDrainAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 11, 30, 30, 30)

	refStore, refM := newTestManager(t, filepath.Join(dir, "ref"), 1)
	refJob, err := refM.Submit(longSpec(tensor), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, refM, refJob.ID, StateDone)
	refM.Drain()

	root := filepath.Join(dir, "data")
	store, m := newTestManager(t, root, 1)
	job, err := m.Submit(longSpec(tensor), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID, StateRunning)
	waitCheckpoint(t, store, job.ID)
	m.Drain()

	interrupted, err := m.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.State != StateInterrupted {
		t.Fatalf("post-drain state = %q, want interrupted", interrupted.State)
	}
	if _, err := m.Submit(longSpec(tensor), nil); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}

	// "Restart the daemon": a fresh manager over the same store requeues
	// and resumes the interrupted job automatically.
	store2, m2 := newTestManager(t, root, 1)
	defer m2.Drain()
	done := waitState(t, m2, job.ID, StateDone)

	for mode := 0; mode < 3; mode++ {
		a, err := os.ReadFile(store2.FactorPath(job.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(refStore.FactorPath(refJob.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("mode-%d factors differ between drained+restarted and reference job", mode)
		}
	}
	if done.Result.Fit != refDoneFit(t, refM, refJob.ID) {
		t.Fatal("fit differs between drained+restarted and reference job")
	}
}

// refDoneFit fetches a finished job's fit.
func refDoneFit(t *testing.T, m *Manager, id string) float64 {
	t.Helper()
	job, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return job.Result.Fit
}

func TestManagerWatchStreamsEvents(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 3, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 1)
	defer m.Drain()

	job, err := m.Submit(Spec{Input: tensor, Rank: 2, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(job.ID, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var names []string
	deadline := time.After(60 * time.Second)
	for {
		var terminal bool
		select {
		case e := <-ch:
			names = append(names, e.Name)
			if e.Name == "job.state" {
				j, err := m.Get(job.ID)
				if err != nil {
					t.Fatal(err)
				}
				terminal = j.State.Terminal()
			}
		case <-deadline:
			t.Fatalf("no terminal event within 60s (saw %d events)", len(names))
		}
		if terminal {
			break
		}
	}
	var sawState, sawRun bool
	for _, n := range names {
		if n == "job.state" {
			sawState = true
		} else {
			sawRun = true
		}
	}
	if !sawState || !sawRun {
		t.Fatalf("event stream incomplete: state=%v run=%v (%v)", sawState, sawRun, names[:min(len(names), 10)])
	}
	if _, _, err := m.Watch("j999999", 1); err != ErrNotFound {
		t.Fatalf("watch unknown job: %v, want ErrNotFound", err)
	}
}

// TestManagerConcurrentSubmissions exercises the full lifecycle under
// concurrency (run with -race): many goroutines submit at once, all jobs
// finish, and each job's record is coherent.
func TestManagerConcurrentSubmissions(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 5, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 4)
	defer m.Drain()

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := m.Submit(Spec{Input: tensor, Rank: 2, Seed: int64(i + 1)}, nil)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s", id)
		}
		seen[id] = true
		job := waitState(t, m, id, StateDone)
		if job.Result == nil || job.Result.Fit < 0.9 {
			t.Fatalf("job %s result = %+v", id, job.Result)
		}
	}
	if got := len(m.List()); got != n {
		t.Fatalf("List() = %d jobs, want %d", got, n)
	}
}

func TestStateTerminal(t *testing.T) {
	for s, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCanceled: true,
		StateInterrupted: true, StateQuarantined: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%q.Terminal() = %v, want %v", s, !want, want)
		}
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	var s Spec
	s.normalize()
	want := fmt.Sprintf("%+v", Spec{Parts: 2, Schedule: "HO", Replacement: "FOR",
		BufferFraction: 1.0, MaxIters: 100, Tol: 1e-2, Constraint: "none",
		Accelerator: "none", Seed: 1})
	if got := fmt.Sprintf("%+v", s); got != want {
		t.Fatalf("normalized spec = %s, want %s", got, want)
	}
}

package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"twopcp/internal/runstate"
)

// Store is the durable side of the job queue: one directory per job under
// root, holding the job record, the run's checkpoint directory, the
// uploaded input (when the submission carried one) and the exported
// factor CSVs.
//
// Layout:
//
//	root/
//	  j000001/
//	    job.json            — the Job record (atomic install + fsync)
//	    ckpt/               — twopcp run checkpoints (runstate format)
//	    store/              — out-of-core data units (Spec.OutOfCore)
//	    input.tensor        — uploaded tensor (upload submissions only)
//	    factors-mode<i>.csv — exported factors (StateDone only)
//
// Records are installed with runstate.WriteFileAtomic — write to a temp
// file, fsync, rename, fsync the directory — so a crash leaves either the
// old record or the new one, never a torn file. The checkpoint directory
// gives each job the library's full crash-recovery story: a daemon
// restart resumes the job from its last checkpoint bit-exactly.
type Store struct {
	root string

	mu   sync.Mutex
	next int // next job number to allocate
}

// recordName is the per-job record filename.
const recordName = "job.json"

// inputName is the per-job filename for uploaded tensors.
const inputName = "input.tensor"

// OpenStore opens (creating if needed) a job store rooted at dir and
// scans existing job directories so newly allocated IDs never collide
// with persisted ones.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{root: dir, next: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parseID(e.Name()); ok && n >= s.next {
			s.next = n + 1
		}
	}
	return s, nil
}

// parseID extracts the job number from an ID like "j000042".
func parseID(id string) (int, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Dir returns a job's directory.
func (s *Store) Dir(id string) string { return filepath.Join(s.root, id) }

// CheckpointDir returns a job's checkpoint directory.
func (s *Store) CheckpointDir(id string) string { return filepath.Join(s.Dir(id), "ckpt") }

// StoreDir returns a job's out-of-core data-unit directory.
func (s *Store) StoreDir(id string) string { return filepath.Join(s.Dir(id), "store") }

// InputPath returns where a job's uploaded tensor lives.
func (s *Store) InputPath(id string) string { return filepath.Join(s.Dir(id), inputName) }

// FactorPath returns where a job's mode-m factor CSV lives.
func (s *Store) FactorPath(id string, mode int) string {
	return filepath.Join(s.Dir(id), fmt.Sprintf("factors-mode%d.csv", mode))
}

// SnapshotPath returns where a done job's factor snapshot (the mmap-able
// query-serving file) lives.
func (s *Store) SnapshotPath(id string) string {
	return filepath.Join(s.Dir(id), "factors.snap")
}

// HasCheckpoint reports whether the job's checkpoint directory holds a
// resumable run manifest — the resume-or-fresh predicate the manager
// evaluates before every run.
func (s *Store) HasCheckpoint(id string) bool {
	return runstate.HasManifest(s.CheckpointDir(id))
}

// Create allocates a job directory for spec and persists the initial
// queued record. When input is non-nil its bytes are copied into the job
// directory first and Spec.Input is pointed at the copy, so the record
// never references an input that is not durably in place.
func (s *Store) Create(spec Spec, input io.Reader, now time.Time) (*Job, error) {
	s.mu.Lock()
	id := fmt.Sprintf("j%06d", s.next)
	s.next++
	s.mu.Unlock()

	if err := os.MkdirAll(s.CheckpointDir(id), 0o755); err != nil {
		return nil, err
	}
	if input != nil {
		path := s.InputPath(id)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if _, err := io.Copy(f, input); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobs: store upload for %s: %w", id, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		spec.Input = path
	}
	job := &Job{ID: id, Spec: spec, State: StateQueued, Created: now}
	if err := s.Put(job); err != nil {
		return nil, err
	}
	return job, nil
}

// Put durably installs the job record (atomic rename + fsync, the same
// guarantees as run manifests).
func (s *Store) Put(job *Job) error {
	data, err := json.MarshalIndent(job, "", "  ")
	if err != nil {
		return err
	}
	return runstate.WriteFileAtomic(s.Dir(job.ID), recordName, append(data, '\n'))
}

// Get loads one job record from disk.
func (s *Store) Get(id string) (*Job, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir(id), recordName))
	if err != nil {
		return nil, err
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, fmt.Errorf("jobs: corrupt record for %s: %w", id, err)
	}
	return &job, nil
}

// Load reads every job record under the root, sorted by ID. Directories
// without a readable record are skipped (a crash between MkdirAll and the
// first Put leaves one; it holds no work worth recovering).
func (s *Store) Load() ([]*Job, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var jobsList []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := parseID(e.Name()); !ok {
			continue
		}
		job, err := s.Get(e.Name())
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		jobsList = append(jobsList, job)
	}
	sort.Slice(jobsList, func(i, j int) bool { return jobsList[i].ID < jobsList[j].ID })
	return jobsList, nil
}

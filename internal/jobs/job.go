// Package jobs is the decomposition-as-a-service layer: a durable job
// store, a worker-pool manager that runs submitted decompositions through
// the same twopcp entry points as the CLI, and the HTTP/JSON API the
// twopcpd daemon serves.
//
// The design inherits every contract the library already makes and adds
// none of its own numerics:
//
//   - Durability: each job owns a directory with an fsync'd job record
//     (written with the same atomic install as run manifests) and its own
//     checkpoint directory, so a daemon crash or drain loses at most the
//     work since the last checkpoint and a restarted daemon resumes
//     in-flight jobs bit-exactly.
//   - Determinism: jobs run through twopcp.DecomposeFile with options
//     built from the submitted Spec, so a job's factors are bit-identical
//     to the same file decomposed locally with the same flags.
//   - Graceful drain: Manager.Drain closes every running job's stop
//     channel, exactly like the CLI's SIGTERM handler; the jobs land in
//     StateInterrupted with a fresh checkpoint and are requeued on the
//     next daemon start.
//   - Telemetry: each job's event stream feeds a per-job fan-out that the
//     SSE endpoint subscribes to; publishing never blocks the run.
package jobs

import (
	"fmt"
	"time"

	"twopcp"
	"twopcp/internal/buffer"
	"twopcp/internal/schedule"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | canceled | interrupted | quarantined
//
// interrupted (drain) and running (daemon crash) jobs are requeued on
// daemon start; canceled, failed and quarantined jobs stay put until an
// explicit resume request requeues them.
type State string

// The job lifecycle states.
const (
	// StateQueued: accepted and waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is decomposing the input right now.
	StateRunning State = "running"
	// StateDone: finished; result summary and factor CSVs are available.
	StateDone State = "done"
	// StateFailed: the run returned a hard error (recorded in Job.Error).
	StateFailed State = "failed"
	// StateCanceled: stopped by an explicit cancel request after writing a
	// checkpoint; a resume request picks up where it left off.
	StateCanceled State = "canceled"
	// StateInterrupted: stopped by a daemon drain (SIGTERM) after writing
	// a checkpoint — the service analog of CLI exit code 3. Requeued
	// automatically on the next daemon start.
	StateInterrupted State = "interrupted"
	// StateQuarantined: Phase-1 blocks exhausted the retry budget on a
	// permanent fault — the service analog of CLI exit code 4. The rest of
	// the run is checkpointed; a resume request recomputes only the
	// quarantined blocks.
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state is a resting state (no worker owns
// the job and none will without an external trigger).
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateInterrupted, StateQuarantined:
		return true
	}
	return false
}

// Spec is a decomposition request: the tensor input plus the same knobs
// the twopcp CLI exposes, JSON-encoded in submit requests and persisted
// verbatim in the job record. The zero value of every optional field
// selects the CLI's default (applied by normalize, so the persisted spec
// records the effective configuration).
type Spec struct {
	// Input is the tensor file path on the daemon host (.tpdn, .tpsp or
	// .tptl, detected by magic). Upload submissions leave it empty; the
	// store fills it with the job-local copy.
	Input string `json:"input,omitempty"`
	// Rank is the decomposition rank F (required, > 0).
	Rank int `json:"rank"`
	// Parts is the partition count per mode, the paper's K (default 2).
	Parts int `json:"parts,omitempty"`
	// Schedule is the Phase-2 update schedule: MC, FO, ZO or HO
	// (default HO).
	Schedule string `json:"schedule,omitempty"`
	// Replacement is the buffer replacement policy: LRU, MRU or FOR
	// (default FOR).
	Replacement string `json:"replacement,omitempty"`
	// BufferFraction sizes the Phase-2 buffer as a fraction of the total
	// space requirement (default 1.0).
	BufferFraction float64 `json:"buffer,omitempty"`
	// MaxIters caps Phase-2 virtual iterations (default 100).
	MaxIters int `json:"iters,omitempty"`
	// Tol is the fit-improvement stopping threshold (default 1e-2).
	Tol float64 `json:"tol,omitempty"`
	// Workers is the Phase-1 parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// KernelWorkers is the intra-kernel parallelism (0 = GOMAXPROCS).
	KernelWorkers int `json:"kernel_workers,omitempty"`
	// PrefetchDepth is the Phase-2 prefetch depth in schedule steps.
	PrefetchDepth int `json:"prefetch,omitempty"`
	// IOWorkers is the Phase-2 async I/O worker count (0 = auto).
	IOWorkers int `json:"io_workers,omitempty"`
	// OutOfCore keeps Phase-2 data units on disk in the job directory
	// instead of in memory.
	OutOfCore bool `json:"out_of_core,omitempty"`
	// Constraint selects the row-update solver: none, ridge or nonneg.
	Constraint string `json:"constraint,omitempty"`
	// Lambda is the ridge damping weight (required > 0 with ridge).
	Lambda float64 `json:"lambda,omitempty"`
	// Accelerator selects Phase-0 acceleration: none, tucker or sketched.
	Accelerator string `json:"accelerator,omitempty"`
	// Phase0Rank is the per-mode Tucker basis rank (0 = Rank).
	Phase0Rank int `json:"phase0_rank,omitempty"`
	// SketchOversample adds Gaussian probe columns to the range finder.
	SketchOversample int `json:"sketch_oversample,omitempty"`
	// Seed is the random seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// CheckpointEverySteps is the Phase-2 checkpoint cadence in schedule
	// steps (0 = once per scheduling cycle).
	CheckpointEverySteps int `json:"checkpoint_steps,omitempty"`
	// MaxRetries is the transient-fault retry budget per operation
	// (0 = resilience layer off).
	MaxRetries int `json:"retry,omitempty"`
	// OpTimeoutMS is the per-operation store deadline in milliseconds
	// (0 = none).
	OpTimeoutMS int64 `json:"op_timeout_ms,omitempty"`
}

// normalize fills defaulted fields in place so the persisted record shows
// the effective configuration — and so the checkpoint option fingerprint
// is stable however sparsely the submitter wrote the spec.
func (s *Spec) normalize() {
	if s.Parts == 0 {
		s.Parts = 2
	}
	if s.Schedule == "" {
		s.Schedule = "HO"
	}
	if s.Replacement == "" {
		s.Replacement = "FOR"
	}
	if s.BufferFraction == 0 {
		s.BufferFraction = 1.0
	}
	if s.MaxIters == 0 {
		s.MaxIters = 100
	}
	if s.Tol == 0 {
		s.Tol = 1e-2
	}
	if s.Constraint == "" {
		s.Constraint = "none"
	}
	if s.Accelerator == "" {
		s.Accelerator = "none"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// options translates the spec into twopcp.Options, with the job's
// checkpoint (and optional out-of-core store) directories wired in. It
// is the single point where a service job's configuration is assembled,
// which is what makes daemon runs bit-identical to CLI runs: same parser
// for every enum, same defaults, same Options fields.
func (s *Spec) options(ckptDir, storeDir string, resume bool) (twopcp.Options, error) {
	var opts twopcp.Options
	if s.Rank <= 0 {
		return opts, fmt.Errorf("jobs: rank must be > 0 (got %d)", s.Rank)
	}
	kind, err := schedule.ParseKind(s.Schedule)
	if err != nil {
		return opts, err
	}
	pol, err := buffer.ParsePolicy(s.Replacement)
	if err != nil {
		return opts, err
	}
	constraint, err := twopcp.ParseConstraint(s.Constraint)
	if err != nil {
		return opts, err
	}
	accel, err := twopcp.ParseAccelerator(s.Accelerator)
	if err != nil {
		return opts, err
	}
	opts = twopcp.Options{
		Rank:                 s.Rank,
		Partitions:           []int{s.Parts},
		Schedule:             kind,
		Replacement:          pol,
		BufferFraction:       s.BufferFraction,
		MaxIters:             s.MaxIters,
		Tol:                  s.Tol,
		Workers:              s.Workers,
		KernelWorkers:        s.KernelWorkers,
		PrefetchDepth:        s.PrefetchDepth,
		IOWorkers:            s.IOWorkers,
		Constraint:           constraint,
		Lambda:               s.Lambda,
		Accelerator:          accel,
		Phase0Rank:           s.Phase0Rank,
		SketchOversample:     s.SketchOversample,
		Seed:                 s.Seed,
		Checkpoint:           ckptDir,
		Resume:               resume,
		CheckpointEverySteps: s.CheckpointEverySteps,
		Retry: twopcp.RetryPolicy{
			MaxRetries: s.MaxRetries,
			OpTimeout:  time.Duration(s.OpTimeoutMS) * time.Millisecond,
			Seed:       s.Seed,
		},
	}
	if s.OutOfCore {
		opts.StoreDir = storeDir
	}
	return opts, nil
}

// Summary is a job's numerical outcome: the same deterministic fields the
// CLI's -json output records, minus the factors themselves (those are
// downloaded as CSV). The integration tests DeepEqual this against an
// uninterrupted local run after stripping wall-clock fields.
type Summary struct {
	// Fit is 1 − ‖X−X̂‖/‖X‖ against the input tensor.
	Fit float64 `json:"fit"`
	// VirtualIters counts Phase-2 virtual iterations; Converged reports
	// whether Tol fired before MaxIters.
	VirtualIters int  `json:"virtual_iters"`
	Converged    bool `json:"converged"`
	// FitTrace is the Phase-2 surrogate-fit trajectory.
	FitTrace []float64 `json:"fit_trace"`
	// RunStats aggregates the run's operational statistics.
	RunStats twopcp.RunStats `json:"run_stats"`
}

// Job is one decomposition job: the submitted spec plus everything the
// service learned about it. The whole struct is the durable record
// (persisted as JSON on every state change) and the API's status
// representation — one shape, no translation layer to drift.
type Job struct {
	// ID is the store-assigned job identifier.
	ID string `json:"id"`
	// Spec is the normalized decomposition request.
	Spec Spec `json:"spec"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Error records why the job failed, was interrupted or quarantined.
	Error string `json:"error,omitempty"`
	// Created, Started and Finished stamp the lifecycle transitions
	// (zero until the transition happens). A requeued job keeps Created
	// and gets fresh Started/Finished stamps.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Dims is the input tensor's mode sizes, learned when the run starts.
	Dims []int `json:"dims,omitempty"`
	// Modes is the number of factor matrices available for download once
	// the job is done (len(Dims), recorded separately so clients need no
	// inference).
	Modes int `json:"modes,omitempty"`
	// Result is the numerical outcome, set only in StateDone.
	Result *Summary `json:"result,omitempty"`
}

// clone returns a deep-enough copy for handing outside the manager's
// mutex: value copy plus fresh Dims/FitTrace backing arrays.
func (j *Job) clone() *Job {
	c := *j
	if j.Dims != nil {
		c.Dims = append([]int(nil), j.Dims...)
	}
	if j.Result != nil {
		r := *j.Result
		r.FitTrace = append([]float64(nil), j.Result.FitTrace...)
		c.Result = &r
	}
	return &c
}

package jobs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEventsTerminalRace pins handleEvents' subscribe-before-snapshot
// ordering. The handler must subscribe to the job's fan-out BEFORE
// snapshotting its state: a terminal transition landing in between is
// then caught by the (later) snapshot. The pre-fix handler snapshotted
// first, so a job that went terminal inside the window published its
// final job.state event to a fan-out with no subscribers and the stream
// looped on 15-second keepalives forever.
//
// testHookEventsSubscribed sits exactly in that window, so the test
// drives the transition deterministically: against the pre-fix ordering
// (where the hook's position corresponds to after-Get/before-Watch) this
// request never terminates and the read below times out.
func TestEventsTerminalRace(t *testing.T) {
	dir := t.TempDir()
	big := filepath.Join(dir, "big.tptl")
	writeTensor(t, big, 31, 30, 30, 30)
	small := filepath.Join(dir, "x.tptl")
	writeTensor(t, small, 32, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 1)
	defer m.Drain()

	// Occupy the single worker so the second job provably stays queued —
	// a queued job's Cancel transitions it terminal synchronously.
	blocker, err := m.Submit(longSpec(big), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(Spec{Input: small, Rank: 2, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}

	testHookEventsSubscribed = func() {
		if err := m.Cancel(queued.ID); err != nil {
			t.Errorf("cancel inside the subscribe window: %v", err)
		}
	}
	defer func() { testHookEventsSubscribed = func() {} }()

	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	// Shorter than the handler's 15s keepalive tick: a handler that
	// misses the terminal transition and falls into the keepalive loop
	// fails this read instead of hanging the test.
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("SSE stream did not terminate after an in-window terminal transition: %v", err)
	}
	if !strings.Contains(string(body), `"canceled"`) {
		t.Fatalf("terminal stream = %q, want a canceled job.state event", body)
	}

	if err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	waitState(t, m, blocker.ID, StateCanceled)
}

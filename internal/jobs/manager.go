package jobs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"time"

	"twopcp"
	"twopcp/internal/cli"
	"twopcp/internal/factorsnap"
	"twopcp/internal/obs"
	"twopcp/internal/par"
	"twopcp/internal/runstate"
	"twopcp/internal/serve"
)

// ErrDraining is returned by Submit once the manager has begun (or
// finished) draining — the daemon is shutting down and accepts no new
// work.
var ErrDraining = errors.New("jobs: manager is draining")

// ErrNotFound is returned for operations on unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// queueCap bounds the submission queue; Submit fails fast when the
// backlog is this deep rather than queueing without bound.
const queueCap = 1024

// Manager owns the job lifecycle: it recovers persisted jobs on startup,
// runs queued jobs on a fixed worker pool, streams their telemetry to
// per-job fan-outs, and drains gracefully. All state transitions are
// persisted through the Store before they are observable via Get/List,
// so a crash at any point recovers to a coherent queue.
type Manager struct {
	store *Store
	reg   *obs.Registry
	clock func() time.Time

	mu      sync.Mutex
	jobs    map[string]*Job
	fans    map[string]*obs.FanOut
	running map[string]*runHandle
	models  map[string]*serve.Model // lazily opened query models for done jobs
	order   []string                // job IDs in creation order, for List

	queue    chan string
	drainC   chan struct{}
	draining bool
	wg       sync.WaitGroup

	jobsRunning *obs.Gauge
}

// runHandle is the manager's view of one in-flight run.
type runHandle struct {
	stop     chan struct{}
	stopOnce sync.Once
	canceled bool // set before stop closes when the stop is a user cancel
}

// Config configures a Manager.
type Config struct {
	// Workers is the worker-pool size: how many jobs decompose
	// concurrently (0 = par.Workers(), the kernel-parallelism default).
	Workers int
	// Registry receives daemon-level metrics (job counters plus every
	// running job's run metrics). Nil disables metrics.
	Registry *obs.Registry
}

// NewManager opens a manager over store: it loads every persisted job,
// requeues the ones a previous daemon left unfinished (queued, running —
// i.e. crashed mid-run — and interrupted — i.e. drained), and starts the
// worker pool. Jobs with a checkpoint manifest resume from it, so the
// requeued work repeats nothing and its results stay bit-identical.
func NewManager(store *Store, cfg Config) (*Manager, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	m := &Manager{
		store:   store,
		reg:     cfg.Registry,
		clock:   time.Now,
		jobs:    make(map[string]*Job),
		fans:    make(map[string]*obs.FanOut),
		running: make(map[string]*runHandle),
		models:  make(map[string]*serve.Model),
		queue:   make(chan string, queueCap),
		drainC:  make(chan struct{}),
	}
	if m.reg != nil {
		m.jobsRunning = m.reg.Gauge("jobs.running")
	}
	persisted, err := store.Load()
	if err != nil {
		return nil, err
	}
	for _, job := range persisted {
		switch job.State {
		case StateQueued, StateRunning, StateInterrupted:
			// Unfinished work from the previous daemon process. Running
			// means the daemon died mid-run; interrupted means it drained.
			// Either way the checkpoint directory carries whatever progress
			// was durably saved, and the run resumes from it.
			job.State = StateQueued
			job.Error = ""
			if err := store.Put(job); err != nil {
				return nil, err
			}
		}
		m.jobs[job.ID] = job
		m.fans[job.ID] = obs.NewFanOut()
		m.order = append(m.order, job.ID)
		if job.State == StateQueued {
			select {
			case m.queue <- job.ID:
			default:
				// More persisted queued jobs than the queue holds: the
				// overflow stays durably queued and can be requeued via
				// Resume once the backlog clears.
			}
		}
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates and enqueues a new job. When input is non-nil its
// bytes become the job's tensor (upload mode); otherwise spec.Input must
// name a readable tensor file on this host.
func (m *Manager) Submit(spec Spec, input io.Reader) (*Job, error) {
	spec.normalize()
	// Validate the spec up front with the same parsers the run will use,
	// so submissions fail at the API with a 4xx instead of minutes later
	// in a worker.
	if _, err := spec.options("", "", false); err != nil {
		return nil, err
	}
	if input == nil {
		if spec.Input == "" {
			return nil, errors.New("jobs: spec.input is required (or upload the tensor)")
		}
		f, err := os.Open(spec.Input)
		if err != nil {
			return nil, fmt.Errorf("jobs: input not readable: %w", err)
		}
		f.Close()
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.mu.Unlock()

	job, err := m.store.Create(spec, input, m.clock())
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		// Drain began while the record was being installed: leave it
		// queued on disk (the next daemon start picks it up) but do not
		// feed the dying pool.
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.jobs[job.ID] = job
	m.fans[job.ID] = obs.NewFanOut()
	m.order = append(m.order, job.ID)
	select {
	case m.queue <- job.ID:
	default:
		// The record is already durable; fail it in place rather than
		// leaving a queued record no worker will ever see this session.
		job.State = StateFailed
		job.Error = fmt.Sprintf("queue full (%d pending)", queueCap)
		m.store.Put(job)
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: queue full (%d pending)", queueCap)
	}
	snap := job.clone()
	m.mu.Unlock()
	if m.reg != nil {
		m.reg.Counter("jobs.submitted").Add(1)
	}
	return snap, nil
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job.clone(), nil
}

// List returns snapshots of every job in creation order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].clone())
	}
	return out
}

// Store exposes the backing store (the server uses it to locate factor
// files for download).
func (m *Manager) Store() *Store { return m.store }

// Cancel stops a job: a queued job goes straight to canceled; a running
// job gets its stop channel closed, finishes its in-flight step, writes
// a checkpoint and lands in canceled. Canceling a terminal job is an
// error.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch job.State {
	case StateQueued:
		job.State = StateCanceled
		job.Finished = m.clock()
		if err := m.store.Put(job); err != nil {
			return err
		}
		m.publishState(job)
		return nil
	case StateRunning:
		r := m.running[id]
		r.canceled = true
		r.stopOnce.Do(func() { close(r.stop) })
		return nil
	}
	return fmt.Errorf("jobs: cannot cancel job in state %q", job.State)
}

// Resume requeues a job that stopped short of done — canceled,
// interrupted, quarantined or failed. If the job has a checkpoint it
// picks up from there; otherwise it restarts from scratch.
func (m *Manager) Resume(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch job.State {
	case StateCanceled, StateInterrupted, StateQuarantined, StateFailed:
	case StateQueued:
		// Re-enqueue is legal: it heals a queued record whose channel slot
		// was lost (startup overflow). runJob ignores duplicate entries.
	default:
		return nil, fmt.Errorf("jobs: cannot resume job in state %q", job.State)
	}
	job.State = StateQueued
	job.Error = ""
	job.Finished = time.Time{}
	if err := m.store.Put(job); err != nil {
		return nil, err
	}
	select {
	case m.queue <- id:
	default:
		return nil, fmt.Errorf("jobs: queue full (%d pending)", queueCap)
	}
	m.publishState(job)
	return job.clone(), nil
}

// Watch subscribes to a job's event stream: every telemetry event the
// run emits plus the manager's job.state transition events. The returned
// cancel detaches the subscription (and reports how many events the
// subscriber missed to backpressure drops). Watching a terminal job
// yields a live — but silent — stream; callers should consult Get first.
func (m *Manager) Watch(id string, buf int) (<-chan obs.Event, func() int64, error) {
	m.mu.Lock()
	fan, ok := m.fans[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch, cancel := fan.Subscribe(buf)
	return ch, cancel, nil
}

// Drain stops the daemon's work gracefully: no new submissions, every
// running job's stop channel closes (the run finishes its in-flight
// step and checkpoints, exactly like the CLI on SIGTERM), and Drain
// returns when the pool is idle. Interrupted jobs requeue on the next
// daemon start.
func (m *Manager) Drain() {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drainC)
		for _, r := range m.running {
			r.stopOnce.Do(func() { close(r.stop) })
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	for id, mdl := range m.models {
		delete(m.models, id)
		mdl.Close()
	}
	m.mu.Unlock()
}

// worker is one pool goroutine: pull a queued job, run it, repeat until
// drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.drainC:
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one job end to end: transition to running, decompose
// with the job's checkpoint directory wired in, export factors, and
// persist the terminal state.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok || job.State != StateQueued {
		// Canceled while queued (or stale queue entry after a resume
		// race): nothing to run.
		m.mu.Unlock()
		return
	}
	r := &runHandle{stop: make(chan struct{})}
	// A drain that raced this dequeue must still stop the run promptly.
	select {
	case <-m.drainC:
		m.mu.Unlock()
		return
	default:
	}
	m.running[id] = r
	if m.jobsRunning != nil {
		m.jobsRunning.Set(float64(len(m.running)))
	}
	// A re-run is about to replace the job's outputs; drop any cached
	// query model so readers never see a stale snapshot.
	if mdl := m.models[id]; mdl != nil {
		delete(m.models, id)
		mdl.Close()
	}
	job.State = StateRunning
	job.Started = m.clock()
	fan := m.fans[id]
	if err := m.store.Put(job); err != nil {
		job.State = StateFailed
		job.Error = err.Error()
		job.Finished = m.clock()
		delete(m.running, id)
		if m.jobsRunning != nil {
			m.jobsRunning.Set(float64(len(m.running)))
		}
		m.publishState(job)
		m.mu.Unlock()
		return
	}
	m.publishState(job)
	spec := job.Spec
	resume := m.store.HasCheckpoint(id)
	m.mu.Unlock()

	opts, err := spec.options(m.store.CheckpointDir(id), m.store.StoreDir(id), resume)
	var res *twopcp.Result
	var dims []int
	if err == nil {
		opts.Stop = r.stop
		opts.Observer = &obs.Observer{Metrics: m.reg, OnEvent: fan.Publish}
		res, dims, err = twopcp.DecomposeFile(spec.Input, opts)
	}

	// A drain signal may land after the run already finished; the result
	// still counts. Only the run's own outcome decides the state.
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.running, id)
	if m.jobsRunning != nil {
		m.jobsRunning.Set(float64(len(m.running)))
	}
	job.Finished = m.clock()
	var qe *twopcp.QuarantineError
	switch {
	case err == nil:
		job.Dims = dims
		job.Modes = len(dims)
		job.Result = &Summary{
			Fit:          res.Fit,
			VirtualIters: res.VirtualIters,
			Converged:    res.Converged,
			FitTrace:     res.FitTrace,
			RunStats:     res.RunStats,
		}
		job.State = StateDone
		if werr := m.writeFactors(id, res); werr != nil {
			job.State = StateFailed
			job.Error = werr.Error()
			job.Result = nil
		}
	case errors.Is(err, twopcp.ErrInterrupted) && r.canceled:
		job.State = StateCanceled
		job.Error = err.Error()
	case errors.Is(err, twopcp.ErrInterrupted):
		job.State = StateInterrupted
		job.Error = err.Error()
	case errors.As(err, &qe):
		job.State = StateQuarantined
		job.Error = err.Error()
	default:
		job.State = StateFailed
		job.Error = err.Error()
	}
	if m.reg != nil {
		m.reg.Counter("jobs." + string(job.State)).Add(1)
	}
	if perr := m.store.Put(job); perr != nil && job.Error == "" {
		job.Error = perr.Error()
	}
	m.publishState(job)
}

// writeFactors exports the result's factor matrices into the job
// directory: the CSVs a client downloads (through the same writer as the
// CLI's -out-prefix, so the bytes match a local run's export exactly)
// plus the mmap-able factor snapshot the query endpoints serve.
func (m *Manager) writeFactors(id string, res *twopcp.Result) error {
	for mode, f := range res.Model.Factors {
		if err := cli.WriteFactorCSV(m.store.FactorPath(id, mode), f); err != nil {
			return err
		}
	}
	// Stamp the snapshot with the run's option fingerprint when the
	// checkpoint manifest has one (it always should; a missing manifest
	// degrades to an unstamped snapshot rather than a failed job).
	var meta *runstate.Meta
	if mt, err := runstate.ReadMeta(m.store.CheckpointDir(id)); err == nil {
		meta = &mt
	}
	return factorsnap.Write(m.store.SnapshotPath(id), res.Model.Lambda, res.Model.Factors, meta)
}

// QueryModel returns the query engine over a done job's factor snapshot,
// opening (and caching) it on first use. Jobs finished by an older daemon
// without a snapshot are healed transparently: the factors are recovered
// from the result checkpoint and the snapshot is written before opening.
func (m *Manager) QueryModel(id string) (*serve.Model, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if job.State != StateDone {
		return nil, fmt.Errorf("jobs: job %s is %s; queries need a done job", id, job.State)
	}
	if mdl := m.models[id]; mdl != nil {
		return mdl, nil
	}
	path := m.store.SnapshotPath(id)
	mdl, err := serve.Open(path, serve.Config{})
	if errors.Is(err, fs.ErrNotExist) {
		st, rerr := runstate.ReadResult(m.store.CheckpointDir(id))
		if rerr != nil {
			return nil, fmt.Errorf("jobs: job %s has no factor snapshot and no recoverable result: %w", id, rerr)
		}
		// Checkpointed factors carry λ folded in (the pipeline normalizes
		// before saving), so the recovered model's weights are all ones —
		// the same convention resultFromState uses.
		lambda := make([]float64, st.Factors[0].Cols)
		for f := range lambda {
			lambda[f] = 1
		}
		var meta *runstate.Meta
		if mt, merr := runstate.ReadMeta(m.store.CheckpointDir(id)); merr == nil {
			meta = &mt
		}
		if werr := factorsnap.Write(path, lambda, st.Factors, meta); werr != nil {
			return nil, werr
		}
		mdl, err = serve.Open(path, serve.Config{})
	}
	if err != nil {
		return nil, err
	}
	m.models[id] = mdl
	return mdl, nil
}

// publishState emits a synthetic job.state event to the job's fan-out so
// watchers see lifecycle transitions inline with the run's telemetry.
// Caller holds m.mu (or the job is not yet visible to anyone else).
func (m *Manager) publishState(job *Job) {
	fan := m.fans[job.ID]
	if fan == nil {
		return
	}
	fields := []obs.Field{
		obs.Str("job", job.ID),
		obs.Str("state", string(job.State)),
	}
	if job.Error != "" {
		fields = append(fields, obs.Str("error", job.Error))
	}
	fan.Publish(obs.Event{Name: "job.state", TS: m.clock().UnixNano(), Fields: fields})
}

package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"twopcp/internal/serve"
)

// TestServerEndpoints drives every route in the Routes table through a
// real HTTP round trip — the coverage check at the end fails if a route
// is added to the table without a request here, keeping this test (and
// through the docs test, docs/API.md) honest about the full surface.
func TestServerEndpoints(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 1, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 2)
	defer m.Drain()

	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	hit := make(map[string]bool)
	record := func(method, pattern string) { hit[method+" "+pattern] = true }

	// GET /healthz
	record("GET", "/healthz")
	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	// POST /v1/jobs — path submission.
	record("POST", "/v1/jobs")
	spec := Spec{Input: tensor, Rank: 2, Seed: 7}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decodeBody(t, resp, http.StatusCreated, &job)
	if job.ID == "" || job.Spec.Parts != 2 {
		t.Fatalf("submitted job = %+v", job)
	}
	// Bad spec → 400 with the JSON error envelope.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"rank":0}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	decodeBody(t, resp, http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Fatal("400 without error envelope")
	}

	// POST /v1/jobs/upload — tensor bytes in the body, spec in the header.
	record("POST", "/v1/jobs/upload")
	raw, err := os.ReadFile(tensor)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs/upload", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(Spec{Rank: 2, Seed: 7})
	req.Header.Set(SpecHeader, string(specJSON))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var uploaded Job
	decodeBody(t, resp, http.StatusCreated, &uploaded)
	if uploaded.Spec.Input == "" {
		t.Fatal("upload job has no stored input path")
	}

	// GET /v1/jobs/{id} — poll both jobs to done.
	record("GET", "/v1/jobs/{id}")
	waitHTTPState(t, ts.URL, job.ID, StateDone)
	waitHTTPState(t, ts.URL, uploaded.ID, StateDone)
	// Unknown ID → 404.
	if code := statusOf(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", code)
	}

	// GET /v1/jobs — both jobs listed.
	record("GET", "/v1/jobs")
	var list struct {
		Jobs []*Job `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("list = %d jobs, want 2", len(list.Jobs))
	}

	// GET /v1/jobs/{id}/result — same shape as the CLI's -json output.
	record("GET", "/v1/jobs/{id}/result")
	var result struct {
		Dims     []int     `json:"dims"`
		Fit      float64   `json:"fit"`
		FitTrace []float64 `json:"fit_trace"`
		RunStats map[string]any
	}
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/result", &result)
	if len(result.Dims) != 3 || result.Fit < 0.9 || len(result.FitTrace) == 0 {
		t.Fatalf("result = %+v", result)
	}

	// GET /v1/jobs/{id}/factors/{mode} — byte-identical to the on-disk CSV.
	record("GET", "/v1/jobs/{id}/factors/{mode}")
	for mode := 0; mode < 3; mode++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/factors/%d", ts.URL, job.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("factor %d: status %d err %v", mode, resp.StatusCode, err)
		}
		want, err := os.ReadFile(m.Store().FactorPath(job.ID, mode))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("downloaded mode-%d factors differ from stored CSV", mode)
		}
	}
	if code := statusOf(t, ts.URL+"/v1/jobs/"+job.ID+"/factors/9"); code != http.StatusNotFound {
		t.Fatalf("out-of-range mode status = %d, want 404", code)
	}

	// GET /v1/jobs/{id}/query/* — the factor-snapshot query endpoints,
	// cross-checked against the library API over the same snapshot file.
	record("GET", "/v1/jobs/{id}/query/cell")
	record("GET", "/v1/jobs/{id}/query/block")
	record("GET", "/v1/jobs/{id}/query/topk")
	record("GET", "/v1/jobs/{id}/query/nn")
	if _, err := os.Stat(m.Store().SnapshotPath(job.ID)); err != nil {
		t.Fatalf("done job wrote no factor snapshot: %v", err)
	}
	mdl, err := serve.Open(m.Store().SnapshotPath(job.ID), serve.Config{})
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer mdl.Close()

	var cell struct {
		At    []int   `json:"at"`
		Value float64 `json:"value"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/query/cell?at=3,4,5", &cell)
	wantCell, err := mdl.Reconstruct([]int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	// JSON float64 encoding round-trips exactly, so == is the right check.
	if cell.Value != wantCell {
		t.Fatalf("query/cell = %g, want %g", cell.Value, wantCell)
	}

	var block struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/query/block?lo=1,2,3&hi=3,5,6", &block)
	wantBlock, err := mdl.ReconstructBlock([]int{1, 2, 3}, []int{3, 5, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Values) != len(wantBlock) {
		t.Fatalf("query/block returned %d values, want %d", len(block.Values), len(wantBlock))
	}
	for i := range wantBlock {
		if block.Values[i] != wantBlock[i] {
			t.Fatalf("query/block[%d] = %g, want %g", i, block.Values[i], wantBlock[i])
		}
	}

	var topk struct {
		Results []serve.Scored `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/query/topk?mode=0&at=*,2,3&k=5", &topk)
	wantTopK, err := mdl.TopK(0, []int{-1, 2, 3}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != 5 {
		t.Fatalf("query/topk returned %d results, want 5", len(topk.Results))
	}
	for i, r := range topk.Results {
		if r != wantTopK[i] {
			t.Fatalf("query/topk[%d] = %+v, want %+v", i, r, wantTopK[i])
		}
	}

	var nn struct {
		Results []serve.Scored `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/query/nn?mode=1&index=4&k=5", &nn)
	wantNN, err := mdl.NN(1, 4, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn.Results) != 5 {
		t.Fatalf("query/nn returned %d results, want 5", len(nn.Results))
	}
	for i, r := range nn.Results {
		if r.Index == 4 {
			t.Fatal("query/nn returned the query entity itself")
		}
		if r != wantNN[i] {
			t.Fatalf("query/nn[%d] = %+v, want %+v", i, r, wantNN[i])
		}
	}

	// Query error surface: unknown job → 404, malformed coordinates → 400.
	if code := statusOf(t, ts.URL+"/v1/jobs/j999999/query/cell?at=0,0,0"); code != http.StatusNotFound {
		t.Fatalf("query on unknown job = %d, want 404", code)
	}
	if code := statusOf(t, ts.URL+"/v1/jobs/"+job.ID+"/query/cell?at=zap"); code != http.StatusBadRequest {
		t.Fatalf("query with bad coordinates = %d, want 400", code)
	}
	if code := statusOf(t, ts.URL+"/v1/jobs/"+job.ID+"/query/cell?at=99,0,0"); code != http.StatusBadRequest {
		t.Fatalf("query out of range = %d, want 400", code)
	}

	// GET /v1/jobs/{id}/events — a done job's stream opens with its
	// terminal state and closes immediately.
	record("GET", "/v1/jobs/{id}/events")
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sse, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	if !strings.Contains(string(sse), "event: job.state") || !strings.Contains(string(sse), `"done"`) {
		t.Fatalf("terminal SSE stream = %q", sse)
	}

	// POST /v1/jobs/{id}/cancel + /resume: submit a long job, cancel it
	// mid-run over HTTP, then resume it over HTTP.
	record("POST", "/v1/jobs/{id}/cancel")
	record("POST", "/v1/jobs/{id}/resume")
	big := filepath.Join(dir, "big.tptl")
	writeTensor(t, big, 11, 30, 30, 30)
	body, _ = json.Marshal(longSpec(big))
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var longJob Job
	decodeBody(t, resp, http.StatusCreated, &longJob)

	// Queries against a job that is not done → 409.
	if code := statusOf(t, ts.URL+"/v1/jobs/"+longJob.ID+"/query/cell?at=0,0,0"); code != http.StatusConflict {
		t.Fatalf("query on unfinished job = %d, want 409", code)
	}

	// Watch the long job's live SSE stream while it runs.
	events := make(chan string, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + longJob.ID + "/events")
		if err != nil {
			events <- ""
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var lines []string
		for sc.Scan() && len(lines) < 50 {
			if l := sc.Text(); l != "" {
				lines = append(lines, l)
			}
		}
		events <- strings.Join(lines, "\n")
	}()

	waitHTTPState(t, ts.URL, longJob.ID, StateRunning)
	waitCheckpoint(t, m.Store(), longJob.ID)
	resp, err = http.Post(ts.URL+"/v1/jobs/"+longJob.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var afterCancel Job
	decodeBody(t, resp, http.StatusOK, &afterCancel)
	waitHTTPState(t, ts.URL, longJob.ID, StateCanceled)

	select {
	case stream := <-events:
		if !strings.Contains(stream, "event:") {
			t.Fatalf("live SSE stream carried no events:\n%s", stream)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("live SSE watcher never returned")
	}

	resp, err = http.Post(ts.URL+"/v1/jobs/"+longJob.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var resumed Job
	decodeBody(t, resp, http.StatusOK, &resumed)
	if resumed.State != StateQueued {
		t.Fatalf("resumed state = %q, want queued", resumed.State)
	}
	done := waitHTTPState(t, ts.URL, longJob.ID, StateDone)
	if done.Result == nil {
		t.Fatal("resumed job finished without a result")
	}
	// Resuming a done job → 409.
	resp, err = http.Post(ts.URL+"/v1/jobs/"+longJob.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume done job status = %d, want 409", resp.StatusCode)
	}

	// Every route in the table must have been exercised above.
	for _, r := range Routes {
		if !hit[r.Method+" "+r.Pattern] {
			t.Errorf("route %s %s not exercised by this test", r.Method, r.Pattern)
		}
	}
	if len(hit) != len(Routes) {
		t.Errorf("test hits %d patterns, table has %d routes", len(hit), len(Routes))
	}
}

// TestServerUploadQueryParams covers the curl-friendly query-parameter
// spec form of the upload endpoint.
func TestServerUploadQueryParams(t *testing.T) {
	dir := t.TempDir()
	tensor := filepath.Join(dir, "x.tptl")
	writeTensor(t, tensor, 2, 12, 12, 12)
	_, m := newTestManager(t, filepath.Join(dir, "data"), 1)
	defer m.Drain()
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	raw, err := os.ReadFile(tensor)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/upload?rank=2&seed=9&iters=50",
		"application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	decodeBody(t, resp, http.StatusCreated, &job)
	if job.Spec.Rank != 2 || job.Spec.Seed != 9 || job.Spec.MaxIters != 50 {
		t.Fatalf("query-param spec = %+v", job.Spec)
	}
	waitHTTPState(t, ts.URL, job.ID, StateDone)

	// GET on the upload path falls through to the {id} route and 404s as
	// an unknown job — the JSON error envelope either way.
	if code := statusOf(t, ts.URL+"/v1/jobs/upload?rank=x"); code != http.StatusNotFound {
		t.Fatalf("GET upload = %d, want 404", code)
	}
}

// getJSON fetches url and decodes the 200 response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, http.StatusOK, v)
}

// decodeBody asserts the status and decodes the JSON body into v.
func decodeBody(t *testing.T, resp *http.Response, want int, v any) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d\nbody: %s", resp.StatusCode, want, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode: %v\nbody: %s", err, body)
	}
}

// statusOf returns the status code of a GET.
func statusOf(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// waitHTTPState polls the status endpoint until the job reaches one of
// the wanted states.
func waitHTTPState(t *testing.T, base, id string, want ...State) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var job Job
		getJSON(t, base+"/v1/jobs/"+id, &job)
		for _, s := range want {
			if job.State == s {
				return &job
			}
		}
		if job.State.Terminal() {
			t.Fatalf("job %s reached %q (error %q), want one of %v", id, job.State, job.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want one of %v", id, job.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

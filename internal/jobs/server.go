package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"twopcp/internal/serve"
)

// Route is one API endpoint: the Go 1.22 mux pattern it registers under
// and a short summary. The table below is the single source of truth for
// the daemon's surface — the server builds its mux from it, and the
// docs test in the root package cross-checks docs/API.md against it in
// both directions, so an endpoint cannot be added, removed or renamed
// without the documentation moving in lockstep.
type Route struct {
	// Method is the HTTP method.
	Method string
	// Pattern is the path pattern ({id}, {mode} wildcards).
	Pattern string
	// Summary is a one-line description (mirrored in docs/API.md).
	Summary string

	handler func(*Server, http.ResponseWriter, *http.Request)
}

// Routes is the daemon's complete HTTP API surface.
var Routes = []Route{
	{"GET", "/healthz", "liveness probe", (*Server).handleHealth},
	{"GET", "/v1/jobs", "list all jobs", (*Server).handleList},
	{"POST", "/v1/jobs", "submit a job (JSON spec referencing a tensor path)", (*Server).handleSubmit},
	{"POST", "/v1/jobs/upload", "submit a job with the tensor bytes as the request body", (*Server).handleUpload},
	{"GET", "/v1/jobs/{id}", "job status", (*Server).handleGet},
	{"GET", "/v1/jobs/{id}/events", "stream job progress events (SSE)", (*Server).handleEvents},
	{"POST", "/v1/jobs/{id}/cancel", "cancel a queued or running job (checkpointing first)", (*Server).handleCancel},
	{"POST", "/v1/jobs/{id}/resume", "requeue a canceled/interrupted/quarantined/failed job", (*Server).handleResume},
	{"GET", "/v1/jobs/{id}/result", "result summary JSON (done jobs)", (*Server).handleResult},
	{"GET", "/v1/jobs/{id}/factors/{mode}", "download one factor matrix as CSV (done jobs)", (*Server).handleFactor},
	{"GET", "/v1/jobs/{id}/query/cell", "reconstruct one tensor cell from the factor snapshot (done jobs)", (*Server).handleQueryCell},
	{"GET", "/v1/jobs/{id}/query/block", "reconstruct a dense sub-block from the factor snapshot (done jobs)", (*Server).handleQueryBlock},
	{"GET", "/v1/jobs/{id}/query/topk", "top-k entities in one mode by reconstructed score (done jobs)", (*Server).handleQueryTopK},
	{"GET", "/v1/jobs/{id}/query/nn", "nearest neighbors of an entity in factor-row space (done jobs)", (*Server).handleQueryNN},
}

// Server serves the jobs API over a Manager.
type Server struct {
	m *Manager
}

// SpecHeader is the request header carrying the JSON-encoded Spec on
// upload submissions (POST /v1/jobs/upload), whose body is the raw
// tensor bytes.
const SpecHeader = "X-Twopcp-Spec"

// NewServer returns a Server over m.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Handler builds the API handler from the Routes table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range Routes {
		h := r.handler
		mux.HandleFunc(r.Method+" "+r.Pattern, func(w http.ResponseWriter, req *http.Request) {
			h(s, w, req)
		})
	}
	return mux
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as the JSON response body with the given status.
// Encode failures after the header is out cannot reach the client, so
// they go to the error log instead of vanishing.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("jobs: encode %d response: %v", status, err)
	}
}

// writeErr writes the JSON error envelope. Not-found, draining and
// validation errors map to 404, 503 and 400/409 at the call sites.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errStatus maps manager errors to HTTP statuses: unknown job → 404,
// draining → 503, anything else → the fallback.
func errStatus(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	}
	return fallback
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.List()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	job, err := s.m.Submit(spec, nil)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, job)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if h := r.Header.Get(SpecHeader); h != "" {
		if err := json.Unmarshal([]byte(h), &spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad %s header: %w", SpecHeader, err))
			return
		}
	} else if err := specFromQuery(r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.m.Submit(spec, r.Body)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, job)
}

// specFromQuery fills the few spec fields expressible as query
// parameters (?rank=10&iters=50&seed=1) for curl-friendly uploads
// without the JSON header.
func specFromQuery(r *http.Request, spec *Spec) error {
	q := r.URL.Query()
	geti := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad query parameter %s=%q", name, v)
			}
			*dst = n
		}
		return nil
	}
	if err := geti("rank", &spec.Rank); err != nil {
		return err
	}
	if err := geti("parts", &spec.Parts); err != nil {
		return err
	}
	if err := geti("iters", &spec.MaxIters); err != nil {
		return err
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad query parameter seed=%q", v)
		}
		spec.Seed = n
	}
	if v := q.Get("schedule"); v != "" {
		spec.Schedule = v
	}
	if v := q.Get("replacement"); v != "" {
		spec.Replacement = v
	}
	return nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		writeErr(w, errStatus(err, http.StatusConflict), err)
		return
	}
	job, err := s.m.Get(id)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	job, err := s.m.Resume(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err, http.StatusConflict), err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	if job.State != StateDone || job.Result == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s has no result (state %q)", job.ID, job.State))
		return
	}
	// Same shape as the CLI's -json output, so result files diff cleanly
	// against local runs.
	writeJSON(w, http.StatusOK, struct {
		Dims         []int     `json:"dims"`
		Fit          float64   `json:"fit"`
		VirtualIters int       `json:"virtual_iters"`
		Converged    bool      `json:"converged"`
		FitTrace     []float64 `json:"fit_trace"`
		RunStats     any       `json:"run_stats"`
	}{job.Dims, job.Result.Fit, job.Result.VirtualIters, job.Result.Converged,
		job.Result.FitTrace, job.Result.RunStats})
}

func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.m.Get(id)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	if job.State != StateDone {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s has no factors (state %q)", id, job.State))
		return
	}
	mode, err := strconv.Atoi(r.PathValue("mode"))
	if err != nil || mode < 0 || mode >= job.Modes {
		if job.Modes == 0 {
			writeErr(w, http.StatusNotFound, fmt.Errorf("job %s has no factor matrices", id))
		} else {
			writeErr(w, http.StatusNotFound, fmt.Errorf("job %s has modes 0..%d", id, job.Modes-1))
		}
		return
	}
	f, err := os.Open(s.m.Store().FactorPath(id, mode))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/csv")
	http.ServeContent(w, r, fmt.Sprintf("factors-mode%d.csv", mode), time.Time{}, f)
}

// testHookEventsSubscribed runs between handleEvents' fan-out subscribe
// and its state snapshot — the window the terminal-race regression test
// widens deterministically. A no-op outside tests.
var testHookEventsSubscribed = func() {}

// handleEvents streams the job's event feed as Server-Sent Events: each
// event is one SSE message whose event field is the trace event name and
// whose data field is the event's one-line JSON. The stream opens with a
// synthetic job.state snapshot and ends after a terminal job.state event
// (or when the client disconnects). A ": keepalive" comment goes out
// during idle stretches so proxies keep the connection open.
//
// Subscription order matters: the handler subscribes to the fan-out
// BEFORE snapshotting the job state. A terminal transition that lands in
// between is then caught by the snapshot (fetched after), and one that
// lands after the snapshot arrives through the channel — either way the
// stream terminates. Snapshotting first left a window where the terminal
// job.state event was published to a fan-out with no subscribers and the
// handler looped on keepalives forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.m.Watch(id, 256)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	defer cancel()
	testHookEventsSubscribed()
	job, err := s.m.Get(id)
	if err != nil {
		writeErr(w, errStatus(err, http.StatusInternalServerError), err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Opening snapshot so a late subscriber knows where the job stands
	// even if no further events ever arrive.
	fmt.Fprintf(w, "event: job.state\ndata: {\"state\":%q}\n\n", job.State)
	flusher.Flush()
	if job.State.Terminal() {
		return
	}

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case e, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Name, e.JSON())
			flusher.Flush()
			if e.Name == "job.state" {
				if j, err := s.m.Get(id); err == nil && j.State.Terminal() {
					return
				}
			}
		}
	}
}

// maxBlockCells caps one block-reconstruct response; larger requests
// should page, not hold a worker and a contiguous buffer of this size.
const maxBlockCells = 1 << 20

// queryModel resolves the request's job to its query model, writing the
// error response (404 unknown, 409 not done, 500 unreadable snapshot)
// itself when it returns nil.
func (s *Server) queryModel(w http.ResponseWriter, r *http.Request) (*serve.Model, string) {
	id := r.PathValue("id")
	mdl, err := s.m.QueryModel(id)
	if err != nil {
		status := errStatus(err, http.StatusConflict)
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		} else if job, gerr := s.m.Get(id); gerr == nil && job.State == StateDone {
			// Done job whose snapshot could not be opened or rebuilt.
			status = http.StatusInternalServerError
		}
		writeErr(w, status, err)
		return nil, id
	}
	return mdl, id
}

// parseIntList parses a comma-separated index list ("3,0,7"). When skip
// is non-negative, the entry at that position must be "*" (a placeholder
// for the swept mode) and parses as -1.
func parseIntList(s string, skip int) ([]int, error) {
	if s == "" {
		return nil, errors.New("empty index list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		if i == skip {
			if p != "*" {
				return nil, fmt.Errorf("position %d is the swept mode; write it as *", i)
			}
			out[i] = -1
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad index %q", p)
		}
		out[i] = n
	}
	return out, nil
}

// queryInt reads an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %s=%q", name, v)
	}
	return n, nil
}

func (s *Server) handleQueryCell(w http.ResponseWriter, r *http.Request) {
	mdl, _ := s.queryModel(w, r)
	if mdl == nil {
		return
	}
	at, err := parseIntList(r.URL.Query().Get("at"), -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("at: %w", err))
		return
	}
	v, err := mdl.Reconstruct(at)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		At    []int   `json:"at"`
		Value float64 `json:"value"`
	}{at, v})
}

func (s *Server) handleQueryBlock(w http.ResponseWriter, r *http.Request) {
	mdl, _ := s.queryModel(w, r)
	if mdl == nil {
		return
	}
	q := r.URL.Query()
	lo, err := parseIntList(q.Get("lo"), -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("lo: %w", err))
		return
	}
	hi, err := parseIntList(q.Get("hi"), -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("hi: %w", err))
		return
	}
	if len(lo) == len(hi) {
		cells := 1
		for n := range lo {
			if hi[n] > lo[n] {
				cells *= hi[n] - lo[n]
			}
		}
		if cells > maxBlockCells {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("block of %d cells exceeds the %d-cell limit; page the request", cells, maxBlockCells))
			return
		}
	}
	vals, err := mdl.ReconstructBlock(lo, hi, nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Lo     []int     `json:"lo"`
		Hi     []int     `json:"hi"`
		Values []float64 `json:"values"`
	}{lo, hi, vals})
}

func (s *Server) handleQueryTopK(w http.ResponseWriter, r *http.Request) {
	mdl, _ := s.queryModel(w, r)
	if mdl == nil {
		return
	}
	mode, err := queryInt(r, "mode", -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	at, err := parseIntList(r.URL.Query().Get("at"), mode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("at: %w", err))
		return
	}
	res, err := mdl.TopK(mode, at, k, nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Mode    int            `json:"mode"`
		At      []int          `json:"at"`
		K       int            `json:"k"`
		Results []serve.Scored `json:"results"`
	}{mode, at, k, res})
}

func (s *Server) handleQueryNN(w http.ResponseWriter, r *http.Request) {
	mdl, _ := s.queryModel(w, r)
	if mdl == nil {
		return
	}
	mode, err := queryInt(r, "mode", -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	index, err := queryInt(r, "index", -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := mdl.NN(mode, index, k, nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Mode    int            `json:"mode"`
		Index   int            `json:"index"`
		K       int            `json:"k"`
		Results []serve.Scored `json:"results"`
	}{mode, index, k, res})
}

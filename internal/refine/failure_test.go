package refine

import (
	"errors"
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// failingPhase1 builds a small Phase-1 result for failure-injection runs.
func failingPhase1(t *testing.T) *phase1.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(50))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 2, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p1
}

func TestEngineSurfacesReadFault(t *testing.T) {
	p1 := failingPhase1(t)
	faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
	eng, err := New(Config{
		Phase1: p1, Store: faulty,
		Schedule: schedule.ZOrder, Policy: buffer.LRU,
		BufferFraction: 1.0 / 3, MaxVirtualIters: 10, Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Setup performs no reads (the initial A is regenerated rather than
	// re-read), so every read is a run-time fetch.
	faulty.FailRead = 10
	_, err = eng.Run()
	if !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("err = %v, want injected read fault", err)
	}
}

func TestEngineSurfacesWriteBackFault(t *testing.T) {
	p1 := failingPhase1(t)
	faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
	eng, err := New(Config{
		Phase1: p1, Store: faulty,
		Schedule: schedule.ZOrder, Policy: buffer.LRU,
		// Tight buffer forces dirty evictions (write-backs).
		BufferFraction: 1.0 / 3, MaxVirtualIters: 10, Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// prepareUnits used the first ΣK=6 writes; fail the first write-back.
	faulty.FailWrite = 7
	_, err = eng.Run()
	if !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("err = %v, want injected write fault", err)
	}
	if faulty.WriteFails != 1 {
		t.Fatalf("write fails = %d", faulty.WriteFails)
	}
}

func TestEngineSetupFaultFailsConstruction(t *testing.T) {
	p1 := failingPhase1(t)
	faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
	faulty.FailWrite = 1 // the very first unit Put during prepareUnits
	if _, err := New(Config{
		Phase1: p1, Store: faulty,
		Schedule: schedule.ModeCentric, Policy: buffer.LRU,
	}); !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("err = %v, want injected setup fault", err)
	}
}

func TestStoreIsConsistentAfterFault(t *testing.T) {
	// After a mid-run fault, the store must still hold decodable units
	// (atomicity of individual Puts), so a retry can proceed.
	p1 := failingPhase1(t)
	faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
	eng, err := New(Config{
		Phase1: p1, Store: faulty,
		Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 1.0 / 3, MaxVirtualIters: 10, Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailRead = 8
	if _, err := eng.Run(); !errors.Is(err, blockstore.ErrInjected) {
		t.Fatalf("expected injected fault, got %v", err)
	}
	// Every unit is still present and well-formed.
	p := p1.Pattern
	for mode := 0; mode < p.NModes(); mode++ {
		for part := 0; part < p.K[mode]; part++ {
			u, err := faulty.Get(mode, part)
			if err != nil {
				t.Fatalf("unit ⟨%d,%d⟩ unreadable after fault: %v", mode, part, err)
			}
			if u.A == nil || len(u.U) != p.SlabSize(mode) {
				t.Fatalf("unit ⟨%d,%d⟩ malformed after fault", mode, part)
			}
		}
	}
}

package refine

import (
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/grid"
	"twopcp/internal/obs"
	"twopcp/internal/phase1"
	"twopcp/internal/runstate"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// benchPhase1 builds one Phase-1 result for the prefetch benchmark.
func benchPhase1(b *testing.B) *phase1.Result {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandomDense(rng, 12, 12, 12)
	p := grid.UniformCube(3, 12, 4)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		b.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 4, MaxIters: 2, Tol: 1e-3, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	return p1
}

// BenchmarkPhase2Prefetch measures the Phase-2 wall clock of the
// synchronous engine versus the asynchronous prefetch pipeline over a
// latency-injected store (2ms per unit read and write, the paper's
// footnote-5 regime where a swap dwarfs the in-memory work) at
// BufferFraction 0.5. The work is identical in both variants — same
// update order, same swaps, same factors — so the ratio isolates how much
// I/O latency the pipeline hides. Acceptance: prefetch ≥1.5× faster.
//
// Recorded baselines live in BENCH_phase2_prefetch.json.
func BenchmarkPhase2Prefetch(b *testing.B) {
	p1 := benchPhase1(b)
	run := func(b *testing.B, depth, workers, ckptSteps int) {
		var swaps int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := Config{
				Phase1:   p1,
				Store:    blockstore.WithLatency(blockstore.NewMemStore(), 2*time.Millisecond, 2*time.Millisecond),
				Schedule: schedule.ZOrder, Policy: buffer.LRU,
				BufferFraction:  0.5,
				MaxVirtualIters: 16, // one full Z-order cycle (64 blocks, ΣK=12)
				Tol:             math.Inf(-1),
				Seed:            5,
				PrefetchDepth:   depth,
				IOWorkers:       workers,
			}
			if ckptSteps > 0 {
				rs, err := runstate.Open(filepath.Join(b.TempDir(), "ckpt"),
					runstate.Meta{InputKind: "bench", Dims: []int{12, 12, 12}, Partitions: []int{4, 4, 4}, Rank: 4, Seed: 5},
					64, false)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Checkpoint = rs
				cfg.CheckpointEverySteps = ckptSteps
			}
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := eng.Run()
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if swaps == 0 {
				swaps = res.BufferStats.Fetches
			} else if swaps != res.BufferStats.Fetches {
				b.Fatalf("swap count drifted: %d vs %d", swaps, res.BufferStats.Fetches)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(swaps), "swaps")
	}
	b.Run("sync", func(b *testing.B) { run(b, 0, 0, 0) })
	b.Run("prefetch", func(b *testing.B) { run(b, 2, 4, 0) })
	// The durability cost on top of the pipeline: a Phase-2 checkpoint
	// (factor partitions + buffer snapshot, fsync'd and renamed) every 32
	// schedule steps — twice the default once-per-cycle cadence, 2
	// checkpoints over this run at ~1.1 ms each (serialize + fsync +
	// dirsync). Acceptance: ≤ 5% overhead vs the plain prefetch pipeline
	// (gated by cmd/benchgate).
	b.Run("prefetch+checkpoint", func(b *testing.B) { run(b, 2, 4, 32) })
}

// BenchmarkObsOverhead measures what telemetry costs the Phase-2 engine
// on a pure in-memory run (no injected latency, so nothing hides the
// overhead):
//
//   - off:      nil *obs.Observer — the disabled state everyone who never
//     touches telemetry pays for. Acceptance: <= 2% over what the engine
//     cost before the hooks existed, which CI approximates by gating
//     counters against off (a nil check is strictly cheaper than a bound
//     counter) and pinning off's allocation count.
//   - counters: a live metrics registry, no trace — bound atomic counters
//     on every fetch/evict/update. Acceptance: <= 2% over off (+ the
//     measurement margin in BENCH_obs.json; gated by cmd/benchgate).
//   - trace:    metrics plus a Recorder writing every event to io.Discard
//     — the full event-serialization path minus the disk. Bounded against
//     the recorded baseline, not a fixed acceptance: trace cost is real
//     and opt-in.
//
// Recorded baselines live in BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	p1 := benchPhase1(b)
	run := func(b *testing.B, ob *obs.Observer) {
		var swaps int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := Config{
				Phase1:   p1,
				Store:    blockstore.NewMemStore(),
				Schedule: schedule.ZOrder, Policy: buffer.LRU,
				BufferFraction: 0.5,
				// 8 full Z-order cycles: long enough (~15 ms/op) that the
				// overhead ratio rises above scheduler jitter on shared
				// runners.
				MaxVirtualIters: 128,
				Tol:             math.Inf(-1),
				Seed:            5,
				Obs:             ob,
			}
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := eng.Run()
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if swaps == 0 {
				swaps = res.BufferStats.Fetches
			} else if swaps != res.BufferStats.Fetches {
				b.Fatalf("swap count drifted: %d vs %d", swaps, res.BufferStats.Fetches)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(swaps), "swaps")
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		run(b, nil)
	})
	b.Run("counters", func(b *testing.B) {
		run(b, &obs.Observer{Metrics: obs.NewRegistry()})
	})
	b.Run("trace", func(b *testing.B) {
		run(b, &obs.Observer{
			Metrics: obs.NewRegistry(),
			Trace:   obs.NewRecorder(io.Discard),
		})
	})
}

// BenchmarkResilienceOverhead measures what the retry layer costs the
// Phase-2 engine on HEALTHY storage (a pure in-memory run, so nothing
// hides the wrapper):
//
//   - off:   the store used directly — the disabled state everyone who
//     never enables retries pays for (nothing wraps anything).
//   - retry: the store behind blockstore.Resilient with a live retry
//     budget, exactly how twopcp -retry wires it, but zero injected
//     faults — so every op takes the first-attempt fast path. Acceptance:
//     <= 2% over off (+ the measurement margin in BENCH_resilience.json;
//     gated by cmd/benchgate as resilience-overhead).
//
// The fault-ABSORBING path is covered functionally (scripts/chaos.sh and
// the chaos tests assert bit-identical output); this benchmark pins only
// the price of having the safety net installed.
//
// Recorded baselines live in BENCH_resilience.json.
func BenchmarkResilienceOverhead(b *testing.B) {
	p1 := benchPhase1(b)
	pol := blockstore.RetryPolicy{MaxRetries: 3, Seed: 1}
	run := func(b *testing.B, resilient bool) {
		var swaps int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := Config{
				Phase1:   p1,
				Store:    blockstore.NewMemStore(),
				Schedule: schedule.ZOrder, Policy: buffer.LRU,
				BufferFraction: 0.5,
				// 8 full Z-order cycles, same workload as the obs
				// benchmark: long enough that the overhead ratio rises
				// above scheduler jitter on shared runners.
				MaxVirtualIters: 128,
				Tol:             math.Inf(-1),
				Seed:            5,
			}
			if resilient {
				cfg.Store = blockstore.Resilient(cfg.Store, pol, nil)
				cfg.Retry = pol
			}
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := eng.Run()
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.StoreStats.Retries != 0 {
				b.Fatalf("%d retries on healthy storage", res.StoreStats.Retries)
			}
			if swaps == 0 {
				swaps = res.BufferStats.Fetches
			} else if swaps != res.BufferStats.Fetches {
				b.Fatalf("swap count drifted: %d vs %d", swaps, res.BufferStats.Fetches)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(swaps), "swaps")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("retry", func(b *testing.B) { run(b, true) })
}

package refine

import (
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/schedule"
)

// prefetchFixture builds one Phase-1 result shared by the equivalence
// runs (Run mutates only the store, never the Phase-1 output).
func prefetchFixture(t *testing.T) *phase1.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	x := lowRank(rng, 3, 18, 18, 18)
	p := grid.UniformCube(3, 18, 3)
	return runPhase1(t, x, p, 3)
}

func runWithDepth(t *testing.T, p1 *phase1.Result, kind schedule.Kind, pol buffer.Policy, depth, workers int) *Result {
	t.Helper()
	eng, err := New(Config{
		Phase1:          p1,
		Store:           blockstore.NewMemStore(),
		Schedule:        kind,
		Policy:          pol,
		BufferFraction:  0.5,
		MaxVirtualIters: 12,
		Tol:             1e-9,
		Seed:            5,
		PrefetchDepth:   depth,
		IOWorkers:       workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameLogicalStats compares the replacement counters that must be
// prefetch-invariant (Prefetches itself, by definition, is not).
func sameLogicalStats(a, b buffer.Stats) bool {
	return a.Fetches == b.Fetches && a.Hits == b.Hits && a.Evictions == b.Evictions &&
		a.WriteBacks == b.WriteBacks && a.Overflows == b.Overflows
}

// TestPrefetchingIsBitForBitEquivalent is the acceptance test of the
// asynchronous pipeline: PrefetchDepth: 0 is the synchronous engine, and
// every prefetching configuration must reproduce its FitTrace, factors
// and swap statistics exactly — the pipeline may only move bytes earlier
// in time.
func TestPrefetchingIsBitForBitEquivalent(t *testing.T) {
	p1 := prefetchFixture(t)
	for _, kind := range schedule.Kinds {
		for _, pol := range []buffer.Policy{buffer.LRU, buffer.Forward} {
			sync := runWithDepth(t, p1, kind, pol, 0, 0)
			for _, cfg := range []struct{ depth, workers int }{
				{1, 2}, {2, 4}, {3, 0}, // {3, 0} exercises the IOWorkers default
			} {
				async := runWithDepth(t, p1, kind, pol, cfg.depth, cfg.workers)
				tag := kind.String() + "/" + pol.String()
				if len(async.FitTrace) != len(sync.FitTrace) {
					t.Fatalf("%s depth %d: trace length %d vs %d", tag, cfg.depth, len(async.FitTrace), len(sync.FitTrace))
				}
				for i := range sync.FitTrace {
					if async.FitTrace[i] != sync.FitTrace[i] {
						t.Fatalf("%s depth %d: FitTrace[%d] = %v, want %v (bit-for-bit)", tag, cfg.depth, i, async.FitTrace[i], sync.FitTrace[i])
					}
				}
				if !sameLogicalStats(async.BufferStats, sync.BufferStats) {
					t.Fatalf("%s depth %d: buffer stats %+v, want %+v", tag, cfg.depth, async.BufferStats, sync.BufferStats)
				}
				if async.VirtualIters != sync.VirtualIters || async.Converged != sync.Converged {
					t.Fatalf("%s depth %d: termination diverged", tag, cfg.depth)
				}
				for mode := range sync.Factors {
					a, b := async.Factors[mode], sync.Factors[mode]
					if a.Rows != b.Rows || a.Cols != b.Cols {
						t.Fatalf("%s depth %d: factor %d shape diverged", tag, cfg.depth, mode)
					}
					for i := range b.Data {
						if a.Data[i] != b.Data[i] {
							t.Fatalf("%s depth %d: factor %d entry %d = %v, want %v (bit-for-bit)", tag, cfg.depth, mode, i, a.Data[i], b.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestDepthZeroMatchesRecordedSynchronousBehaviour pins the satellite
// requirement directly: the PrefetchDepth: 0 configuration reproduces the
// synchronous engine's FitTrace and BufferStats exactly across repeated
// runs (the synchronous engine IS the depth-0 code path; this guards the
// equivalence against future drift, e.g. stats moving off the Acquire
// path).
func TestDepthZeroMatchesRecordedSynchronousBehaviour(t *testing.T) {
	p1 := prefetchFixture(t)
	a := runWithDepth(t, p1, schedule.HilbertOrder, buffer.Forward, 0, 0)
	b := runWithDepth(t, p1, schedule.HilbertOrder, buffer.Forward, 0, 0)
	if a.BufferStats != b.BufferStats {
		t.Fatalf("synchronous runs diverged: %+v vs %+v", a.BufferStats, b.BufferStats)
	}
	if a.StoreStats != b.StoreStats {
		t.Fatalf("synchronous store traffic diverged: %+v vs %+v", a.StoreStats, b.StoreStats)
	}
	if a.BufferStats.Prefetches != 0 {
		t.Fatalf("depth 0 issued %d prefetches", a.BufferStats.Prefetches)
	}
	if a.BufferStats.Fetches == 0 || a.BufferStats.Evictions == 0 {
		t.Fatalf("fixture too loose to exercise replacement: %+v", a.BufferStats)
	}
}

// TestPrefetchOverFileStore runs the pipeline against real files under
// -race: the prefetch workers, background write-backs and the engine
// goroutine all touch the FileStore concurrently.
func TestPrefetchOverFileStore(t *testing.T) {
	p1 := prefetchFixture(t)
	mkStore := func() blockstore.Store {
		s, err := blockstore.NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(depth, workers int) *Result {
		eng, err := New(Config{
			Phase1: p1, Store: mkStore(),
			Schedule: schedule.ZOrder, Policy: buffer.Forward,
			BufferFraction: 0.5, MaxVirtualIters: 6, Tol: 1e-9, Seed: 5,
			PrefetchDepth: depth, IOWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync := run(0, 0)
	async := run(2, 3)
	if !sameLogicalStats(async.BufferStats, sync.BufferStats) {
		t.Fatalf("file-store stats diverged: %+v vs %+v", async.BufferStats, sync.BufferStats)
	}
	for mode := range sync.Factors {
		for i := range sync.Factors[mode].Data {
			if async.Factors[mode].Data[i] != sync.Factors[mode].Data[i] {
				t.Fatalf("file-store factors diverged at mode %d entry %d", mode, i)
			}
		}
	}
}

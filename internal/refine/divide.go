package refine

import (
	"twopcp/internal/blockstore"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
)

// tracker abstracts the P/Q bookkeeping of Phase 2 so the engine can run
// either representation:
//
//   - components (the default): per-mode factors P[l][h] are stored and the
//     Hadamard product ⊛_{h≠i} is formed on demand (see components.go);
//   - divide-update (this file): the paper's literal Algorithm 1/2 rule —
//     the full products P_l are maintained in place, and the mode-i factor
//     is removed by element-wise division P_l ⊘ (U(i)ᵀ_l A(i)_(ki)) using
//     the old A from the pinned unit, then restored by multiplying the new
//     U(i)ᵀ_l A(i)_(ki) back in.
//
// Both are algebraically identical (verified by TestDivideUpdateMatches
// and benchmarked by the PQ ablation); the divide form performs one F×F
// division per slab block instead of N−1 Hadamard multiplies, and needs a
// guard for exact zeros in the denominator.
type tracker interface {
	// GammaInto writes Γ_l^(i) = ⊛_{h≠i} P-factor for block l, where i is
	// the mode of the pinned unit u (u.A is still the pre-update value).
	GammaInto(dst *mat.Matrix, blockID int, u *blockstore.Unit)
	// STermMulInto multiplies dst by ⊛_{h≠skip} Q[h][l_h].
	STermMulInto(dst *mat.Matrix, blockVec []int, skipMode int)
	// SetA installs the updated A(mode)_(part), refreshing bookkeeping for
	// every block in the slab (slabU supplies U(mode)_l).
	SetA(mode, part int, a *mat.Matrix, slabU map[int]*mat.Matrix)
	// SurrogateFit returns the fit of the current grid model against the
	// Phase-1 surrogate (see components.SurrogateFit).
	SurrogateFit() float64
}

// GammaInto implements tracker for the component store; the unit is not
// needed because all per-mode factors are memory-resident.
func (c *components) GammaInto(dst *mat.Matrix, blockID int, u *blockstore.Unit) {
	c.gammaInto(dst, blockID, u.Mode)
}

// STermMulInto implements tracker.
func (c *components) STermMulInto(dst *mat.Matrix, blockVec []int, skipMode int) {
	c.sTermMulInto(dst, blockVec, skipMode)
}

// SetA implements tracker.
func (c *components) SetA(mode, part int, a *mat.Matrix, slabU map[int]*mat.Matrix) {
	c.setA(mode, part, a, slabU)
}

// prodComponents is the divide-update tracker. It embeds the component
// store (whose per-mode state also powers the surrogate fit and the exact
// fallback when a quotient denominator is zero) and additionally maintains
// the in-place products P_l that the paper's pseudo-code revises.
type prodComponents struct {
	*components
	prod       []*mat.Matrix       // prod[l] = ⊛_h U(h)ᵀ_l A(h)_(l_h)
	gammaCache map[int]*mat.Matrix // Γ_l computed during the current update
	scratch    *mat.Matrix
}

func newProdComponents(p1 *phase1.Result) *prodComponents {
	pc := &prodComponents{
		components: newComponents(p1),
		prod:       make([]*mat.Matrix, p1.Pattern.NumBlocks()),
		gammaCache: map[int]*mat.Matrix{},
		scratch:    mat.New(p1.Rank, p1.Rank),
	}
	for id := range pc.prod {
		pc.prod[id] = mat.New(p1.Rank, p1.Rank)
		pc.prod[id].Fill(1)
	}
	return pc
}

// GammaInto divides the stored product by the mode-i factor recomputed
// from the unit's U and (old) A — the paper's P_l ⊘ (U(i)ᵀ_l A(i)_(ki)).
// If any denominator is exactly zero the quotient is undefined, so Γ is
// rebuilt from the per-mode components instead.
func (pc *prodComponents) GammaInto(dst *mat.Matrix, blockID int, u *blockstore.Unit) {
	mat.TMulInto(pc.scratch, u.U[blockID], u.A)
	for i, denom := range pc.scratch.Data {
		if denom == 0 {
			pc.components.gammaInto(dst, blockID, u.Mode)
			break
		}
		dst.Data[i] = pc.prod[blockID].Data[i] / denom
	}
	g := pc.gammaCache[blockID]
	if g == nil {
		g = mat.New(dst.Rows, dst.Cols)
		pc.gammaCache[blockID] = g
	}
	g.CopyFrom(dst)
}

// SetA folds the new mode factor back into every slab product in place:
// P_l = Γ_l ⊛ (U(i)ᵀ_l A_new) — Algorithm 2's "update P_l and Q_l using
// U(i)_l and A(i)_(ki)".
func (pc *prodComponents) SetA(mode, part int, a *mat.Matrix, slabU map[int]*mat.Matrix) {
	pc.components.setA(mode, part, a, slabU)
	for _, id := range pc.pattern.Slab(mode, part) {
		g := pc.gammaCache[id]
		if g == nil {
			// Seeding (no prior Γ): build the product from the per-mode
			// components, which setA just refreshed.
			pc.components.gammaInto(pc.prod[id], id, -1)
			continue
		}
		mat.TMulInto(pc.scratch, slabU[id], a)
		for i := range pc.prod[id].Data {
			pc.prod[id].Data[i] = g.Data[i] * pc.scratch.Data[i]
		}
		delete(pc.gammaCache, id)
	}
}

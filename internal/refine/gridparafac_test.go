package refine

import (
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

func TestGridParafacRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	x := lowRank(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	res, err := RunGridParafac(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		MaxVirtualIters: 80, Tol: 1e-8,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	kt := cpals.NewKTensor(res.Factors)
	if fit := kt.Fit(x); fit < 0.98 {
		t.Fatalf("grid-PARAFAC fit = %g", fit)
	}
}

func TestGridParafacDeterministicAcrossWorkers(t *testing.T) {
	// The Jacobi-style pass reads only pre-pass state, so results must not
	// depend on goroutine scheduling.
	rng := rand.New(rand.NewSource(71))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 3)
	run := func(workers int) *Result {
		res, err := RunGridParafac(Config{
			Phase1: p1, Store: blockstore.NewMemStore(),
			MaxVirtualIters: 10, Tol: 1e-12,
		}, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for m := range a.Factors {
		if !a.Factors[m].Equal(b.Factors[m]) {
			t.Fatalf("mode %d factors depend on worker count", m)
		}
	}
	for i := range a.FitTrace {
		if a.FitTrace[i] != b.FitTrace[i] {
			t.Fatal("fit trace depends on worker count")
		}
	}
}

func TestGridParafacSurrogateMonotone(t *testing.T) {
	// Jacobi block updates are not guaranteed monotone in general, but on
	// well-conditioned dense problems the trace should be non-decreasing;
	// use it as a numerical sanity check.
	rng := rand.New(rand.NewSource(72))
	x := lowRank(rng, 3, 8, 6, 4)
	p := grid.MustNew([]int{8, 6, 4}, []int{2, 3, 2})
	p1 := runPhase1(t, x, p, 3)
	res, err := RunGridParafac(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		MaxVirtualIters: 15, Tol: 1e-12,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FitTrace); i++ {
		if res.FitTrace[i] < res.FitTrace[i-1]-1e-6 {
			t.Fatalf("fit decreased at %d: %v", i, res.FitTrace)
		}
	}
}

func TestGridParafacIOCostHigherThanBuffered(t *testing.T) {
	// The paper's point: [22] re-reads and re-writes every unit on every
	// pass; 2PCP's buffered engine with a reasonable buffer fetches far
	// less. Compare store read counts for the same iteration budget.
	rng := rand.New(rand.NewSource(73))
	x := tensor.RandomDense(rng, 16, 16, 16)
	p := grid.UniformCube(3, 16, 4)
	p1 := runPhase1(t, x, p, 2)

	gpStore := blockstore.NewMemStore()
	if _, err := RunGridParafac(Config{
		Phase1: p1, Store: gpStore,
		MaxVirtualIters: 10, Tol: 1e-12,
	}, 0); err != nil {
		t.Fatal(err)
	}
	gpReads := gpStore.Stats().Reads

	e := newEngine(t, p1, schedule.HilbertOrder, buffer.Forward, 1)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bufferedReads := int64(res.BufferStats.Fetches)
	if bufferedReads >= gpReads {
		t.Fatalf("buffered engine reads %d, grid-PARAFAC %d — expected buffering to win",
			bufferedReads, gpReads)
	}
}

func TestGridParafacValidation(t *testing.T) {
	if _, err := RunGridParafac(Config{}, 0); err == nil {
		t.Fatal("empty config accepted")
	}
}

package refine

import (
	"errors"
	"math"
	"testing"
	"time"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/runstate"
	"twopcp/internal/schedule"
)

// TestStopDrainsAndCheckpointResumesBitExact: closing Stop mid-run drains
// gracefully (checkpoint written, ErrStopped returned) and resuming the
// checkpoint finishes bit-identical to an uninterrupted run.
func TestStopDrainsAndCheckpointResumesBitExact(t *testing.T) {
	p1 := resumePhase1(t)
	base := Config{
		Phase1: p1, Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 6, Tol: math.Inf(-1), Seed: 5,
	}

	plainCfg := base
	plainCfg.Store = blockstore.NewMemStore()
	eng, err := New(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rs, err := runstate.Open(dir, resumeMeta(), 27, false)
	if err != nil {
		t.Fatal(err)
	}
	// Trip the stop signal from inside the run: a wrapper store counts
	// Gets and closes Stop partway through. The engine checks Stop at
	// step boundaries, so this models a SIGTERM landing mid-phase-2.
	stop := make(chan struct{})
	stopCfg := base
	stopCfg.Store = &stopAfterReads{inner: blockstore.NewMemStore(), after: 5, stop: stop}
	stopCfg.Stop = stop
	stopCfg.Checkpoint = rs
	stopCfg.CheckpointEverySteps = 4
	eng2, err := New(stopCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng2.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}

	rs2, err := runstate.Open(dir, resumeMeta(), 27, true)
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := base
	resumeCfg.Store = blockstore.NewMemStore()
	resumeCfg.Checkpoint = rs2
	eng3, err := New(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng3.Run()
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	sameTrace(t, "drained+resumed", res.FitTrace, plain.FitTrace)
	sameFactors(t, "drained+resumed", res, plain)
}

// stopAfterReads closes stop after `after` Gets (test trigger for a
// mid-run drain signal).
type stopAfterReads struct {
	inner  blockstore.Store
	after  int
	reads  int
	stop   chan struct{}
	closed bool
}

func (s *stopAfterReads) Get(mode, part int) (*blockstore.Unit, error) {
	s.reads++
	if s.reads >= s.after && !s.closed {
		s.closed = true
		close(s.stop)
	}
	return s.inner.Get(mode, part)
}

func (s *stopAfterReads) Put(u *blockstore.Unit) error { return s.inner.Put(u) }
func (s *stopAfterReads) Stats() blockstore.Stats      { return s.inner.Stats() }
func (s *stopAfterReads) ResetStats()                  { s.inner.ResetStats() }
func (s *stopAfterReads) Close() error                 { return s.inner.Close() }

// TestStopWithoutCheckpointReturnsErrStopped: a drain without a
// checkpointer still stops cleanly (nothing to save, no panic).
func TestStopWithoutCheckpointReturnsErrStopped(t *testing.T) {
	p1 := resumePhase1(t)
	stop := make(chan struct{})
	close(stop)
	cfg := Config{
		Phase1: p1, Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 6, Tol: math.Inf(-1), Seed: 5,
		Store: blockstore.NewMemStore(), Stop: stop,
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// TestEmergencyCheckpointOnWriteBackFailure: when an asynchronous
// write-back fails past its retry budget, the engine writes an emergency
// checkpoint before surfacing the error — and resuming that checkpoint
// over a healed store finishes bit-identical to an uninterrupted run.
func TestEmergencyCheckpointOnWriteBackFailure(t *testing.T) {
	p1 := resumePhase1(t)
	base := Config{
		Phase1: p1, Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		// Tight buffer forces evictions (and so write-backs) early.
		BufferFraction: 0.34, MaxVirtualIters: 6, Tol: math.Inf(-1), Seed: 5,
		PrefetchDepth: 2, IOWorkers: 2,
	}

	plainCfg := base
	plainCfg.Store = blockstore.NewMemStore()
	eng, err := New(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rs, err := runstate.Open(dir, resumeMeta(), 27, false)
	if err != nil {
		t.Fatal(err)
	}
	faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
	failCfg := base
	failCfg.Store = faulty
	failCfg.Checkpoint = rs
	failCfg.CheckpointEverySteps = 4
	failCfg.Retry = blockstore.RetryPolicy{
		MaxRetries: 1, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 50 * time.Microsecond, Seed: 3,
	}
	eng2, err := New(failCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded write outage starting mid-run: the background write-back
	// exhausts its budget and the next step-boundary Acquire surfaces it.
	faulty.SetPlan(blockstore.FaultPlan{WriteOutageFrom: 20, WriteOutageLen: 1 << 40})
	_, err = eng2.Run()
	if err == nil {
		t.Fatal("run over a dead store succeeded")
	}
	if !errors.Is(err, buffer.ErrAsyncWriteBack) {
		t.Fatalf("err = %v, want wrapped buffer.ErrAsyncWriteBack", err)
	}

	// The emergency checkpoint (or an earlier regular one) must leave the
	// directory resumable — and the resume must be bit-exact.
	rs2, err := runstate.Open(dir, resumeMeta(), 27, true)
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := base
	resumeCfg.Store = blockstore.NewMemStore()
	resumeCfg.Checkpoint = rs2
	eng3, err := New(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng3.Run()
	if err != nil {
		t.Fatalf("resume after emergency checkpoint: %v", err)
	}
	sameTrace(t, "emergency-resumed", res.FitTrace, plain.FitTrace)
	sameFactors(t, "emergency-resumed", res, plain)
}

package refine

import (
	"fmt"
	"runtime"
	"sync"

	"twopcp/internal/blockstore"
	"twopcp/internal/mat"
)

// RunGridParafac executes the original mode-centric grid-PARAFAC iteration
// of Phan & Cichocki [22] that the paper's Algorithm 1 restructures: for
// each mode, ALL partitions are updated in parallel from the *current*
// (pre-pass) P and Q, and the P/Q revisions happen afterwards "using a
// separate loop for each mode to optimize for parallelism" (paper §IV,
// Observation #2). Contrast with Engine.Run, whose in-place updates let
// later partitions see earlier revisions within the same pass.
//
// The parallel pass requires every unit of the active mode to be resident
// simultaneously — the memory-hungry behaviour 2PCP's buffered, fine-
// grained scheduling removes. I/O is counted as one store read per unit per
// mode pass plus one write back, reported through Result.StoreStats;
// Result.BufferStats is zero because no buffer manager is involved.
//
// Workers bounds the per-mode parallelism (0 = GOMAXPROCS).
func RunGridParafac(cfg Config, workers int) (*Result, error) {
	if cfg.Phase1 == nil || cfg.Store == nil {
		return nil, fmt.Errorf("refine: Phase1 and Store are required")
	}
	if cfg.MaxVirtualIters <= 0 {
		cfg.MaxVirtualIters = 100
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-2
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Reuse the engine's setup: units in the store, components seeded.
	e := &Engine{cfg: cfg, pattern: cfg.Phase1.Pattern}
	if err := e.prepareUnits(e.factorSeeder(nil)); err != nil {
		return nil, err
	}
	e.comps = newComponents(cfg.Phase1)
	e.seedComponents(e.factorSeeder(nil))

	p := e.pattern
	rank := cfg.Phase1.Rank
	res := &Result{}
	prevFit := e.comps.SurrogateFit()

	for iter := 0; iter < cfg.MaxVirtualIters; iter++ {
		for mode := 0; mode < p.NModes(); mode++ {
			// Load every unit of the mode (the [22] working set).
			units := make([]*blockstore.Unit, p.K[mode])
			for part := range units {
				u, err := cfg.Store.Get(mode, part)
				if err != nil {
					return nil, err
				}
				units[part] = u
			}
			// Parallel Jacobi-style pass: all partitions solve against the
			// same pre-pass components.
			newA := make([]*mat.Matrix, p.K[mode])
			var wg sync.WaitGroup
			sem := make(chan struct{}, workers)
			errs := make([]error, p.K[mode])
			for part := range units {
				wg.Add(1)
				sem <- struct{}{}
				go func(part int) {
					defer wg.Done()
					defer func() { <-sem }()
					newA[part] = e.solvePartition(units[part], rank)
					_ = errs
				}(part)
			}
			wg.Wait()
			// Separate revision loop: install the new factors, refresh
			// P and Q, write the units back.
			for part, u := range units {
				u.A = newA[part]
				e.comps.SetA(mode, part, u.A, u.U)
				if err := cfg.Store.Put(u); err != nil {
					return nil, err
				}
			}
		}
		res.VirtualIters++
		fit := e.comps.SurrogateFit()
		res.FitTrace = append(res.FitTrace, fit)
		improvement := fit - prevFit
		prevFit = fit
		if improvement < cfg.Tol && res.VirtualIters > 1 {
			res.Converged = true
			break
		}
	}
	res.StoreStats = cfg.Store.Stats()
	factors, err := e.AssembleFactors()
	if err != nil {
		return nil, err
	}
	res.Factors = factors
	return res, nil
}

// solvePartition computes the grid-PARAFAC least-squares solution for one
// partition without touching shared scratch (safe for concurrent use).
func (e *Engine) solvePartition(u *blockstore.Unit, rank int) *mat.Matrix {
	mode, part := u.Mode, u.Part
	_, rows := e.pattern.ModeRange(mode, part)
	t := mat.New(rows, rank)
	s := mat.New(rank, rank)
	g := mat.New(rank, rank)
	term := mat.New(rank, rank)
	vec := make([]int, e.pattern.NModes())
	for _, id := range e.pattern.Slab(mode, part) {
		e.pattern.Unlinear(id, vec)
		e.comps.GammaInto(g, id, u)
		mat.MulAddInto(t, u.U[id], g)
		term.Fill(1)
		e.comps.STermMulInto(term, vec, mode)
		s.AddInPlace(term)
	}
	return mat.RightSolveSPD(t, s)
}

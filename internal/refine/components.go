// Package refine implements Phase 2 of 2PCP (paper §IV–VII): the iterative
// refinement that stitches the Phase-1 sub-factors U(i)_k into the full
// factor matrices A(i) of the input tensor, scheduled either mode-centric
// (Algorithm 1) or block-centric (Algorithm 2) over a buffer-managed store
// of mode-partition data units.
//
// Update rule (from Phan & Cichocki's grid PARAFAC, the paper's eq. 3):
//
//	A(i)_(ki) ← T(i)_(ki) · (S(i)_(ki))⁻¹
//	T(i)_(ki) = Σ_{l: l_i=ki} U(i)_l · ⊛_{h≠i} (U(h)ᵀ_l A(h)_(l_h))
//	S(i)_(ki) = Σ_{l: l_i=ki} ⊛_{h≠i} (A(h)ᵀ_(l_h) A(h)_(l_h))
//
// The F×F products P[l][h] = U(h)ᵀ_l A(h)_(l_h) and Q[h][kh] =
// A(h)ᵀ_(kh)A(h)_(kh) are maintained incrementally in memory as per-mode
// components; the paper's Hadamard-division form P_l ⊘ (U(i)ᵀ_l A(i)_(ki))
// is recovered by multiplying the h≠i components, which is algebraically
// identical and avoids 0/0 (see DESIGN.md). Only the data units
// {A(i)_(ki); U(i)_slab} ever move between disk and buffer, exactly as in
// the paper's Definition 4.
package refine

import (
	"math"

	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
)

// components holds the memory-resident F×F bookkeeping of Phase 2.
type components struct {
	pattern *grid.Pattern
	rank    int
	// p[blockID][mode] = U(mode)ᵀ_l A(mode)_(l_mode); the per-mode factor
	// of the paper's P_l.
	p [][]*mat.Matrix
	// ugram[blockID][mode] = U(mode)ᵀ_l U(mode)_l, fixed after Phase 1;
	// used for the I/O-free surrogate fit.
	ugram [][]*mat.Matrix
	// q[mode][part] = A(mode)ᵀ_(part) A(mode)_(part); the per-mode factor
	// of the paper's Q_l.
	q [][]*mat.Matrix
	// unorm2 = Σ_l ‖[[U_l]]‖², the surrogate data norm.
	unorm2 float64
	// SurrogateFit scratch, reused across termination checks (the engine
	// runs single-threaded, so plain fields suffice): two F×F Hadamard
	// accumulators, the all-ones weight vector and a block-vector buffer.
	fitCross *mat.Matrix
	fitModel *mat.Matrix
	fitOnes  []float64
	fitVec   []int
}

func newComponents(p1 *phase1.Result) *components {
	p := p1.Pattern
	n := p.NModes()
	c := &components{pattern: p, rank: p1.Rank}
	c.p = make([][]*mat.Matrix, p.NumBlocks())
	c.ugram = make([][]*mat.Matrix, p.NumBlocks())
	for id := range c.p {
		c.p[id] = make([]*mat.Matrix, n)
		c.ugram[id] = make([]*mat.Matrix, n)
		for m := 0; m < n; m++ {
			c.ugram[id][m] = mat.Gram(p1.Sub[id][m])
		}
	}
	c.q = make([][]*mat.Matrix, n)
	for m := 0; m < n; m++ {
		c.q[m] = make([]*mat.Matrix, p.K[m])
	}
	c.fitCross = mat.New(p1.Rank, p1.Rank)
	c.fitModel = mat.New(p1.Rank, p1.Rank)
	c.fitOnes = onesVec(p1.Rank)
	c.fitVec = make([]int, n)
	// ‖[[U_l]]‖² = 1ᵀ(⊛_h U(h)ᵀU(h))1 per block.
	for id := range c.ugram {
		hadamardAllModesInto(c.fitCross, c.ugram[id], -1)
		c.unorm2 += mat.QuadForm(c.fitCross, c.fitOnes, c.fitOnes)
	}
	return c
}

// setA refreshes the components that depend on A(mode)_(part): the Gram
// q[mode][part] and, for every block l in the mode slab, p[l][mode] given
// that block's U(mode)_l (supplied by the caller from the acquired unit).
func (c *components) setA(mode, part int, a *mat.Matrix, slabU map[int]*mat.Matrix) {
	if c.q[mode][part] == nil {
		c.q[mode][part] = mat.New(c.rank, c.rank)
	}
	mat.GramInto(c.q[mode][part], a)
	for _, id := range c.pattern.Slab(mode, part) {
		u := slabU[id]
		if c.p[id][mode] == nil {
			c.p[id][mode] = mat.New(c.rank, c.rank)
		}
		mat.TMulInto(c.p[id][mode], u, a)
	}
}

// gammaInto computes Γ_l^(i) = ⊛_{h≠i} P[l][h] — the paper's
// P_l ⊘ (U(i)ᵀ_l A(i)_(ki)) — into dst, avoiding allocation in the hot loop.
// Modes whose component is not yet seeded are treated as identity (they
// only occur transiently during setup).
func (c *components) gammaInto(dst *mat.Matrix, blockID, skipMode int) {
	dst.Fill(1)
	for h, m := range c.p[blockID] {
		if h == skipMode || m == nil {
			continue
		}
		dst.HadamardInPlace(m)
	}
}

// sTermMulInto multiplies dst element-wise by ⊛_{h≠i} Q[h][l_h]; callers
// accumulating S pre-fill a scratch matrix with ones.
func (c *components) sTermMulInto(dst *mat.Matrix, blockVec []int, skipMode int) {
	for h, kh := range blockVec {
		if h == skipMode {
			continue
		}
		dst.HadamardInPlace(c.q[h][kh])
	}
}

// SurrogateFit returns the fit of the current grid model against the
// Phase-1 surrogate ⋃_l [[U_l]] — computable entirely from memory-resident
// components, so the termination check (paper Definition 3, virtual
// iterations) costs no I/O:
//
//	‖X̃ − X̂‖² = Σ_l ( ‖[[U_l]]‖² − 2·1ᵀ(⊛_h P[l][h])1 + 1ᵀ(⊛_h Q_l)1 )
func (c *components) SurrogateFit() float64 {
	if c.unorm2 == 0 {
		return 1
	}
	ones := c.fitOnes
	var err2 float64
	vec := c.fitVec
	for id := range c.p {
		c.pattern.Unlinear(id, vec)
		hadamardAllModesInto(c.fitCross, c.p[id], -1)
		cross := mat.QuadForm(c.fitCross, ones, ones)
		c.fitModel.Fill(1)
		c.sTermMulInto(c.fitModel, vec, -1)
		model := mat.QuadForm(c.fitModel, ones, ones)
		err2 += -2*cross + model
	}
	err2 += c.unorm2
	if err2 < 0 {
		err2 = 0
	}
	return 1 - math.Sqrt(err2)/math.Sqrt(c.unorm2)
}

// hadamardAllModesInto multiplies the given per-mode F×F matrices
// element-wise into dst, skipping index skip (-1 to include all) and
// unseeded (nil) entries.
func hadamardAllModesInto(dst *mat.Matrix, ms []*mat.Matrix, skip int) {
	dst.Fill(1)
	for h, m := range ms {
		if h == skip || m == nil {
			continue
		}
		dst.HadamardInPlace(m)
	}
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

package refine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/obs"
	"twopcp/internal/phase1"
	"twopcp/internal/runstate"
	"twopcp/internal/schedule"
)

// ErrStopped is returned by Run when Config.Stop was closed: the engine
// finished the in-flight schedule step, wrote a checkpoint at the step
// boundary (when checkpointing is configured) and returned. A later run
// with the same Checkpointer resumes bit-exactly from that boundary.
var ErrStopped = errors.New("refine: stopped before completion")

// InitKind selects how the full-factor partitions A(i)_(ki) are seeded.
type InitKind int

const (
	// InitReference seeds A(i)_(ki) with the mode-i sub-factor of a
	// reference block in the partition's slab (falling back to random for
	// empty slabs). This matches the grid-PARAFAC practice of starting the
	// stitching from Phase-1 output.
	InitReference InitKind = iota
	// InitRandom seeds every partition with uniform [0,1) noise.
	InitRandom
)

// Config assembles a Phase-2 engine.
type Config struct {
	// Phase1 supplies the per-block sub-factors (required).
	Phase1 *phase1.Result
	// Store receives the data units; Phase 2's I/O flows through it
	// (required). Use blockstore.NewMemStore for counted simulation or
	// NewFileStore for true out-of-core runs.
	Store blockstore.Store
	// Schedule picks the update schedule (paper §V–VI).
	Schedule schedule.Kind
	// Policy picks the buffer replacement strategy (paper §VII).
	Policy buffer.Policy
	// BufferFraction sizes the buffer as a fraction of the total space
	// requirement (paper Table III: 1/3, 1/2, 2/3). Ignored when
	// CapacityBytes is set. Defaults to 1 (everything fits).
	BufferFraction float64
	// CapacityBytes sizes the buffer absolutely when positive.
	CapacityBytes int64
	// MaxVirtualIters bounds the virtual iterations (default 100, the
	// paper's Figure 13(a) budget).
	MaxVirtualIters int
	// Tol declares convergence when the surrogate fit improves by less
	// than Tol across a virtual iteration (default 1e-2, paper §VIII-C).
	// Pass math.Inf(-1) to disable convergence and always run
	// MaxVirtualIters (used by the I/O-measurement experiments, which run
	// "without any bound on iterations").
	Tol float64
	// Init selects factor seeding; Seed drives InitRandom.
	Init InitKind
	Seed int64
	// DivideUpdate switches the P/Q bookkeeping to the paper's literal
	// in-place Hadamard-division rule instead of the per-mode component
	// store (see divide.go). Results are identical; this exists for the
	// ablation benchmarks.
	DivideUpdate bool
	// WarmupVirtualIters runs this many virtual iterations before swap
	// counting starts (buffer statistics are reset at the boundary), so
	// experiments can report steady-state swaps per iteration without
	// cold-start pollution (paper §VIII-C.1 averages long runs). The
	// warm-up iterations do not count toward MaxVirtualIters or the trace,
	// and convergence checks are suspended during warm-up.
	WarmupVirtualIters int
	// PrefetchDepth is how many schedule steps ahead the engine issues
	// buffer prefetches while updating the current step, overlapping the
	// next steps' unit I/O with this step's compute. 0 (the default) keeps
	// Phase 2 fully synchronous. Update order is independent of the depth,
	// so FitTrace, the final factors and the buffer's swap statistics are
	// identical at every depth. StoreStats may count a few extra reads at
	// depth > 0 — prefetches issued for steps that never ran, or wasted
	// because the unit was evicted before its use.
	PrefetchDepth int
	// IOWorkers sizes the buffer manager's asynchronous I/O pool (prefetch
	// and background write-back goroutines). Defaults to 2 when
	// PrefetchDepth > 0, else 0 (synchronous).
	IOWorkers int
	// Solver picks the per-partition row update (nil = least squares,
	// bit-for-bit the historical path): the grid-PARAFAC rule solves
	// A(i)_(ki)·S = T, and constrained solvers replace that solve while
	// keeping T and S — and therefore the P/Q component bookkeeping and
	// SurrogateFit — unchanged. Warm-start solvers (Nonnegative) iterate
	// from the pinned unit's current A, which in Phase 2 already carries
	// the model's true scale (identity core: no λ to unfold). The update
	// stays deterministic at every worker count, prefetch depth and
	// checkpoint cadence because the solve itself is serial and the
	// engine's update order is schedule-driven.
	Solver cpals.Solver
	// Checkpoint, when non-nil, makes the refinement durable: the engine
	// checkpoints its complete mutable state at schedule-step boundaries
	// (see Checkpointer) and, when the Checkpointer already holds a
	// checkpoint, resumes from it — skipping every step up to the
	// checkpoint and replaying the rest bit-for-bit. Incompatible with
	// DivideUpdate (that tracker's state is accumulated in place and is
	// not reconstructible from a checkpoint).
	Checkpoint Checkpointer
	// CheckpointEverySteps is the checkpoint cadence in schedule steps
	// (default: one full cycle; 1 checkpoints after every block position).
	CheckpointEverySteps int
	// Obs receives telemetry: phase2.step events per scheduled access,
	// phase2.iter events per virtual iteration, live fit/progress gauges,
	// and — through the buffer manager — the buffer's trace events and
	// counters. When checkpointing, the registry's counters are persisted
	// into the Phase-2 state and restored on resume. Nil disables it at
	// ~zero cost.
	Obs *obs.Observer
	// Retry threads the resilience policy into the buffer manager: its
	// MaxRetries budget bounds the in-job retries of background
	// write-backs. (Per-Get/Put retrying itself lives in the store stack —
	// wrap Store with blockstore.Resilient; the engine is agnostic to
	// it.) Like the parallelism knobs, Retry cannot change what the run
	// computes.
	Retry blockstore.RetryPolicy
	// Stop, when non-nil and closed, drains the run gracefully: the
	// in-flight step finishes, a checkpoint is written at the boundary
	// (when Checkpoint is set) and Run returns ErrStopped.
	Stop <-chan struct{}
}

// Result reports a Phase-2 run.
type Result struct {
	// Factors are the assembled full factor matrices A(i), one per mode.
	Factors []*mat.Matrix
	// VirtualIters is the number of completed virtual iterations.
	VirtualIters int
	// Converged is true when Tol fired before MaxVirtualIters.
	Converged bool
	// FitTrace holds the surrogate fit after each virtual iteration.
	FitTrace []float64
	// BufferStats exposes the paper's headline metric: Fetches = swaps.
	BufferStats buffer.Stats
	// StoreStats counts store traffic (unit reads/writes incl. setup).
	StoreStats blockstore.Stats
	// SwapsPerVirtualIter = BufferStats.Fetches / VirtualIters.
	SwapsPerVirtualIter float64
}

// Engine runs Phase 2. Create with New, run once with Run.
type Engine struct {
	cfg     Config
	pattern *grid.Pattern
	sched   *schedule.Schedule
	comps   tracker
	mgr     *buffer.Manager
	solver  cpals.Solver

	// Hot-loop scratch (see update). scratchMTTKRP holds one rows×rank
	// accumulator per distinct partition row count.
	scratchS      *mat.Matrix
	scratchG      *mat.Matrix
	scratchT      *mat.Matrix
	scratchVec    []int
	scratchMTTKRP map[int]*mat.Matrix
	solverScratch cpals.SolverScratch

	// Checkpoint state (only populated when cfg.Checkpoint != nil).
	// curA[mode][part] tracks the current factor partition so a checkpoint
	// never has to read units back; the matrices are replaced, never
	// mutated, so holding references is safe. statsOffset carries the
	// resumed run's pre-crash store traffic; the start* fields position
	// Run at the restored step.
	curA        [][]*mat.Matrix
	ckptEvery   int
	statsOffset blockstore.Stats
	resumed     bool

	// Telemetry handles (nil-checked on the hot path).
	cUpdates        *obs.Counter
	gFit            *obs.Gauge
	gIters          *obs.Gauge
	startStep       int
	startPos        int
	startUpdates    int
	startVirtIters  int
	startTrace      []float64
	startPrevFit    float64
	startWarmupLeft int
}

// New validates cfg, prepares the data units in the store, initializes the
// in-memory components and builds the buffer manager.
func New(cfg Config) (*Engine, error) {
	if cfg.Phase1 == nil || cfg.Store == nil {
		return nil, fmt.Errorf("refine: Phase1 and Store are required")
	}
	if cfg.MaxVirtualIters <= 0 {
		cfg.MaxVirtualIters = 100
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-2
	}
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 1
	}
	if cfg.PrefetchDepth > 0 && cfg.IOWorkers <= 0 {
		cfg.IOWorkers = 2
	}
	if cfg.Checkpoint != nil && cfg.DivideUpdate {
		return nil, fmt.Errorf("refine: Checkpoint is incompatible with DivideUpdate (in-place tracker state is not restorable)")
	}
	if err := cpals.ValidateSolver(cfg.Solver); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	p := cfg.Phase1.Pattern
	e := &Engine{
		cfg:      cfg,
		pattern:  p,
		solver:   cfg.Solver,
		cUpdates: cfg.Obs.Counter("phase2.updates"),
		gFit:     cfg.Obs.Gauge("phase2.fit"),
		gIters:   cfg.Obs.Gauge("phase2.virtual_iters"),
	}
	if e.solver == nil {
		e.solver = cpals.LeastSquares{}
	}
	e.sched = schedule.New(cfg.Schedule, p)

	// A pre-existing checkpoint replaces the seeded factors wholesale; it
	// is loaded and validated before anything derives state from seeds.
	var restored *runstate.Phase2State
	if cfg.Checkpoint != nil {
		st, ok, err := cfg.Checkpoint.LoadPhase2()
		if err != nil {
			return nil, err
		}
		if ok {
			if err := e.validateState(st); err != nil {
				return nil, err
			}
			restored = st
		}
		e.curA = make([][]*mat.Matrix, p.NModes())
		for mode := range e.curA {
			e.curA[mode] = make([]*mat.Matrix, p.K[mode])
		}
		e.ckptEvery = cfg.CheckpointEverySteps
		if e.ckptEvery <= 0 {
			e.ckptEvery = len(e.sched.Steps)
		}
	}

	if err := e.prepareUnits(e.factorSeeder(restored)); err != nil {
		return nil, err
	}
	if cfg.DivideUpdate {
		e.comps = newProdComponents(cfg.Phase1)
	} else {
		e.comps = newComponents(cfg.Phase1)
	}
	e.seedComponents(e.factorSeeder(restored))

	capacity := cfg.CapacityBytes
	if capacity <= 0 {
		capacity = int64(cfg.BufferFraction * float64(schedule.TotalBytes(p, cfg.Phase1.Rank)))
	}
	mgr, err := buffer.NewManager(buffer.Config{
		Store:            cfg.Store,
		Pattern:          p,
		CapacityBytes:    capacity,
		Policy:           cfg.Policy,
		Schedule:         e.sched,
		Workers:          cfg.IOWorkers,
		Rank:             cfg.Phase1.Rank,
		WriteBackRetries: cfg.Retry.MaxRetries,
		Obs:              cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	e.mgr = mgr
	if restored != nil {
		if err := e.restoreFromState(restored); err != nil {
			mgr.Close()
			return nil, err
		}
	}
	return e, nil
}

// factorSeeder returns the A(mode)_(part) source used to seed the store
// and the components: the checkpointed factors when resuming, otherwise
// the usual deterministic initialization (each call site builds its own
// seeder so the RNG draw sequence matches the original seeding exactly).
func (e *Engine) factorSeeder(restored *runstate.Phase2State) func(mode, part int) *mat.Matrix {
	if restored != nil {
		return func(mode, part int) *mat.Matrix { return restored.A[mode][part] }
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	return func(mode, part int) *mat.Matrix { return e.initialA(mode, part, rng) }
}

// initialA builds the seed for A(mode)_(part).
func (e *Engine) initialA(mode, part int, rng *rand.Rand) *mat.Matrix {
	_, rows := e.pattern.ModeRange(mode, part)
	rank := e.cfg.Phase1.Rank
	if e.cfg.Init == InitRandom {
		return mat.Random(rows, rank, rng)
	}
	// Reference: the first block in the slab with a non-empty U(mode).
	for _, id := range e.pattern.Slab(mode, part) {
		u := e.cfg.Phase1.Sub[id][mode]
		if u.MaxAbs() > 0 {
			return u.Clone()
		}
	}
	return mat.Random(rows, rank, rng)
}

// prepareUnits writes every ⟨mode, part⟩ unit into the store: the seeded
// (or checkpoint-restored) A(i)_(ki) plus the slab's Phase-1 U(i)_l
// matrices. On resume this is what makes the store consistent with the
// checkpoint regardless of where the previous process died — the store's
// A values are never trusted across a restart, they are always rewritten
// from the seeder.
func (e *Engine) prepareUnits(seed func(mode, part int) *mat.Matrix) error {
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		for part := 0; part < e.pattern.K[mode]; part++ {
			u := &blockstore.Unit{
				Mode: mode,
				Part: part,
				A:    seed(mode, part),
				U:    make(map[int]*mat.Matrix),
			}
			for _, id := range e.pattern.Slab(mode, part) {
				u.U[id] = e.cfg.Phase1.Sub[id][mode]
			}
			if err := e.cfg.Store.Put(u); err != nil {
				return err
			}
		}
	}
	return nil
}

// seedComponents computes the initial P and Q from the seeded A parts.
// The store was just seeded by prepareUnits; rather than reading every
// unit back, regenerate the same initial A deterministically (same seed,
// same generation order — or reuse the checkpointed factors when
// resuming), sparing a full store sweep at setup. The components are pure
// functions of the current A and the Phase-1 U, which is exactly why a
// resumed engine's P/Q state is bit-identical to the uninterrupted run's
// at the checkpoint. The stats reset wipes the prepareUnits writes so
// setup traffic is never counted as swaps.
func (e *Engine) seedComponents(seed func(mode, part int) *mat.Matrix) {
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		for part := 0; part < e.pattern.K[mode]; part++ {
			slabU := make(map[int]*mat.Matrix)
			for _, id := range e.pattern.Slab(mode, part) {
				slabU[id] = e.cfg.Phase1.Sub[id][mode]
			}
			a := seed(mode, part)
			e.comps.SetA(mode, part, a, slabU)
			if e.curA != nil {
				e.curA[mode][part] = a
			}
		}
	}
	e.cfg.Store.ResetStats()
}

// update applies the grid-PARAFAC rule to A(mode)_(part) using the pinned
// unit, then refreshes the dependent P and Q components in place
// (Algorithm 2 step ii). Scratch matrices are reused across calls — this
// is Phase 2's hot loop.
func (e *Engine) update(u *blockstore.Unit) {
	mode, part := u.Mode, u.Part
	rank := e.cfg.Phase1.Rank
	_, rows := e.pattern.ModeRange(mode, part)
	if e.scratchS == nil {
		e.scratchS = mat.New(rank, rank)
		e.scratchG = mat.New(rank, rank)
		e.scratchT = mat.New(rank, rank)
		e.scratchVec = make([]int, e.pattern.NModes())
		e.scratchMTTKRP = make(map[int]*mat.Matrix)
	}
	t := e.scratchMTTKRP[rows]
	if t == nil {
		t = mat.New(rows, rank)
		e.scratchMTTKRP[rows] = t
	} else {
		t.Zero()
	}
	s, g, term, vec := e.scratchS, e.scratchG, e.scratchT, e.scratchVec
	s.Zero()
	for _, id := range e.pattern.Slab(mode, part) {
		e.pattern.Unlinear(id, vec)
		e.comps.GammaInto(g, id, u)
		mat.MulAddInto(t, u.U[id], g)
		term.Fill(1)
		e.comps.STermMulInto(term, vec, mode)
		s.AddInPlace(term)
	}
	aNew := mat.New(rows, rank)
	if e.solver.WarmStart() {
		aNew.CopyFrom(u.A)
	}
	e.solver.Solve(aNew, t, s, &e.solverScratch)
	u.A = aNew
	e.comps.SetA(mode, part, aNew, u.U)
	if e.curA != nil {
		e.curA[mode][part] = aNew
	}
}

// prefetchAhead hands the buffer manager the accesses of the next
// PrefetchDepth schedule steps as prefetch hints. pos is the engine's
// position in the cyclic access string (= the first access of step
// si+1), so the hints are exactly the units the upcoming Acquires will
// demand, in demand order. Issued after the current step's acquires and
// before its updates, the fetches overlap this step's compute.
func (e *Engine) prefetchAhead(si, pos int) {
	depth := e.cfg.PrefetchDepth
	if depth <= 0 {
		return
	}
	n := 0
	steps := len(e.sched.Steps)
	for j := 1; j <= depth; j++ {
		n += len(e.sched.Steps[(si+j)%steps].Accesses)
	}
	for _, a := range e.sched.Upcoming(pos, n) {
		e.mgr.Prefetch(a.Mode, a.Part)
	}
}

// Run executes the refinement until convergence or MaxVirtualIters and
// returns the assembled factors plus I/O statistics. Run may be called
// once; it shuts the buffer manager's I/O pipeline down on return.
func (e *Engine) Run() (*Result, error) {
	defer e.mgr.Close()
	res := &Result{}
	virtLen := e.sched.VirtualIterationLength()
	updates := 0
	warmupLeft := e.cfg.WarmupVirtualIters
	var prevFit float64
	if !e.resumed {
		prevFit = e.comps.SurrogateFit()
	}
	done := false
	// Termination is only evaluated once every block position has been
	// visited at least once — i.e. from the second full cycle on (paper
	// Figure 7). A block-centric cycle spans many virtual iterations, and
	// a fit plateau before the first cycle completes only means the
	// not-yet-visited partitions still hold their initialization.
	minIters := int(math.Ceil(e.sched.VirtualIterationsPerCycle()))
	pos := 0       // position in the cyclic access string
	startStep := 0 // first step of the first (possibly partial) cycle
	if e.resumed {
		updates = e.startUpdates
		warmupLeft = e.startWarmupLeft
		prevFit = e.startPrevFit
		res.VirtualIters = e.startVirtIters
		res.FitTrace = e.startTrace
		pos = e.startPos
		startStep = e.startStep
	}
	stepsSinceCkpt := 0

	for !done && res.VirtualIters < e.cfg.MaxVirtualIters {
		for si := startStep; si < len(e.sched.Steps); si++ {
			// Graceful drain: a close of Stop is honored at the step
			// boundary — the position the checkpoint format can represent —
			// so the state written here resumes bit-exactly.
			if e.cfg.Stop != nil {
				select {
				case <-e.cfg.Stop:
					if e.cfg.Checkpoint != nil {
						if err := e.saveCheckpoint(si, pos, updates, res, prevFit, warmupLeft); err != nil {
							return nil, fmt.Errorf("%w: drain checkpoint failed: %w", ErrStopped, err)
						}
					}
					return nil, ErrStopped
				default:
				}
			}
			step := &e.sched.Steps[si]
			// Acquire the step's units in schedule order.
			units := make([]*blockstore.Unit, len(step.Accesses))
			for ai, a := range step.Accesses {
				u, err := e.mgr.Acquire(a.Mode, a.Part)
				if err != nil {
					// A surfaced background write-back failure reports at
					// the top of the *next* Acquire, before any buffer
					// state mutates: when it surfaces on the step's first
					// access, the engine and buffer are still exactly at
					// the boundary after step si-1, so an emergency
					// checkpoint of that boundary is consistent — the
					// checkpoint's factors come from curA, not from the
					// store the write-back failed against. Mid-step fetch
					// failures (ai > 0, or a demand Get error) have
					// already advanced the buffer clock and cannot be
					// checkpointed; they surface as-is.
					if ai == 0 && e.cfg.Checkpoint != nil && errors.Is(err, buffer.ErrAsyncWriteBack) {
						if ckErr := e.saveCheckpoint(si, pos, updates, res, prevFit, warmupLeft); ckErr == nil {
							return nil, fmt.Errorf("refine: emergency checkpoint written at step %d: %w", si, err)
						}
					}
					return nil, err
				}
				units[ai] = u
				if e.cfg.Obs.Tracing() {
					e.cfg.Obs.Emit("phase2.step",
						obs.Int("step", si), obs.Int("mode", a.Mode), obs.Int("part", a.Part))
				}
			}
			pos = (pos + len(step.Accesses)) % e.sched.UpdatesPerCycle()
			// Stage the next steps' units while this step computes.
			e.prefetchAhead(si, pos)
			for _, u := range units {
				if done {
					break
				}
				e.update(u)
				updates++
				if e.cUpdates != nil {
					e.cUpdates.Inc()
				}
				if updates%virtLen == 0 {
					if warmupLeft > 0 {
						warmupLeft--
						if warmupLeft == 0 {
							e.mgr.ResetStats()
						}
						prevFit = e.comps.SurrogateFit()
						continue
					}
					res.VirtualIters++
					fit := e.comps.SurrogateFit()
					res.FitTrace = append(res.FitTrace, fit)
					if e.gFit != nil {
						e.gFit.Set(fit)
						e.gIters.Set(float64(res.VirtualIters))
					}
					if e.cfg.Obs.Tracing() {
						e.cfg.Obs.Emit("phase2.iter",
							obs.Int("iter", res.VirtualIters), obs.F64("fit", fit))
					}
					improvement := fit - prevFit
					prevFit = fit
					if improvement < e.cfg.Tol && res.VirtualIters > minIters {
						res.Converged = true
						done = true
					}
					if res.VirtualIters >= e.cfg.MaxVirtualIters {
						done = true
					}
				}
			}
			for _, a := range step.Accesses {
				e.mgr.Release(a.Mode, a.Part, true)
			}
			if done {
				break
			}
			if e.cfg.Checkpoint != nil {
				stepsSinceCkpt++
				if stepsSinceCkpt >= e.ckptEvery {
					next := (si + 1) % len(e.sched.Steps)
					if err := e.saveCheckpoint(next, pos, updates, res, prevFit, warmupLeft); err != nil {
						return nil, err
					}
					stepsSinceCkpt = 0
				}
			}
		}
		startStep = 0
	}

	if err := e.mgr.FlushAll(); err != nil {
		return nil, err
	}
	res.BufferStats = e.mgr.Stats()
	res.StoreStats = e.cfg.Store.Stats()
	res.StoreStats.Add(e.statsOffset)
	if res.VirtualIters > 0 {
		res.SwapsPerVirtualIter = float64(res.BufferStats.Fetches) / float64(res.VirtualIters)
	}
	factors, err := e.AssembleFactors()
	if err != nil {
		return nil, err
	}
	res.Factors = factors
	return res, nil
}

// AssembleFactors stacks the per-partition A(i)_(ki) (as persisted in the
// store) into the full factor matrices A(i). With the asynchronous
// pipeline enabled (IOWorkers > 0) the unit reads run concurrently on up
// to IOWorkers goroutines — the store contract guarantees each Get is an
// independent complete copy; otherwise they run sequentially, matching
// the synchronous engine's store traffic order exactly.
func (e *Engine) AssembleFactors() ([]*mat.Matrix, error) {
	type slot struct {
		mode, part int
	}
	var slots []slot
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		for part := 0; part < e.pattern.K[mode]; part++ {
			slots = append(slots, slot{mode, part})
		}
	}
	parts := make([]*mat.Matrix, len(slots))
	err := blockstore.ForEachConcurrent(len(slots), e.cfg.IOWorkers, func(i int) error {
		u, err := e.cfg.Store.Get(slots[i].mode, slots[i].part)
		if err == nil {
			parts[i] = u.A
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	factors := make([]*mat.Matrix, e.pattern.NModes())
	next := 0
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		stack := parts[next : next+e.pattern.K[mode]]
		next += e.pattern.K[mode]
		factors[mode] = mat.VStack(stack...)
	}
	return factors, nil
}

// SurrogateFit exposes the current surrogate fit (see components) for
// diagnostics and tests.
func (e *Engine) SurrogateFit() float64 { return e.comps.SurrogateFit() }

// Schedule returns the engine's schedule (for tests).
func (e *Engine) Schedule() *schedule.Schedule { return e.sched }

package refine

import (
	"fmt"
	"math"
	"math/rand"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/schedule"
)

// InitKind selects how the full-factor partitions A(i)_(ki) are seeded.
type InitKind int

const (
	// InitReference seeds A(i)_(ki) with the mode-i sub-factor of a
	// reference block in the partition's slab (falling back to random for
	// empty slabs). This matches the grid-PARAFAC practice of starting the
	// stitching from Phase-1 output.
	InitReference InitKind = iota
	// InitRandom seeds every partition with uniform [0,1) noise.
	InitRandom
)

// Config assembles a Phase-2 engine.
type Config struct {
	// Phase1 supplies the per-block sub-factors (required).
	Phase1 *phase1.Result
	// Store receives the data units; Phase 2's I/O flows through it
	// (required). Use blockstore.NewMemStore for counted simulation or
	// NewFileStore for true out-of-core runs.
	Store blockstore.Store
	// Schedule picks the update schedule (paper §V–VI).
	Schedule schedule.Kind
	// Policy picks the buffer replacement strategy (paper §VII).
	Policy buffer.Policy
	// BufferFraction sizes the buffer as a fraction of the total space
	// requirement (paper Table III: 1/3, 1/2, 2/3). Ignored when
	// CapacityBytes is set. Defaults to 1 (everything fits).
	BufferFraction float64
	// CapacityBytes sizes the buffer absolutely when positive.
	CapacityBytes int64
	// MaxVirtualIters bounds the virtual iterations (default 100, the
	// paper's Figure 13(a) budget).
	MaxVirtualIters int
	// Tol declares convergence when the surrogate fit improves by less
	// than Tol across a virtual iteration (default 1e-2, paper §VIII-C).
	// Pass math.Inf(-1) to disable convergence and always run
	// MaxVirtualIters (used by the I/O-measurement experiments, which run
	// "without any bound on iterations").
	Tol float64
	// Init selects factor seeding; Seed drives InitRandom.
	Init InitKind
	Seed int64
	// DivideUpdate switches the P/Q bookkeeping to the paper's literal
	// in-place Hadamard-division rule instead of the per-mode component
	// store (see divide.go). Results are identical; this exists for the
	// ablation benchmarks.
	DivideUpdate bool
	// WarmupVirtualIters runs this many virtual iterations before swap
	// counting starts (buffer statistics are reset at the boundary), so
	// experiments can report steady-state swaps per iteration without
	// cold-start pollution (paper §VIII-C.1 averages long runs). The
	// warm-up iterations do not count toward MaxVirtualIters or the trace,
	// and convergence checks are suspended during warm-up.
	WarmupVirtualIters int
}

// Result reports a Phase-2 run.
type Result struct {
	// Factors are the assembled full factor matrices A(i), one per mode.
	Factors []*mat.Matrix
	// VirtualIters is the number of completed virtual iterations.
	VirtualIters int
	// Converged is true when Tol fired before MaxVirtualIters.
	Converged bool
	// FitTrace holds the surrogate fit after each virtual iteration.
	FitTrace []float64
	// BufferStats exposes the paper's headline metric: Fetches = swaps.
	BufferStats buffer.Stats
	// StoreStats counts store traffic (unit reads/writes incl. setup).
	StoreStats blockstore.Stats
	// SwapsPerVirtualIter = BufferStats.Fetches / VirtualIters.
	SwapsPerVirtualIter float64
}

// Engine runs Phase 2. Create with New, run once with Run.
type Engine struct {
	cfg     Config
	pattern *grid.Pattern
	sched   *schedule.Schedule
	comps   tracker
	mgr     *buffer.Manager

	// Hot-loop scratch (see update).
	scratchS   *mat.Matrix
	scratchG   *mat.Matrix
	scratchT   *mat.Matrix
	scratchVec []int
}

// New validates cfg, prepares the data units in the store, initializes the
// in-memory components and builds the buffer manager.
func New(cfg Config) (*Engine, error) {
	if cfg.Phase1 == nil || cfg.Store == nil {
		return nil, fmt.Errorf("refine: Phase1 and Store are required")
	}
	if cfg.MaxVirtualIters <= 0 {
		cfg.MaxVirtualIters = 100
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-2
	}
	if cfg.BufferFraction <= 0 {
		cfg.BufferFraction = 1
	}
	p := cfg.Phase1.Pattern
	e := &Engine{cfg: cfg, pattern: p}
	e.sched = schedule.New(cfg.Schedule, p)

	if err := e.prepareUnits(); err != nil {
		return nil, err
	}
	if cfg.DivideUpdate {
		e.comps = newProdComponents(cfg.Phase1)
	} else {
		e.comps = newComponents(cfg.Phase1)
	}
	e.seedComponents()

	capacity := cfg.CapacityBytes
	if capacity <= 0 {
		capacity = int64(cfg.BufferFraction * float64(schedule.TotalBytes(p, cfg.Phase1.Rank)))
	}
	mgr, err := buffer.NewManager(buffer.Config{
		Store:         cfg.Store,
		Pattern:       p,
		CapacityBytes: capacity,
		Policy:        cfg.Policy,
		Schedule:      e.sched,
	})
	if err != nil {
		return nil, err
	}
	e.mgr = mgr
	return e, nil
}

// initialA builds the seed for A(mode)_(part).
func (e *Engine) initialA(mode, part int, rng *rand.Rand) *mat.Matrix {
	_, rows := e.pattern.ModeRange(mode, part)
	rank := e.cfg.Phase1.Rank
	if e.cfg.Init == InitRandom {
		return mat.Random(rows, rank, rng)
	}
	// Reference: the first block in the slab with a non-empty U(mode).
	for _, id := range e.pattern.Slab(mode, part) {
		u := e.cfg.Phase1.Sub[id][mode]
		if u.MaxAbs() > 0 {
			return u.Clone()
		}
	}
	return mat.Random(rows, rank, rng)
}

// prepareUnits writes every ⟨mode, part⟩ unit into the store: the seeded
// A(i)_(ki) plus the slab's Phase-1 U(i)_l matrices.
func (e *Engine) prepareUnits() error {
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		for part := 0; part < e.pattern.K[mode]; part++ {
			u := &blockstore.Unit{
				Mode: mode,
				Part: part,
				A:    e.initialA(mode, part, rng),
				U:    make(map[int]*mat.Matrix),
			}
			for _, id := range e.pattern.Slab(mode, part) {
				u.U[id] = e.cfg.Phase1.Sub[id][mode]
			}
			if err := e.cfg.Store.Put(u); err != nil {
				return err
			}
		}
	}
	return nil
}

// seedComponents computes the initial P and Q from the seeded A parts,
// reading A back from the store once (setup traffic, not counted as swaps).
func (e *Engine) seedComponents() {
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		for part := 0; part < e.pattern.K[mode]; part++ {
			slabU := make(map[int]*mat.Matrix)
			for _, id := range e.pattern.Slab(mode, part) {
				slabU[id] = e.cfg.Phase1.Sub[id][mode]
			}
			// The store was just seeded by prepareUnits; regenerate the
			// same initial A deterministically instead of re-reading.
			u, err := e.cfg.Store.Get(mode, part)
			if err != nil {
				panic(fmt.Sprintf("refine: unit ⟨%d,%d⟩ vanished during setup: %v", mode, part, err))
			}
			e.comps.SetA(mode, part, u.A, slabU)
		}
	}
	e.cfg.Store.ResetStats()
}

// update applies the grid-PARAFAC rule to A(mode)_(part) using the pinned
// unit, then refreshes the dependent P and Q components in place
// (Algorithm 2 step ii). Scratch matrices are reused across calls — this
// is Phase 2's hot loop.
func (e *Engine) update(u *blockstore.Unit) {
	mode, part := u.Mode, u.Part
	rank := e.cfg.Phase1.Rank
	_, rows := e.pattern.ModeRange(mode, part)
	t := mat.New(rows, rank)
	if e.scratchS == nil {
		e.scratchS = mat.New(rank, rank)
		e.scratchG = mat.New(rank, rank)
		e.scratchT = mat.New(rank, rank)
		e.scratchVec = make([]int, e.pattern.NModes())
	}
	s, g, term, vec := e.scratchS, e.scratchG, e.scratchT, e.scratchVec
	s.Zero()
	for _, id := range e.pattern.Slab(mode, part) {
		e.pattern.Unlinear(id, vec)
		e.comps.GammaInto(g, id, u)
		mat.MulAddInto(t, u.U[id], g)
		term.Fill(1)
		e.comps.STermMulInto(term, vec, mode)
		s.AddInPlace(term)
	}
	aNew := mat.RightSolveSPD(t, s)
	u.A = aNew
	e.comps.SetA(mode, part, aNew, u.U)
}

// Run executes the refinement until convergence or MaxVirtualIters and
// returns the assembled factors plus I/O statistics.
func (e *Engine) Run() (*Result, error) {
	res := &Result{}
	virtLen := e.sched.VirtualIterationLength()
	updates := 0
	warmupLeft := e.cfg.WarmupVirtualIters
	prevFit := e.comps.SurrogateFit()
	done := false
	// Termination is only evaluated once every block position has been
	// visited at least once — i.e. from the second full cycle on (paper
	// Figure 7). A block-centric cycle spans many virtual iterations, and
	// a fit plateau before the first cycle completes only means the
	// not-yet-visited partitions still hold their initialization.
	minIters := int(math.Ceil(e.sched.VirtualIterationsPerCycle()))

	for !done && res.VirtualIters < e.cfg.MaxVirtualIters {
		for si := range e.sched.Steps {
			step := &e.sched.Steps[si]
			// Acquire the step's units in schedule order.
			units := make([]*blockstore.Unit, len(step.Accesses))
			for ai, a := range step.Accesses {
				u, err := e.mgr.Acquire(a.Mode, a.Part)
				if err != nil {
					return nil, err
				}
				units[ai] = u
			}
			for _, u := range units {
				if done {
					break
				}
				e.update(u)
				updates++
				if updates%virtLen == 0 {
					if warmupLeft > 0 {
						warmupLeft--
						if warmupLeft == 0 {
							e.mgr.ResetStats()
						}
						prevFit = e.comps.SurrogateFit()
						continue
					}
					res.VirtualIters++
					fit := e.comps.SurrogateFit()
					res.FitTrace = append(res.FitTrace, fit)
					improvement := fit - prevFit
					prevFit = fit
					if improvement < e.cfg.Tol && res.VirtualIters > minIters {
						res.Converged = true
						done = true
					}
					if res.VirtualIters >= e.cfg.MaxVirtualIters {
						done = true
					}
				}
			}
			for _, a := range step.Accesses {
				e.mgr.Release(a.Mode, a.Part, true)
			}
			if done {
				break
			}
		}
	}

	if err := e.mgr.FlushAll(); err != nil {
		return nil, err
	}
	res.BufferStats = e.mgr.Stats()
	res.StoreStats = e.cfg.Store.Stats()
	if res.VirtualIters > 0 {
		res.SwapsPerVirtualIter = float64(res.BufferStats.Fetches) / float64(res.VirtualIters)
	}
	factors, err := e.AssembleFactors()
	if err != nil {
		return nil, err
	}
	res.Factors = factors
	return res, nil
}

// AssembleFactors stacks the per-partition A(i)_(ki) (as persisted in the
// store) into the full factor matrices A(i).
func (e *Engine) AssembleFactors() ([]*mat.Matrix, error) {
	factors := make([]*mat.Matrix, e.pattern.NModes())
	for mode := 0; mode < e.pattern.NModes(); mode++ {
		parts := make([]*mat.Matrix, e.pattern.K[mode])
		for part := 0; part < e.pattern.K[mode]; part++ {
			u, err := e.cfg.Store.Get(mode, part)
			if err != nil {
				return nil, err
			}
			parts[part] = u.A
		}
		factors[mode] = mat.VStack(parts...)
	}
	return factors, nil
}

// SurrogateFit exposes the current surrogate fit (see components) for
// diagnostics and tests.
func (e *Engine) SurrogateFit() float64 { return e.comps.SurrogateFit() }

// Schedule returns the engine's schedule (for tests).
func (e *Engine) Schedule() *schedule.Schedule { return e.sched }

package refine

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// lowRank builds an exactly rank-r dense tensor.
func lowRank(rng *rand.Rand, r int, dims ...int) *tensor.Dense {
	factors := make([]*mat.Matrix, len(dims))
	for k, d := range dims {
		factors[k] = mat.Random(d, r, rng)
	}
	return cpals.NewKTensor(factors).Full()
}

// runPhase1 decomposes x over pattern p.
func runPhase1(t *testing.T, x *tensor.Dense, p *grid.Pattern, rank int) *phase1.Result {
	t.Helper()
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phase1.Run(src, phase1.Options{Rank: rank, MaxIters: 150, Tol: 1e-9, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newEngine(t *testing.T, p1 *phase1.Result, kind schedule.Kind, pol buffer.Policy, frac float64) *Engine {
	t.Helper()
	e, err := New(Config{
		Phase1:          p1,
		Store:           blockstore.NewMemStore(),
		Schedule:        kind,
		Policy:          pol,
		BufferFraction:  frac,
		MaxVirtualIters: 60,
		Tol:             1e-6,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Store: blockstore.NewMemStore()}); err == nil {
		t.Fatal("missing phase1 accepted")
	}
}

func TestRefineRecoversLowRankTensor(t *testing.T) {
	// End-to-end invariant: Phase 1 + Phase 2 on an exactly rank-2 tensor
	// must yield full factors whose Kruskal model fits X nearly perfectly.
	rng := rand.New(rand.NewSource(1))
	x := lowRank(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)

	for _, kind := range schedule.Kinds {
		e := newEngine(t, p1, kind, buffer.LRU, 1)
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		kt := cpals.NewKTensor(res.Factors)
		if fit := kt.Fit(x); fit < 0.98 {
			t.Fatalf("%v: final fit = %g (trace %v)", kind, fit, res.FitTrace)
		}
	}
}

func TestRefineImprovesOverPhase1Stitching(t *testing.T) {
	// The refined model must fit at least as well as the raw Phase-1
	// reference initialization it starts from.
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandomDense(rng, 8, 8, 8) // full-rank: imperfect fit
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 3)
	e := newEngine(t, p1, schedule.HilbertOrder, buffer.Forward, 1)
	initialFit := e.SurrogateFit()
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	finalFit := res.FitTrace[len(res.FitTrace)-1]
	if finalFit < initialFit-1e-9 {
		t.Fatalf("refinement degraded surrogate fit: %g -> %g", initialFit, finalFit)
	}
}

func TestSurrogateFitTraceNonDecreasing(t *testing.T) {
	// The grid update is block-coordinate descent on the surrogate
	// objective, so the surrogate fit must be (numerically) monotone.
	rng := rand.New(rand.NewSource(3))
	x := lowRank(rng, 3, 8, 6, 4)
	p := grid.MustNew([]int{8, 6, 4}, []int{2, 3, 2})
	p1 := runPhase1(t, x, p, 3)
	e := newEngine(t, p1, schedule.ZOrder, buffer.LRU, 1)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.FitTrace); i++ {
		if res.FitTrace[i] < res.FitTrace[i-1]-1e-7 {
			t.Fatalf("surrogate fit decreased at virtual iteration %d: %v", i, res.FitTrace)
		}
	}
}

func TestAllSchedulesReachSameFixedPointFit(t *testing.T) {
	// Different schedules apply the same updates in different orders; on an
	// easy low-rank problem they must all converge to ≈ the same fit.
	rng := rand.New(rand.NewSource(4))
	x := lowRank(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	fits := map[schedule.Kind]float64{}
	for _, kind := range schedule.Kinds {
		e := newEngine(t, p1, kind, buffer.LRU, 1)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		kt := cpals.NewKTensor(res.Factors)
		fits[kind] = kt.Fit(x)
	}
	for kind, fit := range fits {
		if math.Abs(fit-fits[schedule.ModeCentric]) > 0.02 {
			t.Fatalf("%v fit %g deviates from MC fit %g", kind, fit, fits[schedule.ModeCentric])
		}
	}
}

func TestVirtualIterationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	e, err := New(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: schedule.FiberOrder, Policy: buffer.LRU,
		MaxVirtualIters: 7, Tol: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualIters != 7 || len(res.FitTrace) != 7 {
		t.Fatalf("virtual iters = %d, trace = %d", res.VirtualIters, len(res.FitTrace))
	}
	if res.Converged {
		t.Fatal("should have stopped on MaxVirtualIters, not convergence")
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRank(rng, 1, 6, 6, 6)
	p := grid.UniformCube(3, 6, 2)
	p1 := runPhase1(t, x, p, 1)
	e, err := New(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: schedule.ModeCentric, Policy: buffer.LRU,
		MaxVirtualIters: 100, Tol: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.VirtualIters >= 100 {
		t.Fatalf("expected early convergence, got %d iters (converged=%v)", res.VirtualIters, res.Converged)
	}
}

func TestFactorsShapeMatchesTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandomDense(rng, 10, 6, 4)
	p := grid.MustNew([]int{10, 6, 4}, []int{4, 3, 2}) // uneven split on mode 0
	p1 := runPhase1(t, x, p, 2)
	e := newEngine(t, p1, schedule.FiberOrder, buffer.LRU, 1)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Factors {
		if f.Rows != x.Dims[m] || f.Cols != 2 {
			t.Fatalf("factor %d is %d×%d, want %d×2", m, f.Rows, f.Cols, x.Dims[m])
		}
	}
}

func TestSwapCountingTightBuffer(t *testing.T) {
	// With a full-size buffer, steady-state swaps per iteration must be ~0
	// (everything resident); with a 1/3 buffer they must be positive.
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandomDense(rng, 16, 16, 16)
	p := grid.UniformCube(3, 16, 4)
	p1 := runPhase1(t, x, p, 2)

	eFull := newEngine(t, p1, schedule.ZOrder, buffer.LRU, 1)
	resFull, err := eFull.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Full buffer: only cold-start fetches (ΣK = 12 units).
	if resFull.BufferStats.Fetches != 12 {
		t.Fatalf("full-buffer fetches = %d, want 12 cold misses", resFull.BufferStats.Fetches)
	}

	eTight := newEngine(t, p1, schedule.ZOrder, buffer.LRU, 1.0/3)
	resTight, err := eTight.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resTight.BufferStats.Fetches <= 12 {
		t.Fatalf("tight-buffer fetches = %d, expected swapping", resTight.BufferStats.Fetches)
	}
	if resTight.SwapsPerVirtualIter <= 0 {
		t.Fatal("swaps per virtual iteration not computed")
	}
}

func TestForwardPolicyNotWorseThanLRU(t *testing.T) {
	// The paper's headline claim, as an invariant on a fixed workload:
	// FOR swaps ≤ LRU swaps for the same block-centric schedule & buffer.
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomDense(rng, 16, 16, 16)
	p := grid.UniformCube(3, 16, 4)
	p1 := runPhase1(t, x, p, 2)

	run := func(pol buffer.Policy) int64 {
		e, err := New(Config{
			Phase1: p1, Store: blockstore.NewMemStore(),
			Schedule: schedule.HilbertOrder, Policy: pol,
			BufferFraction:  1.0 / 3,
			MaxVirtualIters: 30, Tol: 1e-12,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.BufferStats.Fetches
	}
	forward, lru := run(buffer.Forward), run(buffer.LRU)
	if forward > lru {
		t.Fatalf("FOR fetched %d > LRU %d", forward, lru)
	}
}

func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	run := func() *Result {
		e := newEngine(t, p1, schedule.HilbertOrder, buffer.Forward, 0.5)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.BufferStats != r2.BufferStats {
		t.Fatalf("buffer stats differ: %+v vs %+v", r1.BufferStats, r2.BufferStats)
	}
	for m := range r1.Factors {
		if !r1.Factors[m].Equal(r2.Factors[m]) {
			t.Fatalf("factors differ on mode %d", m)
		}
	}
}

func TestFileStoreBackedRun(t *testing.T) {
	// True out-of-core: the same run against a FileStore must produce
	// identical factors to the MemStore run.
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandomDense(rng, 6, 6, 6)
	p := grid.UniformCube(3, 6, 2)
	p1 := runPhase1(t, x, p, 2)

	mem := newEngine(t, p1, schedule.ZOrder, buffer.Forward, 0.5)
	memRes, err := mem.Run()
	if err != nil {
		t.Fatal(err)
	}
	fstore, err := blockstore.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fe, err := New(Config{
		Phase1: p1, Store: fstore,
		Schedule: schedule.ZOrder, Policy: buffer.Forward,
		BufferFraction:  0.5,
		MaxVirtualIters: 60, Tol: 1e-6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fileRes, err := fe.Run()
	if err != nil {
		t.Fatal(err)
	}
	for m := range memRes.Factors {
		if !memRes.Factors[m].EqualApprox(fileRes.Factors[m], 1e-12) {
			t.Fatalf("mode %d factors differ between Mem and File stores", m)
		}
	}
	if memRes.BufferStats.Fetches != fileRes.BufferStats.Fetches {
		t.Fatal("swap counts differ between stores")
	}
}

func TestRandomInit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := lowRank(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	e, err := New(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: schedule.HilbertOrder, Policy: buffer.LRU,
		Init: InitRandom, Seed: 99,
		MaxVirtualIters: 200, Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	kt := cpals.NewKTensor(res.Factors)
	if fit := kt.Fit(x); fit < 0.95 {
		t.Fatalf("random-init fit = %g", fit)
	}
}

func TestEmptyBlocksDoNotBreakRefinement(t *testing.T) {
	// Sparse tensor with whole empty blocks: the zero U factors must flow
	// through T/S without NaNs.
	x := tensor.NewCOO(8, 8, 8)
	rng := rand.New(rand.NewSource(13))
	idx := make([]int, 3)
	for i := 0; i < 40; i++ {
		// Confine nonzeros to the first octant.
		for m := range idx {
			idx[m] = rng.Intn(4)
		}
		x.Append(idx, rng.Float64()+0.5)
	}
	x.Canonicalize()
	p := grid.UniformCube(3, 8, 2)
	src, err := phase1.NewCOOSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 2, MaxIters: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, p1, schedule.ZOrder, buffer.Forward, 0.5)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Factors {
		for _, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("mode %d factor contains NaN/Inf", m)
			}
		}
	}
}

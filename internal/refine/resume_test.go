package refine

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/runstate"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

func resumePhase1(t *testing.T) *phase1.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandomDense(rng, 12, 12, 12)
	p := grid.UniformCube(3, 12, 3)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 3, MaxIters: 3, Tol: 1e-3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return p1
}

func resumeMeta() runstate.Meta {
	return runstate.Meta{InputKind: "test", Dims: []int{12, 12, 12}, Partitions: []int{3, 3, 3}, Rank: 3, Seed: 7}
}

func sameTrace(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: trace has %d entries, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: trace[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func sameFactors(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Factors) != len(want.Factors) {
		t.Fatalf("%s: %d factor modes, want %d", name, len(got.Factors), len(want.Factors))
	}
	for m := range got.Factors {
		g, w := got.Factors[m], want.Factors[m]
		if g.Rows != w.Rows || g.Cols != w.Cols {
			t.Fatalf("%s: factor %d is %dx%d, want %dx%d", name, m, g.Rows, g.Cols, w.Rows, w.Cols)
		}
		for i := range g.Data {
			if g.Data[i] != w.Data[i] {
				t.Fatalf("%s: factor %d differs at flat index %d: %v vs %v", name, m, i, g.Data[i], w.Data[i])
			}
		}
	}
}

// TestCheckpointedRunMatchesPlainRun verifies that enabling checkpointing
// does not perturb the computation: factors, FitTrace and swap counts are
// bit-identical with and without a Checkpointer attached.
func TestCheckpointedRunMatchesPlainRun(t *testing.T) {
	p1 := resumePhase1(t)
	base := Config{
		Phase1: p1, Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 8, Tol: math.Inf(-1), Seed: 5,
	}

	plainCfg := base
	plainCfg.Store = blockstore.NewMemStore()
	eng, err := New(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	rs, err := runstate.Open(t.TempDir(), resumeMeta(), 27, false)
	if err != nil {
		t.Fatal(err)
	}
	ckptCfg := base
	ckptCfg.Store = blockstore.NewMemStore()
	ckptCfg.Checkpoint = rs
	ckptCfg.CheckpointEverySteps = 1
	eng2, err := New(ckptCfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := eng2.Run()
	if err != nil {
		t.Fatal(err)
	}

	sameTrace(t, "checkpointed", ckpt.FitTrace, plain.FitTrace)
	sameFactors(t, "checkpointed", ckpt, plain)
	if ckpt.BufferStats.Fetches != plain.BufferStats.Fetches {
		t.Fatalf("checkpointed run swapped %d, plain %d", ckpt.BufferStats.Fetches, plain.BufferStats.Fetches)
	}
}

// TestResumeBitForBitAcrossInterruptionPoints is the crash-recovery
// contract: an engine killed (via an injected store fault) at many
// different points and resumed from its last checkpoint must produce
// bit-for-bit identical FitTrace, factors and swap counts to an
// uninterrupted run — under both an eviction-heavy Forward/Hilbert
// configuration and an LRU/Z-order one, and at several checkpoint
// cadences.
func TestResumeBitForBitAcrossInterruptionPoints(t *testing.T) {
	p1 := resumePhase1(t)
	cases := []struct {
		name   string
		kind   schedule.Kind
		pol    buffer.Policy
		every  int
		tol    float64
		solver cpals.Solver
	}{
		{"forward-hilbert-every1", schedule.HilbertOrder, buffer.Forward, 1, math.Inf(-1), nil},
		{"lru-zorder-every3", schedule.ZOrder, buffer.LRU, 3, math.Inf(-1), nil},
		{"converging-mru-fiber", schedule.FiberOrder, buffer.MRU, 2, 1e-4, nil},
		// Constrained runs replay bit-for-bit too: the nonneg HALS update
		// warm-starts from the checkpointed A (state the checkpoint fully
		// carries) and the ridge damping is stateless.
		{"nonneg-forward-hilbert", schedule.HilbertOrder, buffer.Forward, 1, math.Inf(-1), cpals.Nonnegative{}},
		{"ridge-lru-zorder", schedule.ZOrder, buffer.LRU, 2, math.Inf(-1), cpals.Ridge{Lambda: 0.05}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				Phase1: p1, Schedule: tc.kind, Policy: tc.pol,
				BufferFraction: 0.5, MaxVirtualIters: 6, Tol: tc.tol, Seed: 5,
				Solver: tc.solver,
			}
			refCfg := base
			refCfg.Store = blockstore.NewMemStore()
			eng, err := New(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}

			for _, failAfter := range []int64{3, 11, 29, 61, 113} {
				dir := filepath.Join(t.TempDir(), "ckpt")
				rs, err := runstate.Open(dir, resumeMeta(), 27, false)
				if err != nil {
					t.Fatal(err)
				}
				faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
				faulty.FailRead = failAfter
				killedCfg := base
				killedCfg.Store = faulty
				killedCfg.Checkpoint = rs
				killedCfg.CheckpointEverySteps = tc.every
				killed, err := New(killedCfg)
				if err == nil {
					_, err = killed.Run()
				}
				if err == nil {
					// The fault landed beyond the run's total reads; nothing
					// was interrupted, so there is nothing to resume-test.
					continue
				}
				if !errors.Is(err, blockstore.ErrInjected) {
					t.Fatalf("failAfter=%d: unexpected error %v", failAfter, err)
				}

				rs2, err := runstate.Open(dir, resumeMeta(), 27, true)
				if err != nil {
					t.Fatalf("failAfter=%d: reopen: %v", failAfter, err)
				}
				resumeCfg := base
				resumeCfg.Store = blockstore.NewMemStore()
				resumeCfg.Checkpoint = rs2
				resumeCfg.CheckpointEverySteps = tc.every
				eng2, err := New(resumeCfg)
				if err != nil {
					t.Fatalf("failAfter=%d: resume New: %v", failAfter, err)
				}
				res, err := eng2.Run()
				if err != nil {
					t.Fatalf("failAfter=%d: resume Run: %v", failAfter, err)
				}
				sameTrace(t, tc.name, res.FitTrace, ref.FitTrace)
				sameFactors(t, tc.name, res, ref)
				if res.BufferStats.Fetches != ref.BufferStats.Fetches {
					t.Fatalf("failAfter=%d: resumed run swapped %d, reference %d",
						failAfter, res.BufferStats.Fetches, ref.BufferStats.Fetches)
				}
				if res.VirtualIters != ref.VirtualIters || res.Converged != ref.Converged {
					t.Fatalf("failAfter=%d: resumed (%d iters, converged=%v) vs reference (%d, %v)",
						failAfter, res.VirtualIters, res.Converged, ref.VirtualIters, ref.Converged)
				}
			}
		})
	}
}

// TestResumeWithAsyncPipeline checks both crossings between the
// synchronous engine and the prefetching pipeline: a checkpoint taken by a
// synchronous engine resumed with prefetch on, and a checkpoint taken
// *while* the asynchronous pipeline was running (in-flight prefetches and
// background write-backs at snapshot time) resumed synchronously. Results
// must be identical in both directions — the pipeline knobs are excluded
// from the manifest fingerprint by design.
func TestResumeWithAsyncPipeline(t *testing.T) {
	p1 := resumePhase1(t)
	base := Config{
		Phase1: p1, Schedule: schedule.HilbertOrder, Policy: buffer.Forward,
		BufferFraction: 0.5, MaxVirtualIters: 6, Tol: math.Inf(-1), Seed: 5,
	}
	refCfg := base
	refCfg.Store = blockstore.NewMemStore()
	eng, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name                       string
		killDepth, killWorkers     int
		resumeDepth, resumeWorkers int
	}{
		{"sync-kill-async-resume", 0, 0, 2, 3},
		{"async-kill-sync-resume", 2, 3, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, failAfter := range []int64{9, 17, 41} {
				dir := filepath.Join(t.TempDir(), "ckpt")
				rs, err := runstate.Open(dir, resumeMeta(), 27, false)
				if err != nil {
					t.Fatal(err)
				}
				faulty := blockstore.NewFaultyStore(blockstore.NewMemStore())
				faulty.FailRead = failAfter
				killedCfg := base
				killedCfg.Store = faulty
				killedCfg.Checkpoint = rs
				killedCfg.CheckpointEverySteps = 1
				killedCfg.PrefetchDepth = tc.killDepth
				killedCfg.IOWorkers = tc.killWorkers
				killed, err := New(killedCfg)
				if err == nil {
					_, err = killed.Run()
				}
				if err == nil {
					continue // fault landed beyond this run's reads
				}
				if !errors.Is(err, blockstore.ErrInjected) {
					t.Fatalf("failAfter=%d: unexpected error %v", failAfter, err)
				}

				rs2, err := runstate.Open(dir, resumeMeta(), 27, true)
				if err != nil {
					t.Fatal(err)
				}
				resumeCfg := base
				resumeCfg.Store = blockstore.NewMemStore()
				resumeCfg.Checkpoint = rs2
				resumeCfg.PrefetchDepth = tc.resumeDepth
				resumeCfg.IOWorkers = tc.resumeWorkers
				eng2, err := New(resumeCfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng2.Run()
				if err != nil {
					t.Fatal(err)
				}
				sameTrace(t, tc.name, res.FitTrace, ref.FitTrace)
				sameFactors(t, tc.name, res, ref)
				if res.BufferStats.Fetches != ref.BufferStats.Fetches {
					t.Fatalf("failAfter=%d: resumed run swapped %d, reference %d",
						failAfter, res.BufferStats.Fetches, ref.BufferStats.Fetches)
				}
			}
		})
	}
}

// TestCheckpointRejectsDivideUpdate pins the documented incompatibility.
func TestCheckpointRejectsDivideUpdate(t *testing.T) {
	p1 := resumePhase1(t)
	rs, err := runstate.Open(t.TempDir(), resumeMeta(), 27, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		DivideUpdate: true, Checkpoint: rs,
	})
	if err == nil {
		t.Fatal("DivideUpdate + Checkpoint accepted")
	}
}

package refine

import (
	"fmt"

	"twopcp/internal/runstate"
)

// Checkpointer persists and restores Phase-2 progress. runstate.Run is the
// production implementation; the engine only requires this method pair so
// tests can substitute failure-injecting fakes.
//
// The engine checkpoints at schedule-step boundaries (all units released,
// no update in flight), every Config.CheckpointEverySteps steps. A
// checkpoint is the complete mutable state of the refinement — the current
// A factor partitions, the schedule position, the FitTrace and the buffer
// snapshot — so an engine rebuilt from it replays the remaining steps
// bit-for-bit: the P/Q components are pure functions of the checkpointed A
// (and the Phase-1 U), and the buffer snapshot pins every subsequent
// hit/miss/eviction decision.
type Checkpointer interface {
	// LoadPhase2 returns the latest checkpoint, or ok=false when none
	// exists.
	LoadPhase2() (*runstate.Phase2State, bool, error)
	// SavePhase2 durably records st.
	SavePhase2(st *runstate.Phase2State) error
}

// validateState checks a loaded checkpoint against this engine's pattern
// and schedule before any of it is trusted.
func (e *Engine) validateState(st *runstate.Phase2State) error {
	p := e.pattern
	rank := e.cfg.Phase1.Rank
	if len(st.A) != p.NModes() {
		return fmt.Errorf("refine: checkpoint has %d factor modes, pattern %d", len(st.A), p.NModes())
	}
	for mode, row := range st.A {
		if len(row) != p.K[mode] {
			return fmt.Errorf("refine: checkpoint mode %d has %d partitions, pattern %d", mode, len(row), p.K[mode])
		}
		for part, a := range row {
			_, rows := p.ModeRange(mode, part)
			if a == nil {
				return fmt.Errorf("refine: checkpoint A(%d)_(%d) is missing", mode, part)
			}
			if a.Rows != rows || a.Cols != rank {
				return fmt.Errorf("refine: checkpoint A(%d)_(%d) is %d×%d, want %d×%d",
					mode, part, a.Rows, a.Cols, rows, rank)
			}
		}
	}
	if st.NextStep < 0 || st.NextStep >= len(e.sched.Steps) {
		return fmt.Errorf("refine: checkpoint step %d outside schedule of %d steps", st.NextStep, len(e.sched.Steps))
	}
	if st.Pos < 0 || st.Pos >= e.sched.UpdatesPerCycle() {
		return fmt.Errorf("refine: checkpoint position %d outside cycle of %d accesses", st.Pos, e.sched.UpdatesPerCycle())
	}
	if st.Updates < 0 || st.VirtualIters < 0 || st.WarmupLeft < 0 {
		return fmt.Errorf("refine: checkpoint has negative progress counters")
	}
	if len(st.FitTrace) != st.VirtualIters {
		return fmt.Errorf("refine: checkpoint trace has %d entries for %d virtual iterations",
			len(st.FitTrace), st.VirtualIters)
	}
	return nil
}

// saveCheckpoint snapshots the engine at a step boundary and hands it to
// the Checkpointer. nextStep/pos/updates describe the replay position (the
// first not-yet-executed step); the caller passes its loop-local
// convergence state verbatim.
func (e *Engine) saveCheckpoint(nextStep, pos, updates int, res *Result, prevFit float64, warmupLeft int) error {
	entries, cursor, bstats, err := e.mgr.Snapshot()
	if err != nil {
		return err
	}
	bs := runstate.BufferState{Resident: entries, Cursor: cursor, Stats: bstats}
	storeStats := e.cfg.Store.Stats()
	storeStats.Add(e.statsOffset)
	st := &runstate.Phase2State{
		NextStep:     nextStep,
		Pos:          pos,
		Updates:      updates,
		VirtualIters: res.VirtualIters,
		FitTrace:     append([]float64(nil), res.FitTrace...),
		PrevFit:      prevFit,
		WarmupLeft:   warmupLeft,
		Buffer:       bs,
		StoreStats:   storeStats,
		A:            e.curA,
	}
	// Persist the metrics registry's counters so telemetry resumes
	// exactly: a resumed run's counters continue from the checkpoint, not
	// from zero (old checkpoints without the field restore nothing).
	if e.cfg.Obs != nil && e.cfg.Obs.Metrics != nil {
		st.Metrics = e.cfg.Obs.Metrics.CounterValues()
	}
	if err := e.cfg.Checkpoint.SavePhase2(st); err != nil {
		return fmt.Errorf("refine: checkpoint: %w", err)
	}
	return nil
}

// restoreFromState installs a validated checkpoint into a freshly built
// engine: the buffer snapshot is reloaded from the store (the units were
// just re-seeded from the checkpointed A by prepareUnits), the store's
// counters are zeroed so restoration traffic never double-counts, and the
// checkpoint's cumulative statistics become the engine's offsets.
func (e *Engine) restoreFromState(st *runstate.Phase2State) error {
	if err := e.mgr.Restore(st.Buffer.Resident, st.Buffer.Cursor, st.Buffer.Stats); err != nil {
		return err
	}
	e.cfg.Store.ResetStats()
	e.statsOffset = st.StoreStats
	e.startStep = st.NextStep
	e.startPos = st.Pos
	e.startUpdates = st.Updates
	e.startVirtIters = st.VirtualIters
	e.startTrace = append([]float64(nil), st.FitTrace...)
	e.startPrevFit = st.PrevFit
	e.startWarmupLeft = st.WarmupLeft
	e.resumed = true
	if e.cfg.Obs != nil && e.cfg.Obs.Metrics != nil && st.Metrics != nil {
		// Overwrite this process's counters with the checkpointed values:
		// increments made while reloading (e.g. cached Phase-1 blocks)
		// are replaced by the original run's exact counts.
		e.cfg.Obs.Metrics.RestoreCounters(st.Metrics)
	}
	return nil
}

package refine

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// runWith runs the refinement with or without the divide-update tracker.
func runWith(t *testing.T, p1 *phase1.Result, divide bool, kind schedule.Kind, iters int) *Result {
	t.Helper()
	eng, err := New(Config{
		Phase1: p1, Store: blockstore.NewMemStore(),
		Schedule: kind, Policy: buffer.LRU,
		MaxVirtualIters: iters, Tol: 1e-12,
		DivideUpdate: divide,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDivideUpdateMatchesComponents(t *testing.T) {
	// The paper's in-place Hadamard-division P/Q rule and the per-mode
	// component store are algebraically identical; verify the refinement
	// produces the same factors (up to division round-off) and the same
	// fit trajectory.
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomDense(rng, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 3)

	for _, kind := range []schedule.Kind{schedule.ModeCentric, schedule.HilbertOrder} {
		a := runWith(t, p1, false, kind, 8)
		b := runWith(t, p1, true, kind, 8)
		if len(a.FitTrace) != len(b.FitTrace) {
			t.Fatalf("%v: trace lengths differ: %d vs %d", kind, len(a.FitTrace), len(b.FitTrace))
		}
		for i := range a.FitTrace {
			if math.Abs(a.FitTrace[i]-b.FitTrace[i]) > 1e-9 {
				t.Fatalf("%v: fit diverges at virtual iteration %d: %g vs %g",
					kind, i, a.FitTrace[i], b.FitTrace[i])
			}
		}
		for m := range a.Factors {
			if !a.Factors[m].EqualApprox(b.Factors[m], 1e-6) {
				t.Fatalf("%v: mode %d factors diverge between trackers", kind, m)
			}
		}
	}
}

func TestDivideUpdateHandlesEmptyBlocks(t *testing.T) {
	// Empty blocks produce zero U factors and hence exact zeros in the
	// denominators of the division rule; the fallback must keep the run
	// finite and matching the component tracker.
	x := tensor.NewCOO(8, 8, 8)
	rng := rand.New(rand.NewSource(2))
	idx := make([]int, 3)
	for i := 0; i < 60; i++ {
		for m := range idx {
			idx[m] = rng.Intn(4) // only the first octant is populated
		}
		x.Append(idx, rng.Float64()+0.5)
	}
	x.Canonicalize()
	p := grid.UniformCube(3, 8, 2)
	src, err := phase1.NewCOOSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 2, MaxIters: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := runWith(t, p1, false, schedule.ZOrder, 10)
	b := runWith(t, p1, true, schedule.ZOrder, 10)
	for m := range b.Factors {
		for _, v := range b.Factors[m].Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("divide tracker produced NaN/Inf on empty blocks")
			}
		}
		if !a.Factors[m].EqualApprox(b.Factors[m], 1e-6) {
			t.Fatalf("mode %d: trackers disagree on sparse data", m)
		}
	}
}

func TestDivideUpdateRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := lowRank(rng, 2, 8, 8, 8)
	p := grid.UniformCube(3, 8, 2)
	p1 := runPhase1(t, x, p, 2)
	res := runWith(t, p1, true, schedule.HilbertOrder, 60)
	kt := cpals.NewKTensor(res.Factors)
	if fit := kt.Fit(x); fit < 0.98 {
		t.Fatalf("divide-update fit = %g", fit)
	}
}

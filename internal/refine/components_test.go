package refine

import (
	"math"
	"math/rand"
	"testing"

	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/phase1"
	"twopcp/internal/tensor"
)

// explicitSurrogateFit recomputes the surrogate fit by materializing every
// block model — the slow reference for components.SurrogateFit.
func explicitSurrogateFit(p1 *phase1.Result, parts map[int]*mat.Matrix) float64 {
	p := p1.Pattern
	var err2, norm2 float64
	vec := make([]int, p.NModes())
	for id := 0; id < p.NumBlocks(); id++ {
		p.Unlinear(id, vec)
		// Surrogate data: [[U_l]] materialized.
		uk := cpals.NewKTensor(p1.Sub[id]).Full()
		// Model: [[A(h)_(l_h)]].
		factors := make([]*mat.Matrix, p.NModes())
		for h, kh := range vec {
			factors[h] = parts[h*1000+kh]
		}
		model := cpals.NewKTensor(factors).Full()
		diff := uk.Clone()
		diff.SubInPlace(model)
		err2 += diff.Norm() * diff.Norm()
		norm2 += uk.Norm() * uk.Norm()
	}
	return 1 - math.Sqrt(err2)/math.Sqrt(norm2)
}

func TestSurrogateFitMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.RandomDense(rng, 6, 6, 6)
	p := grid.UniformCube(3, 6, 2)
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := phase1.Run(src, phase1.Options{Rank: 2, MaxIters: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Random A parts installed into fresh components.
	comps := newComponents(p1)
	parts := map[int]*mat.Matrix{}
	for mode := 0; mode < 3; mode++ {
		for part := 0; part < 2; part++ {
			_, rows := p.ModeRange(mode, part)
			a := mat.Random(rows, 2, rng)
			parts[mode*1000+part] = a
			slabU := map[int]*mat.Matrix{}
			for _, id := range p.Slab(mode, part) {
				slabU[id] = p1.Sub[id][mode]
			}
			comps.setA(mode, part, a, slabU)
		}
	}
	got := comps.SurrogateFit()
	want := explicitSurrogateFit(p1, parts)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SurrogateFit = %g, explicit = %g", got, want)
	}
}

func TestSurrogateFitPerfectModel(t *testing.T) {
	// If A parts equal the sub-factors of a tensor whose blocks all share
	// one decomposition, the surrogate fit of a single-block grid is 1.
	rng := rand.New(rand.NewSource(11))
	x := lowRank(rng, 2, 6, 6, 6)
	p := grid.UniformCube(3, 6, 1) // one block
	src, _ := phase1.NewDenseSource(x, p)
	p1, err := phase1.Run(src, phase1.Options{Rank: 2, MaxIters: 200, Tol: 1e-12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	comps := newComponents(p1)
	for mode := 0; mode < 3; mode++ {
		comps.setA(mode, 0, p1.Sub[0][mode], map[int]*mat.Matrix{0: p1.Sub[0][mode]})
	}
	if fit := comps.SurrogateFit(); math.Abs(fit-1) > 1e-9 {
		t.Fatalf("perfect-model surrogate fit = %g", fit)
	}
}

func TestSurrogateFitZeroSurrogate(t *testing.T) {
	p := grid.UniformCube(3, 4, 2)
	p1 := &phase1.Result{Pattern: p, Rank: 2}
	p1.Sub = make([][]*mat.Matrix, p.NumBlocks())
	p1.Fits = make([]float64, p.NumBlocks())
	for id := range p1.Sub {
		p1.Sub[id] = []*mat.Matrix{mat.New(2, 2), mat.New(2, 2), mat.New(2, 2)}
	}
	comps := newComponents(p1)
	if fit := comps.SurrogateFit(); fit != 1 {
		t.Fatalf("zero-surrogate fit = %g, want 1", fit)
	}
}

package runstate

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/mat"
)

// phase2Magic tags the Phase-2 checkpoint file.
const phase2Magic = "TP2C"

// BufferState is the replacement-relevant snapshot of the buffer manager:
// the resident units in ascending last-use order, the Forward policy's
// schedule cursor and the cumulative statistics (types shared with
// buffer.Manager.Snapshot/Restore, so nothing is lost in translation).
// Restoring it makes every subsequent hit/miss/eviction decision — and
// therefore the paper's swap counts — identical to the uninterrupted
// run's.
type BufferState struct {
	Resident []buffer.SnapshotEntry `json:"resident"`
	Cursor   int                    `json:"cursor"`
	Stats    buffer.Stats           `json:"stats"`
}

// Phase2State is one Phase-2 checkpoint, taken at a schedule-step boundary.
// Together with the (re-derivable) Phase-1 sub-factors it is the complete
// mutable state of the refinement: the A factor partitions carry the
// numbers, everything else pins the engine's position so replay continues
// exactly where the checkpoint was taken.
type Phase2State struct {
	// NextStep is the schedule step index replay resumes at.
	NextStep int `json:"next_step"`
	// Pos is the engine's position in the cyclic access string.
	Pos int `json:"pos"`
	// Updates counts sub-factor updates performed so far.
	Updates int `json:"updates"`
	// VirtualIters and FitTrace are the completed virtual iterations and
	// their surrogate-fit trajectory.
	VirtualIters int       `json:"virtual_iters"`
	FitTrace     []float64 `json:"fit_trace"`
	// PrevFit is the fit at the last virtual-iteration boundary (the
	// convergence comparand).
	PrevFit float64 `json:"prev_fit"`
	// WarmupLeft is the remaining warm-up virtual iterations.
	WarmupLeft int `json:"warmup_left"`
	// Buffer is the buffer-manager snapshot.
	Buffer BufferState `json:"buffer"`
	// StoreStats is the cumulative store traffic at the checkpoint.
	StoreStats blockstore.Stats `json:"store_stats"`
	// Metrics is the telemetry registry's counter snapshot at the
	// checkpoint, so a resumed run's counters continue exactly where the
	// interrupted run's stopped. Absent (nil) in pre-telemetry
	// checkpoints and in runs without a metrics registry — both restore
	// nothing, keeping old checkpoint files loadable.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// A[mode][part] are the current factor partitions A(mode)_(part); they
	// travel in the binary section of the checkpoint file, not the JSON
	// header.
	A [][]*mat.Matrix `json:"-"`
}

// phase2Header is the JSON half of the checkpoint file; AParts records the
// per-mode partition counts so the binary matrix section is self-framing.
type phase2Header struct {
	Phase2State
	AParts []int `json:"a_parts"`
}

func (r *Run) phase2Path() string { return filepath.Join(r.dir, "phase2.ckpt") }

// SavePhase2 atomically installs st as the latest Phase-2 checkpoint. It
// implements refine.Checkpointer.
func (r *Run) SavePhase2(st *Phase2State) error {
	hdr := phase2Header{Phase2State: *st, AParts: make([]int, len(st.A))}
	var mats []*mat.Matrix
	for m, row := range st.A {
		hdr.AParts[m] = len(row)
		mats = append(mats, row...)
	}
	payload, err := encodeSection("phase2", hdr, mats)
	if err != nil {
		return err
	}
	data := frame(phase2Magic, payload)
	if err := WriteFileAtomic(r.dir, "phase2.ckpt", data); err != nil {
		return err
	}
	r.noteCheckpointWrite("phase2.ckpt", len(data))
	return nil
}

// LoadPhase2 returns the latest Phase-2 checkpoint, or ok=false when none
// exists (fresh run, or the run was interrupted before the first Phase-2
// checkpoint). Unlike Phase-1 block files, a corrupt phase2.ckpt is an
// error: it is the one file that cannot be recomputed locally, and silently
// restarting Phase 2 would discard real progress the caller believes is
// durable. It implements refine.Checkpointer.
func (r *Run) LoadPhase2() (*Phase2State, bool, error) {
	data, err := os.ReadFile(r.phase2Path())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("runstate: read phase2 checkpoint: %w", err)
	}
	payload, err := unframe(phase2Magic, data)
	if err != nil {
		return nil, false, err
	}
	var hdr phase2Header
	br, err := decodeSection("phase2", payload, &hdr)
	if err != nil {
		return nil, false, err
	}
	total := 0
	for _, parts := range hdr.AParts {
		if parts < 0 || parts > 1<<20 {
			return nil, false, fmt.Errorf("%w: phase2 declares %d partitions", ErrCorrupt, parts)
		}
		total += parts
	}
	mats, err := readMatrices("phase2", br, total)
	if err != nil {
		return nil, false, err
	}
	st := hdr.Phase2State
	st.A = make([][]*mat.Matrix, len(hdr.AParts))
	for m, parts := range hdr.AParts {
		st.A[m], mats = mats[:parts], mats[parts:]
	}
	return &st, true, nil
}

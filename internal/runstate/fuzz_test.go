package runstate

import (
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRunstateManifest feeds arbitrary bytes to the manifest loader
// through the real resume path (Open with resume=true). Contract: a
// corrupt, truncated or hostile manifest.json must surface as an error —
// ErrCorrupt, ErrMismatch or a version error — never as a panic, and a
// manifest that does load must carry a stage the state machine knows.
//
// The seed corpus mirrors the truncated/corrupt-manifest regression tests:
// a valid manifest, CRC and body mutations, version skew, bad stages and
// non-JSON noise.
func FuzzRunstateManifest(f *testing.F) {
	meta := Meta{InputKind: "dense", Dims: []int{4, 4}, Partitions: []int{2, 2}, Rank: 2, Seed: 7}
	dir := f.TempDir()
	if _, err := Open(dir, meta, 4, false); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated JSON
	f.Add([]byte("{}"))
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"version":1,"crc32":0,"body":{}}`))
	f.Add([]byte(`{"version":99,"crc32":0,"body":{}}`))
	// Well-framed envelope (correct CRC) around a hostile body.
	for _, body := range []string{
		`{"meta":{},"stage":"phase9","num_blocks":4}`,
		`{"meta":{"dims":[-1]},"stage":"phase1","num_blocks":-3}`,
		`{"meta":{"constraint":"nonneg","lambda":1e308},"stage":"done","num_blocks":4}`,
	} {
		env, err := json.Marshal(envelope{Version: Version, CRC32: crc32.ChecksumIEEE([]byte(body)), Body: []byte(body)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, meta, 4, true)
		if err != nil {
			return
		}
		switch r.Stage() {
		case StagePhase1, StagePhase2, StageDone:
		default:
			t.Fatalf("loaded manifest with unknown stage %q", r.Stage())
		}
	})
}

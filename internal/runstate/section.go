package runstate

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"twopcp/internal/blockstore"
	"twopcp/internal/mat"
)

// Binary checkpoint files (phase2.ckpt, result.ckpt) share one section
// layout inside their frame: a uint32 length-prefixed JSON header followed
// by matrices in blockstore.WriteMatrix encoding. The header declares how
// many matrices follow; encode/decode of the framing lives here so the two
// checkpoint kinds can never diverge in corruption handling.

// encodeSection serializes hdr as the JSON header and appends the matrix
// section.
func encodeSection(what string, hdr any, mats []*mat.Matrix) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("runstate: marshal %s header: %w", what, err)
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(hj))); err != nil {
		return nil, fmt.Errorf("runstate: encode %s: %w", what, err)
	}
	buf.Write(hj)
	for _, m := range mats {
		if err := blockstore.WriteMatrix(&buf, m); err != nil {
			return nil, fmt.Errorf("runstate: encode %s: %w", what, err)
		}
	}
	return buf.Bytes(), nil
}

// decodeSection unmarshals the JSON header into hdr and returns a reader
// positioned at the start of the matrix section (read the matrices with
// readMatrices). Every framing defect maps to ErrCorrupt.
func decodeSection(what string, payload []byte, hdr any) (*bytes.Reader, error) {
	br := bytes.NewReader(payload)
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("%w: %s header length: %v", ErrCorrupt, what, err)
	}
	if int64(hlen) > int64(br.Len()) {
		return nil, fmt.Errorf("%w: %s header length %d exceeds payload", ErrCorrupt, what, hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("%w: %s header: %v", ErrCorrupt, what, err)
	}
	if err := json.Unmarshal(hj, hdr); err != nil {
		return nil, fmt.Errorf("%w: %s header: %v", ErrCorrupt, what, err)
	}
	return br, nil
}

// readMatrices reads n matrices from the section reader.
func readMatrices(what string, br *bytes.Reader, n int) ([]*mat.Matrix, error) {
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%w: %s declares %d matrices", ErrCorrupt, what, n)
	}
	mats := make([]*mat.Matrix, n)
	for i := range mats {
		m, err := blockstore.ReadMatrix(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s matrix %d: %v", ErrCorrupt, what, i, err)
		}
		mats[i] = m
	}
	return mats, nil
}

package runstate

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"twopcp/internal/mat"
)

// resultMagic tags the final-result checkpoint file.
const resultMagic = "TPRS"

// ResultState is the persisted form of a completed run's Result. Resuming
// a finished run returns it without recomputation (the no-op resume
// contract). The factor matrices travel in the binary section; everything
// else is the JSON header.
type ResultState struct {
	Fit          float64   `json:"fit"`
	Phase1NS     int64     `json:"phase1_ns"`
	Phase2NS     int64     `json:"phase2_ns"`
	VirtualIters int       `json:"virtual_iters"`
	Converged    bool      `json:"converged"`
	FitTrace     []float64 `json:"fit_trace"`
	Swaps        int64     `json:"swaps"`
	SwapsPerIter float64   `json:"swaps_per_iter"`
	BytesRead    int64     `json:"bytes_read"`
	BytesWritten int64     `json:"bytes_written"`
	// Phase0NS and Accelerated record the Phase-0 accelerator (zero /
	// false for brute-force runs; omitempty keeps pre-accelerator result
	// files byte-compatible).
	Phase0NS    int64 `json:"phase0_ns,omitempty"`
	Accelerated bool  `json:"accelerated,omitempty"`
	// The remaining RunStats fields (omitempty keeps pre-telemetry result
	// files byte-compatible; loading an old file reports them as zero).
	Blocks        int     `json:"blocks,omitempty"`
	Phase1Sweeps  int     `json:"phase1_sweeps,omitempty"`
	BufferHits    int64   `json:"buffer_hits,omitempty"`
	BufferHitRate float64 `json:"buffer_hit_rate,omitempty"`
	Evictions     int64   `json:"evictions,omitempty"`
	WriteBacks    int64   `json:"write_backs,omitempty"`
	// Retries counts transient-fault retries absorbed across the run
	// (omitempty keeps pre-resilience result files byte-compatible).
	Retries int64 `json:"retries,omitempty"`
	// Factors are the full per-mode factor matrices A(i).
	Factors []*mat.Matrix `json:"-"`
}

type resultHeader struct {
	ResultState
	NFactors int `json:"n_factors"`
}

func (r *Run) resultPath() string { return filepath.Join(r.dir, "result.ckpt") }

// SaveResult durably records the completed run's Result and marks the
// manifest done. The result file is installed before the stage flips, so a
// crash between the two leaves a resumable phase-2 state rather than a
// done-marker without a result.
func (r *Run) SaveResult(st *ResultState) error {
	hdr := resultHeader{ResultState: *st, NFactors: len(st.Factors)}
	payload, err := encodeSection("result", hdr, st.Factors)
	if err != nil {
		return err
	}
	data := frame(resultMagic, payload)
	if err := WriteFileAtomic(r.dir, "result.ckpt", data); err != nil {
		return err
	}
	r.noteCheckpointWrite("result.ckpt", len(data))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.body.Stage = StageDone
	return r.saveManifestLocked()
}

// LoadResult returns the completed run's Result. It fails with ErrCorrupt
// when the file is damaged and ErrNoManifest-style absence when the run
// never completed.
func (r *Run) LoadResult() (*ResultState, error) {
	st, err := readResultFile(r.resultPath())
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstate: run is marked done but %s is missing", filepath.Base(r.resultPath()))
	}
	return st, err
}

// ReadResult loads the completed result checkpoint from a run directory
// without opening the run — the read-only path snapshot exporters and the
// job daemon's self-heal use to recover factors from a finished
// checkpoint. A missing result file surfaces fs.ErrNotExist via
// errors.Is; a damaged one fails with ErrCorrupt.
func ReadResult(dir string) (*ResultState, error) {
	return readResultFile(filepath.Join(dir, "result.ckpt"))
}

// readResultFile decodes one result.ckpt: CRC frame, JSON header, binary
// factor matrices.
func readResultFile(path string) (*ResultState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: read result: %w", err)
	}
	payload, err := unframe(resultMagic, data)
	if err != nil {
		return nil, err
	}
	var hdr resultHeader
	br, err := decodeSection("result", payload, &hdr)
	if err != nil {
		return nil, err
	}
	st := hdr.ResultState
	st.Factors, err = readMatrices("result", br, hdr.NFactors)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

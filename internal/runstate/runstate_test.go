package runstate

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twopcp/internal/blockstore"
	"twopcp/internal/buffer"
	"twopcp/internal/mat"
)

func testMeta() Meta {
	return Meta{
		InputKind: "dense", Dims: []int{16, 16, 16}, Partitions: []int{2, 2, 2},
		Rank: 4, Schedule: "HO", Replacement: "FOR", BufferFraction: 0.5,
		MaxIters: 20, Tol: 1e-2, Seed: 3,
	}
}

func TestManifestLifecycle(t *testing.T) {
	dir := t.TempDir()
	rs, err := Open(dir, testMeta(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stage() != StagePhase1 {
		t.Fatalf("fresh run stage = %q", rs.Stage())
	}

	// A second fresh open must refuse the existing manifest.
	if _, err := Open(dir, testMeta(), 8, false); !errors.Is(err, ErrExists) {
		t.Fatalf("fresh open over existing manifest: %v", err)
	}

	// Resume sees the same state.
	rs2, err := Open(dir, testMeta(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Stage() != StagePhase1 || rs2.Phase1Completed() != 0 {
		t.Fatalf("resumed stage=%q completed=%d", rs2.Stage(), rs2.Phase1Completed())
	}

	// Stage transition survives reopen.
	if err := rs2.BeginPhase2(); err != nil {
		t.Fatal(err)
	}
	rs3, err := Open(dir, testMeta(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.Stage() != StagePhase2 {
		t.Fatalf("stage after BeginPhase2 reopen = %q", rs3.Stage())
	}
}

func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testMeta(), 8, true); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("resume without manifest: %v", err)
	}
	if _, err := Open(dir, testMeta(), 8, false); err != nil {
		t.Fatal(err)
	}

	other := testMeta()
	other.Seed = 4
	if _, err := Open(dir, other, 8, true); !errors.Is(err, ErrMismatch) {
		t.Fatalf("resume with different seed: %v", err)
	}
	other = testMeta()
	other.Rank = 5
	if _, err := Open(dir, other, 8, true); !errors.Is(err, ErrMismatch) {
		t.Fatalf("resume with different rank: %v", err)
	}
	if _, err := Open(dir, testMeta(), 9, true); !errors.Is(err, ErrMismatch) {
		t.Fatalf("resume with different block count: %v", err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"bitflip", func(d []byte) []byte {
			// Flip a byte inside the body (past the envelope prefix).
			d[len(d)-10] ^= 0x40
			return d
		}},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Open(dir, testMeta(), 8, false); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "manifest.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, testMeta(), 8, true); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("resume over %s manifest: %v", tc.name, err)
			}
		})
	}
}

func TestBlockRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	rs, err := Open(dir, testMeta(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	factors := []*mat.Matrix{mat.Random(8, 4, rng), mat.Random(6, 4, rng), mat.Random(5, 4, rng)}
	if err := rs.SaveBlock(3, factors, 0.875); err != nil {
		t.Fatal(err)
	}
	if rs.Phase1Completed() != 1 {
		t.Fatalf("completed = %d", rs.Phase1Completed())
	}

	got, fit, ok, err := rs.LoadBlock(3)
	if err != nil || !ok {
		t.Fatalf("LoadBlock: ok=%v err=%v", ok, err)
	}
	if fit != 0.875 {
		t.Fatalf("fit = %v", fit)
	}
	for m := range factors {
		for i := range factors[m].Data {
			if got[m].Data[i] != factors[m].Data[i] {
				t.Fatalf("factor %d differs at %d", m, i)
			}
		}
	}

	// Absent block.
	if _, _, ok, err := rs.LoadBlock(5); ok || err != nil {
		t.Fatalf("absent block: ok=%v err=%v", ok, err)
	}

	// A truncated block file is treated as absent (recompute), not fatal.
	path := rs.blockPath(3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := rs.LoadBlock(3); ok || err != nil {
		t.Fatalf("truncated block: ok=%v err=%v", ok, err)
	}
	// Zero-length too.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := rs.LoadBlock(3); ok || err != nil {
		t.Fatalf("empty block: ok=%v err=%v", ok, err)
	}
}

func TestPhase2RoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	rs, err := Open(dir, testMeta(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok, err := rs.LoadPhase2(); st != nil || ok || err != nil {
		t.Fatalf("fresh LoadPhase2: %v %v %v", st, ok, err)
	}

	rng := rand.New(rand.NewSource(2))
	st := &Phase2State{
		NextStep: 5, Pos: 17, Updates: 40, VirtualIters: 3,
		FitTrace: []float64{0.1, 0.2, 0.3}, PrevFit: 0.3, WarmupLeft: 1,
		Buffer: BufferState{
			Resident: []buffer.SnapshotEntry{{ID: 2, Dirty: true}, {ID: 0}, {ID: 5, Dirty: true}},
			Cursor:   9,
			Stats:    buffer.Stats{Fetches: 11, Hits: 7, Evictions: 3, WriteBacks: 2},
		},
		StoreStats: blockstore.Stats{Reads: 13, Writes: 9, BytesRead: 4096, BytesWritten: 2048},
		A: [][]*mat.Matrix{
			{mat.Random(8, 4, rng), mat.Random(8, 4, rng)},
			{mat.Random(8, 4, rng), mat.Random(8, 4, rng)},
			{mat.Random(8, 4, rng), mat.Random(8, 4, rng)},
		},
	}
	if err := rs.SavePhase2(st); err != nil {
		t.Fatal(err)
	}
	got, ok, err := rs.LoadPhase2()
	if err != nil || !ok {
		t.Fatalf("LoadPhase2: ok=%v err=%v", ok, err)
	}
	if got.NextStep != st.NextStep || got.Pos != st.Pos || got.Updates != st.Updates ||
		got.VirtualIters != st.VirtualIters || got.PrevFit != st.PrevFit || got.WarmupLeft != st.WarmupLeft {
		t.Fatalf("scalar state differs: %+v", got)
	}
	if len(got.FitTrace) != 3 || got.FitTrace[2] != 0.3 {
		t.Fatalf("trace differs: %v", got.FitTrace)
	}
	if len(got.Buffer.Resident) != 3 || got.Buffer.Resident[0] != st.Buffer.Resident[0] ||
		got.Buffer.Cursor != 9 || got.Buffer.Stats != st.Buffer.Stats {
		t.Fatalf("buffer state differs: %+v", got.Buffer)
	}
	if got.StoreStats != st.StoreStats {
		t.Fatalf("store stats differ: %+v", got.StoreStats)
	}
	for m := range st.A {
		for p := range st.A[m] {
			for i := range st.A[m][p].Data {
				if got.A[m][p].Data[i] != st.A[m][p].Data[i] {
					t.Fatalf("A(%d)_(%d) differs at %d", m, p, i)
				}
			}
		}
	}

	// A second save atomically replaces the first.
	st.NextStep = 6
	if err := rs.SavePhase2(st); err != nil {
		t.Fatal(err)
	}
	got, _, err = rs.LoadPhase2()
	if err != nil || got.NextStep != 6 {
		t.Fatalf("overwrite: step=%d err=%v", got.NextStep, err)
	}

	// Corruption of the one non-recomputable checkpoint is an error.
	path := rs.phase2Path()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.LoadPhase2(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt phase2: %v", err)
	}
	if err := os.WriteFile(path, data[:8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.LoadPhase2(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated phase2: %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rs, err := Open(dir, testMeta(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	st := &ResultState{
		Fit: 0.99, Phase1NS: 100, Phase2NS: 200, VirtualIters: 12, Converged: true,
		FitTrace: []float64{0.5, 0.9, 0.99}, Swaps: 42, SwapsPerIter: 3.5,
		BytesRead: 1 << 20, BytesWritten: 1 << 19,
		Factors: []*mat.Matrix{mat.Random(16, 4, rng), mat.Random(16, 4, rng), mat.Random(16, 4, rng)},
	}
	if err := rs.SaveResult(st); err != nil {
		t.Fatal(err)
	}
	if rs.Stage() != StageDone {
		t.Fatalf("stage after SaveResult = %q", rs.Stage())
	}

	rs2, err := Open(dir, testMeta(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Stage() != StageDone {
		t.Fatalf("reopened stage = %q", rs2.Stage())
	}
	got, err := rs2.LoadResult()
	if err != nil {
		t.Fatal(err)
	}
	if got.Fit != st.Fit || got.VirtualIters != st.VirtualIters || !got.Converged ||
		got.Swaps != st.Swaps || len(got.FitTrace) != 3 || len(got.Factors) != 3 {
		t.Fatalf("result differs: %+v", got)
	}
	for m := range st.Factors {
		for i := range st.Factors[m].Data {
			if got.Factors[m].Data[i] != st.Factors[m].Data[i] {
				t.Fatalf("factor %d differs at %d", m, i)
			}
		}
	}
}

// TestFreshOpenRemovesStaleFiles guards against a fresh run loading
// checkpoint artifacts it did not write.
func TestFreshOpenRemovesStaleFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"phase2.ckpt", "result.ckpt", "p1-block-0.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := Open(dir, testMeta(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := rs.LoadBlock(0); ok || err != nil {
		t.Fatalf("stale block visible: ok=%v err=%v", ok, err)
	}
	if _, ok, err := rs.LoadPhase2(); ok || err != nil {
		t.Fatalf("stale phase2 visible: ok=%v err=%v", ok, err)
	}
}

// TestOpenSweepsOrphanedTempFiles: a SIGKILL can land between
// WriteFileAtomic's CreateTemp and rename; both fresh and resumed Opens
// must clear the orphans so they never accumulate across crashes.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testMeta(), 8, false); err != nil {
		t.Fatal(err)
	}
	orphans := []string{"phase2.ckpt.tmp-123", "manifest.json.tmp-9", "p1-block-3.ckpt.tmp-77"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("dead"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, testMeta(), 8, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range orphans {
		if _, err := os.Lstat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived resume Open (err=%v)", name, err)
		}
	}
}

// TestHasManifest pins the resume-or-create predicate.
func TestHasManifest(t *testing.T) {
	dir := t.TempDir()
	if HasManifest(dir) {
		t.Fatal("HasManifest true for empty dir")
	}
	if _, err := Open(dir, testMeta(), 8, false); err != nil {
		t.Fatal(err)
	}
	if !HasManifest(dir) {
		t.Fatal("HasManifest false after Open")
	}
}

// TestCheckpointDirNotWritable verifies the clear-error contract when the
// checkpoint location cannot be created: a path under a regular file fails
// on every platform and uid; a read-only directory additionally fails when
// the test is not running as root (root bypasses permission bits).
func TestCheckpointDirNotWritable(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "ckpt"), testMeta(), 8, false); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}

	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	ro := filepath.Join(base, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(ro, "ckpt"), testMeta(), 8, false); err == nil {
		t.Fatal("Open under a read-only directory succeeded")
	}
	if _, err := Open(ro, testMeta(), 8, false); err == nil {
		t.Fatal("Open of a read-only directory succeeded")
	}
}

func TestRecordPhase0SurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{InputKind: "dense", Dims: []int{4, 4}, Partitions: []int{2, 2}, Rank: 2, Accelerator: "tucker"}
	rs, err := Open(dir, meta, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if acc, ns := rs.Phase0(); acc || ns != 0 {
		t.Fatalf("fresh run has Phase-0 outcome %v/%d", acc, ns)
	}
	if err := rs.RecordPhase0(true, 12345); err != nil {
		t.Fatal(err)
	}
	rs2, err := Open(dir, meta, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	acc, ns := rs2.Phase0()
	if !acc || ns != 12345 {
		t.Fatalf("reopened Phase-0 outcome = %v/%d, want true/12345", acc, ns)
	}
}

package runstate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"twopcp/internal/blockstore"
	"twopcp/internal/mat"
)

// blockMagic tags a Phase-1 block checkpoint file.
const blockMagic = "TP1B"

func (r *Run) blockPath(id int) string {
	return filepath.Join(r.dir, fmt.Sprintf("p1-block-%d.ckpt", id))
}

// SaveBlock durably records the completed Phase-1 block: its λ-folded
// sub-factors and ALS fit go into p1-block-<id>.ckpt and the manifest's
// completion set is updated. It implements phase1.Checkpointer and is safe
// for concurrent use by the Phase-1 worker pool.
func (r *Run) SaveBlock(id int, factors []*mat.Matrix, fit float64) error {
	var buf bytes.Buffer
	hdr := struct {
		ID     int32
		Fit    float64
		NModes int32
	}{int32(id), fit, int32(len(factors))}
	if err := binary.Write(&buf, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("runstate: encode block %d: %w", id, err)
	}
	for _, f := range factors {
		if err := blockstore.WriteMatrix(&buf, f); err != nil {
			return fmt.Errorf("runstate: encode block %d: %w", id, err)
		}
	}
	name := fmt.Sprintf("p1-block-%d.ckpt", id)
	data := frame(blockMagic, buf.Bytes())
	if err := WriteFileAtomic(r.dir, name, data); err != nil {
		return err
	}
	r.noteCheckpointWrite(name, len(data))
	return r.markBlockDone(id)
}

// LoadBlock returns the checkpointed sub-factors and fit of block id, or
// ok=false when the block has no (usable) checkpoint. A truncated or
// CRC-invalid block file is treated as absent — the block is re-derivable
// from the input, so recomputing beats failing the resume. Only real I/O
// errors (permissions, disk faults) are returned. It implements
// phase1.Checkpointer.
func (r *Run) LoadBlock(id int) ([]*mat.Matrix, float64, bool, error) {
	data, err := os.ReadFile(r.blockPath(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, false, nil
		}
		return nil, 0, false, fmt.Errorf("runstate: read block %d: %w", id, err)
	}
	payload, err := unframe(blockMagic, data)
	if err != nil {
		return nil, 0, false, nil // corrupt: recompute
	}
	br := bytes.NewReader(payload)
	var hdr struct {
		ID     int32
		Fit    float64
		NModes int32
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, 0, false, nil
	}
	if int(hdr.ID) != id || hdr.NModes < 0 || hdr.NModes > 64 {
		return nil, 0, false, nil
	}
	factors := make([]*mat.Matrix, hdr.NModes)
	for m := range factors {
		factors[m], err = blockstore.ReadMatrix(br)
		if err != nil {
			return nil, 0, false, nil
		}
	}
	// A valid block file IS the completion record; rebuild the in-memory
	// summary from it so a resumed run's manifest flushes stay accurate
	// even when the crash predated the last batched manifest write.
	r.noteBlockDone(id)
	return factors, hdr.Fit, true, nil
}

// noteBlockDone records a completion in memory only; the next manifest
// flush (markBlockDone batching, or BeginPhase2) persists it.
func (r *Run) noteBlockDone(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done[id] {
		r.done[id] = true
		r.body.Phase1Done = append(r.body.Phase1Done, id)
	}
}

// Package runstate makes long 2PCP decompositions durable: it maintains a
// fsync'd, versioned run manifest plus per-stage checkpoint files under a
// single checkpoint directory, so a run killed at an arbitrary point can be
// restarted and skip every completed block decomposition (Phase 1) and
// every refinement step up to the last checkpoint (Phase 2) — producing
// bit-for-bit identical factors, FitTrace and swap counts to an
// uninterrupted run (the package-level determinism contract of twopcp makes
// replay from a checkpoint exact).
//
// # Layout
//
// A checkpoint directory contains:
//
//	manifest.json        versioned JSON envelope (CRC32-protected body):
//	                     the run's option fingerprint, the partition
//	                     pattern, the current stage and the set of
//	                     completed Phase-1 blocks.
//	p1-block-<id>.ckpt   one binary file per completed Phase-1 block:
//	                     the block's λ-folded sub-factors and ALS fit.
//	phase2.ckpt          the latest Phase-2 checkpoint: schedule position,
//	                     FitTrace so far, every current A(i)_(ki) factor
//	                     partition, the buffer-manager snapshot and the
//	                     cumulative I/O statistics.
//	result.ckpt          the final Result once the run completes; resuming
//	                     a completed run is a no-op that returns it.
//
// # Durability
//
// Every file is written with the same discipline: serialize to a temp file
// in the checkpoint directory, fsync it, rename it into place, then fsync
// the directory. A crash can therefore never surface a torn or half-written
// manifest or checkpoint — readers see either the previous complete version
// or the new complete version. Binary checkpoint files carry a magic tag
// and a CRC32 of their payload; the manifest body is CRC32-protected inside
// its JSON envelope. A checkpoint that fails its CRC is reported as
// ErrCorrupt (Phase-1 block files are the exception: they are re-derivable,
// so a corrupt one is treated as absent and the block is recomputed).
package runstate

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"

	"twopcp/internal/obs"
)

// Version is the manifest schema version this package writes.
const Version = 1

var (
	// ErrNoManifest is returned when resuming from a directory that holds
	// no (complete) manifest.
	ErrNoManifest = errors.New("runstate: no manifest")
	// ErrMismatch is returned when a manifest's option fingerprint does not
	// match the resuming run's options.
	ErrMismatch = errors.New("runstate: manifest does not match run options")
	// ErrCorrupt marks a manifest or checkpoint whose CRC or framing is
	// invalid.
	ErrCorrupt = errors.New("runstate: corrupt checkpoint")
	// ErrExists is returned when starting a fresh (non-resume) run in a
	// directory that already holds a manifest.
	ErrExists = errors.New("runstate: checkpoint directory already holds a run manifest")
)

// Stage is the run's coarse progress marker.
type Stage string

const (
	// StagePhase1 means per-block decompositions are (or were) in progress.
	StagePhase1 Stage = "phase1"
	// StagePhase2 means Phase 1 completed and refinement is in progress.
	StagePhase2 Stage = "phase2"
	// StageDone means the run completed and result.ckpt holds the Result.
	StageDone Stage = "done"
)

// Meta is the option fingerprint recorded in the manifest. Resume compares
// it field-for-field: every field here changes the run's results, so a
// mismatch means the checkpoint belongs to a different computation.
// Parallelism and I/O-pipeline knobs (Workers, KernelWorkers,
// PrefetchDepth, IOWorkers) are deliberately absent — results are
// bit-identical at every setting, so a run may be resumed with different
// parallelism.
type Meta struct {
	// InputKind distinguishes the pipeline front-end: "dense", "sparse" or
	// "tiled".
	InputKind string `json:"input_kind"`
	// Dims are the input tensor's mode sizes.
	Dims []int `json:"dims"`
	// Partitions is the resolved pattern K (one entry per mode).
	Partitions []int `json:"partitions"`
	Rank       int   `json:"rank"`
	// Schedule and Replacement are the paper abbreviations (HO, FOR, ...).
	Schedule    string `json:"schedule"`
	Replacement string `json:"replacement"`
	// The remaining fields are recorded exactly as the caller passed them
	// (zero means "the default"), so a resume with the same literal options
	// matches.
	BufferFraction float64 `json:"buffer_fraction"`
	BufferBytes    int64   `json:"buffer_bytes"`
	MaxIters       int     `json:"max_iters"`
	Tol            float64 `json:"tol"`
	Phase1MaxIters int     `json:"phase1_max_iters"`
	Phase1Tol      float64 `json:"phase1_tol"`
	Seed           int64   `json:"seed"`
	// Constraint identifies the row-update solver ("" = least squares,
	// "ridge", "nonneg") and Lambda the ridge damping weight. Both change
	// every factor the run produces, so resuming a constrained checkpoint
	// with a different solver (or weight) must be rejected. omitempty
	// keeps unconstrained manifests byte-compatible with pre-solver
	// releases, so their checkpoints remain resumable.
	Constraint string  `json:"constraint,omitempty"`
	Lambda     float64 `json:"lambda,omitempty"`
	// Accelerator identifies the Phase-0 strategy ("" = none, "tucker",
	// "sketched") with its tuning knobs. Phase 0 re-derives the warm
	// start deterministically from these options plus Seed on resume, so
	// they change every factor an accelerated run produces and a resume
	// with different values must be rejected. omitempty keeps
	// brute-force manifests byte-compatible with pre-accelerator
	// releases.
	Accelerator      string `json:"accelerator,omitempty"`
	Phase0Rank       int    `json:"phase0_rank,omitempty"`
	SketchOversample int    `json:"sketch_oversample,omitempty"`
}

// manifestBody is the CRC-protected content of manifest.json.
type manifestBody struct {
	Meta      Meta  `json:"meta"`
	Stage     Stage `json:"stage"`
	NumBlocks int   `json:"num_blocks"`
	// Phase1Done lists the linear ids of completed Phase-1 blocks, sorted.
	Phase1Done []int `json:"phase1_done,omitempty"`
	// Phase0Accelerated and Phase0NS record the Phase-0 outcome of the
	// original run (warm start installed? wall clock). A resume that has
	// advanced past Phase 1 skips recomputing Phase 0, so the final
	// Result restores these instead of misreporting an unaccelerated
	// run. Outcome, not fingerprint: deliberately NOT part of Meta, which
	// is compared field-for-field on resume.
	Phase0Accelerated bool  `json:"phase0_accelerated,omitempty"`
	Phase0NS          int64 `json:"phase0_ns,omitempty"`
}

// envelope frames the manifest body with a version and a CRC32 (IEEE) of
// the exact body bytes.
type envelope struct {
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Body    json.RawMessage `json:"body"`
}

// Run is a handle on one checkpoint directory. It is safe for concurrent
// use (Phase-1 workers checkpoint blocks in parallel).
type Run struct {
	dir     string
	resumed bool

	mu   sync.Mutex
	body manifestBody
	done map[int]bool // mirror of body.Phase1Done

	// Telemetry (see SetObserver). tele is read without mu — it is set
	// once before the run's worker pools start.
	tele        *obs.Observer
	cCkptWrites *obs.Counter
	cCkptBytes  *obs.Counter
	cManifest   *obs.Counter
}

// SetObserver attaches telemetry to the run handle: a checkpoint.write
// trace event plus write/byte counters per installed checkpoint file, and
// a manifest-rewrite counter (metrics only — manifest rewrites are
// batched, so their count varies with Phase-1 completion order). Call it
// once, before any checkpoint activity.
func (r *Run) SetObserver(ob *obs.Observer) {
	r.tele = ob
	r.cCkptWrites = ob.Counter("runstate.checkpoint_writes")
	r.cCkptBytes = ob.Counter("runstate.checkpoint_bytes")
	r.cManifest = ob.Counter("runstate.manifest_writes")
}

// noteCheckpointWrite reports one installed checkpoint file to telemetry.
func (r *Run) noteCheckpointWrite(name string, bytes int) {
	if r.cCkptWrites != nil {
		r.cCkptWrites.Inc()
		r.cCkptBytes.Add(int64(bytes))
	}
	if r.tele.Tracing() {
		r.tele.Emit("checkpoint.write", obs.Str("file", name), obs.Int("bytes", bytes))
	}
}

// Open creates (resume=false) or loads (resume=true) the run manifest in
// dir.
//
// A fresh run requires a directory without a manifest (ErrExists
// otherwise); any stale checkpoint files from an earlier, manifest-less
// state are removed so they can never leak into the new run. A resumed run
// requires a manifest (ErrNoManifest) whose Meta matches field-for-field
// (ErrMismatch); numBlocks must also agree.
func Open(dir string, meta Meta, numBlocks int, resume bool) (*Run, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: create checkpoint dir: %w", err)
	}
	r := &Run{dir: dir, resumed: resume, done: make(map[int]bool)}
	path := r.manifestPath()
	// A SIGKILL can land between WriteFileAtomic's CreateTemp and rename;
	// no writer is live at Open time, so any temp file here is dead weight
	// from a previous crash.
	if err := r.removeFiles(isTempFile); err != nil {
		return nil, err
	}
	if resume {
		body, err := loadManifest(path)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(body.Meta, meta) {
			return nil, fmt.Errorf("%w: manifest records %+v, run has %+v", ErrMismatch, body.Meta, meta)
		}
		if body.NumBlocks != numBlocks {
			return nil, fmt.Errorf("%w: manifest records %d blocks, run has %d", ErrMismatch, body.NumBlocks, numBlocks)
		}
		r.body = *body
		for _, id := range body.Phase1Done {
			r.done[id] = true
		}
		return r, nil
	}
	if _, err := os.Lstat(path); err == nil {
		return nil, fmt.Errorf("%w: %s (pass Resume to continue it, or use a fresh directory)", ErrExists, dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstate: stat manifest: %w", err)
	}
	if err := r.removeFiles(isStaleCheckpoint); err != nil {
		return nil, err
	}
	r.body = manifestBody{Meta: meta, Stage: StagePhase1, NumBlocks: numBlocks}
	if err := r.saveManifestLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the checkpoint directory.
func (r *Run) Dir() string { return r.dir }

// Resumed reports whether this handle was opened in resume mode.
func (r *Run) Resumed() bool { return r.resumed }

// Stage returns the run's current stage.
func (r *Run) Stage() Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.body.Stage
}

// Meta returns the recorded option fingerprint.
func (r *Run) Meta() Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.body.Meta
}

// RecordPhase0 durably records the Phase-0 outcome (see manifestBody).
// Called right after Phase 0 runs — including deterministic recomputation
// on a Phase-1 resume, which rewrites the same values.
func (r *Run) RecordPhase0(accelerated bool, ns int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.body.Phase0Accelerated = accelerated
	r.body.Phase0NS = ns
	return r.saveManifestLocked()
}

// Phase0 returns the recorded Phase-0 outcome (zero values for
// brute-force runs and pre-accelerator manifests).
func (r *Run) Phase0() (accelerated bool, ns int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.body.Phase0Accelerated, r.body.Phase0NS
}

// Phase1Completed returns how many Phase-1 blocks the manifest records as
// done.
func (r *Run) Phase1Completed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.body.Phase1Done)
}

// BeginPhase2 marks Phase 1 complete. It is idempotent.
func (r *Run) BeginPhase2() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.body.Stage != StagePhase1 {
		return nil
	}
	r.body.Stage = StagePhase2
	return r.saveManifestLocked()
}

func (r *Run) manifestPath() string { return filepath.Join(r.dir, "manifest.json") }

// saveManifestLocked atomically rewrites manifest.json. Called with mu held
// (or before the Run is shared).
func (r *Run) saveManifestLocked() error {
	sort.Ints(r.body.Phase1Done)
	body, err := json.Marshal(r.body)
	if err != nil {
		return fmt.Errorf("runstate: marshal manifest: %w", err)
	}
	env, err := json.Marshal(envelope{Version: Version, CRC32: crc32.ChecksumIEEE(body), Body: body})
	if err != nil {
		return fmt.Errorf("runstate: marshal manifest envelope: %w", err)
	}
	if r.cManifest != nil {
		r.cManifest.Inc()
	}
	return WriteFileAtomic(r.dir, "manifest.json", append(env, '\n'))
}

func loadManifest(path string) (*manifestBody, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w in %s", ErrNoManifest, filepath.Dir(path))
		}
		return nil, fmt.Errorf("runstate: read manifest: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: manifest is not valid JSON: %v", ErrCorrupt, err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("runstate: manifest version %d, this build reads %d", env.Version, Version)
	}
	if crc32.ChecksumIEEE(env.Body) != env.CRC32 {
		return nil, fmt.Errorf("%w: manifest body CRC mismatch", ErrCorrupt)
	}
	var body manifestBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		return nil, fmt.Errorf("%w: manifest body: %v", ErrCorrupt, err)
	}
	switch body.Stage {
	case StagePhase1, StagePhase2, StageDone:
	default:
		return nil, fmt.Errorf("%w: unknown stage %q", ErrCorrupt, body.Stage)
	}
	return &body, nil
}

// ReadMeta returns the option fingerprint recorded in dir's manifest
// without opening the run — the read-only path snapshot exporters use to
// stamp derived artifacts with the options that produced them. It fails
// with ErrNoManifest when dir holds no run and ErrCorrupt when the
// manifest is damaged.
func ReadMeta(dir string) (Meta, error) {
	body, err := loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return Meta{}, err
	}
	return body.Meta, nil
}

// HasManifest reports whether dir holds a run manifest — the
// resume-or-create predicate for callers that manage a family of
// checkpoint subdirectories (an interrupted multi-run suite may have
// started only some of them before the crash).
func HasManifest(dir string) bool {
	_, err := os.Lstat(filepath.Join(dir, "manifest.json"))
	return err == nil
}

// isStaleCheckpoint matches checkpoint artifacts left behind without a
// manifest (e.g. from an interrupted cleanup); a fresh run removes them so
// it can never load state it did not write.
func isStaleCheckpoint(name string) bool {
	return name == "phase2.ckpt" || name == "result.ckpt" ||
		strings.HasPrefix(name, "p1-block-") || isTempFile(name)
}

// isTempFile matches WriteFileAtomic's in-flight temp names.
func isTempFile(name string) bool { return strings.Contains(name, ".tmp-") }

// removeFiles deletes every directory entry matching the predicate.
func (r *Run) removeFiles(match func(name string) bool) error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("runstate: scan checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if !match(e.Name()) {
			continue
		}
		if err := os.Remove(filepath.Join(r.dir, e.Name())); err != nil {
			return fmt.Errorf("runstate: remove stale %s: %w", e.Name(), err)
		}
	}
	return nil
}

// phase1FlushEvery batches the manifest rewrite during Phase 1. The
// per-block .ckpt files (CRC-tagged, atomically installed before the block
// is marked done) are the authoritative completion record on resume; the
// manifest's Phase1Done list is a progress summary, so it does not need a
// full rewrite + fsync pair per block — at billion-block granularity that
// would serialize the worker pool behind O(blocks²) manifest I/O.
const phase1FlushEvery = 64

// markBlockDone records block id as complete, rewriting the manifest every
// phase1FlushEvery completions and at the final block (BeginPhase2 also
// persists the complete list when Phase 1 ends early between flushes).
func (r *Run) markBlockDone(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done[id] {
		return nil
	}
	r.done[id] = true
	r.body.Phase1Done = append(r.body.Phase1Done, id)
	if n := len(r.body.Phase1Done); n%phase1FlushEvery != 0 && n != r.body.NumBlocks {
		return nil
	}
	return r.saveManifestLocked()
}

// WriteFileAtomic durably installs data at dir/name with the package's
// standard discipline: temp file, fsync, rename, directory fsync. Readers
// observe either the previous complete file or the new complete file, and
// the rename survives a crash. It is exported so sibling durability layers
// (the jobs store) install their records with exactly the same guarantees
// as run manifests.
func WriteFileAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("runstate: write %s: %w", name, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("runstate: sync %s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: close %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: install %s: %w", name, err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("runstate: dirsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("runstate: dirsync: %w", err)
	}
	return nil
}

// frame prefixes payload with a 4-byte magic and a little-endian CRC32
// (IEEE) of the payload; unframe validates and strips both.
func frame(magic string, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+4+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func unframe(magic string, data []byte) ([]byte, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than its %s header", ErrCorrupt, len(data), magic)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %s)", ErrCorrupt, data[:len(magic)], magic)
	}
	want := binary.LittleEndian.Uint32(data[len(magic):])
	payload := data[len(magic)+4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: %s payload CRC mismatch", ErrCorrupt, magic)
	}
	return payload, nil
}

package serve

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"twopcp/internal/factorsnap"
	"twopcp/internal/mat"
)

// testModel builds a deterministic random model.
func testModel(t *testing.T, seed int64, rank int, dims ...int) (*Model, []float64, []*mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lambda := make([]float64, rank)
	for f := range lambda {
		lambda[f] = rng.Float64()*2 - 0.5
	}
	factors := make([]*mat.Matrix, len(dims))
	for n, d := range dims {
		m := mat.New(d, rank)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		factors[n] = m
	}
	mdl, err := New(lambda, factors, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return mdl, lambda, factors
}

// naiveCell is the reference reconstruction, written independently of the
// Model implementation.
func naiveCell(lambda []float64, factors []*mat.Matrix, at []int) float64 {
	s := 0.0
	for f := range lambda {
		v := lambda[f]
		for n, m := range factors {
			v *= m.At(at[n], f)
		}
		s += v
	}
	return s
}

func close12(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestReconstructMatchesNaive(t *testing.T) {
	mdl, lambda, factors := testModel(t, 1, 4, 7, 6, 5)
	for i := 0; i < 7; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 5; k++ {
				at := []int{i, j, k}
				got, err := mdl.Reconstruct(at)
				if err != nil {
					t.Fatalf("Reconstruct(%v): %v", at, err)
				}
				if want := naiveCell(lambda, factors, at); !close12(got, want) {
					t.Fatalf("Reconstruct(%v) = %g, want %g", at, got, want)
				}
			}
		}
	}
}

func TestReconstructBlockMatchesCells(t *testing.T) {
	cases := []struct {
		rank   int
		dims   []int
		lo, hi []int
	}{
		{3, []int{9}, []int{2}, []int{8}},
		{4, []int{8, 7}, []int{1, 0}, []int{8, 5}},
		{4, []int{7, 6, 5}, []int{1, 2, 0}, []int{6, 6, 4}},
		{2, []int{4, 5, 3, 6}, []int{0, 1, 0, 2}, []int{4, 4, 3, 6}},
	}
	for ci, tc := range cases {
		mdl, lambda, factors := testModel(t, int64(10+ci), tc.rank, tc.dims...)
		got, err := mdl.ReconstructBlock(tc.lo, tc.hi, nil)
		if err != nil {
			t.Fatalf("case %d: ReconstructBlock: %v", ci, err)
		}
		// Walk the block row-major, last mode fastest, and compare each
		// cell against the naive reference.
		at := append([]int(nil), tc.lo...)
		for pos := 0; ; pos++ {
			want := naiveCell(lambda, factors, at)
			if !close12(got[pos], want) {
				t.Fatalf("case %d: block[%d] (at %v) = %g, want %g", ci, pos, at, got[pos], want)
			}
			n := len(at) - 1
			for ; n >= 0; n-- {
				at[n]++
				if at[n] < tc.hi[n] {
					break
				}
				at[n] = tc.lo[n]
			}
			if n < 0 {
				if pos+1 != len(got) {
					t.Fatalf("case %d: walked %d cells, block has %d", ci, pos+1, len(got))
				}
				break
			}
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	mdl, lambda, factors := testModel(t, 3, 5, 40, 30, 20)
	for mode := 0; mode < 3; mode++ {
		at := []int{5, 7, 9}
		got, err := mdl.TopK(mode, at, 8, nil)
		if err != nil {
			t.Fatalf("TopK(mode %d): %v", mode, err)
		}
		// Brute force: score every entity, full sort.
		type sc struct {
			j int
			s float64
		}
		all := make([]sc, mdl.dims[mode])
		for j := range all {
			cellAt := append([]int(nil), at...)
			cellAt[mode] = j
			all[j] = sc{j, naiveCell(lambda, factors, cellAt)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].s > all[b].s })
		if len(got) != 8 {
			t.Fatalf("TopK returned %d results, want 8", len(got))
		}
		for i, g := range got {
			if !close12(g.Score, all[i].s) {
				t.Fatalf("mode %d rank %d: score %g, want %g (index %d vs %d)", mode, i, g.Score, all[i].s, g.Index, all[i].j)
			}
		}
	}
}

func TestTopKSingleMode(t *testing.T) {
	mdl, lambda, factors := testModel(t, 4, 3, 15)
	got, err := mdl.TopK(0, []int{-1}, 3, nil)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	best := math.Inf(-1)
	for j := 0; j < 15; j++ {
		if s := naiveCell(lambda, factors, []int{j}); s > best {
			best = s
		}
	}
	if !close12(got[0].Score, best) {
		t.Fatalf("top score %g, want %g", got[0].Score, best)
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	mdl, _, factors := testModel(t, 5, 4, 25, 18)
	for mode := 0; mode < 2; mode++ {
		idx := 3
		got, err := mdl.NN(mode, idx, 6, nil)
		if err != nil {
			t.Fatalf("NN(mode %d): %v", mode, err)
		}
		q := factors[mode].Row(idx)
		type sc struct {
			j int
			d float64
		}
		var all []sc
		for j := 0; j < factors[mode].Rows; j++ {
			if j == idx {
				continue
			}
			row := factors[mode].Row(j)
			d := 0.0
			for f := range row {
				d += (row[f] - q[f]) * (row[f] - q[f])
			}
			all = append(all, sc{j, d})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		if len(got) != 6 {
			t.Fatalf("NN returned %d results, want 6", len(got))
		}
		for i, g := range got {
			if g.Index == idx {
				t.Fatalf("NN returned the query entity itself at rank %d", i)
			}
			if !close12(g.Score, all[i].d) {
				t.Fatalf("mode %d rank %d: distance %g, want %g (index %d vs %d)", mode, i, g.Score, all[i].d, g.Index, all[i].j)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	mdl, _, _ := testModel(t, 6, 2, 5, 4)
	if _, err := mdl.Reconstruct([]int{1}); err == nil {
		t.Fatal("Reconstruct with wrong arity succeeded")
	}
	if _, err := mdl.Reconstruct([]int{5, 0}); err == nil {
		t.Fatal("Reconstruct out of range succeeded")
	}
	if _, err := mdl.ReconstructBlock([]int{0, 0}, []int{6, 2}, nil); err == nil {
		t.Fatal("ReconstructBlock out of range succeeded")
	}
	if _, err := mdl.ReconstructBlock([]int{2, 0}, []int{2, 2}, nil); err == nil {
		t.Fatal("ReconstructBlock with empty range succeeded")
	}
	if _, err := mdl.TopK(2, []int{0, 0}, 3, nil); err == nil {
		t.Fatal("TopK with bad mode succeeded")
	}
	if _, err := mdl.TopK(0, []int{-1, 0}, 0, nil); err == nil {
		t.Fatal("TopK with k=0 succeeded")
	}
	if _, err := mdl.NN(0, 9, 3, nil); err == nil {
		t.Fatal("NN out of range succeeded")
	}
}

func TestOpenServesSnapshot(t *testing.T) {
	ref, lambda, factors := testModel(t, 8, 3, 10, 9, 8)
	path := filepath.Join(t.TempDir(), "factors.snap")
	if err := factorsnap.Write(path, lambda, factors, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	mdl, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer mdl.Close()
	for trial := 0; trial < 50; trial++ {
		at := []int{trial % 10, (trial * 3) % 9, (trial * 7) % 8}
		got, err := mdl.Reconstruct(at)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Reconstruct(at)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("snapshot-backed Reconstruct(%v) = %x, want bit-identical %x", at, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestQueriesAllocationFree pins the acceptance criterion: with a warm
// row cache and caller-reused result slices, the point-read, top-k, and
// nearest-neighbor paths allocate nothing at steady state.
func TestQueriesAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc contract is gated by the non-race run and BENCH_serve.json")
	}
	mdl, _, _ := testModel(t, 9, 8, 32, 32, 32)
	at := []int{3, 4, 5}
	dst := make([]Scored, 0, 16)
	block := make([]float64, 0, 64)

	// Warm the pool, the row cache, and the workspace heaps.
	for i := 0; i < 8; i++ {
		if _, err := mdl.Reconstruct(at); err != nil {
			t.Fatal(err)
		}
		var err error
		if dst, err = mdl.TopK(0, at, 10, dst); err != nil {
			t.Fatal(err)
		}
		if dst, err = mdl.NN(1, 4, 10, dst); err != nil {
			t.Fatal(err)
		}
		if block, err = mdl.ReconstructBlock([]int{3, 4, 5}, []int{5, 8, 9}, block); err != nil {
			t.Fatal(err)
		}
	}

	checks := []struct {
		name string
		fn   func()
	}{
		{"Reconstruct", func() { mdl.Reconstruct(at) }},
		{"TopK", func() { dst, _ = mdl.TopK(0, at, 10, dst) }},
		{"NN", func() { dst, _ = mdl.NN(1, 4, 10, dst) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(200, c.fn); avg > 0.05 {
			t.Errorf("%s allocates %.2f objects/op at steady state, want 0", c.name, avg)
		}
	}

	// The block path runs through mat.MulInto, whose parallel dispatch
	// costs a small constant number of allocations per GEMM; hold it to
	// that constant so regressions (per-cell or per-row allocation) fail.
	blockFn := func() { block, _ = mdl.ReconstructBlock([]int{3, 4, 5}, []int{5, 8, 9}, block) }
	if avg := testing.AllocsPerRun(200, blockFn); avg > 4 {
		t.Errorf("ReconstructBlock allocates %.2f objects/op, want the kernel-dispatch constant (<= 4)", avg)
	}
}

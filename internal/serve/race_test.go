//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates inside paths that are
// allocation-free in regular builds.
const raceEnabled = true

package serve

import (
	"container/list"
	"sync"
)

// cacheShards is the fixed shard count of the combined-row cache. Shards
// cut lock contention under concurrent queries; 16 keeps the per-shard
// maps small without oversharding tiny caches.
const cacheShards = 16

// rowKey identifies one cached λ-combined entity row.
type rowKey struct {
	mode, index int
}

// rowCache is a sharded LRU of λ-combined entity rows ([]float64 of
// length rank). Each shard holds its own lock, map, and recency list, so
// concurrent readers on different entities rarely contend.
type rowCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[rowKey]*list.Element
	ll  *list.List // front = most recently used
}

// cacheEntry is the list payload: the key (for eviction) plus the row.
type cacheEntry struct {
	key rowKey
	row []float64
}

// newRowCache builds a cache holding at most capRows rows in total,
// spread evenly across shards (every shard keeps at least one row).
func newRowCache(capRows int) *rowCache {
	per := capRows / cacheShards
	if per < 1 {
		per = 1
	}
	c := &rowCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[rowKey]*list.Element, per)
		c.shards[i].ll = list.New()
	}
	return c
}

// shard picks the shard for a key.
func (c *rowCache) shard(k rowKey) *cacheShard {
	return &c.shards[uint(k.mode*31+k.index)%cacheShards]
}

// get returns the cached row for (mode, index) and bumps its recency.
// The returned slice is shared — callers must not write it.
func (c *rowCache) get(mode, index int) ([]float64, bool) {
	k := rowKey{mode, index}
	s := c.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		s.ll.MoveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.Value.(*cacheEntry).row, true
}

// put inserts a row, evicting the shard's least-recently-used entry when
// full. A concurrent duplicate insert keeps the existing row.
func (c *rowCache) put(mode, index int, row []float64) {
	k := rowKey{mode, index}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[k]; ok {
		s.ll.MoveToFront(e)
		return
	}
	if s.ll.Len() >= s.cap {
		old := s.ll.Back()
		if old != nil {
			s.ll.Remove(old)
			delete(s.m, old.Value.(*cacheEntry).key)
		}
	}
	s.m[k] = s.ll.PushFront(&cacheEntry{key: k, row: row})
}

// Package serve answers interactive queries against a completed CP
// decomposition: the read path that turns computed factors into a
// low-latency service (the "serves heavy traffic" half of the roadmap's
// north star).
//
// A Model wraps a Kruskal model (λ plus one factor matrix per mode),
// usually a zero-copy view over a factorsnap file, and serves three query
// families:
//
//   - Reconstruct / ReconstructBlock — X̂[i₁…i_N] = Σ_f λ_f Π_n A⁽ⁿ⁾[i_n,f],
//     a rank-length dot product per cell; sub-blocks batch the two
//     innermost modes into one mat.MulInto GEMM per slab.
//   - TopK — the k highest-scoring entities in one mode against a fixed
//     entity in every other mode (a single matrix·vector sweep with a
//     bounded partial sort, never a full sort).
//   - NN — nearest neighbors of an entity in factor-row space, using
//     precomputed squared row norms so each candidate costs one dot
//     product.
//
// Queries are allocation-free at steady state: scratch lives in pooled
// workspaces (sync.Pool), hot λ-combined entity rows sit in a small
// sharded LRU, and result slices are caller-supplied append targets. The
// Model is safe for concurrent use.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"twopcp/internal/factorsnap"
	"twopcp/internal/mat"
)

// DefaultCacheRows is the per-model combined-row cache capacity used when
// Config.CacheRows is zero.
const DefaultCacheRows = 4096

// Config tunes a Model.
type Config struct {
	// CacheRows caps the λ-combined entity-row LRU (total rows across all
	// shards). Zero means DefaultCacheRows; negative disables the cache.
	CacheRows int
}

// Scored is one ranked query result. For TopK, Score is the reconstructed
// score (descending); for NN it is the squared Euclidean distance in
// factor-row space (ascending).
type Scored struct {
	// Index is the entity's row index in the queried mode.
	Index int `json:"index"`
	// Score orders the result (see the query's contract for its meaning).
	Score float64 `json:"score"`
}

// Model is an immutable, concurrency-safe query engine over one Kruskal
// model.
type Model struct {
	dims    []int
	rank    int
	lambda  []float64
	factors []*mat.Matrix
	sqnorms [][]float64 // per-mode squared factor-row norms, for NN

	cache *rowCache
	pool  sync.Pool
	snap  *factorsnap.Snapshot // owned mapping when opened from a file
}

// workspace is the per-query scratch a Model pools. All slices grow on
// demand and are reused across queries, so the steady state allocates
// nothing.
type workspace struct {
	w       []float64  // λ-combined weight vector (rank)
	heapIdx []int      // bounded partial-sort heap: indices
	heapVal []float64  // bounded partial-sort heap: keys
	a, b, c mat.Matrix // block-reconstruct GEMM operands and output
	odo     []int      // outer-mode odometer for block iteration
}

// New builds a Model over λ and one factor matrix per mode. The factors
// are referenced, not copied — they must stay immutable while the Model
// is in use. len(lambda) must equal the factors' shared column count.
func New(lambda []float64, factors []*mat.Matrix, cfg Config) (*Model, error) {
	if len(factors) == 0 {
		return nil, errors.New("serve: no factor matrices")
	}
	rank := factors[0].Cols
	if len(lambda) != rank {
		return nil, fmt.Errorf("serve: %d lambda weights for rank %d", len(lambda), rank)
	}
	m := &Model{
		dims:    make([]int, len(factors)),
		rank:    rank,
		lambda:  lambda,
		factors: factors,
		sqnorms: make([][]float64, len(factors)),
	}
	for n, f := range factors {
		if f.Cols != rank {
			return nil, fmt.Errorf("serve: factor %d has %d cols, want %d", n, f.Cols, rank)
		}
		m.dims[n] = f.Rows
		sq := make([]float64, f.Rows)
		for i := 0; i < f.Rows; i++ {
			row := f.Row(i)
			s := 0.0
			for _, v := range row {
				s += v * v
			}
			sq[i] = s
		}
		m.sqnorms[n] = sq
	}
	capRows := cfg.CacheRows
	if capRows == 0 {
		capRows = DefaultCacheRows
	}
	if capRows > 0 {
		m.cache = newRowCache(capRows)
	}
	m.pool.New = func() any {
		return &workspace{w: make([]float64, rank)}
	}
	return m, nil
}

// Open maps the factorsnap file at path and builds a Model over its
// zero-copy factor views. Close releases the mapping.
func Open(path string, cfg Config) (*Model, error) {
	snap, err := factorsnap.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := New(snap.Lambda, snap.Factors, cfg)
	if err != nil {
		snap.Close()
		return nil, err
	}
	m.snap = snap
	return m, nil
}

// Close releases the underlying snapshot mapping, if any. The Model must
// not be used afterwards.
func (m *Model) Close() error {
	if m.snap == nil {
		return nil
	}
	s := m.snap
	m.snap = nil
	return s.Close()
}

// Modes returns the number of tensor modes.
func (m *Model) Modes() int { return len(m.dims) }

// Rank returns the number of rank-one components.
func (m *Model) Rank() int { return m.rank }

// Dims returns a copy of the mode sizes.
func (m *Model) Dims() []int {
	out := make([]int, len(m.dims))
	copy(out, m.dims)
	return out
}

// checkCoords validates one index per mode, skipping the mode equal to
// skip (pass -1 to validate all).
func (m *Model) checkCoords(at []int, skip int) error {
	if len(at) != len(m.dims) {
		return fmt.Errorf("serve: %d coordinates for %d modes", len(at), len(m.dims))
	}
	for n, i := range at {
		if n == skip {
			continue
		}
		if i < 0 || i >= m.dims[n] {
			return fmt.Errorf("serve: mode-%d index %d out of range [0,%d)", n, i, m.dims[n])
		}
	}
	return nil
}

// combinedRow returns the λ-combined row for one entity: λ_f·A⁽ᵐᵒᵈᵉ⁾[i,f].
// Hot rows come from the sharded LRU; misses compute and insert. The
// returned slice is shared and must not be written.
func (m *Model) combinedRow(mode, i int) []float64 {
	if m.cache != nil {
		if row, ok := m.cache.get(mode, i); ok {
			return row
		}
	}
	src := m.factors[mode].Row(i)
	row := make([]float64, m.rank)
	for f := range row {
		row[f] = m.lambda[f] * src[f]
	}
	if m.cache != nil {
		m.cache.put(mode, i, row)
	}
	return row
}

// Reconstruct returns the model's value at one cell, X̂[at] =
// Σ_f λ_f Π_n A⁽ⁿ⁾[at_n, f]. at supplies one index per mode.
func (m *Model) Reconstruct(at []int) (float64, error) {
	if err := m.checkCoords(at, -1); err != nil {
		return 0, err
	}
	ws := m.pool.Get().(*workspace)
	w := ws.w
	copy(w, m.combinedRow(0, at[0]))
	for n := 1; n < len(m.dims); n++ {
		row := m.factors[n].Row(at[n])
		for f := range w {
			w[f] *= row[f]
		}
	}
	s := 0.0
	for _, v := range w {
		s += v
	}
	m.pool.Put(ws)
	return s, nil
}

// ReconstructBlock fills dst (reused when its capacity suffices) with the
// dense sub-block lo ≤ i < hi, laid out row-major with the last mode
// fastest. The two innermost modes are batched into one mat.MulInto GEMM
// per outer-index combination; outer modes iterate an odometer.
func (m *Model) ReconstructBlock(lo, hi []int, dst []float64) ([]float64, error) {
	N := len(m.dims)
	if len(lo) != N || len(hi) != N {
		return nil, fmt.Errorf("serve: block bounds have %d/%d entries for %d modes", len(lo), len(hi), N)
	}
	vol := 1
	for n := 0; n < N; n++ {
		if lo[n] < 0 || hi[n] > m.dims[n] || lo[n] >= hi[n] {
			return nil, fmt.Errorf("serve: mode-%d range [%d,%d) invalid for dim %d", n, lo[n], hi[n], m.dims[n])
		}
		vol *= hi[n] - lo[n]
	}
	if cap(dst) < vol {
		dst = make([]float64, vol)
	}
	dst = dst[:vol]

	ws := m.pool.Get().(*workspace)
	defer m.pool.Put(ws)

	if N == 1 {
		for i := lo[0]; i < hi[0]; i++ {
			row := m.combinedRow(0, i)
			s := 0.0
			for _, v := range row {
				s += v
			}
			dst[i-lo[0]] = s
		}
		return dst, nil
	}

	// GEMM over the two innermost modes: for each outer-index combo with
	// combined weight w, the slab is (A⁽ᴺ⁻²⁾[loA:hiA] ⊙ w) · Bᵀ where
	// B = A⁽ᴺ⁻¹⁾[loB:hiB]. mat has no A·Bᵀ kernel, so B's rows are staged
	// transposed once per call and each slab is one MulInto.
	ra := hi[N-2] - lo[N-2]
	rb := hi[N-1] - lo[N-1]
	bt := wsMat(&ws.b, m.rank, rb)
	fb := m.factors[N-1]
	for j := 0; j < rb; j++ {
		row := fb.Row(lo[N-1] + j)
		for f := 0; f < m.rank; f++ {
			bt.Data[f*rb+j] = row[f]
		}
	}
	a := wsMat(&ws.a, ra, m.rank)
	c := wsMat(&ws.c, ra, rb)
	fa := m.factors[N-2]

	w := ws.w
	if cap(ws.odo) < N {
		ws.odo = make([]int, N)
	}
	odo := ws.odo[:N]
	copy(odo, lo)
	out := 0
	for {
		// Combined weight over λ and the outer modes at the current odometer.
		copy(w, m.lambda)
		for n := 0; n < N-2; n++ {
			row := m.factors[n].Row(odo[n])
			for f := range w {
				w[f] *= row[f]
			}
		}
		for i := 0; i < ra; i++ {
			row := fa.Row(lo[N-2] + i)
			ar := a.Data[i*m.rank : (i+1)*m.rank]
			for f := range ar {
				ar[f] = row[f] * w[f]
			}
		}
		mat.MulInto(c, a, bt)
		copy(dst[out:out+ra*rb], c.Data)
		out += ra * rb

		// Advance the outer odometer (modes 0..N-3), last of them fastest.
		n := N - 3
		for ; n >= 0; n-- {
			odo[n]++
			if odo[n] < hi[n] {
				break
			}
			odo[n] = lo[n]
		}
		if n < 0 {
			break
		}
	}
	return dst, nil
}

// TopK appends to dst the k entities of the target mode with the highest
// reconstructed scores against the fixed entities in at (one index per
// mode; at[mode] is ignored), ordered by descending score. Passing a dst
// with capacity ≥ k keeps the call allocation-free. k is clamped to the
// mode's size.
func (m *Model) TopK(mode int, at []int, k int, dst []Scored) ([]Scored, error) {
	if mode < 0 || mode >= len(m.dims) {
		return nil, fmt.Errorf("serve: mode %d out of range [0,%d)", mode, len(m.dims))
	}
	if err := m.checkCoords(at, mode); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	if k > m.dims[mode] {
		k = m.dims[mode]
	}

	ws := m.pool.Get().(*workspace)
	defer m.pool.Put(ws)
	w := ws.w
	seeded := false
	for n := range m.dims {
		if n == mode {
			continue
		}
		if !seeded {
			copy(w, m.combinedRow(n, at[n]))
			seeded = true
			continue
		}
		row := m.factors[n].Row(at[n])
		for f := range w {
			w[f] *= row[f]
		}
	}
	if !seeded { // single-mode model: score against λ alone
		copy(w, m.lambda)
	}

	ws.resetHeap(k)
	target := m.factors[mode]
	for j := 0; j < m.dims[mode]; j++ {
		row := target.Row(j)
		s := 0.0
		for f, v := range row {
			s += v * w[f]
		}
		ws.heapOffer(j, s, k)
	}
	return ws.drainDescending(dst), nil
}

// NN appends to dst the k nearest neighbors of entity index in the given
// mode, by squared Euclidean distance between factor rows (ascending; the
// query entity itself is excluded). Passing a dst with capacity ≥ k keeps
// the call allocation-free. k is clamped to the remaining entity count.
func (m *Model) NN(mode, index, k int, dst []Scored) ([]Scored, error) {
	if mode < 0 || mode >= len(m.dims) {
		return nil, fmt.Errorf("serve: mode %d out of range [0,%d)", mode, len(m.dims))
	}
	if index < 0 || index >= m.dims[mode] {
		return nil, fmt.Errorf("serve: mode-%d index %d out of range [0,%d)", mode, index, m.dims[mode])
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	if k > m.dims[mode]-1 {
		k = m.dims[mode] - 1
	}
	if k == 0 {
		return dst[:0], nil
	}

	ws := m.pool.Get().(*workspace)
	defer m.pool.Put(ws)
	f := m.factors[mode]
	q := f.Row(index)
	qn := m.sqnorms[mode][index]

	// Keep the k smallest distances by heaping on the negated distance:
	// the shared bounded heap retains the k largest keys.
	ws.resetHeap(k)
	for j := 0; j < m.dims[mode]; j++ {
		if j == index {
			continue
		}
		row := f.Row(j)
		dot := 0.0
		for i, v := range row {
			dot += v * q[i]
		}
		d := qn + m.sqnorms[mode][j] - 2*dot
		if d < 0 {
			d = 0 // rounding can push an exact-duplicate row slightly negative
		}
		ws.heapOffer(j, -d, k)
	}
	dst = ws.drainDescending(dst)
	for i := range dst {
		dst[i].Score = -dst[i].Score
	}
	return dst, nil
}

// wsMat resizes a workspace matrix to r×c, reusing its backing slice when
// capacity allows.
func wsMat(m *mat.Matrix, r, c int) *mat.Matrix {
	if cap(m.Data) < r*c {
		m.Data = make([]float64, r*c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
	return m
}

// resetHeap prepares the workspace's bounded min-heap for up to k entries.
func (ws *workspace) resetHeap(k int) {
	if cap(ws.heapIdx) < k {
		ws.heapIdx = make([]int, 0, k)
		ws.heapVal = make([]float64, 0, k)
	}
	ws.heapIdx = ws.heapIdx[:0]
	ws.heapVal = ws.heapVal[:0]
}

// heapOffer considers (idx, val) for the bounded heap of the k largest
// values. The heap root is the current minimum; a better candidate
// replaces it and sifts down.
func (ws *workspace) heapOffer(idx int, val float64, k int) {
	h := len(ws.heapVal)
	if h < k {
		ws.heapIdx = append(ws.heapIdx, idx)
		ws.heapVal = append(ws.heapVal, val)
		// Sift up.
		i := h
		for i > 0 {
			p := (i - 1) / 2
			if ws.heapVal[p] <= ws.heapVal[i] {
				break
			}
			ws.heapVal[p], ws.heapVal[i] = ws.heapVal[i], ws.heapVal[p]
			ws.heapIdx[p], ws.heapIdx[i] = ws.heapIdx[i], ws.heapIdx[p]
			i = p
		}
		return
	}
	if val <= ws.heapVal[0] {
		return
	}
	ws.heapVal[0], ws.heapIdx[0] = val, idx
	ws.siftDown(0)
}

// siftDown restores the min-heap property from position i.
func (ws *workspace) siftDown(i int) {
	n := len(ws.heapVal)
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && ws.heapVal[l] < ws.heapVal[min] {
			min = l
		}
		if r < n && ws.heapVal[r] < ws.heapVal[min] {
			min = r
		}
		if min == i {
			return
		}
		ws.heapVal[min], ws.heapVal[i] = ws.heapVal[i], ws.heapVal[min]
		ws.heapIdx[min], ws.heapIdx[i] = ws.heapIdx[i], ws.heapIdx[min]
		i = min
	}
}

// drainDescending empties the heap into dst (reset to length zero first)
// ordered by descending value. The heap arrays are consumed in place:
// popping the min repeatedly fills dst back to front.
func (ws *workspace) drainDescending(dst []Scored) []Scored {
	n := len(ws.heapVal)
	if cap(dst) < n {
		dst = make([]Scored, n)
	}
	dst = dst[:n]
	for size := n; size > 0; size-- {
		dst[size-1] = Scored{Index: ws.heapIdx[0], Score: ws.heapVal[0]}
		ws.heapVal[0] = ws.heapVal[size-1]
		ws.heapIdx[0] = ws.heapIdx[size-1]
		ws.heapVal = ws.heapVal[:size-1]
		ws.heapIdx = ws.heapIdx[:size-1]
		ws.siftDown(0)
	}
	return dst
}

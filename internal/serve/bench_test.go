package serve

import (
	"math/rand"
	"testing"

	"twopcp/internal/mat"
)

// benchModel builds the standard benchmark model: rank 16 over a
// 64×64×64 cube, the shape BENCH_serve.json baselines.
func benchModel(b *testing.B) *Model {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	rank := 16
	lambda := make([]float64, rank)
	for f := range lambda {
		lambda[f] = rng.Float64() + 0.5
	}
	factors := make([]*mat.Matrix, 3)
	for n := range factors {
		m := mat.New(64, rank)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		factors[n] = m
	}
	mdl, err := New(lambda, factors, Config{})
	if err != nil {
		b.Fatal(err)
	}
	return mdl
}

// BenchmarkPointRead measures single-cell reconstruction — the latency
// floor of the query service. Gated by benchgate: ≤1000 ns/op (≥1M
// reconstructs/sec) and zero allocations at steady state.
func BenchmarkPointRead(b *testing.B) {
	mdl := benchModel(b)
	const nCoords = 1024
	coords := make([][]int, nCoords)
	rng := rand.New(rand.NewSource(23))
	for i := range coords {
		coords[i] = []int{rng.Intn(64), rng.Intn(64), rng.Intn(64)}
	}
	// Warm the row cache and workspace pool.
	for _, at := range coords {
		if _, err := mdl.Reconstruct(at); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, _ := mdl.Reconstruct(coords[i%nCoords])
		sink += v
	}
	_ = sink
}

// BenchmarkTopK measures a full top-10 sweep over one mode (64 entities)
// against a fixed entity pair. Gated by benchgate: zero allocations and a
// bounded per-row cost relative to BenchmarkPointRead.
func BenchmarkTopK(b *testing.B) {
	mdl := benchModel(b)
	at := []int{7, 11, 0}
	dst := make([]Scored, 0, 10)
	var err error
	if dst, err = mdl.TopK(2, at, 10, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = mdl.TopK(2, at, 10, dst)
	}
	_ = dst
}

// BenchmarkNN measures a nearest-neighbor sweep (64 candidate rows,
// rank-16 dot products with precomputed norms).
func BenchmarkNN(b *testing.B) {
	mdl := benchModel(b)
	dst := make([]Scored, 0, 10)
	var err error
	if dst, err = mdl.NN(0, 5, 10, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = mdl.NN(0, 5, 10, dst)
	}
	_ = dst
}

// BenchmarkBlockRead measures an 8×8×8 sub-block reconstruction (512
// cells batched through mat.MulInto slabs).
func BenchmarkBlockRead(b *testing.B) {
	mdl := benchModel(b)
	lo, hi := []int{8, 16, 24}, []int{16, 24, 32}
	block := make([]float64, 0, 512)
	var err error
	if block, err = mdl.ReconstructBlock(lo, hi, block); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block, _ = mdl.ReconstructBlock(lo, hi, block)
	}
	_ = block
}

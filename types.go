package twopcp

import (
	"fmt"
	"math/rand"

	"twopcp/internal/buffer"
	"twopcp/internal/cpals"
	"twopcp/internal/grid"
	"twopcp/internal/mat"
	"twopcp/internal/schedule"
	"twopcp/internal/tensor"
)

// Core data types, re-exported from the internal packages so the public
// surface is a single import.
type (
	// Dense is a dense N-mode tensor (Fortran order, mode 0 fastest).
	Dense = tensor.Dense
	// COO is a sparse N-mode tensor in coordinate format.
	COO = tensor.COO
	// Matrix is a dense row-major float64 matrix.
	Matrix = mat.Matrix
	// KTensor is a Kruskal tensor: weights λ plus one factor per mode.
	KTensor = cpals.KTensor
	// Pattern describes a grid partitioning of a tensor.
	Pattern = grid.Pattern
)

// Schedule selects the Phase-2 update schedule (paper §V–VI).
type Schedule = schedule.Kind

// The paper's four update schedules.
const (
	// ModeCentric is the conventional schedule (Algorithm 1).
	ModeCentric = schedule.ModeCentric
	// FiberOrder traverses blocks in nested-loop order (§VI-B).
	FiberOrder = schedule.FiberOrder
	// ZOrder traverses blocks along a Morton curve (§VI-C.1).
	ZOrder = schedule.ZOrder
	// HilbertOrder traverses blocks along a Hilbert curve (§VI-C.2).
	HilbertOrder = schedule.HilbertOrder
)

// Constraint selects the row-update solver family applied by both phases
// (Options.Constraint). The zero value is the unconstrained default.
type Constraint int

// The solver families selectable through Options.Constraint.
const (
	// ConstraintNone runs plain least-squares ALS — the historical
	// behavior, bit-for-bit unchanged.
	ConstraintNone Constraint = iota
	// ConstraintRidge damps every normal-equation solve with
	// Options.Lambda·I (Tikhonov regularization), bounding the Gram
	// system's conditioning by (λ_max+Λ)/Λ.
	ConstraintRidge
	// ConstraintNonneg keeps every factor entry ≥ 0 element-wise (HALS
	// row updates over the cached Gram systems).
	ConstraintNonneg
)

// String returns the constraint's CLI name: none, ridge or nonneg.
func (c Constraint) String() string {
	switch c {
	case ConstraintNone:
		return "none"
	case ConstraintRidge:
		return "ridge"
	case ConstraintNonneg:
		return "nonneg"
	}
	return fmt.Sprintf("Constraint(%d)", int(c))
}

// ParseConstraint maps a CLI name ("none"/""/"ls", "ridge", "nonneg") to
// its Constraint.
func ParseConstraint(s string) (Constraint, error) {
	switch s {
	case "", "none", "ls":
		return ConstraintNone, nil
	case "ridge":
		return ConstraintRidge, nil
	case "nonneg":
		return ConstraintNonneg, nil
	}
	return 0, fmt.Errorf("twopcp: unknown constraint %q (want none, ridge or nonneg)", s)
}

// Accelerator selects the Phase-0 acceleration strategy applied before
// the standard Phase-1/Phase-2 passes (Options.Accelerator). The zero
// value runs the pipeline brute-force, bit-for-bit the historical
// behavior.
type Accelerator int

// The Phase-0 strategies selectable through Options.Accelerator.
const (
	// AccelNone disables Phase 0.
	AccelNone Accelerator = iota
	// AccelTucker compresses the tensor to a Tucker core via randomized
	// range finding, runs CP-ALS on the core, and expands the factors as
	// a warm start for Phase 1 (compress-then-CP). Falls back to brute
	// force when the core would not be meaningfully smaller than the
	// tensor.
	AccelTucker
	// AccelSketched wraps the Phase-1 row solver with leverage-score
	// sampling of the Khatri-Rao least-squares systems (CP-ARLS-LEV) for
	// dense blocks whose mode updates are large enough to sample.
	AccelSketched
)

// String returns the accelerator's CLI name: none, tucker or sketched.
func (a Accelerator) String() string {
	switch a {
	case AccelNone:
		return "none"
	case AccelTucker:
		return "tucker"
	case AccelSketched:
		return "sketched"
	}
	return fmt.Sprintf("Accelerator(%d)", int(a))
}

// ParseAccelerator maps a CLI name ("none"/"", "tucker", "sketched") to
// its Accelerator.
func ParseAccelerator(s string) (Accelerator, error) {
	switch s {
	case "", "none":
		return AccelNone, nil
	case "tucker":
		return AccelTucker, nil
	case "sketched":
		return AccelSketched, nil
	}
	return 0, fmt.Errorf("twopcp: unknown accelerator %q (want none, tucker or sketched)", s)
}

// fingerprint returns the accelerator name recorded in checkpoint
// manifests: "" for none (keeping pre-accelerator manifests resumable),
// otherwise the CLI name.
func (a Accelerator) fingerprint() string {
	if a == AccelNone {
		return ""
	}
	return a.String()
}

// solver maps the constraint (plus the ridge weight) to its cpals solver,
// validating the combination. An out-of-range Constraint value fails
// NewSolver's name check. The manifest fingerprint name is derived from
// the solver itself (cpals.FingerprintName), never from a second
// spelling here.
func (c Constraint) solver(lambda float64) (cpals.Solver, error) {
	s, err := cpals.NewSolver(c.String(), lambda)
	if err != nil {
		return nil, fmt.Errorf("twopcp: %w", err)
	}
	return s, nil
}

// Replacement selects the buffer replacement policy (paper §VII).
type Replacement = buffer.Policy

// The paper's three replacement policies.
const (
	// LRU evicts the least-recently-used unit.
	LRU = buffer.LRU
	// MRU evicts the most-recently-used unit.
	MRU = buffer.MRU
	// Forward evicts the unit needed furthest in the future (FOR).
	Forward = buffer.Forward
)

// NewDense returns a zero dense tensor with the given mode sizes.
func NewDense(dims ...int) *Dense { return tensor.NewDense(dims...) }

// NewCOO returns an empty sparse tensor with the given mode sizes.
func NewCOO(dims ...int) *COO { return tensor.NewCOO(dims...) }

// RandomDense returns a dense tensor with uniform [0,1) entries.
func RandomDense(rng *rand.Rand, dims ...int) *Dense { return tensor.RandomDense(rng, dims...) }

// RandomCOO returns a sparse tensor with ~density·ΠDims uniform entries.
func RandomCOO(rng *rand.Rand, density float64, dims ...int) *COO {
	return tensor.RandomCOO(rng, density, dims...)
}

// FromDense converts a dense tensor to sparse COO form.
func FromDense(d *Dense) *COO { return tensor.FromDense(d) }

// LoadDense reads a dense tensor from a twopcp binary file.
func LoadDense(path string) (*Dense, error) { return tensor.LoadDense(path) }

// SaveDense writes a dense tensor to a twopcp binary file.
func SaveDense(path string, t *Dense) error { return tensor.SaveDense(path, t) }

// LoadCOO reads a sparse tensor from a twopcp binary file.
func LoadCOO(path string) (*COO, error) { return tensor.LoadCOO(path) }

// SaveCOO writes a sparse tensor to a twopcp binary file.
func SaveCOO(path string, t *COO) error { return tensor.SaveCOO(path, t) }

// NewKTensor builds a Kruskal tensor with unit weights from factors.
func NewKTensor(factors []*Matrix) *KTensor { return cpals.NewKTensor(factors) }

// Congruence returns the factor match score between two Kruskal models
// (1 = identical components up to permutation and per-mode scaling). Use it
// to check whether a decomposition recovered a known ground truth.
func Congruence(a, b *KTensor) float64 { return cpals.Congruence(a, b) }

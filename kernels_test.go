package twopcp

import (
	"math/rand"
	"testing"

	"twopcp/internal/grid"
	"twopcp/internal/phase1"
	"twopcp/internal/tensor"
)

// TestDecomposeKernelWorkersBitExact is the end-to-end determinism
// guarantee for the parallel compute kernels: the full 2PCP pipeline —
// Phase-1 per-block ALS, Phase-2 refinement, final fit — produces
// bit-identical factors, FitTrace and swap counts at every KernelWorkers
// setting.
func TestDecomposeKernelWorkersBitExact(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(77)), 20, 18, 16)
	run := func(kw int) *Result {
		res, err := Decompose(x, Options{
			Rank:          4,
			Partitions:    []int{2},
			MaxIters:      12,
			Seed:          9,
			KernelWorkers: kw,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, kw := range []int{2, 7, 0} {
		res := run(kw)
		if res.Fit != serial.Fit {
			t.Fatalf("KernelWorkers=%d: Fit %v != %v", kw, res.Fit, serial.Fit)
		}
		if len(res.FitTrace) != len(serial.FitTrace) {
			t.Fatalf("KernelWorkers=%d: trace length %d != %d", kw, len(res.FitTrace), len(serial.FitTrace))
		}
		for i, f := range serial.FitTrace {
			if res.FitTrace[i] != f {
				t.Fatalf("KernelWorkers=%d: FitTrace[%d] %v != %v", kw, i, res.FitTrace[i], f)
			}
		}
		if res.RunStats.Swaps != serial.RunStats.Swaps {
			t.Fatalf("KernelWorkers=%d: Swaps %d != %d", kw, res.RunStats.Swaps, serial.RunStats.Swaps)
		}
		for m := range res.Model.Factors {
			if !res.Model.Factors[m].Equal(serial.Model.Factors[m]) {
				t.Fatalf("KernelWorkers=%d: factor %d differs", kw, m)
			}
		}
	}
}

// TestPhase1KernelWorkersBitExact checks the same property for phase1.Run
// alone, across both the block-level Workers pool and the kernel workers.
func TestPhase1KernelWorkersBitExact(t *testing.T) {
	x := tensor.RandomDense(rand.New(rand.NewSource(78)), 24, 20, 16)
	p, err := grid.New(x.Dims, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := phase1.NewDenseSource(x, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(blockWorkers, kernelWorkers int) *phase1.Result {
		defer applyKernelWorkers(Options{KernelWorkers: kernelWorkers})()
		res, err := phase1.Run(src, phase1.Options{
			Rank: 3, MaxIters: 10, Seed: 4, Workers: blockWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1, 1)
	for _, cfg := range [][2]int{{1, 2}, {1, 7}, {2, 2}, {4, 7}} {
		res := run(cfg[0], cfg[1])
		for id := range serial.Sub {
			for m := range serial.Sub[id] {
				if !res.Sub[id][m].Equal(serial.Sub[id][m]) {
					t.Fatalf("workers=%v: block %d mode %d differs", cfg, id, m)
				}
			}
			if res.Fits[id] != serial.Fits[id] {
				t.Fatalf("workers=%v: block %d fit differs", cfg, id)
			}
		}
	}
}
